#include "core/evaluation.hpp"

#include <gtest/gtest.h>

namespace vn2::core {
namespace {

using metrics::HazardEvent;

wsn::InjectedFault make_fault(HazardEvent hazard, wsn::Time start,
                              wsn::Time end = 0.0) {
  wsn::InjectedFault fault;
  fault.hazard = hazard;
  fault.command.start = start;
  fault.command.end = end;
  fault.affected_nodes = {1};
  return fault;
}

HazardPrediction make_prediction(HazardEvent hazard, wsn::Time time) {
  return {time, 1, hazard, 1.0};
}

TEST(Evaluate, PerfectDetection) {
  std::vector<wsn::InjectedFault> truth = {
      make_fault(HazardEvent::kRoutingLoop, 1000.0, 2000.0)};
  std::vector<HazardPrediction> predictions = {
      make_prediction(HazardEvent::kRoutingLoop, 1500.0)};
  EvalReport report = evaluate(predictions, truth);
  EXPECT_DOUBLE_EQ(report.macro_recall, 1.0);
  EXPECT_DOUBLE_EQ(report.macro_precision, 1.0);
  EXPECT_EQ(report.per_hazard[HazardEvent::kRoutingLoop].detected, 1u);
}

TEST(Evaluate, MissedFault) {
  std::vector<wsn::InjectedFault> truth = {
      make_fault(HazardEvent::kContention, 1000.0, 2000.0)};
  EvalReport report = evaluate({}, truth);
  EXPECT_DOUBLE_EQ(report.macro_recall, 0.0);
  EXPECT_EQ(report.per_hazard[HazardEvent::kContention].injected, 1u);
  EXPECT_EQ(report.per_hazard[HazardEvent::kContention].detected, 0u);
}

TEST(Evaluate, WrongHazardDoesNotCount) {
  std::vector<wsn::InjectedFault> truth = {
      make_fault(HazardEvent::kRoutingLoop, 1000.0, 2000.0)};
  std::vector<HazardPrediction> predictions = {
      make_prediction(HazardEvent::kContention, 1500.0)};
  EvalReport report = evaluate(predictions, truth);
  EXPECT_DOUBLE_EQ(report.macro_recall, 0.0);
  // The contention prediction matches nothing → zero precision.
  EXPECT_DOUBLE_EQ(report.macro_precision, 0.0);
}

TEST(Evaluate, SlackExtendsWindows) {
  std::vector<wsn::InjectedFault> truth = {
      make_fault(HazardEvent::kRoutingLoop, 1000.0, 2000.0)};
  std::vector<HazardPrediction> predictions = {
      make_prediction(HazardEvent::kRoutingLoop, 2500.0)};
  EvalOptions tight;
  tight.window_slack = 100.0;
  EXPECT_DOUBLE_EQ(evaluate(predictions, truth, tight).macro_recall, 0.0);
  EvalOptions loose;
  loose.window_slack = 1000.0;
  EXPECT_DOUBLE_EQ(evaluate(predictions, truth, loose).macro_recall, 1.0);
}

TEST(Evaluate, InstantFaultGetsTailRoom) {
  // Node failures are instantaneous commands (end == 0) but manifest over
  // the following epochs.
  std::vector<wsn::InjectedFault> truth = {
      make_fault(HazardEvent::kNodeFailure, 1000.0)};
  std::vector<HazardPrediction> predictions = {
      make_prediction(HazardEvent::kNodeFailure, 1000.0 + 1800.0)};
  EvalOptions options;
  options.window_slack = 1200.0;
  EXPECT_DOUBLE_EQ(evaluate(predictions, truth, options).macro_recall, 1.0);
}

TEST(Evaluate, MacroAveragesAcrossClasses) {
  std::vector<wsn::InjectedFault> truth = {
      make_fault(HazardEvent::kRoutingLoop, 1000.0, 2000.0),
      make_fault(HazardEvent::kContention, 5000.0, 6000.0)};
  // Loop detected; contention missed; plus one bogus extra loop prediction
  // far outside any window.
  std::vector<HazardPrediction> predictions = {
      make_prediction(HazardEvent::kRoutingLoop, 1500.0),
      make_prediction(HazardEvent::kRoutingLoop, 50000.0)};
  EvalReport report = evaluate(predictions, truth);
  EXPECT_DOUBLE_EQ(report.macro_recall, 0.5);   // (1 + 0) / 2.
  EXPECT_DOUBLE_EQ(report.macro_precision, 0.5);  // Loop: 1 of 2 matched.
}

TEST(PredictHazards, RequiresMatchingSizes) {
  std::vector<trace::StateVector> states(2);
  std::vector<Diagnosis> diagnoses(1);
  EXPECT_THROW(predict_hazards(states, diagnoses, {}),
               std::invalid_argument);
}

TEST(PredictHazards, FiltersNormalStatesAndWeakCauses) {
  std::vector<trace::StateVector> states(3);
  states[0].time = 10.0;
  states[1].time = 20.0;
  states[2].time = 30.0;

  std::vector<RootCauseInterpretation> interps(2);
  interps[0].row = 0;
  interps[0].labels = {{metrics::HazardEvent::kRoutingLoop, 0.9}};
  interps[1].row = 1;
  interps[1].labels = {{metrics::HazardEvent::kContention, 0.8}};

  std::vector<Diagnosis> diagnoses(3);
  // State 0: exception, strong row 0 + weak row 1.
  diagnoses[0].is_exception = true;
  diagnoses[0].ranked = {{0, 10.0}, {1, 1.0}};
  // State 1: not an exception → ignored.
  diagnoses[1].is_exception = false;
  diagnoses[1].ranked = {{0, 10.0}};
  // State 2: exception, both rows strong.
  diagnoses[2].is_exception = true;
  diagnoses[2].ranked = {{1, 5.0}, {0, 4.0}};

  EvalOptions options;
  options.strength_fraction = 0.5;
  auto predictions = predict_hazards(states, diagnoses, interps, options);
  ASSERT_EQ(predictions.size(), 3u);
  EXPECT_EQ(predictions[0].hazard, metrics::HazardEvent::kRoutingLoop);
  EXPECT_DOUBLE_EQ(predictions[0].time, 10.0);
  EXPECT_EQ(predictions[1].hazard, metrics::HazardEvent::kContention);
  EXPECT_EQ(predictions[2].hazard, metrics::HazardEvent::kRoutingLoop);
}

TEST(PredictHazards, UnlabeledRowsAreSkipped) {
  std::vector<trace::StateVector> states(1);
  std::vector<RootCauseInterpretation> interps(1);  // No labels.
  std::vector<Diagnosis> diagnoses(1);
  diagnoses[0].is_exception = true;
  diagnoses[0].ranked = {{0, 10.0}};
  EXPECT_TRUE(predict_hazards(states, diagnoses, interps).empty());
}

TEST(PredictHazards, MissingInterpretationThrows) {
  std::vector<trace::StateVector> states(1);
  std::vector<Diagnosis> diagnoses(1);
  diagnoses[0].is_exception = true;
  diagnoses[0].ranked = {{5, 10.0}};  // Row 5, but no interpretations.
  EXPECT_THROW(predict_hazards(states, diagnoses, {}), std::invalid_argument);
}

}  // namespace
}  // namespace vn2::core
