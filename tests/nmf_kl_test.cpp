#include "nmf/nmf_kl.hpp"

#include <gtest/gtest.h>

#include "linalg/random.hpp"
#include "nmf/nmf.hpp"

namespace vn2::nmf {
namespace {

using linalg::Matrix;

Matrix random_nonnegative(std::size_t n, std::size_t m, std::uint64_t seed) {
  return linalg::random_uniform_matrix(n, m, seed, 0.0, 1.0);
}

Matrix planted_rank(std::size_t n, std::size_t m, std::size_t k,
                    std::uint64_t seed) {
  return linalg::matmul(random_nonnegative(n, k, seed),
                        random_nonnegative(k, m, seed + 1));
}

TEST(KlDivergence, BasicProperties) {
  Matrix e{{1.0, 2.0}, {0.0, 3.0}};
  // Perfect reconstruction → zero divergence.
  EXPECT_NEAR(kl_divergence(e, e), 0.0, 1e-9);
  // Any deviation is positive.
  Matrix off{{1.5, 2.0}, {0.0, 3.0}};
  EXPECT_GT(kl_divergence(e, off), 0.0);
  EXPECT_THROW(kl_divergence(e, Matrix(1, 2)), std::invalid_argument);
}

TEST(KlDivergence, ZeroEntriesContributeApprox) {
  Matrix e(1, 1, 0.0);
  Matrix a(1, 1, 2.0);
  EXPECT_DOUBLE_EQ(kl_divergence(e, a), 2.0);
}

TEST(KlNmf, RejectsBadInput) {
  EXPECT_THROW(factorize_kl(Matrix{}, 2), std::invalid_argument);
  EXPECT_THROW(factorize_kl(Matrix{{1, -0.1}}, 1), std::invalid_argument);
  EXPECT_THROW(factorize_kl(Matrix{{1, 2}, {3, 4}}, 0), std::invalid_argument);
  EXPECT_THROW(factorize_kl(Matrix{{1, 2}, {3, 4}}, 3), std::invalid_argument);
}

TEST(KlNmf, FactorsAreNonnegative) {
  Matrix e = random_nonnegative(20, 10, 42);
  KlNmfResult r = factorize_kl(e, 4);
  EXPECT_TRUE(linalg::is_nonnegative(r.w));
  EXPECT_TRUE(linalg::is_nonnegative(r.psi));
}

TEST(KlNmf, RecoversPlantedLowRankStructure) {
  Matrix e = planted_rank(40, 15, 3, 7);
  KlNmfOptions options;
  options.max_iterations = 1500;
  options.relative_tolerance = 1e-10;
  KlNmfResult r = factorize_kl(e, 3, options);
  const double final_div = kl_divergence(e, linalg::matmul(r.w, r.psi));
  // Divergence per entry should be tiny for exact-rank data.
  EXPECT_LT(final_div / static_cast<double>(e.size()), 1e-3);
}

TEST(KlNmf, DeterministicGivenSeed) {
  Matrix e = random_nonnegative(12, 8, 5);
  KlNmfOptions options;
  options.seed = 99;
  options.max_iterations = 50;
  KlNmfResult a = factorize_kl(e, 3, options);
  KlNmfResult b = factorize_kl(e, 3, options);
  EXPECT_LT(linalg::frobenius_distance(a.psi, b.psi), 1e-12);
}

// Lee & Seung's monotonicity theorem holds for the KL updates too.
struct KlCase {
  std::uint64_t seed;
  std::size_t n, m, rank;
};

class KlMonotonicity : public ::testing::TestWithParam<KlCase> {};

TEST_P(KlMonotonicity, DivergenceNonIncreasing) {
  const KlCase& c = GetParam();
  Matrix e = random_nonnegative(c.n, c.m, c.seed);
  Matrix w = linalg::random_uniform_matrix(c.n, c.rank, c.seed + 1, 0.05, 1.0);
  Matrix psi =
      linalg::random_uniform_matrix(c.rank, c.m, c.seed + 2, 0.05, 1.0);
  double previous = kl_divergence(e, linalg::matmul(w, psi));
  for (int step = 0; step < 40; ++step) {
    kl_multiplicative_update(e, w, psi);
    const double current = kl_divergence(e, linalg::matmul(w, psi));
    EXPECT_LE(current, previous + 1e-9 * (1.0 + std::abs(previous)))
        << "divergence increased at step " << step;
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KlMonotonicity,
    ::testing::Values(KlCase{1, 10, 8, 2}, KlCase{2, 25, 12, 5},
                      KlCase{3, 8, 30, 4}, KlCase{4, 30, 30, 8}));

TEST(KlNmf, ObjectiveHistoryRecorded) {
  Matrix e = random_nonnegative(10, 6, 9);
  KlNmfResult r = factorize_kl(e, 2);
  ASSERT_GE(r.objective_history.size(), 2u);
  EXPECT_LE(r.objective_history.back(), r.objective_history.front());
}

TEST(KlNmf, ComparableEuclideanQualityToL2Variant) {
  // Both objectives should reconstruct planted low-rank data well; KL is
  // not required to beat L2 in Frobenius terms, only to be in the same
  // ballpark (sanity that the updates actually optimize).
  Matrix e = planted_rank(30, 12, 4, 21);
  NmfOptions l2_options;
  l2_options.max_iterations = 800;
  const NmfResult l2 = factorize(e, 4, l2_options);
  KlNmfOptions kl_options;
  kl_options.max_iterations = 800;
  const KlNmfResult kl = factorize_kl(e, 4, kl_options);
  const double l2_err = l2.approximation_accuracy(e);
  const double kl_err =
      linalg::frobenius_distance(e, linalg::matmul(kl.w, kl.psi));
  EXPECT_LT(kl_err, 10.0 * l2_err + 0.5);
}

}  // namespace
}  // namespace vn2::nmf
