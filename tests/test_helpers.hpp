// Kept as a forwarding shim: the synthetic-scenario fixtures moved to
// tests/support/synthetic.hpp so the bench binaries can share them.
#pragma once

#include "support/synthetic.hpp"
