// Shared synthetic-scenario support, used by both the unit tests and the
// perf micro-benches (tests/ include it directly; bench/ adds this
// directory to its include path). Two generators live here:
//
//  * make_synthetic / standard_causes — state matrices with planted root
//    causes, for asserting that the pipeline recovers known structure.
//  * synthetic_states — structureless Gaussian states with sporadic
//    spikes, for benchmarking raw throughput.
#pragma once

#include <random>
#include <vector>

#include "linalg/matrix.hpp"
#include "metrics/schema.hpp"

namespace vn2::testing {

/// A planted root cause: a set of metrics that move together (by `shift`
/// sigma-like units) whenever the cause fires.
struct PlantedCause {
  std::vector<metrics::MetricId> metrics;
  double shift = 6.0;
};

struct SyntheticTrace {
  linalg::Matrix states;  ///< n × 43 raw states.
  /// Per-row active causes (indices into the cause list; empty = normal).
  std::vector<std::vector<std::size_t>> active;
};

/// Builds `n` states of unit Gaussian noise; each abnormal row additionally
/// shifts the metrics of one or more planted causes. `abnormal_every`
/// controls the exception density (every k-th row is abnormal).
inline SyntheticTrace make_synthetic(const std::vector<PlantedCause>& causes,
                                     std::size_t n, std::uint64_t seed,
                                     std::size_t abnormal_every = 5,
                                     bool allow_pairs = true) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> which(0, causes.size() - 1);
  std::uniform_int_distribution<int> coin(0, 1);

  SyntheticTrace trace;
  trace.states = linalg::Matrix(n, metrics::kMetricCount);
  trace.active.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
      trace.states(i, m) = noise(rng);
    if (abnormal_every == 0 || i % abnormal_every != 0 || i == 0) continue;
    trace.active[i].push_back(which(rng));
    if (allow_pairs && coin(rng) == 1 && causes.size() > 1) {
      std::size_t second = which(rng);
      if (second != trace.active[i][0]) trace.active[i].push_back(second);
    }
    for (std::size_t c : trace.active[i])
      for (metrics::MetricId id : causes[c].metrics)
        trace.states(i, metrics::index_of(id)) += causes[c].shift;
  }
  return trace;
}

/// Three well-separated causes used across the core tests.
inline std::vector<PlantedCause> standard_causes() {
  using metrics::MetricId;
  return {
      // Routing loop: loop counter + traffic + duplicates surge.
      {{MetricId::kLoopCounter, MetricId::kTransmitCounter,
        MetricId::kSelfTransmitCounter, MetricId::kDuplicateCounter},
       8.0},
      // Contention: backoffs + NOACK retransmits.
      {{MetricId::kMacBackoffCounter, MetricId::kNoackRetransmitCounter,
        MetricId::kAckFailCounter},
       8.0},
      // Node failure neighborhood: parent churn + no-parent epochs.
      {{MetricId::kParentChangeCounter, MetricId::kNoParentCounter,
        MetricId::kNoackRetransmitCounter},
       8.0},
  };
}

/// n × 43 raw states: unit Gaussian noise with sporadic counter spikes.
inline linalg::Matrix synthetic_states(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> column(0,
                                                    metrics::kMetricCount - 1);
  linalg::Matrix states(n, metrics::kMetricCount);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
      states(i, m) = noise(rng);
    if (i % 7 == 0) states(i, column(rng)) += 9.0;
  }
  return states;
}

}  // namespace vn2::testing
