// Fuzz-style robustness tests for the CSV trace reader: a checked-in
// corpus of malformed inputs (truncated rows, NaN/negative counters,
// embedded NULs, oversized lines, overflowing numbers) plus seeded random
// mutations of a valid trace. The contract under test: malformed input is
// reported with a std::exception, never a crash or UB — CI runs this
// suite under ASan+UBSan. Inputs that do parse are pushed through
// extract_states/states_matrix so downstream layers see the hostile data
// too.
#include "trace/csv.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "trace/trace.hpp"

namespace vn2::trace {
namespace {

/// Iteration count for the seeded-mutation tests. The default keeps the
/// suite fast for every tier-1 run; CI's fuzz smoke step raises it via
/// VN2_CSV_FUZZ_ROUNDS to buy a deeper (still fixed-iteration,
/// deterministic) sweep on a ~30 s budget.
int fuzz_rounds(int fallback) {
  const char* value = std::getenv("VN2_CSV_FUZZ_ROUNDS");
  if (value == nullptr) return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

/// Parses `text` as a trace CSV and, when it parses, runs the state
/// extraction pipeline on the result. Any std::exception is the expected
/// way to reject garbage.
void exercise(const std::string& text) {
  std::istringstream in(text);
  try {
    const Trace trace = read_trace_csv(in);
    const auto states = extract_states(trace);
    (void)states_matrix(states);
  } catch (const std::exception&) {
    // Rejection via exception is the contract; silence is success.
  }
}

std::string read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CsvFuzz, CorpusFilesNeverCrash) {
  const std::filesystem::path dir(VN2_CSV_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    SCOPED_TRACE(entry.path().filename().string());
    exercise(read_bytes(entry.path()));
    ++seen;
  }
  EXPECT_GE(seen, 8u) << "corpus unexpectedly small";
}

TEST(CsvFuzz, CorpusValidFileStillParses) {
  const std::filesystem::path file =
      std::filesystem::path(VN2_CSV_CORPUS_DIR) / "valid_small.csv";
  std::ifstream in(file);
  ASSERT_TRUE(in.good()) << file;
  const Trace trace = read_trace_csv(in);
  EXPECT_EQ(trace.nodes.size(), 2u);
  EXPECT_EQ(trace.total_snapshots(), 4u);
  // One diff per node: 2 snapshots each.
  EXPECT_EQ(extract_states(trace).size(), 2u);
}

/// A small deterministic trace to mutate: 3 nodes, 4 epochs, distinct
/// values so field boundaries land everywhere in the text.
std::string valid_trace_csv() {
  Trace trace;
  trace.node_count = 3;
  for (wsn::NodeId node = 0; node < 3; ++node) {
    NodeSeries series;
    series.node = node;
    for (std::uint64_t epoch = 1; epoch <= 4; ++epoch) {
      Snapshot snap;
      snap.epoch = epoch;
      snap.time = 60.0 * static_cast<double>(epoch) + node;
      for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
        snap.values[m] = static_cast<double>(node * 1000 + epoch * 50 + m) /
                         static_cast<double>(m + 1);
      series.snapshots.push_back(snap);
    }
    trace.duration = series.snapshots.back().time;
    trace.nodes.push_back(series);
  }
  std::ostringstream out;
  write_trace_csv(out, trace);
  return out.str();
}

TEST(CsvFuzz, MutatedValidTracesNeverCrash) {
  const std::string base = valid_trace_csv();
  ASSERT_FALSE(base.empty());
  std::mt19937_64 rng(0xC5Fu);
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> op(0, 3);

  const int rounds = fuzz_rounds(300);
  for (int round = 0; round < rounds; ++round) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng() % 8);
    for (int e = 0; e < edits; ++e) {
      const std::size_t at = pos(rng) % mutated.size();
      switch (op(rng)) {
        case 0:  // overwrite with an arbitrary byte (NUL included)
          mutated[at] = static_cast<char>(byte(rng));
          break;
        case 1:  // delete one byte
          mutated.erase(at, 1);
          break;
        case 2:  // insert an arbitrary byte
          mutated.insert(at, 1, static_cast<char>(byte(rng)));
          break;
        default:  // truncate mid-structure
          mutated.resize(at);
          break;
      }
      if (mutated.empty()) break;
    }
    SCOPED_TRACE("round " + std::to_string(round));
    exercise(mutated);
  }
}

TEST(CsvFuzz, MutatedMatrixCsvNeverCrashes) {
  std::string base;
  {
    linalg::Matrix m(4, 5);
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = 0; j < m.cols(); ++j)
        m(i, j) = static_cast<double>(i * 10 + j) - 7.5;
    std::ostringstream out;
    write_matrix_csv(out, m);
    base = out.str();
  }
  std::mt19937_64 rng(0xA11);
  const int rounds = fuzz_rounds(200);
  for (int round = 0; round < rounds; ++round) {
    std::string mutated = base;
    const std::size_t at = rng() % mutated.size();
    mutated[at] = static_cast<char>(rng() % 256);
    std::istringstream in(mutated);
    try {
      (void)read_matrix_csv(in);
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
}  // namespace vn2::trace
