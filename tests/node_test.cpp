#include "wsn/node.hpp"

#include <gtest/gtest.h>

namespace vn2::wsn {
namespace {

using metrics::MetricId;

Node make_node(NodeId id = 1) { return Node(id, {0.0, 0.0}, NodeParams{}); }

TEST(Node, InitialState) {
  Node node = make_node(7);
  EXPECT_EQ(node.id(), 7);
  EXPECT_TRUE(node.alive());
  EXPECT_DOUBLE_EQ(node.voltage(), 3.2);
  EXPECT_FALSE(node.has_parent());
  EXPECT_TRUE(node.queue_empty());
  for (MetricId id : metrics::all_metrics())
    EXPECT_DOUBLE_EQ(node.metric(id), 0.0);
}

TEST(Node, MetricBumpAndSet) {
  Node node = make_node();
  node.bump(MetricId::kLoopCounter);
  node.bump(MetricId::kLoopCounter, 2.0);
  EXPECT_DOUBLE_EQ(node.metric(MetricId::kLoopCounter), 3.0);
  node.set_metric(MetricId::kVoltage, 2.9);
  EXPECT_DOUBLE_EQ(node.metric(MetricId::kVoltage), 2.9);
}

TEST(Node, DrainAndBrownOut) {
  Node node = make_node();
  EXPECT_FALSE(node.brown_out());
  node.drain(0.35);
  EXPECT_NEAR(node.voltage(), 2.85, 1e-12);
  EXPECT_FALSE(node.brown_out());
  node.drain(0.10);
  EXPECT_TRUE(node.brown_out());
  // Drain multiplier scales consumption (battery-drain fault).
  Node drained = make_node();
  drained.set_battery_drain_multiplier(10.0);
  drained.drain(0.035);
  EXPECT_NEAR(drained.voltage(), 2.85, 1e-12);
}

TEST(Node, VoltageNeverNegative) {
  Node node = make_node();
  node.drain(100.0);
  EXPECT_DOUBLE_EQ(node.voltage(), 0.0);
}

TEST(Node, ClockScaleQuadraticInTemperature) {
  Node node = make_node();
  const double at25 = node.clock_scale(25.0);
  EXPECT_DOUBLE_EQ(at25, 1.0);
  const double at35 = node.clock_scale(35.0);
  const double at45 = node.clock_scale(45.0);
  EXPECT_LT(at35, 1.0);   // Hotter → faster crystal here → shorter intervals.
  EXPECT_LT(at45, at35);  // Quadratic growth of drift.
  // Symmetric: cold drifts too.
  EXPECT_DOUBLE_EQ(node.clock_scale(15.0), at35);
  // Clamped.
  EXPECT_GE(node.clock_scale(200.0), 0.5);
}

TEST(Node, QueueAdmissionAndOverflow) {
  NodeParams params;
  params.queue_capacity = 2;
  Node node(1, {0, 0}, params);
  DataPacket p;
  p.origin = 5;
  EXPECT_TRUE(node.enqueue(p));
  EXPECT_TRUE(node.enqueue(p));
  EXPECT_FALSE(node.enqueue(p));  // Overflow.
  EXPECT_DOUBLE_EQ(node.metric(MetricId::kOverflowDropCounter), 1.0);
  EXPECT_EQ(node.queue_size(), 2u);
}

TEST(Node, QueueFifoAndPop) {
  Node node = make_node();
  DataPacket a, b;
  a.origin_seq = 1;
  b.origin_seq = 2;
  node.enqueue(a);
  node.enqueue(b);
  node.retransmit_count = 5;
  EXPECT_EQ(node.queue_front().origin_seq, 1u);
  node.pop_front();
  EXPECT_EQ(node.retransmit_count, 0u);  // Pop resets the retry counter.
  EXPECT_EQ(node.queue_front().origin_seq, 2u);
}

TEST(Node, QueueFrontOnEmptyThrows) {
  Node node = make_node();
  EXPECT_THROW((void)node.queue_front(), std::logic_error);
  EXPECT_THROW(node.pop_front(), std::logic_error);
}

TEST(Node, DuplicateDetection) {
  Node node = make_node();
  EXPECT_FALSE(node.check_duplicate(3, 100));
  EXPECT_TRUE(node.check_duplicate(3, 100));
  EXPECT_DOUBLE_EQ(node.metric(MetricId::kDuplicateCounter), 1.0);
  EXPECT_FALSE(node.check_duplicate(3, 101));
  EXPECT_FALSE(node.check_duplicate(4, 100));  // Different origin.
}

TEST(Node, DuplicateCacheEvictsOldest) {
  NodeParams params;
  params.duplicate_cache_size = 4;
  Node node(1, {0, 0}, params);
  for (std::uint32_t s = 0; s < 5; ++s) node.check_duplicate(1, s);
  // Seq 0 was evicted by seq 4 → seen again as fresh.
  EXPECT_FALSE(node.check_duplicate(1, 0));
  // Seq 4 is still cached.
  EXPECT_TRUE(node.check_duplicate(1, 4));
}

TEST(Node, FailStopsEverything) {
  Node node = make_node();
  DataPacket p;
  node.enqueue(p);
  node.sending = true;
  node.fail();
  EXPECT_FALSE(node.alive());
  EXPECT_TRUE(node.queue_empty());
  EXPECT_FALSE(node.sending);
}

TEST(Node, RebootResetsVolatileStateButNotBattery) {
  Node node = make_node();
  node.bump(MetricId::kTransmitCounter, 500.0);
  node.set_route(3, 2.5);
  node.drain(0.05);
  node.table().on_beacon(3, -60.0, 0, 1.0, 0.0);
  node.check_duplicate(9, 1);
  node.fail();
  node.reboot(1234.0);

  EXPECT_TRUE(node.alive());
  EXPECT_DOUBLE_EQ(node.boot_time(), 1234.0);
  EXPECT_DOUBLE_EQ(node.metric(MetricId::kTransmitCounter), 0.0);
  EXPECT_FALSE(node.has_parent());
  EXPECT_EQ(node.table().occupancy(), 0u);
  EXPECT_FALSE(node.check_duplicate(9, 1));  // Cache forgotten.
  EXPECT_NEAR(node.voltage(), 3.15, 1e-12);  // Battery does NOT reset.
}

TEST(Node, RouteManagement) {
  Node node = make_node();
  node.set_route(4, 3.2);
  EXPECT_TRUE(node.has_parent());
  EXPECT_EQ(node.parent(), 4);
  EXPECT_DOUBLE_EQ(node.path_etx(), 3.2);
  node.clear_route();
  EXPECT_FALSE(node.has_parent());
  EXPECT_DOUBLE_EQ(node.path_etx(), NeighborTable::kEtxCap);
}

TEST(Node, RefreshNeighborMetricsMapsSlots) {
  Node node = make_node();
  node.table().on_beacon(5, -72.0, 0, 2.0, 0.0);
  node.table().on_beacon(6, -80.0, 0, 3.0, 0.0);
  node.refresh_neighbor_metrics();
  // Slot 0 → RSSI reported as offset above -100 dBm.
  EXPECT_NEAR(node.metric(metrics::neighbor_rssi(0)), 28.0, 1e-9);
  EXPECT_NEAR(node.metric(metrics::neighbor_rssi(1)), 20.0, 1e-9);
  EXPECT_GT(node.metric(metrics::neighbor_etx(0)), 0.0);
  EXPECT_DOUBLE_EQ(node.metric(metrics::neighbor_rssi(2)), 0.0);
  EXPECT_DOUBLE_EQ(node.metric(MetricId::kNeighborNum), 2.0);
  // Eviction zeroes the slot at next refresh.
  node.table().evict(5);
  node.refresh_neighbor_metrics();
  EXPECT_DOUBLE_EQ(node.metric(metrics::neighbor_rssi(0)), 0.0);
  EXPECT_DOUBLE_EQ(node.metric(MetricId::kNeighborNum), 1.0);
}

TEST(Node, SequenceNumbersMonotone) {
  Node node = make_node();
  EXPECT_EQ(node.next_beacon_seq(), 0u);
  EXPECT_EQ(node.next_beacon_seq(), 1u);
  EXPECT_EQ(node.next_data_seq(), 0u);
  EXPECT_EQ(node.next_data_seq(), 1u);
  node.reboot(0.0);
  EXPECT_EQ(node.next_beacon_seq(), 0u);  // Reset on reboot.
}

}  // namespace
}  // namespace vn2::wsn
