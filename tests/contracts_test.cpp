// Contract-assertion coverage (src/core/contracts.hpp).
//
// In Debug / VN2_CHECKED builds the numeric hot paths throw
// ContractViolation on contract breaches; in plain Release builds the
// macros compile to nothing and the pre-existing std::invalid_argument
// validation is the only guard. The tests ask the *library* (not this
// translation unit) which mode it was built in via contracts_active(), so
// the same test binary is correct in every CI configuration.
#include "core/contracts.hpp"

#include <gtest/gtest.h>

#include "core/inference.hpp"
#include "core/model.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "linalg/solve.hpp"
#include "metrics/schema.hpp"
#include "nmf/nmf.hpp"
#include "nmf/rank_selection.hpp"
#include "test_helpers.hpp"

namespace vn2 {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(Contracts, ViolationIsAnInvalidArgument) {
  // Call sites that promised std::invalid_argument keep that promise when
  // a VN2_REQUIRE fires instead: ContractViolation derives from it.
  const core::ContractViolation violation("precondition", "a == b", "demo",
                                          "contracts_test.cpp", 1);
  const std::invalid_argument* as_invalid = &violation;
  EXPECT_NE(as_invalid, nullptr);
  EXPECT_NE(std::string(violation.what()).find("demo"), std::string::npos);
  EXPECT_NE(std::string(violation.what()).find("a == b"), std::string::npos);
}

TEST(Contracts, MatmulDimensionMismatchTripsContract) {
  const Matrix a(2, 3, 1.0);
  const Matrix b(4, 2, 1.0);  // inner dimensions disagree: 3 vs 4
  if (core::contracts_active()) {
    EXPECT_THROW((void)linalg::matmul(a, b), core::ContractViolation);
  } else {
    EXPECT_THROW((void)linalg::matmul(a, b), std::invalid_argument);
  }
}

TEST(Contracts, MatvecAndVecmatMismatchAreRejectedEitherWay) {
  const Matrix a(2, 3, 1.0);
  // ContractViolation IS-A invalid_argument, so this holds in both modes.
  EXPECT_THROW((void)linalg::matvec(a, Vector(4)), std::invalid_argument);
  EXPECT_THROW((void)linalg::vecmat(Vector(4), a), std::invalid_argument);
}

TEST(Contracts, CholeskySolveSizeMismatchTripsContract) {
  const Matrix spd = {{4.0, 1.0}, {1.0, 3.0}};
  if (core::contracts_active()) {
    EXPECT_THROW((void)linalg::cholesky_solve(spd, Vector(3)),
                 core::ContractViolation);
  } else {
    EXPECT_THROW((void)linalg::cholesky_solve(spd, Vector(3)),
                 std::invalid_argument);
  }
}

TEST(Contracts, NnlsShapeMismatchTripsContract) {
  const Matrix a(3, 2, 1.0);
  if (core::contracts_active()) {
    EXPECT_THROW((void)linalg::nnls(a, Vector(5)), core::ContractViolation);
  } else {
    EXPECT_THROW((void)linalg::nnls(a, Vector(5)), std::invalid_argument);
  }
}

TEST(Contracts, NegativeNmfFactorTripsInvariant) {
  // A negative factor entry breaks the multiplicative update's
  // non-negativity invariant: the update preserves sign, so the negative
  // entry survives and the postcondition must catch it.
  const Matrix e(3, 3, 1.0);
  Matrix w(3, 2, 0.5);
  Matrix psi(2, 3, 0.5);
  w(1, 1) = -0.25;
  if (core::contracts_active()) {
    EXPECT_THROW(nmf::multiplicative_update(e, w, psi),
                 core::ContractViolation);
  } else {
    EXPECT_NO_THROW(nmf::multiplicative_update(e, w, psi));
  }
}

TEST(Contracts, HealthyNmfUpdateSatisfiesInvariant) {
  const Matrix e = {{1.0, 0.5, 0.2}, {0.4, 1.0, 0.6}, {0.3, 0.2, 1.0}};
  Matrix w(3, 2, 0.5);
  Matrix psi(2, 3, 0.5);
  EXPECT_NO_THROW(nmf::multiplicative_update(e, w, psi));
  EXPECT_TRUE(linalg::is_nonnegative(w));
  EXPECT_TRUE(linalg::is_nonnegative(psi));
}

TEST(Contracts, RankOutOfBoundsTripsContract) {
  const Matrix e(4, 4, 1.0);
  if (core::contracts_active()) {
    EXPECT_THROW((void)nmf::factorize(e, 9), core::ContractViolation);
    EXPECT_THROW((void)nmf::choose_rank({}), core::ContractViolation);
  } else {
    EXPECT_THROW((void)nmf::factorize(e, 9), std::invalid_argument);
    EXPECT_THROW((void)nmf::choose_rank({}), std::invalid_argument);
  }
}

class ContractsWithModel : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto synthetic =
        vn2::testing::make_synthetic(vn2::testing::standard_causes(), 200, 7);
    core::TrainingOptions options;
    options.rank = 4;
    options.nmf.max_iterations = 50;
    report_ = core::train(synthetic.states, options);
  }

  core::TrainingReport report_;
};

TEST_F(ContractsWithModel, WrongLengthStateVectorTripsContract) {
  const Vector short_state(metrics::kMetricCount - 1);
  if (core::contracts_active()) {
    EXPECT_THROW((void)core::diagnose(report_.model, short_state),
                 core::ContractViolation);
  } else {
    EXPECT_THROW((void)core::diagnose(report_.model, short_state),
                 std::invalid_argument);
  }
}

TEST_F(ContractsWithModel, WrongWidthBatchTripsContract) {
  const Matrix bad_batch(3, metrics::kMetricCount + 2);
  if (core::contracts_active()) {
    EXPECT_THROW((void)core::diagnose_batch(report_.model, bad_batch),
                 core::ContractViolation);
  } else {
    EXPECT_THROW((void)core::diagnose_batch(report_.model, bad_batch),
                 std::invalid_argument);
  }
}

TEST_F(ContractsWithModel, CorrectStateDiagnosesWithoutTrippingContracts) {
  EXPECT_NO_THROW(
      (void)core::diagnose(report_.model, Vector(metrics::kMetricCount)));
}

TEST(Contracts, WrongWidthTrainingMatrixTripsContract) {
  const Matrix bad_states(10, 7);
  if (core::contracts_active()) {
    EXPECT_THROW((void)core::train(bad_states, {}), core::ContractViolation);
  } else {
    EXPECT_THROW((void)core::train(bad_states, {}), std::invalid_argument);
  }
}

}  // namespace
}  // namespace vn2
