#include "core/interpretation.hpp"

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "test_helpers.hpp"

namespace vn2::core {
namespace {

using linalg::Vector;
using metrics::HazardEvent;
using metrics::MetricId;

/// Builds an encoded Ψ-row with given signed spikes (σ units).
Vector encoded_row(
    const std::vector<std::pair<MetricId, double>>& spikes) {
  Vector row(kEncodedCount, 0.0);
  for (const auto& [id, value] : spikes) {
    if (value >= 0.0)
      row[metrics::index_of(id)] = value;
    else
      row[metrics::kMetricCount + metrics::index_of(id)] = -value;
  }
  return row;
}

TEST(InterpretRow, RejectsWrongSize) {
  EXPECT_THROW(interpret_row(Vector(43), 0), std::invalid_argument);
}

TEST(InterpretRow, EmptyRowIsInactive) {
  const auto interp = interpret_row(Vector(kEncodedCount, 0.0), 3);
  EXPECT_EQ(interp.row, 3u);
  EXPECT_TRUE(interp.dominant_metrics.empty());
  EXPECT_FALSE(interp.has_label());
  EXPECT_THROW((void)interp.top_hazard(), std::logic_error);
}

TEST(InterpretRow, LoopSignatureLabelsRoutingLoop) {
  const auto interp = interpret_row(
      encoded_row({{MetricId::kLoopCounter, 8.0},
                   {MetricId::kTransmitCounter, 6.0},
                   {MetricId::kSelfTransmitCounter, 5.0},
                   {MetricId::kDuplicateCounter, 6.0},
                   {MetricId::kOverflowDropCounter, 4.0}}),
      0);
  ASSERT_TRUE(interp.has_label());
  EXPECT_EQ(interp.top_hazard(), HazardEvent::kRoutingLoop);
  // The loop signature's variation mass sits mostly on traffic counters
  // (transmit + self-transmit), so that is the dominant family.
  EXPECT_EQ(interp.dominant_family, metrics::MetricFamily::kTraffic);
}

TEST(InterpretRow, ContentionSignature) {
  // Paper §IV-C, Ψ5: NOACK_retransmit + MacI_backoff → contention.
  const auto interp = interpret_row(
      encoded_row({{MetricId::kNoackRetransmitCounter, 7.0},
                   {MetricId::kMacBackoffCounter, 8.0}}),
      1);
  ASSERT_TRUE(interp.has_label());
  EXPECT_EQ(interp.top_hazard(), HazardEvent::kContention);
}

TEST(InterpretRow, VoltageDropSignature) {
  const auto interp =
      interpret_row(encoded_row({{MetricId::kVoltage, -9.0}}), 2);
  ASSERT_FALSE(interp.dominant_metrics.empty());
  EXPECT_EQ(interp.dominant_metrics[0].first, MetricId::kVoltage);
  EXPECT_LT(interp.dominant_metrics[0].second, 0.0);  // Sign preserved.
  ASSERT_TRUE(interp.has_label());
  EXPECT_EQ(interp.top_hazard(), HazardEvent::kNodeLowVoltage);
  EXPECT_EQ(interp.dominant_family, metrics::MetricFamily::kEnergy);
}

TEST(InterpretRow, QueueOverflowSignature) {
  const auto interp = interpret_row(
      encoded_row({{MetricId::kOverflowDropCounter, 8.0},
                   {MetricId::kDuplicateCounter, 5.0}}),
      0);
  ASSERT_TRUE(interp.has_label());
  EXPECT_EQ(interp.top_hazard(), HazardEvent::kQueueOverflow);
}

TEST(InterpretRow, RisingNoiseNeedsRssiSpikes) {
  std::vector<std::pair<MetricId, double>> spikes;
  for (std::size_t slot = 0; slot < 6; ++slot)
    spikes.emplace_back(metrics::neighbor_rssi(slot), -6.0);
  const auto interp = interpret_row(encoded_row(spikes), 0);
  ASSERT_TRUE(interp.has_label());
  EXPECT_EQ(interp.top_hazard(), HazardEvent::kRisingNoise);
  EXPECT_EQ(interp.dominant_family, metrics::MetricFamily::kLinkQuality);
}

TEST(InterpretRow, DominanceFractionControlsSelection) {
  const Vector row = encoded_row(
      {{MetricId::kLoopCounter, 10.0}, {MetricId::kTransmitCounter, 3.0}});
  InterpretOptions loose;
  loose.dominance_fraction = 0.2;
  EXPECT_EQ(interpret_row(row, 0, loose).dominant_metrics.size(), 2u);
  InterpretOptions tight;
  tight.dominance_fraction = 0.5;
  EXPECT_EQ(interpret_row(row, 0, tight).dominant_metrics.size(), 1u);
}

TEST(InterpretRow, MaxDominantCaps) {
  std::vector<std::pair<MetricId, double>> spikes;
  for (std::size_t m = 0; m < 12; ++m)
    spikes.emplace_back(metrics::metric_at(m), 5.0);
  InterpretOptions options;
  options.max_dominant = 4;
  const auto interp = interpret_row(encoded_row(spikes), 0, options);
  EXPECT_EQ(interp.dominant_metrics.size(), 4u);
}

TEST(InterpretRow, SummaryMentionsTopMetric) {
  const auto interp =
      interpret_row(encoded_row({{MetricId::kLoopCounter, 9.0}}), 0);
  EXPECT_NE(interp.summary.find("LC"), std::string::npos);
}

TEST(Interpret, WholeMatrix) {
  linalg::Matrix psi(3, kEncodedCount, 0.0);
  psi(0, metrics::index_of(MetricId::kLoopCounter)) = 8.0;
  psi(1, metrics::index_of(MetricId::kMacBackoffCounter)) = 8.0;
  const auto interps = interpret(psi);
  ASSERT_EQ(interps.size(), 3u);
  EXPECT_EQ(interps[0].row, 0u);
  EXPECT_EQ(interps[2].row, 2u);
  EXPECT_FALSE(interps[2].has_label());  // All-zero row.
}

TEST(Interpret, TrainedModelRowsMostlyLabeled) {
  auto synthetic =
      vn2::testing::make_synthetic(vn2::testing::standard_causes(), 400, 7);
  TrainingOptions options;
  options.rank = 5;
  TrainingReport report = train(synthetic.states, options);
  const auto interps = interpret(report.model.psi());
  std::size_t labeled = 0;
  for (const auto& interp : interps)
    if (interp.has_label()) ++labeled;
  // The planted causes are strong; most factors should earn a label.
  EXPECT_GE(labeled, interps.size() / 2);
}

}  // namespace
}  // namespace vn2::core
