// The performance observatory: schema round-trips, order statistics,
// and the noise-aware regression gate (accept / reject / borderline),
// including the shrink-only baseline ratchet.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "benchstat/gate.hpp"
#include "benchstat/record.hpp"
#include "telemetry/sink.hpp"

namespace {

using vn2::benchstat::Baseline;
using vn2::benchstat::compare;
using vn2::benchstat::GateOptions;
using vn2::benchstat::GateReport;
using vn2::benchstat::make_metric;
using vn2::benchstat::ratchet_update;
using vn2::benchstat::Record;
using vn2::benchstat::SampleStats;
using vn2::benchstat::summarize;
using vn2::benchstat::Verdict;

Record make_run(const std::string& bench, std::vector<double> samples,
                bool gated = true, bool lower_is_better = true) {
  Record record;
  record.bench = bench;
  record.workload = "synthetic";
  record.provenance.git_sha = "deadbeef";
  record.provenance.reps = samples.size();
  record.cases.push_back(
      {"hot", {make_metric("seconds", "s", lower_is_better, gated,
                           std::move(samples))}});
  return record;
}

Baseline as_baseline(const Record& record) {
  Baseline baseline;
  baseline.records.push_back(record);
  return baseline;
}

const vn2::benchstat::Finding* find_finding(const GateReport& report,
                                            Verdict verdict) {
  for (const auto& finding : report.findings)
    if (finding.verdict == verdict) return &finding;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Order statistics.

TEST(SampleStats, SingleSampleCollapsesAllQuantiles) {
  const SampleStats stats = summarize({3.5});
  EXPECT_DOUBLE_EQ(stats.median, 3.5);
  EXPECT_DOUBLE_EQ(stats.min, 3.5);
  EXPECT_DOUBLE_EQ(stats.max, 3.5);
  EXPECT_DOUBLE_EQ(stats.q1, 3.5);
  EXPECT_DOUBLE_EQ(stats.q3, 3.5);
}

TEST(SampleStats, Type7QuantilesInterpolate) {
  // numpy.percentile([1,2,3,4], [25,50,75]) == [1.75, 2.5, 3.25].
  const SampleStats stats = summarize({4.0, 2.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.median, 2.5);
  EXPECT_DOUBLE_EQ(stats.q1, 1.75);
  EXPECT_DOUBLE_EQ(stats.q3, 3.25);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
}

TEST(SampleStats, OddCountMedianIsExact) {
  const SampleStats stats = summarize({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(stats.median, 5.0);
}

TEST(SampleStats, EmptyThrows) {
  EXPECT_THROW(static_cast<void>(summarize({})), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Schema round-trip.

TEST(RecordSchema, RoundTripPreservesEverything) {
  Record record = make_run("nmf_rank_sweep", {1.0, 1.1, 0.9});
  record.workload = "100x200, ranks 2..12";
  record.provenance.timestamp = "2026-08-08T12:00:00Z";
  record.provenance.bench_days = 0.25;
  record.environment.cpu_features = "avx2 fma";
  record.environment.hardware_concurrency = 16;
  record.environment.threads = 8;
  record.environment.telemetry_compiled = true;
  record.scale = {{"rows", 100.0}, {"cols", 200.0}};
  record.cases[0].metrics.push_back(
      make_metric("speedup", "x", false, false, {2.0, 2.2}));
  record.checks.push_back({"bit_identical", true});
  record.checks.push_back({"parity", false});
  record.resources.peak_rss_bytes = 123456789;
  record.resources.current_rss_bytes = 100000000;
  record.resources.cpu_user_ns = 5000000000;
  record.resources.cpu_system_ns = 250000000;
  record.resources.alloc_count = 42;
  record.resources.alloc_bytes = 1 << 20;
  record.telemetry_json = "{\"counters\": {\"x\": 1}}";

  vn2::telemetry::StringSink sink;
  vn2::benchstat::write_record(sink, record);
  const Record parsed = vn2::benchstat::read_record(sink.str());

  EXPECT_EQ(parsed.schema_version, vn2::benchstat::kSchemaVersion);
  EXPECT_EQ(parsed.bench, "nmf_rank_sweep");
  EXPECT_EQ(parsed.workload, "100x200, ranks 2..12");
  EXPECT_EQ(parsed.provenance.git_sha, "deadbeef");
  EXPECT_EQ(parsed.provenance.timestamp, "2026-08-08T12:00:00Z");
  EXPECT_DOUBLE_EQ(parsed.provenance.bench_days, 0.25);
  EXPECT_EQ(parsed.provenance.reps, 3u);
  EXPECT_EQ(parsed.environment.cpu_features, "avx2 fma");
  EXPECT_EQ(parsed.environment.hardware_concurrency, 16u);
  EXPECT_EQ(parsed.environment.threads, 8u);
  EXPECT_TRUE(parsed.environment.telemetry_compiled);
  ASSERT_EQ(parsed.scale.size(), 2u);
  EXPECT_EQ(parsed.scale[1].first, "cols");
  EXPECT_DOUBLE_EQ(parsed.scale[1].second, 200.0);
  ASSERT_EQ(parsed.cases.size(), 1u);
  ASSERT_EQ(parsed.cases[0].metrics.size(), 2u);
  const auto& seconds = parsed.cases[0].metrics[0];
  EXPECT_EQ(seconds.name, "seconds");
  EXPECT_TRUE(seconds.lower_is_better);
  EXPECT_TRUE(seconds.gated);
  ASSERT_EQ(seconds.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(seconds.samples[1], 1.1);
  EXPECT_DOUBLE_EQ(seconds.stats.median, 1.0);
  const auto& speedup = parsed.cases[0].metrics[1];
  EXPECT_EQ(speedup.unit, "x");
  EXPECT_FALSE(speedup.lower_is_better);
  EXPECT_FALSE(speedup.gated);
  ASSERT_EQ(parsed.checks.size(), 2u);
  EXPECT_TRUE(parsed.checks[0].pass);
  EXPECT_FALSE(parsed.checks[1].pass);
  EXPECT_EQ(parsed.resources.peak_rss_bytes, 123456789u);
  EXPECT_EQ(parsed.resources.alloc_count, 42u);
  EXPECT_EQ(parsed.resources.alloc_bytes, 1u << 20);
  EXPECT_NE(parsed.telemetry_json.find("\"counters\""), std::string::npos);
}

TEST(RecordSchema, PerCaseResourcesRoundTripAndStayOptional) {
  Record record = make_run("stream_bench", {1.0, 1.1, 0.9});
  record.cases.push_back({"unsampled", {}});
  vn2::benchstat::CaseResources& resources = record.cases[0].resources;
  resources.sampled = true;
  resources.peak_rss_bytes = 77000000;
  resources.interval_ms = 25;
  resources.rss_series = {{0, 50000000}, {25, 66000000}, {75, 77000000}};

  vn2::telemetry::StringSink sink;
  vn2::benchstat::write_record(sink, record);
  const Record parsed = vn2::benchstat::read_record(sink.str());

  ASSERT_EQ(parsed.cases.size(), 2u);
  const vn2::benchstat::CaseResources& got = parsed.cases[0].resources;
  EXPECT_TRUE(got.sampled);
  EXPECT_EQ(got.peak_rss_bytes, 77000000u);
  EXPECT_EQ(got.interval_ms, 25u);
  ASSERT_EQ(got.rss_series.size(), 3u);
  EXPECT_EQ(got.rss_series[1].offset_ms, 25u);
  EXPECT_EQ(got.rss_series[1].bytes, 66000000u);
  EXPECT_EQ(got.rss_series[2].offset_ms, 75u);
  // The case without a sampler window parses as "not sampled", matching
  // records written before per-case resources existed.
  EXPECT_FALSE(parsed.cases[1].resources.sampled);
  EXPECT_TRUE(parsed.cases[1].resources.rss_series.empty());
  // A pre-existing record without the field parses the same way.
  const Record legacy = vn2::benchstat::read_record(
      "{\"schema_version\": 1, \"bench\": \"old\", \"cases\": "
      "[{\"name\": \"only\", \"metrics\": []}]}");
  ASSERT_EQ(legacy.cases.size(), 1u);
  EXPECT_FALSE(legacy.cases[0].resources.sampled);
}

TEST(RecordSchema, BaselineRoundTripKeepsAllRecords) {
  Baseline baseline;
  baseline.records.push_back(make_run("alpha", {1.0, 1.1}));
  baseline.records.push_back(make_run("beta", {2.0, 2.1}, false));
  vn2::telemetry::StringSink sink;
  vn2::benchstat::write_baseline(sink, baseline);
  const Baseline parsed = vn2::benchstat::read_baseline(sink.str());
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_NE(parsed.find("alpha"), nullptr);
  ASSERT_NE(parsed.find("beta"), nullptr);
  EXPECT_FALSE(parsed.find("beta")->cases[0].metrics[0].gated);
  EXPECT_EQ(parsed.find("gamma"), nullptr);
}

TEST(RecordSchema, RejectsNewerSchemaVersion) {
  EXPECT_THROW(
      vn2::benchstat::read_record("{\"schema_version\": 99, \"bench\": \"x\"}"),
      std::runtime_error);
}

TEST(RecordSchema, MalformedInputThrowsWithPosition) {
  EXPECT_THROW(vn2::benchstat::read_record("{\"bench\": "),
               std::runtime_error);
  EXPECT_THROW(vn2::benchstat::read_record("not json at all"),
               std::runtime_error);
  EXPECT_THROW(vn2::benchstat::read_record("{\"bench\": \"x\"} trailing"),
               std::runtime_error);
}

TEST(RecordSchema, BaselineEntryWithStatsOnlySurvives) {
  // A hand-maintained baseline entry may carry derived stats without the
  // raw samples; the reader must not destroy them.
  const char* text =
      "{\"schema_version\": 1, \"bench\": \"hand\", \"cases\": [{\"name\": "
      "\"hot\", \"metrics\": [{\"name\": \"seconds\", \"unit\": \"s\", "
      "\"lower_is_better\": true, \"gated\": true, \"median\": 2.0, "
      "\"min\": 1.9, \"max\": 2.2, \"q1\": 1.95, \"q3\": 2.1}]}]}";
  const Record parsed = vn2::benchstat::read_record(text);
  ASSERT_EQ(parsed.cases.size(), 1u);
  const auto& metric = parsed.cases[0].metrics[0];
  EXPECT_TRUE(metric.samples.empty());
  EXPECT_DOUBLE_EQ(metric.stats.median, 2.0);
  EXPECT_DOUBLE_EQ(metric.stats.q3, 2.1);
}

// ---------------------------------------------------------------------------
// The gate.

TEST(Gate, IdenticalRunPasses) {
  const Record record = make_run("bench", {1.0, 1.01, 1.02, 1.03});
  const GateReport report =
      compare(as_baseline(record), {record}, GateOptions{});
  EXPECT_FALSE(report.failed());
  EXPECT_EQ(report.compared, 1u);
  EXPECT_EQ(report.regressions, 0u);
}

TEST(Gate, ClearRegressionFails) {
  // ~30% worse with disjoint IQRs: both gate conditions hold.
  const Record base = make_run("bench", {1.0, 1.01, 1.02, 1.03});
  const Record run = make_run("bench", {1.30, 1.31, 1.32, 1.33});
  const GateReport report = compare(as_baseline(base), {run}, GateOptions{});
  EXPECT_TRUE(report.failed());
  EXPECT_EQ(report.regressions, 1u);
  const auto* finding = find_finding(report, Verdict::kRegressed);
  ASSERT_NE(finding, nullptr);
  EXPECT_TRUE(finding->gated);
  EXPECT_GT(finding->worse_delta, 0.25);
}

TEST(Gate, NoisyMedianMoveWithOverlappingIqrPasses) {
  // Median is ~23% worse (beyond the 15% floor) but the sample spreads
  // overlap heavily — indistinguishable from noise, so no regression.
  const Record base = make_run("bench", {1.0, 1.01, 1.02, 1.03});
  const Record run = make_run("bench", {0.70, 1.10, 1.40, 1.60});
  const GateReport report = compare(as_baseline(base), {run}, GateOptions{});
  EXPECT_FALSE(report.failed());
  EXPECT_EQ(report.regressions, 0u);
}

TEST(Gate, WithinFloorMoveWithDisjointIqrPasses) {
  // Disjoint IQRs but only ~5% worse: below the relative floor.
  const Record base = make_run("bench", {1.00, 1.001, 1.002, 1.003});
  const Record run = make_run("bench", {1.05, 1.051, 1.052, 1.053});
  const GateReport report = compare(as_baseline(base), {run}, GateOptions{});
  EXPECT_FALSE(report.failed());
}

TEST(Gate, UngatedRegressionIsInformationalOnly) {
  const Record base = make_run("bench", {1.0, 1.01, 1.02}, /*gated=*/false);
  const Record run = make_run("bench", {2.0, 2.01, 2.02}, /*gated=*/false);
  const GateReport report = compare(as_baseline(base), {run}, GateOptions{});
  EXPECT_FALSE(report.failed());
  EXPECT_EQ(report.regressions, 0u);
  // Still reported, so humans see it.
  EXPECT_NE(find_finding(report, Verdict::kRegressed), nullptr);
}

TEST(Gate, HigherIsBetterDirectionRespected) {
  // A speedup metric dropping from ~2x to ~1.2x is a regression.
  const Record base = make_run("bench", {2.0, 2.01, 2.02}, true,
                               /*lower_is_better=*/false);
  const Record run = make_run("bench", {1.20, 1.21, 1.22}, true,
                              /*lower_is_better=*/false);
  const GateReport report = compare(as_baseline(base), {run}, GateOptions{});
  EXPECT_TRUE(report.failed());
  EXPECT_EQ(report.regressions, 1u);
}

TEST(Gate, SignificantImprovementIsCounted) {
  const Record base = make_run("bench", {2.0, 2.01, 2.02});
  const Record run = make_run("bench", {1.0, 1.01, 1.02});
  const GateReport report = compare(as_baseline(base), {run}, GateOptions{});
  EXPECT_FALSE(report.failed());
  EXPECT_EQ(report.improvements, 1u);
}

TEST(Gate, StaleBaselineMetricFails) {
  const Record base = make_run("bench", {1.0, 1.01});
  Record run = make_run("bench", {1.0, 1.01});
  run.cases[0].metrics[0].name = "renamed";
  const GateReport report = compare(as_baseline(base), {run}, GateOptions{});
  EXPECT_TRUE(report.failed());
  EXPECT_EQ(report.stale, 1u);
}

TEST(Gate, MissingBenchIsInformationalUnlessStrict) {
  const Record base = make_run("bench", {1.0, 1.01});
  const GateReport lenient = compare(as_baseline(base), {}, GateOptions{});
  EXPECT_FALSE(lenient.failed());
  EXPECT_NE(find_finding(lenient, Verdict::kMissing), nullptr);
  GateOptions strict;
  strict.strict = true;
  const GateReport gated = compare(as_baseline(base), {}, strict);
  EXPECT_TRUE(gated.failed());
}

TEST(Gate, FailedInvariantCheckFails) {
  const Record base = make_run("bench", {1.0, 1.01});
  Record run = make_run("bench", {1.0, 1.01});
  run.checks.push_back({"bit_identical", false});
  const GateReport report = compare(as_baseline(base), {run}, GateOptions{});
  EXPECT_TRUE(report.failed());
  EXPECT_EQ(report.failed_checks, 1u);
}

TEST(Gate, RenderTextSummarizesVerdict) {
  const Record base = make_run("bench", {1.0, 1.01, 1.02, 1.03});
  const Record run = make_run("bench", {1.30, 1.31, 1.32, 1.33});
  const GateReport report = compare(as_baseline(base), {run}, GateOptions{});
  const std::string text = vn2::benchstat::render_text(report);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  const std::string markdown = vn2::benchstat::render_markdown(report);
  EXPECT_NE(markdown.find("| bench |"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The baseline ratchet.

TEST(Ratchet, AdoptsImprovementsAndNewBenches) {
  Baseline old_baseline = as_baseline(make_run("bench", {2.0, 2.01, 2.02}));
  const Record faster = make_run("bench", {1.0, 1.01, 1.02});
  const Record brand_new = make_run("fresh", {5.0, 5.1});
  const auto result =
      ratchet_update(old_baseline, {faster, brand_new}, GateOptions{});
  ASSERT_FALSE(result.refused);
  ASSERT_EQ(result.baseline.records.size(), 2u);
  const Record* updated = result.baseline.find("bench");
  ASSERT_NE(updated, nullptr);
  EXPECT_DOUBLE_EQ(updated->cases[0].metrics[0].stats.median, 1.01);
  EXPECT_NE(result.baseline.find("fresh"), nullptr);
}

TEST(Ratchet, WithinFloorSlowdownKeepsOldEntry) {
  Baseline old_baseline =
      as_baseline(make_run("bench", {1.00, 1.001, 1.002}));
  const Record slightly_slower = make_run("bench", {1.05, 1.051, 1.052});
  const auto result =
      ratchet_update(old_baseline, {slightly_slower}, GateOptions{});
  ASSERT_FALSE(result.refused);
  const Record* updated = result.baseline.find("bench");
  ASSERT_NE(updated, nullptr);
  // The old, better entry survives: the baseline only ratchets downward.
  EXPECT_DOUBLE_EQ(updated->cases[0].metrics[0].stats.median, 1.001);
  EXPECT_TRUE(updated->cases[0].metrics[0].gated);
}

TEST(Ratchet, RefusesGatedRegression) {
  Baseline old_baseline = as_baseline(make_run("bench", {1.0, 1.01, 1.02}));
  const Record regressed = make_run("bench", {1.5, 1.51, 1.52});
  const auto result =
      ratchet_update(old_baseline, {regressed}, GateOptions{});
  EXPECT_TRUE(result.refused);
  EXPECT_NE(result.reason.find("regression"), std::string::npos);
}

TEST(Ratchet, RefusesFailedCheck) {
  Baseline old_baseline = as_baseline(make_run("bench", {1.0, 1.01}));
  Record run = make_run("bench", {1.0, 1.01});
  run.checks.push_back({"parity", false});
  const auto result = ratchet_update(old_baseline, {run}, GateOptions{});
  EXPECT_TRUE(result.refused);
  EXPECT_NE(result.reason.find("parity"), std::string::npos);
}

TEST(Ratchet, PartialRunKeepsUntouchedBenchesSorted) {
  Baseline old_baseline;
  old_baseline.records.push_back(make_run("zeta", {1.0, 1.01}));
  old_baseline.records.push_back(make_run("alpha", {2.0, 2.01}));
  const Record run = make_run("zeta", {0.5, 0.51});
  const auto result = ratchet_update(old_baseline, {run}, GateOptions{});
  ASSERT_FALSE(result.refused);
  ASSERT_EQ(result.baseline.records.size(), 2u);
  EXPECT_EQ(result.baseline.records[0].bench, "alpha");
  EXPECT_EQ(result.baseline.records[1].bench, "zeta");
  EXPECT_DOUBLE_EQ(
      result.baseline.find("zeta")->cases[0].metrics[0].stats.median, 0.505);
}

}  // namespace
