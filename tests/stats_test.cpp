#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "scenario/scenario.hpp"

namespace vn2::trace {
namespace {

TEST(Stats, SimulatedNetworkReport) {
  scenario::ScenarioBundle bundle = scenario::tiny(12, 3600.0, 3);
  wsn::Simulator sim = bundle.make_simulator();
  const wsn::SimulationResult result = sim.run();
  const Trace log = build_trace(result);
  const NetworkStats stats = compute_stats(result, log);

  EXPECT_EQ(stats.expected_nodes, sim.node_count() - 1);
  EXPECT_GT(stats.reporting_nodes, 0u);
  EXPECT_NEAR(stats.overall_prr, overall_prr(result), 1e-9);
  EXPECT_GE(stats.mean_hops, 1.0);

  for (const NodeStats& node : stats.nodes) {
    EXPECT_NE(node.node, wsn::kSinkId);
    EXPECT_GE(node.prr, 0.0);
    EXPECT_LE(node.prr, 1.05);
    if (node.snapshots > 0) {
      EXPECT_GE(node.last_seen, node.first_seen);
      EXPECT_GT(node.voltage, 2.5);
    }
    EXPECT_LE(node.mean_hops, node.max_hops + 1e-9);
  }
}

TEST(Stats, FailedNodeShowsReducedActivity) {
  scenario::ScenarioBundle bundle = scenario::tiny(12, 3600.0, 3);
  wsn::FaultCommand fail;
  fail.type = wsn::FaultCommand::Type::kNodeFailure;
  fail.node = 6;
  fail.start = 900.0;
  bundle.faults.push_back(fail);
  wsn::Simulator sim = bundle.make_simulator();
  const wsn::SimulationResult result = sim.run();
  const NetworkStats stats = compute_stats(result, build_trace(result));

  const NodeStats* dead = stats.find(6);
  ASSERT_NE(dead, nullptr);
  EXPECT_LT(dead->last_seen, 1000.0);
  // It reported for a quarter of the run; a healthy peer has ~4x snapshots.
  const NodeStats* alive = stats.find(3);
  ASSERT_NE(alive, nullptr);
  EXPECT_GT(alive->snapshots, 2 * dead->snapshots);
}

TEST(Stats, TraceOnlyVariant) {
  scenario::ScenarioBundle bundle = scenario::tiny(9, 1800.0, 7);
  const wsn::SimulationResult result = bundle.make_simulator().run();
  const Trace log = build_trace(result);
  const NetworkStats stats = compute_stats(log);
  EXPECT_GT(stats.reporting_nodes, 0u);
  EXPECT_DOUBLE_EQ(stats.overall_prr, 0.0);  // No origination log.
  for (const NodeStats& node : stats.nodes) EXPECT_GT(node.snapshots, 0u);
}

TEST(Stats, PrintIsWellFormed) {
  scenario::ScenarioBundle bundle = scenario::tiny(9, 1800.0, 7);
  const wsn::SimulationResult result = bundle.make_simulator().run();
  const NetworkStats stats = compute_stats(result, build_trace(result));
  std::ostringstream os;
  print_stats(os, stats);
  const std::string text = os.str();
  EXPECT_NE(text.find("overall PRR"), std::string::npos);
  EXPECT_NE(text.find("parentX"), std::string::npos);
  // One row per node plus two header lines.
  std::size_t lines = 0;
  for (char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, stats.nodes.size() + 2);
}

TEST(Stats, FindMissingNode) {
  NetworkStats stats;
  EXPECT_EQ(stats.find(3), nullptr);
}

}  // namespace
}  // namespace vn2::trace
