#include "linalg/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random.hpp"

namespace vn2::linalg {
namespace {

TEST(Pca, RejectsBadRank) {
  Matrix data = random_uniform_matrix(10, 4, 1);
  EXPECT_THROW(pca(data, 0), std::invalid_argument);
  EXPECT_THROW(pca(data, 5), std::invalid_argument);
}

TEST(Pca, FullRankReconstructsExactly) {
  Matrix data = random_uniform_matrix(12, 4, 3, -1.0, 1.0);
  PcaResult model = pca(data, 4);
  Matrix rec = pca_reconstruct(model);
  EXPECT_LT(frobenius_distance(data, rec), 1e-6);
}

TEST(Pca, ComponentsAreOrthonormal) {
  Matrix data = random_uniform_matrix(30, 6, 5, -2.0, 2.0);
  PcaResult model = pca(data, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i; j < 3; ++j) {
      const double d =
          dot(model.components.row_vector(i), model.components.row_vector(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(Pca, ExplainedVarianceDecreases) {
  Matrix data = random_uniform_matrix(50, 8, 9, -1.0, 1.0);
  // Plant a dominant direction.
  for (std::size_t i = 0; i < data.rows(); ++i)
    data(i, 0) += 10.0 * data(i, 1);
  PcaResult model = pca(data, 4);
  for (std::size_t c = 1; c < 4; ++c)
    EXPECT_GE(model.explained[c - 1], model.explained[c] - 1e-9);
}

TEST(Pca, RecoversPlantedDirection) {
  // Rank-1 data plus tiny noise: first component must align with the plant.
  const std::size_t n = 40, m = 6;
  Matrix data(n, m);
  Vector direction{1.0, -1.0, 2.0, 0.0, 0.5, -0.25};
  direction *= 1.0 / norm2(direction);
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> coeff(-3.0, 3.0);
  std::uniform_real_distribution<double> noise(-0.01, 0.01);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = coeff(rng);
    for (std::size_t j = 0; j < m; ++j)
      data(i, j) = t * direction[j] + noise(rng);
  }
  PcaResult model = pca(data, 1);
  const Vector found = model.components.row_vector(0);
  const double alignment = std::abs(dot(found, direction));
  EXPECT_GT(alignment, 0.999);
}

TEST(Pca, ReconstructionErrorDecreasesWithRank) {
  Matrix data = random_uniform_matrix(40, 10, 21, -1.0, 1.0);
  double previous = 1e300;
  for (std::size_t k : {1u, 3u, 5u, 8u, 10u}) {
    PcaResult model = pca(data, k);
    const double err = frobenius_distance(data, pca_reconstruct(model));
    EXPECT_LE(err, previous + 1e-9);
    previous = err;
  }
}

TEST(Pca, DeterministicAcrossRuns) {
  Matrix data = random_uniform_matrix(20, 5, 31, -1.0, 1.0);
  PcaResult a = pca(data, 2);
  PcaResult b = pca(data, 2);
  EXPECT_LT(frobenius_distance(a.components, b.components), 1e-12);
}

}  // namespace
}  // namespace vn2::linalg
