// Tests for the telemetry subsystem: registry thread-safety, span nesting,
// both sink formats round-tripping, the runtime and compile-time switches,
// and an end-to-end pipeline run leaving nonzero counters in every
// instrumented family. All tests share the process-global registry, so
// each starts with reset().
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/inference.hpp"
#include "core/model.hpp"
#include "core/parallel.hpp"
#include "linalg/nnls.hpp"
#include "linalg/random.hpp"
#include "nmf/nmf.hpp"
#include "scenario/scenario.hpp"
#include "support/synthetic.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/sink.hpp"
#include "trace/trace.hpp"

namespace vn2::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_collecting(true);
  }
  void TearDown() override {
    Registry::global().set_span_capacity(65536);
    Registry::global().reset();
    set_collecting(true);
  }
};

TEST_F(TelemetryTest, ConcurrentIncrementsSumExactly) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 100000;
  Counter& counter = Registry::global().counter("test.concurrent");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(TelemetryTest, MetricReferencesSurviveReset) {
  Counter& counter = Registry::global().counter("test.identity");
  counter.add(5);
  Registry::global().reset();
  EXPECT_EQ(counter.value(), 0u);
  counter.add(2);
  EXPECT_EQ(&counter, &Registry::global().counter("test.identity"));
  EXPECT_EQ(Registry::global().snapshot().counter("test.identity"), 2u);
}

TEST_F(TelemetryTest, HistogramBucketsByBitWidth) {
  Histogram& h = Registry::global().histogram("test.hist");
  for (std::uint64_t sample : {0u, 1u, 2u, 3u, 4u, 7u, 8u}) h.record(sample);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 25u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(3), 2u);  // 4, 7
  EXPECT_EQ(h.bucket(4), 1u);  // 8
}

TEST_F(TelemetryTest, SpanNestingTracksDepth) {
  {
    ScopedSpan outer("test.outer");
    ScopedSpan inner("test.inner");
  }
  const Snapshot snapshot = Registry::global().snapshot();
  ASSERT_EQ(snapshot.spans.size(), 2u);
  const SpanRecord* outer = nullptr;
  const SpanRecord* inner = nullptr;
  for (const SpanRecord& span : snapshot.spans) {
    if (span.name == "test.outer") outer = &span;
    if (span.name == "test.inner") inner = &span;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(outer->thread, inner->thread);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->duration_ns, outer->duration_ns);
}

TEST_F(TelemetryTest, SpanCapacityDropsAreCounted) {
  Registry::global().set_span_capacity(4);
  for (int i = 0; i < 6; ++i) ScopedSpan span("test.capped");
  const Snapshot snapshot = Registry::global().snapshot();
  EXPECT_EQ(snapshot.spans.size(), 4u);
  EXPECT_EQ(snapshot.spans_dropped, 2u);
  // Aggregated stats still see every occurrence.
  ASSERT_EQ(snapshot.span_stats.size(), 1u);
  EXPECT_EQ(snapshot.span_stats[0].count, 6u);
}

TEST_F(TelemetryTest, JsonLinesRoundTrips) {
  Registry::global().counter("test.count").add(42);
  Registry::global().gauge("test.gauge").set(2.5);
  Histogram& h = Registry::global().histogram("test.hist");
  h.record(3);
  h.record(900);
  { ScopedSpan span("test.span"); }
  const Snapshot before = Registry::global().snapshot();

  StringSink sink;
  write_json_lines(sink, before);
  const Snapshot after = read_json_lines(sink.str());

  EXPECT_EQ(after.compiled_in, before.compiled_in);
  EXPECT_EQ(after.counters, before.counters);
  EXPECT_EQ(after.gauges, before.gauges);
  ASSERT_EQ(after.histograms.size(), 1u);
  EXPECT_EQ(after.histograms[0].first, "test.hist");
  EXPECT_EQ(after.histograms[0].second.count, 2u);
  EXPECT_EQ(after.histograms[0].second.sum, 903u);
  EXPECT_EQ(after.histograms[0].second.min, 3u);
  EXPECT_EQ(after.histograms[0].second.max, 900u);
  ASSERT_EQ(after.span_stats.size(), before.span_stats.size());
  EXPECT_EQ(after.span_stats[0].name, "test.span");
  EXPECT_EQ(after.span_stats[0].count, before.span_stats[0].count);
  EXPECT_EQ(after.span_stats[0].total_ns, before.span_stats[0].total_ns);
}

TEST_F(TelemetryTest, TraceEventsRoundTrip) {
  Registry::global().record_span({"alpha", "alpha", 1000, 250, 0, 0});
  Registry::global().record_span(
      {"beta.gamma", "alpha/beta.gamma", 1250, 1, 1, 2});
  const Snapshot snapshot = Registry::global().snapshot();

  StringSink sink;
  write_trace_events(sink, snapshot);
  const std::vector<SpanRecord> parsed = read_trace_events(sink.str());

  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "alpha");
  EXPECT_EQ(parsed[0].path, "alpha");
  EXPECT_EQ(parsed[0].start_ns, 1000u);
  EXPECT_EQ(parsed[0].duration_ns, 250u);
  EXPECT_EQ(parsed[0].thread, 0u);
  EXPECT_EQ(parsed[0].depth, 0u);
  EXPECT_EQ(parsed[1].name, "beta.gamma");
  EXPECT_EQ(parsed[1].path, "alpha/beta.gamma");
  EXPECT_EQ(parsed[1].start_ns, 1250u);
  EXPECT_EQ(parsed[1].duration_ns, 1u);
  EXPECT_EQ(parsed[1].thread, 1u);
  EXPECT_EQ(parsed[1].depth, 2u);
}

TEST_F(TelemetryTest, MalformedInputThrows) {
  EXPECT_THROW((void)read_json_lines("{\"type\": \"nonsense\"}\n"),
               std::runtime_error);
  EXPECT_THROW((void)read_trace_events("not json at all"),
               std::runtime_error);
}

TEST_F(TelemetryTest, MacrosHonourCompileAndRuntimeSwitches) {
  VN2_COUNT("test.macro");
  VN2_COUNT_N("test.macro", 2);
  { VN2_SPAN("test.macro_span"); }
  Snapshot snapshot = Registry::global().snapshot();
  if (kCompiledIn) {
    EXPECT_EQ(snapshot.counter("test.macro"), 3u);
    ASSERT_EQ(snapshot.span_stats.size(), 1u);
    EXPECT_EQ(snapshot.span_stats[0].name, "test.macro_span");
  } else {
    // Compiled out: macros are no-ops and record nothing.
    EXPECT_EQ(snapshot.counter("test.macro"), 0u);
    EXPECT_TRUE(snapshot.span_stats.empty());
    EXPECT_EQ(VN2_CLOCK_NOW(), 0u);
  }

  // Runtime pause: nothing records while collecting is off.
  Registry::global().reset();
  set_collecting(false);
  VN2_COUNT("test.macro");
  { VN2_SPAN("test.macro_span"); }
  EXPECT_EQ(VN2_CLOCK_NOW(), 0u);
  snapshot = Registry::global().snapshot();
  EXPECT_EQ(snapshot.counter("test.macro"), 0u);
  EXPECT_TRUE(snapshot.span_stats.empty());
  set_collecting(true);
}

// The acceptance check: a real (small) pipeline run leaves nonzero
// counters in every instrumented family — simulator events, NMF
// iterations, NNLS solves, and parallel_for tasks.
TEST_F(TelemetryTest, PipelineRunPopulatesEveryCounterFamily) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";

  scenario::ScenarioBundle bundle = scenario::tiny(9, 600.0, 7);
  const wsn::SimulationResult result = bundle.make_simulator().run();
  const trace::Trace log = trace::build_trace(result);
  (void)trace::extract_states(log);

  const vn2::testing::SyntheticTrace synthetic = vn2::testing::make_synthetic(
      vn2::testing::standard_causes(), 400, 11);
  core::TrainingOptions options;
  options.rank = 6;
  const core::TrainingReport report = core::train(synthetic.states, options);
  (void)core::diagnose_batch(report.model, synthetic.states);

  const Snapshot snapshot = Registry::global().snapshot();
  EXPECT_GT(snapshot.counter("sim.events"), 0u);
  EXPECT_GT(snapshot.counter("sim.beacons"), 0u);
  EXPECT_GT(snapshot.counter("trace.csv.rows") +
                snapshot.counter("trace.states.extracted"),
            0u);
  EXPECT_GT(snapshot.counter("nmf.factorizations"), 0u);
  EXPECT_GT(snapshot.counter("nmf.iterations"), 0u);
  EXPECT_GT(snapshot.counter("nnls.solves"), 0u);
  EXPECT_GT(snapshot.counter("parallel.tasks"), 0u);
  EXPECT_GT(snapshot.counter("vn2.states.diagnosed"), 0u);
}

// ---------------------------------------------------------------------------
// Process resource visibility (resource.hpp).

TEST_F(TelemetryTest, ResourceSamplerReportsPlausibleValues) {
  const ResourceUsage usage = sample_resources();
#if defined(__linux__)
  ASSERT_TRUE(usage.sampled);
  EXPECT_GT(usage.peak_rss_bytes, 0u);
  EXPECT_GT(usage.current_rss_bytes, 0u);
  EXPECT_GE(usage.peak_rss_bytes, usage.current_rss_bytes);
  // A gtest process has certainly burned some CPU by now.
  EXPECT_GT(usage.cpu_total_ns(), 0u);
#else
  // Portable fallback: may or may not be available, but must not lie.
  if (!usage.sampled) {
    EXPECT_EQ(usage.peak_rss_bytes, 0u);
    EXPECT_EQ(usage.current_rss_bytes, 0u);
  }
#endif
}

TEST_F(TelemetryTest, ResourceSamplerPeakIsMonotonic) {
  const ResourceUsage before = sample_resources();
  // Touch a real chunk of memory so RSS has a reason to move; the peak
  // must never decrease across samples regardless.
  std::vector<double> ballast(4 << 20, 1.5);
  double sum = 0;
  for (double v : ballast) sum += v;
  const ResourceUsage after = sample_resources();
  EXPECT_GT(sum, 0.0);
  if (before.sampled && after.sampled) {
    EXPECT_GE(after.peak_rss_bytes, before.peak_rss_bytes);
  }
}

TEST_F(TelemetryTest, ThreadCpuClockAdvancesWithWork) {
  const std::uint64_t before = thread_cpu_ns();
  volatile double sink_value = 1.0;
  for (int i = 0; i < 2000000; ++i) sink_value = sink_value * 1.0000001 + 0.1;
  const std::uint64_t after = thread_cpu_ns();
  if (before == 0 && after == 0) GTEST_SKIP() << "no thread CPU clock here";
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0u);
}

TEST_F(TelemetryTest, SpansSplitWallAndCpuTime) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  {
    ScopedSpan span("test.cpu_split");
    volatile double sink_value = 1.0;
    for (int i = 0; i < 2000000; ++i)
      sink_value = sink_value * 1.0000001 + 0.1;
  }
  const Snapshot snapshot = Registry::global().snapshot();
  ASSERT_EQ(snapshot.spans.size(), 1u);
  ASSERT_EQ(snapshot.span_stats.size(), 1u);
  EXPECT_GT(snapshot.spans[0].duration_ns, 0u);
  // A pure compute loop spends nearly all wall time on-CPU; allow a
  // generous scheduler margin but require the split to be populated.
  if (thread_cpu_ns() > 0) {
    EXPECT_GT(snapshot.spans[0].cpu_ns, 0u);
    EXPECT_EQ(snapshot.span_stats[0].total_cpu_ns, snapshot.spans[0].cpu_ns);
  }
}

TEST_F(TelemetryTest, SnapshotEmbedsResourceUsage) {
  const Snapshot snapshot = Registry::global().snapshot();
#if defined(__linux__)
  EXPECT_TRUE(snapshot.resource.sampled);
  EXPECT_GT(snapshot.resource.peak_rss_bytes, 0u);
#else
  (void)snapshot;
#endif
}

// ---------------------------------------------------------------------------
// Allocation counters on the NMF/NNLS workspace seams.

TEST_F(TelemetryTest, NmfWorkspaceIsAllocationFreeOnceWarm) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  const linalg::Matrix e = linalg::random_uniform_matrix(24, 16, 3);
  linalg::Matrix w = linalg::random_uniform_matrix(24, 4, 5);
  linalg::Matrix psi = linalg::random_uniform_matrix(4, 16, 9);
  nmf::Workspace workspace;
  nmf::multiplicative_update(e, w, psi, workspace);
  const Snapshot warm = Registry::global().snapshot();
  EXPECT_GT(warm.counter("nmf.workspace.reallocs"), 0u);
  EXPECT_GT(warm.counter("nmf.workspace.alloc_bytes"), 0u);
  for (int sweep = 0; sweep < 5; ++sweep)
    nmf::multiplicative_update(e, w, psi, workspace);
  const Snapshot after = Registry::global().snapshot();
  // Same shapes, same workspace: the hot loop allocates nothing more.
  EXPECT_EQ(after.counter("nmf.workspace.reallocs"),
            warm.counter("nmf.workspace.reallocs"));
  EXPECT_EQ(after.counter("nmf.workspace.alloc_bytes"),
            warm.counter("nmf.workspace.alloc_bytes"));
}

TEST_F(TelemetryTest, NnlsWarmSolvesAllocateLessAndAtConstantRate) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  const linalg::Matrix a = linalg::random_uniform_matrix(12, 6, 21);
  const linalg::Vector b(12, 1.0);
  linalg::NnlsWorkspace workspace;
  (void)linalg::nnls(a, b, {}, workspace);
  const std::uint64_t cold =
      Registry::global().snapshot().counter("nnls.workspace.reallocs");
  EXPECT_GT(cold, 0u);
  EXPECT_GT(Registry::global().snapshot().counter(
                "nnls.workspace.alloc_bytes"),
            0u);
  (void)linalg::nnls(a, b, {}, workspace);
  const std::uint64_t after_one =
      Registry::global().snapshot().counter("nnls.workspace.reallocs");
  // Warm solves skip the packed/ax/gradient (re)growth; only the
  // per-iteration gram/rhs reshapes remain, so a warm solve allocates
  // strictly less than the cold one did.
  const std::uint64_t per_warm_solve = after_one - cold;
  EXPECT_LT(per_warm_solve, cold);
  for (int solve = 0; solve < 3; ++solve)
    (void)linalg::nnls(a, b, {}, workspace);
  const std::uint64_t after_four =
      Registry::global().snapshot().counter("nnls.workspace.reallocs");
  // ...and at a constant rate: the allocation cost of a warm solve never
  // creeps up across repetitions.
  EXPECT_EQ(after_four - after_one, 3 * per_warm_solve);
}

TEST_F(TelemetryTest, BatchInferenceAllocationsAreDeterministicAndBounded) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  const vn2::testing::SyntheticTrace synthetic = vn2::testing::make_synthetic(
      vn2::testing::standard_causes(), 200, 13);
  core::TrainingOptions options;
  options.rank = 5;
  const core::TrainingReport report = core::train(synthetic.states, options);

  auto reallocs_with = [&](std::size_t threads) {
    core::set_num_threads(threads);
    Registry::global().reset();
    (void)core::diagnose_batch(report.model, synthetic.states);
    const std::uint64_t count =
        Registry::global().snapshot().counter("nnls.workspace.reallocs");
    core::set_num_threads(0);
    return count;
  };
  const std::uint64_t serial = reallocs_with(1);
  EXPECT_GT(serial, 0u);
  // Single-threaded batch inference allocates identically run to run —
  // the counter is a stable observable the bench records can gate on.
  EXPECT_EQ(reallocs_with(1), serial);
  // Per-slot workspaces mean more threads only add per-slot warmups, a
  // cost independent of the state count; the per-solve gram/rhs churn
  // (the dominant term) is the same either way.
  const std::uint64_t parallel = reallocs_with(8);
  EXPECT_GE(parallel, serial);
  EXPECT_LE(parallel, serial * 2);
}

// ---------------------------------------------------------------------------
// ResourceSampler: the time-series side of resource telemetry. These run
// in the TSan CI job, so the start/stop/read interleavings are also a
// data-race check on the sampler's locking.

/// Spins until the sampler has taken at least `want` samples (bounded so
/// a platform without /proc cannot hang the test).
void wait_for_samples(const ResourceSampler& sampler, std::uint64_t want) {
  for (int spin = 0; spin < 2000 && sampler.total_samples() < want; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

TEST_F(TelemetryTest, SamplerRejectsZeroIntervalOrCapacity) {
  SamplerOptions zero_interval;
  zero_interval.interval_ms = 0;
  EXPECT_THROW(ResourceSampler{zero_interval}, std::invalid_argument);
  SamplerOptions zero_capacity;
  zero_capacity.capacity = 0;
  EXPECT_THROW(ResourceSampler{zero_capacity}, std::invalid_argument);
}

TEST_F(TelemetryTest, SamplerCapturesOrderedSeries) {
  SamplerOptions options;
  options.interval_ms = 1;
  ResourceSampler sampler(options);
  sampler.start();
  if (!kCompiledIn) {
    // Kill-switch builds: start() is a no-op, the series stays empty.
    EXPECT_FALSE(sampler.running());
    EXPECT_TRUE(sampler.series().empty());
    return;
  }
  EXPECT_TRUE(sampler.running());
  wait_for_samples(sampler, 3);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const std::vector<ResourceSample> series = sampler.series();
  ASSERT_GE(series.size(), 3u);  // Immediate + ticks + closing sample.
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GE(series[i].t_ns, series[i - 1].t_ns);
}

TEST_F(TelemetryTest, SamplerRingWrapsKeepingNewestOldestFirst) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  SamplerOptions options;
  options.interval_ms = 1;
  options.capacity = 4;
  ResourceSampler sampler(options);
  sampler.start();
  wait_for_samples(sampler, 7);
  sampler.stop();
  EXPECT_GT(sampler.total_samples(), 4u);
  const std::vector<ResourceSample> series = sampler.series();
  ASSERT_EQ(series.size(), 4u);  // Bounded by capacity after the wrap.
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GE(series[i].t_ns, series[i - 1].t_ns);
}

TEST_F(TelemetryTest, SamplerStartStopAreIdempotentAndRestartable) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  SamplerOptions options;
  options.interval_ms = 1;
  ResourceSampler sampler(options);
  sampler.stop();  // Stop before ever starting: no-op.
  EXPECT_EQ(sampler.total_samples(), 0u);
  sampler.start();
  sampler.start();  // Second start while running: no-op, no second thread.
  wait_for_samples(sampler, 2);
  sampler.stop();
  sampler.stop();  // Second stop: no-op.
  const std::uint64_t first_window = sampler.total_samples();
  EXPECT_GE(first_window, 2u);
  // Restarting appends into the same ring (how a bench brackets reps).
  sampler.start();
  wait_for_samples(sampler, first_window + 2);
  sampler.stop();
  EXPECT_GT(sampler.total_samples(), first_window);
  // reset() clears the window but keeps the sampler usable.
  sampler.reset();
  EXPECT_EQ(sampler.total_samples(), 0u);
  EXPECT_TRUE(sampler.series().empty());
}

TEST_F(TelemetryTest, SamplerTracksRegistryCounters) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  Counter& counter = Registry::global().counter("test.sampled_counter");
  SamplerOptions options;
  options.interval_ms = 1;
  options.counters = {"test.sampled_counter"};
  ResourceSampler sampler(options);
  sampler.start();
  counter.add(41);
  wait_for_samples(sampler, 3);
  counter.add(1);
  sampler.stop();
  const std::vector<ResourceSample> series = sampler.series();
  ASSERT_FALSE(series.empty());
  ASSERT_EQ(series.back().counters.size(), 1u);
  EXPECT_EQ(series.back().counters[0], 42u);  // Closing sample sees both.
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GE(series[i].counters[0], series[i - 1].counters[0]);
}

TEST_F(TelemetryTest, SamplerPeakSurvivesRingOverwrites) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  SamplerOptions options;
  options.interval_ms = 1;
  options.capacity = 2;
  ResourceSampler sampler(options);
  sampler.start();
  wait_for_samples(sampler, 5);
  sampler.stop();
  // Peak tracks every sample ever taken, not just the two retained.
  std::uint64_t retained_max = 0;
  for (const ResourceSample& s : sampler.series())
    retained_max = std::max(retained_max, s.current_rss_bytes);
  EXPECT_GE(sampler.peak_rss_bytes(), retained_max);
}

}  // namespace
}  // namespace vn2::telemetry
