// Tests for the telemetry subsystem: registry thread-safety, span nesting,
// both sink formats round-tripping, the runtime and compile-time switches,
// and an end-to-end pipeline run leaving nonzero counters in every
// instrumented family. All tests share the process-global registry, so
// each starts with reset().
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/inference.hpp"
#include "core/model.hpp"
#include "scenario/scenario.hpp"
#include "support/synthetic.hpp"
#include "telemetry/sink.hpp"
#include "trace/trace.hpp"

namespace vn2::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_collecting(true);
  }
  void TearDown() override {
    Registry::global().set_span_capacity(65536);
    Registry::global().reset();
    set_collecting(true);
  }
};

TEST_F(TelemetryTest, ConcurrentIncrementsSumExactly) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 100000;
  Counter& counter = Registry::global().counter("test.concurrent");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(TelemetryTest, MetricReferencesSurviveReset) {
  Counter& counter = Registry::global().counter("test.identity");
  counter.add(5);
  Registry::global().reset();
  EXPECT_EQ(counter.value(), 0u);
  counter.add(2);
  EXPECT_EQ(&counter, &Registry::global().counter("test.identity"));
  EXPECT_EQ(Registry::global().snapshot().counter("test.identity"), 2u);
}

TEST_F(TelemetryTest, HistogramBucketsByBitWidth) {
  Histogram& h = Registry::global().histogram("test.hist");
  for (std::uint64_t sample : {0u, 1u, 2u, 3u, 4u, 7u, 8u}) h.record(sample);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 25u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(3), 2u);  // 4, 7
  EXPECT_EQ(h.bucket(4), 1u);  // 8
}

TEST_F(TelemetryTest, SpanNestingTracksDepth) {
  {
    ScopedSpan outer("test.outer");
    ScopedSpan inner("test.inner");
  }
  const Snapshot snapshot = Registry::global().snapshot();
  ASSERT_EQ(snapshot.spans.size(), 2u);
  const SpanRecord* outer = nullptr;
  const SpanRecord* inner = nullptr;
  for (const SpanRecord& span : snapshot.spans) {
    if (span.name == "test.outer") outer = &span;
    if (span.name == "test.inner") inner = &span;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(outer->thread, inner->thread);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->duration_ns, outer->duration_ns);
}

TEST_F(TelemetryTest, SpanCapacityDropsAreCounted) {
  Registry::global().set_span_capacity(4);
  for (int i = 0; i < 6; ++i) ScopedSpan span("test.capped");
  const Snapshot snapshot = Registry::global().snapshot();
  EXPECT_EQ(snapshot.spans.size(), 4u);
  EXPECT_EQ(snapshot.spans_dropped, 2u);
  // Aggregated stats still see every occurrence.
  ASSERT_EQ(snapshot.span_stats.size(), 1u);
  EXPECT_EQ(snapshot.span_stats[0].count, 6u);
}

TEST_F(TelemetryTest, JsonLinesRoundTrips) {
  Registry::global().counter("test.count").add(42);
  Registry::global().gauge("test.gauge").set(2.5);
  Histogram& h = Registry::global().histogram("test.hist");
  h.record(3);
  h.record(900);
  { ScopedSpan span("test.span"); }
  const Snapshot before = Registry::global().snapshot();

  StringSink sink;
  write_json_lines(sink, before);
  const Snapshot after = read_json_lines(sink.str());

  EXPECT_EQ(after.compiled_in, before.compiled_in);
  EXPECT_EQ(after.counters, before.counters);
  EXPECT_EQ(after.gauges, before.gauges);
  ASSERT_EQ(after.histograms.size(), 1u);
  EXPECT_EQ(after.histograms[0].first, "test.hist");
  EXPECT_EQ(after.histograms[0].second.count, 2u);
  EXPECT_EQ(after.histograms[0].second.sum, 903u);
  EXPECT_EQ(after.histograms[0].second.min, 3u);
  EXPECT_EQ(after.histograms[0].second.max, 900u);
  ASSERT_EQ(after.span_stats.size(), before.span_stats.size());
  EXPECT_EQ(after.span_stats[0].name, "test.span");
  EXPECT_EQ(after.span_stats[0].count, before.span_stats[0].count);
  EXPECT_EQ(after.span_stats[0].total_ns, before.span_stats[0].total_ns);
}

TEST_F(TelemetryTest, TraceEventsRoundTrip) {
  Registry::global().record_span({"alpha", 1000, 250, 0, 0});
  Registry::global().record_span({"beta.gamma", 1250, 1, 1, 2});
  const Snapshot snapshot = Registry::global().snapshot();

  StringSink sink;
  write_trace_events(sink, snapshot);
  const std::vector<SpanRecord> parsed = read_trace_events(sink.str());

  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "alpha");
  EXPECT_EQ(parsed[0].start_ns, 1000u);
  EXPECT_EQ(parsed[0].duration_ns, 250u);
  EXPECT_EQ(parsed[0].thread, 0u);
  EXPECT_EQ(parsed[0].depth, 0u);
  EXPECT_EQ(parsed[1].name, "beta.gamma");
  EXPECT_EQ(parsed[1].start_ns, 1250u);
  EXPECT_EQ(parsed[1].duration_ns, 1u);
  EXPECT_EQ(parsed[1].thread, 1u);
  EXPECT_EQ(parsed[1].depth, 2u);
}

TEST_F(TelemetryTest, MalformedInputThrows) {
  EXPECT_THROW((void)read_json_lines("{\"type\": \"nonsense\"}\n"),
               std::runtime_error);
  EXPECT_THROW((void)read_trace_events("not json at all"),
               std::runtime_error);
}

TEST_F(TelemetryTest, MacrosHonourCompileAndRuntimeSwitches) {
  VN2_COUNT("test.macro");
  VN2_COUNT_N("test.macro", 2);
  { VN2_SPAN("test.macro_span"); }
  Snapshot snapshot = Registry::global().snapshot();
  if (kCompiledIn) {
    EXPECT_EQ(snapshot.counter("test.macro"), 3u);
    ASSERT_EQ(snapshot.span_stats.size(), 1u);
    EXPECT_EQ(snapshot.span_stats[0].name, "test.macro_span");
  } else {
    // Compiled out: macros are no-ops and record nothing.
    EXPECT_EQ(snapshot.counter("test.macro"), 0u);
    EXPECT_TRUE(snapshot.span_stats.empty());
    EXPECT_EQ(VN2_CLOCK_NOW(), 0u);
  }

  // Runtime pause: nothing records while collecting is off.
  Registry::global().reset();
  set_collecting(false);
  VN2_COUNT("test.macro");
  { VN2_SPAN("test.macro_span"); }
  EXPECT_EQ(VN2_CLOCK_NOW(), 0u);
  snapshot = Registry::global().snapshot();
  EXPECT_EQ(snapshot.counter("test.macro"), 0u);
  EXPECT_TRUE(snapshot.span_stats.empty());
  set_collecting(true);
}

// The acceptance check: a real (small) pipeline run leaves nonzero
// counters in every instrumented family — simulator events, NMF
// iterations, NNLS solves, and parallel_for tasks.
TEST_F(TelemetryTest, PipelineRunPopulatesEveryCounterFamily) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";

  scenario::ScenarioBundle bundle = scenario::tiny(9, 600.0, 7);
  const wsn::SimulationResult result = bundle.make_simulator().run();
  const trace::Trace log = trace::build_trace(result);
  (void)trace::extract_states(log);

  const vn2::testing::SyntheticTrace synthetic = vn2::testing::make_synthetic(
      vn2::testing::standard_causes(), 400, 11);
  core::TrainingOptions options;
  options.rank = 6;
  const core::TrainingReport report = core::train(synthetic.states, options);
  (void)core::diagnose_batch(report.model, synthetic.states);

  const Snapshot snapshot = Registry::global().snapshot();
  EXPECT_GT(snapshot.counter("sim.events"), 0u);
  EXPECT_GT(snapshot.counter("sim.beacons"), 0u);
  EXPECT_GT(snapshot.counter("trace.csv.rows") +
                snapshot.counter("trace.states.extracted"),
            0u);
  EXPECT_GT(snapshot.counter("nmf.factorizations"), 0u);
  EXPECT_GT(snapshot.counter("nmf.iterations"), 0u);
  EXPECT_GT(snapshot.counter("nnls.solves"), 0u);
  EXPECT_GT(snapshot.counter("parallel.tasks"), 0u);
  EXPECT_GT(snapshot.counter("vn2.states.diagnosed"), 0u);
}

}  // namespace
}  // namespace vn2::telemetry
