// Tests for span path tracking and call-tree aggregation: nesting builds
// "/"-joined paths, threads keep independent path stacks, parallel_for
// workers inherit the submitting thread's path, and build_call_tree /
// flatten / read_call_tree_json agree on inclusive and exclusive times.
#include "telemetry/calltree.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::telemetry {
namespace {

class CallTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_collecting(true);
  }
  void TearDown() override {
    core::set_num_threads(0);
    Registry::global().reset();
    set_collecting(true);
  }
};

/// path_stats row for `path`, or nullptr.
const SpanStats* find_path(const Snapshot& snapshot,
                           const std::string& path) {
  for (const SpanStats& s : snapshot.path_stats)
    if (s.name == path) return &s;
  return nullptr;
}

TEST_F(CallTreeTest, NestedSpansRecordSlashJoinedPaths) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
    { ScopedSpan inner("inner"); }
  }
  const Snapshot snapshot = Registry::global().snapshot();
  const SpanStats* outer = find_path(snapshot, "outer");
  const SpanStats* inner = find_path(snapshot, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_EQ(find_path(snapshot, "inner"), nullptr);
}

TEST_F(CallTreeTest, ThreadsKeepIndependentPathStacks) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  {
    ScopedSpan outer("outer");
    // A plain std::thread has no span context and no inherited prefix, so
    // its spans are roots — only parallel_for propagates ancestry.
    std::thread worker([] { ScopedSpan span("detached"); });
    worker.join();
  }
  const Snapshot snapshot = Registry::global().snapshot();
  EXPECT_NE(find_path(snapshot, "detached"), nullptr);
  EXPECT_EQ(find_path(snapshot, "outer/detached"), nullptr);
}

TEST_F(CallTreeTest, ParallelForWorkersInheritSubmitterPath) {
  if (!kCompiledIn) GTEST_SKIP() << "built with VN2_TELEMETRY=OFF";
  core::set_num_threads(4);
  {
    ScopedSpan outer("outer");
    core::parallel_for(0, 64, 1, [](std::size_t) {
      ScopedSpan unit("unit");
    });
  }
  const Snapshot snapshot = Registry::global().snapshot();
  const SpanStats* nested = find_path(snapshot, "outer/unit");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->count, 64u);
  // No worker span escaped to the root: every "unit" is under "outer".
  EXPECT_EQ(find_path(snapshot, "unit"), nullptr);
}

TEST_F(CallTreeTest, BuildComputesInclusiveAndClampedExclusive) {
  std::vector<SpanStats> stats;
  stats.push_back({"a", 1, 100, 100, 100, 40});
  stats.push_back({"a/b", 2, 30, 10, 20, 30});
  stats.push_back({"a/b/c", 4, 10, 1, 5, 10});
  stats.push_back({"d/e", 1, 50, 50, 50, 0});
  const CallTree tree = build_call_tree(stats);
  ASSERT_EQ(tree.roots.size(), 2u);  // "a" then "d", by name.
  const CallTreeNode& a = tree.roots[0];
  EXPECT_EQ(a.path, "a");
  EXPECT_EQ(a.wall_ns, 100u);
  EXPECT_EQ(a.excl_wall_ns, 70u);  // 100 - 30.
  ASSERT_EQ(a.children.size(), 1u);
  EXPECT_EQ(a.children[0].excl_wall_ns, 20u);  // 30 - 10.
  EXPECT_EQ(a.children[0].children[0].excl_wall_ns, 10u);  // Leaf.
  // "d" was never measured: synthesized with count 0, inclusive = child.
  const CallTreeNode& d = tree.roots[1];
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.wall_ns, 50u);
  EXPECT_EQ(d.excl_wall_ns, 0u);
}

TEST_F(CallTreeTest, ExclusiveClampsWhenParallelChildrenOverlap) {
  // Workers overlap in wall time, so children can sum past the parent.
  std::vector<SpanStats> stats;
  stats.push_back({"p", 1, 100, 100, 100, 100});
  stats.push_back({"p/w", 8, 400, 40, 60, 400});
  const CallTree tree = build_call_tree(stats);
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_EQ(tree.roots[0].excl_wall_ns, 0u);
  EXPECT_EQ(tree.roots[0].wall_ns, 100u);
}

TEST_F(CallTreeTest, FlattenIsPreorderWithSiblingsByName) {
  std::vector<SpanStats> stats;
  stats.push_back({"z", 1, 10, 10, 10, 0});
  stats.push_back({"a", 1, 10, 10, 10, 0});
  stats.push_back({"a/c", 1, 2, 2, 2, 0});
  stats.push_back({"a/b", 1, 3, 3, 3, 0});
  const std::vector<PathProfile> flat = flatten(build_call_tree(stats));
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[0].path, "a");
  EXPECT_EQ(flat[1].path, "a/b");
  EXPECT_EQ(flat[2].path, "a/c");
  EXPECT_EQ(flat[3].path, "z");
}

TEST_F(CallTreeTest, BuildRejectsMalformedPaths) {
  EXPECT_THROW(build_call_tree({SpanStats{"", 1, 1, 1, 1, 0}}),
               std::invalid_argument);
  EXPECT_THROW(build_call_tree({SpanStats{"a//b", 1, 1, 1, 1, 0}}),
               std::invalid_argument);
  EXPECT_THROW(build_call_tree({SpanStats{"a/", 1, 1, 1, 1, 0}}),
               std::invalid_argument);
}

TEST_F(CallTreeTest, SnapshotJsonRoundTripsThroughReader) {
  Snapshot snapshot;  // Hand-built: works identically with telemetry off.
  snapshot.path_stats.push_back({"train", 1, 5000000, 5000000, 5000000, 4000000});
  snapshot.path_stats.push_back({"train/nmf", 3, 3000000, 500000, 2000000, 3000000});
  StringSink sink;
  write_json(sink, snapshot);
  const std::vector<PathProfile> parsed = read_call_tree_json(sink.str());
  const std::vector<PathProfile> expected =
      flatten(build_call_tree(snapshot.path_stats));
  ASSERT_EQ(parsed.size(), expected.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].path, expected[i].path);
    EXPECT_EQ(parsed[i].count, expected[i].count);
    EXPECT_EQ(parsed[i].wall_ns, expected[i].wall_ns);
    EXPECT_EQ(parsed[i].cpu_ns, expected[i].cpu_ns);
    EXPECT_EQ(parsed[i].excl_wall_ns, expected[i].excl_wall_ns);
    EXPECT_EQ(parsed[i].excl_cpu_ns, expected[i].excl_cpu_ns);
  }
}

TEST_F(CallTreeTest, ReaderRejectsDocumentsWithoutCallTree) {
  EXPECT_THROW(read_call_tree_json("{\"spans\": {}}"), std::runtime_error);
  EXPECT_THROW(read_call_tree_json(""), std::invalid_argument);
}

TEST_F(CallTreeTest, RenderShowsIndentedPathsAndHandlesEmpty) {
  std::vector<SpanStats> stats;
  stats.push_back({"a", 1, 2000000, 2000000, 2000000, 1000000});
  stats.push_back({"a/b", 1, 1000000, 1000000, 1000000, 1000000});
  const std::string text = render_call_tree(build_call_tree(stats));
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("b"), std::string::npos);
  EXPECT_NE(text.find("incl ms"), std::string::npos);
  EXPECT_NE(render_call_tree(CallTree{}).find("no spans"),
            std::string::npos);
}

}  // namespace
}  // namespace vn2::telemetry
