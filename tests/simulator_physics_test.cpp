// Physics- and instrumentation-level behaviours of the simulator: the
// mechanisms that give each Table-I hazard its metric signature.
#include <gtest/gtest.h>

#include <cmath>

#include "scenario/scenario.hpp"
#include "trace/trace.hpp"
#include "wsn/simulator.hpp"

namespace vn2::wsn {
namespace {

using metrics::MetricId;

TEST(Physics, TemperatureSpikeAcceleratesReporting) {
  // Clock drift: a heat wave makes crystals run off-nominal, changing the
  // packet pacing (Table I, "unstable clock").
  auto make = [](bool spike) {
    scenario::ScenarioBundle bundle = scenario::tiny(9, 7200.0, 5);
    if (spike) {
      FaultCommand cmd;
      cmd.type = FaultCommand::Type::kTemperatureSpike;
      cmd.center = {8.0, 8.0};
      cmd.radius_m = 200.0;
      cmd.start = 600.0;
      cmd.end = 7200.0;
      cmd.magnitude = 40.0;
      bundle.faults.push_back(cmd);
    }
    return bundle.make_simulator().run();
  };
  const SimulationResult normal = make(false);
  const SimulationResult heated = make(true);
  // Hotter clock → shorter intervals → more report packets originated.
  // A +40 °C spike gives drift ≈ 2e-5·43² ≈ 3.7%; expect a clear majority
  // of it network-wide.
  EXPECT_GT(heated.originations.size(), normal.originations.size() * 1.02);
}

TEST(Physics, NoiseRiseShowsInReportedRssi) {
  // The RSSI register measures total power: a noise flood is visible on
  // weak links' reported RSSI (the paper's "NeighborRssi" hazard row).
  scenario::ScenarioBundle bundle = scenario::tiny(9, 3600.0, 5, 18.0);
  FaultCommand cmd;
  cmd.type = FaultCommand::Type::kNoiseRise;
  cmd.center = {18.0, 18.0};
  cmd.radius_m = 200.0;
  cmd.start = 1800.0;
  cmd.end = 3600.0;
  cmd.magnitude = 12.0;
  bundle.faults.push_back(cmd);
  Simulator sim = bundle.make_simulator();

  sim.run_until(1795.0);
  double before = 0.0;
  std::size_t before_count = 0;
  for (NodeId id = 1; id < sim.node_count(); ++id) {
    for (const NeighborEntry& entry : sim.node(id).table().slots()) {
      if (!entry.occupied()) continue;
      before += entry.rssi_dbm;
      ++before_count;
    }
  }
  sim.run_until(3500.0);
  double during = 0.0;
  std::size_t during_count = 0;
  for (NodeId id = 1; id < sim.node_count(); ++id) {
    for (const NeighborEntry& entry : sim.node(id).table().slots()) {
      if (!entry.occupied()) continue;
      during += entry.rssi_dbm;
      ++during_count;
    }
  }
  ASSERT_GT(before_count, 0u);
  ASSERT_GT(during_count, 0u);
  EXPECT_GT(during / static_cast<double>(during_count),
            before / static_cast<double>(before_count) + 1.0);
}

TEST(Physics, VoltageMetricIsAdcQuantized) {
  scenario::ScenarioBundle bundle = scenario::tiny(9, 1800.0, 5);
  Simulator sim = bundle.make_simulator();
  sim.run_until(1800.0);
  for (NodeId id = 1; id < sim.node_count(); ++id) {
    const double v = sim.node(id).metric(MetricId::kVoltage);
    if (v == 0.0) continue;  // Never sampled yet.
    const double steps = v / 0.003;
    EXPECT_NEAR(steps, std::round(steps), 1e-6) << "node " << id;
  }
}

TEST(Physics, PathMetricsReflectTopologyDepth) {
  // A 6-hop deterministic chain: far nodes must report longer paths and
  // larger path ETX than near ones.
  SimConfig config;
  for (int i = 0; i <= 6; ++i) config.positions.push_back({25.0 * i, 0.0});
  config.duration = 1800.0;
  config.report_period = 60.0;
  config.beacon_period = 10.0;
  config.seed = 3;
  config.radio.shadowing_stddev_db = 0.0;
  Simulator sim(config);
  sim.run_until(1800.0);
  EXPECT_GT(sim.node(6).metric(MetricId::kPathLength),
            sim.node(1).metric(MetricId::kPathLength));
  EXPECT_GT(sim.node(6).metric(MetricId::kPathEtx),
            sim.node(1).metric(MetricId::kPathEtx));
  EXPECT_GE(sim.node(6).metric(MetricId::kPathLength), 4.0);
}

TEST(Physics, ForwardCounterOnlyOnRelays) {
  SimConfig config;
  for (int i = 0; i <= 3; ++i) config.positions.push_back({25.0 * i, 0.0});
  config.duration = 1800.0;
  config.report_period = 60.0;
  config.beacon_period = 10.0;
  config.seed = 3;
  config.radio.shadowing_stddev_db = 0.0;
  Simulator sim(config);
  sim.run_until(1800.0);
  // Node 1 relays for 2 and 3; node 3 is a leaf.
  EXPECT_GT(sim.node(1).metric(MetricId::kForwardCounter), 10.0);
  EXPECT_DOUBLE_EQ(sim.node(3).metric(MetricId::kForwardCounter), 0.0);
}

TEST(Physics, SensorMetricsTrackEnvironment) {
  scenario::ScenarioBundle bundle = scenario::tiny(9, 3600.0, 5);
  Simulator sim = bundle.make_simulator();
  sim.run_until(3600.0);
  const Node& node = sim.node(1);
  const double ambient =
      sim.environment().temperature_c(node.position(), 3600.0);
  // Within jitter (3%) plus the report-sampling offset.
  EXPECT_NEAR(node.metric(MetricId::kTemperature), ambient,
              0.15 * std::abs(ambient) + 2.0);
  EXPECT_GT(node.metric(MetricId::kHumidity), 0.0);
  EXPECT_NEAR(node.metric(MetricId::kVoltage), node.voltage(), 0.004);
}

TEST(Physics, DeadNodesHoldTheirLastState) {
  scenario::ScenarioBundle bundle = scenario::tiny(9, 1800.0, 5);
  Simulator sim = bundle.make_simulator();
  sim.run_until(900.0);
  sim.mutable_node(4).fail();
  const double tx_at_death = sim.node(4).metric(MetricId::kTransmitCounter);
  sim.run_until(1800.0);
  EXPECT_DOUBLE_EQ(sim.node(4).metric(MetricId::kTransmitCounter),
                   tx_at_death);
}

TEST(Physics, LatencySpilloverKeepsPrrNearUnity) {
  // Per-window PRR can exceed 1 slightly (arrival-time binning), and even
  // the overall ratio can edge past 1 by a hair: duplicate suppression is
  // keyed on (origin, seq, hops) like CTP's THL, so a retransmitted copy
  // that took a different-length path is occasionally delivered twice.
  scenario::ScenarioBundle bundle = scenario::tiny(16, 7200.0, 9);
  const SimulationResult result = bundle.make_simulator().run();
  EXPECT_LE(trace::overall_prr(result), 1.01);
  for (const trace::PrrPoint& p : trace::prr_series(result, 600.0))
    EXPECT_LE(p.prr(), 1.15);
}

}  // namespace
}  // namespace vn2::wsn
