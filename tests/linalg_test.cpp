#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/random.hpp"
#include "linalg/solve.hpp"

namespace vn2::linalg {
namespace {

TEST(Vector, ConstructionAndIndexing) {
  Vector v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  v[2] = -2.0;
  EXPECT_DOUBLE_EQ(v[2], -2.0);
}

TEST(Vector, OutOfRangeThrows) {
  Vector v(2);
  EXPECT_THROW(v[2], std::out_of_range);
  const Vector& cv = v;
  EXPECT_THROW(cv[5], std::out_of_range);
}

TEST(Vector, Arithmetic) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{0.5, -1.0, 2.0};
  Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 1.5);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  EXPECT_DOUBLE_EQ(sum[2], 5.0);
  Vector diff = a - b;
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  Vector scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled[2], 6.0);
}

TEST(Vector, MismatchedSizesThrow) {
  Vector a(3), b(4);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(Vector, Norms) {
  Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm1(v), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(sum(v), -1.0);
  EXPECT_DOUBLE_EQ(mean(v), -0.5);
}

TEST(Vector, MeanOfEmptyThrows) {
  EXPECT_THROW(mean(Vector{}), std::invalid_argument);
}

TEST(Vector, DotProduct) {
  EXPECT_DOUBLE_EQ(dot(Vector{1, 2, 3}, Vector{4, 5, 6}), 32.0);
}

TEST(Matrix, ConstructionAndShape) {
  Matrix m(2, 3, 7.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, IndexOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(m(0, 2), std::out_of_range);
}

TEST(Matrix, RowAccessAndMutation) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  row[0] = 40.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 40.0);
  Vector rv = m.row_vector(0);
  EXPECT_DOUBLE_EQ(rv[2], 3.0);
  Vector cv = m.col_vector(1);
  EXPECT_DOUBLE_EQ(cv[1], 5.0);
}

TEST(Matrix, SetRow) {
  Matrix m(2, 2);
  m.set_row(1, Vector{9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
  EXPECT_THROW(m.set_row(0, Vector{1.0}), std::invalid_argument);
}

TEST(Matrix, AppendRow) {
  Matrix m;
  std::vector<double> r1{1.0, 2.0};
  m.append_row(r1);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 2u);
  std::vector<double> bad{1.0, 2.0, 3.0};
  EXPECT_THROW(m.append_row(bad), std::invalid_argument);
}

TEST(Matrix, Arithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 1}, {1, 1}};
  Matrix c = a + b;
  EXPECT_DOUBLE_EQ(c(1, 1), 5.0);
  Matrix d = a - b;
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  Matrix e = a * 3.0;
  EXPECT_DOUBLE_EQ(e(1, 0), 9.0);
  EXPECT_THROW(a += Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, Matmul) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(Matrix, MatvecAndVecmat) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Vector x{1.0, -1.0};
  Vector y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
  Vector z = vecmat(Vector{1.0, 0.0, 2.0}, a);
  EXPECT_DOUBLE_EQ(z[0], 11.0);
  EXPECT_DOUBLE_EQ(z[1], 14.0);
  EXPECT_THROW(matvec(a, Vector(3)), std::invalid_argument);
  EXPECT_THROW(vecmat(Vector(2), a), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a = random_uniform_matrix(7, 5, 99, -1.0, 1.0);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Matrix, Norms) {
  Matrix a{{3, 0}, {0, -4}};
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(entrywise_l1(a), 7.0);
  EXPECT_DOUBLE_EQ(max_abs(a), 4.0);
  EXPECT_DOUBLE_EQ(frobenius_distance(a, a), 0.0);
  EXPECT_THROW(frobenius_distance(a, Matrix(1, 2)), std::invalid_argument);
}

TEST(Matrix, IsNonnegative) {
  EXPECT_TRUE(is_nonnegative(Matrix{{0, 1}, {2, 3}}));
  EXPECT_FALSE(is_nonnegative(Matrix{{0, -1e-6}}));
  EXPECT_TRUE(is_nonnegative(Matrix{{0, -1e-6}}, 1e-5));
}

TEST(Random, Deterministic) {
  Matrix a = random_uniform_matrix(4, 4, 123);
  Matrix b = random_uniform_matrix(4, 4, 123);
  EXPECT_EQ(a, b);
  Matrix c = random_uniform_matrix(4, 4, 124);
  EXPECT_NE(a, c);
}

TEST(Random, RespectsBounds) {
  Matrix a = random_uniform_matrix(20, 20, 5, 2.0, 3.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a.data()[i], 2.0);
    EXPECT_LT(a.data()[i], 3.0);
  }
}

TEST(Random, GaussianMoments) {
  Matrix g = random_gaussian_matrix(200, 200, 7, 1.0, 2.0);
  double mean = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) mean += g.data()[i];
  mean /= static_cast<double>(g.size());
  EXPECT_NEAR(mean, 1.0, 0.05);
  double var = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i)
    var += (g.data()[i] - mean) * (g.data()[i] - mean);
  var /= static_cast<double>(g.size());
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Cholesky, SolvesSpdSystem) {
  Matrix a{{4, 1}, {1, 3}};
  Vector b{1.0, 2.0};
  Vector x = cholesky_solve(a, b);
  Vector ax = matvec(a, x);
  EXPECT_NEAR(ax[0], 1.0, 1e-12);
  EXPECT_NEAR(ax[1], 2.0, 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  EXPECT_THROW(cholesky_factor(Matrix{{0, 0}, {0, 0}}), std::runtime_error);
  EXPECT_THROW(cholesky_factor(Matrix{{1, 0, 0}}), std::invalid_argument);
}

TEST(Cholesky, FactorReconstructs) {
  // Build an SPD matrix as BᵀB + I.
  Matrix b = random_uniform_matrix(6, 6, 11, -1.0, 1.0);
  Matrix a = matmul(transpose(b), b);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 1.0;
  Matrix l = cholesky_factor(a);
  Matrix reconstructed = matmul(l, transpose(l));
  EXPECT_LT(frobenius_distance(a, reconstructed), 1e-9);
}

// Property sweep: matmul associativity on random matrices of varied shapes.
class MatmulProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatmulProperty, Associativity) {
  const std::uint64_t seed = GetParam();
  Matrix a = random_uniform_matrix(5, 4, seed, -2.0, 2.0);
  Matrix b = random_uniform_matrix(4, 6, seed + 1, -2.0, 2.0);
  Matrix c = random_uniform_matrix(6, 3, seed + 2, -2.0, 2.0);
  Matrix left = matmul(matmul(a, b), c);
  Matrix right = matmul(a, matmul(b, c));
  EXPECT_LT(frobenius_distance(left, right), 1e-10);
}

TEST_P(MatmulProperty, TransposeOfProduct) {
  const std::uint64_t seed = GetParam();
  Matrix a = random_uniform_matrix(4, 5, seed, -1.0, 1.0);
  Matrix b = random_uniform_matrix(5, 3, seed + 9, -1.0, 1.0);
  Matrix lhs = transpose(matmul(a, b));
  Matrix rhs = matmul(transpose(b), transpose(a));
  EXPECT_LT(frobenius_distance(lhs, rhs), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulProperty,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace vn2::linalg
