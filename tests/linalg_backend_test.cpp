// Parity and determinism tests for the pluggable kernel backends
// (linalg/kernels.hpp). The reference backend is the semantics oracle: the
// other backends must agree on every shape the pipeline produces —
// including empty, single-row/column, and sizes that don't divide the tile
// geometry — and every backend must be bit-identical across thread counts
// and run-to-run. Tolerances per the parity policy (DESIGN.md): blocked is
// held to ≤1e-13 vs reference (same unfused arithmetic, dot/axpy bit-exact
// because they share one implementation); simd is held to ≤1e-12 (fused
// multiply-adds and lane-wise reductions round differently). The simd
// selection logic — runtime cpuid, the VN2_CPU_FEATURES=scalar mask, and
// the guarantee that "auto" never names an unsupported backend — is
// covered at the bottom.
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.hpp"
#include "linalg/cpu_features.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/random.hpp"

namespace vn2::linalg {
namespace {

constexpr double kRelTol = 1e-13;
constexpr double kSimdRelTol = 1e-12;

/// Non-reference backends this build + host can actually run.
std::vector<Backend> accelerated_backends() {
  std::vector<Backend> backends;
  if (blocked_kernels_compiled()) backends.push_back(Backend::kBlocked);
  if (simd_available()) backends.push_back(Backend::kSimd);
  return backends;
}

/// Agreement bound vs the reference backend (see header comment).
double parity_tolerance(Backend be) {
  return be == Backend::kSimd ? kSimdRelTol : kRelTol;
}

/// Applies the VN2_CPU_FEATURES=scalar cpuid mask for one scope.
class CpuMaskGuard {
 public:
  CpuMaskGuard() { setenv("VN2_CPU_FEATURES", "scalar", 1); }
  ~CpuMaskGuard() { unsetenv("VN2_CPU_FEATURES"); }
};

/// Restores the process-global backend and thread budget on scope exit so
/// test order cannot leak state.
class GlobalStateGuard {
 public:
  GlobalStateGuard()
      : backend_(backend()), threads_(core::num_threads()) {}
  ~GlobalStateGuard() {
    set_backend(backend_);
    core::set_num_threads(threads_);
  }

 private:
  Backend backend_;
  std::size_t threads_;
};

void expect_close(const Matrix& a, const Matrix& b, double rel = kRelTol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale =
        std::max({std::abs(a.data()[i]), std::abs(b.data()[i]), 1.0});
    EXPECT_NEAR(a.data()[i], b.data()[i], rel * scale) << "flat index " << i;
  }
}

void expect_close(const Vector& a, const Vector& b, double rel = kRelTol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1.0});
    EXPECT_NEAR(a[i], b[i], rel * scale) << "index " << i;
  }
}

struct GemmShape {
  std::size_t n, k, m;
};

// Empty, degenerate, tile-exact, tile-straddling, and the pipeline's
// 86-column encoded width.
const std::vector<GemmShape>& gemm_shapes() {
  static const std::vector<GemmShape> shapes = {
      {0, 0, 0}, {0, 3, 4},  {1, 7, 3},   {5, 1, 3},   {3, 7, 1},
      {4, 8, 16}, {8, 16, 32}, {5, 17, 7}, {6, 9, 13},  {13, 5, 19},
      {30, 86, 25}, {25, 30, 86},
  };
  return shapes;
}

Matrix signed_random(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  return random_uniform_matrix(rows, cols, seed, -1.5, 2.0);
}

TEST(LinalgBackend, ParseAndNames) {
  EXPECT_EQ(parse_backend("reference"), Backend::kReference);
  EXPECT_EQ(parse_backend("blocked"), Backend::kBlocked);
  EXPECT_EQ(parse_backend("simd"), Backend::kSimd);
  ASSERT_TRUE(parse_backend("auto").has_value());
  EXPECT_FALSE(parse_backend("fast").has_value());
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_STREQ(backend_name(Backend::kReference), "reference");
  EXPECT_STREQ(backend_name(Backend::kBlocked), "blocked");
  EXPECT_STREQ(backend_name(Backend::kSimd), "simd");
}

TEST(LinalgBackend, SetBackendRespectsCompileGate) {
  GlobalStateGuard guard;
  set_backend(Backend::kReference);
  EXPECT_EQ(backend(), Backend::kReference);
  set_backend(Backend::kBlocked);
  if (blocked_kernels_compiled()) {
    EXPECT_EQ(backend(), Backend::kBlocked);
  } else {
    // Reference-only build: requesting blocked silently falls back.
    EXPECT_EQ(backend(), Backend::kReference);
    EXPECT_EQ(parse_backend("auto"), Backend::kReference);
  }
  set_backend(Backend::kSimd);
  if (simd_available()) {
    EXPECT_EQ(backend(), Backend::kSimd);
  } else {
    // Compiled out or unsupported CPU: falls down the chain.
    EXPECT_NE(backend(), Backend::kSimd);
  }
}

// "auto" must resolve to a backend that actually engages: setting it must
// never trigger the fallback chain, on any build/host combination.
TEST(LinalgBackend, AutoNeverSelectsUnsupportedBackend) {
  GlobalStateGuard guard;
  const auto resolved = parse_backend("auto");
  ASSERT_TRUE(resolved.has_value());
  set_backend(*resolved);
  EXPECT_EQ(backend(), *resolved);
  if (simd_available())
    EXPECT_EQ(*resolved, Backend::kSimd);
  else
    EXPECT_NE(*resolved, Backend::kSimd);
}

TEST(LinalgBackend, GemmParityAcrossShapes) {
  GlobalStateGuard guard;
  core::set_num_threads(1);
  for (Backend be : accelerated_backends()) {
    std::uint64_t seed = 0xb10c5eed01ULL;
    for (const GemmShape& s : gemm_shapes()) {
      const Matrix a = signed_random(s.n, s.k, seed++);
      const Matrix b = signed_random(s.k, s.m, seed++);
      set_backend(Backend::kReference);
      const Matrix expected = matmul(a, b);
      set_backend(be);
      const Matrix actual = matmul(a, b);
      SCOPED_TRACE(::testing::Message() << backend_name(be) << " shape "
                                        << s.n << "x" << s.k << "x" << s.m);
      expect_close(expected, actual, parity_tolerance(be));
    }
  }
}

TEST(LinalgBackend, GemvParityAcrossShapes) {
  GlobalStateGuard guard;
  for (Backend be : accelerated_backends()) {
    std::uint64_t seed = 0xb10c5eed02ULL;
    for (const GemmShape& s : gemm_shapes()) {
      const Matrix a = signed_random(s.n, s.k, seed++);
      const Vector x = random_uniform_vector(s.k, seed++, -2.0, 2.0);
      set_backend(Backend::kReference);
      const Vector expected = matvec(a, x);
      set_backend(be);
      const Vector actual = matvec(a, x);
      SCOPED_TRACE(::testing::Message()
                   << backend_name(be) << " shape " << s.n << "x" << s.k);
      expect_close(expected, actual, parity_tolerance(be));
    }
  }
}

TEST(LinalgBackend, SyrkParityAcrossShapes) {
  GlobalStateGuard guard;
  for (Backend be : accelerated_backends()) {
    std::uint64_t seed = 0xb10c5eed03ULL;
    for (const GemmShape& s : gemm_shapes()) {
      const std::size_t rows = s.n, k = s.m;
      const Matrix a = signed_random(rows, k, seed++);
      Matrix expected(k, k), actual(k, k);
      set_backend(Backend::kReference);
      kernels::syrk_upper(a.data(), rows, k, expected.data());
      set_backend(be);
      kernels::syrk_upper(a.data(), rows, k, actual.data());
      SCOPED_TRACE(::testing::Message()
                   << backend_name(be) << " shape " << rows << "x" << k);
      expect_close(expected, actual, parity_tolerance(be));
      // The mirror must make G exactly symmetric in every backend.
      for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < i; ++j)
          EXPECT_EQ(actual(i, j), actual(j, i));
    }
  }
}

TEST(LinalgBackend, DotAndAxpyAreExactAcrossScalarBackends) {
  GlobalStateGuard guard;
  const std::size_t n = 259;  // deliberately not a multiple of any tile
  const Vector a = random_uniform_vector(n, 77, -3.0, 3.0);
  const Vector b = random_uniform_vector(n, 78, -3.0, 3.0);
  set_backend(Backend::kReference);
  const double dot_ref = kernels::dot(a.data(), b.data(), n);
  Vector y_ref(n, 0.5);
  kernels::axpy(1.25, a.data(), y_ref.data(), n);
  set_backend(Backend::kBlocked);
  const double dot_blk = kernels::dot(a.data(), b.data(), n);
  Vector y_blk(n, 0.5);
  kernels::axpy(1.25, a.data(), y_blk.data(), n);
  EXPECT_EQ(dot_ref, dot_blk);  // shared implementation: bit-exact
  EXPECT_EQ(y_ref, y_blk);
}

// simd's dot uses lane-wise partial sums and axpy fuses the multiply-add,
// so vs the scalar chain they are tolerance-parity, not bit-equal.
TEST(LinalgBackend, DotAndAxpySimdParity) {
  if (!simd_available()) GTEST_SKIP() << "simd backend unavailable here";
  GlobalStateGuard guard;
  for (const std::size_t n : {0ul, 1ul, 3ul, 8ul, 259ul, 4096ul}) {
    const Vector a = random_uniform_vector(n, 177, -3.0, 3.0);
    const Vector b = random_uniform_vector(n, 178, -3.0, 3.0);
    set_backend(Backend::kReference);
    const double dot_ref = kernels::dot(a.data(), b.data(), n);
    Vector y_ref(n, 0.5);
    kernels::axpy(1.25, a.data(), y_ref.data(), n);
    set_backend(Backend::kSimd);
    const double dot_simd = kernels::dot(a.data(), b.data(), n);
    Vector y_simd(n, 0.5);
    kernels::axpy(1.25, a.data(), y_simd.data(), n);
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const double scale = std::max({std::abs(dot_ref), std::abs(dot_simd),
                                   1.0});
    EXPECT_NEAR(dot_ref, dot_simd, kSimdRelTol * scale);
    expect_close(y_ref, y_simd, kSimdRelTol);
    // Within the backend, repeating the call reproduces every bit.
    EXPECT_EQ(dot_simd, kernels::dot(a.data(), b.data(), n));
  }
}

// Determinism contract: re-partitioning rows across threads must not
// change a single bit, in any backend.
TEST(LinalgBackend, MatmulBitIdenticalAcrossThreadCounts) {
  GlobalStateGuard guard;
  const Matrix a = signed_random(97, 43, 1001);
  const Matrix b = signed_random(43, 86, 1002);
  for (Backend be :
       {Backend::kReference, Backend::kBlocked, Backend::kSimd}) {
    if (be == Backend::kBlocked && !blocked_kernels_compiled()) continue;
    if (be == Backend::kSimd && !simd_available()) continue;
    set_backend(be);
    core::set_num_threads(1);
    const Matrix serial = matmul(a, b);
    for (std::size_t threads : {2ul, 8ul}) {
      core::set_num_threads(threads);
      const Matrix parallel = matmul(a, b);
      EXPECT_EQ(serial, parallel)
          << backend_name(be) << " at " << threads << " threads";
    }
  }
}

// Run-to-run reproducibility within the simd backend, across the kernels
// the pipeline leans on (GEMM, GEMV, SYRK): two identical calls must agree
// on every bit.
TEST(LinalgBackend, SimdRunToRunBitIdentical) {
  if (!simd_available()) GTEST_SKIP() << "simd backend unavailable here";
  GlobalStateGuard guard;
  set_backend(Backend::kSimd);
  core::set_num_threads(2);
  const Matrix a = signed_random(53, 86, 3001);
  const Matrix b = signed_random(86, 25, 3002);
  const Vector x = random_uniform_vector(86, 3003, -2.0, 2.0);
  EXPECT_EQ(matmul(a, b), matmul(a, b));
  EXPECT_EQ(matvec(a, x), matvec(a, x));
  Matrix g1(86, 86), g2(86, 86);
  kernels::syrk_upper(a.data(), 53, 86, g1.data());
  kernels::syrk_upper(a.data(), 53, 86, g2.data());
  EXPECT_EQ(g1, g2);
}

// ---------------------------------------------------------------------------
// NaN/Inf propagation. The old kernels skipped multiplies when an operand
// was exactly 0.0, silently turning 0·NaN into 0 (IEEE says NaN) and hiding
// corrupt inputs. Every kernel must now propagate non-finite values.

TEST(LinalgBackend, MatmulPropagatesNanThroughZeroOperands) {
  GlobalStateGuard guard;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // a's second column is 0 except for a NaN; the old `if (aip == 0.0)
  // continue;` skip never fired on NaN, but the symmetric B-side skip in
  // other codebases does — pin the IEEE behaviour for both operands.
  Matrix a = {{0.0, nan}, {1.0, 0.0}};
  Matrix b = {{1.0, 0.0}, {0.0, 1.0}};
  for (Backend be :
       {Backend::kReference, Backend::kBlocked, Backend::kSimd}) {
    if (be == Backend::kBlocked && !blocked_kernels_compiled()) continue;
    if (be == Backend::kSimd && !simd_available()) continue;
    set_backend(be);
    const Matrix c = matmul(a, b);
    // Row 0 mixes NaN into every column: 0·1 + NaN·0 = NaN.
    EXPECT_TRUE(std::isnan(c(0, 0))) << backend_name(be);
    EXPECT_TRUE(std::isnan(c(0, 1))) << backend_name(be);
    // Row 1 is NaN-free and stays finite.
    EXPECT_EQ(c(1, 0), 1.0);
    EXPECT_EQ(c(1, 1), 0.0);
  }
}

TEST(LinalgBackend, MatvecAndVecmatPropagateNonFinite) {
  GlobalStateGuard guard;
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Matrix a = {{0.0, 1.0}, {2.0, 0.0}};
  const Vector x{nan, 3.0};
  const Vector w{inf, 0.0};
  for (Backend be :
       {Backend::kReference, Backend::kBlocked, Backend::kSimd}) {
    if (be == Backend::kBlocked && !blocked_kernels_compiled()) continue;
    if (be == Backend::kSimd && !simd_available()) continue;
    set_backend(be);
    const Vector y = matvec(a, x);  // y[0] = 0·NaN + 1·3 = NaN
    EXPECT_TRUE(std::isnan(y[0])) << backend_name(be);
    EXPECT_TRUE(std::isnan(y[1])) << backend_name(be);
    const Vector z = vecmat(w, a);  // z[1] = Inf·1 + 0·0 = Inf
    EXPECT_TRUE(std::isnan(z[0])) << backend_name(be);  // Inf·0 = NaN
    EXPECT_EQ(z[1], inf) << backend_name(be);
  }
}

TEST(LinalgBackend, GemmRowRangeMatchesFullProduct) {
  GlobalStateGuard guard;
  const std::size_t n = 11, k = 7, m = 18;
  const Matrix a = signed_random(n, k, 2001);
  const Matrix b = signed_random(k, m, 2002);
  for (Backend be :
       {Backend::kReference, Backend::kBlocked, Backend::kSimd}) {
    if (be == Backend::kBlocked && !blocked_kernels_compiled()) continue;
    if (be == Backend::kSimd && !simd_available()) continue;
    set_backend(be);
    Matrix full(n, m), pieces(n, m);
    kernels::gemm_rows(a.data(), b.data(), full.data(), k, m, 0, n);
    // Uneven three-way split: partitioning must not change anything.
    kernels::gemm_rows(a.data(), b.data(), pieces.data(), k, m, 0, 3);
    kernels::gemm_rows(a.data(), b.data(), pieces.data(), k, m, 3, 10);
    kernels::gemm_rows(a.data(), b.data(), pieces.data(), k, m, 10, n);
    EXPECT_EQ(full, pieces) << backend_name(be);
  }
}

// ---------------------------------------------------------------------------
// Runtime CPU dispatch. VN2_CPU_FEATURES=scalar masks cpuid (the
// unsupported-hardware testing hook, re-evaluated on every call), which
// must make the simd backend unavailable, force set_backend(kSimd) down
// the fallback chain, and steer "auto" away from simd — on every build.

TEST(LinalgBackend, CpuMaskHidesSimdFeatures) {
  CpuMaskGuard mask;
  const CpuFeatures features = detect_cpu_features();
  EXPECT_TRUE(features.masked);
  EXPECT_FALSE(features.avx2);
  EXPECT_FALSE(features.fma);
  EXPECT_FALSE(features.neon);
  EXPECT_FALSE(simd_runtime_supported());
  EXPECT_FALSE(simd_available());
  EXPECT_EQ(cpu_features_summary(), "scalar (masked by VN2_CPU_FEATURES)");
}

TEST(LinalgBackend, ForcedSimdFallsBackUnderCpuMask) {
  GlobalStateGuard guard;
  CpuMaskGuard mask;
  set_backend(Backend::kSimd);
  // Clean fallback, never an unsupported selection: blocked when compiled
  // in, reference otherwise (loud failure is the CLI's job, which checks
  // simd_available() before calling set_backend).
  EXPECT_NE(backend(), Backend::kSimd);
  EXPECT_EQ(backend(), blocked_kernels_compiled() ? Backend::kBlocked
                                                  : Backend::kReference);
}

TEST(LinalgBackend, AutoUnderCpuMaskAvoidsSimd) {
  GlobalStateGuard guard;
  CpuMaskGuard mask;
  const auto resolved = parse_backend("auto");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_NE(*resolved, Backend::kSimd);
  set_backend(*resolved);
  EXPECT_EQ(backend(), *resolved);
}

// The mask applies at selection time; kernels selected before it appeared
// keep running (and produce identical results — the mask never changes
// arithmetic, only dispatch).
TEST(LinalgBackend, CpuMaskOnlyAffectsSelectionTime) {
  if (!simd_available()) GTEST_SKIP() << "simd backend unavailable here";
  GlobalStateGuard guard;
  set_backend(Backend::kSimd);
  const Matrix a = signed_random(9, 12, 4001);
  const Matrix b = signed_random(12, 10, 4002);
  const Matrix before = matmul(a, b);
  {
    CpuMaskGuard mask;
    EXPECT_EQ(backend(), Backend::kSimd);  // still selected
    EXPECT_EQ(matmul(a, b), before);
  }
}

}  // namespace
}  // namespace vn2::linalg
