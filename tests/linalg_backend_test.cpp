// Parity and determinism tests for the pluggable kernel backends
// (linalg/kernels.hpp). The reference backend is the semantics oracle: the
// blocked backend must agree on every shape the pipeline produces —
// including empty, single-row/column, and sizes that don't divide the tile
// geometry — and both must be bit-identical across thread counts. dot and
// axpy share one implementation, so they are held to exact equality;
// GEMM/GEMV/SYRK are held to ≤1e-13 relative agreement so the contract
// stays robust if a compiler contracts FMAs differently per loop shape.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/random.hpp"

namespace vn2::linalg {
namespace {

constexpr double kRelTol = 1e-13;

/// Restores the process-global backend and thread budget on scope exit so
/// test order cannot leak state.
class GlobalStateGuard {
 public:
  GlobalStateGuard()
      : backend_(backend()), threads_(core::num_threads()) {}
  ~GlobalStateGuard() {
    set_backend(backend_);
    core::set_num_threads(threads_);
  }

 private:
  Backend backend_;
  std::size_t threads_;
};

void expect_close(const Matrix& a, const Matrix& b, double rel = kRelTol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale =
        std::max({std::abs(a.data()[i]), std::abs(b.data()[i]), 1.0});
    EXPECT_NEAR(a.data()[i], b.data()[i], rel * scale) << "flat index " << i;
  }
}

void expect_close(const Vector& a, const Vector& b, double rel = kRelTol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1.0});
    EXPECT_NEAR(a[i], b[i], rel * scale) << "index " << i;
  }
}

struct GemmShape {
  std::size_t n, k, m;
};

// Empty, degenerate, tile-exact, tile-straddling, and the pipeline's
// 86-column encoded width.
const std::vector<GemmShape>& gemm_shapes() {
  static const std::vector<GemmShape> shapes = {
      {0, 0, 0}, {0, 3, 4},  {1, 7, 3},   {5, 1, 3},   {3, 7, 1},
      {4, 8, 16}, {8, 16, 32}, {5, 17, 7}, {6, 9, 13},  {13, 5, 19},
      {30, 86, 25}, {25, 30, 86},
  };
  return shapes;
}

Matrix signed_random(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  return random_uniform_matrix(rows, cols, seed, -1.5, 2.0);
}

TEST(LinalgBackend, ParseAndNames) {
  EXPECT_EQ(parse_backend("reference"), Backend::kReference);
  EXPECT_EQ(parse_backend("blocked"), Backend::kBlocked);
  ASSERT_TRUE(parse_backend("auto").has_value());
  EXPECT_FALSE(parse_backend("fast").has_value());
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_STREQ(backend_name(Backend::kReference), "reference");
  EXPECT_STREQ(backend_name(Backend::kBlocked), "blocked");
}

TEST(LinalgBackend, SetBackendRespectsCompileGate) {
  GlobalStateGuard guard;
  set_backend(Backend::kReference);
  EXPECT_EQ(backend(), Backend::kReference);
  set_backend(Backend::kBlocked);
  if (blocked_kernels_compiled()) {
    EXPECT_EQ(backend(), Backend::kBlocked);
    EXPECT_EQ(parse_backend("auto"), Backend::kBlocked);
  } else {
    // Reference-only build: requesting blocked silently falls back.
    EXPECT_EQ(backend(), Backend::kReference);
    EXPECT_EQ(parse_backend("auto"), Backend::kReference);
  }
}

TEST(LinalgBackend, GemmParityAcrossShapes) {
  if (!blocked_kernels_compiled())
    GTEST_SKIP() << "blocked kernels compiled out";
  GlobalStateGuard guard;
  core::set_num_threads(1);
  std::uint64_t seed = 0xb10c5eed01ULL;
  for (const GemmShape& s : gemm_shapes()) {
    const Matrix a = signed_random(s.n, s.k, seed++);
    const Matrix b = signed_random(s.k, s.m, seed++);
    set_backend(Backend::kReference);
    const Matrix expected = matmul(a, b);
    set_backend(Backend::kBlocked);
    const Matrix actual = matmul(a, b);
    SCOPED_TRACE(::testing::Message()
                 << "shape " << s.n << "x" << s.k << "x" << s.m);
    expect_close(expected, actual);
  }
}

TEST(LinalgBackend, GemvParityAcrossShapes) {
  if (!blocked_kernels_compiled())
    GTEST_SKIP() << "blocked kernels compiled out";
  GlobalStateGuard guard;
  std::uint64_t seed = 0xb10c5eed02ULL;
  for (const GemmShape& s : gemm_shapes()) {
    const Matrix a = signed_random(s.n, s.k, seed++);
    const Vector x = random_uniform_vector(s.k, seed++, -2.0, 2.0);
    set_backend(Backend::kReference);
    const Vector expected = matvec(a, x);
    set_backend(Backend::kBlocked);
    const Vector actual = matvec(a, x);
    SCOPED_TRACE(::testing::Message() << "shape " << s.n << "x" << s.k);
    expect_close(expected, actual);
  }
}

TEST(LinalgBackend, SyrkParityAcrossShapes) {
  if (!blocked_kernels_compiled())
    GTEST_SKIP() << "blocked kernels compiled out";
  GlobalStateGuard guard;
  std::uint64_t seed = 0xb10c5eed03ULL;
  for (const GemmShape& s : gemm_shapes()) {
    const std::size_t rows = s.n, k = s.m;
    const Matrix a = signed_random(rows, k, seed++);
    Matrix expected(k, k), actual(k, k);
    set_backend(Backend::kReference);
    kernels::syrk_upper(a.data(), rows, k, expected.data());
    set_backend(Backend::kBlocked);
    kernels::syrk_upper(a.data(), rows, k, actual.data());
    SCOPED_TRACE(::testing::Message() << "shape " << rows << "x" << k);
    expect_close(expected, actual);
    // The mirror must make G exactly symmetric in both backends.
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < i; ++j)
        EXPECT_EQ(actual(i, j), actual(j, i));
  }
}

TEST(LinalgBackend, DotAndAxpyAreExactAcrossBackends) {
  GlobalStateGuard guard;
  const std::size_t n = 259;  // deliberately not a multiple of any tile
  const Vector a = random_uniform_vector(n, 77, -3.0, 3.0);
  const Vector b = random_uniform_vector(n, 78, -3.0, 3.0);
  set_backend(Backend::kReference);
  const double dot_ref = kernels::dot(a.data(), b.data(), n);
  Vector y_ref(n, 0.5);
  kernels::axpy(1.25, a.data(), y_ref.data(), n);
  set_backend(Backend::kBlocked);
  const double dot_blk = kernels::dot(a.data(), b.data(), n);
  Vector y_blk(n, 0.5);
  kernels::axpy(1.25, a.data(), y_blk.data(), n);
  EXPECT_EQ(dot_ref, dot_blk);  // shared implementation: bit-exact
  EXPECT_EQ(y_ref, y_blk);
}

// Determinism contract: re-partitioning rows across threads must not
// change a single bit, in either backend.
TEST(LinalgBackend, MatmulBitIdenticalAcrossThreadCounts) {
  GlobalStateGuard guard;
  const Matrix a = signed_random(97, 43, 1001);
  const Matrix b = signed_random(43, 86, 1002);
  for (Backend be : {Backend::kReference, Backend::kBlocked}) {
    if (be == Backend::kBlocked && !blocked_kernels_compiled()) continue;
    set_backend(be);
    core::set_num_threads(1);
    const Matrix serial = matmul(a, b);
    for (std::size_t threads : {2ul, 8ul}) {
      core::set_num_threads(threads);
      const Matrix parallel = matmul(a, b);
      EXPECT_EQ(serial, parallel)
          << backend_name(be) << " at " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// NaN/Inf propagation. The old kernels skipped multiplies when an operand
// was exactly 0.0, silently turning 0·NaN into 0 (IEEE says NaN) and hiding
// corrupt inputs. Every kernel must now propagate non-finite values.

TEST(LinalgBackend, MatmulPropagatesNanThroughZeroOperands) {
  GlobalStateGuard guard;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // a's second column is 0 except for a NaN; the old `if (aip == 0.0)
  // continue;` skip never fired on NaN, but the symmetric B-side skip in
  // other codebases does — pin the IEEE behaviour for both operands.
  Matrix a = {{0.0, nan}, {1.0, 0.0}};
  Matrix b = {{1.0, 0.0}, {0.0, 1.0}};
  for (Backend be : {Backend::kReference, Backend::kBlocked}) {
    if (be == Backend::kBlocked && !blocked_kernels_compiled()) continue;
    set_backend(be);
    const Matrix c = matmul(a, b);
    // Row 0 mixes NaN into every column: 0·1 + NaN·0 = NaN.
    EXPECT_TRUE(std::isnan(c(0, 0))) << backend_name(be);
    EXPECT_TRUE(std::isnan(c(0, 1))) << backend_name(be);
    // Row 1 is NaN-free and stays finite.
    EXPECT_EQ(c(1, 0), 1.0);
    EXPECT_EQ(c(1, 1), 0.0);
  }
}

TEST(LinalgBackend, MatvecAndVecmatPropagateNonFinite) {
  GlobalStateGuard guard;
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Matrix a = {{0.0, 1.0}, {2.0, 0.0}};
  const Vector x{nan, 3.0};
  const Vector w{inf, 0.0};
  for (Backend be : {Backend::kReference, Backend::kBlocked}) {
    if (be == Backend::kBlocked && !blocked_kernels_compiled()) continue;
    set_backend(be);
    const Vector y = matvec(a, x);  // y[0] = 0·NaN + 1·3 = NaN
    EXPECT_TRUE(std::isnan(y[0])) << backend_name(be);
    EXPECT_TRUE(std::isnan(y[1])) << backend_name(be);
    const Vector z = vecmat(w, a);  // z[1] = Inf·1 + 0·0 = Inf
    EXPECT_TRUE(std::isnan(z[0])) << backend_name(be);  // Inf·0 = NaN
    EXPECT_EQ(z[1], inf) << backend_name(be);
  }
}

TEST(LinalgBackend, GemmRowRangeMatchesFullProduct) {
  GlobalStateGuard guard;
  const std::size_t n = 11, k = 7, m = 18;
  const Matrix a = signed_random(n, k, 2001);
  const Matrix b = signed_random(k, m, 2002);
  for (Backend be : {Backend::kReference, Backend::kBlocked}) {
    if (be == Backend::kBlocked && !blocked_kernels_compiled()) continue;
    set_backend(be);
    Matrix full(n, m), pieces(n, m);
    kernels::gemm_rows(a.data(), b.data(), full.data(), k, m, 0, n);
    // Uneven three-way split: partitioning must not change anything.
    kernels::gemm_rows(a.data(), b.data(), pieces.data(), k, m, 0, 3);
    kernels::gemm_rows(a.data(), b.data(), pieces.data(), k, m, 3, 10);
    kernels::gemm_rows(a.data(), b.data(), pieces.data(), k, m, 10, n);
    EXPECT_EQ(full, pieces) << backend_name(be);
  }
}

}  // namespace
}  // namespace vn2::linalg
