// Tests for profile diffing: path alignment, noise floors (relative and
// absolute), new/vanished paths staying informational, both renderers,
// and an end-to-end fixture pair flowing through write_json ->
// read_call_tree_json -> diff_call_trees with a known injected slowdown.
#include "telemetry/profdiff.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/calltree.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::telemetry {
namespace {

PathProfile make_path(std::string path, std::uint64_t wall_ns,
                      std::uint64_t excl_ns, std::uint64_t count = 1) {
  PathProfile p;
  p.path = std::move(path);
  p.count = count;
  p.wall_ns = wall_ns;
  p.cpu_ns = wall_ns;
  p.excl_wall_ns = excl_ns;
  p.excl_cpu_ns = excl_ns;
  return p;
}

TEST(ProfDiffTest, SelfDiffIsAlwaysClean) {
  std::vector<PathProfile> profile = {
      make_path("train", 50000000, 10000000),
      make_path("train/nmf", 40000000, 40000000, 8),
  };
  const ProfDiffReport report = diff_call_trees(profile, profile, {});
  EXPECT_EQ(report.compared, 2u);
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.improvements, 0u);
  EXPECT_FALSE(report.failed());
  const std::string text = render_text(report);
  EXPECT_NE(text.find("verdict: ok"), std::string::npos);
}

TEST(ProfDiffTest, InjectedSlowdownRegressesThatPathOnly) {
  const std::vector<PathProfile> base = {
      make_path("train", 50000000, 10000000),
      make_path("train/nmf", 40000000, 40000000),
  };
  const std::vector<PathProfile> run = {
      make_path("train", 51000000, 11000000),   // +2%: under the floor.
      make_path("train/nmf", 80000000, 80000000),  // 2x: regression.
  };
  const ProfDiffReport report = diff_call_trees(base, run, {});
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_TRUE(report.failed());
  const std::string text = render_text(report);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("train/nmf"), std::string::npos);
  EXPECT_NE(text.find("verdict: FAIL"), std::string::npos);
}

TEST(ProfDiffTest, ImprovementIsReportedButDoesNotFail) {
  const std::vector<PathProfile> base = {make_path("a", 80000000, 80000000)};
  const std::vector<PathProfile> run = {make_path("a", 40000000, 40000000)};
  const ProfDiffReport report = diff_call_trees(base, run, {});
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.improvements, 1u);
  EXPECT_FALSE(report.failed());
}

TEST(ProfDiffTest, AbsoluteFloorSuppressesTinyMoves) {
  // 3x relative move, but only 600 us absolute — under the 1 ms default.
  const std::vector<PathProfile> base = {make_path("a", 300000, 300000)};
  const std::vector<PathProfile> run = {make_path("a", 900000, 900000)};
  const ProfDiffReport report = diff_call_trees(base, run, {});
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_FALSE(report.failed());
  // Lowering the floor makes the same move count.
  ProfDiffOptions tight;
  tight.min_delta_ns = 100000;
  EXPECT_TRUE(diff_call_trees(base, run, tight).failed());
}

TEST(ProfDiffTest, RelativeFloorSuppressesSmallRatios) {
  // 10 ms absolute move but only +10%: inside the default 15% band.
  const std::vector<PathProfile> base = {
      make_path("a", 100000000, 100000000)};
  const std::vector<PathProfile> run = {
      make_path("a", 110000000, 110000000)};
  EXPECT_FALSE(diff_call_trees(base, run, {}).failed());
  ProfDiffOptions tight;
  tight.relative_floor = 0.05;
  EXPECT_TRUE(diff_call_trees(base, run, tight).failed());
}

TEST(ProfDiffTest, NewAndVanishedPathsAreInformational) {
  const std::vector<PathProfile> base = {
      make_path("a", 50000000, 50000000),
      make_path("gone", 50000000, 50000000)};
  const std::vector<PathProfile> run = {
      make_path("a", 50000000, 50000000),
      make_path("fresh", 50000000, 50000000)};
  const ProfDiffReport report = diff_call_trees(base, run, {});
  EXPECT_EQ(report.added, 1u);
  EXPECT_EQ(report.vanished, 1u);
  EXPECT_FALSE(report.failed());
  const std::string text = render_text(report);
  EXPECT_NE(text.find("fresh"), std::string::npos);
  EXPECT_NE(text.find("gone"), std::string::npos);
}

TEST(ProfDiffTest, MarkdownRendersTableAndVerdict) {
  const std::vector<PathProfile> base = {make_path("a", 50000000, 50000000)};
  const std::vector<PathProfile> run = {make_path("a", 150000000, 150000000)};
  const ProfDiffReport report = diff_call_trees(base, run, {});
  const std::string md = render_markdown(report);
  EXPECT_NE(md.find("| path |"), std::string::npos);
  EXPECT_NE(md.find("`a`"), std::string::npos);
  EXPECT_NE(md.find("**FAIL**"), std::string::npos);
  const ProfDiffReport clean = diff_call_trees(base, base, {});
  EXPECT_NE(render_markdown(clean).find("**ok**"), std::string::npos);
}

TEST(ProfDiffTest, NegativeFloorThrows) {
  ProfDiffOptions bad;
  bad.relative_floor = -0.1;
  EXPECT_THROW(diff_call_trees({}, {}, bad), std::invalid_argument);
}

TEST(ProfDiffTest, FixturePairFlowsThroughSnapshotJson) {
  // Two hand-built snapshots with one injected slowdown, serialized with
  // the real writer and re-read with the real reader — the same route the
  // CLI and vn2_profdiff take.
  const auto snapshot_json = [](std::uint64_t nmf_ns) {
    Snapshot snapshot;
    snapshot.path_stats.push_back(
        {"pipeline", 1, 90000000, 90000000, 90000000, 90000000});
    snapshot.path_stats.push_back(
        {"pipeline/train", 1, 60000000, 60000000, 60000000, 60000000});
    snapshot.path_stats.push_back(
        {"pipeline/train/nmf", 6, nmf_ns, 1000000, nmf_ns, nmf_ns});
    StringSink sink;
    write_json(sink, snapshot);
    return sink.str();
  };
  const auto base = read_call_tree_json(snapshot_json(40000000));
  const auto run = read_call_tree_json(snapshot_json(55000000));
  // Self-diff of the parsed base: clean.
  EXPECT_FALSE(diff_call_trees(base, base, {}).failed());
  // Base vs run: nmf went 40 -> 55 ms (+37%), past both floors.
  const ProfDiffReport report = diff_call_trees(base, run, {});
  EXPECT_TRUE(report.failed());
  EXPECT_EQ(report.regressions, 1u);
  const std::string text = render_text(report);
  EXPECT_NE(text.find("pipeline/train/nmf"), std::string::npos);
}

}  // namespace
}  // namespace vn2::telemetry
