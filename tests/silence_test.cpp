#include "core/silence.hpp"

#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace vn2::core {
namespace {

trace::Trace synthetic_trace(std::size_t nodes, std::size_t snapshots,
                             double period) {
  trace::Trace trace;
  for (std::size_t id = 1; id <= nodes; ++id) {
    trace::NodeSeries series;
    series.node = static_cast<wsn::NodeId>(id);
    for (std::size_t s = 0; s < snapshots; ++s) {
      trace::Snapshot snap;
      snap.epoch = s;
      snap.time = static_cast<double>(s) * period;
      series.snapshots.push_back(snap);
    }
    trace.nodes.push_back(std::move(series));
  }
  return trace;
}

TEST(Silence, QuietNetworkHasNoSilentNodes) {
  const trace::Trace trace = synthetic_trace(5, 20, 60.0);
  // "now" is one period after the last snapshot.
  EXPECT_TRUE(detect_silent_nodes(trace, 19.0 * 60.0 + 60.0).empty());
}

TEST(Silence, FlagsNodeThatStopped) {
  trace::Trace trace = synthetic_trace(5, 20, 60.0);
  // Node 3's series ends at snapshot 10 (t = 600); everyone else runs on.
  trace.nodes[2].snapshots.resize(11);
  const wsn::Time now = 19.0 * 60.0 + 60.0;
  const auto silent = detect_silent_nodes(trace, now);
  ASSERT_EQ(silent.size(), 1u);
  EXPECT_EQ(silent[0].node, 3);
  EXPECT_DOUBLE_EQ(silent[0].last_seen, 600.0);
  EXPECT_DOUBLE_EQ(silent[0].silent_for, now - 600.0);
  EXPECT_DOUBLE_EQ(silent[0].expected_interval, 60.0);
}

TEST(Silence, SortsByQuietDuration) {
  trace::Trace trace = synthetic_trace(4, 20, 60.0);
  trace.nodes[0].snapshots.resize(5);   // Longest silence, but only 5 snaps.
  trace.nodes[1].snapshots.resize(10);  // Silent since 540.
  trace.nodes[2].snapshots.resize(15);  // Silent since 840.
  const auto silent = detect_silent_nodes(trace, 20.0 * 60.0);
  ASSERT_EQ(silent.size(), 3u);
  EXPECT_EQ(silent[0].node, 1);
  EXPECT_EQ(silent[1].node, 2);
  EXPECT_EQ(silent[2].node, 3);
}

TEST(Silence, TooFewSnapshotsAreNotJudged) {
  trace::Trace trace = synthetic_trace(2, 3, 60.0);
  SilenceOptions options;
  options.min_snapshots = 5;
  EXPECT_TRUE(detect_silent_nodes(trace, 1e6, options).empty());
}

TEST(Silence, FactorControlsSensitivity) {
  trace::Trace trace = synthetic_trace(1, 10, 60.0);  // Last at 540.
  SilenceOptions tight;
  tight.factor = 2.0;
  SilenceOptions loose;
  loose.factor = 10.0;
  EXPECT_EQ(detect_silent_nodes(trace, 540.0 + 180.0, tight).size(), 1u);
  EXPECT_TRUE(detect_silent_nodes(trace, 540.0 + 180.0, loose).empty());
}

TEST(Silence, MedianRobustToLossGaps) {
  // A node with mostly 60 s cadence but two long loss gaps: the median stays
  // 60 s, so a 150 s quiet spell (2.5x) under factor 4 is NOT silence.
  trace::Trace trace;
  trace::NodeSeries series;
  series.node = 1;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    trace::Snapshot snap;
    snap.epoch = static_cast<std::uint64_t>(i);
    snap.time = t;
    series.snapshots.push_back(snap);
    t += (i == 5 || i == 12) ? 600.0 : 60.0;
  }
  trace.nodes.push_back(series);
  const double last = trace.nodes[0].snapshots.back().time;
  EXPECT_TRUE(detect_silent_nodes(trace, last + 150.0).empty());
  EXPECT_EQ(detect_silent_nodes(trace, last + 400.0).size(), 1u);
}

TEST(Silence, CatchesSimulatedNodeFailure) {
  scenario::ScenarioBundle bundle = scenario::tiny(12, 5400.0, 3);
  wsn::FaultCommand fail;
  fail.type = wsn::FaultCommand::Type::kNodeFailure;
  fail.node = 7;
  fail.start = 2700.0;
  bundle.faults.push_back(fail);
  wsn::Simulator sim = bundle.make_simulator();
  const wsn::SimulationResult result = sim.run();
  const trace::Trace log = trace::build_trace(result);

  const auto silent = detect_silent_nodes(log, 5400.0);
  ASSERT_FALSE(silent.empty());
  EXPECT_EQ(silent[0].node, 7);
  EXPECT_LT(silent[0].last_seen, 2760.0);
}

}  // namespace
}  // namespace vn2::core
