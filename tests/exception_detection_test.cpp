#include "core/exception_detection.hpp"

#include <gtest/gtest.h>

#include "linalg/random.hpp"

namespace vn2::core {
namespace {

using linalg::Matrix;

TEST(ExceptionDetection, RejectsEmpty) {
  EXPECT_THROW(detect_exceptions(Matrix{}), std::invalid_argument);
}

TEST(ExceptionDetection, FlagsPlantedOutlier) {
  // 100 near-identical states plus one wild one.
  Matrix states(101, 5, 1.0);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> jitter(-0.01, 0.01);
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t j = 0; j < 5; ++j) states(i, j) = 1.0 + jitter(rng);
  for (std::size_t j = 0; j < 5; ++j) states(100, j) = 50.0;

  ExceptionDetectionOptions options;
  options.threshold = 0.5;  // Only states within 2x of the max deviation.
  auto result = detect_exceptions(states, options);
  ASSERT_EQ(result.exception_rows.size(), 1u);
  EXPECT_EQ(result.exception_rows[0], 100u);
  EXPECT_TRUE(result.is_exception(100));
  EXPECT_FALSE(result.is_exception(0));
}

TEST(ExceptionDetection, PaperThresholdFlagsRelativeDeviations) {
  // With the paper's 0.01 ratio threshold, normal states stay unflagged only
  // when their deviation from the mean is under 1% of the maximum. A single
  // outlier among n identical states pulls the mean by outlier/n, so n must
  // exceed ~100 for the rule to isolate the outlier — mirroring the paper's
  // setting (hundreds of thousands of mostly-normal states).
  Matrix states(500, 4, 0.0);
  states(499, 0) = 100.0;
  ExceptionDetectionOptions options;
  options.threshold = 0.01;
  options.standardize = false;
  auto result = detect_exceptions(states, options);
  ASSERT_EQ(result.exception_rows.size(), 1u);
  EXPECT_EQ(result.exception_rows[0], 499u);
}

TEST(ExceptionDetection, StandardizationEqualizesScales) {
  // Metric 0 varies over thousands, metric 1 over hundredths. A state that
  // is extreme only in metric 1 must still surface when standardized.
  Matrix states(40, 2, 0.0);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> big(-1000.0, 1000.0);
  std::uniform_real_distribution<double> small(-0.01, 0.01);
  for (std::size_t i = 0; i < 40; ++i) {
    states(i, 0) = big(rng);
    states(i, 1) = small(rng);
  }
  states(39, 0) = 0.0;
  states(39, 1) = 5.0;  // 500σ on the small metric.

  ExceptionDetectionOptions standardized;
  standardized.threshold = 0.5;
  auto result = detect_exceptions(states, standardized);
  EXPECT_TRUE(result.is_exception(39));

  ExceptionDetectionOptions raw;
  raw.threshold = 0.5;
  raw.standardize = false;
  auto raw_result = detect_exceptions(states, raw);
  EXPECT_FALSE(raw_result.is_exception(39));  // Drowned by metric 0's scale.
}

TEST(ExceptionDetection, AllIdenticalStatesFlagNothing) {
  Matrix states(20, 3, 7.0);
  auto result = detect_exceptions(states);
  EXPECT_TRUE(result.exception_rows.empty());
  EXPECT_DOUBLE_EQ(result.max_score, 0.0);
}

TEST(ExceptionDetection, ScoresSizedToInput) {
  Matrix states = linalg::random_uniform_matrix(17, 6, 5);
  auto result = detect_exceptions(states);
  EXPECT_EQ(result.scores.size(), 17u);
  for (std::size_t i = 0; i < 17; ++i) EXPECT_GE(result.scores[i], 0.0);
}

TEST(ExceptionDetection, ExceptionMatrixSelectsRows) {
  Matrix states(10, 3, 0.0);
  states(4, 0) = 100.0;
  states(7, 1) = -100.0;
  ExceptionDetectionOptions options;
  options.threshold = 0.5;
  auto result = detect_exceptions(states, options);
  Matrix exceptions = exception_matrix(states, result);
  ASSERT_EQ(exceptions.rows(), result.exception_rows.size());
  EXPECT_GE(exceptions.rows(), 2u);
  // First flagged row must equal states row 4.
  EXPECT_DOUBLE_EQ(exceptions(0, 0), 100.0);
}

TEST(ExceptionDetection, ThresholdSweepMonotone) {
  Matrix states = linalg::random_uniform_matrix(60, 8, 21, -1.0, 1.0);
  std::size_t previous = states.rows() + 1;
  for (double threshold : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    ExceptionDetectionOptions options;
    options.threshold = threshold;
    auto result = detect_exceptions(states, options);
    EXPECT_LE(result.exception_rows.size(), previous);
    previous = result.exception_rows.size();
  }
}

}  // namespace
}  // namespace vn2::core
