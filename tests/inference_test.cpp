#include "core/inference.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/parallel.hpp"
#include "test_helpers.hpp"

namespace vn2::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using vn2::testing::make_synthetic;
using vn2::testing::PlantedCause;
using vn2::testing::standard_causes;

class InferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synthetic_ = make_synthetic(standard_causes(), 500, 42);
    TrainingOptions options;
    options.rank = 6;
    options.nmf.max_iterations = 400;
    report_ = train(synthetic_.states, options);
  }

  vn2::testing::SyntheticTrace synthetic_;
  TrainingReport report_;
};

TEST_F(InferenceTest, RejectsBadInput) {
  EXPECT_THROW(diagnose(Vn2Model{}, Vector(metrics::kMetricCount)),
               std::invalid_argument);
  EXPECT_THROW(diagnose(report_.model, Vector(10)), std::invalid_argument);
}

TEST_F(InferenceTest, WeightsAreNonnegativeAndRanked) {
  const Diagnosis d =
      diagnose(report_.model, synthetic_.states.row_vector(5));
  EXPECT_EQ(d.weights.size(), report_.model.rank());
  for (std::size_t r = 0; r < d.weights.size(); ++r)
    EXPECT_GE(d.weights[r], 0.0);
  for (std::size_t i = 1; i < d.ranked.size(); ++i)
    EXPECT_GE(d.ranked[i - 1].strength, d.ranked[i].strength);
}

TEST_F(InferenceTest, NormalStatesHaveSmallWeights) {
  // Paper: "In most cases, the node performs well, such that x_j ≈ 0."
  double normal_total = 0.0, abnormal_total = 0.0;
  std::size_t normals = 0, abnormals = 0;
  for (std::size_t i = 0; i < synthetic_.states.rows(); ++i) {
    const Diagnosis d =
        diagnose(report_.model, synthetic_.states.row_vector(i));
    const double total = linalg::sum(d.weights);
    if (synthetic_.active[i].empty()) {
      normal_total += total;
      ++normals;
    } else {
      abnormal_total += total;
      ++abnormals;
    }
  }
  ASSERT_GT(normals, 0u);
  ASSERT_GT(abnormals, 0u);
  // Normal states still carry |z| ≈ 0.8σ of encoded noise per metric, so
  // their weights are small but not zero; abnormal states must clearly
  // exceed them.
  EXPECT_GT(abnormal_total / abnormals, 1.5 * normal_total / normals);
}

TEST_F(InferenceTest, SameCauseSameDominantRow) {
  // All states with only cause 0 active should light up the same Ψ row(s).
  std::map<std::size_t, std::size_t> dominant_count;
  std::size_t total = 0;
  for (std::size_t i = 0; i < synthetic_.states.rows(); ++i) {
    if (synthetic_.active[i] != std::vector<std::size_t>{0}) continue;
    const Diagnosis d =
        diagnose(report_.model, synthetic_.states.row_vector(i));
    if (d.ranked.empty()) continue;
    dominant_count[d.ranked[0].row]++;
    ++total;
  }
  ASSERT_GT(total, 10u);
  std::size_t best = 0;
  for (const auto& [row, count] : dominant_count) best = std::max(best, count);
  // A clear majority maps to one row.
  EXPECT_GT(best, total / 2);
}

TEST_F(InferenceTest, MultiCauseStatesActivateMultipleRows) {
  // Find which row dominates each single cause.
  auto dominant_row_for = [&](std::size_t cause) -> std::size_t {
    std::map<std::size_t, std::size_t> counts;
    for (std::size_t i = 0; i < synthetic_.states.rows(); ++i) {
      if (synthetic_.active[i] != std::vector<std::size_t>{cause}) continue;
      const Diagnosis d =
          diagnose(report_.model, synthetic_.states.row_vector(i));
      if (!d.ranked.empty()) counts[d.ranked[0].row]++;
    }
    std::size_t best_row = 0, best_count = 0;
    for (const auto& [row, count] : counts)
      if (count > best_count) {
        best_row = row;
        best_count = count;
      }
    return best_row;
  };
  const std::size_t row0 = dominant_row_for(0);
  const std::size_t row1 = dominant_row_for(1);
  if (row0 == row1) GTEST_SKIP() << "causes merged into one factor";

  // States with causes {0, 1} both active should activate both rows.
  std::size_t both = 0, total = 0;
  for (std::size_t i = 0; i < synthetic_.states.rows(); ++i) {
    std::set<std::size_t> active(synthetic_.active[i].begin(),
                                 synthetic_.active[i].end());
    if (active != std::set<std::size_t>{0, 1}) continue;
    const Diagnosis d =
        diagnose(report_.model, synthetic_.states.row_vector(i));
    std::set<std::size_t> rows;
    for (const RankedCause& cause : d.ranked) rows.insert(cause.row);
    if (rows.contains(row0) && rows.contains(row1)) ++both;
    ++total;
  }
  if (total == 0) GTEST_SKIP() << "no pair states drawn for causes {0,1}";
  EXPECT_GT(static_cast<double>(both) / static_cast<double>(total), 0.5);
}

TEST_F(InferenceTest, ResidualSmallForTrainingLikeStates) {
  // The model should reconstruct states drawn from its own distribution
  // substantially better than arbitrary noise directions it never saw.
  const Vector abnormal = synthetic_.states.row_vector(5);
  const Diagnosis d = diagnose(report_.model, abnormal);
  const double encoded_norm =
      linalg::norm2(report_.model.encoder().encode(abnormal));
  EXPECT_LT(d.residual, encoded_norm);
}

TEST_F(InferenceTest, CorrelationStrengthsBatchMatchesSingle) {
  Matrix subset(0, 0);
  for (std::size_t i = 0; i < 10; ++i)
    subset.append_row(synthetic_.states.row(i));
  const Matrix w = correlation_strengths(report_.model, subset);
  ASSERT_EQ(w.rows(), 10u);
  ASSERT_EQ(w.cols(), report_.model.rank());
  for (std::size_t i = 0; i < 10; ++i) {
    const Diagnosis d =
        diagnose(report_.model, synthetic_.states.row_vector(i));
    for (std::size_t r = 0; r < w.cols(); ++r)
      EXPECT_NEAR(w(i, r), d.weights[r], 1e-8);
  }
}

TEST(InferenceHelpers, MeanStrengthProfile) {
  Matrix w{{1.0, 0.0}, {3.0, 2.0}};
  const Vector profile = mean_strength_profile(w);
  EXPECT_DOUBLE_EQ(profile[0], 2.0);
  EXPECT_DOUBLE_EQ(profile[1], 1.0);
  EXPECT_EQ(mean_strength_profile(Matrix(0, 0)).size(), 0u);
}

TEST(InferenceHelpers, ProfileCorrelation) {
  Vector a{1.0, 2.0, 3.0};
  Vector up{2.0, 4.0, 6.0};
  Vector down{3.0, 2.0, 1.0};
  EXPECT_NEAR(profile_correlation(a, up), 1.0, 1e-12);
  EXPECT_NEAR(profile_correlation(a, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(profile_correlation(a, Vector{1.0, 1.0, 1.0}), 0.0);
  EXPECT_THROW(profile_correlation(a, Vector{1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// diagnose_stream: the bounded-queue batch path must be an exact drop-in
// for diagnose_batch — per state bit-identical at any batch size, chunk
// size, or thread count — while only ever materializing one batch.

TEST_F(InferenceTest, StreamMatchesBatchBitForBit) {
  const std::vector<Diagnosis> expected =
      diagnose_batch(report_.model, synthetic_.states);
  for (const std::size_t batch_size : {1ul, 7ul, 64ul, 10000ul}) {
    StreamOptions options;
    options.batch_size = batch_size;
    options.chunk = 5;
    std::size_t seen = 0;
    const StreamReport report = diagnose_stream(
        report_.model, synthetic_.states, options,
        [&](std::size_t first, const std::vector<Diagnosis>& batch) {
          ASSERT_EQ(first, seen);
          for (std::size_t i = 0; i < batch.size(); ++i) {
            const Diagnosis& got = batch[i];
            const Diagnosis& want = expected[first + i];
            ASSERT_EQ(got.weights, want.weights)
                << "state " << first + i << " batch_size " << batch_size;
            EXPECT_EQ(got.residual, want.residual);
            EXPECT_EQ(got.exception_score, want.exception_score);
            EXPECT_EQ(got.is_exception, want.is_exception);
            ASSERT_EQ(got.ranked.size(), want.ranked.size());
            for (std::size_t r = 0; r < got.ranked.size(); ++r) {
              EXPECT_EQ(got.ranked[r].row, want.ranked[r].row);
              EXPECT_EQ(got.ranked[r].strength, want.ranked[r].strength);
            }
          }
          seen += batch.size();
        });
    EXPECT_EQ(seen, expected.size());
    EXPECT_EQ(report.states, expected.size());
    const std::size_t want_batches =
        (expected.size() + batch_size - 1) / batch_size;
    EXPECT_EQ(report.batches, want_batches);
    std::size_t want_exceptions = 0;
    for (const Diagnosis& d : expected)
      if (d.is_exception) ++want_exceptions;
    EXPECT_EQ(report.exceptions, want_exceptions);
  }
}

TEST_F(InferenceTest, StreamIsChunkAndThreadInvariant) {
  Matrix subset(0, 0);
  for (std::size_t i = 0; i < 40; ++i)
    subset.append_row(synthetic_.states.row(i));
  auto weights_with = [&](std::size_t chunk, std::size_t threads) {
    const std::size_t previous = vn2::core::num_threads();
    set_num_threads(threads);
    StreamOptions options;
    options.batch_size = 16;
    options.chunk = chunk;
    std::vector<Vector> collected;
    diagnose_stream(report_.model, subset, options,
                    [&](std::size_t, const std::vector<Diagnosis>& batch) {
                      for (const Diagnosis& d : batch)
                        collected.push_back(d.weights);
                    });
    set_num_threads(previous);
    return collected;
  };
  const std::vector<Vector> baseline = weights_with(1, 1);
  EXPECT_EQ(baseline, weights_with(64, 1));
  EXPECT_EQ(baseline, weights_with(3, 4));
  EXPECT_EQ(baseline, weights_with(16, 8));
}

TEST_F(InferenceTest, StreamEdgeCases) {
  // Empty input: no sink calls, an all-zero report.
  const Matrix empty(0, metrics::kMetricCount);
  StreamOptions options;
  bool called = false;
  const StreamReport report =
      diagnose_stream(report_.model, empty, options,
                      [&](std::size_t, const std::vector<Diagnosis>&) {
                        called = true;
                      });
  EXPECT_FALSE(called);
  EXPECT_EQ(report.states, 0u);
  EXPECT_EQ(report.batches, 0u);
  EXPECT_EQ(report.exceptions, 0u);

  // A null sink is allowed: the stream still diagnoses and reports.
  Matrix one(0, 0);
  one.append_row(synthetic_.states.row(0));
  const StreamReport counted =
      diagnose_stream(report_.model, one, options, nullptr);
  EXPECT_EQ(counted.states, 1u);
  EXPECT_EQ(counted.batches, 1u);

  // Invalid inputs are rejected like diagnose_batch's.
  EXPECT_THROW(diagnose_stream(Vn2Model{}, one, options, nullptr),
               std::invalid_argument);
  StreamOptions zero_batch;
  zero_batch.batch_size = 0;
  EXPECT_THROW(diagnose_stream(report_.model, one, zero_batch, nullptr),
               std::invalid_argument);
  StreamOptions zero_chunk;
  zero_chunk.chunk = 0;
  EXPECT_THROW(diagnose_stream(report_.model, one, zero_chunk, nullptr),
               std::invalid_argument);
}

TEST_F(InferenceTest, StrengthFloorFiltersWeakCauses) {
  DiagnoseOptions strict;
  strict.strength_floor_fraction = 0.9;  // Essentially only the top cause.
  const Diagnosis d = diagnose(report_.model,
                               synthetic_.states.row_vector(5), strict);
  DiagnoseOptions lenient;
  lenient.strength_floor_fraction = 0.0;
  const Diagnosis d2 = diagnose(report_.model,
                                synthetic_.states.row_vector(5), lenient);
  EXPECT_LE(d.ranked.size(), d2.ranked.size());
}

}  // namespace
}  // namespace vn2::core
