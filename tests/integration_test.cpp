// End-to-end pipeline tests: simulator → trace → training → inference →
// interpretation → evaluation against injected ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/vn2.hpp"
#include "scenario/scenario.hpp"
#include "trace/csv.hpp"
#include "trace/trace.hpp"

namespace vn2 {
namespace {

/// A 16-node network with a fault cocktail, 2 simulated hours.
scenario::ScenarioBundle faulty_bundle(std::uint64_t seed) {
  scenario::ScenarioBundle bundle = scenario::tiny(16, 7200.0, seed);

  wsn::FaultCommand loop;
  loop.type = wsn::FaultCommand::Type::kForcedLoop;
  loop.node = 6;
  loop.start = 1800.0;
  loop.end = 2700.0;
  bundle.faults.push_back(loop);

  wsn::FaultCommand jam;
  jam.type = wsn::FaultCommand::Type::kJammer;
  jam.center = {12.0, 12.0};
  jam.radius_m = 40.0;
  jam.start = 3600.0;
  jam.end = 4500.0;
  jam.magnitude = 0.6;
  bundle.faults.push_back(jam);

  wsn::FaultCommand fail;
  fail.type = wsn::FaultCommand::Type::kNodeFailure;
  fail.node = 9;
  fail.start = 5400.0;
  bundle.faults.push_back(fail);

  wsn::FaultCommand reboot;
  reboot.type = wsn::FaultCommand::Type::kNodeReboot;
  reboot.node = 9;
  reboot.start = 6300.0;
  bundle.faults.push_back(reboot);

  return bundle;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto bundle = faulty_bundle(2024);
    wsn::Simulator sim = bundle.make_simulator();
    result_ = new wsn::SimulationResult(sim.run());
    trace_ = new trace::Trace(trace::build_trace(*result_));
    states_ = new std::vector<trace::StateVector>(trace::extract_states(*trace_));

    core::Vn2Tool::Options options;
    options.training.rank = 8;
    options.training.nmf.max_iterations = 300;
    tool_ = new core::Vn2Tool(
        core::Vn2Tool::train_from_states(*states_, options));
  }
  static void TearDownTestSuite() {
    delete tool_;
    delete states_;
    delete trace_;
    delete result_;
    tool_ = nullptr;
    states_ = nullptr;
    trace_ = nullptr;
    result_ = nullptr;
  }

  static wsn::SimulationResult* result_;
  static trace::Trace* trace_;
  static std::vector<trace::StateVector>* states_;
  static core::Vn2Tool* tool_;
};

wsn::SimulationResult* PipelineTest::result_ = nullptr;
trace::Trace* PipelineTest::trace_ = nullptr;
std::vector<trace::StateVector>* PipelineTest::states_ = nullptr;
core::Vn2Tool* PipelineTest::tool_ = nullptr;

TEST_F(PipelineTest, TraceHasSubstance) {
  EXPECT_GT(trace_->total_snapshots(), 100u);
  EXPECT_GT(states_->size(), 100u);
  EXPECT_GT(trace::overall_prr(*result_), 0.5);
}

TEST_F(PipelineTest, TrainingFoundExceptions) {
  const core::TrainingReport& report = tool_->report();
  EXPECT_GT(report.exception_states, 0u);
  EXPECT_LT(report.exception_states, report.training_states);
  EXPECT_EQ(tool_->model().rank(), 8u);
}

TEST_F(PipelineTest, LoopWindowStatesImplicateLoopFamilyMetrics) {
  // During the forced-loop window, some state near node 6 must diagnose as
  // an exception whose dominant metrics include loop/traffic counters.
  bool found = false;
  for (const trace::StateVector& state : *states_) {
    if (state.time < 1800.0 || state.time > 3000.0) continue;
    const auto explanation = tool_->explain(state.delta);
    if (!explanation.diagnosis.is_exception) continue;
    for (const auto& [interp, strength] : explanation.causes) {
      for (const auto& [metric, value] : interp->dominant_metrics) {
        if (metric == metrics::MetricId::kLoopCounter ||
            metric == metrics::MetricId::kDuplicateCounter) {
          found = true;
        }
      }
    }
    if (found) break;
  }
  EXPECT_TRUE(found) << "no loop-flavored diagnosis in the loop window";
}

TEST_F(PipelineTest, JammerWindowRaisesContentionDiagnoses) {
  std::size_t contention_hits = 0;
  for (const trace::StateVector& state : *states_) {
    if (state.time < 3600.0 || state.time > 4800.0) continue;
    const auto explanation = tool_->explain(state.delta);
    if (!explanation.diagnosis.is_exception) continue;
    for (const auto& [interp, strength] : explanation.causes) {
      for (const auto& [metric, value] : interp->dominant_metrics) {
        if (metric == metrics::MetricId::kMacBackoffCounter ||
            metric == metrics::MetricId::kNoackRetransmitCounter)
          ++contention_hits;
      }
    }
  }
  EXPECT_GT(contention_hits, 0u);
}

TEST_F(PipelineTest, EvaluationAgainstGroundTruth) {
  std::vector<core::Diagnosis> diagnoses;
  diagnoses.reserve(states_->size());
  for (const trace::StateVector& state : *states_)
    diagnoses.push_back(tool_->diagnose_state(state.delta));

  core::EvalOptions options;
  options.window_slack = 1500.0;
  auto predictions = core::predict_hazards(*states_, diagnoses,
                                           tool_->interpretations(), options);
  EXPECT_FALSE(predictions.empty());
  core::EvalReport report =
      core::evaluate(predictions, result_->ground_truth, options);
  // The pipeline must detect at least some of the injected hazard classes.
  EXPECT_GT(report.macro_recall, 0.0);
}

TEST_F(PipelineTest, ModelRoundTripThroughDisk) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vn2_integration_model.txt")
          .string();
  tool_->model().save(path);
  core::Vn2Tool reloaded = core::Vn2Tool::from_model(core::Vn2Model::load(path));
  std::remove(path.c_str());

  const trace::StateVector& probe = states_->at(states_->size() / 2);
  const core::Diagnosis a = tool_->diagnose_state(probe.delta);
  const core::Diagnosis b = reloaded.diagnose_state(probe.delta);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t r = 0; r < a.weights.size(); ++r)
    EXPECT_NEAR(a.weights[r], b.weights[r], 1e-9);
  EXPECT_EQ(reloaded.interpretations().size(), tool_->interpretations().size());
}

TEST_F(PipelineTest, CsvRoundTripPreservesStates) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vn2_integration_trace.csv")
          .string();
  trace::write_trace_csv_file(path, *trace_);
  trace::Trace loaded = trace::read_trace_csv_file(path);
  std::remove(path.c_str());
  auto reloaded_states = trace::extract_states(loaded);
  ASSERT_EQ(reloaded_states.size(), states_->size());
  // Training on the reloaded trace gives the same model.
  core::Vn2Tool::Options options;
  options.training.rank = 8;
  options.training.nmf.max_iterations = 300;
  core::Vn2Tool retrained =
      core::Vn2Tool::train_from_states(reloaded_states, options);
  EXPECT_NEAR(
      linalg::frobenius_distance(retrained.model().psi(), tool_->model().psi()),
      0.0, 1e-6);
}

TEST_F(PipelineTest, ExplainProducesReadableText) {
  const auto explanation = tool_->explain(states_->front().delta);
  EXPECT_FALSE(explanation.text.empty());
  EXPECT_EQ(explanation.causes.size(), explanation.diagnosis.ranked.size());
}

TEST(PipelineSmall, TrainFromTraceConvenience) {
  auto bundle = scenario::tiny(9, 3600.0, 5);
  wsn::SimulationResult result = bundle.make_simulator().run();
  trace::Trace log = trace::build_trace(result);
  core::Vn2Tool::Options options;
  options.training.rank = 4;
  core::Vn2Tool tool = core::Vn2Tool::train_from_trace(log, options);
  EXPECT_TRUE(tool.model().trained());
  EXPECT_EQ(tool.interpretations().size(), 4u);
}

TEST(PipelineSmall, FromModelRejectsUntrained) {
  EXPECT_THROW(core::Vn2Tool::from_model(core::Vn2Model{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vn2
