// Fixture: wall-clock time in analysis code (nondeterminism-clock).
#include <chrono>
#include <ctime>

double wall_seconds() {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count() +
         static_cast<double>(time(nullptr));
}
