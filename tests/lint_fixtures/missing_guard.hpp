// Fixture: header without #pragma once or an include guard (include-guard).
inline int twice(int x) { return 2 * x; }
