// Fixture: float in a numeric kernel (float-in-numeric). Linted under a
// virtual src/linalg/ path; would be legal elsewhere in the tree.
float half_precision_creep(float x) { return x * 0.5f; }
