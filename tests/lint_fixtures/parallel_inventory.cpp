// Fixture: a parallel_for call site in a file absent from DESIGN.md's
// threading inventory (parallel-inventory). The rule only arms when the
// caller supplies an inventory, so the plain two-argument lint_content
// overload leaves this fixture clean.
#include <cstddef>

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  void (*body)(std::size_t));
void bump(std::size_t i);

void sweep() { parallel_for(0, 64, 1, &bump); }
