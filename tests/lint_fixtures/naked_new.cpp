// Fixture: naked new/delete (naked-new). The deleted copy constructor is a
// non-violation the rule must not trip on.
struct Pinned {
  Pinned() = default;
  Pinned(const Pinned&) = delete;
};

int* leak_prone() {
  int* p = new int(7);
  delete p;
  return new int[4];
}
