// Negative fixture for lock-in-parallel-body: the lock is taken on the
// calling thread, before the parallel region; the lambda writes only to
// index-owned slots. Linted, never compiled.
#include <mutex>
#include <vector>

namespace vn2::core {

void accumulate(std::vector<double>& out, std::mutex& m) {
  std::lock_guard<std::mutex> guard(m);  // outside the lambda: fine
  parallel_for(0, out.size(), 64,
               [&out](std::size_t i) { out[i] += 1.0; });
}

}  // namespace vn2::core
