// Negative fixture for alloc-in-kernel: buffers are allocated before the
// loop (caller workspace idiom); loop bodies only read and write through
// pre-sized storage. Linted as src/linalg/kernels.cpp, never compiled.
#include <vector>

namespace vn2::linalg::kernels {

void gemm_ok(double* c, const double* a, std::size_t n) {
  std::vector<double> scratch(n, 0.0);  // outside any loop: fine
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      c[i * n + j] = a[i * n + j] + scratch[j];
  }
}

}  // namespace vn2::linalg::kernels
