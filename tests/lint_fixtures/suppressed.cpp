// Fixture: every violation here carries a vn2-lint suppression comment —
// one in trailing form, one in the line-above form — so the linter must
// report nothing.
#include <cstdlib>
#include <iostream>

int sanctioned_entropy() {
  return rand();  // vn2-lint: allow(nondeterminism-random)
}

void sanctioned_output(int value) {
  // vn2-lint: allow(io-in-library)
  std::cout << value << '\n';
}
