// Positive fixture for lock-in-parallel-body: a mutex acquired inside a
// parallel_for lambda. Linted, never compiled.
#include <mutex>
#include <vector>

namespace vn2::core {

void accumulate(std::vector<double>& out, std::mutex& m, double* sum) {
  parallel_for(0, out.size(), 64, [&](std::size_t i) {
    std::lock_guard<std::mutex> guard(m);  // fires: lock in the body
    *sum += out[i];
  });
}

}  // namespace vn2::core
