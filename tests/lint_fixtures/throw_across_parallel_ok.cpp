// Negative fixture for throw-across-parallel: validation throws on the
// calling thread before the parallel region; the lambda body itself never
// throws. Linted, never compiled.
#include <stdexcept>
#include <vector>

namespace vn2::core {

void safe(std::vector<double>& out) {
  if (out.empty()) throw std::invalid_argument("safe: empty input");  // fine
  parallel_for(0, out.size(), 64,
               [&out](std::size_t i) { out[i] = 1.0; });
}

}  // namespace vn2::core
