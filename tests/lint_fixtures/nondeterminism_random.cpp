// Fixture: unsanctioned RNG in analysis code (nondeterminism-random).
#include <cstdlib>
#include <random>

int unseeded_entropy() {
  std::random_device entropy;
  return static_cast<int>(entropy()) + rand();
}
