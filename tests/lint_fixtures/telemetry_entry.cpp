// Positive fixture for unchecked-public-entry modeled on the telemetry
// profiling surface: entry points that subscript or do arithmetic with
// caller input before any contract check. Linted (never compiled) with
// public_api = {"sample_window", "diff_ratio"}.
#include "telemetry/sampler.hpp"

namespace vn2::telemetry {

std::uint64_t sample_window(const Series& series, std::size_t i) {
  return series[i].rss_bytes;  // subscript with no prior VN2_CHECK: fires
}

double diff_ratio(double base_ns, double run_ns) {
  return run_ns / base_ns;  // arithmetic on unchecked input: fires
}

}  // namespace vn2::telemetry
