// Positive fixture for alloc-in-kernel: allocations inside kernel loop
// bodies. Linted as src/linalg/kernels.cpp, never compiled.
#include <vector>

namespace vn2::linalg::kernels {

void gemm_bad(double* c, const double* a, std::size_t n,
              std::vector<double>& buffer) {
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> scratch(n, 0.0);      // fires: vector decl in loop
    buffer.push_back(a[i]);                   // fires: container growth
    Matrix t(n, n);                           // fires: Matrix temporary
    for (std::size_t j = 0; j < n; ++j) c[i * n + j] = scratch[j] + t(0, j);
  }
}

}  // namespace vn2::linalg::kernels
