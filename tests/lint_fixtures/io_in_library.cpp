// Fixture: direct stdout IO in library code (io-in-library). Linted under
// a virtual src/core/ path; fine in tools/, bench/ and examples/.
#include <cstdio>
#include <iostream>

void chatty_library(int value) {
  std::cout << "value = " << value << '\n';
  printf("value = %d\n", value);
}
