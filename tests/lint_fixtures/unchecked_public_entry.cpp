// Positive fixture for unchecked-public-entry: a public API definition
// that indexes with a parameter before any contract check. Linted (never
// compiled) with public_api = {"lookup", "scaled"}.
#include "core/thing.hpp"

namespace vn2::core {

double lookup(const Vector& v, std::size_t i) {
  return v[i];  // index use with no prior VN2_CHECK: fires
}

double scaled(const Vector& v, double factor) {
  double acc = 0.0;
  for (std::size_t k = 0; k < v.size(); ++k) acc += v[k] * factor;  // fires
  return acc;
}

}  // namespace vn2::core
