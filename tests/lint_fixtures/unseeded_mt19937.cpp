// Fixture: default-constructed mt19937 engines (unseeded-mt19937). The
// explicitly seeded engines and the trailing-underscore member (seeded in
// the constructor initializer) are near-misses that must stay clean.
#include <random>

struct Holder {
  explicit Holder(unsigned seed) : member_rng_(seed) {}
  std::mt19937_64 member_rng_;
};

unsigned roll() {
  std::mt19937 bad;
  std::mt19937_64 worse{};
  std::mt19937 fine(42);
  std::mt19937_64 seeded{123};
  return static_cast<unsigned>(bad() + worse() + fine() + seeded());
}
