// Negative fixture for unchecked-public-entry: the telemetry profiling
// entry points validate caller input before the first risky use — the
// same discipline build_call_tree, diff_call_trees, and the resource
// sampler constructor follow. Linted (never compiled) with public_api =
// {"sample_window", "diff_ratio", "merge_counters"}.
#include "telemetry/sampler.hpp"

namespace vn2::telemetry {

std::uint64_t sample_window(const Series& series, std::size_t i) {
  VN2_CHECK(i < series.size(), "sample_window: index out of range");
  return series[i].rss_bytes;
}

double diff_ratio(double base_ns, double run_ns) {
  if (base_ns <= 0.0 || run_ns < 0.0)
    throw std::invalid_argument("diff_ratio: non-positive base");
  return run_ns / base_ns;
}

std::uint64_t merge_counters(const Sample& sample) {
  return sample.total();  // whole-value member call: no precondition
}

}  // namespace vn2::telemetry
