// Negative fixture for unchecked-public-entry: every public definition
// validates before the first risky parameter use — via a contract macro,
// the hand-rolled if-throw idiom, a validation helper, or by promising
// totality with noexcept. Linted (never compiled) with public_api =
// {"checked", "guarded", "helper_checked", "total", "whole_value"}.
#include "core/thing.hpp"

namespace vn2::core {

double checked(const Vector& v, std::size_t i) {
  VN2_CHECK(i < v.size(), "checked: index out of range");
  return v[i];
}

double guarded(const Vector& v, std::size_t i) {
  if (i >= v.size()) throw std::out_of_range("guarded: index");
  return v[i];
}

double helper_checked(const Vector& v, std::size_t i) {
  check_index(i, v.size());
  return v[i];
}

double total(const Vector& v, std::size_t i) noexcept {
  return i < v.size() ? v[i] : 0.0;
}

double whole_value(const Vector& v) {
  return v.sum();  // member call: the parameter is read whole, no risk
}

}  // namespace vn2::core
