// Fixture: using namespace at namespace scope in a header
// (using-namespace-header).
#pragma once

#include <vector>

using namespace std;

inline vector<int> make_empty() { return {}; }
