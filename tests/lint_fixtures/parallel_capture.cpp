// Fixture: a parallel_for body mutating a '&'-captured local
// (parallel-capture). The index-owned write to out[i] is the sanctioned
// pattern and must NOT be flagged.
#include <cstddef>
#include <vector>

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& body);

double racy_sum(const std::vector<double>& values) {
  double total = 0.0;
  std::vector<double> out(values.size());
  parallel_for(0, values.size(), 1, [&](std::size_t i) {
    out[i] = values[i] * 2.0;
    total += values[i];
  });
  return total;
}
