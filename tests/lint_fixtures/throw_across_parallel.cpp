// Positive fixture for throw-across-parallel: a raw throw inside a
// parallel_for lambda crosses the task boundary. Linted, never compiled.
#include <stdexcept>
#include <vector>

namespace vn2::core {

void risky(std::vector<double>& out) {
  parallel_for(0, out.size(), 64, [&out](std::size_t i) {
    if (out[i] < 0.0) throw std::runtime_error("negative input");  // fires
    out[i] = 1.0;
  });
}

}  // namespace vn2::core
