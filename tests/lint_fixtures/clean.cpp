// Fixture: a file full of near-misses that must produce zero findings.
//
// Mentions of rand(), std::random_device, time(...) or std::cout in
// comments are fine, and so are the same tokens inside string literals.
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

struct NoCopy {
  NoCopy() = default;
  NoCopy(const NoCopy&) = delete;             // deleted, not naked delete
  NoCopy& operator=(const NoCopy&) = delete;  // ditto
};

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& body);

std::string lint_bait() {
  // The next line keeps the tokens inside a string literal only.
  std::string bait = "rand() std::random_device std::cout time(nullptr)";
  auto owned = std::make_unique<int>(3);  // ownership without naked new
  std::vector<double> out(8);
  double scale = 2.0;  // written before, not inside, the parallel body
  scale *= 2.0;
  parallel_for(0, out.size(), 1, [&](std::size_t i) {
    double local = scale;  // body-local writes are fine
    local += 1.0;
    out[i] = local;  // index-owned slot: the sanctioned pattern
  });
  return bait;
}
