// Fixture for the zero-skip-kernel rule: data-dependent sparsity
// shortcuts in numeric kernels. Linted, never compiled.
void bad_gemm(const double* a, const double* b, double* c, int k, int m) {
  for (int p = 0; p < k; ++p) {
    const double aip = a[p];
    if (aip == 0.0) continue;  // silently turns 0*NaN into 0
    for (int j = 0; j < m; ++j) c[j] += aip * b[p * m + j];
  }
}

void bad_integer_skip(const double* x, double* y, int n) {
  for (int i = 0; i < n; ++i) {
    if (x[i] == 0) continue;
    y[i] += x[i];
  }
}

int near_misses(const double* x, int n) {
  int zeros = 0;
  for (int i = 0; i < n; ++i) {
    if (x[i] == 0.0) ++zeros;   // counting zeros is fine
    if (x[i] == 0.0) break;     // early exit is a different (visible) choice
    if (x[i] <= 0.0) continue;  // an inequality guard is not a sparsity skip
  }
  return zeros;
}
