#include "nmf/nmf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random.hpp"
#include "nmf/rank_selection.hpp"
#include "nmf/sparsify.hpp"

namespace vn2::nmf {
namespace {

using linalg::Matrix;

Matrix random_nonnegative(std::size_t n, std::size_t m, std::uint64_t seed) {
  return linalg::random_uniform_matrix(n, m, seed, 0.0, 1.0);
}

/// A matrix with exact non-negative rank k: product of two random
/// non-negative factors.
Matrix planted_rank(std::size_t n, std::size_t m, std::size_t k,
                    std::uint64_t seed) {
  return linalg::matmul(random_nonnegative(n, k, seed),
                        random_nonnegative(k, m, seed + 1));
}

TEST(Nmf, RejectsBadInput) {
  EXPECT_THROW(factorize(Matrix{}, 2), std::invalid_argument);
  EXPECT_THROW(factorize(Matrix{{1, -0.1}, {0, 1}}, 1), std::invalid_argument);
  EXPECT_THROW(factorize(Matrix{{1, 2}, {3, 4}}, 0), std::invalid_argument);
  EXPECT_THROW(factorize(Matrix{{1, 2}, {3, 4}}, 3), std::invalid_argument);
}

TEST(Nmf, FactorsAreNonnegative) {
  Matrix e = random_nonnegative(20, 10, 42);
  NmfResult r = factorize(e, 4);
  EXPECT_TRUE(linalg::is_nonnegative(r.w));
  EXPECT_TRUE(linalg::is_nonnegative(r.psi));
  EXPECT_EQ(r.w.rows(), 20u);
  EXPECT_EQ(r.w.cols(), 4u);
  EXPECT_EQ(r.psi.rows(), 4u);
  EXPECT_EQ(r.psi.cols(), 10u);
}

TEST(Nmf, RecoversPlantedLowRankStructure) {
  Matrix e = planted_rank(40, 15, 3, 7);
  NmfOptions options;
  options.max_iterations = 2000;
  options.relative_tolerance = 1e-10;
  NmfResult r = factorize(e, 3, options);
  // Rank-3 non-negative data should factorize to a small relative error.
  const double rel = r.approximation_accuracy(e) / linalg::frobenius_norm(e);
  EXPECT_LT(rel, 0.02);
}

TEST(Nmf, DeterministicGivenSeed) {
  Matrix e = random_nonnegative(15, 8, 5);
  NmfOptions options;
  options.seed = 99;
  NmfResult a = factorize(e, 3, options);
  NmfResult b = factorize(e, 3, options);
  EXPECT_LT(linalg::frobenius_distance(a.psi, b.psi), 1e-12);
  options.seed = 100;
  NmfResult c = factorize(e, 3, options);
  EXPECT_GT(linalg::frobenius_distance(a.psi, c.psi), 1e-9);
}

TEST(Nmf, ObjectiveHistoryRecorded) {
  Matrix e = random_nonnegative(12, 6, 9);
  NmfResult r = factorize(e, 2);
  ASSERT_GE(r.objective_history.size(), 2u);
  EXPECT_DOUBLE_EQ(r.objective_history.back(), r.approximation_accuracy(e));
}

// Theorem 1 (Lee & Seung): the Euclidean objective is non-increasing under
// the multiplicative updates — checked step by step over many random
// problems and ranks.
struct TheoremCase {
  std::uint64_t seed;
  std::size_t n, m, rank;
};

class Theorem1Property : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(Theorem1Property, ObjectiveMonotoneNonIncreasing) {
  const TheoremCase& c = GetParam();
  Matrix e = random_nonnegative(c.n, c.m, c.seed);
  Matrix w = linalg::random_uniform_matrix(c.n, c.rank, c.seed + 1, 0.05, 1.0);
  Matrix psi =
      linalg::random_uniform_matrix(c.rank, c.m, c.seed + 2, 0.05, 1.0);
  double previous = approximation_accuracy(e, w, psi);
  for (int step = 0; step < 50; ++step) {
    multiplicative_update(e, w, psi);
    const double current = approximation_accuracy(e, w, psi);
    EXPECT_LE(current, previous + 1e-9 * (1.0 + previous))
        << "objective increased at step " << step;
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Theorem1Property,
    ::testing::Values(TheoremCase{1, 10, 8, 2}, TheoremCase{2, 25, 12, 5},
                      TheoremCase{3, 8, 30, 4}, TheoremCase{4, 40, 40, 10},
                      TheoremCase{5, 6, 6, 6}, TheoremCase{6, 50, 9, 3}));

// Accuracy improves (weakly) with rank on the same data.
TEST(Nmf, AccuracyImprovesWithRank) {
  Matrix e = random_nonnegative(30, 20, 77);
  NmfOptions options;
  options.max_iterations = 800;
  double previous = 1e300;
  for (std::size_t rank : {2u, 5u, 10u, 15u}) {
    options.seed = 1000 + rank;
    NmfResult r = factorize(e, rank, options);
    const double alpha = r.approximation_accuracy(e);
    // Allow slack: NMF is non-convex, different ranks land in different
    // local minima; the trend must still be strongly downward.
    EXPECT_LT(alpha, previous * 1.05);
    previous = alpha;
  }
}

TEST(Sparsify, RejectsBadFraction) {
  Matrix w = random_nonnegative(4, 4, 1);
  SparsifyOptions options;
  options.retained_mass = 0.0;
  EXPECT_THROW(sparsify(w, options), std::invalid_argument);
  options.retained_mass = 1.5;
  EXPECT_THROW(sparsify(w, options), std::invalid_argument);
}

TEST(Sparsify, RetainsRequestedMass) {
  Matrix w = random_nonnegative(20, 10, 3);
  SparsifyResult r = sparsify(w);
  EXPECT_GE(r.retained_fraction, 0.9);
  EXPECT_LE(r.kept_entries, w.size());
  EXPECT_GT(r.kept_entries, 0u);
}

TEST(Sparsify, KeepsLargestEntries) {
  Matrix w{{10.0, 0.1, 0.1}, {0.1, 10.0, 0.1}};
  SparsifyOptions options;
  options.retained_mass = 0.9;
  options.normalize_rows = false;
  SparsifyResult r = sparsify(w, options);
  EXPECT_DOUBLE_EQ(r.w_sparse(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(r.w_sparse(1, 1), 10.0);
  EXPECT_DOUBLE_EQ(r.w_sparse(0, 1), 0.0);
}

TEST(Sparsify, FullMassKeepsEverythingNonzero) {
  Matrix w = random_nonnegative(5, 5, 4);
  SparsifyOptions options;
  options.retained_mass = 1.0;
  SparsifyResult r = sparsify(w, options);
  EXPECT_EQ(r.kept_entries, w.size());
  EXPECT_EQ(r.w_sparse, w);
}

TEST(Sparsify, SparseReconstructionIsWorseButClose) {
  Matrix e = planted_rank(30, 12, 4, 21);
  NmfResult model = factorize(e, 4);
  SparsifyResult sparse = sparsify(model.w);
  const double dense_alpha = approximation_accuracy(e, model.w, model.psi);
  const double sparse_alpha =
      approximation_accuracy(e, sparse.w_sparse, model.psi);
  EXPECT_GE(sparse_alpha, dense_alpha - 1e-9);  // Pruning cannot help.
  // ...but retains most reconstruction power relative to the data scale.
  EXPECT_LT(sparse_alpha, 0.25 * linalg::frobenius_norm(e));
}

TEST(Sparsify, MeanActiveCauses) {
  Matrix w(4, 5, 0.0);
  w(0, 0) = 1.0;
  w(1, 1) = 1.0;
  w(1, 2) = 1.0;
  EXPECT_DOUBLE_EQ(mean_active_causes(w), 0.75);
  EXPECT_DOUBLE_EQ(mean_active_causes(Matrix{}), 0.0);
}

TEST(RankSelection, SweepSkipsInfeasibleRanks) {
  Matrix e = random_nonnegative(10, 6, 2);
  auto sweep = rank_sweep(e, {0, 2, 4, 6, 50});
  ASSERT_EQ(sweep.size(), 3u);  // 0 and 50 skipped.
  EXPECT_EQ(sweep[0].rank, 2u);
  EXPECT_EQ(sweep[2].rank, 6u);
}

TEST(RankSelection, SparseAccuracyNeverBetter) {
  Matrix e = random_nonnegative(40, 20, 13);
  auto sweep = rank_sweep(e, {2, 5, 10, 15, 20});
  for (const RankPoint& p : sweep)
    EXPECT_GE(p.accuracy_sparse, p.accuracy_original - 1e-9);
}

TEST(RankSelection, ChooseRankRejectsEmpty) {
  EXPECT_THROW(choose_rank({}), std::invalid_argument);
}

TEST(RankSelection, SingleCandidate) {
  RankPoint p;
  p.rank = 7;
  EXPECT_EQ(choose_rank({p}).rank, 7u);
}

TEST(RankSelection, ChoosesKneeOnPlantedData) {
  // Data with true non-negative rank 5: improvement should flatten past 5,
  // so the chosen rank must be in a small neighborhood of the truth.
  Matrix e = planted_rank(60, 25, 5, 3);
  RankSweepOptions options;
  options.nmf.max_iterations = 600;
  auto sweep = rank_sweep(e, {2, 3, 4, 5, 6, 8, 10, 14, 18, 22}, options);
  const RankChoice choice = choose_rank(sweep);
  EXPECT_GE(choice.rank, 4u);
  EXPECT_LE(choice.rank, 10u);
}

}  // namespace
}  // namespace vn2::nmf
