#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "scenario/scenario.hpp"
#include "trace/csv.hpp"

namespace vn2::trace {
namespace {

using metrics::PacketType;

wsn::SinkPacketRecord make_record(wsn::NodeId origin, std::uint64_t epoch,
                                  PacketType type, double fill,
                                  wsn::Time time = 0.0) {
  wsn::SinkPacketRecord record;
  record.origin = origin;
  record.epoch = epoch;
  record.type = type;
  record.recv_time = time;
  record.values.assign(wsn::block_range(type).count, fill);
  record.hops = 1;
  return record;
}

wsn::SimulationResult result_with(std::vector<wsn::SinkPacketRecord> log) {
  wsn::SimulationResult result;
  result.sink_log = std::move(log);
  result.node_count = 10;
  result.duration = 3600.0;
  result.report_period = 60.0;
  return result;
}

TEST(BuildTrace, AssemblesCompleteEpochs) {
  auto result = result_with({
      make_record(1, 0, PacketType::kC1, 1.0, 10.0),
      make_record(1, 0, PacketType::kC2, 2.0, 11.0),
      make_record(1, 0, PacketType::kC3, 3.0, 12.0),
  });
  Trace trace = build_trace(result);
  ASSERT_EQ(trace.nodes.size(), 1u);
  ASSERT_EQ(trace.nodes[0].snapshots.size(), 1u);
  const Snapshot& snap = trace.nodes[0].snapshots[0];
  EXPECT_EQ(snap.epoch, 0u);
  EXPECT_DOUBLE_EQ(snap.time, 12.0);  // Last block's arrival.
  EXPECT_DOUBLE_EQ(snap.values[0], 1.0);   // C1 block.
  EXPECT_DOUBLE_EQ(snap.values[6], 2.0);   // C2 block.
  EXPECT_DOUBLE_EQ(snap.values[26], 3.0);  // C3 block.
}

TEST(BuildTrace, DropsIncompleteEpochs) {
  auto result = result_with({
      make_record(1, 0, PacketType::kC1, 1.0),
      make_record(1, 0, PacketType::kC3, 3.0),  // C2 lost.
      make_record(1, 1, PacketType::kC1, 1.0),
      make_record(1, 1, PacketType::kC2, 2.0),
      make_record(1, 1, PacketType::kC3, 3.0),
  });
  Trace trace = build_trace(result);
  ASSERT_EQ(trace.nodes.size(), 1u);
  ASSERT_EQ(trace.nodes[0].snapshots.size(), 1u);
  EXPECT_EQ(trace.nodes[0].snapshots[0].epoch, 1u);
}

TEST(BuildTrace, DuplicateBlocksAreIdempotent) {
  auto result = result_with({
      make_record(1, 0, PacketType::kC1, 1.0),
      make_record(1, 0, PacketType::kC1, 1.0),  // Duplicate delivery.
      make_record(1, 0, PacketType::kC2, 2.0),
      make_record(1, 0, PacketType::kC3, 3.0),
  });
  Trace trace = build_trace(result);
  ASSERT_EQ(trace.nodes[0].snapshots.size(), 1u);
}

TEST(BuildTrace, SeparatesNodes) {
  auto result = result_with({
      make_record(1, 0, PacketType::kC1, 1.0),
      make_record(1, 0, PacketType::kC2, 1.0),
      make_record(1, 0, PacketType::kC3, 1.0),
      make_record(2, 0, PacketType::kC1, 9.0),
      make_record(2, 0, PacketType::kC2, 9.0),
      make_record(2, 0, PacketType::kC3, 9.0),
  });
  Trace trace = build_trace(result);
  EXPECT_EQ(trace.nodes.size(), 2u);
  EXPECT_EQ(trace.total_snapshots(), 2u);
  EXPECT_NE(trace.find(1), nullptr);
  EXPECT_NE(trace.find(2), nullptr);
  EXPECT_EQ(trace.find(3), nullptr);
}

TEST(ExtractStates, DiffsSuccessiveSnapshots) {
  auto result = result_with({
      make_record(1, 0, PacketType::kC1, 1.0),
      make_record(1, 0, PacketType::kC2, 1.0),
      make_record(1, 0, PacketType::kC3, 10.0),
      make_record(1, 1, PacketType::kC1, 2.0, 60.0),
      make_record(1, 1, PacketType::kC2, 1.5, 60.0),
      make_record(1, 1, PacketType::kC3, 14.0, 61.0),
  });
  Trace trace = build_trace(result);
  auto states = extract_states(trace);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].node, 1);
  EXPECT_EQ(states[0].epoch, 1u);
  EXPECT_DOUBLE_EQ(states[0].time, 61.0);
  EXPECT_DOUBLE_EQ(states[0].delta[0], 1.0);    // C1: 2 − 1.
  EXPECT_DOUBLE_EQ(states[0].delta[6], 0.5);    // C2.
  EXPECT_DOUBLE_EQ(states[0].delta[26], 4.0);   // C3: 14 − 10.
}

TEST(ExtractStates, SpansLostEpochs) {
  // Epoch 1 is lost entirely: the diff runs 0 → 2, exactly like the paper's
  // "two successive packets" (successive *received*).
  auto result = result_with({
      make_record(1, 0, PacketType::kC1, 0.0),
      make_record(1, 0, PacketType::kC2, 0.0),
      make_record(1, 0, PacketType::kC3, 0.0),
      make_record(1, 2, PacketType::kC1, 6.0),
      make_record(1, 2, PacketType::kC2, 6.0),
      make_record(1, 2, PacketType::kC3, 6.0),
  });
  auto states = extract_states(build_trace(result));
  ASSERT_EQ(states.size(), 1u);
  EXPECT_DOUBLE_EQ(states[0].delta[0], 6.0);
}

TEST(StatesMatrix, StacksRows) {
  std::vector<StateVector> states(3);
  for (auto& s : states) s.delta = linalg::Vector(metrics::kMetricCount, 1.0);
  states[1].delta[5] = 7.0;
  linalg::Matrix m = states_matrix(states);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), metrics::kMetricCount);
  EXPECT_DOUBLE_EQ(m(1, 5), 7.0);
}

TEST(Prr, SeriesAndOverall) {
  wsn::SimulationResult result;
  result.duration = 200.0;
  result.node_count = 3;
  result.report_period = 10.0;
  for (int i = 0; i < 10; ++i)
    result.originations.push_back(
        {static_cast<double>(i) * 20.0, 1, static_cast<std::uint64_t>(i),
         PacketType::kC1});
  // 5 of 10 delivered, all in the first half.
  for (int i = 0; i < 5; ++i)
    result.sink_log.push_back(
        make_record(1, i, PacketType::kC1, 0.0, static_cast<double>(i) * 20.0));

  EXPECT_DOUBLE_EQ(overall_prr(result), 0.5);
  auto series = prr_series(result, 100.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].originated, 5u);
  EXPECT_EQ(series[0].received, 5u);
  EXPECT_DOUBLE_EQ(series[0].prr(), 1.0);
  EXPECT_DOUBLE_EQ(series[1].prr(), 0.0);
}

TEST(Prr, EmptyInputs) {
  wsn::SimulationResult result;
  result.duration = 100.0;
  EXPECT_DOUBLE_EQ(overall_prr(result), 1.0);
  EXPECT_TRUE(prr_series(result, 0.0).empty());
}

TEST(Csv, TraceRoundTrip) {
  auto bundle = scenario::tiny(6, 900.0, 4);
  wsn::SimulationResult result = bundle.make_simulator().run();
  Trace trace = build_trace(result);
  ASSERT_GT(trace.total_snapshots(), 0u);

  std::stringstream buffer;
  write_trace_csv(buffer, trace);
  Trace loaded = read_trace_csv(buffer);

  ASSERT_EQ(loaded.nodes.size(), trace.nodes.size());
  EXPECT_EQ(loaded.total_snapshots(), trace.total_snapshots());
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    ASSERT_EQ(loaded.nodes[i].node, trace.nodes[i].node);
    for (std::size_t s = 0; s < trace.nodes[i].snapshots.size(); ++s) {
      const Snapshot& a = trace.nodes[i].snapshots[s];
      const Snapshot& b = loaded.nodes[i].snapshots[s];
      EXPECT_EQ(a.epoch, b.epoch);
      for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
        EXPECT_NEAR(a.values[m], b.values[m], 1e-6 * (1.0 + std::abs(a.values[m])));
    }
  }
}

TEST(Csv, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(read_trace_csv(empty), std::runtime_error);
  std::stringstream bad_header("a,b,c\n");
  EXPECT_THROW(read_trace_csv(bad_header), std::runtime_error);
}

TEST(Csv, MatrixRoundTrip) {
  linalg::Matrix m{{1.5, -2.25}, {0.0, 1e6}};
  std::stringstream buffer;
  write_matrix_csv(buffer, m);
  linalg::Matrix loaded = read_matrix_csv(buffer);
  EXPECT_EQ(loaded, m);
}

}  // namespace
}  // namespace vn2::trace
