#include "wsn/simulator.hpp"

#include <gtest/gtest.h>

#include <array>

#include "scenario/scenario.hpp"

namespace vn2::wsn {
namespace {

using metrics::MetricId;

/// 3×3 grid + sink, 30 min, 1-min reports — the workhorse fixture.
scenario::ScenarioBundle small_bundle(std::uint64_t seed = 7) {
  return scenario::tiny(9, 1800.0, seed);
}

TEST(Simulator, RejectsDegenerateTopologies) {
  SimConfig config;
  config.positions = {{0, 0}};
  EXPECT_THROW(Simulator sim(config), std::invalid_argument);
}

TEST(Simulator, TreeFormsAndSinkCollects) {
  auto bundle = small_bundle();
  Simulator sim = bundle.make_simulator();
  SimulationResult result = sim.run();

  EXPECT_GT(result.sink_log.size(), 100u);
  EXPECT_GT(result.originations.size(), 0u);
  // A dense grid at short range should deliver nearly everything.
  const double prr = static_cast<double>(result.sink_log.size()) /
                     static_cast<double>(result.originations.size());
  EXPECT_GT(prr, 0.85);

  // After the run every live node has a route.
  for (NodeId id = 1; id < sim.node_count(); ++id) {
    EXPECT_TRUE(sim.node(id).alive());
    EXPECT_TRUE(sim.node(id).has_parent()) << "node " << id;
  }
}

TEST(Simulator, DeterministicGivenSeed) {
  auto b1 = small_bundle(11);
  auto b2 = small_bundle(11);
  SimulationResult r1 = b1.make_simulator().run();
  SimulationResult r2 = b2.make_simulator().run();
  EXPECT_EQ(r1.sink_log.size(), r2.sink_log.size());
  EXPECT_EQ(r1.stats.data_transmissions, r2.stats.data_transmissions);
  EXPECT_EQ(r1.stats.beacons_sent, r2.stats.beacons_sent);
  auto b3 = small_bundle(12);
  SimulationResult r3 = b3.make_simulator().run();
  EXPECT_NE(r1.stats.data_transmissions, r3.stats.data_transmissions);
}

TEST(Simulator, CountersAreMonotoneWithoutReboots) {
  auto bundle = small_bundle(3);
  Simulator sim = bundle.make_simulator();

  std::array<std::array<double, metrics::kMetricCount>, 10> previous{};
  for (Time t = 200.0; t <= 1800.0; t += 200.0) {
    sim.run_until(t);
    for (NodeId id = 0; id < sim.node_count(); ++id) {
      for (MetricId metric : metrics::all_metrics()) {
        if (metrics::kind(metric) != metrics::MetricKind::kCounter) continue;
        const double now = sim.node(id).metric(metric);
        EXPECT_GE(now, previous[id][metrics::index_of(metric)])
            << "counter " << metrics::name(metric) << " regressed on node "
            << id << " at t=" << t;
        previous[id][metrics::index_of(metric)] = now;
      }
    }
  }
}

TEST(Simulator, PacketsCarryCorrectBlocks) {
  auto bundle = small_bundle(5);
  SimulationResult result = bundle.make_simulator().run();
  ASSERT_FALSE(result.sink_log.empty());
  for (const SinkPacketRecord& record : result.sink_log) {
    const BlockRange range = block_range(record.type);
    EXPECT_EQ(record.values.size(), range.count);
    EXPECT_GT(record.hops, 0u);
    EXPECT_NE(record.origin, kSinkId);
  }
}

TEST(Simulator, NodeFailureSilencesNodeAndStressesNeighbors) {
  auto bundle = small_bundle(9);
  FaultCommand failure;
  failure.type = FaultCommand::Type::kNodeFailure;
  failure.node = 5;
  failure.start = 900.0;
  bundle.faults.push_back(failure);

  Simulator sim = bundle.make_simulator();
  sim.run_until(1800.0);
  EXPECT_FALSE(sim.node(5).alive());

  SimulationResult result = sim.snapshot_result();
  // No originations from node 5 after the failure.
  for (const Origination& o : result.originations) {
    if (o.origin == 5) {
      EXPECT_LT(o.time, 910.0);
    }
  }
  // Ground truth recorded.
  ASSERT_EQ(result.ground_truth.size(), 1u);
  EXPECT_EQ(result.ground_truth[0].hazard, metrics::HazardEvent::kNodeFailure);
}

TEST(Simulator, ChildrenOfFailedNodeReRoute) {
  auto bundle = small_bundle(13);
  Simulator sim = bundle.make_simulator();
  sim.run_until(600.0);
  // Find a node whose parent is not the sink, fail that parent.
  NodeId victim = kInvalidNode, parent = kInvalidNode;
  for (NodeId id = 1; id < sim.node_count(); ++id) {
    if (sim.node(id).has_parent() && sim.node(id).parent() != kSinkId) {
      victim = id;
      parent = sim.node(id).parent();
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode) << "grid too flat for a multi-hop route";
  sim.mutable_node(parent).fail();
  sim.run_until(1800.0);
  // The orphan must have found a different parent and kept reporting.
  EXPECT_TRUE(sim.node(victim).has_parent());
  EXPECT_NE(sim.node(victim).parent(), parent);
  EXPECT_GT(sim.node(victim).metric(MetricId::kParentChangeCounter), 1.0);
}

TEST(Simulator, RebootResetsCountersMidRun) {
  auto bundle = small_bundle(17);
  FaultCommand reboot;
  reboot.type = FaultCommand::Type::kNodeReboot;
  reboot.node = 3;
  reboot.start = 1200.0;
  bundle.faults.push_back(reboot);

  Simulator sim = bundle.make_simulator();
  sim.run_until(1199.0);
  const double before = sim.node(3).metric(MetricId::kTransmitCounter);
  EXPECT_GT(before, 0.0);
  sim.run_until(1205.0);
  EXPECT_LT(sim.node(3).metric(MetricId::kTransmitCounter), before);
  sim.run_until(1800.0);
  // The node rejoined: it transmits again and has a parent.
  EXPECT_TRUE(sim.node(3).alive());
  EXPECT_GT(sim.node(3).metric(MetricId::kTransmitCounter), 0.0);
  EXPECT_TRUE(sim.node(3).has_parent());
}

/// A 6-hop chain (spacing beyond single-hop reach of the sink) so that
/// multi-hop routes — and therefore loops — are possible.
scenario::ScenarioBundle chain_bundle(std::uint64_t seed) {
  scenario::ScenarioBundle bundle;
  for (int i = 0; i <= 6; ++i)
    bundle.config.positions.push_back({25.0 * i, 0.0});
  bundle.config.duration = 3600.0;
  bundle.config.report_period = 60.0;
  bundle.config.beacon_period = 10.0;
  bundle.config.seed = seed;
  // Deterministic links: 25 m hops are solid, 50 m skips are out of range,
  // so the chain is guaranteed connected and guaranteed multi-hop.
  bundle.config.radio.shadowing_stddev_db = 0.0;
  return bundle;
}

TEST(Simulator, ChainTopologyIsMultiHop) {
  auto bundle = chain_bundle(19);
  Simulator sim = bundle.make_simulator();
  sim.run_until(600.0);
  // The far end must route through intermediates, not directly to the sink.
  EXPECT_TRUE(sim.node(6).has_parent());
  EXPECT_NE(sim.node(6).parent(), kSinkId);
}

TEST(Simulator, ForcedLoopTriggersLoopCounters) {
  auto bundle = chain_bundle(21);
  FaultCommand loop;
  // Node 2 routes toward the sink; node 3 routes through node 2. Pinning
  // node 2's parent to node 3 creates a 2↔3 cycle.
  loop.type = FaultCommand::Type::kForcedLoop;
  loop.node = 2;
  loop.start = 600.0;
  loop.end = 1800.0;
  bundle.faults.push_back(loop);

  Simulator sim = bundle.make_simulator();
  SimulationResult result = sim.run();
  double total_loops = 0.0;
  for (NodeId id = 0; id < sim.node_count(); ++id)
    total_loops += sim.node(id).metric(MetricId::kLoopCounter);
  EXPECT_GT(total_loops + static_cast<double>(result.stats.loops_detected),
            0.0);
  // The loop burns extra transmissions and duplicates while it lasts.
  EXPECT_GT(result.stats.duplicates, 0u);
}

TEST(Simulator, JammerRaisesBackoffsAndHurtsDelivery) {
  auto clean = small_bundle(25);
  SimulationResult baseline = clean.make_simulator().run();

  auto jammed = small_bundle(25);
  FaultCommand jam;
  jam.type = FaultCommand::Type::kJammer;
  jam.center = {8.0, 8.0};
  jam.radius_m = 60.0;
  jam.start = 300.0;
  jam.end = 1500.0;
  jam.magnitude = 0.7;
  jammed.faults.push_back(jam);
  SimulationResult result = jammed.make_simulator().run();

  // In a dense short-range network, 30 retransmissions paper over most
  // jamming losses — the jam's signature is the contention cost, not lost
  // delivery: backoffs and NOACK retries surge.
  EXPECT_GT(result.stats.mac_backoffs, 2 * baseline.stats.mac_backoffs + 10);
  EXPECT_GT(result.stats.noack_retransmits, baseline.stats.noack_retransmits);
  EXPECT_GT(result.stats.data_transmissions, baseline.stats.data_transmissions);
}

TEST(Simulator, BatteryDrainCausesBrownOut) {
  auto bundle = small_bundle(29);
  FaultCommand drain;
  drain.type = FaultCommand::Type::kBatteryDrain;
  drain.node = 4;
  drain.start = 120.0;
  drain.end = 1800.0;
  drain.magnitude = 50000.0;
  bundle.faults.push_back(drain);

  Simulator sim = bundle.make_simulator();
  sim.run_until(1800.0);
  EXPECT_FALSE(sim.node(4).alive());
  EXPECT_LT(sim.node(4).voltage(), 2.8);
}

TEST(Simulator, CongestionBurstOverflowsQueues) {
  auto bundle = small_bundle(33);
  FaultCommand burst;
  burst.type = FaultCommand::Type::kCongestionBurst;
  burst.center = {8.0, 8.0};
  burst.radius_m = 60.0;
  burst.start = 600.0;
  burst.end = 900.0;
  burst.magnitude = 4.0;  // 4 extra packets/s per node — heavy.
  bundle.faults.push_back(burst);

  SimulationResult result = bundle.make_simulator().run();
  auto clean = small_bundle(33);
  SimulationResult baseline = clean.make_simulator().run();
  EXPECT_GT(result.stats.queue_overflows + result.stats.noack_retransmits,
            baseline.stats.queue_overflows + baseline.stats.noack_retransmits);
}

TEST(Simulator, RadioOnTimeAccrues) {
  auto bundle = small_bundle(37);
  Simulator sim = bundle.make_simulator();
  sim.run_until(1800.0);
  for (NodeId id = 1; id < sim.node_count(); ++id)
    EXPECT_GT(sim.node(id).metric(MetricId::kRadioOnTime), 0.0);
}

TEST(Simulator, GroundTruthBlastRadius) {
  auto bundle = small_bundle(41);
  FaultCommand jam;
  jam.type = FaultCommand::Type::kJammer;
  jam.center = {0.0, 0.0};
  jam.radius_m = 10.0;
  jam.start = 100.0;
  jam.end = 200.0;
  jam.magnitude = 0.5;
  bundle.faults.push_back(jam);
  Simulator sim = bundle.make_simulator();
  SimulationResult result = sim.snapshot_result();
  ASSERT_EQ(result.ground_truth.size(), 1u);
  EXPECT_FALSE(result.ground_truth[0].affected_nodes.empty());
  // Every affected node is inside the radius.
  for (NodeId id : result.ground_truth[0].affected_nodes)
    EXPECT_LE(distance(sim.node(id).position(), jam.center), jam.radius_m);
}

TEST(Simulator, NeighborsInRangeSymmetry) {
  auto bundle = small_bundle(45);
  Simulator sim = bundle.make_simulator();
  for (NodeId u = 0; u < sim.node_count(); ++u) {
    for (NodeId w : sim.neighbors_in_range(u)) {
      const auto& back = sim.neighbors_in_range(w);
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end())
          << "asymmetric in-range relation " << u << "<->" << w;
    }
  }
}

}  // namespace
}  // namespace vn2::wsn
