#include "linalg/nnls.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random.hpp"

namespace vn2::linalg {
namespace {

TEST(Nnls, ExactNonnegativeSolution) {
  // A well-conditioned system whose unconstrained solution is non-negative:
  // NNLS must recover it exactly.
  Matrix a{{2, 0}, {0, 3}, {0, 0}};
  Vector b{4.0, 9.0, 0.0};
  NnlsResult r = nnls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 3.0, 1e-9);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-9);
}

TEST(Nnls, ClampsNegativeCoordinates) {
  // Unconstrained LS would need a negative coefficient on the second column;
  // NNLS must zero it.
  Matrix a{{1, 1}, {0, 1}};
  Vector b{1.0, -5.0};
  NnlsResult r = nnls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.x[0], 0.0);
  EXPECT_GE(r.x[1], 0.0);
  EXPECT_NEAR(r.x[1], 0.0, 1e-9);
}

TEST(Nnls, ZeroRhsGivesZeroSolution) {
  Matrix a = random_uniform_matrix(5, 3, 1);
  NnlsResult r = nnls(a, Vector(5, 0.0));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(r.x[i], 0.0);
  EXPECT_TRUE(r.converged);
}

TEST(Nnls, ShapeMismatchThrows) {
  EXPECT_THROW(nnls(Matrix(3, 2), Vector(4)), std::invalid_argument);
  EXPECT_THROW(nnls_projected_gradient(Matrix(3, 2), Vector(4)),
               std::invalid_argument);
}

TEST(Nnls, WideSystem) {
  // More unknowns than equations: solution exists with zero residual.
  Matrix a = random_uniform_matrix(3, 8, 7, 0.1, 1.0);
  Vector truth = random_uniform_vector(8, 8, 0.0, 1.0);
  Vector b = matvec(a, truth);
  NnlsResult r = nnls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-6);
}

// KKT optimality: at the NNLS solution, the gradient g = Aᵀ(Ax − b)
// satisfies g_i ≥ −tol for all i, and g_i ≈ 0 where x_i > 0.
void expect_kkt(const Matrix& a, const Vector& b, const NnlsResult& r,
                double tol = 1e-6) {
  Vector residual = matvec(a, r.x);
  residual -= b;
  const Matrix at = transpose(a);
  Vector grad = matvec(at, residual);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_GE(grad[i], -tol) << "dual feasibility violated at " << i;
    if (r.x[i] > 1e-8) {
      EXPECT_NEAR(grad[i], 0.0, tol) << "complementarity violated at " << i;
    }
  }
}

class NnlsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NnlsProperty, KktConditionsHold) {
  const std::uint64_t seed = GetParam();
  Matrix a = random_uniform_matrix(20, 8, seed, -1.0, 1.0);
  Vector b = random_uniform_vector(20, seed + 77, -1.0, 1.0);
  NnlsResult r = nnls(a, b);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < r.x.size(); ++i) EXPECT_GE(r.x[i], 0.0);
  expect_kkt(a, b, r);
}

TEST_P(NnlsProperty, RecoverSparseNonnegativeTruth) {
  const std::uint64_t seed = GetParam();
  Matrix a = random_uniform_matrix(30, 10, seed, 0.0, 1.0);
  Vector truth(10, 0.0);
  truth[seed % 10] = 2.0;
  truth[(seed + 3) % 10] = 0.7;
  Vector b = matvec(a, truth);
  NnlsResult r = nnls(a, b);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-6);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(r.x[i], truth[i], 1e-5);
}

TEST_P(NnlsProperty, ActiveSetMatchesProjectedGradient) {
  const std::uint64_t seed = GetParam();
  Matrix a = random_uniform_matrix(25, 6, seed, -1.0, 1.0);
  Vector b = random_uniform_vector(25, seed + 13, -1.0, 1.0);
  NnlsResult exact = nnls(a, b);
  ProjectedGradientOptions pg;
  pg.max_iterations = 50000;
  pg.step_tolerance = 1e-12;
  NnlsResult approx = nnls_projected_gradient(a, b, pg);
  // Both should land on (nearly) the same objective value.
  EXPECT_NEAR(exact.residual_norm, approx.residual_norm,
              1e-4 * (1.0 + exact.residual_norm));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnlsProperty,
                         ::testing::Values(1, 2, 5, 11, 42, 101, 7777));

TEST(ProjectedGradient, NonnegativeIterates) {
  Matrix a = random_uniform_matrix(15, 5, 3, -1.0, 1.0);
  Vector b = random_uniform_vector(15, 4, -1.0, 1.0);
  NnlsResult r = nnls_projected_gradient(a, b);
  for (std::size_t i = 0; i < r.x.size(); ++i) EXPECT_GE(r.x[i], 0.0);
}

TEST(ProjectedGradient, ZeroMatrix) {
  NnlsResult r = nnls_projected_gradient(Matrix(4, 3, 0.0), Vector(4, 1.0));
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(r.x[i], 0.0);
}

}  // namespace
}  // namespace vn2::linalg
