#!/bin/sh
# End-to-end smoke test of the vn2 CLI: simulate → train → inspect →
# diagnose → incidents → silent → stats, all against real files.
set -e
VN2="$1"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$VN2" simulate --scenario tiny --nodes 12 --days 0.05 --seed 9 \
    --out "$WORK/trace.csv" | grep -q "snapshots"
"$VN2" train --trace "$WORK/trace.csv" --rank 5 --out "$WORK/model.vn2" \
    | grep -q "model ->"
"$VN2" inspect --model "$WORK/model.vn2" | grep -q "psi\[ 0\]"
"$VN2" diagnose --model "$WORK/model.vn2" --trace "$WORK/trace.csv" --top 3 \
    | grep -q "exceptions"
"$VN2" incidents --model "$WORK/model.vn2" --trace "$WORK/trace.csv" \
    | grep -q "incidents from"
"$VN2" silent --trace "$WORK/trace.csv" | grep -q "look silent"
"$VN2" stats --trace "$WORK/trace.csv" | grep -q "nodes reporting"
# Telemetry: any subcommand can snapshot its counters/spans; the profile
# subcommand runs the whole pipeline and writes both formats. Counter
# names only appear when instrumentation is compiled in (VN2_TELEMETRY=ON,
# reported in the snapshot itself), so those checks are conditional.
"$VN2" stats --trace "$WORK/trace.csv" --telemetry "$WORK/telemetry.json" \
    > /dev/null
grep -q '"counters"' "$WORK/telemetry.json"
if grep -q '"telemetry_compiled": true' "$WORK/telemetry.json"; then
  grep -q '"trace.csv.rows"' "$WORK/telemetry.json"
fi
"$VN2" profile --scenario tiny --nodes 12 --days 0.05 --seed 9 --rank 5 \
    --out "$WORK/prof.json" --trace-out "$WORK/prof_trace.json" \
    | grep -q "pipeline:"
grep -q '"traceEvents"' "$WORK/prof_trace.json"
if grep -q '"telemetry_compiled": true' "$WORK/prof.json"; then
  grep -q '"nnls.solves"' "$WORK/prof.json"
fi
# --json swaps the human report for the machine-readable snapshot on
# stdout, including the process resource block.
"$VN2" profile --scenario tiny --nodes 12 --days 0.05 --seed 9 --rank 5 \
    --json > "$WORK/prof_stdout.json"
grep -q '"counters"' "$WORK/prof_stdout.json"
grep -q '"resource"' "$WORK/prof_stdout.json"
if grep -q "pipeline:" "$WORK/prof_stdout.json"; then
  echo "profile --json leaked human output onto stdout" >&2
  exit 1
fi
# The snapshot carries the call tree (always, even with telemetry off —
# the section is just empty then) and a non-negative dropped-span footer
# in the human report.
grep -q '"call_tree"' "$WORK/prof_stdout.json"
"$VN2" profile --scenario tiny --nodes 12 --days 0.05 --seed 9 --rank 5 \
    | grep -q "spans dropped:"
# Self-diff of a snapshot is always clean (exit 0), via both the embedded
# command and the standalone tool when it sits next to the CLI binary.
"$VN2" profile --diff "$WORK/prof_stdout.json" "$WORK/prof_stdout.json" \
    | grep -q "verdict: ok"
PROFDIFF="$(dirname "$VN2")/vn2_profdiff"
if [ -x "$PROFDIFF" ]; then
  "$PROFDIFF" "$WORK/prof_stdout.json" "$WORK/prof_stdout.json" \
      | grep -q "verdict: ok"
fi
# Unknown scenarios name the valid ones in the error.
if "$VN2" profile --scenario bogus 2>"$WORK/scen_err.txt"; then
  echo "expected usage error for unknown scenario" >&2
  exit 1
fi
grep -q "tiny, testbed, or citysee" "$WORK/scen_err.txt"
# The kernel-backend selector is a global flag: forcing the scalar
# reference backend must work on any build, and an unknown backend name
# is a usage error.
"$VN2" stats --trace "$WORK/trace.csv" --linalg-backend reference \
    | grep -q "nodes reporting"
if "$VN2" stats --trace "$WORK/trace.csv" --linalg-backend turbo \
    2>/dev/null; then
  echo "expected usage error for unknown linalg backend" >&2
  exit 1
fi
# Forcing the simd backend on unsupported hardware is a clean usage error,
# not a crash. VN2_CPU_FEATURES=scalar masks cpuid, so this holds on any
# build and any host (including ones where simd would otherwise engage).
if VN2_CPU_FEATURES=scalar "$VN2" stats --trace "$WORK/trace.csv" \
    --linalg-backend simd 2>"$WORK/simd_err.txt"; then
  echo "expected usage error for forced simd on unsupported hardware" >&2
  exit 1
fi
grep -q "linalg-backend simd" "$WORK/simd_err.txt"
# --linalg-backend auto must always engage something runnable.
"$VN2" diagnose --model "$WORK/model.vn2" --trace "$WORK/trace.csv" --top 3 \
    --linalg-backend auto | grep -q "exceptions"
# The streaming diagnose path: bounded batches, same verdict counts as the
# one-shot path.
"$VN2" diagnose --model "$WORK/model.vn2" --trace "$WORK/trace.csv" --top 3 \
    > "$WORK/diag_batch.txt"
"$VN2" diagnose --model "$WORK/model.vn2" --trace "$WORK/trace.csv" --top 3 \
    --batch-size 16 > "$WORK/diag_stream.txt"
grep -q "batches of 16" "$WORK/diag_stream.txt"
BATCH_COUNT=$(sed -n 's/^\([0-9]*\) of .* states are exceptions.*/\1/p' \
    "$WORK/diag_batch.txt")
STREAM_COUNT=$(sed -n 's/^\([0-9]*\) of .* states are exceptions.*/\1/p' \
    "$WORK/diag_stream.txt")
if [ "$BATCH_COUNT" != "$STREAM_COUNT" ]; then
  echo "stream/batch diagnose disagree: $BATCH_COUNT vs $STREAM_COUNT" >&2
  exit 1
fi
# Error paths exit non-zero.
if "$VN2" train --trace /nonexistent.csv --out "$WORK/x" 2>/dev/null; then
  echo "expected failure on missing trace" >&2
  exit 1
fi
if "$VN2" bogus-command 2>/dev/null; then
  echo "expected usage error" >&2
  exit 1
fi
echo "cli smoke OK"
