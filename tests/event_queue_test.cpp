#include "wsn/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vn2::wsn {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {0.5, 1.0, 1.5, 2.0, 2.5})
    q.schedule(t, [&fired, t] { fired.push_back(t); });
  const std::size_t executed = q.run_until(1.5);
  EXPECT_EQ(executed, 3u);
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 1.5);
  q.run_all();
  EXPECT_EQ(fired.size(), 5u);
}

TEST(EventQueue, NowAdvancesToRunUntilEvenWithoutEvents) {
  EventQueue q;
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_in(1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(5.0, [&] {
    // Scheduling "in the past" must not rewind the clock.
    q.schedule(1.0, [&] { times.push_back(q.now()); });
  });
  q.run_all();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(EventQueue, NegativeDelayClampsToZero) {
  EventQueue q;
  bool fired = false;
  q.schedule_in(-3.0, [&] { fired = true; });
  q.run_until(0.0);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, StressManyEvents) {
  EventQueue q;
  std::size_t fired = 0;
  for (int i = 0; i < 10000; ++i)
    q.schedule(static_cast<double>(10000 - i), [&] { ++fired; });
  EXPECT_EQ(q.run_all(), 10000u);
  EXPECT_EQ(fired, 10000u);
}

}  // namespace
}  // namespace vn2::wsn
