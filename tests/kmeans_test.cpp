#include "baselines/kmeans.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "linalg/random.hpp"
#include "nmf/nmf.hpp"

namespace vn2::baselines {
namespace {

using linalg::Matrix;

/// Three well-separated Gaussian blobs.
Matrix blobs(std::size_t per_cluster, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.3);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix data(3 * per_cluster, 2);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      data(c * per_cluster + i, 0) = centers[c][0] + noise(rng);
      data(c * per_cluster + i, 1) = centers[c][1] + noise(rng);
    }
  }
  return data;
}

TEST(Kmeans, RejectsBadInput) {
  EXPECT_THROW(kmeans(Matrix{}, 2), std::invalid_argument);
  EXPECT_THROW(kmeans(Matrix(3, 2), 0), std::invalid_argument);
  EXPECT_THROW(kmeans(Matrix(3, 2), 4), std::invalid_argument);
}

TEST(Kmeans, RecoversWellSeparatedBlobs) {
  const Matrix data = blobs(40, 7);
  KmeansResult result = kmeans(data, 3);
  EXPECT_TRUE(result.converged);
  // All members of a blob share a cluster, and the three blobs differ.
  std::set<std::size_t> labels;
  for (std::size_t c = 0; c < 3; ++c) {
    const std::size_t label = result.assignment[c * 40];
    labels.insert(label);
    for (std::size_t i = 1; i < 40; ++i)
      EXPECT_EQ(result.assignment[c * 40 + i], label) << "blob " << c;
  }
  EXPECT_EQ(labels.size(), 3u);
  // Inertia ≈ within-blob variance only.
  EXPECT_LT(result.inertia / static_cast<double>(data.rows()), 0.5);
}

TEST(Kmeans, SingleClusterIsTheMean) {
  Matrix data{{0.0, 0.0}, {2.0, 4.0}, {4.0, 2.0}};
  KmeansResult result = kmeans(data, 1);
  EXPECT_NEAR(result.centroids(0, 0), 2.0, 1e-9);
  EXPECT_NEAR(result.centroids(0, 1), 2.0, 1e-9);
}

TEST(Kmeans, KEqualsNGivesZeroInertia) {
  Matrix data = linalg::random_uniform_matrix(6, 3, 5);
  KmeansResult result = kmeans(data, 6);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(Kmeans, DeterministicGivenSeed) {
  const Matrix data = blobs(20, 9);
  KmeansOptions options;
  options.seed = 1234;
  const KmeansResult a = kmeans(data, 3, options);
  const KmeansResult b = kmeans(data, 3, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_LT(linalg::frobenius_distance(a.centroids, b.centroids), 1e-12);
}

TEST(Kmeans, InertiaDecreasesWithK) {
  const Matrix data = blobs(30, 11);
  double previous = 1e300;
  for (std::size_t k : {1u, 2u, 3u, 5u, 8u}) {
    const KmeansResult result = kmeans(data, k);
    EXPECT_LE(result.inertia, previous + 1e-9);
    previous = result.inertia;
  }
}

TEST(Kmeans, ReconstructMapsRowsToCentroids) {
  const Matrix data = blobs(10, 3);
  const KmeansResult result = kmeans(data, 3);
  const Matrix rec = kmeans_reconstruct(result, data.rows());
  ASSERT_EQ(rec.rows(), data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i)
    for (std::size_t j = 0; j < data.cols(); ++j)
      EXPECT_DOUBLE_EQ(rec(i, j),
                       result.centroids(result.assignment[i], j));
  EXPECT_THROW(kmeans_reconstruct(result, 5), std::invalid_argument);
}

TEST(Kmeans, HardAssignmentFailsOnAdditiveMixtures) {
  // The structural point of the ablation: states produced by cause A, cause
  // B, and cause A+B together. NMF (rank 2) models A+B additively; k-means
  // (k = 2) must park the mixed states at one of the pure centroids.
  std::mt19937_64 rng(17);
  std::normal_distribution<double> noise(0.0, 0.05);
  const std::size_t per_group = 40;
  Matrix data(3 * per_group, 6);
  for (std::size_t i = 0; i < per_group; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      const double a = j < 3 ? 4.0 : 0.0;
      const double b = j < 3 ? 0.0 : 4.0;
      data(i, j) = std::max(0.0, a + noise(rng));
      data(per_group + i, j) = std::max(0.0, b + noise(rng));
      data(2 * per_group + i, j) = std::max(0.0, a + b + noise(rng));
    }
  }

  const KmeansResult clusters = kmeans(data, 2);
  const double kmeans_error = linalg::frobenius_distance(
      data, kmeans_reconstruct(clusters, data.rows()));

  nmf::NmfOptions nmf_options;
  nmf_options.max_iterations = 500;
  const nmf::NmfResult factors = nmf::factorize(data, 2, nmf_options);
  const double nmf_error = factors.approximation_accuracy(data);

  EXPECT_LT(nmf_error, 0.5 * kmeans_error)
      << "NMF should model the A+B mixture additively; k-means cannot";
}

}  // namespace
}  // namespace vn2::baselines
