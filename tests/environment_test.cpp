#include "wsn/environment.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vn2::wsn {
namespace {

constexpr double kDay = 86400.0;

TEST(Environment, TemperatureIsDiurnal) {
  Environment env;
  const Position p{10.0, 10.0};
  // Default start-of-day is 08:00; afternoon (t ≈ 6h → 14:00) should be
  // warmer than pre-dawn (t ≈ 20h → 04:00).
  const double afternoon = env.temperature_c(p, 6.0 * 3600.0);
  const double predawn = env.temperature_c(p, 20.0 * 3600.0);
  EXPECT_GT(afternoon, predawn);
  // And roughly periodic day to day.
  EXPECT_NEAR(env.temperature_c(p, 1000.0), env.temperature_c(p, 1000.0 + kDay),
              1e-9);
}

TEST(Environment, HumidityOpposesTemperature) {
  Environment env;
  const Position p{0.0, 0.0};
  const double t_warm = 6.0 * 3600.0;   // Afternoon.
  const double t_cool = 20.0 * 3600.0;  // Pre-dawn.
  EXPECT_LT(env.humidity_pct(p, t_warm), env.humidity_pct(p, t_cool));
  for (double t = 0; t < kDay; t += 3600.0) {
    const double h = env.humidity_pct(p, t);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 100.0);
  }
}

TEST(Environment, LightZeroAtNightPositiveAtNoon) {
  Environment env;
  const Position p{0.0, 0.0};
  // Start of day 08:00 → t = 4h is noon; t = 16h is midnight.
  EXPECT_GT(env.light_lux(p, 4.0 * 3600.0), 100.0);
  EXPECT_DOUBLE_EQ(env.light_lux(p, 16.0 * 3600.0), 0.0);
}

TEST(Environment, NoiseFloorBaseline) {
  Environment env;
  EXPECT_DOUBLE_EQ(env.noise_floor_dbm({0, 0}, 100.0), -98.0);
}

TEST(Environment, NoiseDisturbanceAppliesInWindowAndRegion) {
  Environment env;
  Disturbance d;
  d.kind = Disturbance::Kind::kNoiseRise;
  d.center = {50.0, 50.0};
  d.radius_m = 20.0;
  d.start = 100.0;
  d.end = 200.0;
  d.magnitude = 10.0;
  env.add_disturbance(d);

  // Epicenter, inside window: full magnitude.
  EXPECT_NEAR(env.noise_floor_dbm({50, 50}, 150.0), -88.0, 1e-9);
  // Halfway out: linear falloff.
  EXPECT_NEAR(env.noise_floor_dbm({60, 50}, 150.0), -93.0, 1e-9);
  // Outside radius.
  EXPECT_DOUBLE_EQ(env.noise_floor_dbm({80, 50}, 150.0), -98.0);
  // Outside window.
  EXPECT_DOUBLE_EQ(env.noise_floor_dbm({50, 50}, 250.0), -98.0);
}

TEST(Environment, TemperatureSpikeDisturbance) {
  Environment env;
  Disturbance d;
  d.kind = Disturbance::Kind::kTemperatureSpike;
  d.center = {0.0, 0.0};
  d.radius_m = 10.0;
  d.start = 0.0;
  d.end = 1000.0;
  d.magnitude = 20.0;
  env.add_disturbance(d);
  const double with = env.temperature_c({0, 0}, 500.0);
  const double without = env.temperature_c({0, 0}, 500.0 + 2000.0);
  // Same clock phase would be needed for exact comparison; just check the
  // spike pushes temperature well above the diurnal envelope.
  EXPECT_GT(with, without);
  EXPECT_GT(with, env.temperature_c({100, 100}, 500.0) + 10.0);
}

TEST(Environment, SensorJitterDeterministicAndBounded) {
  Environment env;
  const double a = env.sensor_jitter(3, 1, 17);
  const double b = env.sensor_jitter(3, 1, 17);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, env.sensor_jitter(4, 1, 17));
  for (NodeId node = 0; node < 50; ++node) {
    const double j = env.sensor_jitter(node, 2, node);
    EXPECT_GT(j, 0.0);
    EXPECT_LT(j, 2.0);
  }
}

TEST(Environment, DifferentSeedsDifferentJitter) {
  Environment a({}, 1);
  Environment b({}, 2);
  EXPECT_NE(a.sensor_jitter(1, 1, 1), b.sensor_jitter(1, 1, 1));
}

}  // namespace
}  // namespace vn2::wsn
