// Covers both state transforms: the min–max StateScaler utility and the
// signed-deviation StateEncoder the model pipeline uses.
#include "core/scaler.hpp"

#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "linalg/random.hpp"

namespace vn2::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix random_states(std::size_t n, std::uint64_t seed) {
  return linalg::random_uniform_matrix(n, metrics::kMetricCount, seed, -5.0,
                                       10.0);
}

TEST(StateScaler, RejectsBadInput) {
  EXPECT_THROW(StateScaler::fit(Matrix{}), std::invalid_argument);
  EXPECT_THROW(StateScaler::fit(Matrix(3, 10)), std::invalid_argument);
}

TEST(StateScaler, TransformsToUnitInterval) {
  Matrix states = random_states(50, 1);
  StateScaler scaler = StateScaler::fit(states);
  Matrix scaled = scaler.transform(states);
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    EXPECT_GE(scaled.data()[i], 0.0);
    EXPECT_LE(scaled.data()[i], 1.0);
  }
}

TEST(StateScaler, RoundTripsWithinRange) {
  Matrix states = random_states(30, 2);
  StateScaler scaler = StateScaler::fit(states);
  const Vector raw = states.row_vector(7);
  const Vector back = scaler.inverse(scaler.transform(raw));
  for (std::size_t m = 0; m < raw.size(); ++m)
    EXPECT_NEAR(back[m], raw[m], 1e-9);
}

TEST(StateScaler, ClampsOutOfRangeInputs) {
  Matrix states(4, metrics::kMetricCount, 0.0);
  for (std::size_t i = 0; i < 4; ++i) states(i, 0) = static_cast<double>(i);
  StateScaler scaler = StateScaler::fit(states);
  Vector extreme(metrics::kMetricCount, 0.0);
  extreme[0] = 100.0;
  EXPECT_DOUBLE_EQ(scaler.transform(extreme)[0], 1.0);
  extreme[0] = -100.0;
  EXPECT_DOUBLE_EQ(scaler.transform(extreme)[0], 0.0);
}

TEST(StateScaler, ConstantColumnMapsToHalf) {
  Matrix states(5, metrics::kMetricCount, 3.3);
  StateScaler scaler = StateScaler::fit(states);
  EXPECT_DOUBLE_EQ(scaler.transform(states.row_vector(0))[10], 0.5);
}

TEST(StateScaler, SerializationRoundTrip) {
  StateScaler scaler = StateScaler::fit(random_states(20, 3));
  StateScaler loaded = StateScaler::from_matrix(scaler.to_matrix());
  EXPECT_EQ(scaler, loaded);
  EXPECT_THROW(StateScaler::from_matrix(Matrix(1, 3)), std::invalid_argument);
}

TEST(StateScaler, CenterOnZeroSigns) {
  Matrix states(2, metrics::kMetricCount, 0.0);
  states(0, 0) = -4.0;
  states(1, 0) = 4.0;
  StateScaler scaler = StateScaler::fit(states);
  Vector up(metrics::kMetricCount, 0.0);
  up[0] = 4.0;
  Vector down(metrics::kMetricCount, 0.0);
  down[0] = -4.0;
  EXPECT_GT(scaler.center_on_zero(scaler.transform(up))[0], 0.9);
  EXPECT_LT(scaler.center_on_zero(scaler.transform(down))[0], -0.9);
  Vector still(metrics::kMetricCount, 0.0);
  EXPECT_NEAR(scaler.center_on_zero(scaler.transform(still))[0], 0.0, 1e-12);
}

// ---------------------------------------------------------------------------

TEST(StateEncoder, RejectsBadInput) {
  EXPECT_THROW(StateEncoder::fit(Matrix{}), std::invalid_argument);
  EXPECT_THROW(StateEncoder::fit(Matrix(3, 7)), std::invalid_argument);
  EXPECT_THROW(StateEncoder::fit(random_states(5, 1), 0.0),
               std::invalid_argument);
}

TEST(StateEncoder, EncodingIsNonnegativeAndSplitsSign) {
  Matrix states = random_states(100, 4);
  StateEncoder encoder = StateEncoder::fit(states);
  Matrix encoded = encoder.encode(states);
  EXPECT_EQ(encoded.cols(), kEncodedCount);
  EXPECT_TRUE(linalg::is_nonnegative(encoded));
  // At most one channel of a pair is non-zero.
  for (std::size_t i = 0; i < encoded.rows(); ++i)
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
      EXPECT_EQ(encoded(i, m) > 0.0 && encoded(i, metrics::kMetricCount + m) > 0.0,
                false);
}

TEST(StateEncoder, MeanStateEncodesToNearZero) {
  Matrix states = random_states(200, 5);
  StateEncoder encoder = StateEncoder::fit(states);
  Vector mean(metrics::kMetricCount);
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
    mean[m] = encoder.metric_mean(m);
  EXPECT_NEAR(encoder.deviation_score(mean), 0.0, 1e-9);
}

TEST(StateEncoder, DecodeInvertsEncode) {
  Matrix states = random_states(50, 6);
  StateEncoder encoder = StateEncoder::fit(states);
  const Vector raw = states.row_vector(3);
  const Vector profile = StateEncoder::decode_signed(encoder.encode(raw));
  // decode(encode(x))_m = (x_m − mean_m)/std_m (inside the clip range).
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
    const double expected =
        encoder.metric_std(m) > 0.0
            ? (raw[m] - encoder.metric_mean(m)) / encoder.metric_std(m)
            : 0.0;
    EXPECT_NEAR(profile[m], expected, 1e-9);
  }
}

TEST(StateEncoder, ClipsCatastrophicOutliers) {
  Matrix states = random_states(50, 7);
  StateEncoder encoder = StateEncoder::fit(states, 5.0);
  Vector crazy(metrics::kMetricCount, 0.0);
  crazy[2] = 1e9;
  const Vector encoded = encoder.encode(crazy);
  EXPECT_LE(encoded[2], 5.0);
}

TEST(StateEncoder, ConstantColumnIsSilent) {
  Matrix states(20, metrics::kMetricCount, 0.0);
  for (std::size_t i = 0; i < 20; ++i)
    states(i, 1) = static_cast<double>(i);  // Only column 1 varies.
  StateEncoder encoder = StateEncoder::fit(states);
  Vector probe(metrics::kMetricCount, 42.0);
  const Vector encoded = encoder.encode(probe);
  EXPECT_DOUBLE_EQ(encoded[0], 0.0);  // Constant column contributes nothing.
  EXPECT_DOUBLE_EQ(encoded[metrics::kMetricCount], 0.0);
  EXPECT_GT(encoded[1] + encoded[metrics::kMetricCount + 1], 0.0);
}

TEST(StateEncoder, DeviationScoreGrowsWithDeviation) {
  Matrix states = random_states(100, 8);
  StateEncoder encoder = StateEncoder::fit(states);
  Vector mild(metrics::kMetricCount), wild(metrics::kMetricCount);
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
    mild[m] = encoder.metric_mean(m) + 0.5 * encoder.metric_std(m);
    wild[m] = encoder.metric_mean(m) + 4.0 * encoder.metric_std(m);
  }
  EXPECT_GT(encoder.deviation_score(wild), encoder.deviation_score(mild));
}

TEST(StateEncoder, SerializationRoundTrip) {
  StateEncoder encoder = StateEncoder::fit(random_states(30, 9), 8.0);
  StateEncoder loaded = StateEncoder::from_matrix(encoder.to_matrix());
  EXPECT_EQ(encoder, loaded);
  EXPECT_THROW(StateEncoder::from_matrix(Matrix(2, 3)), std::invalid_argument);
}

TEST(StateEncoder, WrongVectorSizesThrow) {
  StateEncoder encoder = StateEncoder::fit(random_states(10, 10));
  EXPECT_THROW(encoder.encode(Vector(10)), std::invalid_argument);
  EXPECT_THROW(StateEncoder::decode_signed(Vector(43)), std::invalid_argument);
}

}  // namespace
}  // namespace vn2::core
