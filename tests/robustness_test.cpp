// Failure-injection and edge-condition tests across module boundaries:
// malformed persisted data, degenerate configurations, and empty inputs
// must fail loudly (typed exceptions) or behave sanely — never crash.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/evaluation.hpp"
#include "core/vn2.hpp"
#include "scenario/scenario.hpp"
#include "trace/csv.hpp"
#include "trace/stats.hpp"

namespace vn2 {
namespace {

TEST(CsvRobustness, MalformedRowsThrow) {
  // Header OK, row with a non-numeric field.
  std::ostringstream header;
  header << "node,epoch,time";
  for (metrics::MetricId id : metrics::all_metrics())
    header << ',' << metrics::name(id);
  header << "\n1,0,0";
  for (std::size_t i = 0; i < metrics::kMetricCount - 1; ++i) header << ",0";
  header << ",abc\n";
  std::istringstream bad(header.str());
  EXPECT_THROW(trace::read_trace_csv(bad), std::runtime_error);
}

TEST(CsvRobustness, ShortRowThrows) {
  std::ostringstream buffer;
  buffer << "node,epoch,time";
  for (metrics::MetricId id : metrics::all_metrics())
    buffer << ',' << metrics::name(id);
  buffer << "\n1,0,0,1,2\n";  // Far too few columns.
  std::istringstream bad(buffer.str());
  EXPECT_THROW(trace::read_trace_csv(bad), std::runtime_error);
}

TEST(CsvRobustness, BlankLinesIgnored) {
  scenario::ScenarioBundle bundle = scenario::tiny(6, 600.0, 2);
  const trace::Trace log = trace::build_trace(bundle.make_simulator().run());
  std::stringstream buffer;
  trace::write_trace_csv(buffer, log);
  std::string text = buffer.str() + "\n\n";
  std::istringstream padded(text);
  EXPECT_EQ(trace::read_trace_csv(padded).total_snapshots(),
            log.total_snapshots());
}

TEST(TraceRobustness, EmptySimulationResult) {
  wsn::SimulationResult empty;
  const trace::Trace log = trace::build_trace(empty);
  EXPECT_TRUE(log.nodes.empty());
  EXPECT_TRUE(trace::extract_states(log).empty());
  EXPECT_DOUBLE_EQ(trace::overall_prr(empty), 1.0);
  const trace::NetworkStats stats = trace::compute_stats(empty, log);
  EXPECT_EQ(stats.reporting_nodes, 0u);
}

TEST(TraceRobustness, CorruptBlockSizeIsSkipped) {
  wsn::SimulationResult result;
  result.node_count = 2;
  wsn::SinkPacketRecord record;
  record.origin = 1;
  record.epoch = 0;
  record.type = metrics::PacketType::kC1;
  record.values.assign(3, 1.0);  // C1 needs 6 values.
  result.sink_log.push_back(record);
  const trace::Trace log = trace::build_trace(result);
  EXPECT_EQ(log.total_snapshots(), 0u);
}

TEST(EvaluationRobustness, ExactMatchingModeIsStricter) {
  std::vector<wsn::InjectedFault> truth(1);
  truth[0].hazard = metrics::HazardEvent::kContention;
  truth[0].command.start = 100.0;
  truth[0].command.end = 200.0;
  std::vector<core::HazardPrediction> predictions = {
      {150.0, 1, metrics::HazardEvent::kRisingNoise, 1.0}};
  core::EvalOptions by_class;
  EXPECT_DOUBLE_EQ(core::evaluate(predictions, truth, by_class).macro_recall,
                   1.0);  // Same HazardClass (link).
  core::EvalOptions exact;
  exact.match_by_class = false;
  EXPECT_DOUBLE_EQ(core::evaluate(predictions, truth, exact).macro_recall,
                   0.0);
}

TEST(ScenarioRobustness, DegenerateParamsThrowOrClamp) {
  scenario::CityseeParams params;
  params.node_count = 1;
  EXPECT_THROW(scenario::citysee_field(params), std::invalid_argument);
  // A 2-node "deployment" is the legal minimum.
  params.node_count = 2;
  params.days = 0.01;
  EXPECT_NO_THROW(scenario::citysee_field(params));
}

TEST(SimulatorRobustness, ZeroDurationRunIsEmptyButValid) {
  scenario::ScenarioBundle bundle = scenario::tiny(6, 600.0, 2);
  bundle.config.duration = 0.0;
  const wsn::SimulationResult result = bundle.make_simulator().run();
  EXPECT_TRUE(result.sink_log.empty());
  EXPECT_TRUE(result.originations.empty());
}

TEST(SimulatorRobustness, FaultOnBoundaryNodeIds) {
  scenario::ScenarioBundle bundle = scenario::tiny(6, 900.0, 2);
  const auto last =
      static_cast<wsn::NodeId>(bundle.config.positions.size() - 1);
  wsn::FaultCommand fail;
  fail.type = wsn::FaultCommand::Type::kNodeFailure;
  fail.node = last;
  fail.start = 300.0;
  bundle.faults.push_back(fail);
  wsn::FaultCommand reboot = fail;
  reboot.type = wsn::FaultCommand::Type::kNodeReboot;
  reboot.start = 600.0;
  bundle.faults.push_back(reboot);
  wsn::Simulator sim = bundle.make_simulator();
  EXPECT_NO_THROW(sim.run());
  EXPECT_TRUE(sim.node(last).alive());
}

TEST(ModelRobustness, TruncatedModelFileThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vn2_truncated.txt").string();
  {
    std::ofstream file(path);
    file << "VN2MODEL 2\n1.0 0.3\n5 86\n0.1 0.2\n";  // Truncated matrix.
  }
  EXPECT_THROW(core::Vn2Model::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ToolRobustness, TooFewStatesForRankThrows) {
  std::vector<trace::StateVector> states(3);
  for (auto& state : states) {
    state.delta = linalg::Vector(metrics::kMetricCount);
    state.delta[0] = 1.0;
  }
  core::Vn2Tool::Options options;
  options.training.rank = 10;
  options.training.skip_exception_extraction = true;
  EXPECT_THROW(core::Vn2Tool::train_from_states(states, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace vn2
