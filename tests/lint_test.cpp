// Tests for the vn2-lint static checker: every rule fires on its minimal
// violating fixture, suppression comments silence findings, and the
// near-miss fixture stays clean. Fixtures live in tests/lint_fixtures/
// (found via VN2_LINT_FIXTURE_DIR, set by tests/CMakeLists.txt); they are
// linted, never compiled.
//
// The v2 additions cover: bit-compatibility of the legacy rules with the
// v1 line-based engine (exact line/rule tuples), the four token/scope
// rules, SARIF round-tripping, the baseline ratchet, and lint_main's
// 0/1/2 exit-code contract.
#include "vn2_lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/sarif.hpp"

namespace vn2::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(VN2_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> rules_fired(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

bool fires_on(const std::string& fixture_name,
              const std::string& virtual_path, const std::string& rule) {
  const auto findings = lint_content(virtual_path, fixture(fixture_name));
  return rules_fired(findings).count(rule) > 0;
}

TEST(Lint, NondeterminismRandomFires) {
  EXPECT_TRUE(fires_on("nondeterminism_random.cpp", "src/core/bad.cpp",
                       "nondeterminism-random"));
}

TEST(Lint, RandomIsAllowedInLinalgRandom) {
  EXPECT_FALSE(fires_on("nondeterminism_random.cpp", "src/linalg/random.cpp",
                        "nondeterminism-random"));
}

TEST(Lint, NondeterminismClockFires) {
  EXPECT_TRUE(fires_on("nondeterminism_clock.cpp", "src/core/bad.cpp",
                       "nondeterminism-clock"));
}

TEST(Lint, ClockIsAllowedInSimulator) {
  EXPECT_FALSE(fires_on("nondeterminism_clock.cpp", "src/wsn/simulator.cpp",
                        "nondeterminism-clock"));
}

TEST(Lint, ClockIsAllowedInTelemetry) {
  EXPECT_FALSE(fires_on("nondeterminism_clock.cpp",
                        "src/telemetry/telemetry.cpp",
                        "nondeterminism-clock"));
}

TEST(Lint, FloatInNumericFires) {
  EXPECT_TRUE(fires_on("float_in_numeric.cpp", "src/linalg/bad.cpp",
                       "float-in-numeric"));
  EXPECT_TRUE(fires_on("float_in_numeric.cpp", "src/nmf/bad.cpp",
                       "float-in-numeric"));
}

TEST(Lint, FloatIsAllowedOutsideNumericKernels) {
  EXPECT_FALSE(fires_on("float_in_numeric.cpp", "src/wsn/radio.cpp",
                        "float-in-numeric"));
}

TEST(Lint, IoInLibraryFires) {
  EXPECT_TRUE(
      fires_on("io_in_library.cpp", "src/core/bad.cpp", "io-in-library"));
}

TEST(Lint, IoIsAllowedInToolsAndTraceLayer) {
  EXPECT_FALSE(
      fires_on("io_in_library.cpp", "tools/some_cli.cpp", "io-in-library"));
  EXPECT_FALSE(
      fires_on("io_in_library.cpp", "src/trace/dump.cpp", "io-in-library"));
}

TEST(Lint, UsingNamespaceHeaderFires) {
  EXPECT_TRUE(fires_on("using_namespace_header.hpp", "src/core/bad.hpp",
                       "using-namespace-header"));
}

TEST(Lint, UsingNamespaceIsAllowedInSourceFiles) {
  EXPECT_FALSE(fires_on("using_namespace_header.hpp", "src/core/bad.cpp",
                        "using-namespace-header"));
}

TEST(Lint, NakedNewFires) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("naked_new.cpp"));
  std::size_t naked = 0;
  for (const Finding& f : findings)
    if (f.rule == "naked-new") ++naked;
  // new int(7), delete p, new int[4] — but NOT the two `= delete` lines.
  EXPECT_EQ(naked, 3u);
}

TEST(Lint, IncludeGuardFires) {
  EXPECT_TRUE(
      fires_on("missing_guard.hpp", "src/core/bad.hpp", "include-guard"));
}

TEST(Lint, PragmaOnceSatisfiesGuardRule) {
  EXPECT_FALSE(fires_on("using_namespace_header.hpp", "src/core/bad.hpp",
                        "include-guard"));
}

TEST(Lint, ParallelCaptureFires) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("parallel_capture.cpp"));
  std::vector<Finding> capture_findings;
  for (const Finding& f : findings)
    if (f.rule == "parallel-capture") capture_findings.push_back(f);
  // Exactly the write to `total`; the index-owned out[i] write is fine.
  ASSERT_EQ(capture_findings.size(), 1u);
  EXPECT_NE(capture_findings[0].message.find("'total'"), std::string::npos);
}

TEST(Lint, UnseededMt19937Fires) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("unseeded_mt19937.cpp"));
  std::size_t unseeded = 0;
  for (const Finding& f : findings)
    if (f.rule == "unseeded-mt19937") ++unseeded;
  // `bad;` and `worse{}` — but NOT the seeded engines or the `member_rng_`
  // member (trailing underscore: seeded in the constructor initializer).
  EXPECT_EQ(unseeded, 2u);
}

TEST(Lint, UnseededMt19937AllowedInRandomHome) {
  EXPECT_FALSE(fires_on("unseeded_mt19937.cpp", "src/linalg/random.cpp",
                        "unseeded-mt19937"));
}

TEST(Lint, ZeroSkipKernelFires) {
  const auto findings =
      lint_content("src/linalg/bad.cpp", fixture("zero_skip_kernel.cpp"));
  std::size_t skips = 0;
  for (const Finding& f : findings)
    if (f.rule == "zero-skip-kernel") ++skips;
  // The `== 0.0) continue` and `== 0) continue` skips — but NOT the
  // zero-count, the break, or the inequality guard.
  EXPECT_EQ(skips, 2u);
}

TEST(Lint, ZeroSkipAllowedOutsideNumericKernels) {
  EXPECT_FALSE(fires_on("zero_skip_kernel.cpp", "src/wsn/radio.cpp",
                        "zero-skip-kernel"));
}

TEST(Lint, ParallelInventoryFiresWhenArmed) {
  LintOptions options;
  options.threading_inventory = std::set<std::string>{"src/core/listed.cpp"};
  const auto findings = lint_content(
      "src/core/unlisted.cpp", fixture("parallel_inventory.cpp"), options);
  EXPECT_TRUE(rules_fired(findings).count("parallel-inventory"));
}

TEST(Lint, ParallelInventoryListedFileIsClean) {
  LintOptions options;
  options.threading_inventory = std::set<std::string>{"src/core/listed.cpp"};
  const auto findings = lint_content(
      "src/core/listed.cpp", fixture("parallel_inventory.cpp"), options);
  EXPECT_FALSE(rules_fired(findings).count("parallel-inventory"));
}

TEST(Lint, ParallelInventoryDisabledWithoutInventory) {
  EXPECT_FALSE(fires_on("parallel_inventory.cpp", "src/core/unlisted.cpp",
                        "parallel-inventory"));
}

TEST(Lint, ParallelLayerIsExemptFromInventory) {
  LintOptions options;
  options.threading_inventory = std::set<std::string>{};
  const auto findings = lint_content(
      "src/core/parallel.cpp", fixture("parallel_inventory.cpp"), options);
  EXPECT_FALSE(rules_fired(findings).count("parallel-inventory"));
}

TEST(Lint, ThreadingInventoryParsesFromDesignDoc) {
  const auto inventory = parse_threading_inventory(
      std::filesystem::path(VN2_LINT_REPO_ROOT) / "DESIGN.md");
  ASSERT_TRUE(inventory.has_value());
  EXPECT_TRUE(inventory->count("src/core/inference.cpp"));
  EXPECT_TRUE(inventory->count("src/linalg/matrix.cpp"));
}

TEST(Lint, SuppressionCommentsSilenceFindings) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("suppressed.cpp"));
  EXPECT_TRUE(findings.empty())
      << findings.front().rule << " at line " << findings.front().line;
}

TEST(Lint, SuppressionIsRuleSpecific) {
  // An allow() for a different rule must not silence the finding.
  const std::string content =
      "int f() {\n"
      "  return rand();  // vn2-lint: allow(io-in-library)\n"
      "}\n";
  const auto findings = lint_content("src/core/bad.cpp", content);
  EXPECT_TRUE(rules_fired(findings).count("nondeterminism-random"));
}

TEST(Lint, NearMissesStayClean) {
  const auto findings = lint_content("src/core/ok.cpp", fixture("clean.cpp"));
  EXPECT_TRUE(findings.empty())
      << findings.front().rule << " at line " << findings.front().line;
}

TEST(Lint, CommentsAndStringsAreNotCode) {
  const std::string content =
      "// rand() std::cout time(nullptr)\n"
      "/* std::random_device */\n"
      "const char* s = \"new int; delete p; std::cerr\";\n";
  EXPECT_TRUE(lint_content("src/core/ok.cpp", content).empty());
}

TEST(Lint, FindingsAreLineAnchoredAndSorted) {
  const std::string content =
      "int a() { return rand(); }\n"
      "int b() { return rand(); }\n";
  const auto findings = lint_content("src/core/bad.cpp", content);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(Lint, RuleCatalogueIsStable) {
  const auto ids = rule_ids();
  const std::set<std::string> expected = {
      "nondeterminism-random", "nondeterminism-clock",   "float-in-numeric",
      "io-in-library",         "using-namespace-header", "naked-new",
      "zero-skip-kernel",      "unseeded-mt19937",       "include-guard",
      "parallel-capture",      "parallel-inventory",
      "unchecked-public-entry", "lock-in-parallel-body",
      "alloc-in-kernel",        "throw-across-parallel"};
  EXPECT_EQ(std::set<std::string>(ids.begin(), ids.end()), expected);
}

TEST(Lint, RuleCatalogueDescribesEveryRule) {
  const auto ids = rule_ids();
  const auto catalogue = rule_catalogue();
  ASSERT_EQ(catalogue.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(catalogue[i].first, ids[i]);
    EXPECT_FALSE(catalogue[i].second.empty()) << ids[i];
  }
}

// ---------------------------------------------------------------------------
// v1 bit-compatibility: the v2 token engine must report the exact same
// (line, rule) tuples on the legacy fixtures as the line-based v1 engine
// did. These tuples were recorded from the v1 binary; do not edit them to
// make a refactor pass.

using Anchors = std::vector<std::pair<std::size_t, std::string>>;

Anchors anchors_of(const std::string& fixture_name,
                   const std::string& virtual_path) {
  Anchors anchors;
  for (const Finding& f : lint_content(virtual_path, fixture(fixture_name)))
    anchors.emplace_back(f.line, f.rule);
  return anchors;
}

TEST(Lint, LegacyRulesAreBitCompatible) {
  EXPECT_EQ(anchors_of("io_in_library.cpp", "src/core/bad.cpp"),
            (Anchors{{7, "io-in-library"}, {8, "io-in-library"}}));
  EXPECT_EQ(anchors_of("naked_new.cpp", "src/core/bad.cpp"),
            (Anchors{{9, "naked-new"}, {10, "naked-new"}, {11, "naked-new"}}));
  EXPECT_EQ(anchors_of("nondeterminism_clock.cpp", "src/core/bad.cpp"),
            (Anchors{{6, "nondeterminism-clock"}, {8, "nondeterminism-clock"}}));
  EXPECT_EQ(
      anchors_of("nondeterminism_random.cpp", "src/core/bad.cpp"),
      (Anchors{{6, "nondeterminism-random"}, {7, "nondeterminism-random"}}));
  EXPECT_EQ(anchors_of("parallel_capture.cpp", "src/core/bad.cpp"),
            (Anchors{{15, "parallel-capture"}}));
  EXPECT_EQ(anchors_of("unseeded_mt19937.cpp", "src/core/bad.cpp"),
            (Anchors{{12, "unseeded-mt19937"}, {13, "unseeded-mt19937"}}));
  EXPECT_EQ(anchors_of("missing_guard.hpp", "src/core/bad.hpp"),
            (Anchors{{1, "include-guard"}}));
  EXPECT_EQ(anchors_of("using_namespace_header.hpp", "src/core/bad.hpp"),
            (Anchors{{7, "using-namespace-header"}}));
  EXPECT_EQ(anchors_of("float_in_numeric.cpp", "src/linalg/bad.cpp"),
            (Anchors{{3, "float-in-numeric"}}));
  EXPECT_EQ(anchors_of("zero_skip_kernel.cpp", "src/linalg/bad.cpp"),
            (Anchors{{6, "zero-skip-kernel"}, {13, "zero-skip-kernel"}}));
}

// ---------------------------------------------------------------------------
// v2 semantic rules.

TEST(Lint, UncheckedPublicEntryFires) {
  LintOptions options;
  options.public_api = std::set<std::string>{"lookup", "scaled"};
  const auto findings = lint_content(
      "src/core/bad.cpp", fixture("unchecked_public_entry.cpp"), options);
  Anchors anchors;
  for (const Finding& f : findings)
    if (f.rule == "unchecked-public-entry") anchors.emplace_back(f.line, f.rule);
  EXPECT_EQ(anchors, (Anchors{{9, "unchecked-public-entry"},
                              {14, "unchecked-public-entry"}}));
}

TEST(Lint, UncheckedPublicEntryNegativesStayClean) {
  LintOptions options;
  options.public_api = std::set<std::string>{
      "checked", "guarded", "helper_checked", "total", "whole_value"};
  const auto findings = lint_content(
      "src/core/ok.cpp", fixture("unchecked_public_entry_ok.cpp"), options);
  EXPECT_FALSE(rules_fired(findings).count("unchecked-public-entry"));
}

TEST(Lint, UncheckedPublicEntryDisabledWithoutApiSet) {
  // No public_api in the options: the rule is off, like the inventory rule.
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("unchecked_public_entry.cpp"));
  EXPECT_FALSE(rules_fired(findings).count("unchecked-public-entry"));
}

TEST(Lint, UncheckedPublicEntryIgnoresNonApiFunctions) {
  LintOptions options;
  options.public_api = std::set<std::string>{"something_else"};
  const auto findings = lint_content(
      "src/core/bad.cpp", fixture("unchecked_public_entry.cpp"), options);
  EXPECT_FALSE(rules_fired(findings).count("unchecked-public-entry"));
}

TEST(Lint, TelemetryEntryPointsFireWhenUnchecked) {
  // Fixture modeled on the profiling surface (sampler series access,
  // profile-diff ratio math): risky parameter uses with no contract.
  LintOptions options;
  options.public_api = std::set<std::string>{"sample_window", "diff_ratio"};
  const auto findings = lint_content(
      "src/telemetry/bad.cpp", fixture("telemetry_entry.cpp"), options);
  Anchors anchors;
  for (const Finding& f : findings)
    if (f.rule == "unchecked-public-entry") anchors.emplace_back(f.line, f.rule);
  EXPECT_EQ(anchors, (Anchors{{10, "unchecked-public-entry"},
                              {14, "unchecked-public-entry"}}));
}

TEST(Lint, TelemetryEntryContractsStayClean) {
  // The contract-carrying twin mirrors how the real telemetry entry
  // points validate (VN2_CHECK, if-throw, whole-value member reads).
  LintOptions options;
  options.public_api = std::set<std::string>{
      "sample_window", "diff_ratio", "merge_counters"};
  const auto findings = lint_content(
      "src/telemetry/ok.cpp", fixture("telemetry_entry_ok.cpp"), options);
  EXPECT_FALSE(rules_fired(findings).count("unchecked-public-entry"));
}

TEST(Lint, LockInParallelBodyFires) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("lock_in_parallel.cpp"));
  Anchors anchors;
  for (const Finding& f : findings)
    if (f.rule == "lock-in-parallel-body") anchors.emplace_back(f.line, f.rule);
  EXPECT_EQ(anchors, (Anchors{{10, "lock-in-parallel-body"}}));
}

TEST(Lint, LockBeforeParallelRegionIsClean) {
  const auto findings =
      lint_content("src/core/ok.cpp", fixture("lock_in_parallel_ok.cpp"));
  EXPECT_FALSE(rules_fired(findings).count("lock-in-parallel-body"));
}

TEST(Lint, ParallelLayerIsExemptFromLockRule) {
  // core/parallel.* implements the pool; it owns the one sanctioned mutex.
  const auto findings =
      lint_content("src/core/parallel.cpp", fixture("lock_in_parallel.cpp"));
  EXPECT_FALSE(rules_fired(findings).count("lock-in-parallel-body"));
}

TEST(Lint, AllocInKernelFires) {
  const auto findings =
      lint_content("src/linalg/kernels.cpp", fixture("alloc_in_kernel.cpp"));
  Anchors anchors;
  for (const Finding& f : findings)
    if (f.rule == "alloc-in-kernel") anchors.emplace_back(f.line, f.rule);
  // vector decl, push_back growth, Matrix temporary — one each.
  EXPECT_EQ(anchors,
            (Anchors{{10, "alloc-in-kernel"},
                     {11, "alloc-in-kernel"},
                     {12, "alloc-in-kernel"}}));
}

TEST(Lint, AllocOutsideKernelLoopIsClean) {
  const auto findings = lint_content("src/linalg/kernels.cpp",
                                     fixture("alloc_in_kernel_ok.cpp"));
  EXPECT_FALSE(rules_fired(findings).count("alloc-in-kernel"));
}

TEST(Lint, AllocRuleOnlyAppliesToKernelsTu) {
  const auto findings =
      lint_content("src/core/other.cpp", fixture("alloc_in_kernel.cpp"));
  EXPECT_FALSE(rules_fired(findings).count("alloc-in-kernel"));
}

TEST(Lint, AllocRuleCoversSimdKernelsTu) {
  // The simd backend TU is held to the same allocation-free standard as
  // the scalar kernel TU.
  const auto findings = lint_content("src/linalg/kernels_simd.cpp",
                                     fixture("alloc_in_kernel.cpp"));
  Anchors anchors;
  for (const Finding& f : findings)
    if (f.rule == "alloc-in-kernel") anchors.emplace_back(f.line, f.rule);
  EXPECT_EQ(anchors,
            (Anchors{{10, "alloc-in-kernel"},
                     {11, "alloc-in-kernel"},
                     {12, "alloc-in-kernel"}}));
}

TEST(Lint, ThrowAcrossParallelFires) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("throw_across_parallel.cpp"));
  Anchors anchors;
  for (const Finding& f : findings)
    if (f.rule == "throw-across-parallel") anchors.emplace_back(f.line, f.rule);
  EXPECT_EQ(anchors, (Anchors{{10, "throw-across-parallel"}}));
}

TEST(Lint, ThrowBeforeParallelRegionIsClean) {
  const auto findings =
      lint_content("src/core/ok.cpp", fixture("throw_across_parallel_ok.cpp"));
  EXPECT_FALSE(rules_fired(findings).count("throw-across-parallel"));
}

TEST(Lint, NewRulesHonorSuppressionComments) {
  const std::string content =
      "void f(std::vector<double>& out) {\n"
      "  parallel_for(0, out.size(), 1, [&out](std::size_t i) {\n"
      "    throw 1;  // vn2-lint: allow(throw-across-parallel)\n"
      "    out[i] = 0.0;\n"
      "  });\n"
      "}\n";
  const auto findings = lint_content("src/core/bad.cpp", content);
  EXPECT_FALSE(rules_fired(findings).count("throw-across-parallel"));
}

TEST(Lint, PublicApiCollectionFindsHeaderDeclarations) {
  const auto api =
      collect_public_api(std::filesystem::path(VN2_LINT_REPO_ROOT));
  EXPECT_TRUE(api.count("parallel_for"));
  EXPECT_TRUE(api.count("encode"));
}

// ---------------------------------------------------------------------------
// SARIF interchange and the baseline ratchet.

std::vector<Finding> sample_findings() {
  return {
      {"src/core/bad.cpp", 7, "nondeterminism-random", "rand() in library"},
      {"src/linalg/bad.cpp", 3, "float-in-numeric", "float in kernel"},
  };
}

TEST(Sarif, RoundTripPreservesFindings) {
  const auto original = sample_findings();
  std::string error;
  const auto parsed = findings_from_sarif(to_sarif(original), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i].file, original[i].file);
    EXPECT_EQ((*parsed)[i].line, original[i].line);
    EXPECT_EQ((*parsed)[i].rule, original[i].rule);
    EXPECT_EQ((*parsed)[i].message, original[i].message);
  }
}

TEST(Sarif, EmitsSarif210Shape) {
  const std::string log = to_sarif(sample_findings());
  EXPECT_NE(log.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(log.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(log.find("\"name\": \"vn2-lint\""), std::string::npos);
  EXPECT_NE(log.find("\"ruleId\": \"nondeterminism-random\""),
            std::string::npos);
  EXPECT_NE(log.find("\"startLine\": 7"), std::string::npos);
  // The full rule catalogue ships in the driver metadata even when a rule
  // did not fire, so code-scanning UIs can show descriptions.
  for (const std::string& id : rule_ids())
    EXPECT_NE(log.find("\"id\": \"" + id + "\""), std::string::npos) << id;
}

TEST(Sarif, EscapesMessageText) {
  const std::vector<Finding> findings = {
      {"src/core/bad.cpp", 1, "naked-new", "a \"quoted\"\nmessage\twith\\"}};
  std::string error;
  const auto parsed = findings_from_sarif(to_sarif(findings), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->front().message, findings.front().message);
}

TEST(Sarif, StrictParserRejectsMalformedLogs) {
  std::string error;
  EXPECT_FALSE(findings_from_sarif("", &error).has_value());
  EXPECT_FALSE(findings_from_sarif("not json", &error).has_value());
  EXPECT_FALSE(findings_from_sarif("{}", &error).has_value());
  EXPECT_FALSE(
      findings_from_sarif(R"({"version": "1.0.0", "runs": []})", &error)
          .has_value());
  // Truncated mid-structure.
  const std::string log = to_sarif(sample_findings());
  EXPECT_FALSE(
      findings_from_sarif(log.substr(0, log.size() / 2), &error).has_value());
}

TEST(Baseline, PartitionsActiveSuppressedAndStale) {
  const auto current = sample_findings();
  const std::vector<Finding> baseline = {
      // Matches current[0] by (rule, file, line); message may differ.
      {"src/core/bad.cpp", 7, "nondeterminism-random", "older wording"},
      // Matches nothing any more: stale, must be removed.
      {"src/core/gone.cpp", 9, "naked-new", "fixed long ago"},
  };
  const BaselineDiff diff = apply_baseline(current, baseline);
  ASSERT_EQ(diff.suppressed.size(), 1u);
  EXPECT_EQ(diff.suppressed[0].file, "src/core/bad.cpp");
  ASSERT_EQ(diff.active.size(), 1u);
  EXPECT_EQ(diff.active[0].rule, "float-in-numeric");
  ASSERT_EQ(diff.stale.size(), 1u);
  EXPECT_EQ(diff.stale[0].file, "src/core/gone.cpp");
}

TEST(Baseline, EntriesConsumeAtMostOneFinding) {
  // Two identical findings, one baseline entry: one suppressed, one active.
  const std::vector<Finding> current = {
      {"src/core/bad.cpp", 7, "naked-new", "first"},
      {"src/core/bad.cpp", 7, "naked-new", "second"},
  };
  const std::vector<Finding> baseline = {
      {"src/core/bad.cpp", 7, "naked-new", "grandfathered"}};
  const BaselineDiff diff = apply_baseline(current, baseline);
  EXPECT_EQ(diff.suppressed.size(), 1u);
  EXPECT_EQ(diff.active.size(), 1u);
  EXPECT_TRUE(diff.stale.empty());
}

TEST(Baseline, RepoBaselineIsEmpty) {
  // The checked-in baseline's target state: no grandfathered findings. If
  // a finding must be waived, prefer an inline justified allow() comment;
  // the baseline exists to ratchet legacy debt down, not to grow.
  const auto path =
      std::filesystem::path(VN2_LINT_REPO_ROOT) / "lint_baseline.sarif";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto parsed = findings_from_sarif(buffer.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->empty());
}

// ---------------------------------------------------------------------------
// lint_main exit codes: 0 clean, 1 findings or stale baseline, 2 usage/IO.

int run_lint_main(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"vn2_lint"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  return lint_main(static_cast<int>(argv.size()), argv.data());
}

class LintMainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) /
            ("vn2_lint_exit_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) /* stable per run */ +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::create_directories(root_ / "src" / "core");
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
  void write(const std::filesystem::path& relative,
             const std::string& content) {
    const auto path = root_ / relative;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << content;
  }
  std::filesystem::path root_;
};

TEST_F(LintMainTest, CleanTreeExitsZero) {
  write("src/core/ok.cpp", "int answer() { return 42; }\n");
  EXPECT_EQ(run_lint_main({"--root", root_.string()}), 0);
}

TEST_F(LintMainTest, FindingsExitOne) {
  write("src/core/bad.cpp", "int f() { return rand(); }\n");
  EXPECT_EQ(run_lint_main({"--root", root_.string()}), 1);
}

TEST_F(LintMainTest, UnknownOptionExitsTwo) {
  EXPECT_EQ(run_lint_main({"--bogus"}), 2);
}

TEST_F(LintMainTest, MissingRootExitsTwo) {
  EXPECT_EQ(run_lint_main(
                {"--root", (root_ / "does_not_exist").string()}),
            2);
}

TEST_F(LintMainTest, MissingBaselineFileExitsTwo) {
  write("src/core/ok.cpp", "int answer() { return 42; }\n");
  EXPECT_EQ(run_lint_main({"--root", root_.string(), "--baseline",
                           (root_ / "nope.sarif").string()}),
            2);
}

TEST_F(LintMainTest, InvalidBaselineExitsTwo) {
  write("src/core/ok.cpp", "int answer() { return 42; }\n");
  write("baseline.sarif", "this is not SARIF");
  EXPECT_EQ(run_lint_main({"--root", root_.string(), "--baseline",
                           (root_ / "baseline.sarif").string()}),
            2);
}

TEST_F(LintMainTest, BaselineGrandfathersFindingsToExitZero) {
  write("src/core/bad.cpp", "int f() { return rand(); }\n");
  const std::vector<Finding> entry = {{"src/core/bad.cpp", 1,
                                       "nondeterminism-random",
                                       "grandfathered"}};
  write("baseline.sarif", to_sarif(entry));
  EXPECT_EQ(run_lint_main({"--root", root_.string(), "--baseline",
                           (root_ / "baseline.sarif").string()}),
            0);
}

TEST_F(LintMainTest, StaleBaselineEntryExitsOne) {
  // The ratchet: a fixed finding still listed in the baseline is an error,
  // so the baseline can only ever shrink.
  write("src/core/ok.cpp", "int answer() { return 42; }\n");
  const std::vector<Finding> entry = {{"src/core/bad.cpp", 1,
                                       "nondeterminism-random",
                                       "fixed but still listed"}};
  write("baseline.sarif", to_sarif(entry));
  EXPECT_EQ(run_lint_main({"--root", root_.string(), "--baseline",
                           (root_ / "baseline.sarif").string()}),
            1);
}

TEST_F(LintMainTest, SarifOutputRoundTripsThroughDisk) {
  write("src/core/bad.cpp", "int f() { return rand(); }\n");
  const auto out = root_ / "out.sarif";
  EXPECT_EQ(run_lint_main(
                {"--root", root_.string(), "--sarif", out.string()}),
            1);
  std::ifstream in(out, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto parsed = findings_from_sarif(buffer.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->front().file, "src/core/bad.cpp");
  EXPECT_EQ(parsed->front().rule, "nondeterminism-random");
}

TEST_F(LintMainTest, ToolsDirectoryIsLinted) {
  // The linter lints its own home: tools/ is part of the default walk, so
  // vn2_lint.cpp and tools/lint/ hold themselves to the same rules.
  write("tools/helper.cpp", "int* leak() { return new int(7); }\n");
  EXPECT_EQ(run_lint_main({"--root", root_.string()}), 1);
}

TEST(Lint, RepoTreeIsClean) {
  // The gate CI enforces: the real tree lints clean. VN2_LINT_REPO_ROOT is
  // the source dir at configure time.
  const auto findings =
      lint_tree(std::filesystem::path(VN2_LINT_REPO_ROOT));
  for (const Finding& f : findings)
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
}

}  // namespace
}  // namespace vn2::lint
