// Tests for the vn2-lint static checker: every rule fires on its minimal
// violating fixture, suppression comments silence findings, and the
// near-miss fixture stays clean. Fixtures live in tests/lint_fixtures/
// (found via VN2_LINT_FIXTURE_DIR, set by tests/CMakeLists.txt); they are
// linted, never compiled.
#include "vn2_lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace vn2::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(VN2_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> rules_fired(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

bool fires_on(const std::string& fixture_name,
              const std::string& virtual_path, const std::string& rule) {
  const auto findings = lint_content(virtual_path, fixture(fixture_name));
  return rules_fired(findings).count(rule) > 0;
}

TEST(Lint, NondeterminismRandomFires) {
  EXPECT_TRUE(fires_on("nondeterminism_random.cpp", "src/core/bad.cpp",
                       "nondeterminism-random"));
}

TEST(Lint, RandomIsAllowedInLinalgRandom) {
  EXPECT_FALSE(fires_on("nondeterminism_random.cpp", "src/linalg/random.cpp",
                        "nondeterminism-random"));
}

TEST(Lint, NondeterminismClockFires) {
  EXPECT_TRUE(fires_on("nondeterminism_clock.cpp", "src/core/bad.cpp",
                       "nondeterminism-clock"));
}

TEST(Lint, ClockIsAllowedInSimulator) {
  EXPECT_FALSE(fires_on("nondeterminism_clock.cpp", "src/wsn/simulator.cpp",
                        "nondeterminism-clock"));
}

TEST(Lint, ClockIsAllowedInTelemetry) {
  EXPECT_FALSE(fires_on("nondeterminism_clock.cpp",
                        "src/telemetry/telemetry.cpp",
                        "nondeterminism-clock"));
}

TEST(Lint, FloatInNumericFires) {
  EXPECT_TRUE(fires_on("float_in_numeric.cpp", "src/linalg/bad.cpp",
                       "float-in-numeric"));
  EXPECT_TRUE(fires_on("float_in_numeric.cpp", "src/nmf/bad.cpp",
                       "float-in-numeric"));
}

TEST(Lint, FloatIsAllowedOutsideNumericKernels) {
  EXPECT_FALSE(fires_on("float_in_numeric.cpp", "src/wsn/radio.cpp",
                        "float-in-numeric"));
}

TEST(Lint, IoInLibraryFires) {
  EXPECT_TRUE(
      fires_on("io_in_library.cpp", "src/core/bad.cpp", "io-in-library"));
}

TEST(Lint, IoIsAllowedInToolsAndTraceLayer) {
  EXPECT_FALSE(
      fires_on("io_in_library.cpp", "tools/some_cli.cpp", "io-in-library"));
  EXPECT_FALSE(
      fires_on("io_in_library.cpp", "src/trace/dump.cpp", "io-in-library"));
}

TEST(Lint, UsingNamespaceHeaderFires) {
  EXPECT_TRUE(fires_on("using_namespace_header.hpp", "src/core/bad.hpp",
                       "using-namespace-header"));
}

TEST(Lint, UsingNamespaceIsAllowedInSourceFiles) {
  EXPECT_FALSE(fires_on("using_namespace_header.hpp", "src/core/bad.cpp",
                        "using-namespace-header"));
}

TEST(Lint, NakedNewFires) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("naked_new.cpp"));
  std::size_t naked = 0;
  for (const Finding& f : findings)
    if (f.rule == "naked-new") ++naked;
  // new int(7), delete p, new int[4] — but NOT the two `= delete` lines.
  EXPECT_EQ(naked, 3u);
}

TEST(Lint, IncludeGuardFires) {
  EXPECT_TRUE(
      fires_on("missing_guard.hpp", "src/core/bad.hpp", "include-guard"));
}

TEST(Lint, PragmaOnceSatisfiesGuardRule) {
  EXPECT_FALSE(fires_on("using_namespace_header.hpp", "src/core/bad.hpp",
                        "include-guard"));
}

TEST(Lint, ParallelCaptureFires) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("parallel_capture.cpp"));
  std::vector<Finding> capture_findings;
  for (const Finding& f : findings)
    if (f.rule == "parallel-capture") capture_findings.push_back(f);
  // Exactly the write to `total`; the index-owned out[i] write is fine.
  ASSERT_EQ(capture_findings.size(), 1u);
  EXPECT_NE(capture_findings[0].message.find("'total'"), std::string::npos);
}

TEST(Lint, UnseededMt19937Fires) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("unseeded_mt19937.cpp"));
  std::size_t unseeded = 0;
  for (const Finding& f : findings)
    if (f.rule == "unseeded-mt19937") ++unseeded;
  // `bad;` and `worse{}` — but NOT the seeded engines or the `member_rng_`
  // member (trailing underscore: seeded in the constructor initializer).
  EXPECT_EQ(unseeded, 2u);
}

TEST(Lint, UnseededMt19937AllowedInRandomHome) {
  EXPECT_FALSE(fires_on("unseeded_mt19937.cpp", "src/linalg/random.cpp",
                        "unseeded-mt19937"));
}

TEST(Lint, ZeroSkipKernelFires) {
  const auto findings =
      lint_content("src/linalg/bad.cpp", fixture("zero_skip_kernel.cpp"));
  std::size_t skips = 0;
  for (const Finding& f : findings)
    if (f.rule == "zero-skip-kernel") ++skips;
  // The `== 0.0) continue` and `== 0) continue` skips — but NOT the
  // zero-count, the break, or the inequality guard.
  EXPECT_EQ(skips, 2u);
}

TEST(Lint, ZeroSkipAllowedOutsideNumericKernels) {
  EXPECT_FALSE(fires_on("zero_skip_kernel.cpp", "src/wsn/radio.cpp",
                        "zero-skip-kernel"));
}

TEST(Lint, ParallelInventoryFiresWhenArmed) {
  LintOptions options;
  options.threading_inventory = std::set<std::string>{"src/core/listed.cpp"};
  const auto findings = lint_content(
      "src/core/unlisted.cpp", fixture("parallel_inventory.cpp"), options);
  EXPECT_TRUE(rules_fired(findings).count("parallel-inventory"));
}

TEST(Lint, ParallelInventoryListedFileIsClean) {
  LintOptions options;
  options.threading_inventory = std::set<std::string>{"src/core/listed.cpp"};
  const auto findings = lint_content(
      "src/core/listed.cpp", fixture("parallel_inventory.cpp"), options);
  EXPECT_FALSE(rules_fired(findings).count("parallel-inventory"));
}

TEST(Lint, ParallelInventoryDisabledWithoutInventory) {
  EXPECT_FALSE(fires_on("parallel_inventory.cpp", "src/core/unlisted.cpp",
                        "parallel-inventory"));
}

TEST(Lint, ParallelLayerIsExemptFromInventory) {
  LintOptions options;
  options.threading_inventory = std::set<std::string>{};
  const auto findings = lint_content(
      "src/core/parallel.cpp", fixture("parallel_inventory.cpp"), options);
  EXPECT_FALSE(rules_fired(findings).count("parallel-inventory"));
}

TEST(Lint, ThreadingInventoryParsesFromDesignDoc) {
  const auto inventory = parse_threading_inventory(
      std::filesystem::path(VN2_LINT_REPO_ROOT) / "DESIGN.md");
  ASSERT_TRUE(inventory.has_value());
  EXPECT_TRUE(inventory->count("src/core/inference.cpp"));
  EXPECT_TRUE(inventory->count("src/linalg/matrix.cpp"));
}

TEST(Lint, SuppressionCommentsSilenceFindings) {
  const auto findings =
      lint_content("src/core/bad.cpp", fixture("suppressed.cpp"));
  EXPECT_TRUE(findings.empty())
      << findings.front().rule << " at line " << findings.front().line;
}

TEST(Lint, SuppressionIsRuleSpecific) {
  // An allow() for a different rule must not silence the finding.
  const std::string content =
      "int f() {\n"
      "  return rand();  // vn2-lint: allow(io-in-library)\n"
      "}\n";
  const auto findings = lint_content("src/core/bad.cpp", content);
  EXPECT_TRUE(rules_fired(findings).count("nondeterminism-random"));
}

TEST(Lint, NearMissesStayClean) {
  const auto findings = lint_content("src/core/ok.cpp", fixture("clean.cpp"));
  EXPECT_TRUE(findings.empty())
      << findings.front().rule << " at line " << findings.front().line;
}

TEST(Lint, CommentsAndStringsAreNotCode) {
  const std::string content =
      "// rand() std::cout time(nullptr)\n"
      "/* std::random_device */\n"
      "const char* s = \"new int; delete p; std::cerr\";\n";
  EXPECT_TRUE(lint_content("src/core/ok.cpp", content).empty());
}

TEST(Lint, FindingsAreLineAnchoredAndSorted) {
  const std::string content =
      "int a() { return rand(); }\n"
      "int b() { return rand(); }\n";
  const auto findings = lint_content("src/core/bad.cpp", content);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(Lint, RuleCatalogueIsStable) {
  const auto ids = rule_ids();
  const std::set<std::string> expected = {
      "nondeterminism-random", "nondeterminism-clock",   "float-in-numeric",
      "io-in-library",         "using-namespace-header", "naked-new",
      "zero-skip-kernel",      "unseeded-mt19937",       "include-guard",
      "parallel-capture",      "parallel-inventory"};
  EXPECT_EQ(std::set<std::string>(ids.begin(), ids.end()), expected);
}

TEST(Lint, RepoTreeIsClean) {
  // The gate CI enforces: the real tree lints clean. VN2_LINT_REPO_ROOT is
  // the source dir at configure time.
  const auto findings =
      lint_tree(std::filesystem::path(VN2_LINT_REPO_ROOT));
  for (const Finding& f : findings)
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
}

}  // namespace
}  // namespace vn2::lint
