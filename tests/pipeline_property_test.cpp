// Cross-cutting pipeline invariants, swept over random scenarios: whatever
// the seed and fault mix, the full simulate→trace→train→diagnose chain must
// uphold its structural guarantees.
#include <gtest/gtest.h>

#include "core/vn2.hpp"
#include "scenario/scenario.hpp"
#include "trace/trace.hpp"

namespace vn2 {
namespace {

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, EndToEndInvariants) {
  const std::uint64_t seed = GetParam();

  scenario::ScenarioBundle bundle = scenario::tiny(12, 5400.0, seed);
  // A seed-dependent fault cocktail.
  wsn::FaultCommand loop;
  loop.type = wsn::FaultCommand::Type::kForcedLoop;
  loop.node = static_cast<wsn::NodeId>(2 + seed % 9);
  loop.start = 1500.0;
  loop.end = 2400.0;
  bundle.faults.push_back(loop);
  wsn::FaultCommand reboot;
  reboot.type = wsn::FaultCommand::Type::kNodeReboot;
  reboot.node = static_cast<wsn::NodeId>(1 + (seed * 7) % 10);
  reboot.start = 3000.0;
  bundle.faults.push_back(reboot);

  wsn::Simulator sim = bundle.make_simulator();
  const wsn::SimulationResult result = sim.run();

  // Simulation invariants.
  ASSERT_GT(result.sink_log.size(), 50u);
  EXPECT_LE(trace::overall_prr(result), 1.01);
  for (const wsn::SinkPacketRecord& record : result.sink_log)
    EXPECT_NE(record.origin, wsn::kSinkId);

  const trace::Trace log = trace::build_trace(result);
  auto states = trace::extract_states(log);
  std::erase_if(states,
                [](const trace::StateVector& s) { return s.time < 600.0; });
  ASSERT_GT(states.size(), 100u);

  core::Vn2Tool::Options options;
  // Small rank and a lenient threshold: some seeds produce very few strong
  // exceptions, and the invariants — not the model quality — are on trial.
  options.training.rank = 4;
  options.training.exception_threshold = 0.2;
  options.training.nmf.max_iterations = 150;
  const core::Vn2Tool tool =
      core::Vn2Tool::train_from_states(states, options);

  // Training invariants.
  const core::TrainingReport& report = tool.report();
  EXPECT_TRUE(linalg::is_nonnegative(tool.model().psi()));
  EXPECT_GT(report.exception_states, 0u);
  EXPECT_LT(report.exception_states, report.training_states);
  ASSERT_GE(report.nmf.objective_history.size(), 2u);
  for (std::size_t i = 1; i < report.nmf.objective_history.size(); ++i)
    EXPECT_LE(report.nmf.objective_history[i],
              report.nmf.objective_history[i - 1] +
                  1e-9 * (1.0 + report.nmf.objective_history[i - 1]));

  // Inference invariants over a sample of states.
  std::size_t exceptions = 0;
  for (std::size_t i = 0; i < states.size(); i += 7) {
    const core::Diagnosis d = tool.diagnose_state(states[i].delta);
    for (std::size_t r = 0; r < d.weights.size(); ++r)
      EXPECT_GE(d.weights[r], 0.0);
    EXPECT_GE(d.residual, 0.0);
    if (d.is_exception) ++exceptions;
    for (std::size_t k = 1; k < d.ranked.size(); ++k)
      EXPECT_GE(d.ranked[k - 1].strength, d.ranked[k].strength);
  }
  // Exceptions exist but are the minority of the sampled states.
  EXPECT_GT(exceptions, 0u);
  EXPECT_LT(exceptions, states.size() / 7 / 2);

  // Determinism: the same seed reproduces the same model.
  scenario::ScenarioBundle again = scenario::tiny(12, 5400.0, seed);
  again.faults = bundle.faults;
  const wsn::SimulationResult result2 = again.make_simulator().run();
  EXPECT_EQ(result2.sink_log.size(), result.sink_log.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11, 23, 57, 101, 999));

}  // namespace
}  // namespace vn2
