#include "wsn/radio.hpp"

#include <gtest/gtest.h>

namespace vn2::wsn {
namespace {

class RadioTest : public ::testing::Test {
 protected:
  Environment env_;
  RadioModel radio_{RadioParams{}, &env_, 42};
};

TEST_F(RadioTest, RssiDecreasesWithDistance) {
  const Position origin{0, 0};
  double previous = 1e9;
  for (double d : {1.0, 5.0, 10.0, 20.0, 40.0}) {
    // Same link endpoints id-wise so shadowing is constant: vary only the
    // position of node 2.
    const double rssi = radio_.rssi_dbm(1, origin, 2, {d, 0.0});
    EXPECT_LT(rssi, previous);
    previous = rssi;
  }
}

TEST_F(RadioTest, ShadowingIsSymmetricAndStable) {
  const Position a{0, 0}, b{15, 0};
  const double ab = radio_.rssi_dbm(1, a, 2, b);
  const double ba = radio_.rssi_dbm(2, b, 1, a);
  EXPECT_DOUBLE_EQ(ab, ba);  // Unordered link key → symmetric fade.
  EXPECT_DOUBLE_EQ(ab, radio_.rssi_dbm(1, a, 2, b));  // Stable over calls.
}

TEST_F(RadioTest, DifferentLinksDifferentShadowing) {
  const Position a{0, 0}, b{15, 0};
  const double l12 = radio_.rssi_dbm(1, a, 2, b);
  const double l13 = radio_.rssi_dbm(1, a, 3, b);
  EXPECT_NE(l12, l13);
}

TEST_F(RadioTest, PrrMonotoneInDistance) {
  const Position origin{0, 0};
  double previous = 1.1;
  for (double d : {2.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    const double prr = radio_.prr(1, origin, 2, {d, 0.0}, 0.0);
    EXPECT_LE(prr, previous + 1e-12);
    EXPECT_GE(prr, 0.0);
    EXPECT_LE(prr, 1.0);
    previous = prr;
  }
}

TEST_F(RadioTest, CloseLinkIsNearPerfect) {
  EXPECT_GT(radio_.prr(1, {0, 0}, 2, {2.0, 0.0}, 0.0), 0.95);
}

TEST_F(RadioTest, VeryFarLinkIsDead) {
  EXPECT_LT(radio_.prr(1, {0, 0}, 2, {500.0, 0.0}, 0.0), 0.05);
  EXPECT_FALSE(radio_.in_range(1, {0, 0}, 2, {500.0, 0.0}));
  EXPECT_TRUE(radio_.in_range(1, {0, 0}, 2, {5.0, 0.0}));
}

TEST_F(RadioTest, NoiseRiseDegradesPrr) {
  const Position rx{10.0, 0.0};
  const double before = radio_.prr(1, {0, 0}, 2, rx, 50.0);
  Disturbance d;
  d.kind = Disturbance::Kind::kNoiseRise;
  d.center = rx;
  d.radius_m = 30.0;
  d.start = 100.0;
  d.end = 200.0;
  d.magnitude = 15.0;
  env_.add_disturbance(d);
  const double during = radio_.prr(1, {0, 0}, 2, rx, 150.0);
  const double after = radio_.prr(1, {0, 0}, 2, rx, 250.0);
  EXPECT_LT(during, before);
  EXPECT_NEAR(after, before, 1e-12);
}

TEST_F(RadioTest, LinkDegradationWindowed) {
  const Position rx{8.0, 0.0};
  const double base = radio_.prr(1, {0, 0}, 2, rx, 0.0);
  radio_.degrade_link(1, 2, 20.0, 100.0, 200.0);
  EXPECT_LT(radio_.prr(1, {0, 0}, 2, rx, 150.0), base);
  EXPECT_NEAR(radio_.prr(1, {0, 0}, 2, rx, 300.0), base, 1e-12);
  // Degradation applies to the unordered link — both directions.
  EXPECT_LT(radio_.prr(2, rx, 1, {0, 0}, 150.0), 1.0);
  radio_.clear_degradations();
  EXPECT_NEAR(radio_.prr(1, {0, 0}, 2, rx, 150.0), base, 1e-12);
}

TEST_F(RadioTest, StackedDegradationsAccumulate) {
  const Position rx{8.0, 0.0};
  radio_.degrade_link(1, 2, 10.0, 0.0, 100.0);
  radio_.degrade_link(1, 2, 10.0, 0.0, 100.0);
  const double doubled = radio_.prr(1, {0, 0}, 2, rx, 50.0);
  radio_.clear_degradations();
  radio_.degrade_link(1, 2, 20.0, 0.0, 100.0);
  const double single20 = radio_.prr(1, {0, 0}, 2, rx, 50.0);
  EXPECT_NEAR(doubled, single20, 1e-12);
}

TEST(RadioSeeds, DifferentSeedsDifferentFades) {
  Environment env;
  RadioModel r1(RadioParams{}, &env, 1);
  RadioModel r2(RadioParams{}, &env, 2);
  EXPECT_NE(r1.rssi_dbm(1, {0, 0}, 2, {10, 0}),
            r2.rssi_dbm(1, {0, 0}, 2, {10, 0}));
}

}  // namespace
}  // namespace vn2::wsn
