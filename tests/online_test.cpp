#include "core/online.hpp"

#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "test_helpers.hpp"

namespace vn2::core {
namespace {

std::vector<trace::StateVector> synthetic_states(std::size_t n,
                                                 std::uint64_t seed) {
  auto synthetic =
      vn2::testing::make_synthetic(vn2::testing::standard_causes(), n, seed);
  std::vector<trace::StateVector> states(n);
  for (std::size_t i = 0; i < n; ++i) {
    states[i].node = 1;
    states[i].time = static_cast<double>(i) * 60.0;
    states[i].delta = synthetic.states.row_vector(i);
  }
  return states;
}

OnlineTrainerOptions small_options() {
  OnlineTrainerOptions options;
  options.window_capacity = 400;
  options.retrain_every = 100;
  options.min_states = 150;
  options.tool.training.rank = 5;
  options.tool.training.nmf.max_iterations = 100;
  return options;
}

TEST(OnlineTrainer, RejectsZeroCapacity) {
  OnlineTrainerOptions options;
  options.window_capacity = 0;
  EXPECT_THROW(OnlineTrainer trainer(options), std::invalid_argument);
}

TEST(OnlineTrainer, NotReadyUntilMinStates) {
  OnlineTrainer trainer(small_options());
  EXPECT_FALSE(trainer.ready());
  EXPECT_THROW((void)trainer.tool(), std::logic_error);
  const auto states = synthetic_states(149, 1);
  EXPECT_EQ(trainer.push(states), 0u);
  EXPECT_FALSE(trainer.ready());
}

TEST(OnlineTrainer, FirstTrainingAtMinStates) {
  OnlineTrainer trainer(small_options());
  const auto states = synthetic_states(150, 2);
  EXPECT_EQ(trainer.push(states), 1u);
  EXPECT_TRUE(trainer.ready());
  EXPECT_EQ(trainer.retrain_count(), 1u);
  EXPECT_EQ(trainer.tool().model().rank(), 5u);
}

TEST(OnlineTrainer, RetrainsOnCadence) {
  OnlineTrainer trainer(small_options());
  const auto states = synthetic_states(450, 3);
  const std::size_t retrains = trainer.push(states);
  // First at 150, then every 100: 250, 350, 450 → 4 total.
  EXPECT_EQ(retrains, 4u);
  EXPECT_EQ(trainer.retrain_count(), 4u);
}

TEST(OnlineTrainer, WindowIsBounded) {
  OnlineTrainer trainer(small_options());
  trainer.push(synthetic_states(1000, 4));
  EXPECT_EQ(trainer.window_size(), 400u);
}

TEST(OnlineTrainer, ModelTracksDrift) {
  // Phase 1: metrics drift slowly around one distribution. Phase 2: the
  // "normal" shifts (e.g. seasonal temperature swing). After retraining on
  // the new window, a typical phase-2 state must no longer look like an
  // exception.
  OnlineTrainerOptions options = small_options();
  options.window_capacity = 300;
  options.retrain_every = 300;
  OnlineTrainer trainer(options);

  auto phase1 = synthetic_states(300, 5);
  trainer.push(phase1);
  ASSERT_TRUE(trainer.ready());

  auto phase2 = synthetic_states(300, 6);
  for (auto& state : phase2)
    for (std::size_t m = 0; m < 6; ++m) state.delta[m] += 25.0;  // Shifted C1.

  // Against the stale model, shifted states look anomalous.
  const double stale_score =
      trainer.tool().model().exception_score(phase2.front().delta);

  trainer.push(phase2);  // Window now holds mostly phase-2 states.
  trainer.retrain();
  const double fresh_score =
      trainer.tool().model().exception_score(phase2.front().delta);
  EXPECT_LT(fresh_score, 0.5 * stale_score);
}

TEST(OnlineTrainer, ForcedRetrainRequiresMinStates) {
  OnlineTrainer trainer(small_options());
  trainer.push(synthetic_states(100, 7));
  EXPECT_FALSE(trainer.retrain());
  trainer.push(synthetic_states(100, 8));
  EXPECT_TRUE(trainer.retrain());
}

}  // namespace
}  // namespace vn2::core
