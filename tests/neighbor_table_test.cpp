#include "wsn/neighbor_table.hpp"

#include <gtest/gtest.h>

namespace vn2::wsn {
namespace {

TEST(NeighborTable, InsertAndFind) {
  NeighborTable table;
  EXPECT_TRUE(table.on_beacon(5, -70.0, 0, 2.0, 10.0));
  ASSERT_NE(table.find(5), nullptr);
  EXPECT_EQ(table.find(5)->id, 5);
  EXPECT_DOUBLE_EQ(table.find(5)->rssi_dbm, -70.0);
  EXPECT_EQ(table.occupancy(), 1u);
  EXPECT_EQ(table.find(99), nullptr);
}

TEST(NeighborTable, RssiEwmaConverges) {
  NeighborTable table;
  table.on_beacon(1, -80.0, 0, 1.0, 0.0);
  for (std::uint32_t s = 1; s < 50; ++s)
    table.on_beacon(1, -60.0, s, 1.0, static_cast<double>(s));
  EXPECT_NEAR(table.find(1)->rssi_dbm, -60.0, 0.5);
}

TEST(NeighborTable, BeaconGapLowersInboundPrr) {
  NeighborTable good, bad;
  for (std::uint32_t s = 0; s < 30; ++s) {
    good.on_beacon(1, -70.0, s, 1.0, s);
    bad.on_beacon(1, -70.0, s * 5, 1.0, s);  // 4 of 5 beacons missed.
  }
  EXPECT_GT(good.find(1)->prr_in, 0.85);
  EXPECT_LT(bad.find(1)->prr_in, 0.5);
  EXPECT_GT(bad.find(1)->link_etx(), good.find(1)->link_etx());
}

TEST(NeighborTable, UnicastResultDrivesOutboundPrr) {
  NeighborTable table;
  table.on_beacon(2, -65.0, 0, 1.0, 0.0);
  EXPECT_FALSE(table.find(2)->prr_out_known);
  for (int i = 0; i < 20; ++i) table.on_unicast_result(2, false);
  EXPECT_TRUE(table.find(2)->prr_out_known);
  EXPECT_LT(table.find(2)->prr_out, 0.1);
  for (int i = 0; i < 40; ++i) table.on_unicast_result(2, true);
  EXPECT_GT(table.find(2)->prr_out, 0.85);
}

TEST(NeighborTable, UnicastToUnknownNeighborIsIgnored) {
  NeighborTable table;
  table.on_unicast_result(7, true);  // Must not crash or insert.
  EXPECT_EQ(table.occupancy(), 0u);
}

TEST(NeighborTable, LinkEtxBounds) {
  NeighborEntry entry;
  entry.id = 1;
  entry.prr_in = 1.0;
  entry.prr_out = 1.0;
  entry.prr_out_known = true;
  EXPECT_DOUBLE_EQ(entry.link_etx(), 1.0);
  entry.prr_in = 1e-9;
  EXPECT_DOUBLE_EQ(entry.link_etx(), NeighborTable::kEtxCap);
}

TEST(NeighborTable, TableFullAdmissionIsByRouteQuality) {
  NeighborTable table;
  // Fill with entries of increasing advertised path ETX (1..10); the fresh
  // prior gives each a link ETX of 4, so route costs are 5..14.
  for (NodeId id = 1; id <= NeighborTable::kSlots; ++id)
    table.on_beacon(id, -70.0, 0, static_cast<double>(id), 0.0);
  EXPECT_EQ(table.occupancy(), NeighborTable::kSlots);
  // A newcomer whose route (20 + 4) is worse than every entry is refused —
  // even at a much stronger RSSI.
  EXPECT_FALSE(table.on_beacon(100, -50.0, 0, 20.0, 1.0));
  // A newcomer with an excellent route evicts the worst-route entry
  // (id=10, route 14), not the weakest-RSSI one.
  EXPECT_TRUE(table.on_beacon(101, -80.0, 0, 0.5, 2.0));
  EXPECT_EQ(table.find(10), nullptr);
  ASSERT_NE(table.find(101), nullptr);
  EXPECT_NE(table.find(1), nullptr);
}

TEST(NeighborTable, TableFullNeverEvictsCurrentParent) {
  NeighborTable table;
  for (NodeId id = 1; id <= NeighborTable::kSlots; ++id)
    table.on_beacon(id, -70.0, 0, static_cast<double>(id), 0.0);
  // Entry 10 has the worst route but is the current parent: the next-worst
  // (id=9) must be evicted instead.
  EXPECT_TRUE(table.on_beacon(101, -80.0, 0, 0.5, 2.0, /*current_parent=*/10));
  EXPECT_NE(table.find(10), nullptr);
  EXPECT_EQ(table.find(9), nullptr);
}

TEST(NeighborTable, SlotStability) {
  NeighborTable table;
  table.on_beacon(3, -70.0, 0, 1.0, 0.0);
  table.on_beacon(8, -71.0, 0, 1.0, 0.0);
  // Node 3 occupies slot 0; further beacons must not move it.
  ASSERT_EQ(table.slots()[0].id, 3);
  ASSERT_EQ(table.slots()[1].id, 8);
  table.on_beacon(3, -69.0, 1, 1.0, 1.0);
  EXPECT_EQ(table.slots()[0].id, 3);
  // Evicting 3 frees slot 0; a new node reuses it.
  table.evict(3);
  table.on_beacon(12, -60.0, 0, 1.0, 2.0);
  EXPECT_EQ(table.slots()[0].id, 12);
  EXPECT_EQ(table.slots()[1].id, 8);
}

TEST(NeighborTable, BestParentMinimizesRouteEtx) {
  NeighborTable table;
  table.on_beacon(1, -60.0, 0, 5.0, 0.0);  // path 5 + link
  table.on_beacon(2, -60.0, 0, 1.0, 0.0);  // path 1 + link → best
  table.on_beacon(3, -60.0, 0, 9.0, 0.0);
  auto best = table.best_parent();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 2);
  // Excluding the best yields the runner-up.
  auto second = table.best_parent(2);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 1);
}

TEST(NeighborTable, BestParentEmptyTable) {
  NeighborTable table;
  EXPECT_FALSE(table.best_parent().has_value());
}

TEST(NeighborTable, BestParentRejectsUnusableRoutes) {
  NeighborTable table;
  // Advertised path at the ETX cap = no route.
  table.on_beacon(1, -60.0, 0, NeighborTable::kEtxCap, 0.0);
  EXPECT_FALSE(table.best_parent().has_value());
}

TEST(NeighborTable, ExpireDropsStaleEntries) {
  NeighborTable table;
  table.on_beacon(1, -60.0, 0, 1.0, 0.0);
  table.on_beacon(2, -60.0, 0, 1.0, 90.0);
  EXPECT_EQ(table.expire(100.0, 50.0), 1u);
  EXPECT_EQ(table.find(1), nullptr);
  EXPECT_NE(table.find(2), nullptr);
}

TEST(NeighborTable, ClearEmptiesEverything) {
  NeighborTable table;
  table.on_beacon(1, -60.0, 0, 1.0, 0.0);
  table.clear();
  EXPECT_EQ(table.occupancy(), 0u);
  EXPECT_FALSE(table.best_parent().has_value());
}

TEST(NeighborTable, BeaconSeqWrapTreatedAsContiguous) {
  NeighborTable table;
  table.on_beacon(1, -60.0, 100, 1.0, 0.0);
  // Reboot: sequence restarts from 0. Must not torch prr_in.
  table.on_beacon(1, -60.0, 0, 1.0, 1.0);
  EXPECT_GT(table.find(1)->prr_in, 0.4);
}

}  // namespace
}  // namespace vn2::wsn
