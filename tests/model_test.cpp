#include "core/model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "linalg/random.hpp"
#include "test_helpers.hpp"

namespace vn2::core {
namespace {

using linalg::Matrix;
using linalg::Vector;
using vn2::testing::make_synthetic;
using vn2::testing::standard_causes;

TEST(Train, RejectsBadInput) {
  EXPECT_THROW(train(Matrix{}), std::invalid_argument);
  EXPECT_THROW(train(Matrix(5, 10)), std::invalid_argument);
}

TEST(Train, FixedRankProducesModel) {
  auto synthetic = make_synthetic(standard_causes(), 300, 1);
  TrainingOptions options;
  options.rank = 6;
  TrainingReport report = train(synthetic.states, options);

  EXPECT_TRUE(report.model.trained());
  EXPECT_EQ(report.model.rank(), 6u);
  EXPECT_EQ(report.chosen_rank, 6u);
  EXPECT_EQ(report.training_states, 300u);
  EXPECT_GT(report.exception_states, 0u);
  EXPECT_LE(report.exception_states, 300u);
  EXPECT_TRUE(report.rank_sweep.empty());  // No sweep when rank is fixed.
  EXPECT_EQ(report.model.psi().cols(), kEncodedCount);
  EXPECT_TRUE(linalg::is_nonnegative(report.model.psi()));
}

TEST(Train, AutoRankRunsSweep) {
  auto synthetic = make_synthetic(standard_causes(), 200, 2);
  TrainingOptions options;
  options.candidate_ranks = {2, 4, 6, 8};
  options.nmf.max_iterations = 150;
  TrainingReport report = train(synthetic.states, options);
  EXPECT_FALSE(report.rank_sweep.empty());
  EXPECT_GT(report.chosen_rank, 0u);
  EXPECT_EQ(report.model.rank(), report.chosen_rank);
}

TEST(Train, SkipExceptionExtractionUsesAllStates) {
  auto synthetic = make_synthetic(standard_causes(), 120, 3);
  TrainingOptions options;
  options.rank = 4;
  options.skip_exception_extraction = true;
  TrainingReport report = train(synthetic.states, options);
  EXPECT_EQ(report.exception_states, 120u);
}

TEST(Train, RankBeyondExceptionCountThrows) {
  auto synthetic = make_synthetic(standard_causes(), 50, 4);
  TrainingOptions options;
  options.rank = 45;  // More than plausible exception rows.
  options.exception_threshold = 0.9;  // Keep almost nothing.
  EXPECT_THROW(train(synthetic.states, options), std::invalid_argument);
}

TEST(Train, ThresholdControlsExceptionCount) {
  auto synthetic = make_synthetic(standard_causes(), 300, 5);
  TrainingOptions lenient;
  lenient.rank = 4;
  lenient.exception_threshold = 0.01;
  TrainingOptions strict;
  strict.rank = 4;
  strict.exception_threshold = 0.6;
  const auto lenient_report = train(synthetic.states, lenient);
  const auto strict_report = train(synthetic.states, strict);
  EXPECT_GT(lenient_report.exception_states, strict_report.exception_states);
}

TEST(Model, ExceptionRuleMatchesTraining) {
  auto synthetic = make_synthetic(standard_causes(), 400, 6);
  TrainingOptions options;
  options.rank = 6;
  options.exception_threshold = 0.35;
  TrainingReport report = train(synthetic.states, options);

  // Re-applying the online rule to the training rows must reproduce the
  // offline flags.
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < synthetic.states.rows(); ++i)
    if (report.model.is_exception(synthetic.states.row_vector(i))) ++flagged;
  EXPECT_EQ(flagged, report.detection.exception_rows.size());
}

TEST(Model, PlantedAbnormalStatesScoreHigher) {
  auto synthetic = make_synthetic(standard_causes(), 300, 7);
  TrainingOptions options;
  options.rank = 6;
  TrainingReport report = train(synthetic.states, options);

  double normal_sum = 0.0, abnormal_sum = 0.0;
  std::size_t normal_count = 0, abnormal_count = 0;
  for (std::size_t i = 0; i < synthetic.states.rows(); ++i) {
    const double score =
        report.model.exception_score(synthetic.states.row_vector(i));
    if (synthetic.active[i].empty()) {
      normal_sum += score;
      ++normal_count;
    } else {
      abnormal_sum += score;
      ++abnormal_count;
    }
  }
  // The encoder's std is fit on the mixed (normal + abnormal) trace, which
  // compresses the planted shift; the separation is real but modest.
  EXPECT_GT(abnormal_sum / abnormal_count, 1.15 * normal_sum / normal_count);
}

TEST(Model, RootCauseProfileShape) {
  auto synthetic = make_synthetic(standard_causes(), 200, 8);
  TrainingOptions options;
  options.rank = 5;
  TrainingReport report = train(synthetic.states, options);
  const Vector profile = report.model.root_cause_profile(0);
  EXPECT_EQ(profile.size(), metrics::kMetricCount);
}

TEST(Model, UntrainedModelBehaves) {
  Vn2Model model;
  EXPECT_FALSE(model.trained());
  EXPECT_EQ(model.rank(), 0u);
  EXPECT_FALSE(model.is_exception(Vector(metrics::kMetricCount, 100.0)));
}

TEST(Model, SaveLoadRoundTrip) {
  auto synthetic = make_synthetic(standard_causes(), 150, 9);
  TrainingOptions options;
  options.rank = 4;
  TrainingReport report = train(synthetic.states, options);

  const std::string path =
      (std::filesystem::temp_directory_path() / "vn2_model_test.txt").string();
  report.model.save(path);
  Vn2Model loaded = Vn2Model::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.rank(), report.model.rank());
  EXPECT_LT(linalg::frobenius_distance(loaded.psi(), report.model.psi()),
            1e-9);
  // The loaded model must score states identically.
  const Vector probe = synthetic.states.row_vector(11);
  EXPECT_NEAR(loaded.exception_score(probe),
              report.model.exception_score(probe), 1e-9);
  EXPECT_EQ(loaded.is_exception(probe), report.model.is_exception(probe));
}

TEST(Model, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vn2_model_garbage.txt")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("NOT_A_MODEL 9\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(Vn2Model::load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(Vn2Model::load("/definitely/not/here"), std::runtime_error);
}

TEST(Model, ConstructorValidatesShape) {
  EXPECT_THROW(Vn2Model(Matrix(3, 10), StateEncoder{}, 1.0, 0.01),
               std::invalid_argument);
}

TEST(Train, DeterministicGivenSeed) {
  auto synthetic = make_synthetic(standard_causes(), 200, 10);
  TrainingOptions options;
  options.rank = 5;
  TrainingReport a = train(synthetic.states, options);
  TrainingReport b = train(synthetic.states, options);
  EXPECT_LT(linalg::frobenius_distance(a.model.psi(), b.model.psi()), 1e-12);
}

}  // namespace
}  // namespace vn2::core
