#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace vn2::scenario {
namespace {

TEST(Citysee, LayoutMatchesParams) {
  CityseeParams params;
  params.node_count = 50;
  params.area_m = 200.0;
  params.days = 0.5;
  ScenarioBundle bundle = citysee_field(params);
  EXPECT_EQ(bundle.config.positions.size(), 50u);
  EXPECT_DOUBLE_EQ(bundle.config.duration, 0.5 * 86400.0);
  EXPECT_DOUBLE_EQ(bundle.config.report_period, 600.0);
  for (const wsn::Position& p : bundle.config.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 200.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 200.0);
  }
  // Sink at the center.
  EXPECT_NEAR(bundle.config.positions[0].x, 100.0, 1e-9);
}

TEST(Citysee, DefaultMatchesPaperScale) {
  ScenarioBundle bundle = citysee_field();
  EXPECT_EQ(bundle.config.positions.size(), 286u);
  EXPECT_DOUBLE_EQ(bundle.config.duration, 7.0 * 86400.0);
}

TEST(Citysee, BackgroundHazardsPresentAndReproducible) {
  CityseeParams params;
  params.node_count = 40;
  params.days = 2.0;
  ScenarioBundle a = citysee_field(params);
  ScenarioBundle b = citysee_field(params);
  EXPECT_FALSE(a.faults.empty());
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].type, b.faults[i].type);
    EXPECT_DOUBLE_EQ(a.faults[i].start, b.faults[i].start);
  }
  params.background_hazards = false;
  EXPECT_TRUE(citysee_field(params).faults.empty());
}

TEST(Citysee, EpisodeFaultsInsideWindow) {
  CityseeEpisodeParams params;
  params.base.node_count = 40;
  params.base.days = 13.0;
  params.base.background_hazards = false;
  ScenarioBundle bundle = citysee_with_episode(params);
  ASSERT_EQ(bundle.faults.size(),
            params.loops + params.jammers + params.congestion_bursts +
                2 * params.node_failures);  // Failures plus their repairs.
  const double start = 6.0 * 86400.0, end = 8.0 * 86400.0;
  for (const wsn::FaultCommand& f : bundle.faults) {
    if (f.type == wsn::FaultCommand::Type::kNodeReboot) {
      // Repairs land a few hours after the window closes.
      EXPECT_GT(f.start, end);
      EXPECT_LE(f.start, end + 9.0 * 3600.0);
      continue;
    }
    EXPECT_GE(f.start, start);
    EXPECT_LE(f.start, end);
  }
}

TEST(Testbed, GridGeometry) {
  TestbedParams params;
  ScenarioBundle bundle = testbed(params);
  // 45 grid nodes + 1 sink.
  EXPECT_EQ(bundle.config.positions.size(), 46u);
  EXPECT_DOUBLE_EQ(bundle.config.report_period, 180.0);
  EXPECT_DOUBLE_EQ(bundle.config.duration, 7200.0);
  // Grid extent: 5 cols × 9 rows at 7 m.
  double max_x = 0, max_y = 0;
  for (std::size_t i = 1; i < bundle.config.positions.size(); ++i) {
    max_x = std::max(max_x, bundle.config.positions[i].x);
    max_y = std::max(max_y, bundle.config.positions[i].y);
  }
  EXPECT_DOUBLE_EQ(max_x, 4 * 7.0);
  EXPECT_DOUBLE_EQ(max_y, 8 * 7.0);
}

TEST(Testbed, RemovalScheduleRespectsBounds) {
  TestbedParams params;
  params.seed = 99;
  ScenarioBundle bundle = testbed(params);
  ASSERT_FALSE(bundle.faults.empty());

  // Count removals per cycle; each must be within [5, 7]; every removal is
  // re-inserted the next cycle.
  std::map<int, int> removals_per_cycle;
  std::size_t failures = 0, reboots = 0;
  for (const wsn::FaultCommand& f : bundle.faults) {
    EXPECT_NE(f.node, wsn::kSinkId);  // Never remove the sink.
    if (f.type == wsn::FaultCommand::Type::kNodeFailure) {
      ++failures;
      removals_per_cycle[static_cast<int>(f.start / params.cycle_period)]++;
    } else if (f.type == wsn::FaultCommand::Type::kNodeReboot) {
      ++reboots;
    }
  }
  for (const auto& [cycle, count] : removals_per_cycle) {
    EXPECT_GE(count, 5) << "cycle " << cycle;
    EXPECT_LE(count, 7) << "cycle " << cycle;
  }
  // All but the last cycle's removals come back.
  EXPECT_GE(reboots, failures - 7);
}

TEST(Testbed, LocalPatternClustersRemovals) {
  TestbedParams local_params;
  local_params.pattern = RemovalPattern::kLocal;
  local_params.seed = 7;
  ScenarioBundle local = testbed(local_params);

  TestbedParams wide_params;
  wide_params.pattern = RemovalPattern::kExpansive;
  wide_params.seed = 7;
  ScenarioBundle wide = testbed(wide_params);

  // Mean pairwise distance of removed nodes per cycle must be smaller for
  // the local pattern.
  auto mean_spread = [](const ScenarioBundle& bundle) {
    std::map<int, std::vector<wsn::Position>> cycles;
    for (const wsn::FaultCommand& f : bundle.faults)
      if (f.type == wsn::FaultCommand::Type::kNodeFailure)
        cycles[static_cast<int>(f.start / 600.0)].push_back(
            bundle.config.positions[f.node]);
    double total = 0.0;
    std::size_t pairs = 0;
    for (const auto& [cycle, positions] : cycles) {
      for (std::size_t i = 0; i < positions.size(); ++i)
        for (std::size_t j = i + 1; j < positions.size(); ++j) {
          total += distance(positions[i], positions[j]);
          ++pairs;
        }
    }
    return pairs ? total / static_cast<double>(pairs) : 0.0;
  };
  EXPECT_LT(mean_spread(local), 0.7 * mean_spread(wide));
}

TEST(Tiny, IsSmallAndFaultFree) {
  ScenarioBundle bundle = tiny(9, 600.0, 3);
  EXPECT_GE(bundle.config.positions.size(), 9u);
  EXPECT_TRUE(bundle.faults.empty());
  EXPECT_DOUBLE_EQ(bundle.config.duration, 600.0);
}

TEST(Bundle, MakeSimulatorInjectsFaults) {
  TestbedParams params;
  ScenarioBundle bundle = testbed(params);
  wsn::Simulator sim = bundle.make_simulator();
  EXPECT_EQ(sim.snapshot_result().ground_truth.size(), bundle.faults.size());
}

}  // namespace
}  // namespace vn2::scenario
