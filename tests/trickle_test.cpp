// Adaptive (Trickle-style) beaconing tests.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "wsn/simulator.hpp"

namespace vn2::wsn {
namespace {

SimConfig chain_config(bool adaptive) {
  SimConfig config;
  for (int i = 0; i <= 5; ++i)
    config.positions.push_back({25.0 * i, 0.0});
  config.duration = 3600.0;
  config.report_period = 60.0;
  config.beacon_period = 10.0;
  config.seed = 77;
  config.radio.shadowing_stddev_db = 0.0;
  config.adaptive_beaconing = adaptive;
  return config;
}

TEST(Trickle, StableNetworkSendsFewerBeacons) {
  Simulator fixed(chain_config(false));
  fixed.run_until(3600.0);
  Simulator adaptive(chain_config(true));
  adaptive.run_until(3600.0);
  // With the interval doubling to 8x, a stable network should emit several
  // times fewer beacons.
  EXPECT_LT(adaptive.stats().beacons_sent,
            fixed.stats().beacons_sent / 2);
  EXPECT_GT(adaptive.stats().beacons_sent, 0u);
}

TEST(Trickle, DeliveryStaysHealthy) {
  Simulator adaptive(chain_config(true));
  SimulationResult result = adaptive.run();
  const double prr = static_cast<double>(result.sink_log.size()) /
                     static_cast<double>(result.originations.size());
  EXPECT_GT(prr, 0.85);
}

TEST(Trickle, RouteEventsSpeedBeaconingBackUp) {
  SimConfig config = chain_config(true);
  Simulator sim(config);
  sim.run_until(900.0);
  // After 15 minutes of stability, intervals should have backed off.
  EXPECT_GT(sim.node(3).beacon_interval, config.beacon_period);

  const double stable_start =
      sim.node(3).metric(metrics::MetricId::kBeaconSentCounter);
  sim.run_until(1200.0);
  const double stable_rate =
      sim.node(3).metric(metrics::MetricId::kBeaconSentCounter) - stable_start;

  // Kill node 2: node 3 loses its parent. The resulting route churn resets
  // the trickle state (repeatedly), so node 3 beacons faster than it did
  // during the stable window.
  sim.mutable_node(2).fail();
  const double churn_start =
      sim.node(3).metric(metrics::MetricId::kBeaconSentCounter);
  sim.run_until(1500.0);
  const double churn_rate =
      sim.node(3).metric(metrics::MetricId::kBeaconSentCounter) - churn_start;
  EXPECT_GT(churn_rate, stable_rate);
}

TEST(Trickle, CapRespected) {
  SimConfig config = chain_config(true);
  config.beacon_interval_max = 25.0;
  Simulator sim(config);
  sim.run_until(1800.0);
  for (NodeId id = 0; id < sim.node_count(); ++id)
    EXPECT_LE(sim.node(id).beacon_interval, 25.0 + 1e-9);
}

TEST(Trickle, RebootResetsInterval) {
  SimConfig config = chain_config(true);
  Simulator sim(config);
  sim.run_until(1200.0);
  EXPECT_GT(sim.node(4).beacon_interval, config.beacon_period);
  sim.mutable_node(4).reboot(1200.0);
  EXPECT_DOUBLE_EQ(sim.node(4).beacon_interval, 0.0);  // Re-initialized lazily.
}

TEST(Trickle, OffByDefaultKeepsFixedCadence) {
  SimConfig config = chain_config(false);
  Simulator sim(config);
  sim.run_until(1800.0);
  // In fixed mode the trickle state is never engaged.
  for (NodeId id = 0; id < sim.node_count(); ++id)
    EXPECT_DOUBLE_EQ(sim.node(id).beacon_interval, 0.0);
}

}  // namespace
}  // namespace vn2::wsn
