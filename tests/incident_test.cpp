#include "core/incident.hpp"

#include <gtest/gtest.h>

namespace vn2::core {
namespace {

using metrics::HazardEvent;

trace::StateVector make_state(wsn::NodeId node, wsn::Time time) {
  trace::StateVector state;
  state.node = node;
  state.time = time;
  return state;
}

Diagnosis make_diagnosis(bool exception,
                         std::vector<RankedCause> ranked = {},
                         std::size_t rank = 3) {
  Diagnosis d;
  d.is_exception = exception;
  d.ranked = std::move(ranked);
  d.weights = linalg::Vector(rank);
  for (const RankedCause& cause : d.ranked) d.weights[cause.row] = cause.strength;
  return d;
}

std::vector<RootCauseInterpretation> make_interps() {
  std::vector<RootCauseInterpretation> interps(3);
  interps[0].row = 0;
  interps[0].labels = {{HazardEvent::kRoutingLoop, 0.9}};
  interps[1].row = 1;
  interps[1].labels = {{HazardEvent::kContention, 0.8}};
  interps[2].row = 2;  // Unlabelled.
  return interps;
}

TEST(Incidents, SizeMismatchThrows) {
  std::vector<trace::StateVector> states(2);
  std::vector<Diagnosis> diagnoses(1);
  EXPECT_THROW(aggregate_incidents(states, diagnoses, {}),
               std::invalid_argument);
}

TEST(Incidents, EmptyWhenNoExceptions) {
  std::vector<trace::StateVector> states = {make_state(1, 10.0),
                                            make_state(2, 20.0)};
  std::vector<Diagnosis> diagnoses = {make_diagnosis(false),
                                      make_diagnosis(false)};
  EXPECT_TRUE(aggregate_incidents(states, diagnoses, make_interps()).empty());
}

TEST(Incidents, ClustersByTimeGap) {
  // Two bursts separated by more than the merge gap.
  std::vector<trace::StateVector> states;
  std::vector<Diagnosis> diagnoses;
  for (double t : {100.0, 200.0, 300.0, 5000.0, 5100.0, 5200.0}) {
    states.push_back(make_state(1, t));
    diagnoses.push_back(make_diagnosis(true, {{0, 5.0}}));
  }
  IncidentOptions options;
  options.merge_gap = 1000.0;
  options.min_states = 2;
  auto incidents =
      aggregate_incidents(states, diagnoses, make_interps(), options);
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_DOUBLE_EQ(incidents[0].start, 100.0);
  EXPECT_DOUBLE_EQ(incidents[0].end, 300.0);
  EXPECT_DOUBLE_EQ(incidents[1].start, 5000.0);
  EXPECT_EQ(incidents[0].state_count, 3u);
}

TEST(Incidents, MinStatesFiltersNoise) {
  std::vector<trace::StateVector> states = {make_state(1, 100.0)};
  std::vector<Diagnosis> diagnoses = {make_diagnosis(true, {{0, 5.0}})};
  IncidentOptions options;
  options.min_states = 2;
  EXPECT_TRUE(aggregate_incidents(states, diagnoses, make_interps(), options)
                  .empty());
  options.min_states = 1;
  EXPECT_EQ(aggregate_incidents(states, diagnoses, make_interps(), options)
                .size(),
            1u);
}

TEST(Incidents, NodesAreUniqueAndSorted) {
  std::vector<trace::StateVector> states = {
      make_state(5, 100.0), make_state(2, 150.0), make_state(5, 200.0)};
  std::vector<Diagnosis> diagnoses(3, make_diagnosis(true, {{0, 5.0}}));
  IncidentOptions options;
  options.min_states = 1;
  auto incidents =
      aggregate_incidents(states, diagnoses, make_interps(), options);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].nodes, (std::vector<wsn::NodeId>{2, 5}));
}

TEST(Incidents, CausesRankedByEvidenceShare) {
  // Row 0 (loop) gets 3x the strength of row 1 (contention).
  std::vector<trace::StateVector> states;
  std::vector<Diagnosis> diagnoses;
  for (int i = 0; i < 4; ++i) {
    states.push_back(make_state(1, 100.0 * i));
    diagnoses.push_back(make_diagnosis(true, {{0, 6.0}, {1, 2.0}}));
  }
  IncidentOptions options;
  options.min_states = 2;
  options.strength_fraction = 0.1;
  auto incidents =
      aggregate_incidents(states, diagnoses, make_interps(), options);
  ASSERT_EQ(incidents.size(), 1u);
  ASSERT_GE(incidents[0].causes.size(), 2u);
  EXPECT_EQ(incidents[0].causes[0].hazard, HazardEvent::kRoutingLoop);
  EXPECT_NEAR(incidents[0].causes[0].share, 0.75, 1e-9);
  EXPECT_EQ(incidents[0].causes[1].hazard, HazardEvent::kContention);
  EXPECT_NEAR(incidents[0].causes[1].share, 0.25, 1e-9);
  // Summary mentions the dominant cause.
  EXPECT_NE(incidents[0].summary.find("routing-loop"), std::string::npos);
}

TEST(Incidents, MinCauseShareDropsTrivia) {
  std::vector<trace::StateVector> states;
  std::vector<Diagnosis> diagnoses;
  for (int i = 0; i < 3; ++i) {
    states.push_back(make_state(1, 50.0 * i));
    diagnoses.push_back(make_diagnosis(true, {{0, 99.0}, {1, 1.0}}));
  }
  IncidentOptions options;
  options.min_states = 2;
  options.strength_fraction = 0.0;
  options.min_cause_share = 0.05;
  auto incidents =
      aggregate_incidents(states, diagnoses, make_interps(), options);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].causes.size(), 1u);  // Contention at 1% dropped.
}

TEST(Incidents, UnlabelledRowsContributeNoCause) {
  std::vector<trace::StateVector> states = {make_state(1, 0.0),
                                            make_state(1, 10.0),
                                            make_state(1, 20.0)};
  std::vector<Diagnosis> diagnoses(3, make_diagnosis(true, {{2, 5.0}}));
  IncidentOptions options;
  options.min_states = 2;
  auto incidents =
      aggregate_incidents(states, diagnoses, make_interps(), options);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_TRUE(incidents[0].causes.empty());
  EXPECT_NE(incidents[0].summary.find("no labelled cause"), std::string::npos);
}

TEST(Incidents, MissingInterpretationThrows) {
  std::vector<trace::StateVector> states(3, make_state(1, 0.0));
  std::vector<Diagnosis> diagnoses(3, make_diagnosis(true, {{9, 5.0}}, 10));
  IncidentOptions options;
  options.min_states = 1;
  EXPECT_THROW(
      aggregate_incidents(states, diagnoses, make_interps(), options),
      std::invalid_argument);
}

TEST(Incidents, LocalizationFromPositions) {
  std::vector<trace::StateVector> states = {
      make_state(1, 0.0), make_state(2, 10.0), make_state(3, 20.0)};
  std::vector<Diagnosis> diagnoses(3, make_diagnosis(true, {{0, 5.0}}));
  // Node positions indexed by id (0 = sink, unused here).
  std::vector<wsn::Position> positions = {
      {0, 0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}};
  IncidentOptions options;
  options.min_states = 2;
  auto incidents = aggregate_incidents(states, diagnoses, make_interps(),
                                       options, positions);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_TRUE(incidents[0].localized);
  EXPECT_NEAR(incidents[0].center.x, 20.0, 1e-9);
  EXPECT_NEAR(incidents[0].center.y, 0.0, 1e-9);
  EXPECT_NEAR(incidents[0].radius_m, std::sqrt(200.0 / 3.0), 1e-9);
  EXPECT_NE(incidents[0].summary.find("near ("), std::string::npos);

  // Without positions: no localization.
  auto plain =
      aggregate_incidents(states, diagnoses, make_interps(), options);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_FALSE(plain[0].localized);
}

TEST(Incidents, StrengthProfileIsMeanOfMembers) {
  std::vector<trace::StateVector> states = {make_state(1, 0.0),
                                            make_state(2, 10.0)};
  std::vector<Diagnosis> diagnoses = {make_diagnosis(true, {{0, 4.0}}),
                                      make_diagnosis(true, {{1, 2.0}})};
  IncidentOptions options;
  options.min_states = 1;
  auto incidents =
      aggregate_incidents(states, diagnoses, make_interps(), options);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_DOUBLE_EQ(incidents[0].strength_profile[0], 2.0);
  EXPECT_DOUBLE_EQ(incidents[0].strength_profile[1], 1.0);
  EXPECT_DOUBLE_EQ(incidents[0].strength_profile[2], 0.0);
}

}  // namespace
}  // namespace vn2::core
