// Low-power listening (BoX-MAC-style duty cycling) tests.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "trace/trace.hpp"
#include "wsn/simulator.hpp"

namespace vn2::wsn {
namespace {

using metrics::MetricId;

scenario::ScenarioBundle bundle_with_lpl(bool lpl, std::uint64_t seed = 21) {
  scenario::ScenarioBundle bundle = scenario::tiny(12, 4.0 * 3600.0, seed);
  // LPL only pays off at realistic low duty rates: a deployment that
  // duty-cycles its radio also spaces its reports and beacons out (real
  // CitySee: 10-minute reports). Broadcast preambles are the dominant LPL
  // cost, so adaptive beaconing belongs in the same configuration.
  bundle.config.report_period = 300.0;
  bundle.config.beacon_period = 120.0;
  bundle.config.adaptive_beaconing = true;
  bundle.config.neighbor_timeout = 3600.0;
  bundle.config.low_power_listening = lpl;
  return bundle;
}

double total_radio_on(const Simulator& sim) {
  double total = 0.0;
  for (NodeId id = 1; id < sim.node_count(); ++id)
    total += sim.node(id).metric(MetricId::kRadioOnTime);
  return total;
}

TEST(Lpl, CutsRadioOnTimeDramatically) {
  auto always_on = bundle_with_lpl(false);
  Simulator on_sim = always_on.make_simulator();
  on_sim.run_until(4.0 * 3600.0);

  auto lpl = bundle_with_lpl(true);
  Simulator lpl_sim = lpl.make_simulator();
  lpl_sim.run_until(4.0 * 3600.0);

  // Idle duty drops from 5% to ~2% (0.011/0.512), and idle dominates in a
  // lightly loaded network — expect a clear saving despite preamble costs.
  EXPECT_LT(total_radio_on(lpl_sim), 0.8 * total_radio_on(on_sim));
}

TEST(Lpl, DeliveryUnaffected) {
  auto lpl = bundle_with_lpl(true);
  const SimulationResult result = lpl.make_simulator().run();
  EXPECT_GT(trace::overall_prr(result), 0.9);
}

TEST(Lpl, TransmissionsCostMoreAirtimePerPacket) {
  // Compare the radio time attributable to data transmissions by using a
  // traffic-heavy, idle-light configuration.
  auto make = [](bool lpl) {
    scenario::ScenarioBundle bundle = scenario::tiny(9, 1800.0, 4);
    bundle.config.report_period = 30.0;  // Heavy reporting.
    bundle.config.idle_duty_cycle = 0.0;  // Isolate the tx component.
    bundle.config.low_power_listening = lpl;
    bundle.config.lpl_probe = 0.0;  // ...fully.
    Simulator sim = bundle.make_simulator();
    sim.run_until(1800.0);
    double total = 0.0;
    for (NodeId id = 1; id < sim.node_count(); ++id)
      total += sim.node(id).metric(MetricId::kRadioOnTime);
    return total;
  };
  EXPECT_GT(make(true), 5.0 * make(false));
}

TEST(Lpl, BatteryReflectsDutyCycling) {
  auto always_on = bundle_with_lpl(false, 9);
  Simulator on_sim = always_on.make_simulator();
  on_sim.run_until(4.0 * 3600.0);
  auto lpl = bundle_with_lpl(true, 9);
  Simulator lpl_sim = lpl.make_simulator();
  lpl_sim.run_until(4.0 * 3600.0);

  double on_min = 10.0, lpl_min = 10.0;
  for (NodeId id = 1; id < on_sim.node_count(); ++id) {
    on_min = std::min(on_min, on_sim.node(id).voltage());
    lpl_min = std::min(lpl_min, lpl_sim.node(id).voltage());
  }
  // The worst-off LPL node retains at least as much charge.
  EXPECT_GE(lpl_min, on_min - 1e-9);
}

}  // namespace
}  // namespace vn2::wsn
