#include "core/performance.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/vn2.hpp"
#include "scenario/scenario.hpp"

namespace vn2::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(PrrEstimator, RejectsBadInput) {
  EXPECT_THROW(PrrEstimator::fit(Matrix(3, 2), Vector(4)),
               std::invalid_argument);
  EXPECT_THROW(PrrEstimator::fit(Matrix(1, 2), Vector(1)),
               std::invalid_argument);
  EXPECT_THROW(PrrEstimator::fit(Matrix(3, 2), Vector(3), -1.0),
               std::invalid_argument);
  PrrEstimator unfitted;
  EXPECT_FALSE(unfitted.fitted());
  EXPECT_THROW((void)unfitted.predict(Vector(2)), std::logic_error);
}

TEST(PrrEstimator, RecoversLinearRelation) {
  // PRR = 0.9 − 0.1·x0 − 0.05·x1 + noise.
  const std::size_t k = 200;
  Matrix profiles(k, 3);
  Vector prr(k);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> x(0.0, 2.0);
  std::normal_distribution<double> noise(0.0, 0.005);
  for (std::size_t i = 0; i < k; ++i) {
    profiles(i, 0) = x(rng);
    profiles(i, 1) = x(rng);
    profiles(i, 2) = x(rng);  // Irrelevant feature.
    prr[i] = 0.9 - 0.1 * profiles(i, 0) - 0.05 * profiles(i, 1) + noise(rng);
  }
  PrrEstimator estimator = PrrEstimator::fit(profiles, prr, 1e-6);
  EXPECT_NEAR(estimator.coefficients()[0], -0.1, 0.01);
  EXPECT_NEAR(estimator.coefficients()[1], -0.05, 0.01);
  EXPECT_NEAR(estimator.coefficients()[2], 0.0, 0.01);
  EXPECT_GT(estimator.r_squared(profiles, prr), 0.95);
}

TEST(PrrEstimator, PredictionsClampedToUnitInterval) {
  Matrix profiles{{0.0}, {1.0}};
  Vector prr{0.9, 0.1};
  PrrEstimator estimator = PrrEstimator::fit(profiles, prr, 1e-9);
  Vector extreme(1);
  extreme[0] = 100.0;
  EXPECT_GE(estimator.predict(extreme), 0.0);
  extreme[0] = -100.0;
  EXPECT_LE(estimator.predict(extreme), 1.0);
}

TEST(PrrEstimator, RidgeShrinksCoefficients) {
  Matrix profiles(50, 2);
  Vector prr(50);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> x(0.0, 1.0);
  for (std::size_t i = 0; i < 50; ++i) {
    profiles(i, 0) = x(rng);
    profiles(i, 1) = x(rng);
    prr[i] = 0.5 + 0.3 * profiles(i, 0);
  }
  const PrrEstimator light = PrrEstimator::fit(profiles, prr, 1e-9);
  const PrrEstimator heavy = PrrEstimator::fit(profiles, prr, 10.0);
  EXPECT_LT(std::abs(heavy.coefficients()[0]),
            std::abs(light.coefficients()[0]));
}

TEST(PrrEstimator, RSquaredOfConstantTarget) {
  Matrix profiles{{0.0}, {1.0}, {2.0}};
  Vector prr{0.5, 0.5, 0.5};
  PrrEstimator estimator = PrrEstimator::fit(profiles, prr);
  EXPECT_DOUBLE_EQ(estimator.r_squared(profiles, prr), 1.0);
}

TEST(PerformanceDataset, BuildsAndPredictsOnSimulatedTrace) {
  // A network with a mid-run jam: windows during the jam have lower PRR and
  // different strength profiles; the estimator should explain a meaningful
  // part of the variance in-sample.
  scenario::ScenarioBundle bundle = scenario::tiny(16, 4.0 * 3600.0, 5, 18.0);
  wsn::FaultCommand jam;
  jam.type = wsn::FaultCommand::Type::kJammer;
  jam.center = {30.0, 40.0};
  jam.radius_m = 80.0;
  jam.start = 5400.0;
  jam.end = 9000.0;
  jam.magnitude = 0.5;
  bundle.faults.push_back(jam);

  wsn::Simulator sim = bundle.make_simulator();
  const wsn::SimulationResult result = sim.run();
  const trace::Trace log = trace::build_trace(result);
  auto states = trace::extract_states(log);
  std::erase_if(states,
                [](const trace::StateVector& s) { return s.time < 600.0; });

  Vn2Tool::Options options;
  options.training.rank = 8;
  options.training.skip_exception_extraction = true;
  Vn2Tool tool = Vn2Tool::train_from_states(states, options);

  const PerformanceDataset dataset =
      build_performance_dataset(result, states, tool.model(), 900.0);
  ASSERT_GE(dataset.profiles.rows(), 8u);
  ASSERT_EQ(dataset.profiles.rows(), dataset.prr.size());
  for (std::size_t i = 0; i < dataset.prr.size(); ++i) {
    EXPECT_GE(dataset.prr[i], 0.0);
    // Receptions are binned by arrival time, originations by send time, so
    // multi-hop latency can spill a few packets across a window boundary
    // and nudge a window's ratio just past 1.
    EXPECT_LE(dataset.prr[i], 1.1);
  }

  const PrrEstimator estimator =
      PrrEstimator::fit(dataset.profiles, dataset.prr, 1e-2);
  EXPECT_GT(estimator.r_squared(dataset.profiles, dataset.prr), 0.3);
}

TEST(PerformanceDataset, RejectsBadArgs) {
  wsn::SimulationResult result;
  std::vector<trace::StateVector> states;
  EXPECT_THROW(build_performance_dataset(result, states, Vn2Model{}, 100.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vn2::core
