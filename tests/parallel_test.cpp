// The parallel execution layer: index coverage under adversarial grains,
// bit-identical results across thread counts for every parallelized hot
// path (matmul, rank_sweep, diagnose_batch), and clean pool shutdown when
// a task throws.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/inference.hpp"
#include "core/model.hpp"
#include "linalg/matrix.hpp"
#include "linalg/random.hpp"
#include "nmf/rank_selection.hpp"
#include "test_helpers.hpp"

namespace vn2::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

// The thread budget is process-global; restore the default after each test
// so the suites sharing this binary are unaffected.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_num_threads(0); }
};

TEST_F(ParallelTest, SetNumThreadsRoundTrips) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1u);
  set_num_threads(0);  // Reset to hardware default.
  EXPECT_GE(num_threads(), 1u);
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnceUnderAdversarialGrains) {
  const std::size_t grains[] = {0, 1, 2, 3, 7, 64, 1u << 20};
  const std::size_t sizes[] = {0, 1, 2, 13, 100, 1017};
  const std::size_t begins[] = {0, 5};
  for (std::size_t threads : {1u, 2u, 5u}) {
    set_num_threads(threads);
    for (std::size_t grain : grains) {
      for (std::size_t n : sizes) {
        for (std::size_t begin : begins) {
          std::vector<std::atomic<int>> counts(begin + n);
          for (auto& c : counts) c.store(0);
          parallel_for(begin, begin + n, grain, [&](std::size_t i) {
            counts.at(i).fetch_add(1);
          });
          for (std::size_t i = 0; i < begin; ++i)
            ASSERT_EQ(counts[i].load(), 0)
                << "i=" << i << " grain=" << grain << " threads=" << threads;
          for (std::size_t i = begin; i < begin + n; ++i)
            ASSERT_EQ(counts[i].load(), 1)
                << "i=" << i << " grain=" << grain << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(ParallelTest, OneThreadRunsOnTheCallingThread) {
  set_num_threads(1);
  const std::thread::id caller = std::this_thread::get_id();
  parallel_for(0, 64, 1, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST_F(ParallelTest, NestedParallelForRunsInlineInTheOuterTask) {
  set_num_threads(4);
  std::vector<std::atomic<int>> counts(32 * 8);
  for (auto& c : counts) c.store(0);
  parallel_for(0, 8, 1, [&](std::size_t outer) {
    const std::thread::id outer_thread = std::this_thread::get_id();
    parallel_for(0, 32, 1, [&](std::size_t inner) {
      // No nested fan-out: the inner loop must stay on the outer task's
      // thread (workers inline, and the caller-thread path has the whole
      // pool busy only with outer chunks).
      if (ThreadPool::inside_worker()) {
        EXPECT_EQ(std::this_thread::get_id(), outer_thread);
      }
      counts[outer * 32 + inner].fetch_add(1);
    });
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST_F(ParallelTest, ThreadPoolRunIsReusable) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::atomic<int>> counts(257);
    for (auto& c : counts) c.store(0);
    pool.run(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
    for (auto& c : counts) ASSERT_EQ(c.load(), 1);
  }
}

TEST_F(ParallelTest, ThrowingTaskPropagatesAndPoolStaysUsable) {
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 1000, 1,
                            [&](std::size_t i) {
                              if (i == 137)
                                throw std::runtime_error("boom at 137");
                            }),
               std::runtime_error);
  // The pool must have drained cleanly and still schedule new work.
  std::vector<std::atomic<int>> counts(500);
  for (auto& c : counts) c.store(0);
  parallel_for(0, counts.size(), 1,
               [&](std::size_t i) { counts[i].fetch_add(1); });
  for (auto& c : counts) ASSERT_EQ(c.load(), 1);
}

TEST_F(ParallelTest, ThrowingTaskOnBareThreadPoolPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run(100,
               [](std::size_t i) {
                 if (i == 42) throw std::invalid_argument("task 42");
               }),
      std::invalid_argument);
  // Still alive afterwards.
  std::atomic<int> total{0};
  pool.run(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST_F(ParallelTest, MatmulBitIdenticalAcrossThreadCounts) {
  // Big enough to cross matmul's parallel threshold (120·40·90 flops).
  const Matrix a = linalg::random_uniform_matrix(120, 40, 11, -1.0, 1.0);
  const Matrix b = linalg::random_uniform_matrix(40, 90, 12, -1.0, 1.0);
  set_num_threads(1);
  const Matrix serial = linalg::matmul(a, b);
  for (std::size_t threads : {2u, 8u}) {
    set_num_threads(threads);
    const Matrix parallel = linalg::matmul(a, b);
    ASSERT_EQ(parallel.rows(), serial.rows());
    ASSERT_EQ(parallel.cols(), serial.cols());
    EXPECT_EQ(std::memcmp(parallel.data(), serial.data(),
                          serial.size() * sizeof(double)),
              0)
        << "matmul not bit-identical at " << threads << " threads";
  }
}

TEST_F(ParallelTest, RankSweepAndChooseRankIdenticalAcrossThreadCounts) {
  const Matrix e = linalg::random_uniform_matrix(60, 30, 21, 0.0, 1.0);
  const std::vector<std::size_t> ranks = {2, 3, 5, 8};
  nmf::RankSweepOptions options;
  options.nmf.max_iterations = 40;

  set_num_threads(1);
  const std::vector<nmf::RankPoint> serial = nmf::rank_sweep(e, ranks, options);
  const nmf::RankChoice serial_choice = nmf::choose_rank(serial);
  ASSERT_EQ(serial.size(), ranks.size());

  for (std::size_t threads : {2u, 8u}) {
    set_num_threads(threads);
    const std::vector<nmf::RankPoint> parallel =
        nmf::rank_sweep(e, ranks, options);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].rank, serial[i].rank);
      EXPECT_EQ(parallel[i].accuracy_original, serial[i].accuracy_original)
          << "rank " << serial[i].rank << " at " << threads << " threads";
      EXPECT_EQ(parallel[i].accuracy_sparse, serial[i].accuracy_sparse)
          << "rank " << serial[i].rank << " at " << threads << " threads";
    }
    const nmf::RankChoice choice = nmf::choose_rank(parallel);
    EXPECT_EQ(choice.rank, serial_choice.rank);
    EXPECT_EQ(choice.sweep_index, serial_choice.sweep_index);
  }
}

TEST_F(ParallelTest, DiagnoseBatchIdenticalAcrossThreadCounts) {
  const auto synthetic =
      vn2::testing::make_synthetic(vn2::testing::standard_causes(), 300, 77);
  TrainingOptions training;
  training.rank = 5;
  training.nmf.max_iterations = 150;
  set_num_threads(1);
  const TrainingReport report = train(synthetic.states, training);

  // Reference: the serial single-state front door.
  std::vector<Diagnosis> serial;
  serial.reserve(synthetic.states.rows());
  for (std::size_t i = 0; i < synthetic.states.rows(); ++i)
    serial.push_back(diagnose(report.model, synthetic.states.row_vector(i)));

  for (std::size_t threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    const std::vector<Diagnosis> batch =
        diagnose_batch(report.model, synthetic.states);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].residual, serial[i].residual);
      EXPECT_EQ(batch[i].exception_score, serial[i].exception_score);
      EXPECT_EQ(batch[i].is_exception, serial[i].is_exception);
      ASSERT_EQ(batch[i].weights.size(), serial[i].weights.size());
      for (std::size_t r = 0; r < batch[i].weights.size(); ++r)
        EXPECT_EQ(batch[i].weights[r], serial[i].weights[r])
            << "state " << i << " weight " << r << " at " << threads
            << " threads";
      ASSERT_EQ(batch[i].ranked.size(), serial[i].ranked.size());
    }
    const Matrix strengths =
        correlation_strengths(report.model, synthetic.states);
    ASSERT_EQ(strengths.rows(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      for (std::size_t r = 0; r < report.model.rank(); ++r)
        EXPECT_EQ(strengths(i, r), serial[i].weights[r]);
  }
}

}  // namespace
}  // namespace vn2::core
