#include "metrics/schema.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "metrics/hazards.hpp"

namespace vn2::metrics {
namespace {

TEST(Schema, ExactlyFortyThreeMetrics) {
  EXPECT_EQ(kMetricCount, 43u);
  EXPECT_EQ(all_metrics().size(), 43u);
}

TEST(Schema, BlockSizesMatchPaper) {
  // C1: 6 sensor/routing, C2: 20 neighbor metrics, C3: 17 counters.
  std::size_t c1 = 0, c2 = 0, c3 = 0;
  for (MetricId id : all_metrics()) {
    switch (packet_type(id)) {
      case PacketType::kC1: ++c1; break;
      case PacketType::kC2: ++c2; break;
      case PacketType::kC3: ++c3; break;
    }
  }
  EXPECT_EQ(c1, 6u);
  EXPECT_EQ(c2, 20u);
  EXPECT_EQ(c3, 17u);
}

TEST(Schema, NamesAreUnique) {
  std::set<std::string> names, shorts;
  for (MetricId id : all_metrics()) {
    EXPECT_TRUE(names.insert(std::string(name(id))).second)
        << "duplicate name " << name(id);
    EXPECT_TRUE(shorts.insert(std::string(short_name(id))).second)
        << "duplicate short name " << short_name(id);
  }
}

TEST(Schema, IndexRoundTrip) {
  for (std::size_t i = 0; i < kMetricCount; ++i)
    EXPECT_EQ(index_of(metric_at(i)), i);
  EXPECT_THROW((void)metric_at(kMetricCount), std::out_of_range);
}

TEST(Schema, NeighborSlotHelpers) {
  EXPECT_EQ(neighbor_rssi(0), MetricId::kNeighborRssi0);
  EXPECT_EQ(neighbor_rssi(9), MetricId::kNeighborRssi9);
  EXPECT_EQ(neighbor_etx(0), MetricId::kNeighborEtx0);
  EXPECT_EQ(neighbor_etx(9), MetricId::kNeighborEtx9);
  EXPECT_EQ(index_of(neighbor_etx(0)) - index_of(neighbor_rssi(0)),
            kMaxNeighbors);
}

TEST(Schema, CountersAreC3OrGaugeConsistent) {
  // Every counter lives in the C3 block; C1/C2 carry gauges only.
  for (MetricId id : all_metrics()) {
    if (kind(id) == MetricKind::kCounter) {
      EXPECT_EQ(packet_type(id), PacketType::kC3) << name(id);
    }
    if (packet_type(id) != PacketType::kC3) {
      EXPECT_EQ(kind(id), MetricKind::kGauge) << name(id);
    }
  }
}

TEST(Schema, PaperHeadlineMetricsExist) {
  // The metrics Table I and the evaluation discuss by name.
  EXPECT_EQ(name(MetricId::kNoackRetransmitCounter),
            "NOACK_retransmit_counter");
  EXPECT_EQ(name(MetricId::kOverflowDropCounter), "Overflow_drop_counter");
  EXPECT_EQ(name(MetricId::kParentChangeCounter), "Parent_change_counter");
  EXPECT_EQ(name(MetricId::kLoopCounter), "Loop_counter");
  EXPECT_EQ(name(MetricId::kDropPacketCounter), "Drop_packet_counter");
  EXPECT_EQ(name(MetricId::kDuplicateCounter), "Duplicate_counter");
  EXPECT_EQ(name(MetricId::kMacBackoffCounter), "MacI_backoff_counter");
  EXPECT_EQ(name(MetricId::kNoParentCounter), "No_parent_counter");
}

TEST(Schema, FamilyNamesResolve) {
  for (MetricId id : all_metrics())
    EXPECT_FALSE(family_name(family(id)).empty());
}

TEST(Hazards, TableCoversAllEvents) {
  EXPECT_EQ(hazard_table().size(), kHazardCount);
  std::set<HazardEvent> seen;
  for (const HazardInfo& info : hazard_table()) {
    EXPECT_TRUE(seen.insert(info.event).second) << info.name;
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty());
    EXPECT_FALSE(info.performance_impact.empty());
    EXPECT_FALSE(info.signature_metrics.empty()) << info.name;
  }
}

TEST(Hazards, LookupByEvent) {
  const HazardInfo& loop = hazard_info(HazardEvent::kRoutingLoop);
  EXPECT_EQ(loop.name, "routing-loop");
  // Loop signature includes the loop counter itself.
  bool has_lc = false;
  for (MetricId id : loop.signature_metrics)
    if (id == MetricId::kLoopCounter) has_lc = true;
  EXPECT_TRUE(has_lc);
}

TEST(Hazards, SignatureMetricsAreValid) {
  for (const HazardInfo& info : hazard_table())
    for (MetricId id : info.signature_metrics)
      EXPECT_LT(index_of(id), kMetricCount);
}

TEST(Hazards, ClassesGroupManifestations) {
  using enum HazardEvent;
  // Channel-level hazards are indistinguishable at the metric level.
  EXPECT_EQ(hazard_class(kRisingNoise), hazard_class(kContention));
  EXPECT_EQ(hazard_class(kLinkDegradation), hazard_class(kPersistentDrop));
  // Topology churn groups together.
  EXPECT_EQ(hazard_class(kNodeFailure), hazard_class(kNodeReboot));
  EXPECT_EQ(hazard_class(kNodeFailure), hazard_class(kFrequentParentChange));
  // But the major families stay apart.
  EXPECT_NE(hazard_class(kRoutingLoop), hazard_class(kContention));
  EXPECT_NE(hazard_class(kNodeLowVoltage), hazard_class(kUnstableClock));
  EXPECT_NE(hazard_class(kQueueOverflow), hazard_class(kRoutingLoop));
  // Every event has a printable class name.
  for (const HazardInfo& info : hazard_table())
    EXPECT_FALSE(hazard_class_name(hazard_class(info.event)).empty());
}

TEST(Hazards, TableIEntriesPresent) {
  // The ten rows of the paper's Table I map onto these hazard events.
  for (HazardEvent event :
       {HazardEvent::kUnstableClock, HazardEvent::kNodeLowVoltage,
        HazardEvent::kKeyNodeLargeSubtree, HazardEvent::kRisingNoise,
        HazardEvent::kQueueOverflow, HazardEvent::kLinkDegradation,
        HazardEvent::kFrequentParentChange, HazardEvent::kRoutingLoop,
        HazardEvent::kPersistentDrop, HazardEvent::kDuplicateStorm}) {
    EXPECT_NO_THROW((void)hazard_info(event));
  }
}

}  // namespace
}  // namespace vn2::metrics
