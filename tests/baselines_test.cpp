#include "baselines/agnostic.hpp"
#include "baselines/pca_decomposer.hpp"
#include "baselines/sympathy.hpp"

#include <gtest/gtest.h>

#include "linalg/random.hpp"
#include "test_helpers.hpp"

namespace vn2::baselines {
namespace {

using linalg::Matrix;
using linalg::Vector;
using metrics::HazardEvent;
using metrics::MetricId;

Vector state_with(const std::vector<std::pair<MetricId, double>>& spikes) {
  Vector state(metrics::kMetricCount, 0.0);
  for (const auto& [id, value] : spikes)
    state[metrics::index_of(id)] = value;
  return state;
}

TEST(Sympathy, NormalStateYieldsNoDiagnosis) {
  SympathyDiagnoser diagnoser;
  EXPECT_FALSE(diagnoser.diagnose(Vector(metrics::kMetricCount, 0.0))
                   .has_value());
}

TEST(Sympathy, RejectsWrongSize) {
  SympathyDiagnoser diagnoser;
  EXPECT_THROW((void)diagnoser.diagnose(Vector(5)), std::invalid_argument);
  EXPECT_THROW(SympathyDiagnoser::fit(Matrix(2, 5)), std::invalid_argument);
}

TEST(Sympathy, SingleRuleDiagnoses) {
  SympathyDiagnoser diagnoser;
  EXPECT_EQ(diagnoser.diagnose(state_with({{MetricId::kVoltage, -0.2}})),
            HazardEvent::kNodeLowVoltage);
  EXPECT_EQ(diagnoser.diagnose(state_with({{MetricId::kLoopCounter, 3.0}})),
            HazardEvent::kRoutingLoop);
  EXPECT_EQ(
      diagnoser.diagnose(state_with({{MetricId::kMacBackoffCounter, 50.0}})),
      HazardEvent::kContention);
  EXPECT_EQ(
      diagnoser.diagnose(state_with({{MetricId::kParentChangeCounter, 5.0}})),
      HazardEvent::kFrequentParentChange);
}

TEST(Sympathy, FirstRuleWinsEvenWithMultipleCauses) {
  // The structural limitation the paper criticizes: a state with BOTH a
  // voltage collapse and a routing loop reports only the voltage issue.
  SympathyDiagnoser diagnoser;
  const auto verdict = diagnoser.diagnose(state_with(
      {{MetricId::kVoltage, -0.5}, {MetricId::kLoopCounter, 10.0}}));
  EXPECT_EQ(verdict, HazardEvent::kNodeLowVoltage);
}

TEST(Sympathy, FitSetsThresholdsAtQuantiles) {
  // Training data where loop diffs are usually ≤ 1; fitted threshold must
  // sit near the top of that range so a diff of 5 fires but 0.5 does not.
  auto synthetic =
      vn2::testing::make_synthetic(vn2::testing::standard_causes(), 300, 3);
  SympathyDiagnoser diagnoser = SympathyDiagnoser::fit(synthetic.states);
  EXPECT_GT(diagnoser.thresholds().noack, 0.0);
  const auto verdict = diagnoser.diagnose(
      state_with({{MetricId::kLoopCounter, 50.0}}));
  EXPECT_EQ(verdict, HazardEvent::kRoutingLoop);
}

TEST(Agnostic, RejectsTooLittleData) {
  AgnosticOptions options;
  options.window = 16;
  EXPECT_THROW(AgnosticDetector::fit(Matrix(20, 5), options),
               std::invalid_argument);
}

TEST(Agnostic, CorrelationMatrixBasics) {
  // Two perfectly correlated columns, one anti-correlated.
  Matrix states(50, 3);
  std::mt19937_64 rng(5);
  std::normal_distribution<double> noise(0.0, 1.0);
  for (std::size_t i = 0; i < 50; ++i) {
    const double x = noise(rng);
    states(i, 0) = x;
    states(i, 1) = 2.0 * x;
    states(i, 2) = -x;
  }
  Matrix corr = correlation_matrix(states, 0, 50);
  EXPECT_NEAR(corr(0, 1), 1.0, 1e-9);
  EXPECT_NEAR(corr(0, 2), -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(corr(1, 1), 1.0);
  EXPECT_THROW(correlation_matrix(states, 45, 10), std::invalid_argument);
}

TEST(Agnostic, DetectsCorrelationBreak) {
  // Training: metrics 0 and 1 move together. Test: they decouple.
  const std::size_t n = 256;
  Matrix train(n, 4);
  std::mt19937_64 rng(9);
  std::normal_distribution<double> noise(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = noise(rng);
    train(i, 0) = x;
    train(i, 1) = x + 0.05 * noise(rng);
    train(i, 2) = noise(rng);
    train(i, 3) = noise(rng);
  }
  AgnosticOptions options;
  options.window = 32;
  options.z_threshold = 2.0;
  AgnosticDetector detector = AgnosticDetector::fit(train, options);
  EXPECT_GT(detector.edge_count(), 0u);

  // Healthy continuation: no alarms expected (same generator).
  Matrix healthy(64, 4);
  for (std::size_t i = 0; i < 64; ++i) {
    const double x = noise(rng);
    healthy(i, 0) = x;
    healthy(i, 1) = x + 0.05 * noise(rng);
    healthy(i, 2) = noise(rng);
    healthy(i, 3) = noise(rng);
  }
  // Broken: the correlated pair decouples entirely.
  Matrix broken(64, 4);
  for (std::size_t i = 0; i < 64; ++i) {
    broken(i, 0) = noise(rng);
    broken(i, 1) = noise(rng);
    broken(i, 2) = noise(rng);
    broken(i, 3) = noise(rng);
  }
  auto healthy_verdicts = detector.detect(healthy);
  auto broken_verdicts = detector.detect(broken);
  std::size_t healthy_alarms = 0, broken_alarms = 0;
  for (const auto& v : healthy_verdicts) healthy_alarms += v.abnormal;
  for (const auto& v : broken_verdicts) broken_alarms += v.abnormal;
  EXPECT_GT(broken_alarms, healthy_alarms);
  EXPECT_GT(broken_alarms, 0u);
}

TEST(Agnostic, VerdictsCoverFullWindows) {
  Matrix train = linalg::random_uniform_matrix(128, 4, 3, -1.0, 1.0);
  AgnosticOptions options;
  options.window = 16;
  AgnosticDetector detector = AgnosticDetector::fit(train, options);
  auto verdicts = detector.detect(linalg::random_uniform_matrix(50, 4, 4));
  EXPECT_EQ(verdicts.size(), 3u);  // 50 / 16 full windows.
  EXPECT_EQ(verdicts[2].window_start, 32u);
}

TEST(PcaBaseline, ReconstructionBeatsOrMatchesNmfAtEqualRank) {
  auto synthetic =
      vn2::testing::make_synthetic(vn2::testing::standard_causes(), 200, 8);
  // PCA works on the raw (signed) exception states.
  PcaDecomposition pca_result = pca_decompose(synthetic.states, 5);
  EXPECT_GT(pca_result.approximation_accuracy, 0.0);
  EXPECT_GT(pca_result.negative_fraction, 0.0);  // Sign-indefinite factors.
}

TEST(PcaBaseline, FactorStats) {
  // One perfectly concentrated non-negative row.
  Matrix sparse(1, 10, 0.0);
  sparse(0, 3) = 5.0;
  FactorStats stats = factor_stats(sparse);
  EXPECT_DOUBLE_EQ(stats.component_concentration, 1.0);
  EXPECT_DOUBLE_EQ(stats.negative_fraction, 0.0);

  Matrix dense(1, 10, -1.0);
  FactorStats dense_stats = factor_stats(dense);
  EXPECT_DOUBLE_EQ(dense_stats.negative_fraction, 1.0);
  EXPECT_DOUBLE_EQ(dense_stats.component_concentration, 0.5);
  EXPECT_DOUBLE_EQ(factor_stats(Matrix{}).component_concentration, 0.0);
}

}  // namespace
}  // namespace vn2::baselines
