// Table I: which metrics respond to which hazard event. Each hazard is
// injected in isolation into an otherwise healthy network; the per-metric
// deviation (σ units, against an encoder fit on the clean run) during the
// fault window is reported. The hazard's Table-I signature metrics should
// lead the response.
#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/encoder.hpp"

using namespace vn2;
using metrics::MetricId;

namespace {

struct HazardCase {
  const char* name;
  wsn::FaultCommand command;
  metrics::HazardEvent hazard;
  /// Grid spacing for this case. 18 m (multi-hop) by default; contention
  /// needs the dense 8 m grid, where packets still get through the jam and
  /// the backoff/retransmit signature reaches the sink.
  double spacing_m = 18.0;
};

std::vector<HazardCase> make_cases() {
  std::vector<HazardCase> cases;
  auto add = [&](const char* name, wsn::FaultCommand cmd,
                 double spacing = 18.0) {
    cases.push_back({name, cmd, wsn::hazard_of(cmd.type), spacing});
  };

  wsn::FaultCommand cmd;

  cmd = {};
  cmd.type = wsn::FaultCommand::Type::kTemperatureSpike;
  cmd.center = {16.0, 16.0};
  cmd.radius_m = 100.0;
  cmd.start = 2400.0;
  cmd.end = 4800.0;
  cmd.magnitude = 25.0;
  add("unstable clock (temperature)", cmd);

  cmd = {};
  cmd.type = wsn::FaultCommand::Type::kBatteryDrain;
  cmd.node = 5;
  cmd.start = 2400.0;
  cmd.end = 4800.0;
  // Strong enough for an unmistakable voltage sag each epoch, weak enough
  // that the node keeps reporting (a node that browns out before its next
  // report dies silently and shows nothing).
  cmd.magnitude = 2000.0;
  add("low voltage (battery drain)", cmd);

  cmd = {};
  cmd.type = wsn::FaultCommand::Type::kNoiseRise;
  cmd.center = {16.0, 16.0};
  cmd.radius_m = 100.0;
  cmd.start = 2400.0;
  cmd.end = 4800.0;
  cmd.magnitude = 10.0;
  add("rising noise", cmd);

  cmd = {};
  cmd.type = wsn::FaultCommand::Type::kCongestionBurst;
  cmd.center = {16.0, 16.0};
  cmd.radius_m = 60.0;
  cmd.start = 2400.0;
  cmd.end = 3600.0;
  cmd.magnitude = 2.0;
  add("queue overflow (congestion)", cmd);

  cmd = {};
  cmd.type = wsn::FaultCommand::Type::kLinkDegradation;
  cmd.node = 3;
  cmd.peer = 0;
  cmd.start = 2400.0;
  cmd.end = 4800.0;
  cmd.magnitude = 25.0;
  add("link degradation", cmd);

  cmd = {};
  cmd.type = wsn::FaultCommand::Type::kForcedLoop;
  cmd.node = 4;
  cmd.start = 2400.0;
  cmd.end = 3600.0;
  add("routing loop", cmd);

  cmd = {};
  cmd.type = wsn::FaultCommand::Type::kJammer;
  cmd.center = {16.0, 16.0};
  cmd.radius_m = 80.0;
  cmd.start = 2400.0;
  cmd.end = 4800.0;
  cmd.magnitude = 0.85;
  add("contention (jammer)", cmd, 8.0);

  cmd = {};
  cmd.type = wsn::FaultCommand::Type::kNodeFailure;
  cmd.node = 6;
  cmd.start = 2400.0;
  add("node failure", cmd);

  cmd = {};
  cmd.type = wsn::FaultCommand::Type::kNodeReboot;
  cmd.node = 7;
  cmd.start = 2400.0;
  add("node reboot", cmd);

  return cases;
}

}  // namespace

int main() {
  bench::section("Table I — hazard events and the metrics that respond");

  // Clean reference runs (one per grid spacing): fit the deviation encoder
  // on healthy states. The 18 m spacing makes the grid genuinely multi-hop,
  // so relay-dependent hazards (loops, failures) have children to manifest
  // on.
  std::map<double, std::pair<bench::RunData, core::StateEncoder>> clean_runs;
  auto clean_for = [&](double spacing)
      -> std::pair<bench::RunData, core::StateEncoder>& {
    auto it = clean_runs.find(spacing);
    if (it == clean_runs.end()) {
      bench::RunData run = bench::run_scenario(
          scenario::tiny(16, 5400.0, 99, spacing), 1200.0);
      core::StateEncoder encoder =
          core::StateEncoder::fit(trace::states_matrix(run.states));
      it = clean_runs
               .emplace(spacing,
                        std::make_pair(std::move(run), std::move(encoder)))
               .first;
    }
    return it->second;
  };

  std::size_t signature_hits = 0;
  std::vector<HazardCase> cases = make_cases();
  for (const HazardCase& c : cases) {
    auto& [clean_data, encoder] = clean_for(c.spacing_m);
    scenario::ScenarioBundle bundle =
        scenario::tiny(16, 5400.0, 99, c.spacing_m);
    bundle.faults.push_back(c.command);
    bench::RunData data = bench::run_scenario(bundle, 1200.0);

    // Per-metric excess activation: the number of window states whose
    // deviation exceeds 3σ, minus the same count on the clean reference run
    // — robust against both network-wide dilution (a mean would wash out a
    // single-node response) and the encoder's clip (a max would tie at the
    // clip value).
    const double window_end =
        c.command.end > 0.0 ? c.command.end + 600.0 : c.command.start + 1500.0;
    auto activations = [&](const bench::RunData& run) {
      linalg::Vector counts(metrics::kMetricCount);
      for (const trace::StateVector& state : run.states) {
        if (state.time < c.command.start || state.time > window_end) continue;
        const linalg::Vector profile =
            core::StateEncoder::decode_signed(encoder.encode(state.delta));
        for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
          if (std::abs(profile[m]) >= 3.0) counts[m] += 1.0;
      }
      return counts;
    };
    linalg::Vector response = activations(data);
    response -= activations(clean_data);

    // Top responding metrics.
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
      ranked.emplace_back(response[m], m);
    std::sort(ranked.rbegin(), ranked.rend());

    bench::subsection(c.name);
    std::printf("  top responding metrics:");
    for (std::size_t k = 0; k < 6; ++k)
      std::printf(" %s(%.1f)",
                  std::string(metrics::short_name(
                                  metrics::metric_at(ranked[k].second)))
                      .c_str(),
                  ranked[k].first);
    std::printf("\n");

    // Does a Table-I signature metric appear among the top responders?
    // Top-12 of 43: regional hazards legitimately move many of the 20
    // neighbor RSSI/ETX slots, which crowds the very top of the ranking.
    const metrics::HazardInfo& info = metrics::hazard_info(c.hazard);
    bool hit = false;
    for (std::size_t k = 0; k < 12 && !hit; ++k)
      for (MetricId id : info.signature_metrics)
        if (metrics::index_of(id) == ranked[k].second) hit = true;
    std::printf("  signature (%s) in top-12: %s\n",
                std::string(info.name).c_str(), hit ? "yes" : "NO");
    if (hit) ++signature_hits;
  }

  std::printf("\n%zu/%zu hazards show their Table-I signature\n",
              signature_hits, cases.size());
  bench::shape_check(signature_hits >= cases.size() - 2,
                     "nearly all hazards light up their signature metrics");
  return bench::shape_summary();
}
