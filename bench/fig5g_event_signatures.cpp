// Fig. 5(g): correlated-strength distribution over the Ψ rows for the two
// manually introduced event classes — node failure vs node reboot. The
// paper's ground truth: failures activate the failure-flavored rows; reboots
// additionally activate the join/new-neighbor rows, so the two profiles are
// distinguishable.
#include <cstdio>

#include "bench_common.hpp"
#include "core/inference.hpp"

using namespace vn2;

namespace {

/// Mean strength profile of states inside any of the given fault windows.
linalg::Vector profile_for(const core::Vn2Tool& tool,
                           const std::vector<trace::StateVector>& states,
                           const std::vector<wsn::InjectedFault>& faults,
                           wsn::FaultCommand::Type type, wsn::Time tail) {
  linalg::Matrix inside;
  for (const trace::StateVector& state : states) {
    for (const wsn::InjectedFault& fault : faults) {
      if (fault.command.type != type) continue;
      if (state.time >= fault.command.start &&
          state.time <= fault.command.start + tail) {
        inside.append_row(state.delta.span());
        break;
      }
    }
  }
  std::printf("  %zu states in %s windows\n", inside.rows(),
              type == wsn::FaultCommand::Type::kNodeFailure ? "failure"
                                                            : "reboot");
  if (inside.rows() == 0) return linalg::Vector(tool.model().rank());
  return core::mean_strength_profile(
      core::correlation_strengths(tool.model(), inside));
}

}  // namespace

int main() {
  bench::section("Fig 5(g) — root-cause distribution: failure vs reboot");
  bench::RunData data =
      bench::testbed_run(scenario::RemovalPattern::kExpansive);
  core::Vn2Tool tool = bench::train_testbed_model(data.states);

  // States within 6 minutes (two report epochs) of each event.
  const wsn::Time tail = 360.0;
  const linalg::Vector failure_profile =
      profile_for(tool, data.states, data.result.ground_truth,
                  wsn::FaultCommand::Type::kNodeFailure, tail);
  const linalg::Vector reboot_profile =
      profile_for(tool, data.states, data.result.ground_truth,
                  wsn::FaultCommand::Type::kNodeReboot, tail);

  bench::subsection("correlated strength per psi row");
  std::printf("%8s %16s %16s\n", "row", "node failure", "node reboot");
  for (std::size_t r = 0; r < tool.model().rank(); ++r)
    std::printf("%8zu %16.4f %16.4f\n", r, failure_profile[r],
                reboot_profile[r]);

  std::vector<double> failure_values(failure_profile.begin(),
                                     failure_profile.end());
  std::vector<double> reboot_values(reboot_profile.begin(),
                                    reboot_profile.end());
  bench::ascii_plot("failure profile", failure_values, 6);
  bench::ascii_plot("reboot profile", reboot_values, 6);

  // Both event classes produce signal.
  bench::shape_check(linalg::sum(failure_profile) > 0.0,
                     "failure windows produce correlated strength");
  bench::shape_check(linalg::sum(reboot_profile) > 0.0,
                     "reboot windows produce correlated strength");

  // The two distributions are distinguishable but share structure (both
  // disturb routing): correlated, yet not identical.
  const double correlation =
      core::profile_correlation(failure_profile, reboot_profile);
  std::printf("\nfailure/reboot profile correlation: %.3f\n", correlation);
  bench::shape_check(correlation < 0.98,
                     "failure and reboot profiles are distinguishable");

  // Reboot activates some rows substantially more than failures do (the
  // paper: "if Ψ4 and Ψ10 show variations at the same time, the most likely
  // reason is a reboot"). NMF row allocation is permutation-arbitrary, so
  // the claim is checked in relative form: a row carrying real reboot mass
  // whose reboot strength clearly exceeds its failure strength.
  const double reboot_max = linalg::norm_inf(reboot_profile);
  double best_excess = 0.0;
  for (std::size_t r = 0; r < tool.model().rank(); ++r) {
    if (reboot_profile[r] < 0.25 * reboot_max) continue;
    if (failure_profile[r] > 0.0)
      best_excess =
          std::max(best_excess, reboot_profile[r] / failure_profile[r]);
  }
  std::printf("largest reboot/failure strength ratio on a substantial row: "
              "%.2f\n",
              best_excess);
  bench::shape_check(best_excess >= 1.3,
                     "reboot activates rows beyond the failure signature");
  return bench::shape_summary();
}
