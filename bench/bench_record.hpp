// Bench-layer glue for the performance observatory: fills a
// benchstat::Record with provenance/environment from the harness
// environment variables, and owns the file IO that the benchstat library
// (like the telemetry library) deliberately does not do.
//
// Harness contract — all optional, all recorded verbatim:
//   VN2_GIT_SHA          commit the binary was built from
//   VN2_BENCH_TIMESTAMP  ISO-8601 stamp chosen by the harness (the bench
//                        itself never reads wall-clock time-of-day)
//   VN2_BENCH_DAYS       scenario scale shared with the figure benches
//   VN2_BENCH_REPS       samples per timed section (default 3, min 1)
#pragma once

#include <cstddef>
#include <string>

#include "benchstat/record.hpp"
#include "telemetry/sampler.hpp"

namespace vn2::bench_support {

/// Repetitions each timed section should run (VN2_BENCH_REPS, default 3).
[[nodiscard]] std::size_t bench_reps();

/// Scales a workload size by VN2_BENCH_DAYS / 7 (the experiment benches'
/// convention: 7 days = full paper scale), clamped below at `floor` so a
/// quick run still exercises the real code paths. Unset → `base`.
[[nodiscard]] std::size_t scaled_size(std::size_t base, std::size_t floor);

/// A record pre-filled with schema version, provenance, and environment;
/// the bench fills scale/cases/checks and calls write_record_file.
[[nodiscard]] benchstat::Record make_record(std::string bench,
                                            std::string workload);

/// Samples process resources + workspace-allocation counters, embeds the
/// telemetry snapshot, writes the record to `path`, and prints the usual
/// "bench-record: path" breadcrumb. Returns false when the file cannot
/// be opened.
bool write_record_file(const char* path, benchstat::Record& record);

/// Converts a stopped (or still-running) sampler's captured window into
/// per-case resources: peak RSS plus an RSS series downsampled to at most
/// `max_points` evenly spaced samples, timestamped relative to the first.
/// With telemetry compiled out the sampler never ran and the result has
/// sampled == false, matching the record-level "unknown" convention.
[[nodiscard]] benchstat::CaseResources case_resources(
    const telemetry::ResourceSampler& sampler, std::size_t max_points = 32);

}  // namespace vn2::bench_support
