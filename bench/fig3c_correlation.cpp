// Fig. 3(c): the correlation between each detected exception and the root
// cause vectors of Ψ. In the paper's scatter each exception row shows points
// in only a few of the 25 Ψ rows — the sparsity that Algorithm 2 and the
// Occam's-razor rank choice are designed for.
#include <cstdio>

#include "bench_common.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"

using namespace vn2;

int main() {
  bench::section("Fig 3(c) — exception vs root-cause correlation (r=25)");
  bench::RunData data = bench::citysee_run();

  core::TrainingOptions options;
  options.rank = 25;  // The paper's CitySee compression factor.
  options.nmf.max_iterations = 300;
  const core::TrainingReport report =
      core::train(trace::states_matrix(data.states), options);
  std::printf("trained on %zu exception states (of %zu)\n",
              report.exception_states, report.training_states);

  // Correlation strengths of every exception against Ψ.
  linalg::Matrix exceptions;
  const linalg::Matrix raw = trace::states_matrix(data.states);
  for (std::size_t row : report.detection.exception_rows)
    exceptions.append_row(raw.row(row));
  const linalg::Matrix w =
      core::correlation_strengths(report.model, exceptions);

  // Sparsity statistics: how many Ψ rows does each exception activate?
  std::vector<std::size_t> active_histogram(report.model.rank() + 1, 0);
  double total_active = 0.0;
  for (std::size_t i = 0; i < w.rows(); ++i) {
    double top = 0.0;
    for (std::size_t r = 0; r < w.cols(); ++r)
      top = std::max(top, w(i, r));
    std::size_t active = 0;
    for (std::size_t r = 0; r < w.cols(); ++r)
      if (w(i, r) > 0.1 * top && w(i, r) > 1e-9) ++active;
    active_histogram[active]++;
    total_active += static_cast<double>(active);
  }
  const double mean_active = total_active / static_cast<double>(w.rows());

  bench::subsection("active root causes per exception (strength > 10% of top)");
  for (std::size_t k = 0; k <= report.model.rank(); ++k) {
    if (active_histogram[k] == 0) continue;
    std::printf("  %2zu causes: %5zu exceptions\n", k, active_histogram[k]);
  }
  std::printf("mean active causes per exception: %.2f of %zu\n", mean_active,
              report.model.rank());

  // Per-row usage (which Ψ rows explain the trace, the scatter's columns).
  bench::subsection("per-row total correlation strength");
  std::vector<std::string> labels;
  std::vector<double> usage;
  for (std::size_t r = 0; r < w.cols(); ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i) sum += w(i, r);
    labels.push_back("psi[" + std::to_string(r) + "]");
    usage.push_back(sum);
  }
  bench::ascii_bars(labels, usage);

  bench::shape_check(mean_active <= 0.35 * static_cast<double>(report.model.rank()),
                     "each exception correlates with a small subset of rows");
  bench::shape_check(w.rows() > 100, "enough exceptions for the scatter");
  std::size_t used_rows = 0;
  for (double u : usage)
    if (u > 0.01 * usage[0] + 1e-9) ++used_rows;
  bench::shape_check(used_rows >= report.model.rank() / 2,
                     "the representative matrix is broadly used, not one row");
  return bench::shape_summary();
}
