// Micro-benchmarks: simulator throughput — wall time per simulated hour at
// testbed and field scales, and the cost of the trace pipeline. After the
// suites run, a timed tiny-scenario case plus the aggregated telemetry
// snapshot (events, packets, drops across every benchmarked run) land in
// BENCH_simulator.json as an observatory record.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_record.hpp"
#include "benchstat/record.hpp"
#include "scenario/scenario.hpp"
#include "telemetry_support.hpp"
#include "trace/trace.hpp"

namespace {

using vn2::scenario::CityseeParams;
using vn2::scenario::ScenarioBundle;

void BM_SimulateTinyHour(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ScenarioBundle bundle = vn2::scenario::tiny(nodes, 3600.0, 11);
    auto result = bundle.make_simulator().run();
    benchmark::DoNotOptimize(result.sink_log.size());
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SimulateTinyHour)->Arg(9)->Arg(25)->Arg(45)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateCityseeHour(benchmark::State& state) {
  for (auto _ : state) {
    CityseeParams params;
    params.days = 1.0 / 24.0;
    params.background_hazards = false;
    ScenarioBundle bundle = vn2::scenario::citysee_field(params);
    auto result = bundle.make_simulator().run();
    benchmark::DoNotOptimize(result.sink_log.size());
  }
  state.SetLabel("286 nodes, 1 simulated hour");
}
BENCHMARK(BM_SimulateCityseeHour)->Unit(benchmark::kMillisecond);

void BM_TracePipeline(benchmark::State& state) {
  ScenarioBundle bundle = vn2::scenario::tiny(25, 7200.0, 13);
  auto result = bundle.make_simulator().run();
  for (auto _ : state) {
    auto trace = vn2::trace::build_trace(result);
    auto states = vn2::trace::extract_states(trace);
    benchmark::DoNotOptimize(states.size());
  }
  state.SetLabel(std::to_string(result.sink_log.size()) + " packets");
}
BENCHMARK(BM_TracePipeline)->Unit(benchmark::kMillisecond);

double seconds_since(std::chrono::steady_clock::time_point start) {
  // vn2-lint: allow(nondeterminism-clock)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Repeated timed samples independent of the google-benchmark suites, so the
// record carries its own noise estimate: one simulated hour of the 25-node
// tiny scenario plus the trace pipeline over its packet log.
void write_report(const char* json_path) {
  const std::size_t reps = vn2::bench_support::bench_reps();
  std::vector<double> sim_samples, trace_samples;
  std::size_t packets = 0;
  // One sampler per case: start/stop cycles append into the same ring,
  // so each case's series covers all of its reps and nothing else.
  vn2::telemetry::ResourceSampler sim_sampler, trace_sampler;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // vn2-lint: allow(nondeterminism-clock)
    auto start = std::chrono::steady_clock::now();
    sim_sampler.start();
    ScenarioBundle bundle = vn2::scenario::tiny(25, 3600.0, 11);
    auto result = bundle.make_simulator().run();
    sim_sampler.stop();
    sim_samples.push_back(seconds_since(start));
    packets = result.sink_log.size();

    // vn2-lint: allow(nondeterminism-clock)
    start = std::chrono::steady_clock::now();
    trace_sampler.start();
    auto trace = vn2::trace::build_trace(result);
    auto states = vn2::trace::extract_states(trace);
    benchmark::DoNotOptimize(states.size());
    trace_sampler.stop();
    trace_samples.push_back(seconds_since(start));
  }
  std::printf("simulate_tiny_hour: %.3fs, trace_pipeline: %.3fs "
              "(medians of %zu, %zu packets)\n",
              vn2::benchstat::summarize(sim_samples).median,
              vn2::benchstat::summarize(trace_samples).median, reps, packets);

  auto record = vn2::bench_support::make_record(
      "simulator", "tiny 25-node scenario, 1 simulated hour + trace build");
  record.scale = {{"nodes", 25.0},
                  {"sim_seconds", 3600.0},
                  {"packets", static_cast<double>(packets)}};
  record.cases.push_back(
      {"simulate_tiny_hour",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    sim_samples)},
       vn2::bench_support::case_resources(sim_sampler)});
  record.cases.push_back(
      {"trace_pipeline",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    trace_samples)},
       vn2::bench_support::case_resources(trace_sampler)});
  vn2::bench_support::write_record_file(json_path, record);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_report("BENCH_simulator.json");
  return 0;
}
