// Micro-benchmarks: simulator throughput — wall time per simulated hour at
// testbed and field scales, and the cost of the trace pipeline.
#include <benchmark/benchmark.h>

#include "scenario/scenario.hpp"
#include "trace/trace.hpp"

namespace {

using vn2::scenario::CityseeParams;
using vn2::scenario::ScenarioBundle;

void BM_SimulateTinyHour(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ScenarioBundle bundle = vn2::scenario::tiny(nodes, 3600.0, 11);
    auto result = bundle.make_simulator().run();
    benchmark::DoNotOptimize(result.sink_log.size());
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SimulateTinyHour)->Arg(9)->Arg(25)->Arg(45)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateCityseeHour(benchmark::State& state) {
  for (auto _ : state) {
    CityseeParams params;
    params.days = 1.0 / 24.0;
    params.background_hazards = false;
    ScenarioBundle bundle = vn2::scenario::citysee_field(params);
    auto result = bundle.make_simulator().run();
    benchmark::DoNotOptimize(result.sink_log.size());
  }
  state.SetLabel("286 nodes, 1 simulated hour");
}
BENCHMARK(BM_SimulateCityseeHour)->Unit(benchmark::kMillisecond);

void BM_TracePipeline(benchmark::State& state) {
  ScenarioBundle bundle = vn2::scenario::tiny(25, 7200.0, 13);
  auto result = bundle.make_simulator().run();
  for (auto _ : state) {
    auto trace = vn2::trace::build_trace(result);
    auto states = vn2::trace::extract_states(trace);
    benchmark::DoNotOptimize(states.size());
  }
  state.SetLabel(std::to_string(result.sink_log.size()) + " packets");
}
BENCHMARK(BM_TracePipeline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
