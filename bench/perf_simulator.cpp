// Micro-benchmarks: simulator throughput — wall time per simulated hour at
// testbed and field scales, and the cost of the trace pipeline. After the
// suites run, the aggregated telemetry snapshot (events, packets, drops
// across every benchmarked run) lands in BENCH_simulator.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "scenario/scenario.hpp"
#include "telemetry_support.hpp"
#include "trace/trace.hpp"

namespace {

using vn2::scenario::CityseeParams;
using vn2::scenario::ScenarioBundle;

void BM_SimulateTinyHour(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ScenarioBundle bundle = vn2::scenario::tiny(nodes, 3600.0, 11);
    auto result = bundle.make_simulator().run();
    benchmark::DoNotOptimize(result.sink_log.size());
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SimulateTinyHour)->Arg(9)->Arg(25)->Arg(45)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateCityseeHour(benchmark::State& state) {
  for (auto _ : state) {
    CityseeParams params;
    params.days = 1.0 / 24.0;
    params.background_hazards = false;
    ScenarioBundle bundle = vn2::scenario::citysee_field(params);
    auto result = bundle.make_simulator().run();
    benchmark::DoNotOptimize(result.sink_log.size());
  }
  state.SetLabel("286 nodes, 1 simulated hour");
}
BENCHMARK(BM_SimulateCityseeHour)->Unit(benchmark::kMillisecond);

void BM_TracePipeline(benchmark::State& state) {
  ScenarioBundle bundle = vn2::scenario::tiny(25, 7200.0, 13);
  auto result = bundle.make_simulator().run();
  for (auto _ : state) {
    auto trace = vn2::trace::build_trace(result);
    auto states = vn2::trace::extract_states(trace);
    benchmark::DoNotOptimize(states.size());
  }
  state.SetLabel(std::to_string(result.sink_log.size()) + " packets");
}
BENCHMARK(BM_TracePipeline)->Unit(benchmark::kMillisecond);

void write_telemetry_report(const char* json_path) {
  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"simulator\",\n"
               "  \"telemetry\": %s\n"
               "}\n",
               vn2::bench_support::telemetry_snapshot_json().c_str());
  std::fclose(out);
  std::printf("telemetry report -> %s\n", json_path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_telemetry_report("BENCH_simulator.json");
  return 0;
}
