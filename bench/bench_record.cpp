#include "bench_record.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "linalg/cpu_features.hpp"
#include "telemetry/resource.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry_support.hpp"

namespace vn2::bench_support {

namespace {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end == value ? fallback : parsed;
}

std::string env_string(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value == nullptr || *value == '\0' ? fallback : value;
}

}  // namespace

std::size_t bench_reps() {
  const double reps = env_double("VN2_BENCH_REPS", 3.0);
  return reps < 1.0 ? 1 : static_cast<std::size_t>(reps);
}

std::size_t scaled_size(std::size_t base, std::size_t floor) {
  const double days = env_double("VN2_BENCH_DAYS", 7.0);
  if (days <= 0.0 || days >= 7.0) return base;
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(base) * days / 7.0);
  return std::max(scaled, floor);
}

benchstat::Record make_record(std::string bench, std::string workload) {
  benchstat::Record record;
  record.bench = std::move(bench);
  record.workload = std::move(workload);
  record.provenance.git_sha = env_string("VN2_GIT_SHA", "unknown");
  record.provenance.timestamp = env_string("VN2_BENCH_TIMESTAMP", "");
  record.provenance.bench_days = env_double("VN2_BENCH_DAYS", 0.0);
  record.provenance.reps = bench_reps();
  record.environment.cpu_features = linalg::cpu_features_summary();
  record.environment.hardware_concurrency =
      std::thread::hardware_concurrency();
  record.environment.threads = std::thread::hardware_concurrency();
  record.environment.telemetry_compiled = telemetry::kCompiledIn;
  return record;
}

bool write_record_file(const char* path, benchstat::Record& record) {
  const telemetry::ResourceUsage usage = telemetry::sample_resources();
  record.resources.peak_rss_bytes = usage.peak_rss_bytes;
  record.resources.current_rss_bytes = usage.current_rss_bytes;
  record.resources.cpu_user_ns = usage.cpu_user_ns;
  record.resources.cpu_system_ns = usage.cpu_system_ns;
  // Workspace-allocation counters make heap churn on the hot paths
  // visible across runs (warm workspaces allocate strictly less than
  // cold ones); with telemetry compiled out the snapshot is empty and
  // the fields stay 0 ("unknown").
  const telemetry::Snapshot snapshot =
      telemetry::Registry::global().snapshot();
  record.resources.alloc_count = 0;
  record.resources.alloc_bytes = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.size() > 9 && name.rfind(".reallocs") == name.size() - 9)
      record.resources.alloc_count += value;
    if (name.size() > 12 && name.rfind(".alloc_bytes") == name.size() - 12)
      record.resources.alloc_bytes += value;
  }
  record.telemetry_json = telemetry_snapshot_json();
  telemetry::StringSink sink;
  benchstat::write_record(sink, record);
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench-record: cannot open %s\n", path);
    return false;
  }
  std::fputs(sink.str().c_str(), out);
  std::fclose(out);
  std::printf("bench-record: %s\n", path);
  return true;
}

benchstat::CaseResources case_resources(
    const telemetry::ResourceSampler& sampler, std::size_t max_points) {
  benchstat::CaseResources resources;
  const std::vector<telemetry::ResourceSample> series = sampler.series();
  if (series.empty()) return resources;  // Compiled out or never started.
  resources.sampled = true;
  resources.peak_rss_bytes = sampler.peak_rss_bytes();
  resources.interval_ms = sampler.options().interval_ms;
  // Downsample by striding so the record stays compact however long the
  // case ran; first and last samples are always kept.
  const std::size_t points = std::min(std::max<std::size_t>(max_points, 2),
                                      series.size());
  const std::uint64_t t0 = series.front().t_ns;
  for (std::size_t p = 0; p < points; ++p) {
    const std::size_t i = p == points - 1
                              ? series.size() - 1
                              : p * series.size() / points;
    resources.rss_series.push_back(benchstat::RssPoint{
        (series[i].t_ns - t0) / 1000000, series[i].current_rss_bytes});
  }
  return resources;
}

}  // namespace vn2::bench_support
