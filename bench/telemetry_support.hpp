// Telemetry glue for the perf micro-benches: every BENCH_*.json embeds
// the registry snapshot, so a perf trajectory carries its own counters
// (iterations, solves, tasks) alongside the wall-clock numbers.
#pragma once

#include <string>

#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::bench_support {

/// The global-registry snapshot as a JSON object with no trailing
/// newline, ready to embed as a field value in a BENCH_*.json report.
inline std::string telemetry_snapshot_json() {
  telemetry::StringSink sink;
  telemetry::write_json(sink, telemetry::Registry::global().snapshot());
  std::string json = sink.str();
  while (!json.empty() && (json.back() == '\n' || json.back() == ' '))
    json.pop_back();
  return json;
}

}  // namespace vn2::bench_support
