#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vn2::bench {

namespace {
std::size_t g_checks = 0;
std::size_t g_passed = 0;
}  // namespace

RunData run_scenario(const scenario::ScenarioBundle& bundle,
                     wsn::Time warmup) {
  RunData data;
  wsn::Simulator sim = bundle.make_simulator();
  data.result = sim.run();
  data.trace = trace::build_trace(data.result);
  data.states = trace::extract_states(data.trace);
  if (warmup > 0.0) {
    std::erase_if(data.states, [warmup](const trace::StateVector& s) {
      return s.time < warmup;
    });
  }
  return data;
}

double bench_days(double fallback) {
  if (const char* env = std::getenv("VN2_BENCH_DAYS")) {
    const double days = std::atof(env);
    if (days > 0.0) return days;
  }
  return fallback;
}

RunData citysee_run() {
  scenario::CityseeParams params;
  params.days = bench_days();
  std::printf("[setup] CitySee-scale run: %zu nodes, %.1f days, report every "
              "%.0f s\n",
              params.node_count, params.days, params.report_period);
  RunData data = run_scenario(scenario::citysee_field(params));
  std::printf("[setup] sink received %zu packets, PRR %.3f, %zu states\n",
              data.result.sink_log.size(), trace::overall_prr(data.result),
              data.states.size());
  return data;
}

RunData testbed_run(scenario::RemovalPattern pattern, std::uint64_t seed) {
  scenario::TestbedParams params;
  params.pattern = pattern;
  params.seed = seed;
  std::printf("[setup] testbed run: 9x5 grid + sink, 2 h, %s removals\n",
              pattern == scenario::RemovalPattern::kLocal ? "local"
                                                          : "expansive");
  // Short warmup: the 2-hour trace is precious and the grid forms fast.
  RunData data = run_scenario(scenario::testbed(params), 400.0);
  std::printf("[setup] sink received %zu packets, %zu states\n",
              data.result.sink_log.size(), data.states.size());
  return data;
}

std::pair<std::vector<trace::StateVector>, std::vector<trace::StateVector>>
split_states(const std::vector<trace::StateVector>& states, wsn::Time t) {
  std::pair<std::vector<trace::StateVector>, std::vector<trace::StateVector>>
      out;
  for (const trace::StateVector& s : states)
    (s.time < t ? out.first : out.second).push_back(s);
  return out;
}

core::Vn2Tool train_testbed_model(
    const std::vector<trace::StateVector>& states) {
  core::Vn2Tool::Options options;
  // Paper §V-A: the testbed training set is small, so exception extraction
  // is skipped and everything is compressed together at r = 10.
  options.training.rank = 10;
  options.training.skip_exception_extraction = true;
  options.training.nmf.max_iterations = 400;
  return core::Vn2Tool::train_from_states(states, options);
}

void section(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void subsection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

void print_series(const std::string& name, const std::vector<double>& values,
                  int precision) {
  std::printf("%-24s", name.c_str());
  for (double v : values) std::printf(" %.*f", precision, v);
  std::printf("\n");
}

void ascii_plot(const std::string& label, const std::vector<double>& values,
                std::size_t height) {
  if (values.empty() || height == 0) return;
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo;
  std::printf("%s  [min=%.3g max=%.3g]\n", label.c_str(), lo, hi);
  for (std::size_t level = height; level-- > 0;) {
    std::printf("  |");
    for (double v : values) {
      const double normalized = range > 0.0 ? (v - lo) / range : 0.5;
      const auto bucket = static_cast<std::size_t>(
          std::min(normalized * static_cast<double>(height),
                   static_cast<double>(height) - 1e-9));
      std::putchar(bucket >= level ? '#' : (level == 0 ? '.' : ' '));
    }
    std::printf("|\n");
  }
}

void ascii_bars(const std::vector<std::string>& labels,
                const std::vector<double>& values, std::size_t width) {
  double hi = 0.0;
  for (double v : values) hi = std::max(hi, v);
  for (std::size_t i = 0; i < values.size() && i < labels.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        hi > 0.0 ? values[i] / hi * static_cast<double>(width) : 0.0);
    std::printf("  %-18s %8.4f |", labels[i].c_str(), values[i]);
    for (std::size_t b = 0; b < bar; ++b) std::putchar('=');
    std::printf("\n");
  }
}

void shape_check(bool ok, const std::string& message) {
  ++g_checks;
  if (ok) ++g_passed;
  std::printf("%s: %s\n", ok ? "SHAPE-PASS" : "SHAPE-CHECK", message.c_str());
}

int shape_summary() {
  std::printf("\n%zu/%zu shape checks passed\n", g_passed, g_checks);
  return g_passed == g_checks ? 0 : 1;
}

}  // namespace vn2::bench
