// Ablation: why NMF and not PCA, and how much does the Algorithm-2
// sparsification cost?
//  * PCA reconstructs at least as well at equal rank (it is the optimal
//    linear compressor), but its components are dense and sign-indefinite —
//    unusable as additive root causes.
//  * NMF components are non-negative and concentrated; sparsifying W keeps
//    most reconstruction power across retention levels.
#include <cstdio>

#include "baselines/kmeans.hpp"
#include "baselines/pca_decomposer.hpp"
#include "bench_common.hpp"
#include "core/model.hpp"
#include "nmf/nmf_kl.hpp"
#include "nmf/sparsify.hpp"

using namespace vn2;

int main() {
  bench::section("Ablation — NMF vs PCA, and sparsification retention");
  bench::RunData data = bench::citysee_run();

  // Encoded exceptions matrix (as training builds it).
  const linalg::Matrix raw = trace::states_matrix(data.states);
  const core::StateEncoder encoder = core::StateEncoder::fit(raw);
  const linalg::Matrix encoded = encoder.encode(raw);
  linalg::Matrix exceptions;
  {
    double max_score = 0.0;
    std::vector<double> scores(raw.rows());
    for (std::size_t i = 0; i < raw.rows(); ++i) {
      scores[i] = encoder.deviation_score(raw.row_vector(i));
      max_score = std::max(max_score, scores[i]);
    }
    for (std::size_t i = 0; i < raw.rows(); ++i)
      if (scores[i] / max_score >= 0.30) exceptions.append_row(encoded.row(i));
  }
  std::printf("exceptions: %zu x %zu\n", exceptions.rows(), exceptions.cols());

  bench::subsection("decomposition quality at equal rank");
  std::printf("%6s %14s %14s %12s %12s %14s %14s\n", "r", "alpha(NMF)",
              "alpha(PCA)", "neg%(NMF)", "neg%(PCA)", "conc(NMF)",
              "conc(PCA)");
  bool pca_always_tighter = true;
  bool nmf_always_nonneg = true;
  bool nmf_more_concentrated_at_25 = false;
  for (std::size_t rank : {5u, 15u, 25u, 35u}) {
    nmf::NmfOptions nmf_options;
    nmf_options.max_iterations = 300;
    nmf_options.seed = 1000 + rank;
    const nmf::NmfResult nmf_model =
        nmf::factorize(exceptions, rank, nmf_options);
    const double nmf_alpha = nmf_model.approximation_accuracy(exceptions);
    const baselines::FactorStats nmf_stats =
        baselines::factor_stats(nmf_model.psi);

    const baselines::PcaDecomposition pca_model =
        baselines::pca_decompose(exceptions, rank);

    std::printf("%6zu %14.4f %14.4f %11.1f%% %11.1f%% %14.3f %14.3f\n", rank,
                nmf_alpha, pca_model.approximation_accuracy,
                100.0 * nmf_stats.negative_fraction,
                100.0 * pca_model.negative_fraction,
                nmf_stats.component_concentration,
                pca_model.component_concentration);

    if (pca_model.approximation_accuracy > nmf_alpha * 1.02)
      pca_always_tighter = false;
    if (nmf_stats.negative_fraction > 0.0) nmf_always_nonneg = false;
    if (rank == 25 && nmf_stats.component_concentration >
                          pca_model.component_concentration)
      nmf_more_concentrated_at_25 = true;
  }

  bench::shape_check(pca_always_tighter,
                     "PCA reconstructs at least as tightly (optimal linear)");
  bench::shape_check(nmf_always_nonneg,
                     "NMF factors are non-negative (additive root causes)");
  bench::shape_check(nmf_more_concentrated_at_25,
                     "NMF components are more concentrated than PCA's at r=25");

  bench::subsection("alternative decomposers at r=25");
  {
    nmf::NmfOptions l2_options;
    l2_options.max_iterations = 300;
    const nmf::NmfResult l2 = nmf::factorize(exceptions, 25, l2_options);
    nmf::KlNmfOptions kl_options;
    kl_options.max_iterations = 300;
    const nmf::KlNmfResult kl = nmf::factorize_kl(exceptions, 25, kl_options);
    const baselines::KmeansResult clusters =
        baselines::kmeans(exceptions, 25);

    const double l2_alpha = l2.approximation_accuracy(exceptions);
    const double kl_alpha = linalg::frobenius_distance(
        exceptions, linalg::matmul(kl.w, kl.psi));
    const double km_alpha = linalg::frobenius_distance(
        exceptions,
        baselines::kmeans_reconstruct(clusters, exceptions.rows()));
    std::printf("  %-22s alpha=%.4f\n", "NMF (Euclidean)", l2_alpha);
    std::printf("  %-22s alpha=%.4f (KL objective %.1f)\n", "NMF (KL)",
                kl_alpha, kl.objective_history.empty()
                              ? 0.0
                              : kl.objective_history.back());
    std::printf("  %-22s alpha=%.4f (hard single-cause assignment)\n",
                "k-means centroids", km_alpha);

    bench::shape_check(l2_alpha < km_alpha,
                       "additive NMF reconstructs multi-cause states better "
                       "than hard clustering");
    bench::shape_check(kl_alpha < 2.5 * l2_alpha,
                       "the KL variant lands in the same quality regime");
  }

  bench::subsection("sparsification retention sweep (r=25)");
  nmf::NmfOptions nmf_options;
  nmf_options.max_iterations = 300;
  const nmf::NmfResult model = nmf::factorize(exceptions, 25, nmf_options);
  const double dense_alpha = model.approximation_accuracy(exceptions);
  std::printf("%12s %14s %14s %12s\n", "retention", "alpha", "vs dense",
              "kept entries");
  double alpha_90 = 0.0;
  for (double retention : {0.70, 0.80, 0.90, 0.95, 1.00}) {
    nmf::SparsifyOptions sparsify_options;
    sparsify_options.retained_mass = retention;
    const nmf::SparsifyResult sparse = nmf::sparsify(model.w, sparsify_options);
    const double alpha =
        nmf::approximation_accuracy(exceptions, sparse.w_sparse, model.psi);
    std::printf("%12.2f %14.4f %+13.1f%% %12zu\n", retention, alpha,
                100.0 * (alpha - dense_alpha) / dense_alpha,
                sparse.kept_entries);
    if (retention == 0.90) alpha_90 = alpha;
  }
  bench::shape_check(alpha_90 < 1.5 * dense_alpha,
                     "90% retention (the paper's choice) keeps alpha close");
  return bench::shape_summary();
}
