// Fig. 3(b): approximation accuracy α = ‖E − WΨ‖ versus the compression
// factor r, computed with the original W and with the sparsified W̄
// (Algorithm 2, 90% mass). The paper reads off: steep degradation below
// r ≈ 15, growing dense/sparse divergence past r ≈ 30, and picks r = 25.
#include <cstdio>

#include "bench_common.hpp"
#include "core/model.hpp"

using namespace vn2;

int main() {
  bench::section("Fig 3(b) — compression accuracy vs representative vectors");
  bench::RunData data = bench::citysee_run();

  // Exceptions matrix in encoded space, exactly as training builds it.
  const linalg::Matrix raw = trace::states_matrix(data.states);
  core::TrainingOptions prep;
  const core::StateEncoder encoder = core::StateEncoder::fit(raw);
  const linalg::Matrix encoded = encoder.encode(raw);
  linalg::Matrix exceptions;
  {
    std::vector<double> scores(raw.rows());
    double max_score = 0.0;
    for (std::size_t i = 0; i < raw.rows(); ++i) {
      scores[i] = encoder.deviation_score(raw.row_vector(i));
      max_score = std::max(max_score, scores[i]);
    }
    for (std::size_t i = 0; i < raw.rows(); ++i)
      if (scores[i] / max_score >= 0.30) exceptions.append_row(encoded.row(i));
  }
  std::printf("exceptions matrix: %zu x %zu\n", exceptions.rows(),
              exceptions.cols());

  std::vector<std::size_t> ranks;
  for (std::size_t r = 5; r <= 40; r += 5) ranks.push_back(r);
  nmf::RankSweepOptions sweep_options;
  sweep_options.nmf.max_iterations = 250;
  const auto sweep = nmf::rank_sweep(exceptions, ranks, sweep_options);

  bench::subsection("alpha vs r (dense W and sparse W-bar)");
  std::printf("%6s %18s %18s %12s\n", "r", "alpha(original W)",
              "alpha(sparse W)", "gap");
  std::vector<double> dense, sparse;
  for (const nmf::RankPoint& p : sweep) {
    std::printf("%6zu %18.4f %18.4f %12.4f\n", p.rank, p.accuracy_original,
                p.accuracy_sparse, p.accuracy_sparse - p.accuracy_original);
    dense.push_back(p.accuracy_original);
    sparse.push_back(p.accuracy_sparse);
  }
  bench::ascii_plot("alpha dense", dense, 6);
  bench::ascii_plot("alpha sparse", sparse, 6);

  const auto choice = nmf::choose_rank(sweep);
  std::printf("\nchosen compression factor r = %zu (paper: 25)\n", choice.rank);

  // Shape checks.
  bool decreasing = true;
  for (std::size_t i = 1; i < dense.size(); ++i)
    if (dense[i] > dense[i - 1] * 1.02) decreasing = false;
  bench::shape_check(decreasing, "alpha decreases (weakly) with r");

  bool sparse_worse = true;
  for (std::size_t i = 0; i < sweep.size(); ++i)
    if (sparse[i] < dense[i] - 1e-9) sparse_worse = false;
  bench::shape_check(sparse_worse, "sparse W-bar never reconstructs better");

  // Divergence grows for large r: gap at r=40 exceeds gap at r=10.
  const double gap_small = sparse[1] - dense[1];
  const double gap_large = sparse.back() - dense.back();
  std::printf("gap at r=10: %.4f, gap at r=40: %.4f\n", gap_small, gap_large);
  bench::shape_check(gap_large > gap_small,
                     "dense/sparse divergence grows at large r");

  // Steep small-r regime: moving 5→15 buys much more than 30→40.
  const double early_gain = dense[0] - dense[2];
  const double late_gain = dense[5] - dense[7];
  std::printf("alpha gain 5->15: %.4f, 30->40: %.4f\n", early_gain, late_gain);
  bench::shape_check(early_gain > 2.0 * late_gain,
                     "alpha degrades steeply only in the small-r regime");

  bench::shape_check(choice.rank >= 10 && choice.rank <= 35,
                     "chosen r lands in the paper's teens-to-thirties band");
  return bench::shape_summary();
}
