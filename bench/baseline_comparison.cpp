// Baseline comparison — the paper's motivating claims, quantified:
//  1. single-root-cause, expert-threshold diagnosers (Sympathy-style) miss
//     concurrent faults ("a failure is a combination manifestation of
//     several root causes");
//  2. coarse outlier detectors (Agnostic-Diagnosis-style) can say *that*
//     something is wrong but not *what*.
// VN2 is scored against both on a trace with overlapping fault windows.
#include <cstdio>
#include <set>

#include "baselines/agnostic.hpp"
#include "baselines/sympathy.hpp"
#include "bench_common.hpp"
#include "core/inference.hpp"

using namespace vn2;
using metrics::HazardEvent;

namespace {

/// Two hazards active in the SAME window (loop + jammer), twice, plus a
/// node failure — the multi-cause workload. The 18 m spacing makes the grid
/// multi-hop so forced loops genuinely form; the jam is moderate so packets
/// (and therefore evidence) still reach the sink from the jammed region.
scenario::ScenarioBundle multi_fault_bundle(std::uint64_t seed) {
  scenario::ScenarioBundle bundle =
      scenario::tiny(20, 4.0 * 3600.0, seed, 18.0);
  for (wsn::Time start : {3600.0, 9000.0}) {
    wsn::FaultCommand loop;
    loop.type = wsn::FaultCommand::Type::kForcedLoop;
    loop.node = 7;
    loop.start = start;
    loop.end = start + 1800.0;
    bundle.faults.push_back(loop);

    wsn::FaultCommand jam;
    jam.type = wsn::FaultCommand::Type::kJammer;
    jam.center = {40.0, 40.0};
    jam.radius_m = 80.0;
    jam.start = start;
    jam.end = start + 1800.0;
    jam.magnitude = 0.45;
    bundle.faults.push_back(jam);
  }
  // Two failures with room to manifest before the run ends.
  for (auto [node, start] : {std::pair<wsn::NodeId, wsn::Time>{11, 7200.0},
                             {14, 11700.0}}) {
    wsn::FaultCommand fail;
    fail.type = wsn::FaultCommand::Type::kNodeFailure;
    fail.node = node;
    fail.start = start;
    bundle.faults.push_back(fail);
  }
  return bundle;
}

}  // namespace

int main() {
  bench::section("Baseline comparison — VN2 vs Sympathy-style vs AD-style");

  // Training trace: same network, its own fault history.
  bench::RunData train_data = bench::run_scenario(multi_fault_bundle(501));
  // Evaluation trace: fresh seed, fresh fault realizations.
  bench::RunData eval_data = bench::run_scenario(multi_fault_bundle(502));

  core::Vn2Tool::Options options;
  options.training.rank = 10;
  options.training.nmf.max_iterations = 400;
  core::Vn2Tool tool =
      core::Vn2Tool::train_from_states(train_data.states, options);

  core::EvalOptions eval_options;
  eval_options.window_slack = 1500.0;
  eval_options.strength_fraction = 0.25;

  // --- VN2 -------------------------------------------------------------------
  std::vector<core::Diagnosis> diagnoses;
  for (const trace::StateVector& state : eval_data.states)
    diagnoses.push_back(tool.diagnose_state(state.delta));
  const auto vn2_predictions = core::predict_hazards(
      eval_data.states, diagnoses, tool.interpretations(), eval_options);
  const core::EvalReport vn2_report = core::evaluate(
      vn2_predictions, eval_data.result.ground_truth, eval_options);

  // --- Sympathy-style ----------------------------------------------------------
  baselines::SympathyDiagnoser sympathy =
      baselines::SympathyDiagnoser::fit(trace::states_matrix(train_data.states));
  std::vector<core::HazardPrediction> sympathy_predictions;
  for (const trace::StateVector& state : eval_data.states) {
    const auto verdict = sympathy.diagnose(state.delta);
    if (verdict)
      sympathy_predictions.push_back({state.time, state.node, *verdict, 1.0});
  }
  const core::EvalReport sympathy_report = core::evaluate(
      sympathy_predictions, eval_data.result.ground_truth, eval_options);

  // --- Agnostic-Diagnosis-style ------------------------------------------------
  baselines::AgnosticOptions ad_options;
  ad_options.window = 16;
  ad_options.z_threshold = 2.0;
  baselines::AgnosticDetector detector = baselines::AgnosticDetector::fit(
      trace::states_matrix(train_data.states), ad_options);
  const auto verdicts =
      detector.detect(trace::states_matrix(eval_data.states));
  std::size_t alarms = 0;
  std::size_t alarms_in_fault_windows = 0;
  for (const baselines::AgnosticVerdict& v : verdicts) {
    if (!v.abnormal) continue;
    ++alarms;
    const trace::StateVector& state =
        eval_data.states[v.window_start + ad_options.window / 2];
    for (const wsn::InjectedFault& fault : eval_data.result.ground_truth) {
      const double end = fault.command.end > fault.command.start
                             ? fault.command.end
                             : fault.command.start + 2400.0;
      if (state.time >= fault.command.start - 1500.0 &&
          state.time <= end + 1500.0) {
        ++alarms_in_fault_windows;
        break;
      }
    }
  }

  // --- report --------------------------------------------------------------
  bench::subsection("per-hazard recall");
  std::printf("%-24s %10s %14s %10s\n", "hazard", "injected", "VN2",
              "Sympathy");
  std::set<HazardEvent> hazards;
  for (const wsn::InjectedFault& f : eval_data.result.ground_truth)
    hazards.insert(f.hazard);
  for (HazardEvent hazard : hazards) {
    const auto vn2_it = vn2_report.per_hazard.find(hazard);
    const auto sym_it = sympathy_report.per_hazard.find(hazard);
    std::printf("%-24s %10zu %14.2f %10.2f\n",
                std::string(metrics::hazard_name(hazard)).c_str(),
                vn2_it != vn2_report.per_hazard.end() ? vn2_it->second.injected
                                                      : 0,
                vn2_it != vn2_report.per_hazard.end() ? vn2_it->second.recall()
                                                      : 0.0,
                sym_it != sympathy_report.per_hazard.end()
                    ? sym_it->second.recall()
                    : 0.0);
  }
  std::printf("\n%-24s %14.2f %10.2f\n", "macro recall",
              vn2_report.macro_recall, sympathy_report.macro_recall);
  std::printf("%-24s %14.2f %10.2f\n", "macro precision",
              vn2_report.macro_precision, sympathy_report.macro_precision);
  std::printf("\nAD-style detector: %zu alarms, %zu inside fault windows — "
              "binary verdicts only, no root causes\n",
              alarms, alarms_in_fault_windows);

  // Multi-cause window: does each method name BOTH concurrent hazards?
  auto names_both = [&](const std::vector<core::HazardPrediction>& predictions,
                        wsn::Time start, wsn::Time end) {
    bool loopish = false, contentionish = false;
    for (const core::HazardPrediction& p : predictions) {
      if (p.time < start - 900.0 || p.time > end + 900.0) continue;
      const metrics::HazardClass cls = metrics::hazard_class(p.hazard);
      if (cls == metrics::HazardClass::kLoop ||
          cls == metrics::HazardClass::kQueue)
        loopish = true;
      if (cls == metrics::HazardClass::kLink) contentionish = true;
    }
    return loopish && contentionish;
  };
  std::size_t vn2_both = 0, sympathy_both = 0;
  for (wsn::Time start : {3600.0, 9000.0}) {
    if (names_both(vn2_predictions, start, start + 1800.0)) ++vn2_both;
    if (names_both(sympathy_predictions, start, start + 1800.0))
      ++sympathy_both;
  }
  std::printf("\nconcurrent loop+jam windows where both causes were named: "
              "VN2 %zu/2, Sympathy %zu/2\n",
              vn2_both, sympathy_both);

  bench::shape_check(vn2_report.macro_recall >= sympathy_report.macro_recall,
                     "VN2 recall >= single-cause decision tree");
  bench::shape_check(vn2_both >= sympathy_both && vn2_both >= 1,
                     "VN2 names multiple concurrent causes at least as often");
  bench::shape_check(!vn2_predictions.empty(),
                     "VN2 produces explanations (AD-style gives none)");
  return bench::shape_summary();
}
