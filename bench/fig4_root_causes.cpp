// Fig. 4: example rows of the representative matrix Ψ25×43, in the paper's
// three families — (a) physical/C1 metrics, (b) neighbor RSSI/ETX link
// quality, (c) protocol counters. Rows are identified by dominant-metric
// family (NMF row order is permutation-arbitrary under random init).
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/interpretation.hpp"
#include "core/model.hpp"

using namespace vn2;
using metrics::MetricFamily;

namespace {

/// Paper's Fig. 4 grouping of our eight metric families.
enum class Fig4Family { kPhysical, kLinkQuality, kCounters };

Fig4Family fig4_family(MetricFamily family) {
  switch (family) {
    case MetricFamily::kEnvironment:
    case MetricFamily::kEnergy:
      return Fig4Family::kPhysical;
    case MetricFamily::kLinkQuality:
      return Fig4Family::kLinkQuality;
    default:
      return Fig4Family::kCounters;
  }
}

const char* fig4_name(Fig4Family family) {
  switch (family) {
    case Fig4Family::kPhysical: return "physical factors (C1)";
    case Fig4Family::kLinkQuality: return "link quality (RSSI/ETX)";
    case Fig4Family::kCounters: return "protocol counters (C3)";
  }
  return "?";
}

}  // namespace

int main() {
  bench::section("Fig 4 — representative matrix features by family");
  bench::RunData data = bench::citysee_run();

  core::TrainingOptions options;
  options.rank = 25;
  options.nmf.max_iterations = 300;
  const core::TrainingReport report =
      core::train(trace::states_matrix(data.states), options);
  const auto interpretations = core::interpret(report.model.psi());

  std::map<Fig4Family, std::vector<std::size_t>> rows_by_family;
  for (const core::RootCauseInterpretation& interp : interpretations) {
    if (interp.dominant_metrics.empty()) continue;
    rows_by_family[fig4_family(interp.dominant_family)].push_back(interp.row);
  }

  for (Fig4Family family : {Fig4Family::kPhysical, Fig4Family::kLinkQuality,
                            Fig4Family::kCounters}) {
    bench::subsection(fig4_name(family));
    const auto& rows = rows_by_family[family];
    std::printf("%zu of %zu psi rows in this family\n", rows.size(),
                interpretations.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(2, rows.size()); ++i) {
      const std::size_t row = rows[i];
      const linalg::Vector profile = report.model.root_cause_profile(row);
      std::vector<double> values(profile.begin(), profile.end());
      bench::ascii_plot("psi[" + std::to_string(row) + "] profile (43 metrics)",
                        values, 7);
      std::printf("  %s\n", interpretations[row].summary.c_str());
    }
  }

  bench::shape_check(!rows_by_family[Fig4Family::kPhysical].empty(),
                     "physical/C1 family present in psi");
  bench::shape_check(!rows_by_family[Fig4Family::kLinkQuality].empty(),
                     "link-quality (RSSI/ETX) family present in psi");
  bench::shape_check(!rows_by_family[Fig4Family::kCounters].empty(),
                     "protocol-counter family present in psi");

  // Rows are peaky (paper plots spikes at a few metrics, flat elsewhere).
  double peaky_rows = 0.0;
  for (const core::RootCauseInterpretation& interp : interpretations)
    if (!interp.dominant_metrics.empty() && interp.dominant_metrics.size() <= 8)
      peaky_rows += 1.0;
  bench::shape_check(
      peaky_rows >= 0.6 * static_cast<double>(interpretations.size()),
      "most rows concentrate their variation in a few metrics");
  return bench::shape_summary();
}
