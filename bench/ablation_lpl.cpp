// Ablation — low-power listening vs always-on radio.
//
// Real CitySee-class deployments duty-cycle their radios; the energy story
// is the whole point of many Table-I hazards (voltage, radio-on time).
// Measured: per-node radio-on time per hour, delivery ratio, and minimum
// remaining voltage, always-on vs LPL at two wake intervals.
#include <cstdio>

#include "bench_common.hpp"

using namespace vn2;

namespace {

struct Outcome {
  double radio_on_per_node_hour = 0.0;
  double prr = 0.0;
  double min_voltage = 10.0;
};

Outcome run(bool lpl, double interval) {
  scenario::ScenarioBundle bundle = scenario::tiny(20, 4.0 * 3600.0, 77);
  // A duty-cycled deployment spaces its traffic out (broadcast preambles
  // are LPL's dominant cost): 5-minute reports, trickle beacons.
  bundle.config.report_period = 300.0;
  bundle.config.beacon_period = 120.0;
  bundle.config.adaptive_beaconing = true;
  bundle.config.neighbor_timeout = 3600.0;
  bundle.config.low_power_listening = lpl;
  bundle.config.lpl_interval = interval;
  wsn::Simulator sim = bundle.make_simulator();
  const wsn::SimulationResult result = sim.run();
  Outcome outcome;
  double total = 0.0;
  for (wsn::NodeId id = 1; id < sim.node_count(); ++id) {
    total += sim.node(id).metric(metrics::MetricId::kRadioOnTime);
    outcome.min_voltage = std::min(outcome.min_voltage, sim.node(id).voltage());
  }
  outcome.radio_on_per_node_hour =
      total / static_cast<double>(sim.node_count() - 1) / 4.0;
  outcome.prr = trace::overall_prr(result);
  return outcome;
}

}  // namespace

int main() {
  bench::section("Ablation — low-power listening vs always-on radio");

  const Outcome always_on = run(false, 0.512);
  const Outcome lpl_512 = run(true, 0.512);
  const Outcome lpl_128 = run(true, 0.128);

  std::printf("%-22s %20s %8s %14s\n", "configuration", "radio-on [s/node/h]",
              "PRR", "min voltage");
  auto row = [](const char* name, const Outcome& o) {
    std::printf("%-22s %20.1f %8.3f %14.4f\n", name, o.radio_on_per_node_hour,
                o.prr, o.min_voltage);
  };
  row("always-on (5% idle)", always_on);
  row("LPL, 512 ms wake", lpl_512);
  row("LPL, 128 ms wake", lpl_128);

  bench::shape_check(
      lpl_512.radio_on_per_node_hour < 0.7 * always_on.radio_on_per_node_hour,
      "LPL cuts radio-on time substantially");
  bench::shape_check(lpl_512.prr > always_on.prr - 0.02,
                     "duty cycling does not cost delivery");
  bench::shape_check(
      lpl_128.radio_on_per_node_hour > lpl_512.radio_on_per_node_hour,
      "at low traffic the wake-interval trade-off favours longer sleep "
      "(probe cost dominates preamble cost)");
  bench::shape_check(lpl_512.min_voltage >= always_on.min_voltage - 1e-9,
                     "duty cycling preserves battery");
  return bench::shape_summary();
}
