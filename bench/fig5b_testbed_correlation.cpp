// Fig. 5(b): correlations of all training-hour states with the rows of the
// testbed representative matrix Ψ (r = 10). The paper observes that most
// exceptions concentrate on a handful of rows (Ψ1, Ψ2, Ψ4, Ψ7, Ψ10 in its
// indexing) and that each state activates few rows.
#include <cstdio>

#include "bench_common.hpp"
#include "core/inference.hpp"

using namespace vn2;

int main() {
  bench::section("Fig 5(b) — testbed training correlation with psi (r=10)");
  bench::RunData data =
      bench::testbed_run(scenario::RemovalPattern::kExpansive);
  auto [train, test] = bench::split_states(data.states, 3600.0);
  std::printf("training states (hour 1): %zu, testing (hour 2): %zu\n",
              train.size(), test.size());

  core::Vn2Tool tool = bench::train_testbed_model(train);
  const linalg::Matrix w = core::correlation_strengths(
      tool.model(), trace::states_matrix(train));

  bench::subsection("per-row total correlation strength (training hour)");
  std::vector<std::string> labels;
  std::vector<double> usage;
  for (std::size_t r = 0; r < w.cols(); ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i) sum += w(i, r);
    labels.push_back("psi[" + std::to_string(r) + "]");
    usage.push_back(sum);
  }
  bench::ascii_bars(labels, usage);

  // Sparsity of the scatter.
  double total_active = 0.0;
  for (std::size_t i = 0; i < w.rows(); ++i) {
    double top = 0.0;
    for (std::size_t r = 0; r < w.cols(); ++r) top = std::max(top, w(i, r));
    for (std::size_t r = 0; r < w.cols(); ++r)
      if (w(i, r) > 0.1 * top && w(i, r) > 1e-9) total_active += 1.0;
  }
  const double mean_active = total_active / static_cast<double>(w.rows());
  std::printf("mean active rows per state: %.2f of %zu\n", mean_active,
              tool.model().rank());

  // Paper: a handful of rows dominate. Count rows carrying 80% of the mass.
  std::vector<double> sorted = usage;
  std::sort(sorted.rbegin(), sorted.rend());
  double total = 0.0;
  for (double u : sorted) total += u;
  double acc = 0.0;
  std::size_t dominating = 0;
  for (double u : sorted) {
    acc += u;
    ++dominating;
    if (acc >= 0.8 * total) break;
  }
  std::printf("rows carrying 80%% of total strength: %zu of %zu\n", dominating,
              tool.model().rank());

  bench::shape_check(mean_active <= 5.0,
                     "each state correlates with a small subset of rows");
  bench::shape_check(dominating <= 7,
                     "a handful of psi rows dominate the testbed trace");
  bench::shape_check(w.rows() > 200, "enough training states for the scatter");
  return bench::shape_summary();
}
