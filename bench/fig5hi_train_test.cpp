// Fig. 5(h)/(i): train on hour 1, test on hour 2, and compare the
// correlated-strength distributions over the Ψ rows. The paper's findings:
// (1) train and test profiles are positively related in both scenarios —
// the representation generalizes; (2) scenario 2 (expansive removals)
// matches better than scenario 1 (local removals), because large-scale
// exceptions are easier to detect.
#include <cstdio>

#include "bench_common.hpp"
#include "core/inference.hpp"

using namespace vn2;

namespace {

struct ScenarioOutcome {
  double run_correlation = 0.0;  ///< One run's train/test correlation.
  linalg::Vector train_profile;
  linalg::Vector test_profile;
};

ScenarioOutcome run_once(scenario::RemovalPattern pattern,
                         std::uint64_t seed) {
  bench::RunData data = bench::testbed_run(pattern, seed);
  auto [train, test] = bench::split_states(data.states, 3600.0);
  core::Vn2Tool tool = bench::train_testbed_model(train);

  ScenarioOutcome outcome;
  outcome.train_profile = core::mean_strength_profile(
      core::correlation_strengths(tool.model(), trace::states_matrix(train)));
  outcome.test_profile = core::mean_strength_profile(
      core::correlation_strengths(tool.model(), trace::states_matrix(test)));
  outcome.run_correlation = core::profile_correlation(outcome.train_profile,
                                                      outcome.test_profile);
  return outcome;
}

double run_scenario_set(scenario::RemovalPattern pattern, const char* name,
                        const std::vector<std::uint64_t>& seeds) {
  bench::subsection(std::string("scenario: ") + name);
  double mean_correlation = 0.0;
  ScenarioOutcome last;
  for (std::uint64_t seed : seeds) {
    last = run_once(pattern, seed);
    std::printf("  seed %llu: train/test profile correlation %.3f\n",
                static_cast<unsigned long long>(seed), last.run_correlation);
    mean_correlation += last.run_correlation;
  }
  mean_correlation /= static_cast<double>(seeds.size());

  std::printf("\n%8s %16s %16s   (last run)\n", "row", "training data",
              "testing data");
  for (std::size_t r = 0; r < last.train_profile.size(); ++r)
    std::printf("%8zu %16.4f %16.4f\n", r, last.train_profile[r],
                last.test_profile[r]);
  std::printf("mean train/test correlation over %zu runs: %.3f\n",
              seeds.size(), mean_correlation);
  return mean_correlation;
}

}  // namespace

int main() {
  bench::section("Fig 5(h)/(i) — train vs test root-cause distributions");

  const std::vector<std::uint64_t> seeds = {1340, 1341, 1342, 1343, 1344};
  const double local = run_scenario_set(scenario::RemovalPattern::kLocal,
                                        "1 (local removals)", seeds);
  const double expansive = run_scenario_set(
      scenario::RemovalPattern::kExpansive, "2 (expansive removals)", seeds);

  bench::subsection("comparison");
  std::printf("scenario 1 (local):     mean correlation %.3f\n", local);
  std::printf("scenario 2 (expansive): mean correlation %.3f\n", expansive);

  bench::shape_check(local > 0.0,
                     "scenario 1: train/test profiles positively related");
  bench::shape_check(expansive > 0.0,
                     "scenario 2: train/test profiles positively related");
  bench::shape_check(
      expansive >= local - 0.05,
      "expansive removals match at least as well as local ones (paper: "
      "large-scale exceptions are easier to detect)");
  return bench::shape_summary();
}
