// Ablation — adaptive (Trickle-style) beaconing vs fixed-period beacons.
//
// CTP's adaptive beaconing saves control overhead when the topology is
// stable and accelerates recovery when it churns. Measured here: beacon
// count (overhead ∝ energy), delivery ratio, and radio-on time, on a stable
// network and on one with injected churn (failures + reboots).
#include <cstdio>

#include "bench_common.hpp"

using namespace vn2;

namespace {

struct Outcome {
  std::uint64_t beacons = 0;
  double prr = 0.0;
  double radio_on = 0.0;  ///< Network total, seconds.
};

Outcome run(bool adaptive, bool churn) {
  scenario::ScenarioBundle bundle = scenario::tiny(20, 3.0 * 3600.0, 31, 18.0);
  bundle.config.adaptive_beaconing = adaptive;
  if (churn) {
    // A failure/reboot pulse every 20 minutes.
    for (wsn::Time t = 1800.0; t + 600.0 < bundle.config.duration;
         t += 1200.0) {
      wsn::FaultCommand fail;
      fail.type = wsn::FaultCommand::Type::kNodeFailure;
      fail.node = static_cast<wsn::NodeId>(3 + (static_cast<int>(t) / 1200) % 8);
      fail.start = t;
      bundle.faults.push_back(fail);
      wsn::FaultCommand reboot;
      reboot.type = wsn::FaultCommand::Type::kNodeReboot;
      reboot.node = fail.node;
      reboot.start = t + 600.0;
      bundle.faults.push_back(reboot);
    }
  }
  wsn::Simulator sim = bundle.make_simulator();
  const wsn::SimulationResult result = sim.run();
  Outcome outcome;
  outcome.beacons = result.stats.beacons_sent;
  outcome.prr = trace::overall_prr(result);
  for (wsn::NodeId id = 0; id < sim.node_count(); ++id)
    outcome.radio_on += sim.node(id).metric(metrics::MetricId::kRadioOnTime);
  return outcome;
}

}  // namespace

int main() {
  bench::section("Ablation — adaptive (Trickle) vs fixed-period beaconing");

  const Outcome fixed_stable = run(false, false);
  const Outcome adaptive_stable = run(true, false);
  const Outcome fixed_churn = run(false, true);
  const Outcome adaptive_churn = run(true, true);

  std::printf("%-22s %12s %8s %14s\n", "configuration", "beacons", "PRR",
              "radio-on [s]");
  auto row = [](const char* name, const Outcome& o) {
    std::printf("%-22s %12llu %8.3f %14.1f\n", name,
                static_cast<unsigned long long>(o.beacons), o.prr, o.radio_on);
  };
  row("fixed, stable", fixed_stable);
  row("adaptive, stable", adaptive_stable);
  row("fixed, churn", fixed_churn);
  row("adaptive, churn", adaptive_churn);

  bench::shape_check(
      adaptive_stable.beacons < fixed_stable.beacons / 2,
      "adaptive beaconing cuts control overhead on a stable network");
  bench::shape_check(adaptive_stable.prr > fixed_stable.prr - 0.03,
                     "the overhead saving does not cost delivery (stable)");
  bench::shape_check(adaptive_churn.prr > fixed_churn.prr - 0.05,
                     "delivery holds under churn (trickle resets kick in)");
  bench::shape_check(
      adaptive_churn.beacons > adaptive_stable.beacons,
      "churn makes the adaptive scheme spend more beacons than stability");
  return bench::shape_summary();
}
