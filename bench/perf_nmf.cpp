// Micro-benchmarks: NMF training cost — per-iteration multiplicative update
// and full factorization, across state counts and compression factors.
//
// Before the google-benchmark suites run, a serial-vs-parallel rank-sweep
// comparison executes on a CitySee-scale exceptions matrix and writes its
// wall-clock numbers (plus a bit-identical-output check on choose_rank) to
// BENCH_parallel.json, so the parallel layer's speedup is tracked across
// PRs. Skip it with --skip-parallel-report.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "linalg/cpu_features.hpp"
#include "linalg/kernels.hpp"
#include "linalg/nnls.hpp"
#include "linalg/random.hpp"
#include "nmf/nmf.hpp"
#include "nmf/rank_selection.hpp"
#include "nmf/sparsify.hpp"
#include "telemetry_support.hpp"

namespace {

using vn2::linalg::Matrix;

Matrix exceptions_like(std::size_t n, std::size_t m, std::uint64_t seed) {
  // Non-negative, mostly-small entries with occasional spikes — the texture
  // of an encoded exceptions matrix.
  Matrix e = vn2::linalg::random_uniform_matrix(n, m, seed, 0.0, 0.5);
  std::mt19937_64 rng(seed + 1);
  std::uniform_int_distribution<std::size_t> idx(0, e.size() - 1);
  for (std::size_t k = 0; k < e.size() / 20; ++k) e.data()[idx(rng)] = 8.0;
  return e;
}

void BM_MultiplicativeUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const std::size_t m = 86;  // Encoded metric space.
  const Matrix e = exceptions_like(n, m, 7);
  Matrix w = vn2::linalg::random_uniform_matrix(n, r, 8, 0.05, 1.0);
  Matrix psi = vn2::linalg::random_uniform_matrix(r, m, 9, 0.05, 1.0);
  for (auto _ : state) {
    vn2::nmf::multiplicative_update(e, w, psi);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MultiplicativeUpdate)
    ->Args({200, 10})
    ->Args({1000, 10})
    ->Args({1000, 25})
    ->Args({5000, 25})
    ->Args({20000, 25})
    ->Args({5000, 40});

void BM_FullFactorization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const Matrix e = exceptions_like(n, 86, 11);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 100;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;
  for (auto _ : state) {
    auto result = vn2::nmf::factorize(e, r, options);
    benchmark::DoNotOptimize(result.psi.data());
  }
}
BENCHMARK(BM_FullFactorization)
    ->Args({500, 10})
    ->Args({2000, 25})
    ->Unit(benchmark::kMillisecond);

void BM_Sparsify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix w = vn2::linalg::random_uniform_matrix(n, 25, 3, 0.0, 1.0);
  for (auto _ : state) {
    auto result = vn2::nmf::sparsify(w);
    benchmark::DoNotOptimize(result.w_sparse.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 25);
}
BENCHMARK(BM_Sparsify)->Arg(1000)->Arg(20000);

// Full rank sweep at a fixed thread budget — lets `--benchmark_filter` pit
// thread counts against each other on any machine.
void BM_RankSweepThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Matrix e = exceptions_like(1000, 86, 7);
  const std::vector<std::size_t> ranks = {5, 10, 15, 20, 25, 30};
  vn2::nmf::RankSweepOptions options;
  options.nmf.max_iterations = 30;
  options.nmf.relative_tolerance = 0.0;
  options.nmf.record_objective = false;
  vn2::core::set_num_threads(threads);
  for (auto _ : state) {
    auto sweep = vn2::nmf::rank_sweep(e, ranks, options);
    benchmark::DoNotOptimize(sweep.data());
  }
  vn2::core::set_num_threads(0);
}
BENCHMARK(BM_RankSweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

double seconds_since(std::chrono::steady_clock::time_point start) {
  // vn2-lint: allow(nondeterminism-clock)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serial-vs-parallel rank sweep on a CitySee-scale exceptions matrix. The
// sweep must be bit-identical at every thread count; the JSON records both
// the wall-clock numbers and that check.
void run_parallel_report(const char* json_path) {
  const std::size_t rows = 2000, cols = 86;
  const Matrix e = exceptions_like(rows, cols, 7);
  const std::vector<std::size_t> ranks = {5, 10, 15, 20, 25, 30};
  vn2::nmf::RankSweepOptions options;
  options.nmf.max_iterations = 60;
  options.nmf.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.nmf.record_objective = false;

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t parallel_threads = std::max<std::size_t>(4, hardware);

  vn2::core::set_num_threads(1);
  // vn2-lint: allow(nondeterminism-clock)
  auto start = std::chrono::steady_clock::now();
  const auto serial_sweep = vn2::nmf::rank_sweep(e, ranks, options);
  const double serial_seconds = seconds_since(start);
  const auto serial_choice = vn2::nmf::choose_rank(serial_sweep);

  vn2::core::set_num_threads(parallel_threads);
  // vn2-lint: allow(nondeterminism-clock)
  start = std::chrono::steady_clock::now();
  const auto parallel_sweep = vn2::nmf::rank_sweep(e, ranks, options);
  const double parallel_seconds = seconds_since(start);
  const auto parallel_choice = vn2::nmf::choose_rank(parallel_sweep);
  vn2::core::set_num_threads(0);

  bool identical = serial_sweep.size() == parallel_sweep.size() &&
                   serial_choice.rank == parallel_choice.rank &&
                   serial_choice.sweep_index == parallel_choice.sweep_index;
  for (std::size_t i = 0; identical && i < serial_sweep.size(); ++i)
    identical = serial_sweep[i].rank == parallel_sweep[i].rank &&
                serial_sweep[i].accuracy_original ==
                    parallel_sweep[i].accuracy_original &&
                serial_sweep[i].accuracy_sparse ==
                    parallel_sweep[i].accuracy_sparse;

  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf("rank_sweep %zux%zu over ranks {5,10,15,20,25,30}: "
              "serial %.2fs, %zu threads %.2fs, speedup %.2fx, "
              "choose_rank %s (r=%zu)\n",
              rows, cols, serial_seconds, parallel_threads, parallel_seconds,
              speedup, identical ? "identical" : "DIVERGED",
              parallel_choice.rank);

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"rank_sweep\",\n"
               "  \"matrix\": {\"rows\": %zu, \"cols\": %zu},\n"
               "  \"ranks\": [5, 10, 15, 20, 25, 30],\n"
               "  \"nmf_iterations\": %zu,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"serial\": {\"threads\": 1, \"seconds\": %.6f},\n"
               "  \"parallel\": {\"threads\": %zu, \"seconds\": %.6f},\n"
               "  \"speedup\": %.4f,\n"
               "  \"chosen_rank\": %zu,\n"
               "  \"bit_identical\": %s,\n"
               "  \"telemetry\": %s\n"
               "}\n",
               rows, cols, options.nmf.max_iterations, hardware,
               serial_seconds, parallel_threads, parallel_seconds, speedup,
               parallel_choice.rank, identical ? "true" : "false",
               vn2::bench_support::telemetry_snapshot_json().c_str());
  std::fclose(out);
  std::printf("parallel report -> %s\n", json_path);
}

// Kernel backends head-to-head on the two linalg hot paths: a CitySee-scale
// NMF factorization (GEMM-bound) and a batch of NNLS solves (SYRK/GEMV-
// bound), at 1 thread and at the parallel budget, one row per backend this
// build-and-host combination can actually run. Reference and blocked share
// a per-element accumulation order, so their objectives must agree
// bit-for-bit; the simd backend is held to the documented ≤1e-12 relative
// parity instead. The JSON header records the detected CPU features so rows
// from different machines stay comparable.
void run_linalg_backend_report(const char* json_path) {
  using vn2::linalg::Backend;
  const Matrix e = exceptions_like(2000, 86, 7);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 60;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;

  auto time_factorize = [&](Backend be, std::size_t threads,
                            double* objective) {
    vn2::linalg::set_backend(be);
    vn2::core::set_num_threads(threads);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      const std::uint64_t t0 = vn2::telemetry::monotonic_ns();
      auto result = vn2::nmf::factorize(e, 25, options);
      best = std::min(
          best, static_cast<double>(vn2::telemetry::monotonic_ns() - t0) / 1e9);
      *objective = result.approximation_accuracy(e);
      benchmark::DoNotOptimize(result.psi.data());
    }
    return best;
  };

  // NNLS: diagnose-shaped solves against A = Ψᵀ (86×25) — the SYRK/GEMV
  // path. Serial: each solve is small; this isolates kernel cost.
  const Matrix psi_t =
      vn2::linalg::random_uniform_matrix(86, 25, 13, 0.05, 1.0);
  const std::size_t nnls_batch = 400;
  auto time_nnls = [&](Backend be, double* checksum) {
    vn2::linalg::set_backend(be);
    vn2::core::set_num_threads(1);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      double acc = 0.0;
      const std::uint64_t t0 = vn2::telemetry::monotonic_ns();
      for (std::size_t i = 0; i < nnls_batch; ++i) {
        const auto b = vn2::linalg::random_uniform_vector(86, 100 + i,
                                                          0.0, 4.0);
        const auto solution = vn2::linalg::nnls(psi_t, b);
        acc += solution.residual_norm;
      }
      best = std::min(
          best, static_cast<double>(vn2::telemetry::monotonic_ns() - t0) / 1e9);
      *checksum = acc;
    }
    return best;
  };

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t parallel_threads = std::max<std::size_t>(8, hardware);

  struct Row {
    Backend backend;
    double fac_1t = 0.0, fac_mt = 0.0, nnls_1t = 0.0;
    double obj_1t = 0.0, obj_mt = 0.0, nnls_sum = 0.0;
  };
  std::vector<Row> rows;
  rows.push_back({Backend::kReference});
  if (vn2::linalg::blocked_kernels_compiled())
    rows.push_back({Backend::kBlocked});
  if (vn2::linalg::simd_available()) rows.push_back({Backend::kSimd});
  // NNLS first, while no pool exists: its per-solve cost is microseconds,
  // so idle multi-thread workers from an earlier phase would swamp it.
  for (Row& row : rows) row.nnls_1t = time_nnls(row.backend, &row.nnls_sum);
  for (Row& row : rows)
    row.fac_1t = time_factorize(row.backend, 1, &row.obj_1t);
  for (Row& row : rows)
    row.fac_mt = time_factorize(row.backend, parallel_threads, &row.obj_mt);
  vn2::core::set_num_threads(0);
  vn2::linalg::set_backend(vn2::linalg::parse_backend("auto").value());

  // Parity: scalar backends (reference/blocked) must match bit-for-bit;
  // every backend — simd included — stays within 1e-12 relative of the
  // reference objective.
  const Row& ref = rows.front();
  bool scalar_identical = ref.obj_1t == ref.obj_mt;
  double max_rel_dev = 0.0;
  for (const Row& row : rows) {
    if (row.backend == Backend::kBlocked)
      scalar_identical = scalar_identical && row.obj_1t == ref.obj_1t &&
                         row.obj_mt == ref.obj_mt &&
                         row.nnls_sum == ref.nnls_sum;
    auto rel = [](double got, double want) {
      const double scale = std::max(1.0, std::abs(want));
      return std::abs(got - want) / scale;
    };
    max_rel_dev = std::max({max_rel_dev, rel(row.obj_1t, ref.obj_1t),
                            rel(row.obj_mt, ref.obj_mt),
                            rel(row.nnls_sum, ref.nnls_sum)});
  }
  const bool within_tolerance = max_rel_dev <= 1e-12;

  auto speedup_over = [&](Backend num, Backend den, double Row::*field) {
    const Row* a = nullptr;
    const Row* b = nullptr;
    for (const Row& row : rows) {
      if (row.backend == num) a = &row;
      if (row.backend == den) b = &row;
    }
    return (a && b && *a.*field > 0.0) ? *b.*field / (*a.*field) : 0.0;
  };
  const double blk_speedup_1t =
      speedup_over(Backend::kBlocked, Backend::kReference, &Row::fac_1t);
  const double simd_speedup_1t =
      speedup_over(Backend::kSimd, Backend::kBlocked, &Row::fac_1t);
  const double simd_nnls_speedup =
      speedup_over(Backend::kSimd, Backend::kBlocked, &Row::nnls_1t);

  for (const Row& row : rows)
    std::printf("linalg backend %-9s factorize 2000x86 r=25 (60 iters): "
                "%.3fs @1t, %.3fs @%zut; nnls 86x25 x%zu: %.3fs\n",
                vn2::linalg::backend_name(row.backend), row.fac_1t, row.fac_mt,
                parallel_threads, nnls_batch, row.nnls_1t);
  std::printf("linalg backends [cpu %s]: blocked/reference %.2fx @1t, "
              "simd/blocked %.2fx @1t (nnls %.2fx); scalar outputs %s, "
              "max relative deviation %.3e (%s 1e-12)\n",
              vn2::linalg::cpu_features_summary().c_str(), blk_speedup_1t,
              simd_speedup_1t, simd_nnls_speedup,
              scalar_identical ? "identical" : "DIVERGED", max_rel_dev,
              within_tolerance ? "within" : "EXCEEDS");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::string fac_rows, nnls_rows;
  char line[160];
  for (const Row& row : rows) {
    const char* name = vn2::linalg::backend_name(row.backend);
    std::snprintf(line, sizeof(line),
                  "      {\"backend\": \"%s\", \"threads\": 1, "
                  "\"seconds\": %.6f},\n"
                  "      {\"backend\": \"%s\", \"threads\": %zu, "
                  "\"seconds\": %.6f}%s\n",
                  name, row.fac_1t, name, parallel_threads, row.fac_mt,
                  &row == &rows.back() ? "" : ",");
    fac_rows += line;
    std::snprintf(line, sizeof(line),
                  "      {\"backend\": \"%s\", \"threads\": 1, "
                  "\"seconds\": %.6f}%s\n",
                  name, row.nnls_1t, &row == &rows.back() ? "" : ",");
    nnls_rows += line;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"linalg_backends\",\n"
      "  \"cpu_features\": \"%s\",\n"
      "  \"blocked_compiled\": %s,\n"
      "  \"simd_compiled\": %s,\n"
      "  \"simd_available\": %s,\n"
      "  \"factorize\": {\n"
      "    \"workload\": \"factorize 2000x86 r=25, 60 iterations\",\n"
      "    \"rows\": [\n%s"
      "    ],\n"
      "    \"blocked_speedup_1_thread\": %.4f,\n"
      "    \"simd_speedup_over_blocked_1_thread\": %.4f\n"
      "  },\n"
      "  \"nnls\": {\n"
      "    \"workload\": \"nnls 86x25, %zu solves, 1 thread\",\n"
      "    \"rows\": [\n%s"
      "    ],\n"
      "    \"blocked_speedup\": %.4f,\n"
      "    \"simd_speedup_over_blocked\": %.4f\n"
      "  },\n"
      "  \"scalar_backends_bit_identical\": %s,\n"
      "  \"max_relative_deviation\": %.6e,\n"
      "  \"within_parity_tolerance\": %s\n"
      "}\n",
      vn2::linalg::cpu_features_summary().c_str(),
      vn2::linalg::blocked_kernels_compiled() ? "true" : "false",
      vn2::linalg::simd_kernels_compiled() ? "true" : "false",
      vn2::linalg::simd_available() ? "true" : "false", fac_rows.c_str(),
      blk_speedup_1t, simd_speedup_1t, nnls_batch, nnls_rows.c_str(),
      speedup_over(Backend::kBlocked, Backend::kReference, &Row::nnls_1t),
      simd_nnls_speedup, scalar_identical ? "true" : "false", max_rel_dev,
      within_tolerance ? "true" : "false");
  std::fclose(out);
  std::printf("linalg backend report -> %s\n", json_path);
}

// Telemetry overhead on a fixed factorization workload: the same run with
// collection paused (one relaxed atomic load per macro) vs collecting.
// The <3% budget is the acceptance bar for keeping instrumentation always
// on; a VN2_TELEMETRY=OFF build removes even the paused-path load.
void run_telemetry_report(const char* json_path) {
  const Matrix e = exceptions_like(2000, 86, 7);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 60;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;

  // Serial: isolates macro cost from pool scheduling noise.
  vn2::core::set_num_threads(1);
  auto run_once = [&]() {
    const std::uint64_t t0 = vn2::telemetry::monotonic_ns();
    auto result = vn2::nmf::factorize(e, 25, options);
    benchmark::DoNotOptimize(result.psi.data());
    return static_cast<double>(vn2::telemetry::monotonic_ns() - t0) / 1e9;
  };
  run_once();  // Warm-up: page in the matrices, grow the registry.

  double paused_best = std::numeric_limits<double>::infinity();
  double collecting_best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    vn2::telemetry::set_collecting(false);
    paused_best = std::min(paused_best, run_once());
    vn2::telemetry::set_collecting(true);
    collecting_best = std::min(collecting_best, run_once());
  }
  vn2::core::set_num_threads(0);

  const double overhead_percent =
      paused_best > 0.0
          ? (collecting_best - paused_best) / paused_best * 100.0
          : 0.0;
  std::printf("telemetry overhead on factorize 2000x86 r=25 (60 iters): "
              "paused %.3fs, collecting %.3fs, %.2f%% (budget <3%%)%s\n",
              paused_best, collecting_best, overhead_percent,
              vn2::telemetry::kCompiledIn ? "" : " [compiled out]");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"telemetry_overhead\",\n"
               "  \"workload\": \"factorize 2000x86 r=25, 60 iterations\",\n"
               "  \"telemetry_compiled\": %s,\n"
               "  \"paused_seconds\": %.6f,\n"
               "  \"collecting_seconds\": %.6f,\n"
               "  \"overhead_percent\": %.4f,\n"
               "  \"within_budget\": %s,\n"
               "  \"telemetry\": %s\n"
               "}\n",
               vn2::telemetry::kCompiledIn ? "true" : "false", paused_best,
               collecting_best, overhead_percent,
               overhead_percent < 3.0 ? "true" : "false",
               vn2::bench_support::telemetry_snapshot_json().c_str());
  std::fclose(out);
  std::printf("telemetry report -> %s\n", json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool skip_report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-parallel-report") == 0) {
      skip_report = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!skip_report) {
    run_parallel_report("BENCH_parallel.json");
    run_linalg_backend_report("BENCH_linalg.json");
    run_telemetry_report("BENCH_telemetry.json");
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
