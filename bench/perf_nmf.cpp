// Micro-benchmarks: NMF training cost — per-iteration multiplicative update
// and full factorization, across state counts and compression factors.
//
// Before the google-benchmark suites run, a serial-vs-parallel rank-sweep
// comparison executes on a CitySee-scale exceptions matrix and writes its
// wall-clock numbers (plus a bit-identical-output check on choose_rank) to
// BENCH_parallel.json, so the parallel layer's speedup is tracked across
// PRs. Skip it with --skip-parallel-report.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_record.hpp"
#include "benchstat/record.hpp"
#include "core/parallel.hpp"
#include "linalg/cpu_features.hpp"
#include "linalg/kernels.hpp"
#include "linalg/nnls.hpp"
#include "linalg/random.hpp"
#include "nmf/nmf.hpp"
#include "nmf/rank_selection.hpp"
#include "nmf/sparsify.hpp"
#include "telemetry_support.hpp"

namespace {

using vn2::linalg::Matrix;

Matrix exceptions_like(std::size_t n, std::size_t m, std::uint64_t seed) {
  // Non-negative, mostly-small entries with occasional spikes — the texture
  // of an encoded exceptions matrix.
  Matrix e = vn2::linalg::random_uniform_matrix(n, m, seed, 0.0, 0.5);
  std::mt19937_64 rng(seed + 1);
  std::uniform_int_distribution<std::size_t> idx(0, e.size() - 1);
  for (std::size_t k = 0; k < e.size() / 20; ++k) e.data()[idx(rng)] = 8.0;
  return e;
}

void BM_MultiplicativeUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const std::size_t m = 86;  // Encoded metric space.
  const Matrix e = exceptions_like(n, m, 7);
  Matrix w = vn2::linalg::random_uniform_matrix(n, r, 8, 0.05, 1.0);
  Matrix psi = vn2::linalg::random_uniform_matrix(r, m, 9, 0.05, 1.0);
  for (auto _ : state) {
    vn2::nmf::multiplicative_update(e, w, psi);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MultiplicativeUpdate)
    ->Args({200, 10})
    ->Args({1000, 10})
    ->Args({1000, 25})
    ->Args({5000, 25})
    ->Args({20000, 25})
    ->Args({5000, 40});

void BM_FullFactorization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const Matrix e = exceptions_like(n, 86, 11);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 100;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;
  for (auto _ : state) {
    auto result = vn2::nmf::factorize(e, r, options);
    benchmark::DoNotOptimize(result.psi.data());
  }
}
BENCHMARK(BM_FullFactorization)
    ->Args({500, 10})
    ->Args({2000, 25})
    ->Unit(benchmark::kMillisecond);

void BM_Sparsify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix w = vn2::linalg::random_uniform_matrix(n, 25, 3, 0.0, 1.0);
  for (auto _ : state) {
    auto result = vn2::nmf::sparsify(w);
    benchmark::DoNotOptimize(result.w_sparse.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 25);
}
BENCHMARK(BM_Sparsify)->Arg(1000)->Arg(20000);

// Full rank sweep at a fixed thread budget — lets `--benchmark_filter` pit
// thread counts against each other on any machine.
void BM_RankSweepThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Matrix e = exceptions_like(1000, 86, 7);
  const std::vector<std::size_t> ranks = {5, 10, 15, 20, 25, 30};
  vn2::nmf::RankSweepOptions options;
  options.nmf.max_iterations = 30;
  options.nmf.relative_tolerance = 0.0;
  options.nmf.record_objective = false;
  vn2::core::set_num_threads(threads);
  for (auto _ : state) {
    auto sweep = vn2::nmf::rank_sweep(e, ranks, options);
    benchmark::DoNotOptimize(sweep.data());
  }
  vn2::core::set_num_threads(0);
}
BENCHMARK(BM_RankSweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

double seconds_since(std::chrono::steady_clock::time_point start) {
  // vn2-lint: allow(nondeterminism-clock)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serial-vs-parallel rank sweep on a CitySee-scale exceptions matrix. The
// sweep must be bit-identical at every thread count; the record carries
// per-rep samples for both configurations plus that check.
void run_parallel_report(const char* json_path) {
  // Row count scales with VN2_BENCH_DAYS (7 = full CitySee scale).
  const std::size_t rows = vn2::bench_support::scaled_size(2000, 200);
  const std::size_t cols = 86;
  const Matrix e = exceptions_like(rows, cols, 7);
  const std::vector<std::size_t> ranks = {5, 10, 15, 20, 25, 30};
  vn2::nmf::RankSweepOptions options;
  options.nmf.max_iterations = 60;
  options.nmf.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.nmf.record_objective = false;

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t parallel_threads = std::max<std::size_t>(4, hardware);
  const std::size_t reps = vn2::bench_support::bench_reps();

  std::vector<double> serial_samples, parallel_samples, speedup_samples;
  // Per-case RSS windows: each sampler covers every rep of its case.
  vn2::telemetry::ResourceSampler serial_sampler, parallel_sampler;
  bool identical = true;
  std::size_t chosen_rank = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    vn2::core::set_num_threads(1);
    // vn2-lint: allow(nondeterminism-clock)
    auto start = std::chrono::steady_clock::now();
    serial_sampler.start();
    const auto serial_sweep = vn2::nmf::rank_sweep(e, ranks, options);
    serial_sampler.stop();
    serial_samples.push_back(seconds_since(start));
    const auto serial_choice = vn2::nmf::choose_rank(serial_sweep);

    vn2::core::set_num_threads(parallel_threads);
    // vn2-lint: allow(nondeterminism-clock)
    start = std::chrono::steady_clock::now();
    parallel_sampler.start();
    const auto parallel_sweep = vn2::nmf::rank_sweep(e, ranks, options);
    parallel_sampler.stop();
    parallel_samples.push_back(seconds_since(start));
    const auto parallel_choice = vn2::nmf::choose_rank(parallel_sweep);
    speedup_samples.push_back(parallel_samples.back() > 0.0
                                  ? serial_samples.back() /
                                        parallel_samples.back()
                                  : 0.0);

    // The bit-identity check is deterministic; one rep suffices.
    if (rep == 0) {
      chosen_rank = parallel_choice.rank;
      identical = serial_sweep.size() == parallel_sweep.size() &&
                  serial_choice.rank == parallel_choice.rank &&
                  serial_choice.sweep_index == parallel_choice.sweep_index;
      for (std::size_t i = 0; identical && i < serial_sweep.size(); ++i)
        identical = serial_sweep[i].rank == parallel_sweep[i].rank &&
                    serial_sweep[i].accuracy_original ==
                        parallel_sweep[i].accuracy_original &&
                    serial_sweep[i].accuracy_sparse ==
                        parallel_sweep[i].accuracy_sparse;
    }
  }
  vn2::core::set_num_threads(0);

  const double serial_median =
      vn2::benchstat::summarize(serial_samples).median;
  const double parallel_median =
      vn2::benchstat::summarize(parallel_samples).median;
  const double speedup_median =
      vn2::benchstat::summarize(speedup_samples).median;
  std::printf("rank_sweep %zux%zu over ranks {5,10,15,20,25,30}: "
              "serial %.2fs, %zu threads %.2fs, speedup %.2fx "
              "(medians of %zu), choose_rank %s (r=%zu)\n",
              rows, cols, serial_median, parallel_threads, parallel_median,
              speedup_median, reps, identical ? "identical" : "DIVERGED",
              chosen_rank);

  auto record = vn2::bench_support::make_record(
      "rank_sweep",
      "serial vs parallel rank_sweep over ranks {5,10,15,20,25,30}, "
      "60 NMF iterations");
  record.environment.threads = parallel_threads;
  record.scale = {{"rows", static_cast<double>(rows)},
                  {"cols", static_cast<double>(cols)},
                  {"ranks", static_cast<double>(ranks.size())},
                  {"nmf_iterations",
                   static_cast<double>(options.nmf.max_iterations)},
                  {"parallel_threads", static_cast<double>(parallel_threads)},
                  {"chosen_rank", static_cast<double>(chosen_rank)}};
  record.cases.push_back(
      {"serial",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    serial_samples)},
       vn2::bench_support::case_resources(serial_sampler)});
  record.cases.push_back(
      {"parallel",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    parallel_samples)},
       vn2::bench_support::case_resources(parallel_sampler)});
  // Core-count-dependent, so informational rather than gated: a 4-core CI
  // runner must not fail a baseline recorded on 16 cores.
  record.cases.push_back(
      {"parallel_vs_serial",
       {vn2::benchstat::make_metric("speedup", "x", false, false,
                                    speedup_samples)}});
  record.checks.push_back({"rank_sweep_bit_identical", identical});
  vn2::bench_support::write_record_file(json_path, record);
}

// Kernel backends head-to-head on the two linalg hot paths: a CitySee-scale
// NMF factorization (GEMM-bound) and a batch of NNLS solves (SYRK/GEMV-
// bound), at 1 thread and at the parallel budget, one row per backend this
// build-and-host combination can actually run. Reference and blocked share
// a per-element accumulation order, so their objectives must agree
// bit-for-bit; the simd backend is held to the documented ≤1e-12 relative
// parity instead. The JSON header records the detected CPU features so rows
// from different machines stay comparable.
void run_linalg_backend_report(const char* json_path) {
  using vn2::linalg::Backend;
  // The backend speedup ratios are gated; the floor keeps each factorize
  // long enough that the ratio stays stable run to run at quick scale.
  const std::size_t fac_rows = vn2::bench_support::scaled_size(2000, 500);
  const Matrix e = exceptions_like(fac_rows, 86, 7);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 60;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;

  const std::size_t reps = vn2::bench_support::bench_reps();
  auto time_factorize = [&](Backend be, std::size_t threads,
                            std::vector<double>* samples, double* objective) {
    vn2::linalg::set_backend(be);
    vn2::core::set_num_threads(threads);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::uint64_t t0 = vn2::telemetry::monotonic_ns();
      auto result = vn2::nmf::factorize(e, 25, options);
      samples->push_back(
          static_cast<double>(vn2::telemetry::monotonic_ns() - t0) / 1e9);
      *objective = result.approximation_accuracy(e);
      benchmark::DoNotOptimize(result.psi.data());
    }
  };

  // NNLS: diagnose-shaped solves against A = Ψᵀ (86×25) — the SYRK/GEMV
  // path. Serial: each solve is small; this isolates kernel cost.
  const Matrix psi_t =
      vn2::linalg::random_uniform_matrix(86, 25, 13, 0.05, 1.0);
  const std::size_t nnls_batch = 400;
  auto time_nnls = [&](Backend be, std::vector<double>* samples,
                       double* checksum) {
    vn2::linalg::set_backend(be);
    vn2::core::set_num_threads(1);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      double acc = 0.0;
      const std::uint64_t t0 = vn2::telemetry::monotonic_ns();
      for (std::size_t i = 0; i < nnls_batch; ++i) {
        const auto b = vn2::linalg::random_uniform_vector(86, 100 + i,
                                                          0.0, 4.0);
        const auto solution = vn2::linalg::nnls(psi_t, b);
        acc += solution.residual_norm;
      }
      samples->push_back(
          static_cast<double>(vn2::telemetry::monotonic_ns() - t0) / 1e9);
      *checksum = acc;
    }
  };

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t parallel_threads = std::max<std::size_t>(8, hardware);

  struct Row {
    Backend backend;
    std::vector<double> fac_1t, fac_mt, nnls_1t;
    double obj_1t = 0.0, obj_mt = 0.0, nnls_sum = 0.0;
  };
  std::vector<Row> rows;
  rows.push_back({Backend::kReference, {}, {}, {}, 0.0, 0.0, 0.0});
  if (vn2::linalg::blocked_kernels_compiled())
    rows.push_back({Backend::kBlocked, {}, {}, {}, 0.0, 0.0, 0.0});
  if (vn2::linalg::simd_available())
    rows.push_back({Backend::kSimd, {}, {}, {}, 0.0, 0.0, 0.0});
  // NNLS first, while no pool exists: its per-solve cost is microseconds,
  // so idle multi-thread workers from an earlier phase would swamp it.
  for (Row& row : rows) time_nnls(row.backend, &row.nnls_1t, &row.nnls_sum);
  for (Row& row : rows)
    time_factorize(row.backend, 1, &row.fac_1t, &row.obj_1t);
  for (Row& row : rows)
    time_factorize(row.backend, parallel_threads, &row.fac_mt, &row.obj_mt);
  vn2::core::set_num_threads(0);
  vn2::linalg::set_backend(vn2::linalg::parse_backend("auto").value());

  // Parity: scalar backends (reference/blocked) must match bit-for-bit;
  // every backend — simd included — stays within 1e-12 relative of the
  // reference objective.
  const Row& ref = rows.front();
  bool scalar_identical = ref.obj_1t == ref.obj_mt;
  double max_rel_dev = 0.0;
  for (const Row& row : rows) {
    if (row.backend == Backend::kBlocked)
      scalar_identical = scalar_identical && row.obj_1t == ref.obj_1t &&
                         row.obj_mt == ref.obj_mt &&
                         row.nnls_sum == ref.nnls_sum;
    auto rel = [](double got, double want) {
      const double scale = std::max(1.0, std::abs(want));
      return std::abs(got - want) / scale;
    };
    max_rel_dev = std::max({max_rel_dev, rel(row.obj_1t, ref.obj_1t),
                            rel(row.obj_mt, ref.obj_mt),
                            rel(row.nnls_sum, ref.nnls_sum)});
  }
  const bool within_tolerance = max_rel_dev <= 1e-12;

  // Per-rep speedup samples: pairing rep i of the slow backend with rep i
  // of the fast one keeps shared machine noise (thermal drift, neighbours)
  // out of the ratio, which is what makes these metrics gateable across
  // runs on the same host class.
  auto find_row = [&](Backend be) -> const Row* {
    for (const Row& row : rows)
      if (row.backend == be) return &row;
    return nullptr;
  };
  auto speedup_samples = [&](Backend fast, Backend slow,
                             std::vector<double> Row::*field) {
    const Row* f = find_row(fast);
    const Row* s = find_row(slow);
    std::vector<double> out;
    if (f == nullptr || s == nullptr) return out;
    const std::size_t n = std::min((*f.*field).size(), (*s.*field).size());
    for (std::size_t i = 0; i < n; ++i)
      out.push_back((*f.*field)[i] > 0.0 ? (*s.*field)[i] / (*f.*field)[i]
                                         : 0.0);
    return out;
  };
  auto median_of = [](const std::vector<double>& samples) {
    return samples.empty() ? 0.0 : vn2::benchstat::summarize(samples).median;
  };
  const std::vector<double> blk_fac_speedup =
      speedup_samples(Backend::kBlocked, Backend::kReference, &Row::fac_1t);
  const std::vector<double> simd_fac_speedup =
      speedup_samples(Backend::kSimd, Backend::kBlocked, &Row::fac_1t);
  const std::vector<double> blk_nnls_speedup =
      speedup_samples(Backend::kBlocked, Backend::kReference, &Row::nnls_1t);
  const std::vector<double> simd_nnls_speedup =
      speedup_samples(Backend::kSimd, Backend::kBlocked, &Row::nnls_1t);

  for (const Row& row : rows)
    std::printf("linalg backend %-9s factorize %zux86 r=25 (60 iters): "
                "%.3fs @1t, %.3fs @%zut; nnls 86x25 x%zu: %.3fs "
                "(medians of %zu)\n",
                vn2::linalg::backend_name(row.backend), fac_rows,
                median_of(row.fac_1t), median_of(row.fac_mt),
                parallel_threads, nnls_batch, median_of(row.nnls_1t), reps);
  std::printf("linalg backends [cpu %s]: blocked/reference %.2fx @1t, "
              "simd/blocked %.2fx @1t (nnls %.2fx); scalar outputs %s, "
              "max relative deviation %.3e (%s 1e-12)\n",
              vn2::linalg::cpu_features_summary().c_str(),
              median_of(blk_fac_speedup), median_of(simd_fac_speedup),
              median_of(simd_nnls_speedup),
              scalar_identical ? "identical" : "DIVERGED", max_rel_dev,
              within_tolerance ? "within" : "EXCEEDS");

  auto record = vn2::bench_support::make_record(
      "linalg_backends",
      "CitySee-scale factorize r=25 (60 iterations) and nnls 86x25 x400, "
      "per compiled backend");
  record.environment.threads = parallel_threads;
  record.scale = {{"rows", static_cast<double>(fac_rows)},
                  {"cols", 86.0},
                  {"rank", 25.0},
                  {"nmf_iterations", 60.0},
                  {"nnls_batch", static_cast<double>(nnls_batch)},
                  {"parallel_threads", static_cast<double>(parallel_threads)},
                  {"backends", static_cast<double>(rows.size())}};
  for (const Row& row : rows) {
    const std::string name = vn2::linalg::backend_name(row.backend);
    record.cases.push_back(
        {"factorize/" + name,
         {vn2::benchstat::make_metric("seconds_1t", "s", true, false,
                                      row.fac_1t),
          vn2::benchstat::make_metric("seconds_mt", "s", true, false,
                                      row.fac_mt)}});
    record.cases.push_back(
        {"nnls/" + name,
         {vn2::benchstat::make_metric("seconds", "s", true, false,
                                      row.nnls_1t)}});
  }
  // The gated metrics are same-machine ratios — core-count and absolute
  // CPU speed cancel out, so a baseline survives runner changes within a
  // host class. Absolute seconds above stay informational.
  vn2::benchstat::Case ratios{"ratios", {}};
  if (!blk_fac_speedup.empty())
    ratios.metrics.push_back(vn2::benchstat::make_metric(
        "blocked_speedup_1t", "x", false, true, blk_fac_speedup));
  if (!simd_fac_speedup.empty())
    ratios.metrics.push_back(vn2::benchstat::make_metric(
        "simd_speedup_over_blocked_1t", "x", false, true, simd_fac_speedup));
  if (!blk_nnls_speedup.empty())
    ratios.metrics.push_back(vn2::benchstat::make_metric(
        "nnls_blocked_speedup", "x", false, true, blk_nnls_speedup));
  if (!simd_nnls_speedup.empty())
    ratios.metrics.push_back(vn2::benchstat::make_metric(
        "nnls_simd_speedup_over_blocked", "x", false, true,
        simd_nnls_speedup));
  record.cases.push_back(std::move(ratios));
  record.checks.push_back(
      {"scalar_backends_bit_identical", scalar_identical});
  record.checks.push_back({"within_parity_tolerance", within_tolerance});
  vn2::bench_support::write_record_file(json_path, record);
}

// Telemetry overhead on a fixed factorization workload: the same run with
// collection paused (one relaxed atomic load per macro) vs collecting.
// The <3% budget is the acceptance bar for keeping instrumentation always
// on; a VN2_TELEMETRY=OFF build removes even the paused-path load.
void run_telemetry_report(const char* json_path) {
  const std::size_t fac_rows = vn2::bench_support::scaled_size(2000, 200);
  const Matrix e = exceptions_like(fac_rows, 86, 7);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 60;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;

  // Serial: isolates macro cost from pool scheduling noise.
  vn2::core::set_num_threads(1);
  auto run_once = [&]() {
    const std::uint64_t t0 = vn2::telemetry::monotonic_ns();
    auto result = vn2::nmf::factorize(e, 25, options);
    benchmark::DoNotOptimize(result.psi.data());
    return static_cast<double>(vn2::telemetry::monotonic_ns() - t0) / 1e9;
  };
  run_once();  // Warm-up: page in the matrices, grow the registry.

  const std::size_t reps = vn2::bench_support::bench_reps();
  std::vector<double> paused_samples, collecting_samples, ratio_samples;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    vn2::telemetry::set_collecting(false);
    paused_samples.push_back(run_once());
    vn2::telemetry::set_collecting(true);
    collecting_samples.push_back(run_once());
    ratio_samples.push_back(paused_samples.back() > 0.0
                                ? collecting_samples.back() /
                                      paused_samples.back()
                                : 1.0);
  }
  vn2::core::set_num_threads(0);

  const double paused_median =
      vn2::benchstat::summarize(paused_samples).median;
  const double collecting_median =
      vn2::benchstat::summarize(collecting_samples).median;
  const double overhead_percent =
      paused_median > 0.0
          ? (collecting_median - paused_median) / paused_median * 100.0
          : 0.0;
  // The budget check uses the best rep's ratio: scheduler noise only ever
  // inflates a rep, so min-over-reps isolates the real instrumentation
  // cost, while a genuine hot-path regression inflates every rep, the
  // minimum included.
  const double best_overhead_percent =
      (vn2::benchstat::summarize(ratio_samples).min - 1.0) * 100.0;
  std::printf("telemetry overhead on factorize %zux86 r=25 (60 iters): "
              "paused %.3fs, collecting %.3fs, %.2f%% median / %.2f%% best "
              "(%zu reps, budget <3%% best-case)%s\n",
              fac_rows, paused_median, collecting_median, overhead_percent,
              best_overhead_percent, reps,
              vn2::telemetry::kCompiledIn ? "" : " [compiled out]");

  auto record = vn2::bench_support::make_record(
      "telemetry_overhead",
      "CitySee-scale factorize r=25 (60 iterations), collection paused vs "
      "collecting, serial");
  record.environment.threads = 1;
  record.scale = {{"rows", static_cast<double>(fac_rows)},
                  {"cols", 86.0},
                  {"rank", 25.0},
                  {"nmf_iterations", 60.0}};
  record.cases.push_back(
      {"paused",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    paused_samples)}});
  record.cases.push_back(
      {"collecting",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    collecting_samples)}});
  // The gated quantity is the per-rep ratio, not overhead_percent: a pure
  // ratio keeps the relative-delta floor meaningful near zero overhead.
  record.cases.push_back(
      {"overhead",
       {vn2::benchstat::make_metric("collecting_over_paused", "x", true, true,
                                    ratio_samples)}});
  record.checks.push_back({"within_budget", best_overhead_percent < 3.0});
  vn2::bench_support::write_record_file(json_path, record);
}

}  // namespace

int main(int argc, char** argv) {
  bool skip_report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-parallel-report") == 0) {
      skip_report = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!skip_report) {
    run_parallel_report("BENCH_parallel.json");
    run_linalg_backend_report("BENCH_linalg.json");
    run_telemetry_report("BENCH_telemetry.json");
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
