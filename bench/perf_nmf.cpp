// Micro-benchmarks: NMF training cost — per-iteration multiplicative update
// and full factorization, across state counts and compression factors.
//
// Before the google-benchmark suites run, a serial-vs-parallel rank-sweep
// comparison executes on a CitySee-scale exceptions matrix and writes its
// wall-clock numbers (plus a bit-identical-output check on choose_rank) to
// BENCH_parallel.json, so the parallel layer's speedup is tracked across
// PRs. Skip it with --skip-parallel-report.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "linalg/kernels.hpp"
#include "linalg/nnls.hpp"
#include "linalg/random.hpp"
#include "nmf/nmf.hpp"
#include "nmf/rank_selection.hpp"
#include "nmf/sparsify.hpp"
#include "telemetry_support.hpp"

namespace {

using vn2::linalg::Matrix;

Matrix exceptions_like(std::size_t n, std::size_t m, std::uint64_t seed) {
  // Non-negative, mostly-small entries with occasional spikes — the texture
  // of an encoded exceptions matrix.
  Matrix e = vn2::linalg::random_uniform_matrix(n, m, seed, 0.0, 0.5);
  std::mt19937_64 rng(seed + 1);
  std::uniform_int_distribution<std::size_t> idx(0, e.size() - 1);
  for (std::size_t k = 0; k < e.size() / 20; ++k) e.data()[idx(rng)] = 8.0;
  return e;
}

void BM_MultiplicativeUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const std::size_t m = 86;  // Encoded metric space.
  const Matrix e = exceptions_like(n, m, 7);
  Matrix w = vn2::linalg::random_uniform_matrix(n, r, 8, 0.05, 1.0);
  Matrix psi = vn2::linalg::random_uniform_matrix(r, m, 9, 0.05, 1.0);
  for (auto _ : state) {
    vn2::nmf::multiplicative_update(e, w, psi);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MultiplicativeUpdate)
    ->Args({200, 10})
    ->Args({1000, 10})
    ->Args({1000, 25})
    ->Args({5000, 25})
    ->Args({20000, 25})
    ->Args({5000, 40});

void BM_FullFactorization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const Matrix e = exceptions_like(n, 86, 11);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 100;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;
  for (auto _ : state) {
    auto result = vn2::nmf::factorize(e, r, options);
    benchmark::DoNotOptimize(result.psi.data());
  }
}
BENCHMARK(BM_FullFactorization)
    ->Args({500, 10})
    ->Args({2000, 25})
    ->Unit(benchmark::kMillisecond);

void BM_Sparsify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix w = vn2::linalg::random_uniform_matrix(n, 25, 3, 0.0, 1.0);
  for (auto _ : state) {
    auto result = vn2::nmf::sparsify(w);
    benchmark::DoNotOptimize(result.w_sparse.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 25);
}
BENCHMARK(BM_Sparsify)->Arg(1000)->Arg(20000);

// Full rank sweep at a fixed thread budget — lets `--benchmark_filter` pit
// thread counts against each other on any machine.
void BM_RankSweepThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Matrix e = exceptions_like(1000, 86, 7);
  const std::vector<std::size_t> ranks = {5, 10, 15, 20, 25, 30};
  vn2::nmf::RankSweepOptions options;
  options.nmf.max_iterations = 30;
  options.nmf.relative_tolerance = 0.0;
  options.nmf.record_objective = false;
  vn2::core::set_num_threads(threads);
  for (auto _ : state) {
    auto sweep = vn2::nmf::rank_sweep(e, ranks, options);
    benchmark::DoNotOptimize(sweep.data());
  }
  vn2::core::set_num_threads(0);
}
BENCHMARK(BM_RankSweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

double seconds_since(std::chrono::steady_clock::time_point start) {
  // vn2-lint: allow(nondeterminism-clock)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serial-vs-parallel rank sweep on a CitySee-scale exceptions matrix. The
// sweep must be bit-identical at every thread count; the JSON records both
// the wall-clock numbers and that check.
void run_parallel_report(const char* json_path) {
  const std::size_t rows = 2000, cols = 86;
  const Matrix e = exceptions_like(rows, cols, 7);
  const std::vector<std::size_t> ranks = {5, 10, 15, 20, 25, 30};
  vn2::nmf::RankSweepOptions options;
  options.nmf.max_iterations = 60;
  options.nmf.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.nmf.record_objective = false;

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t parallel_threads = std::max<std::size_t>(4, hardware);

  vn2::core::set_num_threads(1);
  // vn2-lint: allow(nondeterminism-clock)
  auto start = std::chrono::steady_clock::now();
  const auto serial_sweep = vn2::nmf::rank_sweep(e, ranks, options);
  const double serial_seconds = seconds_since(start);
  const auto serial_choice = vn2::nmf::choose_rank(serial_sweep);

  vn2::core::set_num_threads(parallel_threads);
  // vn2-lint: allow(nondeterminism-clock)
  start = std::chrono::steady_clock::now();
  const auto parallel_sweep = vn2::nmf::rank_sweep(e, ranks, options);
  const double parallel_seconds = seconds_since(start);
  const auto parallel_choice = vn2::nmf::choose_rank(parallel_sweep);
  vn2::core::set_num_threads(0);

  bool identical = serial_sweep.size() == parallel_sweep.size() &&
                   serial_choice.rank == parallel_choice.rank &&
                   serial_choice.sweep_index == parallel_choice.sweep_index;
  for (std::size_t i = 0; identical && i < serial_sweep.size(); ++i)
    identical = serial_sweep[i].rank == parallel_sweep[i].rank &&
                serial_sweep[i].accuracy_original ==
                    parallel_sweep[i].accuracy_original &&
                serial_sweep[i].accuracy_sparse ==
                    parallel_sweep[i].accuracy_sparse;

  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf("rank_sweep %zux%zu over ranks {5,10,15,20,25,30}: "
              "serial %.2fs, %zu threads %.2fs, speedup %.2fx, "
              "choose_rank %s (r=%zu)\n",
              rows, cols, serial_seconds, parallel_threads, parallel_seconds,
              speedup, identical ? "identical" : "DIVERGED",
              parallel_choice.rank);

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"rank_sweep\",\n"
               "  \"matrix\": {\"rows\": %zu, \"cols\": %zu},\n"
               "  \"ranks\": [5, 10, 15, 20, 25, 30],\n"
               "  \"nmf_iterations\": %zu,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"serial\": {\"threads\": 1, \"seconds\": %.6f},\n"
               "  \"parallel\": {\"threads\": %zu, \"seconds\": %.6f},\n"
               "  \"speedup\": %.4f,\n"
               "  \"chosen_rank\": %zu,\n"
               "  \"bit_identical\": %s,\n"
               "  \"telemetry\": %s\n"
               "}\n",
               rows, cols, options.nmf.max_iterations, hardware,
               serial_seconds, parallel_threads, parallel_seconds, speedup,
               parallel_choice.rank, identical ? "true" : "false",
               vn2::bench_support::telemetry_snapshot_json().c_str());
  std::fclose(out);
  std::printf("parallel report -> %s\n", json_path);
}

// Reference-vs-blocked kernel backends on the two linalg hot paths: a
// CitySee-scale NMF factorization (GEMM-bound) and a batch of NNLS solves
// (SYRK/GEMV-bound), at 1 thread and at the parallel budget. Both backends
// follow the same per-element accumulation order, so the objectives must
// agree bit-for-bit; the JSON records that check plus the speedups.
void run_linalg_backend_report(const char* json_path) {
  using vn2::linalg::Backend;
  const Matrix e = exceptions_like(2000, 86, 7);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 60;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;

  auto time_factorize = [&](Backend be, std::size_t threads,
                            double* objective) {
    vn2::linalg::set_backend(be);
    vn2::core::set_num_threads(threads);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      const std::uint64_t t0 = vn2::telemetry::monotonic_ns();
      auto result = vn2::nmf::factorize(e, 25, options);
      best = std::min(
          best, static_cast<double>(vn2::telemetry::monotonic_ns() - t0) / 1e9);
      *objective = result.approximation_accuracy(e);
      benchmark::DoNotOptimize(result.psi.data());
    }
    return best;
  };

  // NNLS: diagnose-shaped solves against A = Ψᵀ (86×25) — the SYRK/GEMV
  // path. Serial: each solve is small; this isolates kernel cost.
  const Matrix psi_t =
      vn2::linalg::random_uniform_matrix(86, 25, 13, 0.05, 1.0);
  const std::size_t nnls_batch = 400;
  auto time_nnls = [&](Backend be, double* checksum) {
    vn2::linalg::set_backend(be);
    vn2::core::set_num_threads(1);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      double acc = 0.0;
      const std::uint64_t t0 = vn2::telemetry::monotonic_ns();
      for (std::size_t i = 0; i < nnls_batch; ++i) {
        const auto b = vn2::linalg::random_uniform_vector(86, 100 + i,
                                                          0.0, 4.0);
        const auto solution = vn2::linalg::nnls(psi_t, b);
        acc += solution.residual_norm;
      }
      best = std::min(
          best, static_cast<double>(vn2::telemetry::monotonic_ns() - t0) / 1e9);
      *checksum = acc;
    }
    return best;
  };

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t parallel_threads = std::max<std::size_t>(8, hardware);

  double obj_ref_1t = 0.0, obj_blk_1t = 0.0;
  double obj_ref_mt = 0.0, obj_blk_mt = 0.0;
  double nnls_ref_sum = 0.0, nnls_blk_sum = 0.0;
  const double ref_1t = time_factorize(Backend::kReference, 1, &obj_ref_1t);
  const double blk_1t = time_factorize(Backend::kBlocked, 1, &obj_blk_1t);
  const double ref_mt =
      time_factorize(Backend::kReference, parallel_threads, &obj_ref_mt);
  const double blk_mt =
      time_factorize(Backend::kBlocked, parallel_threads, &obj_blk_mt);
  const double nnls_ref = time_nnls(Backend::kReference, &nnls_ref_sum);
  const double nnls_blk = time_nnls(Backend::kBlocked, &nnls_blk_sum);
  vn2::core::set_num_threads(0);
  vn2::linalg::set_backend(vn2::linalg::parse_backend("auto").value());

  const bool identical = obj_ref_1t == obj_blk_1t && obj_ref_mt == obj_blk_mt &&
                         obj_ref_1t == obj_ref_mt &&
                         nnls_ref_sum == nnls_blk_sum;
  const double speedup_1t = blk_1t > 0.0 ? ref_1t / blk_1t : 0.0;
  const double speedup_mt = blk_mt > 0.0 ? ref_mt / blk_mt : 0.0;
  const double speedup_nnls = nnls_blk > 0.0 ? nnls_ref / nnls_blk : 0.0;
  std::printf(
      "linalg backends on factorize 2000x86 r=25 (60 iters): reference "
      "%.3fs/%.3fs, blocked %.3fs/%.3fs (1/%zu threads), speedup %.2fx/%.2fx; "
      "nnls 86x25 x%zu: reference %.3fs, blocked %.3fs, speedup %.2fx; "
      "outputs %s [blocked %s]\n",
      ref_1t, ref_mt, blk_1t, blk_mt, parallel_threads, speedup_1t, speedup_mt,
      nnls_batch, nnls_ref, nnls_blk, speedup_nnls,
      identical ? "identical" : "DIVERGED",
      vn2::linalg::blocked_kernels_compiled() ? "compiled in" : "compiled OUT");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"linalg_backends\",\n"
      "  \"blocked_compiled\": %s,\n"
      "  \"factorize\": {\n"
      "    \"workload\": \"factorize 2000x86 r=25, 60 iterations\",\n"
      "    \"rows\": [\n"
      "      {\"backend\": \"reference\", \"threads\": 1, \"seconds\": %.6f},\n"
      "      {\"backend\": \"blocked\", \"threads\": 1, \"seconds\": %.6f},\n"
      "      {\"backend\": \"reference\", \"threads\": %zu, "
      "\"seconds\": %.6f},\n"
      "      {\"backend\": \"blocked\", \"threads\": %zu, "
      "\"seconds\": %.6f}\n"
      "    ],\n"
      "    \"speedup_1_thread\": %.4f,\n"
      "    \"speedup_%zu_threads\": %.4f\n"
      "  },\n"
      "  \"nnls\": {\n"
      "    \"workload\": \"nnls 86x25, %zu solves, 1 thread\",\n"
      "    \"rows\": [\n"
      "      {\"backend\": \"reference\", \"threads\": 1, \"seconds\": %.6f},\n"
      "      {\"backend\": \"blocked\", \"threads\": 1, \"seconds\": %.6f}\n"
      "    ],\n"
      "    \"speedup\": %.4f\n"
      "  },\n"
      "  \"bit_identical\": %s\n"
      "}\n",
      vn2::linalg::blocked_kernels_compiled() ? "true" : "false", ref_1t,
      blk_1t, parallel_threads, ref_mt, parallel_threads, blk_mt, speedup_1t,
      parallel_threads, speedup_mt, nnls_batch, nnls_ref, nnls_blk,
      speedup_nnls, identical ? "true" : "false");
  std::fclose(out);
  std::printf("linalg backend report -> %s\n", json_path);
}

// Telemetry overhead on a fixed factorization workload: the same run with
// collection paused (one relaxed atomic load per macro) vs collecting.
// The <3% budget is the acceptance bar for keeping instrumentation always
// on; a VN2_TELEMETRY=OFF build removes even the paused-path load.
void run_telemetry_report(const char* json_path) {
  const Matrix e = exceptions_like(2000, 86, 7);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 60;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;

  // Serial: isolates macro cost from pool scheduling noise.
  vn2::core::set_num_threads(1);
  auto run_once = [&]() {
    const std::uint64_t t0 = vn2::telemetry::monotonic_ns();
    auto result = vn2::nmf::factorize(e, 25, options);
    benchmark::DoNotOptimize(result.psi.data());
    return static_cast<double>(vn2::telemetry::monotonic_ns() - t0) / 1e9;
  };
  run_once();  // Warm-up: page in the matrices, grow the registry.

  double paused_best = std::numeric_limits<double>::infinity();
  double collecting_best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    vn2::telemetry::set_collecting(false);
    paused_best = std::min(paused_best, run_once());
    vn2::telemetry::set_collecting(true);
    collecting_best = std::min(collecting_best, run_once());
  }
  vn2::core::set_num_threads(0);

  const double overhead_percent =
      paused_best > 0.0
          ? (collecting_best - paused_best) / paused_best * 100.0
          : 0.0;
  std::printf("telemetry overhead on factorize 2000x86 r=25 (60 iters): "
              "paused %.3fs, collecting %.3fs, %.2f%% (budget <3%%)%s\n",
              paused_best, collecting_best, overhead_percent,
              vn2::telemetry::kCompiledIn ? "" : " [compiled out]");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"telemetry_overhead\",\n"
               "  \"workload\": \"factorize 2000x86 r=25, 60 iterations\",\n"
               "  \"telemetry_compiled\": %s,\n"
               "  \"paused_seconds\": %.6f,\n"
               "  \"collecting_seconds\": %.6f,\n"
               "  \"overhead_percent\": %.4f,\n"
               "  \"within_budget\": %s,\n"
               "  \"telemetry\": %s\n"
               "}\n",
               vn2::telemetry::kCompiledIn ? "true" : "false", paused_best,
               collecting_best, overhead_percent,
               overhead_percent < 3.0 ? "true" : "false",
               vn2::bench_support::telemetry_snapshot_json().c_str());
  std::fclose(out);
  std::printf("telemetry report -> %s\n", json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool skip_report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-parallel-report") == 0) {
      skip_report = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!skip_report) {
    run_parallel_report("BENCH_parallel.json");
    run_linalg_backend_report("BENCH_linalg.json");
    run_telemetry_report("BENCH_telemetry.json");
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
