// Micro-benchmarks: NMF training cost — per-iteration multiplicative update
// and full factorization, across state counts and compression factors.
#include <benchmark/benchmark.h>

#include "linalg/random.hpp"
#include "nmf/nmf.hpp"
#include "nmf/sparsify.hpp"

namespace {

using vn2::linalg::Matrix;

Matrix exceptions_like(std::size_t n, std::size_t m, std::uint64_t seed) {
  // Non-negative, mostly-small entries with occasional spikes — the texture
  // of an encoded exceptions matrix.
  Matrix e = vn2::linalg::random_uniform_matrix(n, m, seed, 0.0, 0.5);
  std::mt19937_64 rng(seed + 1);
  std::uniform_int_distribution<std::size_t> idx(0, e.size() - 1);
  for (std::size_t k = 0; k < e.size() / 20; ++k) e.data()[idx(rng)] = 8.0;
  return e;
}

void BM_MultiplicativeUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const std::size_t m = 86;  // Encoded metric space.
  const Matrix e = exceptions_like(n, m, 7);
  Matrix w = vn2::linalg::random_uniform_matrix(n, r, 8, 0.05, 1.0);
  Matrix psi = vn2::linalg::random_uniform_matrix(r, m, 9, 0.05, 1.0);
  for (auto _ : state) {
    vn2::nmf::multiplicative_update(e, w, psi);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MultiplicativeUpdate)
    ->Args({200, 10})
    ->Args({1000, 10})
    ->Args({1000, 25})
    ->Args({5000, 25})
    ->Args({20000, 25})
    ->Args({5000, 40});

void BM_FullFactorization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const Matrix e = exceptions_like(n, 86, 11);
  vn2::nmf::NmfOptions options;
  options.max_iterations = 100;
  options.relative_tolerance = 0.0;  // Fixed work for comparability.
  options.record_objective = false;
  for (auto _ : state) {
    auto result = vn2::nmf::factorize(e, r, options);
    benchmark::DoNotOptimize(result.psi.data());
  }
}
BENCHMARK(BM_FullFactorization)
    ->Args({500, 10})
    ->Args({2000, 25})
    ->Unit(benchmark::kMillisecond);

void BM_Sparsify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix w = vn2::linalg::random_uniform_matrix(n, 25, 3, 0.0, 1.0);
  for (auto _ : state) {
    auto result = vn2::nmf::sparsify(w);
    benchmark::DoNotOptimize(result.w_sparse.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 25);
}
BENCHMARK(BM_Sparsify)->Arg(1000)->Arg(20000);

}  // namespace

BENCHMARK_MAIN();
