// Extension bench — protocol performance estimation (the paper's §VI
// future work, made concrete): learn PRR from the correlation-strength
// profile of each time window, on one multi-fault run, and predict the PRR
// of a held-out run with fresh fault realizations.
//
// Shape claims: (1) the model generalizes (held-out R² clearly above zero);
// (2) the most damaging fitted coefficients belong to fault-flavored Ψ rows
// (loops / contention / failures), not to benign environment rows.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/performance.hpp"

using namespace vn2;

namespace {

scenario::ScenarioBundle faulty(std::uint64_t seed) {
  scenario::ScenarioBundle bundle =
      scenario::tiny(20, 8.0 * 3600.0, seed, 18.0);
  std::mt19937_64 rng(seed ^ 0xFACEULL);
  std::uniform_real_distribution<double> when(2400.0, 7.0 * 3600.0);
  for (int i = 0; i < 4; ++i) {
    wsn::FaultCommand jam;
    jam.type = wsn::FaultCommand::Type::kJammer;
    jam.center = {30.0, 40.0};
    jam.radius_m = 80.0;
    jam.start = when(rng);
    jam.end = jam.start + 2400.0;
    jam.magnitude = 0.5;
    bundle.faults.push_back(jam);

    wsn::FaultCommand loop;
    loop.type = wsn::FaultCommand::Type::kForcedLoop;
    loop.node = static_cast<wsn::NodeId>(5 + i);
    loop.start = when(rng);
    loop.end = loop.start + 1800.0;
    bundle.faults.push_back(loop);
  }
  return bundle;
}

}  // namespace

int main() {
  bench::section("Extension — protocol performance estimation (PRR model)");

  // Two training runs with independent fault timetables: environmental
  // rhythms (day/night) repeat across runs but fault windows do not, so the
  // regression cannot blame the diurnal cycle for fault-time losses.
  bench::RunData train_run_a = bench::run_scenario(faulty(901));
  bench::RunData train_run_b = bench::run_scenario(faulty(903));
  bench::RunData test_run = bench::run_scenario(faulty(902));

  std::vector<trace::StateVector> train_states = train_run_a.states;
  train_states.insert(train_states.end(), train_run_b.states.begin(),
                      train_run_b.states.end());
  core::Vn2Tool::Options options;
  options.training.rank = 10;
  options.training.skip_exception_extraction = true;
  core::Vn2Tool tool = core::Vn2Tool::train_from_states(train_states, options);

  const wsn::Time window = 1200.0;
  auto train_set = core::build_performance_dataset(
      train_run_a.result, train_run_a.states, tool.model(), window);
  const auto train_set_b = core::build_performance_dataset(
      train_run_b.result, train_run_b.states, tool.model(), window);
  for (std::size_t i = 0; i < train_set_b.profiles.rows(); ++i)
    train_set.profiles.append_row(train_set_b.profiles.row(i));
  {
    std::vector<double> merged(train_set.prr.begin(), train_set.prr.end());
    merged.insert(merged.end(), train_set_b.prr.begin(),
                  train_set_b.prr.end());
    train_set.prr = linalg::Vector(std::move(merged));
  }
  const auto test_set = core::build_performance_dataset(
      test_run.result, test_run.states, tool.model(), window);
  std::printf("windows: train %zu, held-out %zu\n", train_set.profiles.rows(),
              test_set.profiles.rows());

  const core::PrrEstimator estimator =
      core::PrrEstimator::fit(train_set.profiles, train_set.prr, 1e-2);
  const double train_r2 = estimator.r_squared(train_set.profiles,
                                              train_set.prr);
  const double test_r2 = estimator.r_squared(test_set.profiles, test_set.prr);
  std::printf("R^2: train %.3f, held-out %.3f\n", train_r2, test_r2);

  bench::subsection("fitted PRR impact per root-cause vector");
  std::vector<std::string> labels;
  std::vector<double> values;
  for (std::size_t r = 0; r < estimator.coefficients().size(); ++r) {
    labels.push_back("psi[" + std::to_string(r) + "]");
    values.push_back(-estimator.coefficients()[r]);  // Positive = damaging.
    std::printf("  psi[%zu] %+.4f  %s\n", r, estimator.coefficients()[r],
                tool.interpretations()[r].summary.c_str());
  }

  bench::subsection("held-out predictions vs truth (first 12 windows)");
  for (std::size_t i = 0; i < std::min<std::size_t>(12, test_set.prr.size());
       ++i) {
    std::printf("  t=%7.0fs  predicted %.3f  actual %.3f\n",
                test_set.window_starts[i],
                estimator.predict(test_set.profiles.row_vector(i)),
                test_set.prr[i]);
  }

  bench::shape_check(train_r2 > 0.4,
                     "strength profiles explain in-sample PRR variance");
  bench::shape_check(test_r2 > 0.2,
                     "the PRR model generalizes to a held-out run");

  // At least one of the two most damaging coefficients should belong to a
  // fault-flavored row (routing / contention / queue / link / traffic).
  std::vector<std::pair<double, std::size_t>> by_damage;
  for (std::size_t r = 0; r < estimator.coefficients().size(); ++r)
    by_damage.emplace_back(estimator.coefficients()[r], r);
  std::sort(by_damage.begin(), by_damage.end());
  bool fault_flavored = false;
  for (std::size_t k = 0; k < 2 && k < by_damage.size(); ++k) {
    const auto& interp = tool.interpretations()[by_damage[k].second];
    std::printf("\ndamage rank %zu: psi[%zu] (%s)\n", k + 1,
                by_damage[k].second, interp.summary.c_str());
    for (const auto& [metric, value] : interp.dominant_metrics) {
      switch (metrics::family(metric)) {
        case metrics::MetricFamily::kRouting:
        case metrics::MetricFamily::kContention:
        case metrics::MetricFamily::kQueue:
        case metrics::MetricFamily::kLinkQuality:
        case metrics::MetricFamily::kTraffic:
          fault_flavored = true;
          break;
        default:
          break;
      }
    }
  }
  bench::shape_check(fault_flavored,
                     "a top-2 damaging row is fault-flavored, not benign");
  return bench::shape_summary();
}
