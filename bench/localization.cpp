// Extension bench — incident localization. Two spatially and temporally
// separated jammers hit a field network; incident aggregation (with node
// positions) should produce one localized incident per jam whose estimated
// center lands near the injected epicenter.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/incident.hpp"

using namespace vn2;

int main() {
  bench::section("Extension — spatial localization of incidents");

  scenario::CityseeParams base;
  base.node_count = 120;
  base.area_m = 320.0;
  base.days = 0.5;
  base.background_hazards = false;
  scenario::ScenarioBundle bundle = scenario::citysee_field(base);

  const wsn::Position jam_a{80.0, 80.0};
  const wsn::Position jam_b{240.0, 240.0};
  for (const auto& [center, start] :
       {std::pair<wsn::Position, wsn::Time>{jam_a, 3.0 * 3600.0},
        {jam_b, 8.0 * 3600.0}}) {
    wsn::FaultCommand jam;
    jam.type = wsn::FaultCommand::Type::kJammer;
    jam.center = center;
    jam.radius_m = 70.0;
    jam.start = start;
    jam.end = start + 3600.0;
    jam.magnitude = 0.6;
    bundle.faults.push_back(jam);
  }
  const std::vector<wsn::Position> positions = bundle.config.positions;

  bench::RunData data = bench::run_scenario(bundle);

  core::Vn2Tool::Options options;
  options.training.rank = 12;
  options.training.nmf.max_iterations = 300;
  core::Vn2Tool tool = core::Vn2Tool::train_from_states(data.states, options);

  std::vector<core::Diagnosis> diagnoses;
  diagnoses.reserve(data.states.size());
  for (const trace::StateVector& state : data.states)
    diagnoses.push_back(tool.diagnose_state(state.delta));

  core::IncidentOptions incident_options;
  incident_options.merge_gap = 1800.0;
  incident_options.min_states = 5;
  incident_options.spatial_gap_m = 60.0;
  const auto incidents = core::aggregate_incidents(
      data.states, diagnoses, tool.interpretations(), incident_options,
      positions);

  bench::subsection("detected incidents");
  for (const core::Incident& incident : incidents)
    std::printf("  %s\n", incident.summary.c_str());

  // Match each jam to the best incident overlapping its window.
  auto localization_error = [&](const wsn::Position& truth,
                                wsn::Time start) -> double {
    double best = 1e9;
    for (const core::Incident& incident : incidents) {
      if (!incident.localized) continue;
      if (incident.end < start - 900.0 || incident.start > start + 4500.0)
        continue;
      best = std::min(best, distance(incident.center, truth));
    }
    return best;
  };
  const double error_a = localization_error(jam_a, 3.0 * 3600.0);
  const double error_b = localization_error(jam_b, 8.0 * 3600.0);
  std::printf("\nlocalization error: jam A %.1f m, jam B %.1f m "
              "(jam radius 70 m, area 320 m)\n",
              error_a, error_b);

  bench::shape_check(incidents.size() >= 2,
                     "both jam episodes produce incidents");
  bench::shape_check(error_a < 80.0,
                     "jam A localized within ~one jam radius");
  bench::shape_check(error_b < 80.0,
                     "jam B localized within ~one jam radius");
  return bench::shape_summary();
}
