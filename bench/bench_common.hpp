// Shared infrastructure for the experiment benches: scenario runners,
// table/series printers, ASCII plots, and qualitative shape checks.
//
// Every bench prints the same rows/series the corresponding paper figure or
// table reports, then self-checks the qualitative shape (who wins, where the
// knee/crossover sits) and prints SHAPE-PASS / SHAPE-CHECK lines that
// EXPERIMENTS.md records.
#pragma once

#include <string>
#include <vector>

#include "core/vn2.hpp"
#include "scenario/scenario.hpp"
#include "trace/trace.hpp"

namespace vn2::bench {

/// A fully materialized experiment run.
struct RunData {
  wsn::SimulationResult result;
  trace::Trace trace;
  std::vector<trace::StateVector> states;
};

/// Runs a scenario and extracts trace + states. `warmup` drops states from
/// the tree-formation transient at the head of the run.
RunData run_scenario(const scenario::ScenarioBundle& bundle,
                     wsn::Time warmup = 1800.0);

/// The standard CitySee training run used by the Fig. 3/4 benches
/// (7 days, 286 nodes, ambient hazards), possibly scaled down via the
/// VN2_BENCH_DAYS environment variable (default 7).
RunData citysee_run();

/// Days resolved from VN2_BENCH_DAYS (default `fallback`).
double bench_days(double fallback = 7.0);

/// The Fig. 5 testbed run: 45 nodes, 2 h, removal/re-insert cycles.
RunData testbed_run(scenario::RemovalPattern pattern,
                    std::uint64_t seed = 1340);

/// Splits states at time `t` into (before, after) — the paper's hour-1
/// training / hour-2 testing split.
std::pair<std::vector<trace::StateVector>, std::vector<trace::StateVector>>
split_states(const std::vector<trace::StateVector>& states, wsn::Time t);

/// Trains the paper's testbed model: all states together (extraction
/// skipped), compression factor r = 10.
core::Vn2Tool train_testbed_model(const std::vector<trace::StateVector>& states);

// --- printing --------------------------------------------------------------

void section(const std::string& title);
void subsection(const std::string& title);

/// Prints "name: v1 v2 v3 ..." with fixed precision.
void print_series(const std::string& name, const std::vector<double>& values,
                  int precision = 3);

/// Simple ASCII plot of a series (one row of characters, height levels).
void ascii_plot(const std::string& label, const std::vector<double>& values,
                std::size_t height = 8);

/// Bar chart: one labelled row per value.
void ascii_bars(const std::vector<std::string>& labels,
                const std::vector<double>& values, std::size_t width = 50);

// --- shape checks ------------------------------------------------------------

/// Prints "SHAPE-PASS: msg" or "SHAPE-CHECK: msg" and tracks the outcome.
void shape_check(bool ok, const std::string& message);

/// Prints the final summary ("N/M shape checks passed") and returns the
/// process exit code (0 if all passed).
int shape_summary();

}  // namespace vn2::bench
