// Micro-benchmarks: online diagnosis latency — the NNLS solve of Problem 3
// per fresh state, across compression factors, plus batch throughput. This
// is the cost a sink-side monitor pays per incoming report.
//
// Before the google-benchmark suites run, a serial-vs-parallel batch
// diagnosis comparison writes wall-clock numbers to
// BENCH_parallel_inference.json (skip with --skip-parallel-report).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/inference.hpp"
#include "core/model.hpp"
#include "core/parallel.hpp"
#include "linalg/cpu_features.hpp"
#include "linalg/kernels.hpp"
#include "linalg/nnls.hpp"
#include "linalg/random.hpp"
#include "support/synthetic.hpp"
#include "telemetry_support.hpp"

namespace {

using vn2::core::TrainingOptions;
using vn2::core::TrainingReport;
using vn2::linalg::Matrix;
using vn2::linalg::Vector;

TrainingReport trained_model(std::size_t rank) {
  auto synthetic = vn2::testing::synthetic_states(2000, 77);
  TrainingOptions options;
  options.rank = rank;
  options.nmf.max_iterations = 120;
  return vn2::core::train(synthetic, options);
}

void BM_DiagnoseSingleState(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const TrainingReport report = trained_model(rank);
  const auto probes = vn2::testing::synthetic_states(64, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto diagnosis = vn2::core::diagnose(
        report.model, probes.row_vector(i % probes.rows()));
    benchmark::DoNotOptimize(diagnosis.residual);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiagnoseSingleState)->Arg(10)->Arg(25)->Arg(40);

void BM_BatchCorrelationStrengths(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);
  for (auto _ : state) {
    const Matrix w = vn2::core::correlation_strengths(report.model, probes);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchCorrelationStrengths)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_DiagnoseBatchThreads(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);
  vn2::core::set_num_threads(threads);
  for (auto _ : state) {
    const auto diagnoses = vn2::core::diagnose_batch(report.model, probes);
    benchmark::DoNotOptimize(diagnoses.data());
  }
  vn2::core::set_num_threads(0);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DiagnoseBatchThreads)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_RawNnls(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const Matrix a = vn2::linalg::random_uniform_matrix(86, r, 3, 0.0, 1.0);
  const Vector b = vn2::linalg::random_uniform_vector(86, 4, 0.0, 2.0);
  for (auto _ : state) {
    auto result = vn2::linalg::nnls(a, b);
    benchmark::DoNotOptimize(result.x.data());
  }
}
BENCHMARK(BM_RawNnls)->Arg(10)->Arg(25)->Arg(40);

void BM_ExceptionScore(benchmark::State& state) {
  const TrainingReport report = trained_model(25);
  const auto probes = vn2::testing::synthetic_states(64, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        report.model.exception_score(probes.row_vector(i % probes.rows())));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExceptionScore);

double seconds_since(std::chrono::steady_clock::time_point start) {
  // vn2-lint: allow(nondeterminism-clock)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serial-vs-parallel batch diagnosis: the per-state NNLS solves across the
// worker pool, with a weight-identity check between the two runs.
void run_parallel_report(const char* json_path) {
  const std::size_t batch = 2000;
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t parallel_threads = std::max<std::size_t>(4, hardware);

  vn2::core::set_num_threads(1);
  // vn2-lint: allow(nondeterminism-clock)
  auto start = std::chrono::steady_clock::now();
  const auto serial = vn2::core::diagnose_batch(report.model, probes);
  const double serial_seconds = seconds_since(start);

  vn2::core::set_num_threads(parallel_threads);
  // vn2-lint: allow(nondeterminism-clock)
  start = std::chrono::steady_clock::now();
  const auto parallel = vn2::core::diagnose_batch(report.model, probes);
  const double parallel_seconds = seconds_since(start);
  vn2::core::set_num_threads(0);

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].residual == parallel[i].residual &&
                serial[i].weights.size() == parallel[i].weights.size();
    for (std::size_t r = 0; identical && r < serial[i].weights.size(); ++r)
      identical = serial[i].weights[r] == parallel[i].weights[r];
  }

  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf("diagnose_batch of %zu states (r=25): serial %.3fs, "
              "%zu threads %.3fs, speedup %.2fx, weights %s\n",
              batch, serial_seconds, parallel_threads, parallel_seconds,
              speedup, identical ? "identical" : "DIVERGED");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"diagnose_batch\",\n"
               "  \"batch\": %zu,\n"
               "  \"rank\": 25,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"serial\": {\"threads\": 1, \"seconds\": %.6f},\n"
               "  \"parallel\": {\"threads\": %zu, \"seconds\": %.6f},\n"
               "  \"speedup\": %.4f,\n"
               "  \"bit_identical\": %s,\n"
               "  \"telemetry\": %s\n"
               "}\n",
               batch, hardware, serial_seconds, parallel_threads,
               parallel_seconds, speedup, identical ? "true" : "false",
               vn2::bench_support::telemetry_snapshot_json().c_str());
  std::fclose(out);
  std::printf("parallel report -> %s\n", json_path);
}

// Per-backend serial diagnosis: the whole diagnose path (NNLS against Ψᵀ)
// under every kernel backend this build-and-host can run. Diagnosis must
// not depend on which backend ran it: reference and blocked match
// bit-for-bit, the simd backend stays within 1e-12 relative on every
// weight. The JSON header records the detected CPU features.
void run_linalg_backend_report(const char* json_path) {
  using vn2::linalg::Backend;
  const std::size_t batch = 1000;
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);

  vn2::core::set_num_threads(1);
  auto run_with = [&](Backend be, double* seconds) {
    vn2::linalg::set_backend(be);
    // vn2-lint: allow(nondeterminism-clock)
    const auto start = std::chrono::steady_clock::now();
    auto diagnoses = vn2::core::diagnose_batch(report.model, probes);
    *seconds = seconds_since(start);
    return diagnoses;
  };
  std::vector<Backend> backends = {Backend::kReference};
  if (vn2::linalg::blocked_kernels_compiled())
    backends.push_back(Backend::kBlocked);
  if (vn2::linalg::simd_available()) backends.push_back(Backend::kSimd);
  std::vector<double> seconds(backends.size(), 0.0);
  std::vector<std::vector<vn2::core::Diagnosis>> results;
  for (std::size_t k = 0; k < backends.size(); ++k)
    results.push_back(run_with(backends[k], &seconds[k]));
  vn2::core::set_num_threads(0);
  vn2::linalg::set_backend(vn2::linalg::parse_backend("auto").value());

  // Reference row is index 0; blocked must equal it exactly, simd within
  // the documented relative tolerance.
  bool scalar_identical = true;
  double max_rel_dev = 0.0;
  for (std::size_t k = 1; k < backends.size(); ++k) {
    for (std::size_t i = 0; i < batch; ++i) {
      const auto& want = results[0][i];
      const auto& got = results[k][i];
      auto dev = [&](double g, double w) {
        return std::abs(g - w) / std::max(1.0, std::abs(w));
      };
      double d = dev(got.residual, want.residual);
      for (std::size_t r = 0; r < want.weights.size(); ++r)
        d = std::max(d, dev(got.weights[r], want.weights[r]));
      if (backends[k] == Backend::kBlocked && d != 0.0)
        scalar_identical = false;
      max_rel_dev = std::max(max_rel_dev, d);
    }
  }
  const bool within_tolerance = max_rel_dev <= 1e-12;

  std::string json_rows;
  char line[128];
  for (std::size_t k = 0; k < backends.size(); ++k) {
    const char* name = vn2::linalg::backend_name(backends[k]);
    std::printf("diagnose_batch of %zu states (r=25, 1 thread): %-9s %.3fs"
                " (%.2fx vs reference)\n",
                batch, name, seconds[k],
                seconds[k] > 0.0 ? seconds[0] / seconds[k] : 0.0);
    std::snprintf(line, sizeof(line),
                  "    {\"backend\": \"%s\", \"threads\": 1, "
                  "\"seconds\": %.6f}%s\n",
                  name, seconds[k], k + 1 < backends.size() ? "," : "");
    json_rows += line;
  }
  std::printf("diagnose_batch backends [cpu %s]: weights %s, max relative "
              "deviation %.3e (%s 1e-12)\n",
              vn2::linalg::cpu_features_summary().c_str(),
              scalar_identical ? "identical" : "DIVERGED", max_rel_dev,
              within_tolerance ? "within" : "EXCEEDS");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"diagnose_batch_backends\",\n"
               "  \"batch\": %zu,\n"
               "  \"rank\": 25,\n"
               "  \"cpu_features\": \"%s\",\n"
               "  \"blocked_compiled\": %s,\n"
               "  \"simd_compiled\": %s,\n"
               "  \"simd_available\": %s,\n"
               "  \"rows\": [\n%s"
               "  ],\n"
               "  \"scalar_backends_bit_identical\": %s,\n"
               "  \"max_relative_deviation\": %.6e,\n"
               "  \"within_parity_tolerance\": %s\n"
               "}\n",
               batch, vn2::linalg::cpu_features_summary().c_str(),
               vn2::linalg::blocked_kernels_compiled() ? "true" : "false",
               vn2::linalg::simd_kernels_compiled() ? "true" : "false",
               vn2::linalg::simd_available() ? "true" : "false",
               json_rows.c_str(), scalar_identical ? "true" : "false",
               max_rel_dev, within_tolerance ? "true" : "false");
  std::fclose(out);
  std::printf("linalg backend report -> %s\n", json_path);
}

// One-shot diagnose_batch vs chunked diagnose_stream on a sink-scale state
// stream: the streaming path must match per state bit-for-bit while holding
// peak memory to one batch and amortizing NNLS workspace setup. Both runs
// use the same thread budget, so the delta isolates the streaming overhead
// (or gain, from workspace reuse).
void run_stream_report(const char* json_path) {
  const std::size_t total = 20000;
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(total, 6);

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t threads = std::max<std::size_t>(4, hardware);
  vn2::core::set_num_threads(threads);

  // vn2-lint: allow(nondeterminism-clock)
  auto start = std::chrono::steady_clock::now();
  const auto one_shot = vn2::core::diagnose_batch(report.model, probes);
  const double batch_seconds = seconds_since(start);

  vn2::core::StreamOptions options;
  options.batch_size = 2048;
  std::vector<vn2::core::Diagnosis> streamed;
  streamed.reserve(total);
  // vn2-lint: allow(nondeterminism-clock)
  start = std::chrono::steady_clock::now();
  const auto stream_report = vn2::core::diagnose_stream(
      report.model, probes, options,
      [&](std::size_t, const std::vector<vn2::core::Diagnosis>& chunk) {
        streamed.insert(streamed.end(), chunk.begin(), chunk.end());
      });
  const double stream_seconds = seconds_since(start);
  vn2::core::set_num_threads(0);

  bool identical = one_shot.size() == streamed.size();
  for (std::size_t i = 0; identical && i < one_shot.size(); ++i) {
    identical = one_shot[i].residual == streamed[i].residual &&
                one_shot[i].weights.size() == streamed[i].weights.size();
    for (std::size_t r = 0; identical && r < one_shot[i].weights.size(); ++r)
      identical = one_shot[i].weights[r] == streamed[i].weights[r];
  }

  const double batch_rate = batch_seconds > 0.0 ? total / batch_seconds : 0.0;
  const double stream_rate =
      stream_seconds > 0.0 ? total / stream_seconds : 0.0;
  const double speedup =
      stream_seconds > 0.0 ? batch_seconds / stream_seconds : 0.0;
  std::printf("diagnose_stream of %zu states (r=25, %zu threads, batches of "
              "%zu): one-shot %.3fs (%.0f/s), stream %.3fs (%.0f/s), "
              "%.2fx, %zu batches, outputs %s\n",
              total, threads, options.batch_size, batch_seconds, batch_rate,
              stream_seconds, stream_rate, speedup, stream_report.batches,
              identical ? "identical" : "DIVERGED");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"diagnose_stream\",\n"
               "  \"states\": %zu,\n"
               "  \"rank\": 25,\n"
               "  \"threads\": %zu,\n"
               "  \"batch_size\": %zu,\n"
               "  \"batches\": %zu,\n"
               "  \"rows\": [\n"
               "    {\"path\": \"diagnose_batch\", \"seconds\": %.6f, "
               "\"states_per_second\": %.1f},\n"
               "    {\"path\": \"diagnose_stream\", \"seconds\": %.6f, "
               "\"states_per_second\": %.1f}\n"
               "  ],\n"
               "  \"stream_speedup\": %.4f,\n"
               "  \"bit_identical\": %s,\n"
               "  \"telemetry\": %s\n"
               "}\n",
               total, threads, options.batch_size, stream_report.batches,
               batch_seconds, batch_rate, stream_seconds, stream_rate,
               speedup, identical ? "true" : "false",
               vn2::bench_support::telemetry_snapshot_json().c_str());
  std::fclose(out);
  std::printf("stream report -> %s\n", json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool skip_report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-parallel-report") == 0) {
      skip_report = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!skip_report) {
    run_parallel_report("BENCH_parallel_inference.json");
    run_linalg_backend_report("BENCH_linalg_inference.json");
    run_stream_report("BENCH_inference_stream.json");
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
