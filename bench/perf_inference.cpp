// Micro-benchmarks: online diagnosis latency — the NNLS solve of Problem 3
// per fresh state, across compression factors, plus batch throughput. This
// is the cost a sink-side monitor pays per incoming report.
//
// Before the google-benchmark suites run, a serial-vs-parallel batch
// diagnosis comparison writes wall-clock numbers to
// BENCH_parallel_inference.json (skip with --skip-parallel-report).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "core/inference.hpp"
#include "core/model.hpp"
#include "core/parallel.hpp"
#include "linalg/kernels.hpp"
#include "linalg/nnls.hpp"
#include "linalg/random.hpp"
#include "support/synthetic.hpp"
#include "telemetry_support.hpp"

namespace {

using vn2::core::TrainingOptions;
using vn2::core::TrainingReport;
using vn2::linalg::Matrix;
using vn2::linalg::Vector;

TrainingReport trained_model(std::size_t rank) {
  auto synthetic = vn2::testing::synthetic_states(2000, 77);
  TrainingOptions options;
  options.rank = rank;
  options.nmf.max_iterations = 120;
  return vn2::core::train(synthetic, options);
}

void BM_DiagnoseSingleState(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const TrainingReport report = trained_model(rank);
  const auto probes = vn2::testing::synthetic_states(64, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto diagnosis = vn2::core::diagnose(
        report.model, probes.row_vector(i % probes.rows()));
    benchmark::DoNotOptimize(diagnosis.residual);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiagnoseSingleState)->Arg(10)->Arg(25)->Arg(40);

void BM_BatchCorrelationStrengths(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);
  for (auto _ : state) {
    const Matrix w = vn2::core::correlation_strengths(report.model, probes);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchCorrelationStrengths)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_DiagnoseBatchThreads(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);
  vn2::core::set_num_threads(threads);
  for (auto _ : state) {
    const auto diagnoses = vn2::core::diagnose_batch(report.model, probes);
    benchmark::DoNotOptimize(diagnoses.data());
  }
  vn2::core::set_num_threads(0);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DiagnoseBatchThreads)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_RawNnls(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const Matrix a = vn2::linalg::random_uniform_matrix(86, r, 3, 0.0, 1.0);
  const Vector b = vn2::linalg::random_uniform_vector(86, 4, 0.0, 2.0);
  for (auto _ : state) {
    auto result = vn2::linalg::nnls(a, b);
    benchmark::DoNotOptimize(result.x.data());
  }
}
BENCHMARK(BM_RawNnls)->Arg(10)->Arg(25)->Arg(40);

void BM_ExceptionScore(benchmark::State& state) {
  const TrainingReport report = trained_model(25);
  const auto probes = vn2::testing::synthetic_states(64, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        report.model.exception_score(probes.row_vector(i % probes.rows())));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExceptionScore);

double seconds_since(std::chrono::steady_clock::time_point start) {
  // vn2-lint: allow(nondeterminism-clock)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serial-vs-parallel batch diagnosis: the per-state NNLS solves across the
// worker pool, with a weight-identity check between the two runs.
void run_parallel_report(const char* json_path) {
  const std::size_t batch = 2000;
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t parallel_threads = std::max<std::size_t>(4, hardware);

  vn2::core::set_num_threads(1);
  // vn2-lint: allow(nondeterminism-clock)
  auto start = std::chrono::steady_clock::now();
  const auto serial = vn2::core::diagnose_batch(report.model, probes);
  const double serial_seconds = seconds_since(start);

  vn2::core::set_num_threads(parallel_threads);
  // vn2-lint: allow(nondeterminism-clock)
  start = std::chrono::steady_clock::now();
  const auto parallel = vn2::core::diagnose_batch(report.model, probes);
  const double parallel_seconds = seconds_since(start);
  vn2::core::set_num_threads(0);

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].residual == parallel[i].residual &&
                serial[i].weights.size() == parallel[i].weights.size();
    for (std::size_t r = 0; identical && r < serial[i].weights.size(); ++r)
      identical = serial[i].weights[r] == parallel[i].weights[r];
  }

  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf("diagnose_batch of %zu states (r=25): serial %.3fs, "
              "%zu threads %.3fs, speedup %.2fx, weights %s\n",
              batch, serial_seconds, parallel_threads, parallel_seconds,
              speedup, identical ? "identical" : "DIVERGED");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"diagnose_batch\",\n"
               "  \"batch\": %zu,\n"
               "  \"rank\": 25,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"serial\": {\"threads\": 1, \"seconds\": %.6f},\n"
               "  \"parallel\": {\"threads\": %zu, \"seconds\": %.6f},\n"
               "  \"speedup\": %.4f,\n"
               "  \"bit_identical\": %s,\n"
               "  \"telemetry\": %s\n"
               "}\n",
               batch, hardware, serial_seconds, parallel_threads,
               parallel_seconds, speedup, identical ? "true" : "false",
               vn2::bench_support::telemetry_snapshot_json().c_str());
  std::fclose(out);
  std::printf("parallel report -> %s\n", json_path);
}

// Per-backend serial diagnosis: the whole diagnose path (NNLS against Ψᵀ)
// under each kernel backend, with a weight-identity check — diagnosis must
// not depend on which backend ran it.
void run_linalg_backend_report(const char* json_path) {
  using vn2::linalg::Backend;
  const std::size_t batch = 1000;
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);

  vn2::core::set_num_threads(1);
  auto run_with = [&](Backend be, double* seconds) {
    vn2::linalg::set_backend(be);
    // vn2-lint: allow(nondeterminism-clock)
    const auto start = std::chrono::steady_clock::now();
    auto diagnoses = vn2::core::diagnose_batch(report.model, probes);
    *seconds = seconds_since(start);
    return diagnoses;
  };
  double reference_seconds = 0.0, blocked_seconds = 0.0;
  const auto reference = run_with(Backend::kReference, &reference_seconds);
  const auto blocked = run_with(Backend::kBlocked, &blocked_seconds);
  vn2::core::set_num_threads(0);
  vn2::linalg::set_backend(vn2::linalg::parse_backend("auto").value());

  bool identical = reference.size() == blocked.size();
  for (std::size_t i = 0; identical && i < reference.size(); ++i) {
    identical = reference[i].residual == blocked[i].residual;
    for (std::size_t r = 0; identical && r < reference[i].weights.size(); ++r)
      identical = reference[i].weights[r] == blocked[i].weights[r];
  }

  const double speedup =
      blocked_seconds > 0.0 ? reference_seconds / blocked_seconds : 0.0;
  std::printf("diagnose_batch of %zu states (r=25, 1 thread): reference "
              "%.3fs, blocked %.3fs, speedup %.2fx, weights %s\n",
              batch, reference_seconds, blocked_seconds, speedup,
              identical ? "identical" : "DIVERGED");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"diagnose_batch_backends\",\n"
               "  \"batch\": %zu,\n"
               "  \"rank\": 25,\n"
               "  \"blocked_compiled\": %s,\n"
               "  \"rows\": [\n"
               "    {\"backend\": \"reference\", \"threads\": 1, "
               "\"seconds\": %.6f},\n"
               "    {\"backend\": \"blocked\", \"threads\": 1, "
               "\"seconds\": %.6f}\n"
               "  ],\n"
               "  \"speedup\": %.4f,\n"
               "  \"bit_identical\": %s\n"
               "}\n",
               batch,
               vn2::linalg::blocked_kernels_compiled() ? "true" : "false",
               reference_seconds, blocked_seconds, speedup,
               identical ? "true" : "false");
  std::fclose(out);
  std::printf("linalg backend report -> %s\n", json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool skip_report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-parallel-report") == 0) {
      skip_report = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!skip_report) {
    run_parallel_report("BENCH_parallel_inference.json");
    run_linalg_backend_report("BENCH_linalg_inference.json");
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
