// Micro-benchmarks: online diagnosis latency — the NNLS solve of Problem 3
// per fresh state, across compression factors, plus batch throughput. This
// is the cost a sink-side monitor pays per incoming report.
#include <benchmark/benchmark.h>

#include "core/inference.hpp"
#include "core/model.hpp"
#include "linalg/nnls.hpp"
#include "linalg/random.hpp"
#include "test_support_synthetic.hpp"

namespace {

using vn2::core::TrainingOptions;
using vn2::core::TrainingReport;
using vn2::linalg::Matrix;
using vn2::linalg::Vector;

TrainingReport trained_model(std::size_t rank) {
  auto synthetic = vn2::bench_support::synthetic_states(2000, 77);
  TrainingOptions options;
  options.rank = rank;
  options.nmf.max_iterations = 120;
  return vn2::core::train(synthetic, options);
}

void BM_DiagnoseSingleState(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const TrainingReport report = trained_model(rank);
  const auto probes = vn2::bench_support::synthetic_states(64, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto diagnosis = vn2::core::diagnose(
        report.model, probes.row_vector(i % probes.rows()));
    benchmark::DoNotOptimize(diagnosis.residual);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiagnoseSingleState)->Arg(10)->Arg(25)->Arg(40);

void BM_BatchCorrelationStrengths(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::bench_support::synthetic_states(batch, 6);
  for (auto _ : state) {
    const Matrix w = vn2::core::correlation_strengths(report.model, probes);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchCorrelationStrengths)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_RawNnls(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const Matrix a = vn2::linalg::random_uniform_matrix(86, r, 3, 0.0, 1.0);
  const Vector b = vn2::linalg::random_uniform_vector(86, 4, 0.0, 2.0);
  for (auto _ : state) {
    auto result = vn2::linalg::nnls(a, b);
    benchmark::DoNotOptimize(result.x.data());
  }
}
BENCHMARK(BM_RawNnls)->Arg(10)->Arg(25)->Arg(40);

void BM_ExceptionScore(benchmark::State& state) {
  const TrainingReport report = trained_model(25);
  const auto probes = vn2::bench_support::synthetic_states(64, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        report.model.exception_score(probes.row_vector(i % probes.rows())));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExceptionScore);

}  // namespace

BENCHMARK_MAIN();
