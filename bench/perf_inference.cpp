// Micro-benchmarks: online diagnosis latency — the NNLS solve of Problem 3
// per fresh state, across compression factors, plus batch throughput. This
// is the cost a sink-side monitor pays per incoming report.
//
// Before the google-benchmark suites run, a serial-vs-parallel batch
// diagnosis comparison writes wall-clock numbers to
// BENCH_parallel_inference.json (skip with --skip-parallel-report).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_record.hpp"
#include "benchstat/record.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"
#include "core/parallel.hpp"
#include "linalg/cpu_features.hpp"
#include "linalg/kernels.hpp"
#include "linalg/nnls.hpp"
#include "linalg/random.hpp"
#include "support/synthetic.hpp"
#include "telemetry_support.hpp"

namespace {

using vn2::core::TrainingOptions;
using vn2::core::TrainingReport;
using vn2::linalg::Matrix;
using vn2::linalg::Vector;

TrainingReport trained_model(std::size_t rank) {
  auto synthetic = vn2::testing::synthetic_states(2000, 77);
  TrainingOptions options;
  options.rank = rank;
  options.nmf.max_iterations = 120;
  return vn2::core::train(synthetic, options);
}

void BM_DiagnoseSingleState(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const TrainingReport report = trained_model(rank);
  const auto probes = vn2::testing::synthetic_states(64, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto diagnosis = vn2::core::diagnose(
        report.model, probes.row_vector(i % probes.rows()));
    benchmark::DoNotOptimize(diagnosis.residual);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiagnoseSingleState)->Arg(10)->Arg(25)->Arg(40);

void BM_BatchCorrelationStrengths(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);
  for (auto _ : state) {
    const Matrix w = vn2::core::correlation_strengths(report.model, probes);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchCorrelationStrengths)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_DiagnoseBatchThreads(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);
  vn2::core::set_num_threads(threads);
  for (auto _ : state) {
    const auto diagnoses = vn2::core::diagnose_batch(report.model, probes);
    benchmark::DoNotOptimize(diagnoses.data());
  }
  vn2::core::set_num_threads(0);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DiagnoseBatchThreads)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_RawNnls(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const Matrix a = vn2::linalg::random_uniform_matrix(86, r, 3, 0.0, 1.0);
  const Vector b = vn2::linalg::random_uniform_vector(86, 4, 0.0, 2.0);
  for (auto _ : state) {
    auto result = vn2::linalg::nnls(a, b);
    benchmark::DoNotOptimize(result.x.data());
  }
}
BENCHMARK(BM_RawNnls)->Arg(10)->Arg(25)->Arg(40);

void BM_ExceptionScore(benchmark::State& state) {
  const TrainingReport report = trained_model(25);
  const auto probes = vn2::testing::synthetic_states(64, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        report.model.exception_score(probes.row_vector(i % probes.rows())));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExceptionScore);

double seconds_since(std::chrono::steady_clock::time_point start) {
  // vn2-lint: allow(nondeterminism-clock)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serial-vs-parallel batch diagnosis: the per-state NNLS solves across the
// worker pool, with a weight-identity check between the two runs.
void run_parallel_report(const char* json_path) {
  // Batch size scales with VN2_BENCH_DAYS (7 = full paper scale).
  const std::size_t batch = vn2::bench_support::scaled_size(2000, 200);
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t parallel_threads = std::max<std::size_t>(4, hardware);

  const std::size_t reps = vn2::bench_support::bench_reps();
  std::vector<double> serial_samples, parallel_samples, speedup_samples;
  // Per-case RSS windows: each sampler covers every rep of its case.
  vn2::telemetry::ResourceSampler serial_sampler, parallel_sampler;
  bool identical = true;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    vn2::core::set_num_threads(1);
    // vn2-lint: allow(nondeterminism-clock)
    auto start = std::chrono::steady_clock::now();
    serial_sampler.start();
    const auto serial = vn2::core::diagnose_batch(report.model, probes);
    serial_sampler.stop();
    serial_samples.push_back(seconds_since(start));

    vn2::core::set_num_threads(parallel_threads);
    // vn2-lint: allow(nondeterminism-clock)
    start = std::chrono::steady_clock::now();
    parallel_sampler.start();
    const auto parallel = vn2::core::diagnose_batch(report.model, probes);
    parallel_sampler.stop();
    parallel_samples.push_back(seconds_since(start));
    speedup_samples.push_back(parallel_samples.back() > 0.0
                                  ? serial_samples.back() /
                                        parallel_samples.back()
                                  : 0.0);

    if (rep == 0) {
      identical = serial.size() == parallel.size();
      for (std::size_t i = 0; identical && i < serial.size(); ++i) {
        identical = serial[i].residual == parallel[i].residual &&
                    serial[i].weights.size() == parallel[i].weights.size();
        for (std::size_t r = 0; identical && r < serial[i].weights.size();
             ++r)
          identical = serial[i].weights[r] == parallel[i].weights[r];
      }
    }
  }
  vn2::core::set_num_threads(0);

  std::printf("diagnose_batch of %zu states (r=25): serial %.3fs, "
              "%zu threads %.3fs, speedup %.2fx (medians of %zu), "
              "weights %s\n",
              batch, vn2::benchstat::summarize(serial_samples).median,
              parallel_threads,
              vn2::benchstat::summarize(parallel_samples).median,
              vn2::benchstat::summarize(speedup_samples).median, reps,
              identical ? "identical" : "DIVERGED");

  auto record = vn2::bench_support::make_record(
      "diagnose_batch",
      "serial vs parallel diagnose_batch of 2000 states, r=25");
  record.environment.threads = parallel_threads;
  record.scale = {{"batch", static_cast<double>(batch)},
                  {"rank", 25.0},
                  {"parallel_threads", static_cast<double>(parallel_threads)}};
  record.cases.push_back(
      {"serial",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    serial_samples)},
       vn2::bench_support::case_resources(serial_sampler)});
  record.cases.push_back(
      {"parallel",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    parallel_samples)},
       vn2::bench_support::case_resources(parallel_sampler)});
  // Core-count-dependent, therefore informational rather than gated.
  record.cases.push_back(
      {"parallel_vs_serial",
       {vn2::benchstat::make_metric("speedup", "x", false, false,
                                    speedup_samples)}});
  record.checks.push_back({"diagnose_batch_bit_identical", identical});
  vn2::bench_support::write_record_file(json_path, record);
}

// Per-backend serial diagnosis: the whole diagnose path (NNLS against Ψᵀ)
// under every kernel backend this build-and-host can run. Diagnosis must
// not depend on which backend ran it: reference and blocked match
// bit-for-bit, the simd backend stays within 1e-12 relative on every
// weight. The JSON header records the detected CPU features.
void run_linalg_backend_report(const char* json_path) {
  using vn2::linalg::Backend;
  // The per-backend speedup ratios are gated; the floor keeps each timed
  // phase long enough (hundreds of ms) that the ratio is stable run to
  // run even at quick scale.
  const std::size_t batch = vn2::bench_support::scaled_size(1000, 400);
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(batch, 6);

  vn2::core::set_num_threads(1);
  const std::size_t reps = vn2::bench_support::bench_reps();
  auto run_with = [&](Backend be, std::vector<double>* samples) {
    vn2::linalg::set_backend(be);
    std::vector<vn2::core::Diagnosis> diagnoses;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      // vn2-lint: allow(nondeterminism-clock)
      const auto start = std::chrono::steady_clock::now();
      diagnoses = vn2::core::diagnose_batch(report.model, probes);
      samples->push_back(seconds_since(start));
    }
    return diagnoses;
  };
  std::vector<Backend> backends = {Backend::kReference};
  if (vn2::linalg::blocked_kernels_compiled())
    backends.push_back(Backend::kBlocked);
  if (vn2::linalg::simd_available()) backends.push_back(Backend::kSimd);
  std::vector<std::vector<double>> samples(backends.size());
  std::vector<std::vector<vn2::core::Diagnosis>> results;
  for (std::size_t k = 0; k < backends.size(); ++k)
    results.push_back(run_with(backends[k], &samples[k]));
  vn2::core::set_num_threads(0);
  vn2::linalg::set_backend(vn2::linalg::parse_backend("auto").value());

  // Reference row is index 0; blocked must equal it exactly, simd within
  // the documented relative tolerance.
  bool scalar_identical = true;
  double max_rel_dev = 0.0;
  for (std::size_t k = 1; k < backends.size(); ++k) {
    for (std::size_t i = 0; i < batch; ++i) {
      const auto& want = results[0][i];
      const auto& got = results[k][i];
      auto dev = [&](double g, double w) {
        return std::abs(g - w) / std::max(1.0, std::abs(w));
      };
      double d = dev(got.residual, want.residual);
      for (std::size_t r = 0; r < want.weights.size(); ++r)
        d = std::max(d, dev(got.weights[r], want.weights[r]));
      if (backends[k] == Backend::kBlocked && d != 0.0)
        scalar_identical = false;
      max_rel_dev = std::max(max_rel_dev, d);
    }
  }
  const bool within_tolerance = max_rel_dev <= 1e-12;

  auto median_of = [](const std::vector<double>& values) {
    return values.empty() ? 0.0 : vn2::benchstat::summarize(values).median;
  };
  // Rep-paired ratios (same index in both sample sets) cancel shared
  // machine noise, which is what makes these gateable.
  auto ratio_samples = [&](std::size_t fast, std::size_t slow) {
    std::vector<double> out;
    const std::size_t n =
        std::min(samples[fast].size(), samples[slow].size());
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(samples[fast][i] > 0.0
                        ? samples[slow][i] / samples[fast][i]
                        : 0.0);
    return out;
  };
  for (std::size_t k = 0; k < backends.size(); ++k) {
    const char* name = vn2::linalg::backend_name(backends[k]);
    std::printf("diagnose_batch of %zu states (r=25, 1 thread): %-9s %.3fs"
                " (%.2fx vs reference, medians of %zu)\n",
                batch, name, median_of(samples[k]),
                median_of(samples[k]) > 0.0
                    ? median_of(samples[0]) / median_of(samples[k])
                    : 0.0,
                reps);
  }
  std::printf("diagnose_batch backends [cpu %s]: weights %s, max relative "
              "deviation %.3e (%s 1e-12)\n",
              vn2::linalg::cpu_features_summary().c_str(),
              scalar_identical ? "identical" : "DIVERGED", max_rel_dev,
              within_tolerance ? "within" : "EXCEEDS");

  auto record = vn2::bench_support::make_record(
      "diagnose_batch_backends",
      "serial diagnose_batch of 1000 states, r=25, per compiled backend");
  record.environment.threads = 1;
  record.scale = {{"batch", static_cast<double>(batch)},
                  {"rank", 25.0},
                  {"backends", static_cast<double>(backends.size())}};
  for (std::size_t k = 0; k < backends.size(); ++k)
    record.cases.push_back(
        {std::string(vn2::linalg::backend_name(backends[k])),
         {vn2::benchstat::make_metric("seconds", "s", true, false,
                                      samples[k])}});
  vn2::benchstat::Case ratios{"ratios", {}};
  for (std::size_t k = 1; k < backends.size(); ++k) {
    const std::string name = vn2::linalg::backend_name(backends[k]);
    ratios.metrics.push_back(vn2::benchstat::make_metric(
        name + "_speedup_over_reference", "x", false, true,
        ratio_samples(k, 0)));
  }
  record.cases.push_back(std::move(ratios));
  record.checks.push_back(
      {"scalar_backends_bit_identical", scalar_identical});
  record.checks.push_back({"within_parity_tolerance", within_tolerance});
  vn2::bench_support::write_record_file(json_path, record);
}

// One-shot diagnose_batch vs chunked diagnose_stream on a sink-scale state
// stream: the streaming path must match per state bit-for-bit while holding
// peak memory to one batch and amortizing NNLS workspace setup. Both runs
// use the same thread budget, so the delta isolates the streaming overhead
// (or gain, from workspace reuse).
void run_stream_report(const char* json_path) {
  const std::size_t total = vn2::bench_support::scaled_size(20000, 2000);
  const TrainingReport report = trained_model(25);
  const Matrix probes = vn2::testing::synthetic_states(total, 6);

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t threads = std::max<std::size_t>(4, hardware);
  vn2::core::set_num_threads(threads);

  vn2::core::StreamOptions options;
  options.batch_size = 2048;
  const std::size_t reps = vn2::bench_support::bench_reps();
  std::vector<double> batch_samples, stream_samples, speedup_samples;
  // The RSS series is the point of this comparison: streaming should
  // plateau at one batch while one-shot grows with the whole stream.
  vn2::telemetry::ResourceSampler batch_sampler, stream_sampler;
  bool identical = true;
  std::size_t batches = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // vn2-lint: allow(nondeterminism-clock)
    auto start = std::chrono::steady_clock::now();
    batch_sampler.start();
    const auto one_shot = vn2::core::diagnose_batch(report.model, probes);
    batch_sampler.stop();
    batch_samples.push_back(seconds_since(start));

    std::vector<vn2::core::Diagnosis> streamed;
    streamed.reserve(total);
    // vn2-lint: allow(nondeterminism-clock)
    start = std::chrono::steady_clock::now();
    stream_sampler.start();
    const auto stream_report = vn2::core::diagnose_stream(
        report.model, probes, options,
        [&](std::size_t, const std::vector<vn2::core::Diagnosis>& chunk) {
          streamed.insert(streamed.end(), chunk.begin(), chunk.end());
        });
    stream_sampler.stop();
    stream_samples.push_back(seconds_since(start));
    speedup_samples.push_back(stream_samples.back() > 0.0
                                  ? batch_samples.back() /
                                        stream_samples.back()
                                  : 0.0);

    if (rep == 0) {
      batches = stream_report.batches;
      identical = one_shot.size() == streamed.size();
      for (std::size_t i = 0; identical && i < one_shot.size(); ++i) {
        identical = one_shot[i].residual == streamed[i].residual &&
                    one_shot[i].weights.size() == streamed[i].weights.size();
        for (std::size_t r = 0; identical && r < one_shot[i].weights.size();
             ++r)
          identical = one_shot[i].weights[r] == streamed[i].weights[r];
      }
    }
  }
  vn2::core::set_num_threads(0);

  const double batch_median =
      vn2::benchstat::summarize(batch_samples).median;
  const double stream_median =
      vn2::benchstat::summarize(stream_samples).median;
  std::printf("diagnose_stream of %zu states (r=25, %zu threads, batches of "
              "%zu): one-shot %.3fs (%.0f/s), stream %.3fs (%.0f/s), "
              "%.2fx (medians of %zu), %zu batches, outputs %s\n",
              total, threads, options.batch_size, batch_median,
              batch_median > 0.0 ? total / batch_median : 0.0, stream_median,
              stream_median > 0.0 ? total / stream_median : 0.0,
              vn2::benchstat::summarize(speedup_samples).median, reps,
              batches, identical ? "identical" : "DIVERGED");

  auto record = vn2::bench_support::make_record(
      "diagnose_stream",
      "one-shot diagnose_batch vs chunked diagnose_stream over a "
      "sink-scale state stream, r=25");
  record.environment.threads = threads;
  record.scale = {{"states", static_cast<double>(total)},
                  {"rank", 25.0},
                  {"threads", static_cast<double>(threads)},
                  {"batch_size", static_cast<double>(options.batch_size)},
                  {"batches", static_cast<double>(batches)}};
  record.cases.push_back(
      {"diagnose_batch",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    batch_samples)},
       vn2::bench_support::case_resources(batch_sampler)});
  record.cases.push_back(
      {"diagnose_stream",
       {vn2::benchstat::make_metric("seconds", "s", true, false,
                                    stream_samples)},
       vn2::bench_support::case_resources(stream_sampler)});
  // Both paths share the thread budget, so their ratio is core-count
  // independent and safe to gate.
  record.cases.push_back(
      {"stream_vs_batch",
       {vn2::benchstat::make_metric("stream_speedup", "x", false, true,
                                    speedup_samples)}});
  record.checks.push_back({"diagnose_stream_bit_identical", identical});
  vn2::bench_support::write_record_file(json_path, record);
}

}  // namespace

int main(int argc, char** argv) {
  bool skip_report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-parallel-report") == 0) {
      skip_report = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!skip_report) {
    run_parallel_report("BENCH_parallel_inference.json");
    run_linalg_backend_report("BENCH_linalg_inference.json");
    run_stream_report("BENCH_inference_stream.json");
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
