// Synthetic raw-state generator shared by the perf micro-benches (kept out
// of the figure benches, which use real simulation traces).
#pragma once

#include <random>

#include "linalg/matrix.hpp"
#include "metrics/schema.hpp"

namespace vn2::bench_support {

/// n × 43 raw states: unit Gaussian noise with sporadic counter spikes.
inline linalg::Matrix synthetic_states(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> column(0,
                                                    metrics::kMetricCount - 1);
  linalg::Matrix states(n, metrics::kMetricCount);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
      states(i, m) = noise(rng);
    if (i % 7 == 0) states(i, column(rng)) += 9.0;
  }
  return states;
}

}  // namespace vn2::bench_support
