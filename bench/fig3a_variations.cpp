// Fig. 3(a): metric variations over time. Four injected metrics (Voltage,
// Neighbor_RSSI_1, Radio_on_time, Receive_counter) plotted as variations
// (successive diffs); most points hug zero, the discrete outliers are the
// exceptions the detector flags.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/exception_detection.hpp"

using namespace vn2;
using metrics::MetricId;

int main() {
  bench::section("Fig 3(a) — metric variations over time (CitySee-scale)");
  bench::RunData data = bench::citysee_run();

  // Pick the node with the most states so the series is dense.
  wsn::NodeId best_node = 1;
  std::size_t best_count = 0;
  for (const trace::NodeSeries& series : data.trace.nodes) {
    if (series.snapshots.size() > best_count) {
      best_count = series.snapshots.size();
      best_node = series.node;
    }
  }

  const MetricId shown[] = {MetricId::kVoltage, MetricId::kNeighborRssi0,
                            MetricId::kRadioOnTime, MetricId::kReceiveCounter};
  for (MetricId metric : shown) {
    std::vector<double> series;
    for (const trace::StateVector& state : data.states) {
      if (state.node != best_node) continue;
      series.push_back(state.delta[metrics::index_of(metric)]);
      if (series.size() >= 120) break;  // One plot-width of samples.
    }
    bench::subsection(std::string("variation of ") +
                      std::string(metrics::name(metric)) + " (node " +
                      std::to_string(best_node) + ")");
    bench::ascii_plot("  delta", series, 6);
  }

  // Exception detection over all states (the paper's ε rule).
  const linalg::Matrix states = trace::states_matrix(data.states);
  core::ExceptionDetectionOptions options;
  options.threshold = 0.15;
  const auto detection = core::detect_exceptions(states, options);
  const double fraction = static_cast<double>(detection.exception_rows.size()) /
                          static_cast<double>(states.rows());
  std::printf("\nstates: %zu, flagged exceptions: %zu (%.1f%%), max eps=%.2f\n",
              states.rows(), detection.exception_rows.size(), 100.0 * fraction,
              detection.max_score);

  bench::shape_check(detection.exception_rows.size() > 20,
                     "exceptions exist in the history log");
  bench::shape_check(fraction < 0.35,
                     "normal states dominate; exceptions are the minority");
  // The outliers are discrete: the flagged scores are well above the median.
  std::vector<double> scores(detection.scores.begin(), detection.scores.end());
  std::nth_element(scores.begin(), scores.begin() + scores.size() / 2,
                   scores.end());
  const double median = scores[scores.size() / 2];
  double flagged_mean = 0.0;
  for (std::size_t row : detection.exception_rows)
    flagged_mean += detection.scores[row];
  flagged_mean /= static_cast<double>(detection.exception_rows.size());
  std::printf("median eps=%.2f, mean flagged eps=%.2f\n", median, flagged_mean);
  bench::shape_check(flagged_mean > 2.0 * median,
                     "flagged exceptions stand discretely above the baseline");
  return bench::shape_summary();
}
