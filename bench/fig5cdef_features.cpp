// Fig. 5(c)–(f): the metric-variation profiles of the most-used rows of the
// testbed Ψ. The paper's reading: one row is the normal-state
// representation, rows dominated by NeighborRssi/NeighborEtx indicate link
// dynamics, a NOACK+parent-change row indicates an unreachable parent
// (node failure), and a new-neighbor peak indicates a reboot.
#include <cstdio>

#include "bench_common.hpp"
#include "core/inference.hpp"
#include "core/interpretation.hpp"

using namespace vn2;
using metrics::MetricFamily;
using metrics::MetricId;

int main() {
  bench::section("Fig 5(c)-(f) — main testbed root-cause profiles");
  bench::RunData data =
      bench::testbed_run(scenario::RemovalPattern::kExpansive);
  auto [train, test] = bench::split_states(data.states, 3600.0);
  core::Vn2Tool tool = bench::train_testbed_model(train);

  // Rank rows by usage on the training data.
  const linalg::Matrix w = core::correlation_strengths(
      tool.model(), trace::states_matrix(train));
  std::vector<std::pair<double, std::size_t>> usage;
  for (std::size_t r = 0; r < w.cols(); ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i) sum += w(i, r);
    usage.emplace_back(sum, r);
  }
  std::sort(usage.rbegin(), usage.rend());

  bool link_dynamics_row = false;   // RSSI/ETX dominated (paper's Ψ2/Ψ10).
  bool failure_flavor_row = false;  // NOACK/parent-change (paper's Ψ1).
  bool join_flavor_row = false;     // Neighbor-count/beacon (paper's Ψ4).

  // The paper examines Ψ1, Ψ2, Ψ4, Ψ10 — drawn from across the usage
  // spectrum, not strictly the top four — so scan the top six.
  for (std::size_t k = 0; k < std::min<std::size_t>(6, usage.size()); ++k) {
    const std::size_t row = usage[k].second;
    const linalg::Vector profile = tool.model().root_cause_profile(row);
    std::vector<double> values(profile.begin(), profile.end());
    bench::subsection("psi[" + std::to_string(row) +
                      "] (usage rank " + std::to_string(k + 1) + ")");
    bench::ascii_plot("  profile (43 metrics)", values, 7);
    const core::RootCauseInterpretation& interp =
        tool.interpretations()[row];
    std::printf("  %s\n", interp.summary.c_str());

    for (const auto& [metric, value] : interp.dominant_metrics) {
      if (metrics::family(metric) == MetricFamily::kLinkQuality)
        link_dynamics_row = true;
      if (metric == MetricId::kNoackRetransmitCounter ||
          metric == MetricId::kParentChangeCounter ||
          metric == MetricId::kNoParentCounter)
        failure_flavor_row = true;
      if (metric == MetricId::kNeighborNum ||
          metric == MetricId::kBeaconRecvCounter)
        join_flavor_row = true;
    }
  }

  bench::shape_check(link_dynamics_row,
                     "a top row tracks neighbor RSSI/ETX link dynamics");
  bench::shape_check(failure_flavor_row,
                     "a top row carries the unreachable-parent signature");
  bench::shape_check(join_flavor_row,
                     "a top row carries the neighbor-join/reboot signature");
  return bench::shape_summary();
}
