// Fig. 6(b)/(c): explain the PRR degradation. Using the representative
// matrix trained on the healthy part of the field trace, the correlation
// strengths of all state vectors inside the degraded window are computed
// (6b); the dominant rows' profiles (6c) should read as the injected fault
// mix — routing loops, contention, node failures — which is exactly the
// paper's conclusion for Sep 20–22.
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "core/inference.hpp"
#include "core/interpretation.hpp"

using namespace vn2;
using metrics::HazardEvent;

int main() {
  bench::section("Fig 6(b)/(c) — explaining the degradation episode");

  scenario::CityseeEpisodeParams params;
  params.base.days = bench::bench_days(13.0);
  if (params.base.days < 3.0) params.base.days = 3.0;
  const double total = params.base.days * 86400.0;
  params.episode_start = total * 6.0 / 13.0;
  params.episode_end = total * 8.0 / 13.0;
  bench::RunData data =
      bench::run_scenario(scenario::citysee_with_episode(params));

  // Train on the pre-episode states (the paper trains Ψ on the earlier
  // 7-day log), r = 25.
  auto [before, rest] = bench::split_states(data.states, params.episode_start);
  core::Vn2Tool::Options options;
  options.training.rank = 25;
  options.training.nmf.max_iterations = 300;
  core::Vn2Tool tool = core::Vn2Tool::train_from_states(before, options);
  std::printf("trained on %zu pre-episode states (%zu exceptions)\n",
              tool.report().training_states, tool.report().exception_states);

  // States inside the degraded window.
  std::vector<trace::StateVector> window_states;
  for (const trace::StateVector& s : rest)
    if (s.time <= params.episode_end) window_states.push_back(s);
  std::printf("states in degraded window: %zu\n", window_states.size());

  const linalg::Vector profile = core::mean_strength_profile(
      core::correlation_strengths(tool.model(),
                                  trace::states_matrix(window_states)));

  bench::subsection("Fig 6(b): correlation strength per psi row (window)");
  std::vector<std::string> labels;
  std::vector<double> values;
  for (std::size_t r = 0; r < profile.size(); ++r) {
    labels.push_back("psi[" + std::to_string(r) + "]");
    values.push_back(profile[r]);
  }
  bench::ascii_bars(labels, values);

  // Top rows and their interpretations (Fig 6(c)).
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t r = 0; r < profile.size(); ++r)
    ranked.emplace_back(profile[r], r);
  std::sort(ranked.rbegin(), ranked.rend());

  bench::subsection("Fig 6(c): dominant root-cause profiles");
  std::set<HazardEvent> implicated;
  for (std::size_t k = 0; k < std::min<std::size_t>(4, ranked.size()); ++k) {
    const std::size_t row = ranked[k].second;
    const linalg::Vector rc = tool.model().root_cause_profile(row);
    std::vector<double> rc_values(rc.begin(), rc.end());
    bench::ascii_plot("psi[" + std::to_string(row) + "]", rc_values, 6);
    const core::RootCauseInterpretation& interp = tool.interpretations()[row];
    std::printf("  %s\n", interp.summary.c_str());
    for (const core::HazardLabel& label : interp.labels)
      implicated.insert(label.hazard);
  }

  std::printf("\nimplicated hazards:");
  for (HazardEvent hazard : implicated)
    std::printf(" %s", std::string(metrics::hazard_name(hazard)).c_str());
  std::printf("\n(injected: routing loops, contention/jammers, node failures)\n");

  // The paper's three families of explanation.
  auto related_to = [&](std::initializer_list<HazardEvent> events) {
    for (HazardEvent e : events)
      if (implicated.contains(e)) return true;
    return false;
  };
  bench::shape_check(
      related_to({HazardEvent::kRoutingLoop, HazardEvent::kDuplicateStorm,
                  HazardEvent::kQueueOverflow}),
      "loop-family hazard implicated in the window");
  bench::shape_check(
      related_to({HazardEvent::kContention, HazardEvent::kLinkDegradation,
                  HazardEvent::kRisingNoise, HazardEvent::kPersistentDrop}),
      "contention/link-family hazard implicated in the window");
  bench::shape_check(
      related_to({HazardEvent::kNodeFailure, HazardEvent::kFrequentParentChange,
                  HazardEvent::kNodeReboot}),
      "failure-family hazard implicated in the window");
  return bench::shape_summary();
}
