// Fig. 6(a): system PRR over a two-week field window with an obvious
// degradation in the middle (the paper's Sep 20–22). Our scripted episode
// injects routing loops, jammers, and node failures into days 6–8 of a
// 13-day CitySee-scale run.
#include <cstdio>

#include "bench_common.hpp"

using namespace vn2;

int main() {
  bench::section("Fig 6(a) — system PRR with a degradation episode");

  scenario::CityseeEpisodeParams params;
  params.base.days = bench::bench_days(13.0);
  if (params.base.days < 3.0) params.base.days = 3.0;
  // Scale the episode window to the configured duration (middle ~15%).
  const double total = params.base.days * 86400.0;
  params.episode_start = total * 6.0 / 13.0;
  params.episode_end = total * 8.0 / 13.0;

  std::printf("[setup] %.1f-day run, episode window [%.1f, %.1f] days\n",
              params.base.days, params.episode_start / 86400.0,
              params.episode_end / 86400.0);
  bench::RunData data =
      bench::run_scenario(scenario::citysee_with_episode(params));

  const wsn::Time window = 6.0 * 3600.0;  // 6-hour buckets.
  const auto series = trace::prr_series(data.result, window);

  bench::subsection("PRR per 6-hour window");
  std::vector<double> values;
  for (const trace::PrrPoint& p : series) values.push_back(p.prr());
  bench::ascii_plot("PRR", values, 10);
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::printf("  day %5.2f  PRR %.3f  (%u/%u)\n",
                series[i].window_start / 86400.0, series[i].prr(),
                series[i].received, series[i].originated);
  }

  // Mean PRR inside vs outside the episode (skip the first warm-up day).
  double inside = 0.0, outside = 0.0;
  std::size_t inside_count = 0, outside_count = 0;
  for (const trace::PrrPoint& p : series) {
    if (p.window_start < 86400.0) continue;
    const double mid = 0.5 * (p.window_start + p.window_end);
    if (mid >= params.episode_start && mid <= params.episode_end) {
      inside += p.prr();
      ++inside_count;
    } else {
      outside += p.prr();
      ++outside_count;
    }
  }
  inside /= std::max<std::size_t>(inside_count, 1);
  outside /= std::max<std::size_t>(outside_count, 1);
  std::printf("\nmean PRR: outside episode %.3f, inside episode %.3f\n",
              outside, inside);

  bench::shape_check(outside > 0.7, "baseline PRR is healthy (paper: ~0.8+)");
  bench::shape_check(inside < outside - 0.05,
                     "PRR visibly degrades during the fault episode");
  // Recovery: the last day looks like the baseline again.
  const double last = values.back();
  bench::shape_check(last > inside,
                     "PRR recovers after the episode ends");
  return bench::shape_summary();
}
