// Live monitoring — VN2 as an online sink-side diagnosis loop.
//
// Trains a model on a history window, then attaches to a *running*
// simulation: every simulated half hour the new snapshots are pulled from
// the sink, turned into state vectors, passed through the ε rule, and any
// exception is explained in place. A fault strikes mid-run; watch the
// monitor pick it up and name it.
#include <cstdio>
#include <map>

#include "core/vn2.hpp"
#include "scenario/scenario.hpp"
#include "trace/trace.hpp"

using namespace vn2;

int main() {
  // History: two hours of ambient operation to learn from.
  scenario::ScenarioBundle bundle = scenario::tiny(20, 4.0 * 3600.0, 11, 18.0);

  // Mid-run faults the monitor should catch.
  wsn::FaultCommand jam;
  jam.type = wsn::FaultCommand::Type::kJammer;
  jam.center = {30.0, 40.0};
  jam.radius_m = 70.0;
  jam.start = 2.6 * 3600.0;
  jam.end = 3.1 * 3600.0;
  jam.magnitude = 0.5;
  bundle.faults.push_back(jam);

  wsn::FaultCommand reboot;
  reboot.type = wsn::FaultCommand::Type::kNodeReboot;
  reboot.node = 13;
  reboot.start = 3.4 * 3600.0;
  bundle.faults.push_back(reboot);

  wsn::Simulator sim = bundle.make_simulator();

  // Phase 1: collect history, train.
  const double train_until = 2.0 * 3600.0;
  sim.run_until(train_until);
  trace::Trace history = trace::build_trace(sim.snapshot_result());
  auto history_states = trace::extract_states(history);
  std::erase_if(history_states,
                [](const trace::StateVector& s) { return s.time < 600.0; });

  core::Vn2Tool::Options options;
  options.training.rank = 8;
  // An online monitor wants a quiet console: alarm only on the strong tail.
  options.training.exception_threshold = 0.45;
  core::Vn2Tool tool = core::Vn2Tool::train_from_states(history_states, options);
  std::printf("[%5.0f s] trained on %zu states (%zu exceptions), r=%zu\n",
              train_until, tool.report().training_states,
              tool.report().exception_states, tool.model().rank());

  // Phase 2: online loop. Keep the last seen snapshot per node and diff
  // against it as new ones arrive — exactly what a sink-side daemon does.
  std::map<wsn::NodeId, trace::Snapshot> last_seen;
  for (const trace::NodeSeries& series : history.nodes)
    if (!series.snapshots.empty())
      last_seen[series.node] = series.snapshots.back();

  std::size_t alarms = 0;
  const double step = 1800.0;
  for (double now = train_until + step; now <= 4.0 * 3600.0; now += step) {
    sim.run_until(now);
    trace::Trace current = trace::build_trace(sim.snapshot_result());
    std::size_t fresh = 0, flagged = 0;
    for (const trace::NodeSeries& series : current.nodes) {
      for (const trace::Snapshot& snap : series.snapshots) {
        auto it = last_seen.find(series.node);
        if (it != last_seen.end() && snap.epoch <= it->second.epoch) continue;
        if (it == last_seen.end()) {
          last_seen[series.node] = snap;
          continue;
        }
        // New snapshot: form the state vector against the previous one.
        linalg::Vector delta(metrics::kMetricCount);
        for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
          delta[m] = snap.values[m] - it->second.values[m];
        it->second = snap;
        ++fresh;

        const core::Vn2Tool::Explanation explanation = tool.explain(delta);
        if (explanation.diagnosis.is_exception &&
            !explanation.diagnosis.ranked.empty()) {
          ++flagged;
          if (flagged <= 2) {  // Keep the console readable.
            std::printf("[%5.0f s] ALARM node %u (eps=%.1f): %s\n", now,
                        series.node, explanation.diagnosis.exception_score,
                        tool.interpretations()[explanation.diagnosis.ranked[0]
                                                   .row]
                            .summary.c_str());
          }
          ++alarms;
        }
      }
    }
    std::printf("[%5.0f s] tick: %zu new states, %zu flagged\n", now, fresh,
                flagged);
  }
  std::printf("\nmonitoring done: %zu alarms total "
              "(jam at 2.6-3.1 h, reboot of node 13 at 3.4 h)\n",
              alarms);
  return 0;
}
