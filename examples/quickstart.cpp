// Quickstart: simulate a small sensor network, train VN2 on its trace, and
// diagnose a handful of fresh states.
//
//   $ ./quickstart
//
// Walks the whole pipeline: scenario → simulator → trace → training
// (exception extraction + NMF) → interpretation → online diagnosis.
#include <algorithm>
#include <cstdio>

#include "core/vn2.hpp"
#include "scenario/scenario.hpp"
#include "trace/trace.hpp"

int main() {
  using namespace vn2;

  // 1. A small deployment: 24 nodes + sink, reporting every minute for two
  //    simulated hours, with a burst of ambient hazards to learn from.
  scenario::ScenarioBundle bundle = scenario::tiny(/*count=*/24,
                                                   /*duration=*/7200.0,
                                                   /*seed=*/42);
  // Add a couple of faults so the history log contains real exceptions.
  wsn::FaultCommand loop;
  loop.type = wsn::FaultCommand::Type::kForcedLoop;
  loop.node = 7;
  loop.start = 2400.0;
  loop.end = 3600.0;
  bundle.faults.push_back(loop);

  wsn::FaultCommand reboot;
  reboot.type = wsn::FaultCommand::Type::kNodeReboot;
  reboot.node = 12;
  reboot.start = 4000.0;
  bundle.faults.push_back(reboot);

  std::printf("simulating %zu nodes for %.0f s...\n",
              bundle.config.positions.size(), bundle.config.duration);
  wsn::Simulator sim = bundle.make_simulator();
  const wsn::SimulationResult result = sim.run();
  std::printf("  sink received %zu packets (PRR %.2f)\n",
              result.sink_log.size(), trace::overall_prr(result));

  // 2. Build the trace and train VN2 on it.
  const trace::Trace log = trace::build_trace(result);
  core::Vn2Tool::Options options;
  options.training.rank = 8;  // Small network: a small representative matrix.
  core::Vn2Tool tool = core::Vn2Tool::train_from_trace(log, options);

  const core::TrainingReport& report = tool.report();
  std::printf("trained: %zu states, %zu exceptions, rank %zu, alpha=%.4f\n",
              report.training_states, report.exception_states,
              report.chosen_rank,
              report.nmf.objective_history.empty()
                  ? 0.0
                  : report.nmf.objective_history.back());

  // 3. What did VN2 learn? Print each root-cause vector's interpretation.
  std::printf("\nrepresentative matrix Psi (%zu root-cause vectors):\n",
              tool.model().rank());
  for (const core::RootCauseInterpretation& interp : tool.interpretations())
    std::printf("  psi[%zu]: %s\n", interp.row, interp.summary.c_str());

  // 4. Diagnose the most anomalous states of the trace.
  std::printf("\nmost anomalous states:\n");
  auto states = trace::extract_states(log);
  std::sort(states.begin(), states.end(),
            [&](const trace::StateVector& a, const trace::StateVector& b) {
              return tool.model().exception_score(a.delta) >
                     tool.model().exception_score(b.delta);
            });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, states.size()); ++i) {
    const auto explanation = tool.explain(states[i].delta);
    std::printf("node %u @ t=%.0fs: %s\n", states[i].node, states[i].time,
                explanation.text.c_str());
  }
  std::printf("\ndone.\n");
  return 0;
}
