// Testbed diagnosis — the paper's Fig. 5 workflow.
//
// 45 TelosB-like nodes on a 9×5 grid report every 3 minutes for two hours
// while 5–7 nodes are removed and re-inserted every 10 minutes. VN2 trains
// a representative matrix (r = 10) on the first hour and diagnoses the
// second, then compares the train/test root-cause distributions for both
// removal patterns (local vs expansive).
#include <cstdio>

#include "core/vn2.hpp"
#include "scenario/scenario.hpp"
#include "trace/trace.hpp"

using namespace vn2;

namespace {

void run_pattern(scenario::RemovalPattern pattern, const char* name) {
  std::printf("\n=== scenario: %s removals ===\n", name);
  scenario::TestbedParams params;
  params.pattern = pattern;
  wsn::Simulator sim = scenario::testbed(params).make_simulator();
  const wsn::SimulationResult result = sim.run();
  std::printf("collected %zu packets over %.0f min\n", result.sink_log.size(),
              result.duration / 60.0);

  const trace::Trace log = trace::build_trace(result);
  auto states = trace::extract_states(log);
  std::erase_if(states,
                [](const trace::StateVector& s) { return s.time < 400.0; });

  // Hour 1 trains, hour 2 tests (paper §V-A).
  std::vector<trace::StateVector> train, test;
  for (const trace::StateVector& s : states)
    (s.time < 3600.0 ? train : test).push_back(s);

  core::Vn2Tool::Options options;
  options.training.rank = 10;
  options.training.skip_exception_extraction = true;  // Small trace.
  core::Vn2Tool tool = core::Vn2Tool::train_from_states(train, options);

  std::printf("representative matrix psi (r=10):\n");
  for (const core::RootCauseInterpretation& interp : tool.interpretations())
    std::printf("  psi[%zu]: %s\n", interp.row, interp.summary.c_str());

  const linalg::Vector train_profile = core::mean_strength_profile(
      core::correlation_strengths(tool.model(), trace::states_matrix(train)));
  const linalg::Vector test_profile = core::mean_strength_profile(
      core::correlation_strengths(tool.model(), trace::states_matrix(test)));

  std::printf("\n%4s %14s %14s\n", "row", "train", "test");
  for (std::size_t r = 0; r < tool.model().rank(); ++r)
    std::printf("%4zu %14.4f %14.4f\n", r, train_profile[r], test_profile[r]);
  std::printf("train/test profile correlation: %.3f\n",
              core::profile_correlation(train_profile, test_profile));

  // Diagnose the strongest exception of the test hour in detail.
  const trace::StateVector* worst = nullptr;
  double worst_score = 0.0;
  for (const trace::StateVector& s : test) {
    const double score = tool.model().exception_score(s.delta);
    if (score > worst_score) {
      worst_score = score;
      worst = &s;
    }
  }
  if (worst) {
    std::printf("\nstrongest test-hour exception (node %u, t=%.0fs):\n%s\n",
                worst->node, worst->time,
                tool.explain(worst->delta).text.c_str());
  }
}

}  // namespace

int main() {
  run_pattern(scenario::RemovalPattern::kLocal, "local (scenario 1)");
  run_pattern(scenario::RemovalPattern::kExpansive, "expansive (scenario 2)");
  return 0;
}
