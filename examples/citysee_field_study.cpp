// CitySee field study — the paper's Fig. 6 workflow.
//
// Simulates a 286-node urban deployment for several days with a scripted
// degradation episode in the middle (routing loops + jammers + node
// failures), then: (1) plots system PRR and spots the degraded window,
// (2) trains Ψ on the healthy prefix, (3) explains the degradation by
// correlating the window's state vectors against Ψ.
//
// Pass a day count to shrink the run (default 13):  ./citysee_field_study 5
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/incident.hpp"
#include "core/performance.hpp"
#include "core/vn2.hpp"
#include "scenario/scenario.hpp"
#include "trace/trace.hpp"

using namespace vn2;

int main(int argc, char** argv) {
  scenario::CityseeEpisodeParams params;
  params.base.days = argc > 1 ? std::atof(argv[1]) : 13.0;
  if (params.base.days < 3.0) params.base.days = 3.0;
  const double total = params.base.days * 86400.0;
  params.episode_start = total * 6.0 / 13.0;
  params.episode_end = total * 8.0 / 13.0;

  std::printf("simulating %zu nodes for %.1f days (episode days %.1f-%.1f)\n",
              params.base.node_count, params.base.days,
              params.episode_start / 86400.0, params.episode_end / 86400.0);
  wsn::Simulator sim = scenario::citysee_with_episode(params).make_simulator();
  const wsn::SimulationResult result = sim.run();

  // 1. PRR series: where did the network degrade?
  std::printf("\nsystem PRR (12 h windows):\n");
  double worst_prr = 1.0;
  trace::PrrPoint worst_window;
  for (const trace::PrrPoint& p : trace::prr_series(result, 43200.0)) {
    std::printf("  day %5.1f  PRR %.3f\n", p.window_start / 86400.0, p.prr());
    if (p.window_start > 86400.0 && p.prr() < worst_prr) {
      worst_prr = p.prr();
      worst_window = p;
    }
  }
  std::printf("worst window: day %.1f (PRR %.3f)\n",
              worst_window.window_start / 86400.0, worst_prr);

  // 2. Train on the healthy prefix.
  const trace::Trace log = trace::build_trace(result);
  auto states = trace::extract_states(log);
  std::erase_if(states,
                [](const trace::StateVector& s) { return s.time < 1800.0; });
  std::vector<trace::StateVector> before, window;
  for (const trace::StateVector& s : states) {
    if (s.time < params.episode_start)
      before.push_back(s);
    else if (s.time <= params.episode_end)
      window.push_back(s);
  }

  core::Vn2Tool::Options options;
  options.training.rank = 25;  // The paper's CitySee compression factor.
  options.training.nmf.max_iterations = 300;
  core::Vn2Tool tool = core::Vn2Tool::train_from_states(before, options);
  std::printf("\ntrained psi(25x43) on %zu pre-episode states "
              "(%zu exceptions)\n",
              tool.report().training_states, tool.report().exception_states);

  // 3. Explain the degraded window.
  const linalg::Vector profile = core::mean_strength_profile(
      core::correlation_strengths(tool.model(), trace::states_matrix(window)));
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t r = 0; r < profile.size(); ++r)
    ranked.emplace_back(profile[r], r);
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("\ndominant root causes in the degraded window:\n");
  for (std::size_t k = 0; k < 5 && k < ranked.size(); ++k) {
    const auto& interp = tool.interpretations()[ranked[k].second];
    std::printf("  psi[%zu] strength=%.3f: %s\n", interp.row, ranked[k].first,
                interp.summary.c_str());
  }
  std::printf("\n(injected during the episode: routing loops, jammers, node "
              "failures)\n");

  // 4. Combination diagnosis: aggregate per-state alarms into incidents.
  std::vector<core::Diagnosis> diagnoses;
  diagnoses.reserve(window.size());
  for (const trace::StateVector& s : window)
    diagnoses.push_back(tool.diagnose_state(s.delta));
  core::IncidentOptions incident_options;
  incident_options.merge_gap = 3600.0;
  incident_options.min_states = 10;
  const auto incidents = core::aggregate_incidents(
      window, diagnoses, tool.interpretations(), incident_options);
  std::printf("\nincidents in the degraded window:\n");
  for (const core::Incident& incident : incidents)
    std::printf("  %s\n", incident.summary.c_str());

  // 5. Protocol performance estimation: which root causes cost PRR?
  const core::PerformanceDataset dataset = core::build_performance_dataset(
      result, states, tool.model(), 6.0 * 3600.0);
  if (dataset.profiles.rows() >= 8) {
    const core::PrrEstimator estimator =
        core::PrrEstimator::fit(dataset.profiles, dataset.prr, 1e-2);
    std::printf("\nPRR model over %zu windows: R^2=%.2f; most damaging "
                "root causes:\n",
                dataset.profiles.rows(),
                estimator.r_squared(dataset.profiles, dataset.prr));
    std::vector<std::pair<double, std::size_t>> impact;
    for (std::size_t r = 0; r < estimator.coefficients().size(); ++r)
      impact.emplace_back(estimator.coefficients()[r], r);
    std::sort(impact.begin(), impact.end());  // Most negative first.
    for (std::size_t k = 0; k < 3 && k < impact.size(); ++k) {
      if (impact[k].first >= 0.0) break;
      std::printf("  psi[%zu] (%.4f PRR per unit strength): %s\n",
                  impact[k].second, impact[k].first,
                  tool.interpretations()[impact[k].second].summary.c_str());
    }
  }
  return 0;
}
