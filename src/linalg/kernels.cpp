// Kernel backend implementations. See kernels.hpp for the dispatch and
// reproducibility contract. The blocked kernels are deliberately plain
// C++: register tiles small enough to stay in the baseline x86-64 SIMD
// register file, restrict-qualified pointers so the autovectorizer knows
// the tiles don't alias, and a per-element accumulation order identical
// to the reference loops so switching backends (or re-partitioning rows
// across threads) cannot change results.
#include "linalg/kernels.hpp"

#include <algorithm>
#include <atomic>

#include "linalg/cpu_features.hpp"
#include "linalg/kernels_simd.hpp"

#ifndef VN2_BLOCKED_KERNELS
#define VN2_BLOCKED_KERNELS 1
#endif

#if defined(__GNUC__) || defined(__clang__)
#define VN2_RESTRICT __restrict__
#else
#define VN2_RESTRICT
#endif

namespace vn2::linalg {

namespace {

constexpr bool kBlockedCompiled = VN2_BLOCKED_KERNELS != 0;
constexpr bool kSimdCompiled = VN2_SIMD_COMPILED != 0;

std::atomic<Backend> g_backend{kBlockedCompiled ? Backend::kBlocked
                                                : Backend::kReference};

// ---------------------------------------------------------------------------
// Reference kernels: the textbook scalar loops, kept as the semantics
// oracle. Each output element is one accumulator summed in ascending
// inner-index order — the contract the blocked kernels must match.

void gemm_rows_reference(const double* VN2_RESTRICT a,
                         const double* VN2_RESTRICT b, double* VN2_RESTRICT c,
                         std::size_t k, std::size_t m, std::size_t row_begin,
                         std::size_t row_end) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * b[p * m + j];
      crow[j] = acc;
    }
  }
}

void gemv_reference(const double* VN2_RESTRICT a, const double* VN2_RESTRICT x,
                    double* VN2_RESTRICT y, std::size_t rows,
                    std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* arow = a + i * cols;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += arow[j] * x[j];
    y[i] = acc;
  }
}

void syrk_upper_reference(const double* VN2_RESTRICT a, std::size_t rows,
                          std::size_t k, double* VN2_RESTRICT g) {
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < k; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < rows; ++r) acc += a[r * k + i] * a[r * k + j];
      g[i * k + j] = acc;
    }
  }
}

#if VN2_BLOCKED_KERNELS

// ---------------------------------------------------------------------------
// Blocked kernels. Tile geometry: 4 A-rows × 4 C-columns of accumulators.
// The full-tile body has compile-time trip counts, so after unrolling the
// 16 accumulators live in registers across the whole p loop (8 SSE
// registers; av and the B strip fit in the rest of the baseline x86-64
// file) — C is touched once per tile, not once per p, and every loaded B
// value feeds 4 rows. Each acc[r][jj] still sums its products in
// ascending-p order — one accumulator per output element — so tiling
// never reassociates a sum and results match the reference bit-for-bit.

constexpr std::size_t kRowsPerTile = 4;
constexpr std::size_t kColsPerTile = 4;

// One register tile over the depth range [p0, p1). When p0 > 0 the tile
// resumes the partial sums parked in C, continuing each element's
// ascending-p chain exactly where the previous depth block left it (the
// parked partial is a plain double, so the chain is bit-identical to an
// unblocked pass).
template <std::size_t Rows, std::size_t Cols>
void gemm_tile(const double* VN2_RESTRICT a, const double* VN2_RESTRICT b,
               double* VN2_RESTRICT c, std::size_t k, std::size_t m,
               std::size_t i, std::size_t j, std::size_t p0, std::size_t p1) {
  const double* arow[Rows];
  for (std::size_t r = 0; r < Rows; ++r) arow[r] = a + (i + r) * k;
  double acc[Rows][Cols] = {};
  if (p0 > 0)
    for (std::size_t r = 0; r < Rows; ++r)
      for (std::size_t jj = 0; jj < Cols; ++jj)
        acc[r][jj] = c[(i + r) * m + j + jj];
  const double* bpos = b + p0 * m + j;
  for (std::size_t p = p0; p < p1; ++p, bpos += m) {
    double av[Rows];
    for (std::size_t r = 0; r < Rows; ++r) av[r] = arow[r][p];
    for (std::size_t jj = 0; jj < Cols; ++jj) {
      const double bv = bpos[jj];
      for (std::size_t r = 0; r < Rows; ++r) acc[r][jj] += av[r] * bv;
    }
  }
  for (std::size_t r = 0; r < Rows; ++r) {
    double* crow = c + (i + r) * m + j;
    for (std::size_t jj = 0; jj < Cols; ++jj) crow[jj] = acc[r][jj];
  }
}

// Column-remainder tile: runtime width < kColsPerTile, same accumulation
// order as the full tile.
template <std::size_t Rows>
void gemm_tile_edge(const double* VN2_RESTRICT a, const double* VN2_RESTRICT b,
                    double* VN2_RESTRICT c, std::size_t k, std::size_t m,
                    std::size_t i, std::size_t j, std::size_t width,
                    std::size_t p0, std::size_t p1) {
  const double* arow[Rows];
  for (std::size_t r = 0; r < Rows; ++r) arow[r] = a + (i + r) * k;
  double acc[Rows][kColsPerTile] = {};
  if (p0 > 0)
    for (std::size_t r = 0; r < Rows; ++r)
      for (std::size_t jj = 0; jj < width; ++jj)
        acc[r][jj] = c[(i + r) * m + j + jj];
  const double* bpos = b + p0 * m + j;
  for (std::size_t p = p0; p < p1; ++p, bpos += m) {
    double av[Rows];
    for (std::size_t r = 0; r < Rows; ++r) av[r] = arow[r][p];
    for (std::size_t jj = 0; jj < width; ++jj) {
      const double bv = bpos[jj];
      for (std::size_t r = 0; r < Rows; ++r) acc[r][jj] += av[r] * bv;
    }
  }
  for (std::size_t r = 0; r < Rows; ++r) {
    double* crow = c + (i + r) * m + j;
    for (std::size_t jj = 0; jj < width; ++jj) crow[jj] = acc[r][jj];
  }
}

void gemm_rows_blocked(const double* VN2_RESTRICT a,
                       const double* VN2_RESTRICT b, double* VN2_RESTRICT c,
                       std::size_t k, std::size_t m, std::size_t row_begin,
                       std::size_t row_end) {
  // Depth blocking: the 4-row A panel for one depth block (4 × 512 × 8 B
  // = 16 KiB) stays L1-resident while every column strip sweeps it, so a
  // long inner dimension is not re-streamed from L2 once per strip.
  constexpr std::size_t kDepthPerBlock = 512;
  const std::size_t jfull = m - m % kColsPerTile;
  std::size_t i = row_begin;
  for (; i + kRowsPerTile <= row_end; i += kRowsPerTile) {
    std::size_t p0 = 0;
    do {  // One pass even when k == 0: the first block writes C's zeros.
      const std::size_t p1 = std::min(p0 + kDepthPerBlock, k);
      std::size_t j = 0;
      for (; j < jfull; j += kColsPerTile)
        gemm_tile<kRowsPerTile, kColsPerTile>(a, b, c, k, m, i, j, p0, p1);
      if (j < m)
        gemm_tile_edge<kRowsPerTile>(a, b, c, k, m, i, j, m - j, p0, p1);
      p0 = p1;
    } while (p0 < k);
  }
  for (; i < row_end; ++i) {
    std::size_t p0 = 0;
    do {
      const std::size_t p1 = std::min(p0 + kDepthPerBlock, k);
      std::size_t j = 0;
      for (; j < jfull; j += kColsPerTile)
        gemm_tile<1, kColsPerTile>(a, b, c, k, m, i, j, p0, p1);
      if (j < m) gemm_tile_edge<1>(a, b, c, k, m, i, j, m - j, p0, p1);
      p0 = p1;
    } while (p0 < k);
  }
}

void gemv_blocked(const double* VN2_RESTRICT a, const double* VN2_RESTRICT x,
                  double* VN2_RESTRICT y, std::size_t rows, std::size_t cols) {
  std::size_t i = 0;
  for (; i + kRowsPerTile <= rows; i += kRowsPerTile) {
    const double* r0 = a + (i + 0) * cols;
    const double* r1 = a + (i + 1) * cols;
    const double* r2 = a + (i + 2) * cols;
    const double* r3 = a + (i + 3) * cols;
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      const double xv = x[j];
      acc0 += r0[j] * xv;
      acc1 += r1[j] * xv;
      acc2 += r2[j] * xv;
      acc3 += r3[j] * xv;
    }
    y[i + 0] = acc0;
    y[i + 1] = acc1;
    y[i + 2] = acc2;
    y[i + 3] = acc3;
  }
  for (; i < rows; ++i) {
    const double* arow = a + i * cols;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += arow[j] * x[j];
    y[i] = acc;
  }
}

// Panel-of-4 SYRK: four A-rows rank-1-update the resident upper triangle
// per pass. Per element the updates still land in ascending-r order
// (r, r+1, r+2, r+3 as chained adds), matching the reference dot loops.
void syrk_upper_blocked(const double* VN2_RESTRICT a, std::size_t rows,
                        std::size_t k, double* VN2_RESTRICT g) {
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i; j < k; ++j) g[i * k + j] = 0.0;
  std::size_t r = 0;
  for (; r + kRowsPerTile <= rows; r += kRowsPerTile) {
    const double* p0 = a + (r + 0) * k;
    const double* p1 = a + (r + 1) * k;
    const double* p2 = a + (r + 2) * k;
    const double* p3 = a + (r + 3) * k;
    for (std::size_t i = 0; i < k; ++i) {
      const double v0 = p0[i], v1 = p1[i], v2 = p2[i], v3 = p3[i];
      double* grow = g + i * k;
      for (std::size_t j = i; j < k; ++j) {
        double acc = grow[j];
        acc += v0 * p0[j];
        acc += v1 * p1[j];
        acc += v2 * p2[j];
        acc += v3 * p3[j];
        grow[j] = acc;
      }
    }
  }
  for (; r < rows; ++r) {
    const double* prow = a + r * k;
    for (std::size_t i = 0; i < k; ++i) {
      const double vi = prow[i];
      double* grow = g + i * k;
      for (std::size_t j = i; j < k; ++j) grow[j] += vi * prow[j];
    }
  }
}

#endif  // VN2_BLOCKED_KERNELS

void mirror_lower(double* g, std::size_t k) {
  for (std::size_t i = 1; i < k; ++i)
    for (std::size_t j = 0; j < i; ++j) g[i * k + j] = g[j * k + i];
}

}  // namespace

void set_backend(Backend backend) noexcept {
  // Fallback chain simd → blocked → reference: never store a backend this
  // build or host cannot run, so the dispatch below needs no re-checks.
  // (The VN2_CPU_FEATURES mask is consulted here, at selection time; it
  // does not retroactively demote an already-selected backend.)
  if (backend == Backend::kSimd && !simd_available())
    backend = Backend::kBlocked;
  if (backend == Backend::kBlocked && !kBlockedCompiled)
    backend = Backend::kReference;
  g_backend.store(backend, std::memory_order_relaxed);
}

Backend backend() noexcept {
  return g_backend.load(std::memory_order_relaxed);
}

bool blocked_kernels_compiled() noexcept { return kBlockedCompiled; }

bool simd_kernels_compiled() noexcept { return kSimdCompiled; }

bool simd_available() noexcept {
  return kSimdCompiled && simd_runtime_supported();
}

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kBlocked:
      return "blocked";
    case Backend::kSimd:
      return "simd";
    case Backend::kReference:
      break;
  }
  return "reference";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "auto") {
    if (simd_available()) return Backend::kSimd;
    return kBlockedCompiled ? Backend::kBlocked : Backend::kReference;
  }
  if (name == "reference") return Backend::kReference;
  if (name == "blocked") return Backend::kBlocked;
  if (name == "simd") return Backend::kSimd;
  return std::nullopt;
}

namespace kernels {

void gemm_rows(const double* a, const double* b, double* c, std::size_t k,
               std::size_t m, std::size_t row_begin, std::size_t row_end) {
#if VN2_SIMD_COMPILED
  if (backend() == Backend::kSimd) {
    simd::gemm_rows(a, b, c, k, m, row_begin, row_end);
    return;
  }
#endif
#if VN2_BLOCKED_KERNELS
  if (backend() == Backend::kBlocked) {
    gemm_rows_blocked(a, b, c, k, m, row_begin, row_end);
    return;
  }
#endif
  gemm_rows_reference(a, b, c, k, m, row_begin, row_end);
}

void gemv(const double* a, const double* x, double* y, std::size_t rows,
          std::size_t cols) {
#if VN2_SIMD_COMPILED
  if (backend() == Backend::kSimd) {
    simd::gemv(a, x, y, rows, cols);
    return;
  }
#endif
#if VN2_BLOCKED_KERNELS
  if (backend() == Backend::kBlocked) {
    gemv_blocked(a, x, y, rows, cols);
    return;
  }
#endif
  gemv_reference(a, x, y, rows, cols);
}

void syrk_upper(const double* a, std::size_t rows, std::size_t k, double* g) {
#if VN2_SIMD_COMPILED
  if (backend() == Backend::kSimd) {
    simd::syrk_upper(a, rows, k, g);
    mirror_lower(g, k);
    return;
  }
#endif
#if VN2_BLOCKED_KERNELS
  if (backend() == Backend::kBlocked) {
    syrk_upper_blocked(a, rows, k, g);
    mirror_lower(g, k);
    return;
  }
#endif
  syrk_upper_reference(a, rows, k, g);
  mirror_lower(g, k);
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
#if VN2_SIMD_COMPILED
  if (backend() == Backend::kSimd) return simd::dot(a, b, n);
#endif
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const double* VN2_RESTRICT x, double* VN2_RESTRICT y,
          std::size_t n) noexcept {
#if VN2_SIMD_COMPILED
  if (backend() == Backend::kSimd) {
    simd::axpy(alpha, x, y, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace kernels

}  // namespace vn2::linalg
