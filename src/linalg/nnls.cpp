#include "linalg/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/contracts.hpp"
#include "linalg/kernels.hpp"
#include "linalg/solve.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::linalg {

namespace {

/// Solves the unconstrained least-squares problem restricted to the passive
/// set via normal equations (AᵀA)z = Aᵀb with a small ridge for stability.
/// The Gram matrix comes from the shared SYRK kernel on a contiguous
/// gather of the passive columns instead of the old O(k²·m) column-strided
/// triple loop.
Vector solve_passive(const Matrix& a, const Vector& b,
                     const std::vector<std::size_t>& passive,
                     NnlsWorkspace& ws) {
  const std::size_t k = passive.size();
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  // Genuine reallocations (not warm reuse) are tallied so bench records
  // can watch the workspace seam: a steady-state solve must not allocate.
  if (ws.packed.capacity() < m * k) {
    VN2_COUNT("nnls.workspace.reallocs");
    VN2_COUNT_N("nnls.workspace.alloc_bytes", m * k * sizeof(double));
  }
  ws.packed.assign(m * k, 0.0);
  if (ws.gram.rows() != k || ws.gram.cols() != k) {
    VN2_COUNT("nnls.workspace.reallocs");
    VN2_COUNT_N("nnls.workspace.alloc_bytes", k * k * sizeof(double));
    ws.gram = Matrix(k, k);
  }
  if (ws.rhs.size() != k) {
    VN2_COUNT("nnls.workspace.reallocs");
    VN2_COUNT_N("nnls.workspace.alloc_bytes", k * sizeof(double));
    ws.rhs = Vector(k);
  }
  std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);

  // Gather the passive columns once so the SYRK kernel streams contiguous
  // rows; rhs = packedᵀ·b accumulates in the same ascending-row order as
  // the old per-column dot loops.
  const double* ad = a.data();
  double* pd = ws.packed.data();
  for (std::size_t r = 0; r < m; ++r) {
    const double* arow = ad + r * n;
    double* prow = pd + r * k;
    for (std::size_t i = 0; i < k; ++i) prow[i] = arow[passive[i]];
    kernels::axpy(b[r], prow, ws.rhs.data(), k);
  }
  kernels::syrk_upper(pd, m, k, ws.gram.data());

  // Ridge scaled to the diagonal keeps Cholesky alive when columns are
  // nearly collinear (common for NMF bases learnt from correlated metrics).
  double diag_max = 0.0;
  for (std::size_t i = 0; i < k; ++i)
    diag_max = std::max(diag_max, ws.gram(i, i));
  const double ridge = std::max(1e-12 * diag_max, 1e-300);
  for (std::size_t i = 0; i < k; ++i) ws.gram(i, i) += ridge;
  return cholesky_solve(ws.gram, ws.rhs);
}

double residual_norm_of(const Matrix& a, const Vector& x, const Vector& b) {
  Vector r = matvec(a, x);
  r -= b;
  return norm2(r);
}

// Postconditions every NNLS solver must satisfy: the solution has one
// entry per column of A, every entry is non-negative (that is the whole
// point of NNLS), and the residual norm is a finite non-negative number.
void assert_feasible([[maybe_unused]] const Matrix& a,
                     [[maybe_unused]] const Vector& x,
                     [[maybe_unused]] double residual) {
#if VN2_CONTRACTS_ACTIVE
  VN2_ASSERT(x.size() == a.cols(), "nnls: solution length must match cols(A)");
  for (std::size_t j = 0; j < x.size(); ++j)
    VN2_ASSERT(x[j] >= 0.0, "nnls: solution must be non-negative");
  VN2_ASSERT(std::isfinite(residual) && residual >= 0.0,
             "nnls: residual norm must be finite and non-negative");
#endif
}

}  // namespace

NnlsResult nnls(const Matrix& a, const Vector& b, const NnlsOptions& options) {
  NnlsWorkspace workspace;
  return nnls(a, b, options, workspace);
}

NnlsResult nnls(const Matrix& a, const Vector& b, const NnlsOptions& options,
                NnlsWorkspace& ws) {
  VN2_CHECK(a.rows() == b.size(), "nnls: A rows must match b size");
  const std::size_t n = a.cols();
  const std::size_t m = a.rows();
  const std::size_t max_iter =
      options.max_iterations ? options.max_iterations : 3 * std::max<std::size_t>(n, 1);

  Vector x(n, 0.0);
  VN2_COUNT("nnls.solves");
  // Warm-workspace reset: in_passive/passive re-assigned wholesale, the
  // numeric buffers reshaped lazily (and fully overwritten before reads in
  // the loop bodies below) — a warm solve is bit-identical to a cold one.
  ws.in_passive.assign(n, false);
  std::vector<bool>& in_passive = ws.in_passive;
  ws.passive.clear();
  std::vector<std::size_t>& passive = ws.passive;
  if (ws.ax.size() != m) {
    VN2_COUNT("nnls.workspace.reallocs");
    VN2_COUNT_N("nnls.workspace.alloc_bytes", m * sizeof(double));
    ws.ax = Vector(m);
  }
  if (ws.gradient.size() != n) {
    VN2_COUNT("nnls.workspace.reallocs");
    VN2_COUNT_N("nnls.workspace.alloc_bytes", n * sizeof(double));
    ws.gradient = Vector(n);
  }

  std::size_t iter = 0;
  for (; iter < max_iter; ++iter) {
    // w = Aᵀ(b − A·x), built row-wise: row r contributes (b[r] − (A·x)[r])
    // times A(r,·) via axpy, so each w[j] accumulates in the same
    // ascending-r order as a per-column dot — but streaming A once.
    kernels::gemv(a.data(), x.data(), ws.ax.data(), m, n);
    Vector& w = ws.gradient;
    std::fill(w.begin(), w.end(), 0.0);
    for (std::size_t r = 0; r < m; ++r)
      kernels::axpy(b[r] - ws.ax[r], a.data() + r * n, w.data(), n);

    // Select the most-violating active coordinate.
    double best = options.tolerance;
    std::size_t best_j = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_passive[j] && w[j] > best) {
        best = w[j];
        best_j = j;
      }
    }
    if (best_j == n) {
      // KKT satisfied: active gradients all ≤ tolerance.
      const double residual = residual_norm_of(a, x, b);
      assert_feasible(a, x, residual);
      return {std::move(x), residual, iter, true};
    }

    in_passive[best_j] = true;
    passive.push_back(best_j);
    VN2_COUNT("nnls.pivots");

    // Inner loop: solve on the passive set; walk back any negative entries.
    while (true) {
      Vector z = solve_passive(a, b, passive, ws);
      bool all_positive = true;
      for (std::size_t i = 0; i < passive.size(); ++i)
        if (z[i] <= options.tolerance) all_positive = false;
      if (all_positive) {
        for (std::size_t i = 0; i < passive.size(); ++i) x[passive[i]] = z[i];
        break;
      }
      // Step length to the first coordinate hitting zero.
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < passive.size(); ++i) {
        if (z[i] <= options.tolerance) {
          const double xi = x[passive[i]];
          const double denom = xi - z[i];
          if (denom > 0.0) alpha = std::min(alpha, xi / denom);
        }
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (std::size_t i = 0; i < passive.size(); ++i) {
        const std::size_t j = passive[i];
        x[j] += alpha * (z[i] - x[j]);
      }
      // Remove coordinates that reached (numerical) zero.
      std::vector<std::size_t> next;
      next.reserve(passive.size());
      for (std::size_t j : passive) {
        if (x[j] > options.tolerance) {
          next.push_back(j);
        } else {
          x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      passive = std::move(next);
      if (passive.empty()) break;
    }
  }
  const double residual = residual_norm_of(a, x, b);
  assert_feasible(a, x, residual);
  return {std::move(x), residual, iter, false};
}

NnlsResult nnls_projected_gradient(const Matrix& a, const Vector& b,
                                   const ProjectedGradientOptions& options) {
  VN2_CHECK(a.rows() == b.size(), "nnls_projected_gradient: size mismatch");
  const std::size_t n = a.cols();
  Vector x(n, 0.0);

  // Lipschitz constant estimate of ∇½‖Ax−b‖² via ‖AᵀA‖₁ upper bound.
  Matrix at = transpose(a);
  Matrix gram = matmul(at, a);
  double lipschitz = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) rowsum += std::abs(gram(i, j));
    lipschitz = std::max(lipschitz, rowsum);
  }
  if (lipschitz <= 0.0) {
    assert_feasible(a, x, norm2(b));
    return {std::move(x), norm2(b), 0, true};
  }
  const double step = 1.0 / lipschitz;

  Vector atb = matvec(at, b);
  std::size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // grad = AᵀA·x − Aᵀb
    Vector grad = matvec(gram, x);
    grad -= atb;
    double max_move = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double next = std::max(0.0, x[j] - step * grad[j]);
      max_move = std::max(max_move, std::abs(next - x[j]));
      x[j] = next;
    }
    if (max_move < options.step_tolerance) {
      ++iter;
      break;
    }
  }
  const bool converged = iter < options.max_iterations ||
                         options.max_iterations == 0;
  const double residual = residual_norm_of(a, x, b);
  assert_feasible(a, x, residual);
  return {std::move(x), residual, iter, converged};
}

}  // namespace vn2::linalg
