// Seeded random matrix/vector generation.
//
// Every stochastic component in VN2 takes an explicit seed so that traces,
// factorizations, and benchmarks are bit-reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

#include "linalg/matrix.hpp"

namespace vn2::linalg {

/// Matrix with i.i.d. entries uniform in [lo, hi).
Matrix random_uniform_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed, double lo = 0.0,
                             double hi = 1.0);

/// Vector with i.i.d. entries uniform in [lo, hi).
Vector random_uniform_vector(std::size_t n, std::uint64_t seed,
                             double lo = 0.0, double hi = 1.0);

/// Matrix with i.i.d. Gaussian entries.
Matrix random_gaussian_matrix(std::size_t rows, std::size_t cols,
                              std::uint64_t seed, double mean = 0.0,
                              double stddev = 1.0);

/// Fill from an existing engine (used when a caller interleaves draws).
void fill_uniform(Matrix& m, std::mt19937_64& rng, double lo, double hi);

}  // namespace vn2::linalg
