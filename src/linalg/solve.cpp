#include "linalg/solve.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

namespace vn2::linalg {

Matrix cholesky_factor(const Matrix& a, double min_pivot) {
  VN2_CHECK(a.rows() == a.cols(), "cholesky_factor: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (acc < min_pivot)
          throw std::runtime_error("cholesky_factor: matrix not SPD");
        l(i, j) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
    VN2_ASSERT(std::isfinite(l(i, i)) && l(i, i) > 0.0,
               "cholesky_factor: pivot must stay positive and finite");
  }
  return l;
}

Vector cholesky_solve(const Matrix& a, const Vector& b) {
  VN2_CHECK(a.rows() == b.size(), "cholesky_solve: size mismatch");
  const Matrix l = cholesky_factor(a);
  const std::size_t n = a.rows();
  // Forward substitution: L·y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  // Back substitution: Lᵀ·x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
    x[ii] = acc / l(ii, ii);
  }
  VN2_ASSERT(x.size() == b.size(),
             "cholesky_solve: solution length must match rhs");
  return x;
}

}  // namespace vn2::linalg
