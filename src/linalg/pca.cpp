#include "linalg/pca.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/random.hpp"

namespace vn2::linalg {

PcaResult pca(const Matrix& data, std::size_t k, const PcaOptions& options) {
  const std::size_t n = data.rows();
  const std::size_t m = data.cols();
  if (k == 0 || k > std::min(n, m))
    throw std::invalid_argument("pca: k must be in [1, min(rows, cols)]");

  PcaResult result;
  result.column_mean = Vector(m);
  for (std::size_t j = 0; j < m; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += data(i, j);
    result.column_mean[j] = acc / static_cast<double>(n);
  }

  // Residual matrix, deflated after each extracted component.
  Matrix x(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      x(i, j) = data(i, j) - result.column_mean[j];

  result.scores = Matrix(n, k);
  result.components = Matrix(k, m);
  result.explained = Vector(k);

  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);

  for (std::size_t c = 0; c < k; ++c) {
    // NIPALS: alternate t = X·p / ‖·‖, p = Xᵀ·t / ‖·‖ until p stabilizes.
    Vector p(m);
    for (std::size_t j = 0; j < m; ++j) p[j] = dist(rng);
    double pn = norm2(p);
    if (pn == 0.0) p[0] = 1.0; else p *= 1.0 / pn;

    Vector t(n);
    for (std::size_t it = 0; it < options.max_power_iterations; ++it) {
      t = matvec(x, p);
      Vector p_next = vecmat(t, x);
      const double nrm = norm2(p_next);
      if (nrm == 0.0) break;  // Residual already fully explained.
      p_next *= 1.0 / nrm;
      Vector delta = p_next - p;
      p = std::move(p_next);
      if (norm2(delta) < options.tolerance) break;
    }
    t = matvec(x, p);

    result.components.set_row(c, p);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      result.scores(i, c) = t[i];
      var += t[i] * t[i];
    }
    result.explained[c] = n > 1 ? var / static_cast<double>(n - 1) : var;

    // Deflate: X ← X − t·pᵀ. No skip on zero scores: 0·NaN must stay NaN
    // (IEEE), and the runtime must not depend on the data.
    for (std::size_t i = 0; i < n; ++i) {
      const double ti = t[i];
      for (std::size_t j = 0; j < m; ++j) x(i, j) -= ti * p[j];
    }
  }
  return result;
}

Matrix pca_reconstruct(const PcaResult& model) {
  Matrix rec = matmul(model.scores, model.components);
  for (std::size_t i = 0; i < rec.rows(); ++i)
    for (std::size_t j = 0; j < rec.cols(); ++j)
      rec(i, j) += model.column_mean[j];
  return rec;
}

}  // namespace vn2::linalg
