#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "core/contracts.hpp"
#include "core/parallel.hpp"
#include "linalg/kernels.hpp"

namespace vn2::linalg {

namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

}  // namespace

double& Vector::operator[](std::size_t i) {
  if (i >= data_.size()) throw std::out_of_range("Vector index out of range");
  return data_[i];
}

double Vector::operator[](std::size_t i) const {
  if (i >= data_.size()) throw std::out_of_range("Vector index out of range");
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  require(size() == rhs.size(), "Vector+=: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  require(size() == rhs.size(), "Vector-=: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector v, double s) { return v *= s; }
Vector operator*(double s, Vector v) { return v *= s; }

double dot(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a.data()[i] * b.data()[i];
  return acc;
}

double norm2(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v.values()) acc += x * x;
  return std::sqrt(acc);
}

double norm1(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v.values()) acc += std::abs(x);
  return acc;
}

double norm_inf(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v.values()) acc = std::max(acc, std::abs(x));
  return acc;
}

double sum(const Vector& v) noexcept {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double mean(const Vector& v) {
  require(!v.empty(), "mean: empty vector");
  return sum(v) / static_cast<double>(v.size());
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    require(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::check_index(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("Matrix index out of range");
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  check_index(r, c);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  check_index(r, c);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  check_index(r, 0);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  check_index(r, 0);
  return {data_.data() + r * cols_, cols_};
}

Vector Matrix::row_vector(std::size_t r) const {
  auto view = row(r);
  return Vector(std::vector<double>(view.begin(), view.end()));
}

Vector Matrix::col_vector(std::size_t c) const {
  check_index(0, c);
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  require(v.size() == cols_, "set_row: size mismatch");
  auto view = row(r);
  std::copy(v.begin(), v.end(), view.begin());
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  require(values.size() == cols_, "append_row: size mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void Matrix::fill(double value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix m, double s) { return m *= s; }
Matrix operator*(double s, Matrix m) { return m *= s; }

void matmul_into(const Matrix& a, const Matrix& b, Matrix& out) {
  VN2_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  VN2_CHECK(&out != &a && &out != &b,
            "matmul_into: output must not alias an input");
  VN2_CHECK(out.rows() == a.rows() && out.cols() == b.cols(),
            "matmul_into: output shape mismatch");
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  // Rows of the output are independent, and the kernel computes every row
  // with the same per-element accumulation order regardless of how the
  // range is partitioned, so the result is bit-identical to the serial
  // call at any thread count. Only go parallel when there is enough
  // arithmetic to amortize the dispatch; tiny products (the vast majority
  // of calls in tests) take the plain path.
  constexpr std::size_t kParallelFlopThreshold = 64 * 1024;
  const std::size_t threads = core::num_threads();
  if (threads > 1 && n > 1 && n * k * m >= kParallelFlopThreshold) {
    const std::size_t block =
        std::clamp<std::size_t>(n / (4 * threads), 4, 64);
    const std::size_t tasks = (n + block - 1) / block;
    core::parallel_for(0, tasks, 1, [&](std::size_t t) {
      const std::size_t begin = t * block;
      kernels::gemm_rows(a.data(), b.data(), out.data(), k, m, begin,
                         std::min(n, begin + block));
    });
  } else {
    kernels::gemm_rows(a.data(), b.data(), out.data(), k, m, 0, n);
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  VN2_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix out(a.rows(), b.cols(), 0.0);
  matmul_into(a, b, out);
  return out;
}

Vector matvec(const Matrix& a, const Vector& x) {
  VN2_CHECK(a.cols() == x.size(), "matvec: dimension mismatch");
  Vector out(a.rows());
  kernels::gemv(a.data(), x.data(), out.data(), a.rows(), a.cols());
  return out;
}

Vector vecmat(const Vector& x, const Matrix& a) {
  VN2_CHECK(a.rows() == x.size(), "vecmat: dimension mismatch");
  Vector out(a.cols());
  // No zero-skip on x: 0·NaN must stay NaN (IEEE), and runtime must not
  // depend on the data.
  for (std::size_t i = 0; i < a.rows(); ++i)
    kernels::axpy(x.data()[i], a.data() + i * a.cols(), out.data(), a.cols());
  return out;
}

Matrix transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  transpose_into(a, out);
  return out;
}

void transpose_into(const Matrix& a, Matrix& out) {
  VN2_CHECK(&out != &a, "transpose_into: output must not alias the input");
  VN2_CHECK(out.rows() == a.cols() && out.cols() == a.rows(),
            "transpose_into: output shape mismatch");
  const std::size_t rows = a.rows(), cols = a.cols();
  const double* ad = a.data();
  double* od = out.data();
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) od[j * rows + i] = ad[i * cols + j];
}

double frobenius_norm(const Matrix& a) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a.data()[i] * a.data()[i];
  return std::sqrt(acc);
}

double entrywise_l1(const Matrix& a) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a.data()[i]);
  return acc;
}

double max_abs(const Matrix& a) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = std::max(acc, std::abs(a.data()[i]));
  return acc;
}

double frobenius_distance(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "frobenius_distance: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

bool is_nonnegative(const Matrix& a, double tolerance) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.data()[i] < -tolerance) return false;
  return true;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")\n";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << "  [";
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j) os << ", ";
      os << m(i, j);
    }
    os << "]\n";
  }
  return os;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v.data()[i];
  }
  return os << "]";
}

}  // namespace vn2::linalg
