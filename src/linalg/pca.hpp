// Truncated principal component analysis via NIPALS (power iteration with
// deflation). Used only by the decomposition baseline that VN2 is compared
// against: PCA factors are dense and sign-indefinite, which is exactly the
// interpretability contrast with NMF the paper's design motivates.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"

namespace vn2::linalg {

struct PcaResult {
  Matrix scores;      ///< n × k — projection of each (centered) row.
  Matrix components;  ///< k × m — orthonormal principal directions (rows).
  Vector column_mean; ///< m — the mean removed from each column.
  Vector explained;   ///< k — variance captured by each component.
};

struct PcaOptions {
  std::size_t max_power_iterations = 500;
  double tolerance = 1e-9;
  std::uint64_t seed = 0x9ca0b1ULL;  ///< Initial direction for power iteration.
};

/// Computes the top-k principal components of data (rows = observations).
/// Throws std::invalid_argument if k == 0 or k > min(rows, cols).
PcaResult pca(const Matrix& data, std::size_t k, const PcaOptions& options = {});

/// Reconstructs the data from a PCA model: scores·components + mean.
Matrix pca_reconstruct(const PcaResult& model);

}  // namespace vn2::linalg
