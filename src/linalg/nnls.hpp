// Non-negative least squares:  argmin_x ‖A·x − b‖²  s.t. x ≥ 0.
//
// This is the inference kernel of VN2 (paper, Problem 3): a fresh node state
// s is explained as s ≈ wᵀ·Ψ with w ≥ 0, i.e. NNLS with A = Ψᵀ. Two solvers
// are provided:
//   * Lawson–Hanson active set — exact (to tolerance), the default.
//   * Projected gradient — iterative, used by benchmarks as a comparison
//     point and as a fallback for ill-conditioned systems.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace vn2::linalg {

struct NnlsOptions {
  /// KKT tolerance on the dual (gradient) entries.
  double tolerance = 1e-10;
  /// Safety cap on active-set iterations (3·n is the classical bound).
  std::size_t max_iterations = 0;  // 0 → 3 * cols
};

struct NnlsResult {
  Vector x;               ///< Non-negative solution.
  double residual_norm;   ///< ‖A·x − b‖₂ at the solution.
  std::size_t iterations; ///< Outer iterations used.
  bool converged;         ///< False only if the iteration cap was hit.
};

/// Reusable scratch for the Lawson–Hanson solver: the packed passive
/// columns, Gram matrix, rhs and residual/gradient buffers, plus the
/// active-set bookkeeping. One solve with a warm workspace is
/// result-identical to a cold one — every buffer is fully overwritten (or
/// re-assigned) before its first read — so callers doing many solves of
/// the same shape (sink-side batch inference, benchmarks) amortize the
/// allocations away without changing a single bit of output. Not
/// thread-safe: use one workspace per concurrent solver (e.g. one per
/// parallel_for chunk slot).
struct NnlsWorkspace {
  std::vector<double> packed;  ///< rows × |passive|, row-major gather of A.
  Matrix gram;                 ///< |passive| × |passive|.
  Vector rhs;
  Vector ax;        ///< A·x (residual evaluation).
  Vector gradient;  ///< w = Aᵀ(b − A·x).
  std::vector<bool> in_passive;
  std::vector<std::size_t> passive;
};

/// Lawson–Hanson active-set NNLS. Throws on shape mismatch.
NnlsResult nnls(const Matrix& a, const Vector& b, const NnlsOptions& options = {});

/// Workspace-reusing overload: identical results to the allocating one,
/// with the scratch buffers recycled across calls.
NnlsResult nnls(const Matrix& a, const Vector& b, const NnlsOptions& options,
                NnlsWorkspace& workspace);

struct ProjectedGradientOptions {
  double step_tolerance = 1e-10;
  std::size_t max_iterations = 5000;
};

/// Projected-gradient NNLS with Barzilai–Borwein-style step adaptation.
NnlsResult nnls_projected_gradient(const Matrix& a, const Vector& b,
                                   const ProjectedGradientOptions& options = {});

}  // namespace vn2::linalg
