// Dense row-major matrix and vector types used throughout VN2.
//
// The analysis pipeline works with moderate sizes (thousands of states by
// 43 metrics, factor ranks below ~50), so a straightforward cache-friendly
// row-major implementation with no expression templates is the right
// complexity point. All checked failures throw std::invalid_argument /
// std::out_of_range; shapes are always validated on entry.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

namespace vn2::linalg {

/// Dense vector of doubles. Thin wrapper over std::vector that adds the
/// numeric operations the NMF/NNLS code needs.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator[](std::size_t i);
  double operator[](std::size_t i) const;

  [[nodiscard]] std::span<double> span() noexcept { return data_; }
  [[nodiscard]] std::span<const double> span() const noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return data_;
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  auto begin() noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() const noexcept { return data_.end(); }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s) noexcept;

  bool operator==(const Vector&) const = default;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector v, double s);
Vector operator*(double s, Vector v);

/// Euclidean dot product. Sizes must match.
double dot(const Vector& a, const Vector& b);
/// L2 norm.
double norm2(const Vector& v) noexcept;
/// L1 norm (sum of absolute values).
double norm1(const Vector& v) noexcept;
/// Largest absolute entry; 0 for an empty vector.
double norm_inf(const Vector& v) noexcept;
/// Sum of entries.
double sum(const Vector& v) noexcept;
/// Arithmetic mean; throws on empty input.
double mean(const Vector& v);

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Build from nested initializer list; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// Copies of a row / column as vectors.
  [[nodiscard]] Vector row_vector(std::size_t r) const;
  [[nodiscard]] Vector col_vector(std::size_t c) const;

  void set_row(std::size_t r, const Vector& v);

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  /// Appends a row (the matrix must be empty or have matching cols).
  void append_row(std::span<const double> values);

  void fill(double value) noexcept;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;

  void check_index(std::size_t r, std::size_t c) const;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double s);
Matrix operator*(double s, Matrix m);

/// Matrix product A(n×k) · B(k×m) → n×m. Throws on shape mismatch.
/// Dispatches to the selected kernel backend (linalg/kernels.hpp) and runs
/// row-parallel above a flop threshold; results are bit-identical at every
/// thread count.
Matrix matmul(const Matrix& a, const Matrix& b);
/// matmul into a preallocated out (must already be a.rows()×b.cols() and
/// must not alias either input). The allocation-free form the NMF
/// workspace loop uses.
void matmul_into(const Matrix& a, const Matrix& b, Matrix& out);
/// A(n×k) · x(k) → n.
Vector matvec(const Matrix& a, const Vector& x);
/// xᵀ(n) · A(n×k) → k.
Vector vecmat(const Vector& x, const Matrix& a);
/// Transpose.
Matrix transpose(const Matrix& a);
/// Transpose into a preallocated out (must already be a.cols()×a.rows()
/// and must not alias a).
void transpose_into(const Matrix& a, Matrix& out);

/// Frobenius norm ‖A‖_F.
double frobenius_norm(const Matrix& a) noexcept;
/// Sum of absolute entries (entrywise L1).
double entrywise_l1(const Matrix& a) noexcept;
/// Largest absolute entry.
double max_abs(const Matrix& a) noexcept;
/// ‖A − B‖_F; throws on shape mismatch.
double frobenius_distance(const Matrix& a, const Matrix& b);

/// True if every entry is >= -tolerance.
bool is_nonnegative(const Matrix& a, double tolerance = 0.0) noexcept;

/// Pretty printer used by tests and examples (not performance-sensitive).
std::ostream& operator<<(std::ostream& os, const Matrix& m);
std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace vn2::linalg
