#include "linalg/random.hpp"

namespace vn2::linalg {

Matrix random_uniform_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed, double lo, double hi) {
  std::mt19937_64 rng(seed);
  Matrix m(rows, cols);
  fill_uniform(m, rng, lo, hi);
  return m;
}

Vector random_uniform_vector(std::size_t n, std::uint64_t seed, double lo,
                             double hi) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = dist(rng);
  return v;
}

Matrix random_gaussian_matrix(std::size_t rows, std::size_t cols,
                              std::uint64_t seed, double mean, double stddev) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(mean, stddev);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
  return m;
}

void fill_uniform(Matrix& m, std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
}

}  // namespace vn2::linalg
