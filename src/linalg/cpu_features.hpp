// Runtime CPU feature detection for the SIMD kernel backend.
//
// The `simd` backend (kernels_simd.cpp) is compiled for a fixed target —
// AVX2+FMA on x86-64, NEON on aarch64 — so whether it may run is a
// *runtime* property of the host, not a build-time one. This header is the
// single source of truth for that decision: `set_backend()` consults it so
// kAuto never selects a backend the CPU cannot execute, and the CLI
// consults it to turn a forced `--linalg-backend simd` on unsupported
// hardware into a clean usage error instead of SIGILL.
//
// Testing hook: setting the environment variable VN2_CPU_FEATURES=scalar
// masks every SIMD feature, so the unsupported-hardware paths (forced
// error, auto fallback) are exercisable on any machine. Detection is
// re-evaluated on every call — it is a handful of cached-cpuid reads — so
// tests can flip the mask without process restarts.
#pragma once

#include <string>

namespace vn2::linalg {

/// What the host CPU offers to the SIMD backend, after applying the
/// VN2_CPU_FEATURES mask.
struct CpuFeatures {
  bool avx2 = false;  ///< x86-64 AVX2 (256-bit integer/double lanes).
  bool fma = false;   ///< x86-64 FMA3.
  bool neon = false;  ///< aarch64 Advanced SIMD (baseline on AArch64).
  bool masked = false;  ///< VN2_CPU_FEATURES=scalar override is active.
};

/// Probes the host CPU (cpuid on x86-64, architecture baseline on
/// aarch64) and applies the VN2_CPU_FEATURES environment mask.
[[nodiscard]] CpuFeatures detect_cpu_features();

/// True when the host can execute the instruction set the SIMD kernels
/// were compiled for: AVX2+FMA on x86-64, NEON on aarch64. False on other
/// architectures and under VN2_CPU_FEATURES=scalar.
[[nodiscard]] bool simd_runtime_supported();

/// Human-readable summary for bench/report headers: "avx2+fma", "neon",
/// "scalar", or "scalar (masked by VN2_CPU_FEATURES)".
[[nodiscard]] std::string cpu_features_summary();

}  // namespace vn2::linalg
