// Pluggable dense-kernel backends for the linalg hot paths.
//
// Every expensive operation in the analysis pipeline — NMF multiplicative
// updates, the NNLS Gram solves, batch diagnosis — reduces to the handful
// of primitives declared here (GEMM over a row range, GEMV, SYRK-style
// Gram, dot, axpy). Two implementations sit behind one dispatch point:
//
//   * reference — the straightforward scalar loops the repo started with,
//     kept as the semantics oracle for parity testing.
//   * blocked   — cache-blocked, vectorization-friendly kernels: 4-row ×
//     16-column register tiles for GEMM/GEMV and 4-row panels for SYRK,
//     written in plain C++ (restrict-qualified pointers, per-tile inner
//     loops the autovectorizer can lift; no intrinsics).
//
// Reproducibility contract: both backends accumulate every output element
// in the SAME order (ascending inner index, one accumulator per element —
// blocking only regroups independent elements, never splits a sum), so
// results do not depend on the backend, on tile boundaries, or on how the
// caller partitions rows across threads. dot/axpy share a single
// implementation and are bit-exact by construction; GEMM/SYRK/GEMV are
// held to ≤1e-13 relative agreement by tests/linalg_backend_test.cpp to
// stay robust against FMA-contraction differences between the loop shapes.
//
// The backend is process-global (an atomic, like core::set_num_threads):
// `set_backend()` from code, `--linalg-backend {auto,reference,blocked}`
// from the CLI. Building with -DVN2_BLOCKED_KERNELS=OFF compiles the
// blocked bodies out entirely; requesting them then falls back to
// reference (observable via backend(), asserted by CI's reference-only
// job).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace vn2::linalg {

/// Kernel implementation families. kAuto resolves at set time: blocked
/// when compiled in, reference otherwise.
enum class Backend {
  kReference,
  kBlocked,
};

/// Selects the process-global backend. Requesting kBlocked in a build
/// configured with -DVN2_BLOCKED_KERNELS=OFF silently resolves to
/// kReference (backend() reports what actually runs). Call from the main
/// thread between parallel regions, like core::set_num_threads.
void set_backend(Backend backend) noexcept;

/// The backend every kernel currently dispatches to.
[[nodiscard]] Backend backend() noexcept;

/// True when the blocked kernels were compiled in (VN2_BLOCKED_KERNELS).
[[nodiscard]] bool blocked_kernels_compiled() noexcept;

/// "reference" / "blocked".
[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// Parses a --linalg-backend value: "auto" (blocked when available),
/// "reference", or "blocked". Returns nullopt on anything else.
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

namespace kernels {

/// C rows [row_begin, row_end) of the product A(n×k)·B(k×m), row-major raw
/// pointers, overwriting the output rows. Rows are independent, so callers
/// partition [0, n) across threads however they like without affecting
/// results. No sparsity shortcuts: NaN/Inf in either operand propagate per
/// IEEE semantics.
void gemm_rows(const double* a, const double* b, double* c, std::size_t k,
               std::size_t m, std::size_t row_begin, std::size_t row_end);

/// y = A(rows×cols)·x, overwriting y.
void gemv(const double* a, const double* x, double* y, std::size_t rows,
          std::size_t cols);

/// G(k×k) = AᵀA for row-major A(rows×k): the SYRK-style Gram kernel behind
/// NNLS's passive-set solve. Computes the upper triangle and mirrors it;
/// G is overwritten.
void syrk_upper(const double* a, std::size_t rows, std::size_t k, double* g);

/// Euclidean dot product over n entries. Shared by both backends
/// (bit-exact across backend switches by construction).
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;

/// y += alpha·x over n entries. Shared by both backends.
void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept;

}  // namespace kernels

}  // namespace vn2::linalg
