// Pluggable dense-kernel backends for the linalg hot paths.
//
// Every expensive operation in the analysis pipeline — NMF multiplicative
// updates, the NNLS Gram solves, batch diagnosis — reduces to the handful
// of primitives declared here (GEMM over a row range, GEMV, SYRK-style
// Gram, dot, axpy). Two implementations sit behind one dispatch point:
//
//   * reference — the straightforward scalar loops the repo started with,
//     kept as the semantics oracle for parity testing.
//   * blocked   — cache-blocked, vectorization-friendly kernels: 4-row ×
//     16-column register tiles for GEMM/GEMV and 4-row panels for SYRK,
//     written in plain C++ (restrict-qualified pointers, per-tile inner
//     loops the autovectorizer can lift; no intrinsics).
//   * simd      — explicit AVX2+FMA (x86-64) / NEON (aarch64) kernels
//     (kernels_simd.cpp). Compiled for a fixed instruction set, so whether
//     it may RUN is a runtime property: set_backend(kSimd) only engages it
//     when cpu_features.hpp reports the host supports it, and falls back
//     to the best scalar backend otherwise (observable via backend()).
//
// Reproducibility contract: every backend accumulates each output element
// in the SAME index order (ascending inner index, one accumulator per
// element — blocking/tiling only regroups independent elements), so
// results never depend on tile boundaries or on how the caller partitions
// rows across threads — each backend is bit-identical run-to-run and
// across thread counts. ACROSS backends agreement is tolerance-based
// (≤1e-12 relative, tests/linalg_backend_test.cpp): the simd backend uses
// fused multiply-adds throughout and lane-wise partial sums for its
// reductions (dot/gemv), which round differently from the scalar chains.
// reference and blocked share unfused arithmetic and stay within 1e-13 of
// each other; dot/axpy are bit-exact between those two by construction.
//
// The backend is process-global (an atomic, like core::set_num_threads):
// `set_backend()` from code, `--linalg-backend
// {auto,reference,blocked,simd}` from the CLI ("auto" resolves to the
// fastest backend the build AND the host CPU support: simd, else blocked,
// else reference). Building with -DVN2_BLOCKED_KERNELS=OFF or
// -DVN2_SIMD_KERNELS=OFF compiles the respective bodies out entirely;
// requesting them then falls back down the same chain.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace vn2::linalg {

/// Kernel implementation families.
enum class Backend {
  kReference,
  kBlocked,
  kSimd,
};

/// Selects the process-global backend. Requesting a backend the build
/// compiled out (-DVN2_BLOCKED_KERNELS=OFF / -DVN2_SIMD_KERNELS=OFF) or —
/// for kSimd — one the host CPU cannot execute silently resolves down the
/// chain simd → blocked → reference (backend() reports what actually
/// runs; callers that must fail loudly, like the CLI's forced
/// --linalg-backend simd, check simd_available() first). Call from the
/// main thread between parallel regions, like core::set_num_threads.
void set_backend(Backend backend) noexcept;

/// The backend every kernel currently dispatches to.
[[nodiscard]] Backend backend() noexcept;

/// True when the blocked kernels were compiled in (VN2_BLOCKED_KERNELS).
[[nodiscard]] bool blocked_kernels_compiled() noexcept;

/// True when the simd kernels were compiled in (VN2_SIMD_KERNELS on a
/// supported compiler/architecture).
[[nodiscard]] bool simd_kernels_compiled() noexcept;

/// True when the simd backend can actually run here: compiled in AND the
/// host CPU passes cpu_features.hpp's runtime check (AVX2+FMA / NEON,
/// after the VN2_CPU_FEATURES test mask).
[[nodiscard]] bool simd_available() noexcept;

/// "reference" / "blocked" / "simd".
[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// Parses a --linalg-backend value: "auto" (the fastest available:
/// simd when compiled in and runtime-supported, else blocked when
/// compiled in, else reference), "reference", "blocked", or "simd".
/// Returns nullopt on anything else. "auto" never names a backend this
/// build/host cannot run.
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

namespace kernels {

/// C rows [row_begin, row_end) of the product A(n×k)·B(k×m), row-major raw
/// pointers, overwriting the output rows. Rows are independent, so callers
/// partition [0, n) across threads however they like without affecting
/// results. No sparsity shortcuts: NaN/Inf in either operand propagate per
/// IEEE semantics.
void gemm_rows(const double* a, const double* b, double* c, std::size_t k,
               std::size_t m, std::size_t row_begin, std::size_t row_end);

/// y = A(rows×cols)·x, overwriting y.
void gemv(const double* a, const double* x, double* y, std::size_t rows,
          std::size_t cols);

/// G(k×k) = AᵀA for row-major A(rows×k): the SYRK-style Gram kernel behind
/// NNLS's passive-set solve. Computes the upper triangle and mirrors it;
/// G is overwritten.
void syrk_upper(const double* a, std::size_t rows, std::size_t k, double* g);

/// Euclidean dot product over n entries. reference and blocked share one
/// scalar chain (bit-exact between those two by construction); simd uses
/// lane-wise partial sums (deterministic, tolerance parity vs scalar).
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;

/// y += alpha·x over n entries. reference and blocked share one scalar
/// loop; simd fuses each element's multiply-add.
void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept;

}  // namespace kernels

}  // namespace vn2::linalg
