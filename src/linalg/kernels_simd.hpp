// Internal declarations for the SIMD kernel backend (kernels_simd.cpp).
//
// Not part of the public linalg API: callers go through the dispatch in
// kernels.hpp (`set_backend(Backend::kSimd)` / `--linalg-backend simd`).
// This header exists so kernels.cpp can dispatch into the SIMD TU and so
// both TUs agree — via VN2_SIMD_COMPILED — on whether the SIMD bodies
// exist in this build (the -DVN2_SIMD_KERNELS CMake gate AND a supported
// architecture/compiler).
//
// Determinism contract of the SIMD kernels (see DESIGN.md "Linalg kernel
// backends" for the full policy):
//
//  * Every output element is accumulated in the same index order as the
//    reference backend, but each step is a FUSED multiply-add — vector
//    fmadd lanes in the main loops, __builtin_fma in remainder tails —
//    so an element's arithmetic is identical no matter which tile shape,
//    column group, or row partition computed it. Results are therefore
//    bit-identical run-to-run and across thread counts *within* this
//    backend.
//  * Reductions (dot, gemv rows) split the sum into fixed lane-wise
//    partials combined in a fixed order; that reordering (and FMA
//    contraction) is why cross-backend agreement is tolerance-based
//    (≤1e-12 relative) rather than bit-exact.
#pragma once

#include <cstddef>

#ifndef VN2_SIMD_KERNELS
#define VN2_SIMD_KERNELS 1
#endif

// The SIMD bodies exist when the CMake gate is on AND the target is one
// the kernels are written for: AVX2+FMA on x86-64 or NEON on aarch64,
// under a GNU-flavoured compiler (target attributes + intrinsics).
#if VN2_SIMD_KERNELS && (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__aarch64__))
#define VN2_SIMD_COMPILED 1
#else
#define VN2_SIMD_COMPILED 0
#endif

#if VN2_SIMD_COMPILED

namespace vn2::linalg::simd {

/// C rows [row_begin, row_end) of A(n×k)·B(k×m); same contract as
/// kernels::gemm_rows. Safe to call only when simd_runtime_supported().
void gemm_rows(const double* a, const double* b, double* c, std::size_t k,
               std::size_t m, std::size_t row_begin,
               std::size_t row_end) noexcept;

/// y = A(rows×cols)·x; same contract as kernels::gemv.
void gemv(const double* a, const double* x, double* y, std::size_t rows,
          std::size_t cols) noexcept;

/// Upper triangle of G(k×k) = AᵀA; the caller mirrors the lower triangle
/// (kernels.cpp does this for every backend).
void syrk_upper(const double* a, std::size_t rows, std::size_t k,
                double* g) noexcept;

/// Euclidean dot product over n entries (lane-wise partial sums).
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;

/// y += alpha·x over n entries (fused multiply-add per element).
void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept;

}  // namespace vn2::linalg::simd

#endif  // VN2_SIMD_COMPILED
