// Small dense linear solvers: Cholesky factorization/solve for SPD systems.
//
// NNLS's active-set inner step and the PCA deflation both solve systems of
// rank at most the NMF compression factor (r ≲ 50), so an O(k³) dense
// Cholesky is plenty.
#pragma once

#include "linalg/matrix.hpp"

namespace vn2::linalg {

/// Solves A·x = b for symmetric positive-definite A via Cholesky.
/// Throws std::invalid_argument if A is not square / sizes mismatch, and
/// std::runtime_error if A is not (numerically) positive definite.
Vector cholesky_solve(const Matrix& a, const Vector& b);

/// In-place lower-triangular Cholesky factor of an SPD matrix. Returns L with
/// A = L·Lᵀ. Throws std::runtime_error if a pivot falls below `min_pivot`.
Matrix cholesky_factor(const Matrix& a, double min_pivot = 1e-12);

}  // namespace vn2::linalg
