#include "linalg/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

namespace vn2::linalg {

namespace {

/// The VN2_CPU_FEATURES mask: "scalar" hides every SIMD feature (the
/// testing hook for unsupported-hardware paths); anything else — unset,
/// empty, or "native" — means "report what the CPU really has".
bool mask_active() {
  const char* value = std::getenv("VN2_CPU_FEATURES");
  return value != nullptr && std::strcmp(value, "scalar") == 0;
}

}  // namespace

CpuFeatures detect_cpu_features() {
  CpuFeatures features;
  features.masked = mask_active();
  if (features.masked) return features;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.fma = __builtin_cpu_supports("fma") != 0;
#elif defined(__aarch64__)
  // Advanced SIMD (NEON) with double-precision lanes is part of the
  // AArch64 baseline; there is nothing to probe.
  features.neon = true;
#endif
  return features;
}

bool simd_runtime_supported() {
  const CpuFeatures features = detect_cpu_features();
  return (features.avx2 && features.fma) || features.neon;
}

std::string cpu_features_summary() {
  const CpuFeatures features = detect_cpu_features();
  if (features.masked) return "scalar (masked by VN2_CPU_FEATURES)";
  if (features.avx2 && features.fma) return "avx2+fma";
  if (features.avx2) return "avx2";
  if (features.neon) return "neon";
  return "scalar";
}

}  // namespace vn2::linalg
