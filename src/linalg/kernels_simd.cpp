// SIMD kernel backend: explicit AVX2+FMA (x86-64) / NEON (aarch64)
// implementations of the linalg primitives. See kernels_simd.hpp for the
// determinism contract and kernels.hpp for the dispatch.
//
// Build notes:
//  * On x86-64 every function carries __attribute__((target("avx2,fma")))
//    so this TU compiles without -mavx2 in the global flags; the bodies
//    must only run after cpu_features.hpp reports the host supports them
//    (kernels.cpp's dispatch guarantees that).
//  * On aarch64 double-lane Advanced SIMD is baseline, so no attribute.
//  * Every multiply-accumulate is FUSED — vfmadd lanes in vector loops,
//    __builtin_fma in scalar remainders (which lowers to the hardware
//    instruction inside the target regions) — so one output element's
//    rounding is the same no matter which tile shape or remainder path
//    computed it. That is what makes results independent of row
//    partitioning (thread counts) while still differing from the unfused
//    reference backend by at most ~1 ulp per accumulation step.
#include "linalg/kernels_simd.hpp"

#if VN2_SIMD_COMPILED

#include <algorithm>
#include <cstddef>

#if defined(__x86_64__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

#define VN2_RESTRICT __restrict__

namespace vn2::linalg::simd {

namespace {

#if defined(__x86_64__)

#define VN2_SIMD_TARGET __attribute__((target("avx2,fma")))

using vreg = __m256d;
constexpr std::size_t kLanes = 4;

VN2_SIMD_TARGET inline vreg vzero() { return _mm256_setzero_pd(); }
VN2_SIMD_TARGET inline vreg vload(const double* p) {
  return _mm256_loadu_pd(p);
}
VN2_SIMD_TARGET inline void vstore(double* p, vreg v) {
  _mm256_storeu_pd(p, v);
}
VN2_SIMD_TARGET inline vreg vsplat(double s) { return _mm256_set1_pd(s); }
VN2_SIMD_TARGET inline vreg vfmadd(vreg a, vreg b, vreg acc) {
  return _mm256_fmadd_pd(a, b, acc);
}
/// Fixed pairwise reduction order: (l0+l1) + (l2+l3).
VN2_SIMD_TARGET inline double vsum(vreg v) {
  return (v[0] + v[1]) + (v[2] + v[3]);
}

#elif defined(__aarch64__)

#define VN2_SIMD_TARGET

using vreg = float64x2_t;
constexpr std::size_t kLanes = 2;

inline vreg vzero() { return vdupq_n_f64(0.0); }
inline vreg vload(const double* p) { return vld1q_f64(p); }
inline void vstore(double* p, vreg v) { vst1q_f64(p, v); }
inline vreg vsplat(double s) { return vdupq_n_f64(s); }
inline vreg vfmadd(vreg a, vreg b, vreg acc) { return vfmaq_f64(acc, a, b); }
/// Fixed reduction order: l0 + l1.
inline double vsum(vreg v) {
  return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
}

#endif

// Tile geometry. 4 A-rows × 2 vector registers of C columns per register
// tile (8 accumulator registers + one broadcast + two B strips stays well
// inside the 16-register AVX2/NEON file), with the same depth blocking as
// the blocked backend: partial sums park in C between depth blocks, which
// extends each element's fused chain exactly (the parked value is the
// accumulator), so blocking never reassociates a sum.
constexpr std::size_t kRowsPerTile = 4;
constexpr std::size_t kColsPerTile = 2 * kLanes;
constexpr std::size_t kDepthPerBlock = 512;

// --------------------------------------------------------------------------
// GEMM register tiles. Vectorization is across OUTPUT COLUMNS: each lane
// owns one C element and accumulates its a[i][p]*b[p][j] products in
// ascending-p order, so lane assignment (and therefore the j grouping into
// 2-vector / 1-vector / scalar regions, which depends only on m) never
// reorders a sum.

VN2_SIMD_TARGET void gemm_tile_r4v2(const double* VN2_RESTRICT a,
                                    const double* VN2_RESTRICT b,
                                    double* VN2_RESTRICT c, std::size_t k,
                                    std::size_t m, std::size_t i,
                                    std::size_t j, std::size_t p0,
                                    std::size_t p1) {
  const double* arow[kRowsPerTile];
  for (std::size_t r = 0; r < kRowsPerTile; ++r) arow[r] = a + (i + r) * k;
  vreg acc[kRowsPerTile][2];
  for (std::size_t r = 0; r < kRowsPerTile; ++r) {
    if (p0 == 0) {
      acc[r][0] = vzero();
      acc[r][1] = vzero();
    } else {
      acc[r][0] = vload(c + (i + r) * m + j);
      acc[r][1] = vload(c + (i + r) * m + j + kLanes);
    }
  }
  const double* bpos = b + p0 * m + j;
  for (std::size_t p = p0; p < p1; ++p, bpos += m) {
    const vreg b0 = vload(bpos);
    const vreg b1 = vload(bpos + kLanes);
    for (std::size_t r = 0; r < kRowsPerTile; ++r) {
      const vreg av = vsplat(arow[r][p]);
      acc[r][0] = vfmadd(av, b0, acc[r][0]);
      acc[r][1] = vfmadd(av, b1, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < kRowsPerTile; ++r) {
    vstore(c + (i + r) * m + j, acc[r][0]);
    vstore(c + (i + r) * m + j + kLanes, acc[r][1]);
  }
}

VN2_SIMD_TARGET void gemm_tile_r4v1(const double* VN2_RESTRICT a,
                                    const double* VN2_RESTRICT b,
                                    double* VN2_RESTRICT c, std::size_t k,
                                    std::size_t m, std::size_t i,
                                    std::size_t j, std::size_t p0,
                                    std::size_t p1) {
  const double* arow[kRowsPerTile];
  for (std::size_t r = 0; r < kRowsPerTile; ++r) arow[r] = a + (i + r) * k;
  vreg acc[kRowsPerTile];
  for (std::size_t r = 0; r < kRowsPerTile; ++r)
    acc[r] = p0 == 0 ? vzero() : vload(c + (i + r) * m + j);
  const double* bpos = b + p0 * m + j;
  for (std::size_t p = p0; p < p1; ++p, bpos += m) {
    const vreg b0 = vload(bpos);
    for (std::size_t r = 0; r < kRowsPerTile; ++r)
      acc[r] = vfmadd(vsplat(arow[r][p]), b0, acc[r]);
  }
  for (std::size_t r = 0; r < kRowsPerTile; ++r)
    vstore(c + (i + r) * m + j, acc[r]);
}

VN2_SIMD_TARGET void gemm_tile_r1v2(const double* VN2_RESTRICT a,
                                    const double* VN2_RESTRICT b,
                                    double* VN2_RESTRICT c, std::size_t k,
                                    std::size_t m, std::size_t i,
                                    std::size_t j, std::size_t p0,
                                    std::size_t p1) {
  const double* arow = a + i * k;
  vreg acc0, acc1;
  if (p0 == 0) {
    acc0 = vzero();
    acc1 = vzero();
  } else {
    acc0 = vload(c + i * m + j);
    acc1 = vload(c + i * m + j + kLanes);
  }
  const double* bpos = b + p0 * m + j;
  for (std::size_t p = p0; p < p1; ++p, bpos += m) {
    const vreg av = vsplat(arow[p]);
    acc0 = vfmadd(av, vload(bpos), acc0);
    acc1 = vfmadd(av, vload(bpos + kLanes), acc1);
  }
  vstore(c + i * m + j, acc0);
  vstore(c + i * m + j + kLanes, acc1);
}

VN2_SIMD_TARGET void gemm_tile_r1v1(const double* VN2_RESTRICT a,
                                    const double* VN2_RESTRICT b,
                                    double* VN2_RESTRICT c, std::size_t k,
                                    std::size_t m, std::size_t i,
                                    std::size_t j, std::size_t p0,
                                    std::size_t p1) {
  const double* arow = a + i * k;
  vreg acc = p0 == 0 ? vzero() : vload(c + i * m + j);
  const double* bpos = b + p0 * m + j;
  for (std::size_t p = p0; p < p1; ++p, bpos += m)
    acc = vfmadd(vsplat(arow[p]), vload(bpos), acc);
  vstore(c + i * m + j, acc);
}

/// Scalar-remainder columns [j, m) for one row: the same fused ascending-p
/// chain as a vector lane, parked in C across depth blocks.
VN2_SIMD_TARGET void gemm_row_scalar_tail(const double* VN2_RESTRICT a,
                                          const double* VN2_RESTRICT b,
                                          double* VN2_RESTRICT c,
                                          std::size_t k, std::size_t m,
                                          std::size_t i, std::size_t j,
                                          std::size_t p0, std::size_t p1) {
  const double* arow = a + i * k;
  double* crow = c + i * m;
  for (std::size_t jj = j; jj < m; ++jj) {
    double acc = p0 == 0 ? 0.0 : crow[jj];
    for (std::size_t p = p0; p < p1; ++p)
      acc = __builtin_fma(arow[p], b[p * m + jj], acc);
    crow[jj] = acc;
  }
}

/// One row block (4 rows or 1 row) over the depth range [p0, p1), sweeping
/// the column regions: full 2-vector strips, at most one 1-vector strip,
/// then the scalar tail. The region boundaries depend only on m.
VN2_SIMD_TARGET void gemm_block_r4(const double* VN2_RESTRICT a,
                                   const double* VN2_RESTRICT b,
                                   double* VN2_RESTRICT c, std::size_t k,
                                   std::size_t m, std::size_t i,
                                   std::size_t p0, std::size_t p1) {
  const std::size_t jfull = m - m % kColsPerTile;
  std::size_t j = 0;
  for (; j < jfull; j += kColsPerTile)
    gemm_tile_r4v2(a, b, c, k, m, i, j, p0, p1);
  if (j + kLanes <= m) {
    gemm_tile_r4v1(a, b, c, k, m, i, j, p0, p1);
    j += kLanes;
  }
  if (j < m)
    for (std::size_t r = 0; r < kRowsPerTile; ++r)
      gemm_row_scalar_tail(a, b, c, k, m, i + r, j, p0, p1);
}

VN2_SIMD_TARGET void gemm_block_r1(const double* VN2_RESTRICT a,
                                   const double* VN2_RESTRICT b,
                                   double* VN2_RESTRICT c, std::size_t k,
                                   std::size_t m, std::size_t i,
                                   std::size_t p0, std::size_t p1) {
  const std::size_t jfull = m - m % kColsPerTile;
  std::size_t j = 0;
  for (; j < jfull; j += kColsPerTile)
    gemm_tile_r1v2(a, b, c, k, m, i, j, p0, p1);
  if (j + kLanes <= m) {
    gemm_tile_r1v1(a, b, c, k, m, i, j, p0, p1);
    j += kLanes;
  }
  if (j < m) gemm_row_scalar_tail(a, b, c, k, m, i, j, p0, p1);
}

/// One row's dot-product against x: two lane-wise accumulators over
/// stride-2·kLanes, an optional single-vector step, a fixed-order
/// horizontal sum, then a fused scalar tail. The partial-sum split depends
/// only on n, so the result is a pure function of the operands. Shared by
/// dot() and gemv() so both reduce identically.
VN2_SIMD_TARGET double dot_fused(const double* VN2_RESTRICT a,
                                 const double* VN2_RESTRICT b, std::size_t n) {
  vreg acc0 = vzero();
  vreg acc1 = vzero();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    acc0 = vfmadd(vload(a + i), vload(b + i), acc0);
    acc1 = vfmadd(vload(a + i + kLanes), vload(b + i + kLanes), acc1);
  }
  if (i + kLanes <= n) {
    acc0 = vfmadd(vload(a + i), vload(b + i), acc0);
    i += kLanes;
  }
  double sum = vsum(acc0) + vsum(acc1);
  for (; i < n; ++i) sum = __builtin_fma(a[i], b[i], sum);
  return sum;
}

}  // namespace

VN2_SIMD_TARGET void gemm_rows(const double* a, const double* b, double* c,
                               std::size_t k, std::size_t m,
                               std::size_t row_begin,
                               std::size_t row_end) noexcept {
  // Same depth blocking as the blocked backend: the row block's A panel
  // stays L1-resident while every column strip sweeps one depth block.
  // The do-while writes C's zeros even when k == 0.
  std::size_t i = row_begin;
  for (; i + kRowsPerTile <= row_end; i += kRowsPerTile) {
    std::size_t p0 = 0;
    do {
      const std::size_t p1 = std::min(p0 + kDepthPerBlock, k);
      gemm_block_r4(a, b, c, k, m, i, p0, p1);
      p0 = p1;
    } while (p0 < k);
  }
  for (; i < row_end; ++i) {
    std::size_t p0 = 0;
    do {
      const std::size_t p1 = std::min(p0 + kDepthPerBlock, k);
      gemm_block_r1(a, b, c, k, m, i, p0, p1);
      p0 = p1;
    } while (p0 < k);
  }
}

VN2_SIMD_TARGET void gemv(const double* a, const double* x, double* y,
                          std::size_t rows, std::size_t cols) noexcept {
  for (std::size_t i = 0; i < rows; ++i)
    y[i] = dot_fused(a + i * cols, x, cols);
}

VN2_SIMD_TARGET void syrk_upper(const double* a, std::size_t rows,
                                std::size_t k, double* g) noexcept {
  // Panel-of-4 rank-1 updates into the resident upper triangle, vectorized
  // across the j columns of each Gram row. Per element the four updates
  // chain in ascending-r order as fused ops — the same chain a lane or the
  // scalar remainder computes — so panel membership and the vector/scalar
  // j split (fixed by k) never change a sum.
  for (std::size_t i = 0; i < k; ++i) {
    double* grow = g + i * k;
    for (std::size_t j = i; j < k; ++j) grow[j] = 0.0;
  }
  std::size_t r = 0;
  for (; r + kRowsPerTile <= rows; r += kRowsPerTile) {
    const double* p0 = a + (r + 0) * k;
    const double* p1 = a + (r + 1) * k;
    const double* p2 = a + (r + 2) * k;
    const double* p3 = a + (r + 3) * k;
    for (std::size_t i = 0; i < k; ++i) {
      const double s0 = p0[i], s1 = p1[i], s2 = p2[i], s3 = p3[i];
      const vreg v0 = vsplat(s0);
      const vreg v1 = vsplat(s1);
      const vreg v2 = vsplat(s2);
      const vreg v3 = vsplat(s3);
      double* grow = g + i * k;
      std::size_t j = i;
      for (; j + kLanes <= k; j += kLanes) {
        vreg acc = vload(grow + j);
        acc = vfmadd(v0, vload(p0 + j), acc);
        acc = vfmadd(v1, vload(p1 + j), acc);
        acc = vfmadd(v2, vload(p2 + j), acc);
        acc = vfmadd(v3, vload(p3 + j), acc);
        vstore(grow + j, acc);
      }
      for (; j < k; ++j) {
        double acc = grow[j];
        acc = __builtin_fma(s0, p0[j], acc);
        acc = __builtin_fma(s1, p1[j], acc);
        acc = __builtin_fma(s2, p2[j], acc);
        acc = __builtin_fma(s3, p3[j], acc);
        grow[j] = acc;
      }
    }
  }
  for (; r < rows; ++r) {
    const double* prow = a + r * k;
    for (std::size_t i = 0; i < k; ++i) {
      const double si = prow[i];
      const vreg vi = vsplat(si);
      double* grow = g + i * k;
      std::size_t j = i;
      for (; j + kLanes <= k; j += kLanes)
        vstore(grow + j, vfmadd(vi, vload(prow + j), vload(grow + j)));
      for (; j < k; ++j) grow[j] = __builtin_fma(si, prow[j], grow[j]);
    }
  }
}

VN2_SIMD_TARGET double dot(const double* a, const double* b,
                           std::size_t n) noexcept {
  return dot_fused(a, b, n);
}

VN2_SIMD_TARGET void axpy(double alpha, const double* x, double* y,
                          std::size_t n) noexcept {
  const double* VN2_RESTRICT xp = x;
  double* VN2_RESTRICT yp = y;
  const vreg va = vsplat(alpha);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    vstore(yp + i, vfmadd(va, vload(xp + i), vload(yp + i)));
  for (; i < n; ++i) yp[i] = __builtin_fma(alpha, xp[i], yp[i]);
}

}  // namespace vn2::linalg::simd

#endif  // VN2_SIMD_COMPILED
