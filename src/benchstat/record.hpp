// vn2::benchstat — the performance observatory's data model.
//
// Every bench in bench/ emits one Record per report: a versioned,
// self-describing JSON document carrying provenance (git SHA, harness
// timestamp, scenario scale), the environment (CPU features, thread
// count), repeated per-case samples with derived median/min/IQR, the
// bit-identity checks the bench ran, and a resource/allocation snapshot.
// `tools/vn2_benchstat` compares such records against a checked-in
// baseline with noise-aware thresholds (gate.hpp).
//
// Layering mirrors src/telemetry: this library never opens files — all
// serialization goes through telemetry::Sink, and file handling lives in
// the tools/bench layer. The parser is a small recursive-descent JSON
// reader, strict enough to reject malformed records with a clear error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/sink.hpp"

namespace vn2::benchstat {

/// Bump when the record layout changes incompatibly. Readers reject
/// records with a newer major version than they understand.
inline constexpr std::int64_t kSchemaVersion = 1;

/// Order statistics derived from a metric's samples. Quartiles use
/// linear interpolation between closest ranks (type-7, the numpy
/// default), so a single sample yields median == q1 == q3 == min == max.
struct SampleStats {
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
};

/// Computes order statistics over `samples`; throws std::runtime_error
/// when the vector is empty.
[[nodiscard]] SampleStats summarize(std::vector<double> samples);

/// One measured quantity within a case: repeated raw samples plus the
/// derived statistics. `gated == true` marks the metric as subject to
/// the regression gate; informational metrics keep history but never
/// fail a run.
struct Metric {
  std::string name;
  std::string unit = "s";
  bool lower_is_better = true;
  bool gated = false;
  std::vector<double> samples;
  SampleStats stats;

  /// Rederives `stats` from `samples` (no-op when samples is empty, so
  /// hand-written baseline entries carrying only stats stay intact).
  void finalize();
};

/// Convenience constructor: builds a metric and derives its stats.
[[nodiscard]] Metric make_metric(std::string name, std::string unit,
                                 bool lower_is_better, bool gated,
                                 std::vector<double> samples);

/// A named sub-benchmark (e.g. one backend, one thread count).
/// One point of a per-case RSS time series: offset from the case's first
/// sample, in milliseconds, and the resident set at that moment.
struct RssPoint {
  std::uint64_t offset_ms = 0;
  std::uint64_t bytes = 0;
};

/// Per-case resource profile captured by bracketing the case's timed
/// sections with a telemetry::ResourceSampler. Optional: records written
/// before this field existed (or on platforms without /proc) parse with
/// sampled == false.
struct CaseResources {
  bool sampled = false;
  std::uint64_t peak_rss_bytes = 0;  ///< Max RSS seen while the case ran.
  std::uint64_t interval_ms = 0;     ///< Sampler tick; 0 = unknown.
  std::vector<RssPoint> rss_series;  ///< Downsampled, oldest first.
};

struct Case {
  std::string name;
  std::vector<Metric> metrics;
  CaseResources resources;

  Case() = default;
  // Keeps the emitters' two-element brace initializers valid now that
  // per-case resources exist (and optional there, since most cases carry
  // only metrics).
  Case(std::string case_name, std::vector<Metric> case_metrics,
       CaseResources case_resources = {})
      : name(std::move(case_name)),
        metrics(std::move(case_metrics)),
        resources(std::move(case_resources)) {}

  [[nodiscard]] const Metric* find_metric(std::string_view metric_name) const;
};

/// A pass/fail invariant the bench verified (bit-identity, parity
/// tolerance). A failed check fails the gate regardless of timings.
struct Check {
  std::string name;
  bool pass = true;
};

/// Where and when the record was produced.
struct Provenance {
  std::string git_sha = "unknown";  ///< From the harness (VN2_GIT_SHA).
  std::string timestamp;            ///< From the harness; empty = unset.
  double bench_days = 0.0;          ///< VN2_BENCH_DAYS scale; 0 = n/a.
  std::uint64_t reps = 0;           ///< Repetitions per timed section.
};

/// The machine the record was produced on.
struct Environment {
  std::string cpu_features;
  std::uint64_t hardware_concurrency = 0;
  std::uint64_t threads = 0;  ///< Worker threads the bench used.
  bool telemetry_compiled = true;
};

/// Process resource + allocation snapshot taken at record-write time.
struct Resources {
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t current_rss_bytes = 0;
  std::uint64_t cpu_user_ns = 0;
  std::uint64_t cpu_system_ns = 0;
  std::uint64_t alloc_count = 0;  ///< Workspace reallocations observed.
  std::uint64_t alloc_bytes = 0;  ///< Bytes those reallocations requested.
};

/// One bench run: the unit both the emitter and the comparator speak.
struct Record {
  std::int64_t schema_version = kSchemaVersion;
  std::string bench;     ///< Stable bench id, e.g. "nmf_rank_sweep".
  std::string workload;  ///< Human-readable scenario description.
  Provenance provenance;
  Environment environment;
  /// Scenario scale knobs as (name, value) pairs: rows, cols, ranks...
  std::vector<std::pair<std::string, double>> scale;
  std::vector<Case> cases;
  std::vector<Check> checks;
  Resources resources;
  /// Raw embedded telemetry snapshot JSON (object text, "" = none).
  /// Opaque to the comparator; kept for humans and future tooling.
  std::string telemetry_json;

  [[nodiscard]] const Case* find_case(std::string_view case_name) const;
};

/// A collection of records keyed by bench id — the on-disk shape of
/// `bench_baseline.json`.
struct Baseline {
  std::int64_t schema_version = kSchemaVersion;
  std::vector<Record> records;

  [[nodiscard]] const Record* find(std::string_view bench) const;
  [[nodiscard]] Record* find(std::string_view bench);
};

// ---------------------------------------------------------------------------
// Serialization. Writers emit pretty-printed JSON; readers throw
// std::runtime_error with a position-annotated message on malformed or
// version-incompatible input.

void write_record(telemetry::Sink& sink, const Record& record);
[[nodiscard]] Record read_record(std::string_view text);

void write_baseline(telemetry::Sink& sink, const Baseline& baseline);
[[nodiscard]] Baseline read_baseline(std::string_view text);

}  // namespace vn2::benchstat
