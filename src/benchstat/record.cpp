#include "benchstat/record.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vn2::benchstat {

namespace {

// ---------------------------------------------------------------------------
// JSON emit helpers.

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(std::string_view text) {
  std::string out = "\"";
  append_escaped(out, text);
  out += '"';
  return out;
}

std::string number(double value) {
  if (!std::isfinite(value)) return "0";  // JSON has no inf/nan.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser. General enough for any record
// the writers below emit (plus hand-edited baselines); strict: trailing
// garbage, unterminated literals, and bad escapes all throw.

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> items;                             // kArray
  std::vector<std::pair<std::string, Value>> members;  // kObject

  [[nodiscard]] const Value* get(std::string_view key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("benchstat: parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        return parse_null();
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      Value key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key.str), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value parse_string() {
    Value v;
    v.kind = Value::Kind::kString;
    expect('"');
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c != '\\') {
        v.str += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case 'n':
          v.str += '\n';
          break;
        case 't':
          v.str += '\t';
          break;
        case 'r':
          v.str += '\r';
          break;
        case 'b':
          v.str += '\b';
          break;
        case 'f':
          v.str += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          if (std::sscanf(std::string(text_.substr(pos_, 4)).c_str(), "%4x",
                          &code) != 1)
            fail("bad \\u escape");
          pos_ += 4;
          // Records only escape control characters, so a single byte
          // suffices; anything above is preserved as-is by the writer.
          v.str += static_cast<char>(code);
          break;
        }
        default:
          v.str += esc;  // Covers \" \\ \/.
      }
    }
  }

  Value parse_bool() {
    Value v;
    v.kind = Value::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Value parse_null() {
    if (text_.substr(pos_, 4) != "null") fail("bad literal");
    pos_ += 4;
    return Value{};
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.num = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Compact re-serialization, used to preserve the opaque telemetry
/// subtree through a parse → write round trip.
void serialize_compact(const Value& v, std::string& out) {
  switch (v.kind) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += v.boolean ? "true" : "false";
      break;
    case Value::Kind::kNumber:
      out += number(v.num);
      break;
    case Value::Kind::kString:
      out += quoted(v.str);
      break;
    case Value::Kind::kArray:
      out += '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) out += ',';
        serialize_compact(v.items[i], out);
      }
      out += ']';
      break;
    case Value::Kind::kObject:
      out += '{';
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i != 0) out += ',';
        out += quoted(v.members[i].first);
        out += ':';
        serialize_compact(v.members[i].second, out);
      }
      out += '}';
      break;
  }
}

// ---------------------------------------------------------------------------
// Value → struct extraction, with required/optional field accessors.

[[noreturn]] void missing(std::string_view context, std::string_view key) {
  throw std::runtime_error("benchstat: " + std::string(context) +
                           ": missing field '" + std::string(key) + "'");
}

const Value& require(const Value& object, std::string_view context,
                     std::string_view key) {
  const Value* v = object.get(key);
  if (v == nullptr) missing(context, key);
  return *v;
}

std::string opt_string(const Value& object, std::string_view key,
                       std::string fallback = "") {
  const Value* v = object.get(key);
  return v != nullptr && v->kind == Value::Kind::kString ? v->str
                                                         : std::move(fallback);
}

double opt_number(const Value& object, std::string_view key,
                  double fallback = 0.0) {
  const Value* v = object.get(key);
  return v != nullptr && v->kind == Value::Kind::kNumber ? v->num : fallback;
}

std::uint64_t opt_u64(const Value& object, std::string_view key,
                      std::uint64_t fallback = 0) {
  return static_cast<std::uint64_t>(
      opt_number(object, key, static_cast<double>(fallback)));
}

bool opt_bool(const Value& object, std::string_view key, bool fallback) {
  const Value* v = object.get(key);
  return v != nullptr && v->kind == Value::Kind::kBool ? v->boolean : fallback;
}

Metric metric_from_value(const Value& v) {
  Metric metric;
  metric.name = require(v, "metric", "name").str;
  metric.unit = opt_string(v, "unit", "s");
  metric.lower_is_better = opt_bool(v, "lower_is_better", true);
  metric.gated = opt_bool(v, "gated", false);
  if (const Value* samples = v.get("samples"); samples != nullptr) {
    for (const Value& s : samples->items) metric.samples.push_back(s.num);
  }
  if (v.get("median") != nullptr) {
    metric.stats.median = opt_number(v, "median");
    metric.stats.min = opt_number(v, "min");
    metric.stats.max = opt_number(v, "max");
    metric.stats.q1 = opt_number(v, "q1", metric.stats.median);
    metric.stats.q3 = opt_number(v, "q3", metric.stats.median);
  } else if (!metric.samples.empty()) {
    metric.finalize();
  } else {
    throw std::runtime_error("benchstat: metric '" + metric.name +
                             "' has neither samples nor derived stats");
  }
  return metric;
}

Record record_from_value(const Value& v) {
  if (v.kind != Value::Kind::kObject)
    throw std::runtime_error("benchstat: record is not a JSON object");
  Record record;
  record.schema_version = static_cast<std::int64_t>(
      require(v, "record", "schema_version").num);
  if (record.schema_version > kSchemaVersion)
    throw std::runtime_error(
        "benchstat: record schema_version " +
        std::to_string(record.schema_version) +
        " is newer than this tool understands (" +
        std::to_string(kSchemaVersion) + ")");
  record.bench = require(v, "record", "bench").str;
  record.workload = opt_string(v, "workload");
  if (const Value* prov = v.get("provenance"); prov != nullptr) {
    record.provenance.git_sha = opt_string(*prov, "git_sha", "unknown");
    record.provenance.timestamp = opt_string(*prov, "timestamp");
    record.provenance.bench_days = opt_number(*prov, "bench_days");
    record.provenance.reps = opt_u64(*prov, "reps");
  }
  if (const Value* env = v.get("environment"); env != nullptr) {
    record.environment.cpu_features = opt_string(*env, "cpu_features");
    record.environment.hardware_concurrency =
        opt_u64(*env, "hardware_concurrency");
    record.environment.threads = opt_u64(*env, "threads");
    record.environment.telemetry_compiled =
        opt_bool(*env, "telemetry_compiled", true);
  }
  if (const Value* scale = v.get("scale"); scale != nullptr) {
    for (const auto& [name, value] : scale->members)
      record.scale.emplace_back(name, value.num);
  }
  if (const Value* cases = v.get("cases"); cases != nullptr) {
    for (const Value& c : cases->items) {
      Case parsed;
      parsed.name = require(c, "case", "name").str;
      if (const Value* metrics = c.get("metrics"); metrics != nullptr)
        for (const Value& m : metrics->items)
          parsed.metrics.push_back(metric_from_value(m));
      // Optional: cases written before per-case sampling existed parse
      // with resources.sampled == false.
      if (const Value* res = c.get("resources"); res != nullptr) {
        parsed.resources.sampled = opt_bool(*res, "sampled", false);
        parsed.resources.peak_rss_bytes = opt_u64(*res, "peak_rss_bytes");
        parsed.resources.interval_ms = opt_u64(*res, "interval_ms");
        if (const Value* series = res->get("rss_series"); series != nullptr)
          for (const Value& p : series->items)
            parsed.resources.rss_series.push_back(
                RssPoint{opt_u64(p, "offset_ms"), opt_u64(p, "bytes")});
      }
      record.cases.push_back(std::move(parsed));
    }
  }
  if (const Value* checks = v.get("checks"); checks != nullptr) {
    for (const Value& c : checks->items)
      record.checks.push_back(Check{require(c, "check", "name").str,
                                    opt_bool(c, "pass", false)});
  }
  if (const Value* res = v.get("resources"); res != nullptr) {
    record.resources.peak_rss_bytes = opt_u64(*res, "peak_rss_bytes");
    record.resources.current_rss_bytes = opt_u64(*res, "current_rss_bytes");
    record.resources.cpu_user_ns = opt_u64(*res, "cpu_user_ns");
    record.resources.cpu_system_ns = opt_u64(*res, "cpu_system_ns");
    record.resources.alloc_count = opt_u64(*res, "alloc_count");
    record.resources.alloc_bytes = opt_u64(*res, "alloc_bytes");
  }
  if (const Value* telem = v.get("telemetry"); telem != nullptr)
    serialize_compact(*telem, record.telemetry_json);
  return record;
}

void append_metric(std::string& out, const Metric& metric,
                   const char* indent) {
  out += indent;
  out += "{\"name\": " + quoted(metric.name) +
         ", \"unit\": " + quoted(metric.unit) + ",\n";
  out += indent;
  out += " \"lower_is_better\": ";
  out += metric.lower_is_better ? "true" : "false";
  out += ", \"gated\": ";
  out += metric.gated ? "true" : "false";
  out += ",\n";
  out += indent;
  out += " \"samples\": [";
  for (std::size_t i = 0; i < metric.samples.size(); ++i) {
    if (i != 0) out += ", ";
    out += number(metric.samples[i]);
  }
  out += "],\n";
  out += indent;
  out += " \"median\": " + number(metric.stats.median) +
         ", \"min\": " + number(metric.stats.min) +
         ", \"max\": " + number(metric.stats.max) +
         ", \"q1\": " + number(metric.stats.q1) +
         ", \"q3\": " + number(metric.stats.q3) + "}";
}

void append_record(std::string& out, const Record& record,
                   const std::string& base_indent) {
  const std::string i1 = base_indent + "  ";
  const std::string i2 = base_indent + "    ";
  const std::string i3 = base_indent + "      ";
  out += base_indent + "{\n";
  out += i1 + "\"schema_version\": " + std::to_string(record.schema_version) +
         ",\n";
  out += i1 + "\"bench\": " + quoted(record.bench) + ",\n";
  out += i1 + "\"workload\": " + quoted(record.workload) + ",\n";
  out += i1 + "\"provenance\": {\"git_sha\": " +
         quoted(record.provenance.git_sha) +
         ", \"timestamp\": " + quoted(record.provenance.timestamp) +
         ", \"bench_days\": " + number(record.provenance.bench_days) +
         ", \"reps\": " + std::to_string(record.provenance.reps) + "},\n";
  out += i1 + "\"environment\": {\"cpu_features\": " +
         quoted(record.environment.cpu_features) +
         ", \"hardware_concurrency\": " +
         std::to_string(record.environment.hardware_concurrency) +
         ", \"threads\": " + std::to_string(record.environment.threads) +
         ", \"telemetry_compiled\": ";
  out += record.environment.telemetry_compiled ? "true" : "false";
  out += "},\n";
  out += i1 + "\"scale\": {";
  for (std::size_t i = 0; i < record.scale.size(); ++i) {
    if (i != 0) out += ", ";
    out += quoted(record.scale[i].first) + ": " + number(record.scale[i].second);
  }
  out += "},\n";
  out += i1 + "\"cases\": [";
  for (std::size_t c = 0; c < record.cases.size(); ++c) {
    out += c == 0 ? "\n" : ",\n";
    out += i2 + "{\"name\": " + quoted(record.cases[c].name) +
           ", \"metrics\": [";
    for (std::size_t m = 0; m < record.cases[c].metrics.size(); ++m) {
      out += m == 0 ? "\n" : ",\n";
      append_metric(out, record.cases[c].metrics[m], i3.c_str());
    }
    out += record.cases[c].metrics.empty() ? "]" : "\n" + i2 + "]";
    if (const CaseResources& cr = record.cases[c].resources; cr.sampled) {
      out += ",\n" + i2 +
             " \"resources\": {\"sampled\": true, \"peak_rss_bytes\": " +
             std::to_string(cr.peak_rss_bytes) +
             ", \"interval_ms\": " + std::to_string(cr.interval_ms) +
             ", \"rss_series\": [";
      for (std::size_t p = 0; p < cr.rss_series.size(); ++p) {
        if (p != 0) out += ", ";
        out += "{\"offset_ms\": " + std::to_string(cr.rss_series[p].offset_ms) +
               ", \"bytes\": " + std::to_string(cr.rss_series[p].bytes) + "}";
      }
      out += "]}";
    }
    out += "}";
  }
  out += record.cases.empty() ? "],\n" : "\n" + i1 + "],\n";
  out += i1 + "\"checks\": [";
  for (std::size_t i = 0; i < record.checks.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"name\": " + quoted(record.checks[i].name) + ", \"pass\": ";
    out += record.checks[i].pass ? "true" : "false";
    out += "}";
  }
  out += "],\n";
  out += i1 + "\"resources\": {\"peak_rss_bytes\": " +
         std::to_string(record.resources.peak_rss_bytes) +
         ", \"current_rss_bytes\": " +
         std::to_string(record.resources.current_rss_bytes) +
         ", \"cpu_user_ns\": " + std::to_string(record.resources.cpu_user_ns) +
         ", \"cpu_system_ns\": " +
         std::to_string(record.resources.cpu_system_ns) +
         ", \"alloc_count\": " + std::to_string(record.resources.alloc_count) +
         ", \"alloc_bytes\": " + std::to_string(record.resources.alloc_bytes) +
         "}";
  if (!record.telemetry_json.empty()) {
    out += ",\n" + i1 + "\"telemetry\": " + record.telemetry_json;
  }
  out += "\n" + base_indent + "}";
}

}  // namespace

// ---------------------------------------------------------------------------
// Sample statistics.

SampleStats summarize(std::vector<double> samples) {
  if (samples.empty())
    throw std::runtime_error("benchstat: cannot summarize zero samples");
  std::sort(samples.begin(), samples.end());
  const auto quantile = [&samples](double p) {
    const double h = p * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(h);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
  };
  SampleStats stats;
  stats.min = samples.front();
  stats.max = samples.back();
  stats.q1 = quantile(0.25);
  stats.median = quantile(0.5);
  stats.q3 = quantile(0.75);
  return stats;
}

void Metric::finalize() {
  if (!samples.empty()) stats = summarize(samples);
}

Metric make_metric(std::string name, std::string unit, bool lower_is_better,
                   bool gated, std::vector<double> samples) {
  Metric metric;
  metric.name = std::move(name);
  metric.unit = std::move(unit);
  metric.lower_is_better = lower_is_better;
  metric.gated = gated;
  metric.samples = std::move(samples);
  metric.finalize();
  return metric;
}

const Metric* Case::find_metric(std::string_view metric_name) const {
  for (const Metric& metric : metrics)
    if (metric.name == metric_name) return &metric;
  return nullptr;
}

const Case* Record::find_case(std::string_view case_name) const {
  for (const Case& c : cases)
    if (c.name == case_name) return &c;
  return nullptr;
}

const Record* Baseline::find(std::string_view bench) const {
  for (const Record& record : records)
    if (record.bench == bench) return &record;
  return nullptr;
}

Record* Baseline::find(std::string_view bench) {
  for (Record& record : records)
    if (record.bench == bench) return &record;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Serialization entry points.

void write_record(telemetry::Sink& sink, const Record& record) {
  std::string out;
  append_record(out, record, "");
  out += "\n";
  sink.write(out);
}

Record read_record(std::string_view text) {
  Parser parser(text);
  return record_from_value(parser.parse_document());
}

void write_baseline(telemetry::Sink& sink, const Baseline& baseline) {
  std::string out = "{\n  \"schema_version\": " +
                    std::to_string(baseline.schema_version) +
                    ",\n  \"records\": [";
  for (std::size_t i = 0; i < baseline.records.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    append_record(out, baseline.records[i], "    ");
  }
  out += baseline.records.empty() ? "]\n}\n" : "\n  ]\n}\n";
  sink.write(out);
}

Baseline read_baseline(std::string_view text) {
  Parser parser(text);
  const Value document = parser.parse_document();
  if (document.kind != Value::Kind::kObject)
    throw std::runtime_error("benchstat: baseline is not a JSON object");
  Baseline baseline;
  baseline.schema_version = static_cast<std::int64_t>(
      require(document, "baseline", "schema_version").num);
  if (baseline.schema_version > kSchemaVersion)
    throw std::runtime_error("benchstat: baseline schema_version " +
                             std::to_string(baseline.schema_version) +
                             " is newer than this tool understands");
  if (const Value* records = document.get("records"); records != nullptr)
    for (const Value& r : records->items)
      baseline.records.push_back(record_from_value(r));
  return baseline;
}

}  // namespace vn2::benchstat
