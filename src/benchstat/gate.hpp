// The noise-aware regression gate: compares a set of bench records
// against a checked-in baseline and decides pass/fail the way vn2-lint
// does (exit 0 = clean, 1 = findings, 2 = usage/parse error — the exit
// mapping itself lives in the vn2_benchstat tool).
//
// Gate semantics, designed to fire on real regressions and stay quiet on
// scheduler noise:
//
//  * Only metrics marked `gated` in the BASELINE can fail a run; every
//    other matched metric is compared informationally.
//  * A gated metric regresses only when BOTH hold: the median moved in
//    the bad direction by more than the relative floor (default 15%),
//    AND the interquartile ranges are disjoint in the bad direction
//    (run.q1 > base.q3 for lower-is-better). Overlapping IQRs mean the
//    two sample sets are statistically indistinguishable at this rep
//    count — noise, not regression.
//  * A baseline entry whose (case, metric) no longer exists in the run
//    is STALE and fails the gate, mirroring the lint baseline ratchet:
//    the baseline may never reference dead metrics.
//  * A failed bit-identity/parity check recorded in a run fails the
//    gate regardless of timings.
//
// The update ratchet (`ratchet_update`) refreshes the baseline from a
// run but only lets gated metrics improve: a within-floor slowdown keeps
// the old (better) entry, and a beyond-floor regression refuses the
// update entirely — so "refresh the baseline" can never launder a real
// regression in.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "benchstat/record.hpp"

namespace vn2::benchstat {

struct GateOptions {
  /// Median must move by more than this fraction before a gated metric
  /// can regress (0.15 = 15%). Between-run swings on a busy host
  /// routinely reach ~10% even when each run's own reps are tight, so
  /// the default sits above that band while still catching the 20%+
  /// moves a real regression produces.
  double relative_floor = 0.15;
  /// When true, baseline benches entirely missing from the run fail the
  /// gate; default is to report them as skipped (partial runs are how
  /// single benches get checked locally).
  bool strict = false;
};

enum class Verdict {
  kOk,           ///< Matched, within noise.
  kImproved,     ///< Gated metric got significantly better.
  kRegressed,    ///< Gated metric got significantly worse.
  kStale,        ///< Baseline references a metric the run no longer has.
  kMissing,      ///< Baseline bench absent from the run.
  kNew,          ///< Run bench/metric absent from the baseline.
  kCheckFailed,  ///< A run record carried a failed invariant check.
};

struct Finding {
  std::string bench;
  std::string case_name;
  std::string metric;
  Verdict verdict = Verdict::kOk;
  bool gated = false;
  double base_median = 0.0;
  double run_median = 0.0;
  /// Relative move in the BAD direction: +0.25 = 25% worse, negative =
  /// better. Zero for non-numeric findings (stale, missing, checks).
  double worse_delta = 0.0;
};

struct GateReport {
  std::vector<Finding> findings;
  std::size_t compared = 0;     ///< Metrics matched baseline <-> run.
  std::size_t regressions = 0;  ///< Gated metrics that regressed.
  std::size_t improvements = 0;
  std::size_t stale = 0;
  std::size_t failed_checks = 0;

  [[nodiscard]] bool failed() const {
    return regressions != 0 || stale != 0 || failed_checks != 0;
  }
};

/// Compares `run` records against the baseline. Never throws on metric
/// mismatches — everything lands in the report as findings.
[[nodiscard]] GateReport compare(const Baseline& baseline,
                                 const std::vector<Record>& run,
                                 const GateOptions& options);

/// Human-readable report (one line per noteworthy finding + summary).
[[nodiscard]] std::string render_text(const GateReport& report);

/// GitHub-flavoured markdown table of the same report.
[[nodiscard]] std::string render_markdown(const GateReport& report);

struct UpdateResult {
  Baseline baseline;   ///< The refreshed baseline (valid when !refused).
  bool refused = false;
  std::string reason;  ///< Why the update was refused.
};

/// Shrink-only baseline refresh; see the header comment for semantics.
[[nodiscard]] UpdateResult ratchet_update(const Baseline& old_baseline,
                                          const std::vector<Record>& run,
                                          const GateOptions& options);

}  // namespace vn2::benchstat
