#include "benchstat/gate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vn2::benchstat {

namespace {

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kImproved:
      return "improved";
    case Verdict::kRegressed:
      return "REGRESSED";
    case Verdict::kStale:
      return "STALE";
    case Verdict::kMissing:
      return "missing";
    case Verdict::kNew:
      return "new";
    case Verdict::kCheckFailed:
      return "CHECK FAILED";
  }
  return "?";
}

/// Relative movement of the run median in the metric's bad direction:
/// positive = worse, negative = better.
double worse_delta_of(const Metric& base, const Metric& run) {
  const double denom = std::max(std::abs(base.stats.median), 1e-300);
  const double delta = (run.stats.median - base.stats.median) / denom;
  return base.lower_is_better ? delta : -delta;
}

/// True when the IQRs are disjoint with the run on the bad side.
bool iqr_disjoint_worse(const Metric& base, const Metric& run) {
  return base.lower_is_better ? run.stats.q1 > base.stats.q3
                              : run.stats.q3 < base.stats.q1;
}

/// True when the IQRs are disjoint with the run on the good side.
bool iqr_disjoint_better(const Metric& base, const Metric& run) {
  return base.lower_is_better ? run.stats.q3 < base.stats.q1
                              : run.stats.q1 > base.stats.q3;
}

std::string percent(double fraction) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", fraction * 100.0);
  return buffer;
}

std::string short_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

const Record* find_record(const std::vector<Record>& records,
                          std::string_view bench) {
  for (const Record& record : records)
    if (record.bench == bench) return &record;
  return nullptr;
}

}  // namespace

GateReport compare(const Baseline& baseline, const std::vector<Record>& run,
                   const GateOptions& options) {
  GateReport report;
  for (const Record& base_record : baseline.records) {
    const Record* run_record = find_record(run, base_record.bench);
    if (run_record == nullptr) {
      Finding finding;
      finding.bench = base_record.bench;
      finding.verdict = options.strict ? Verdict::kStale : Verdict::kMissing;
      if (options.strict) ++report.stale;
      report.findings.push_back(std::move(finding));
      continue;
    }
    for (const Case& base_case : base_record.cases) {
      const Case* run_case = run_record->find_case(base_case.name);
      for (const Metric& base_metric : base_case.metrics) {
        const Metric* run_metric =
            run_case == nullptr ? nullptr
                                : run_case->find_metric(base_metric.name);
        Finding finding;
        finding.bench = base_record.bench;
        finding.case_name = base_case.name;
        finding.metric = base_metric.name;
        finding.gated = base_metric.gated;
        finding.base_median = base_metric.stats.median;
        if (run_metric == nullptr) {
          finding.verdict = Verdict::kStale;
          ++report.stale;
          report.findings.push_back(std::move(finding));
          continue;
        }
        ++report.compared;
        finding.run_median = run_metric->stats.median;
        finding.worse_delta = worse_delta_of(base_metric, *run_metric);
        finding.verdict = Verdict::kOk;
        if (finding.worse_delta > options.relative_floor &&
            iqr_disjoint_worse(base_metric, *run_metric)) {
          finding.verdict = Verdict::kRegressed;
          if (base_metric.gated) ++report.regressions;
        } else if (finding.worse_delta < -options.relative_floor &&
                   iqr_disjoint_better(base_metric, *run_metric)) {
          finding.verdict = Verdict::kImproved;
          if (base_metric.gated) ++report.improvements;
        }
        report.findings.push_back(std::move(finding));
      }
    }
  }
  for (const Record& run_record : run) {
    for (const Check& check : run_record.checks) {
      if (check.pass) continue;
      Finding finding;
      finding.bench = run_record.bench;
      finding.metric = check.name;
      finding.verdict = Verdict::kCheckFailed;
      ++report.failed_checks;
      report.findings.push_back(std::move(finding));
    }
    if (find_record(baseline.records, run_record.bench) == nullptr ||
        baseline.records.empty()) {
      Finding finding;
      finding.bench = run_record.bench;
      finding.verdict = Verdict::kNew;
      report.findings.push_back(std::move(finding));
    }
  }
  return report;
}

std::string render_text(const GateReport& report) {
  std::string out;
  for (const Finding& f : report.findings) {
    // Ungated in-noise comparisons are omitted: the interesting lines are
    // gate decisions, significant moves, and bookkeeping problems.
    if (f.verdict == Verdict::kOk && !f.gated) continue;
    out += verdict_name(f.verdict);
    out += "  ";
    out += f.bench;
    if (!f.case_name.empty()) out += "/" + f.case_name;
    if (!f.metric.empty()) out += "/" + f.metric;
    switch (f.verdict) {
      case Verdict::kOk:
      case Verdict::kImproved:
      case Verdict::kRegressed:
        out += ": median " + short_number(f.base_median) + " -> " +
               short_number(f.run_median) + " (" + percent(f.worse_delta) +
               " worse";
        out += f.gated ? ", gated)" : ")";
        break;
      case Verdict::kStale:
        out += ": baseline entry has no counterpart in the run";
        break;
      case Verdict::kMissing:
        out += ": bench not present in this run (not gated; use --strict)";
        break;
      case Verdict::kNew:
        out += ": not in baseline yet (run with --update to adopt)";
        break;
      case Verdict::kCheckFailed:
        out += ": bench invariant check failed";
        break;
    }
    out += "\n";
  }
  out += "benchstat: " + std::to_string(report.compared) + " compared, " +
         std::to_string(report.regressions) + " regressed, " +
         std::to_string(report.improvements) + " improved, " +
         std::to_string(report.stale) + " stale, " +
         std::to_string(report.failed_checks) + " failed checks -> " +
         (report.failed() ? "FAIL" : "PASS") + "\n";
  return out;
}

std::string render_markdown(const GateReport& report) {
  std::string out =
      "| Bench | Case | Metric | Baseline | Run | Delta | Verdict |\n"
      "|---|---|---|---|---|---|---|\n";
  for (const Finding& f : report.findings) {
    if (f.verdict == Verdict::kOk && !f.gated) continue;
    const bool numeric = f.verdict == Verdict::kOk ||
                         f.verdict == Verdict::kImproved ||
                         f.verdict == Verdict::kRegressed;
    out += "| " + f.bench + " | " + f.case_name + " | " + f.metric + " | ";
    out += numeric ? short_number(f.base_median) : std::string("-");
    out += " | ";
    out += numeric ? short_number(f.run_median) : std::string("-");
    out += " | ";
    out += numeric ? percent(f.worse_delta) : std::string("-");
    out += " | ";
    out += verdict_name(f.verdict);
    out += f.gated && numeric ? " (gated) |\n" : " |\n";
  }
  out += "\n**" + std::to_string(report.compared) + " compared, " +
         std::to_string(report.regressions) + " regressed, " +
         std::to_string(report.stale) + " stale, " +
         std::to_string(report.failed_checks) + " failed checks — " +
         (report.failed() ? "FAIL" : "PASS") + "**\n";
  return out;
}

UpdateResult ratchet_update(const Baseline& old_baseline,
                            const std::vector<Record>& run,
                            const GateOptions& options) {
  UpdateResult result;
  // A refresh must never launder a regression or a broken bench in.
  const GateReport report = compare(old_baseline, run, options);
  if (report.regressions != 0 || report.failed_checks != 0) {
    result.refused = true;
    for (const Finding& f : report.findings) {
      if (f.verdict == Verdict::kRegressed && f.gated) {
        result.reason = "gated regression in " + f.bench + "/" + f.case_name +
                        "/" + f.metric + " (" + percent(f.worse_delta) +
                        " worse); fix the regression before refreshing";
        return result;
      }
      if (f.verdict == Verdict::kCheckFailed) {
        result.reason = "failed invariant check '" + f.metric + "' in " +
                        f.bench + "; a broken bench cannot set the baseline";
        return result;
      }
    }
  }
  result.baseline.schema_version = kSchemaVersion;
  // Matched benches: adopt the run record, but a gated metric that got
  // worse (within the floor — beyond it we refused above) keeps the old,
  // better baseline entry. The baseline only ratchets downward.
  for (const Record& run_record : run) {
    Record merged = run_record;
    if (const Record* old_record = old_baseline.find(run_record.bench);
        old_record != nullptr) {
      for (Case& merged_case : merged.cases) {
        const Case* old_case = old_record->find_case(merged_case.name);
        if (old_case == nullptr) continue;
        for (Metric& metric : merged_case.metrics) {
          const Metric* old_metric = old_case->find_metric(metric.name);
          if (old_metric == nullptr) continue;
          metric.gated = metric.gated || old_metric->gated;
          if (metric.gated && worse_delta_of(*old_metric, metric) > 0.0) {
            const bool keep_gated = metric.gated;
            metric = *old_metric;
            metric.gated = keep_gated;
          }
        }
      }
    }
    result.baseline.records.push_back(std::move(merged));
  }
  // Benches the run did not exercise keep their old entries: a partial
  // local refresh must not drop the rest of the baseline.
  for (const Record& old_record : old_baseline.records)
    if (find_record(run, old_record.bench) == nullptr)
      result.baseline.records.push_back(old_record);
  std::sort(result.baseline.records.begin(), result.baseline.records.end(),
            [](const Record& a, const Record& b) { return a.bench < b.bench; });
  return result;
}

}  // namespace vn2::benchstat
