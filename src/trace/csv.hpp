// CSV persistence for traces and state matrices, so field data can be
// exported for offline analysis and external traces can be replayed through
// the VN2 pipeline in place of a live simulation.
//
// Trace format (one row per snapshot):
//   node,epoch,time,<43 metric columns by schema name>
#pragma once

#include <iosfwd>
#include <string>

#include "linalg/matrix.hpp"
#include "trace/trace.hpp"

namespace vn2::trace {

/// Writes a trace as CSV (with a header row).
void write_trace_csv(std::ostream& os, const Trace& trace);
void write_trace_csv_file(const std::string& path, const Trace& trace);

/// Reads a trace written by write_trace_csv. Throws std::runtime_error on a
/// malformed header or row.
Trace read_trace_csv(std::istream& is);
Trace read_trace_csv_file(const std::string& path);

/// Writes a plain numeric matrix (no header) — used for exceptions/Ψ dumps.
void write_matrix_csv(std::ostream& os, const linalg::Matrix& m);
linalg::Matrix read_matrix_csv(std::istream& is);

}  // namespace vn2::trace
