// Per-node operator statistics: the first report an operator pulls up when
// a deployment misbehaves — who delivers, over how many hops, how stable
// their routes are, and when they were last heard.
#pragma once

#include <iosfwd>
#include <vector>

#include "trace/trace.hpp"

namespace vn2::trace {

struct NodeStats {
  wsn::NodeId node = wsn::kInvalidNode;
  std::size_t snapshots = 0;       ///< Complete epochs assembled at the sink.
  double prr = 0.0;                ///< Delivered report packets / originated.
  double mean_hops = 0.0;          ///< Mean hop count of delivered packets.
  double max_hops = 0.0;
  double parent_changes = 0.0;     ///< Final Parent_change_counter value.
  double loops = 0.0;              ///< Final Loop_counter value.
  double retransmits = 0.0;        ///< Final NOACK_retransmit_counter value.
  double voltage = 0.0;            ///< Last reported voltage.
  wsn::Time first_seen = 0.0;
  wsn::Time last_seen = 0.0;
};

struct NetworkStats {
  std::vector<NodeStats> nodes;    ///< Sorted by NodeId.
  double overall_prr = 0.0;
  std::size_t reporting_nodes = 0; ///< Nodes with at least one snapshot.
  std::size_t expected_nodes = 0;  ///< result.node_count − 1 (sink excluded).
  double mean_hops = 0.0;          ///< Across all delivered packets.

  [[nodiscard]] const NodeStats* find(wsn::NodeId id) const;
};

/// Computes the report from a simulation result and its assembled trace.
NetworkStats compute_stats(const wsn::SimulationResult& result,
                           const Trace& trace);

/// Trace-only variant for field data (no origination log): PRR fields are
/// left at 0 and flagged by `has_prr == false` in the printout.
NetworkStats compute_stats(const Trace& trace);

/// Formats the report as a fixed-width table.
void print_stats(std::ostream& os, const NetworkStats& stats,
                 bool has_prr = true);

}  // namespace vn2::trace
