#include "trace/csv.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace vn2::trace {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, sep)) out.push_back(field);
  return out;
}

double parse_double(const std::string& s) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    VN2_COUNT("trace.csv.rejects");
    throw std::runtime_error("csv: malformed numeric field '" + s + "'");
  }
}

}  // namespace

void write_trace_csv(std::ostream& os, const Trace& trace) {
  os.precision(17);  // Round-trip exact doubles.
  os << "node,epoch,time";
  for (metrics::MetricId id : metrics::all_metrics()) os << ',' << name(id);
  os << '\n';
  for (const NodeSeries& series : trace.nodes) {
    for (const Snapshot& snap : series.snapshots) {
      os << series.node << ',' << snap.epoch << ',' << snap.time;
      for (double v : snap.values) os << ',' << v;
      os << '\n';
    }
  }
}

void write_trace_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for write: " + path);
  write_trace_csv(file, trace);
}

Trace read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("csv: empty trace file");
  const auto header = split(line, ',');
  if (header.size() != 3 + metrics::kMetricCount)
    throw std::runtime_error("csv: unexpected column count in header");

  std::map<wsn::NodeId, NodeSeries> by_node;
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = split(line, ',');
    if (fields.size() != 3 + metrics::kMetricCount) {
      VN2_COUNT("trace.csv.rejects");
      throw std::runtime_error("csv: unexpected column count in row");
    }
    const auto node = static_cast<wsn::NodeId>(parse_double(fields[0]));
    Snapshot snap;
    snap.epoch = static_cast<std::uint64_t>(parse_double(fields[1]));
    snap.time = parse_double(fields[2]);
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
      snap.values[m] = parse_double(fields[3 + m]);
    NodeSeries& series = by_node[node];
    series.node = node;
    series.snapshots.push_back(snap);
    ++rows;
  }
  VN2_COUNT_N("trace.csv.rows", rows);

  Trace trace;
  for (auto& [id, series] : by_node) {
    std::sort(series.snapshots.begin(), series.snapshots.end(),
              [](const Snapshot& a, const Snapshot& b) {
                return a.epoch < b.epoch;
              });
    trace.node_count = std::max<std::size_t>(trace.node_count, id + 1u);
    for (const Snapshot& s : series.snapshots)
      trace.duration = std::max(trace.duration, s.time);
    trace.nodes.push_back(std::move(series));
  }
  return trace;
}

Trace read_trace_csv_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open for read: " + path);
  return read_trace_csv(file);
}

void write_matrix_csv(std::ostream& os, const linalg::Matrix& m) {
  os.precision(17);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j) os << ',';
      os << m(i, j);
    }
    os << '\n';
  }
}

linalg::Matrix read_matrix_csv(std::istream& is) {
  linalg::Matrix m;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = split(line, ',');
    std::vector<double> row;
    row.reserve(fields.size());
    for (const std::string& f : fields) row.push_back(parse_double(f));
    m.append_row(row);
  }
  return m;
}

}  // namespace vn2::trace
