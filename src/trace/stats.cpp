#include "trace/stats.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>

#include "metrics/schema.hpp"

namespace vn2::trace {

namespace {

struct Accumulator {
  std::size_t originated = 0;
  std::size_t delivered = 0;
  double hop_sum = 0.0;
  double hop_max = 0.0;
};

void fill_from_trace(const Trace& trace, std::map<wsn::NodeId, NodeStats>& by_node) {
  using metrics::MetricId;
  for (const NodeSeries& series : trace.nodes) {
    if (series.snapshots.empty()) continue;
    NodeStats& stats = by_node[series.node];
    stats.node = series.node;
    stats.snapshots = series.snapshots.size();
    stats.first_seen = series.snapshots.front().time;
    stats.last_seen = series.snapshots.back().time;
    const Snapshot& last = series.snapshots.back();
    stats.parent_changes =
        last.values[metrics::index_of(MetricId::kParentChangeCounter)];
    stats.loops = last.values[metrics::index_of(MetricId::kLoopCounter)];
    stats.retransmits =
        last.values[metrics::index_of(MetricId::kNoackRetransmitCounter)];
    stats.voltage = last.values[metrics::index_of(MetricId::kVoltage)];
  }
}

NetworkStats finalize(std::map<wsn::NodeId, NodeStats>&& by_node) {
  NetworkStats stats;
  stats.nodes.reserve(by_node.size());
  for (auto& [id, node_stats] : by_node) stats.nodes.push_back(node_stats);
  stats.reporting_nodes = stats.nodes.size();
  return stats;
}

}  // namespace

const NodeStats* NetworkStats::find(wsn::NodeId id) const {
  for (const NodeStats& stats : nodes)
    if (stats.node == id) return &stats;
  return nullptr;
}

NetworkStats compute_stats(const wsn::SimulationResult& result,
                           const Trace& trace) {
  std::map<wsn::NodeId, NodeStats> by_node;
  fill_from_trace(trace, by_node);

  std::map<wsn::NodeId, Accumulator> flows;
  for (const wsn::Origination& o : result.originations)
    flows[o.origin].originated++;
  for (const wsn::SinkPacketRecord& record : result.sink_log) {
    Accumulator& acc = flows[record.origin];
    acc.delivered++;
    acc.hop_sum += record.hops;
    acc.hop_max = std::max(acc.hop_max, static_cast<double>(record.hops));
  }

  double total_hops = 0.0;
  std::size_t total_delivered = 0, total_originated = 0;
  for (const auto& [id, acc] : flows) {
    NodeStats& node_stats = by_node[id];
    node_stats.node = id;
    if (acc.originated > 0)
      node_stats.prr = static_cast<double>(acc.delivered) /
                       static_cast<double>(acc.originated);
    if (acc.delivered > 0)
      node_stats.mean_hops = acc.hop_sum / static_cast<double>(acc.delivered);
    node_stats.max_hops = acc.hop_max;
    total_hops += acc.hop_sum;
    total_delivered += acc.delivered;
    total_originated += acc.originated;
  }

  NetworkStats stats = finalize(std::move(by_node));
  stats.expected_nodes = result.node_count > 0 ? result.node_count - 1 : 0;
  if (total_originated > 0)
    stats.overall_prr = static_cast<double>(total_delivered) /
                        static_cast<double>(total_originated);
  if (total_delivered > 0)
    stats.mean_hops = total_hops / static_cast<double>(total_delivered);
  // reporting_nodes counted snapshot-holders only; flows may add silent
  // originators (originated but nothing assembled).
  stats.reporting_nodes = 0;
  for (const NodeStats& node_stats : stats.nodes)
    if (node_stats.snapshots > 0) stats.reporting_nodes++;
  return stats;
}

NetworkStats compute_stats(const Trace& trace) {
  std::map<wsn::NodeId, NodeStats> by_node;
  fill_from_trace(trace, by_node);
  NetworkStats stats = finalize(std::move(by_node));
  stats.expected_nodes = trace.node_count > 0 ? trace.node_count - 1 : 0;
  return stats;
}

void print_stats(std::ostream& os, const NetworkStats& stats, bool has_prr) {
  os << "nodes reporting: " << stats.reporting_nodes << " / "
     << stats.expected_nodes;
  if (has_prr)
    os << ", overall PRR " << std::fixed << std::setprecision(3)
       << stats.overall_prr << ", mean hops " << std::setprecision(1)
       << stats.mean_hops;
  os << "\n";
  os << std::setw(6) << "node" << std::setw(7) << "snaps";
  if (has_prr) os << std::setw(7) << "PRR" << std::setw(7) << "hops";
  os << std::setw(9) << "parentX" << std::setw(7) << "loops" << std::setw(9)
     << "retrans" << std::setw(9) << "volt" << std::setw(11) << "last[s]"
     << "\n";
  os << std::fixed;
  for (const NodeStats& node : stats.nodes) {
    os << std::setw(6) << node.node << std::setw(7) << node.snapshots;
    if (has_prr)
      os << std::setw(7) << std::setprecision(2) << node.prr << std::setw(7)
         << std::setprecision(1) << node.mean_hops;
    os << std::setw(9) << std::setprecision(0) << node.parent_changes
       << std::setw(7) << node.loops << std::setw(9) << node.retransmits
       << std::setw(9) << std::setprecision(3) << node.voltage
       << std::setw(11) << std::setprecision(0) << node.last_seen << "\n";
  }
}

}  // namespace vn2::trace
