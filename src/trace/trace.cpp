#include "trace/trace.hpp"

#include <algorithm>
#include <map>

#include "telemetry/telemetry.hpp"

#include "wsn/packet.hpp"

namespace vn2::trace {

using metrics::PacketType;

const NodeSeries* Trace::find(wsn::NodeId id) const {
  for (const NodeSeries& series : nodes)
    if (series.node == id) return &series;
  return nullptr;
}

std::size_t Trace::total_snapshots() const {
  std::size_t total = 0;
  for (const NodeSeries& series : nodes) total += series.snapshots.size();
  return total;
}

Trace build_trace(const wsn::SimulationResult& result) {
  struct PendingEpoch {
    std::array<double, metrics::kMetricCount> values{};
    std::uint8_t blocks_seen = 0;  // Bitmask: 1=C1, 2=C2, 4=C3.
    wsn::Time last_time = 0.0;
  };
  // (node, epoch) → partial snapshot. std::map keeps epochs ordered per node.
  std::map<std::pair<wsn::NodeId, std::uint64_t>, PendingEpoch> pending;

  for (const wsn::SinkPacketRecord& record : result.sink_log) {
    PendingEpoch& slot = pending[{record.origin, record.epoch}];
    const wsn::BlockRange range = wsn::block_range(record.type);
    if (record.values.size() != range.count) continue;  // Corrupt block.
    std::copy(record.values.begin(), record.values.end(),
              slot.values.begin() + static_cast<long>(range.first));
    slot.blocks_seen |= 1u << (static_cast<unsigned>(record.type) - 1);
    slot.last_time = std::max(slot.last_time, record.recv_time);
  }

  std::map<wsn::NodeId, NodeSeries> by_node;
  for (const auto& [key, slot] : pending) {
    if (slot.blocks_seen != 0b111) continue;  // Incomplete epoch.
    NodeSeries& series = by_node[key.first];
    series.node = key.first;
    series.snapshots.push_back({slot.last_time, key.second, slot.values});
  }

  Trace trace;
  trace.node_count = result.node_count;
  trace.duration = result.duration;
  trace.report_period = result.report_period;
  trace.nodes.reserve(by_node.size());
  for (auto& [id, series] : by_node) {
    // map iteration is epoch-ordered already, but arrival reordering across
    // epochs is possible; sort defensively by epoch.
    std::sort(series.snapshots.begin(), series.snapshots.end(),
              [](const Snapshot& a, const Snapshot& b) {
                return a.epoch < b.epoch;
              });
    trace.nodes.push_back(std::move(series));
  }
  return trace;
}

std::vector<StateVector> extract_states(const Trace& trace) {
  std::vector<StateVector> states;
  for (const NodeSeries& series : trace.nodes) {
    for (std::size_t i = 1; i < series.snapshots.size(); ++i) {
      const Snapshot& prev = series.snapshots[i - 1];
      const Snapshot& curr = series.snapshots[i];
      StateVector state;
      state.node = series.node;
      state.time = curr.time;
      state.epoch = curr.epoch;
      state.delta = linalg::Vector(metrics::kMetricCount);
      for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
        state.delta[m] = curr.values[m] - prev.values[m];
      states.push_back(std::move(state));
    }
  }
  VN2_COUNT_N("trace.states.extracted", states.size());
  return states;
}

linalg::Matrix states_matrix(const std::vector<StateVector>& states) {
  linalg::Matrix m;
  for (const StateVector& s : states) m.append_row(s.delta.span());
  return m;
}

std::vector<PrrPoint> prr_series(const wsn::SimulationResult& result,
                                 wsn::Time window) {
  std::vector<PrrPoint> points;
  if (window <= 0.0 || result.duration <= 0.0) return points;
  const std::size_t buckets =
      static_cast<std::size_t>(std::max(1.0, result.duration / window));
  points.resize(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    points[b].window_start = static_cast<double>(b) * window;
    points[b].window_end = points[b].window_start + window;
  }
  auto bucket_of = [&](wsn::Time t) -> std::size_t {
    const auto b = static_cast<std::size_t>(t / window);
    return std::min(b, buckets - 1);
  };
  for (const wsn::Origination& o : result.originations)
    points[bucket_of(o.time)].originated++;
  // Attribute receptions to their origination window so late arrivals do not
  // inflate a later bucket's ratio. We do not log origination time per
  // packet at the sink, so approximate with the receive time — multi-hop
  // latency is seconds, windows are hours.
  for (const wsn::SinkPacketRecord& r : result.sink_log)
    points[bucket_of(r.recv_time)].received++;
  return points;
}

double overall_prr(const wsn::SimulationResult& result) {
  if (result.originations.empty()) return 1.0;
  return static_cast<double>(result.sink_log.size()) /
         static_cast<double>(result.originations.size());
}

}  // namespace vn2::trace
