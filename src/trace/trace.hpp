// Sink-side trace processing: assembling full 43-metric snapshots from the
// C1/C2/C3 packet stream, extracting network-state vectors (successive
// snapshot differences — the paper's S_i = P_i − P_{i−1}), and computing
// packet-reception-ratio series.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "metrics/schema.hpp"
#include "wsn/simulator.hpp"

namespace vn2::trace {

/// One complete 43-metric report from a node, assembled at the sink from the
/// epoch's C1 + C2 + C3 packets.
struct Snapshot {
  wsn::Time time = 0.0;  ///< Arrival time of the last block of the epoch.
  std::uint64_t epoch = 0;
  std::array<double, metrics::kMetricCount> values{};
};

struct NodeSeries {
  wsn::NodeId node = wsn::kInvalidNode;
  std::vector<Snapshot> snapshots;  ///< Epoch-ordered.
};

struct Trace {
  std::vector<NodeSeries> nodes;  ///< Indexed by position, not NodeId.
  std::size_t node_count = 0;
  wsn::Time duration = 0.0;
  wsn::Time report_period = 0.0;

  [[nodiscard]] const NodeSeries* find(wsn::NodeId id) const;
  [[nodiscard]] std::size_t total_snapshots() const;
};

/// Assembles per-node snapshot series from a simulation's sink log. An epoch
/// contributes a snapshot only when all three blocks arrived (a partially
/// delivered epoch is dropped, exactly as an operator could not diff it).
Trace build_trace(const wsn::SimulationResult& result);

/// A node state: the variation between two successive *received* snapshots.
struct StateVector {
  wsn::NodeId node = wsn::kInvalidNode;
  wsn::Time time = 0.0;       ///< Time of the later snapshot.
  std::uint64_t epoch = 0;    ///< Epoch of the later snapshot.
  linalg::Vector delta;       ///< 43 metric differences.
};

/// Extracts all state vectors of a trace (per node, successive diffs).
std::vector<StateVector> extract_states(const Trace& trace);

/// Stacks state deltas into an n × 43 matrix (row order preserved).
linalg::Matrix states_matrix(const std::vector<StateVector>& states);

/// Packet Reception Ratio over time windows: received self-report packets at
/// the sink divided by packets originated in the window.
struct PrrPoint {
  wsn::Time window_start = 0.0;
  wsn::Time window_end = 0.0;
  std::uint32_t originated = 0;
  std::uint32_t received = 0;

  [[nodiscard]] double prr() const noexcept {
    return originated == 0 ? 1.0
                           : static_cast<double>(received) /
                                 static_cast<double>(originated);
  }
};

std::vector<PrrPoint> prr_series(const wsn::SimulationResult& result,
                                 wsn::Time window);

/// Overall PRR of the run.
double overall_prr(const wsn::SimulationResult& result);

}  // namespace vn2::trace
