#include "telemetry/sampler.hpp"

#include <chrono>
#include <utility>

#include "core/contracts.hpp"

namespace vn2::telemetry {

ResourceSampler::ResourceSampler(SamplerOptions options)
    : options_(std::move(options)) {
  VN2_CHECK(options_.interval_ms > 0,
            "sampler interval must be at least 1 ms");
  VN2_CHECK(options_.capacity > 0, "sampler ring capacity must be > 0");
}

ResourceSampler::~ResourceSampler() { stop(); }

void ResourceSampler::start() {
  if (!kCompiledIn) return;  // Kill-switch builds sample nothing.
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  if (tracked_.empty() && !options_.counters.empty())
    for (const std::string& name : options_.counters)
      tracked_.push_back(&Registry::global().counter(name));
  ring_.reserve(options_.capacity);
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void ResourceSampler::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    to_join = std::move(thread_);
  }
  wake_.notify_all();
  if (to_join.joinable()) to_join.join();
}

bool ResourceSampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::vector<ResourceSample> ResourceSampler::series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < options_.capacity || next_ == 0) return ring_;
  // The ring wrapped: positions [next_, end) hold the oldest samples.
  std::vector<ResourceSample> ordered;
  ordered.reserve(ring_.size());
  ordered.insert(ordered.end(), ring_.begin() + static_cast<long>(next_),
                 ring_.end());
  ordered.insert(ordered.end(), ring_.begin(),
                 ring_.begin() + static_cast<long>(next_));
  return ordered;
}

std::uint64_t ResourceSampler::peak_rss_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_rss_;
}

std::uint64_t ResourceSampler::total_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void ResourceSampler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  peak_rss_ = 0;
}

void ResourceSampler::take_sample_locked() {
  const ResourceUsage usage = sample_resources();
  ResourceSample sample;
  sample.t_ns = monotonic_ns();
  sample.current_rss_bytes = usage.current_rss_bytes;
  sample.cpu_total_ns = usage.cpu_total_ns();
  sample.counters.reserve(tracked_.size());
  for (const Counter* counter : tracked_)
    sample.counters.push_back(counter->value());
  if (sample.current_rss_bytes > peak_rss_)
    peak_rss_ = sample.current_rss_bytes;
  ++total_;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[next_] = std::move(sample);
    next_ = (next_ + 1) % options_.capacity;
  }
}

void ResourceSampler::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    take_sample_locked();
    if (stop_requested_) return;
    wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_requested_; });
    if (stop_requested_) {
      // One closing sample, so a window shorter than the interval still
      // records both its start and its end.
      take_sample_locked();
      return;
    }
  }
}

}  // namespace vn2::telemetry
