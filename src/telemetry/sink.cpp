#include "telemetry/sink.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "telemetry/calltree.hpp"

namespace vn2::telemetry {

namespace {

// ---------------------------------------------------------------------------
// JSON emit helpers.

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(std::string_view text) {
  std::string out = "\"";
  append_escaped(out, text);
  out += '"';
  return out;
}

std::string number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string micros(std::uint64_t ns) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buffer;
}

// ---------------------------------------------------------------------------
// JSON read helpers — a deliberately small parser for the two formats
// this file itself emits (strict enough for round-trip tests, not a
// general JSON library).

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("telemetry: malformed input: " + what);
}

/// Extracts the raw text after `"key":` within `object`.
std::string_view raw_field(std::string_view object, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = object.find(needle);
  if (at == std::string_view::npos)
    malformed("missing field " + std::string(key));
  std::string_view rest = object.substr(at + needle.size());
  std::size_t end = 0;
  if (!rest.empty() && rest[0] == '"') {
    end = 1;
    while (end < rest.size() && rest[end] != '"') {
      if (rest[end] == '\\') ++end;
      ++end;
    }
    ++end;
  } else {
    while (end < rest.size() && rest[end] != ',' && rest[end] != '}' &&
           rest[end] != ']')
      ++end;
  }
  return rest.substr(0, end);
}

std::string string_field(std::string_view object, std::string_view key) {
  std::string_view raw = raw_field(object, key);
  if (raw.size() < 2 || raw.front() != '"') malformed("expected string");
  raw = raw.substr(1, raw.size() - 2);
  std::string out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '\\') {
      out += raw[i];
      continue;
    }
    if (++i >= raw.size()) malformed("dangling escape");
    switch (raw[i]) {
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (i + 4 >= raw.size()) malformed("short \\u escape");
        out += static_cast<char>(
            std::stoi(std::string(raw.substr(i + 1, 4)), nullptr, 16));
        i += 4;
        break;
      }
      default:
        out += raw[i];
    }
  }
  return out;
}

double double_field(std::string_view object, std::string_view key) {
  return std::stod(std::string(raw_field(object, key)));
}

std::uint64_t u64_field(std::string_view object, std::string_view key) {
  return std::stoull(std::string(raw_field(object, key)));
}

/// Like u64_field but tolerates a missing key, for fields added after
/// the format shipped (readers stay compatible with older captures).
std::uint64_t u64_field_or(std::string_view object, std::string_view key,
                           std::uint64_t fallback) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  if (object.find(needle) == std::string_view::npos) return fallback;
  return u64_field(object, key);
}

/// String twin of u64_field_or, for the same compatibility reason.
std::string string_field_or(std::string_view object, std::string_view key,
                            std::string fallback) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  if (object.find(needle) == std::string_view::npos) return fallback;
  return string_field(object, key);
}

std::uint64_t micros_to_ns(double us) {
  return static_cast<std::uint64_t>(us * 1000.0 + 0.5);
}

std::string resource_json(const ResourceUsage& usage) {
  std::string out = "{\"sampled\": ";
  out += usage.sampled ? "true" : "false";
  out += ", \"peak_rss_bytes\": " + std::to_string(usage.peak_rss_bytes);
  out += ", \"current_rss_bytes\": " + std::to_string(usage.current_rss_bytes);
  out += ", \"cpu_user_ns\": " + std::to_string(usage.cpu_user_ns);
  out += ", \"cpu_system_ns\": " + std::to_string(usage.cpu_system_ns);
  out += "}";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Writers.

void write_json(Sink& sink, const Snapshot& snapshot) {
  std::string out = "{\n";
  out += "  \"telemetry_compiled\": ";
  out += snapshot.compiled_in ? "true" : "false";
  out += ",\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + quoted(snapshot.counters[i].first) + ": " +
           std::to_string(snapshot.counters[i].second);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + quoted(snapshot.gauges[i].first) + ": " +
           number(snapshot.gauges[i].second);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    " + quoted(name) + ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.min) +
           ", \"max\": " + std::to_string(h.max) +
           ", \"mean\": " + number(h.mean()) + "}";
  }
  out += snapshot.histograms.empty() ? "},\n" : "\n  },\n";
  out += "  \"spans\": {";
  for (std::size_t i = 0; i < snapshot.span_stats.size(); ++i) {
    const SpanStats& s = snapshot.span_stats[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    " + quoted(s.name) +
           ": {\"count\": " + std::to_string(s.count) +
           ", \"total_ns\": " + std::to_string(s.total_ns) +
           ", \"min_ns\": " + std::to_string(s.min_ns) +
           ", \"max_ns\": " + std::to_string(s.max_ns) +
           ", \"total_cpu_ns\": " + std::to_string(s.total_cpu_ns) + "}";
  }
  out += snapshot.span_stats.empty() ? "},\n" : "\n  },\n";
  // The call tree: path-keyed rows in preorder, with exclusive times
  // precomputed so downstream tools (vn2_profdiff) never rebuild the
  // hierarchy to diff it.
  const std::vector<PathProfile> paths =
      flatten(build_call_tree(snapshot.path_stats));
  out += "  \"call_tree\": {";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const PathProfile& p = paths[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    " + quoted(p.path) + ": {\"count\": " +
           std::to_string(p.count) +
           ", \"wall_ns\": " + std::to_string(p.wall_ns) +
           ", \"cpu_ns\": " + std::to_string(p.cpu_ns) +
           ", \"excl_wall_ns\": " + std::to_string(p.excl_wall_ns) +
           ", \"excl_cpu_ns\": " + std::to_string(p.excl_cpu_ns) + "}";
  }
  out += paths.empty() ? "},\n" : "\n  },\n";
  out += "  \"resource\": " + resource_json(snapshot.resource) + ",\n";
  if (!snapshot.resource_series.empty()) {
    // Offsets are relative to the first sample; readable and stable
    // across runs, unlike raw monotonic timestamps.
    const std::uint64_t t0 = snapshot.resource_series.front().t_ns;
    out += "  \"resource_series\": [";
    for (std::size_t i = 0; i < snapshot.resource_series.size(); ++i) {
      const ResourceSample& s = snapshot.resource_series[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"t_ms\": " + std::to_string((s.t_ns - t0) / 1000000) +
             ", \"rss_bytes\": " + std::to_string(s.current_rss_bytes) +
             ", \"cpu_ns\": " + std::to_string(s.cpu_total_ns) + "}";
    }
    out += "\n  ],\n";
  }
  out += "  \"spans_dropped\": " + std::to_string(snapshot.spans_dropped) +
         "\n}\n";
  sink.write(out);
}

void write_json_lines(Sink& sink, const Snapshot& snapshot) {
  std::string out;
  out += "{\"type\":\"meta\",\"telemetry_compiled\":";
  out += snapshot.compiled_in ? "true" : "false";
  out += ",\"spans_dropped\":" + std::to_string(snapshot.spans_dropped) + "}\n";
  out += "{\"type\":\"resource\",\"sampled\":";
  out += snapshot.resource.sampled ? "true" : "false";
  out += ",\"peak_rss_bytes\":" +
         std::to_string(snapshot.resource.peak_rss_bytes) +
         ",\"current_rss_bytes\":" +
         std::to_string(snapshot.resource.current_rss_bytes) +
         ",\"cpu_user_ns\":" + std::to_string(snapshot.resource.cpu_user_ns) +
         ",\"cpu_system_ns\":" +
         std::to_string(snapshot.resource.cpu_system_ns) + "}\n";
  for (const auto& [name, value] : snapshot.counters)
    out += "{\"type\":\"counter\",\"name\":" + quoted(name) +
           ",\"value\":" + std::to_string(value) + "}\n";
  for (const auto& [name, value] : snapshot.gauges)
    out += "{\"type\":\"gauge\",\"name\":" + quoted(name) +
           ",\"value\":" + number(value) + "}\n";
  for (const auto& [name, h] : snapshot.histograms)
    out += "{\"type\":\"histogram\",\"name\":" + quoted(name) +
           ",\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) + "}\n";
  for (const SpanStats& s : snapshot.span_stats)
    out += "{\"type\":\"span\",\"name\":" + quoted(s.name) +
           ",\"count\":" + std::to_string(s.count) +
           ",\"total_ns\":" + std::to_string(s.total_ns) +
           ",\"min_ns\":" + std::to_string(s.min_ns) +
           ",\"max_ns\":" + std::to_string(s.max_ns) +
           ",\"total_cpu_ns\":" + std::to_string(s.total_cpu_ns) + "}\n";
  for (const SpanStats& s : snapshot.path_stats)
    out += "{\"type\":\"path\",\"path\":" + quoted(s.name) +
           ",\"count\":" + std::to_string(s.count) +
           ",\"total_ns\":" + std::to_string(s.total_ns) +
           ",\"min_ns\":" + std::to_string(s.min_ns) +
           ",\"max_ns\":" + std::to_string(s.max_ns) +
           ",\"total_cpu_ns\":" + std::to_string(s.total_cpu_ns) + "}\n";
  sink.write(out);
}

void write_trace_events(Sink& sink, const Snapshot& snapshot) {
  // Complete events ("ph":"X") with timestamps relative to the earliest
  // span, in microseconds as the format requires; base_ns preserves the
  // absolute origin so read_trace_events can reconstruct start_ns.
  std::uint64_t base = ~std::uint64_t{0};
  for (const SpanRecord& span : snapshot.spans)
    base = std::min(base, span.start_ns);
  if (snapshot.spans.empty()) base = 0;
  std::string out = "{\"base_ns\":" + std::to_string(base) +
                    ",\"traceEvents\":[";
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanRecord& span = snapshot.spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\":" + quoted(span.name) +
           ",\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(span.thread) +
           ",\"ts\":" + micros(span.start_ns - base) +
           ",\"dur\":" + micros(span.duration_ns) +
           ",\"args\":{\"depth\":" + std::to_string(span.depth) +
           ",\"cpu_ns\":" + std::to_string(span.cpu_ns);
    if (!span.path.empty()) out += ",\"path\":" + quoted(span.path);
    out += "}}";
  }
  out += "\n]}\n";
  sink.write(out);
}

// ---------------------------------------------------------------------------
// Readers.

Snapshot read_json_lines(std::string_view text) {
  Snapshot snapshot;
  snapshot.compiled_in = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (line.front() != '{' || line.back() != '}')
      malformed("json-lines record is not an object");
    const std::string type = string_field(line, "type");
    if (type == "meta") {
      snapshot.compiled_in =
          raw_field(line, "telemetry_compiled") == std::string_view("true");
      snapshot.spans_dropped = u64_field(line, "spans_dropped");
    } else if (type == "counter") {
      snapshot.counters.emplace_back(string_field(line, "name"),
                                     u64_field(line, "value"));
    } else if (type == "gauge") {
      snapshot.gauges.emplace_back(string_field(line, "name"),
                                   double_field(line, "value"));
    } else if (type == "histogram") {
      HistogramSnapshot h;
      h.count = u64_field(line, "count");
      h.sum = u64_field(line, "sum");
      h.min = u64_field(line, "min");
      h.max = u64_field(line, "max");
      snapshot.histograms.emplace_back(string_field(line, "name"),
                                       std::move(h));
    } else if (type == "span") {
      SpanStats s;
      s.name = string_field(line, "name");
      s.count = u64_field(line, "count");
      s.total_ns = u64_field(line, "total_ns");
      s.min_ns = u64_field(line, "min_ns");
      s.max_ns = u64_field(line, "max_ns");
      s.total_cpu_ns = u64_field_or(line, "total_cpu_ns", 0);
      snapshot.span_stats.push_back(std::move(s));
    } else if (type == "path") {
      SpanStats s;
      s.name = string_field(line, "path");
      s.count = u64_field(line, "count");
      s.total_ns = u64_field(line, "total_ns");
      s.min_ns = u64_field(line, "min_ns");
      s.max_ns = u64_field(line, "max_ns");
      s.total_cpu_ns = u64_field_or(line, "total_cpu_ns", 0);
      snapshot.path_stats.push_back(std::move(s));
    } else if (type == "resource") {
      snapshot.resource.sampled =
          raw_field(line, "sampled") == std::string_view("true");
      snapshot.resource.peak_rss_bytes = u64_field(line, "peak_rss_bytes");
      snapshot.resource.current_rss_bytes =
          u64_field(line, "current_rss_bytes");
      snapshot.resource.cpu_user_ns = u64_field(line, "cpu_user_ns");
      snapshot.resource.cpu_system_ns = u64_field(line, "cpu_system_ns");
    } else {
      malformed("unknown record type '" + type + "'");
    }
  }
  return snapshot;
}

std::vector<SpanRecord> read_trace_events(std::string_view text) {
  const std::uint64_t base = u64_field(text, "base_ns");
  const std::size_t open = text.find("\"traceEvents\":[");
  if (open == std::string_view::npos) malformed("missing traceEvents");
  std::vector<SpanRecord> spans;
  std::size_t pos = open;
  while (true) {
    const std::size_t begin = text.find('{', pos);
    if (begin == std::string_view::npos) break;
    const std::size_t end = text.find('}', begin);
    if (end == std::string_view::npos) malformed("unterminated event");
    // Events end with "}}": the inner args object closes first. Defensive
    // parser: the subscript is bounds-guarded inline and malformed input
    // already throws via malformed().
    // vn2-lint: allow(unchecked-public-entry)
    const std::size_t close = end + 1 < text.size() && text[end + 1] == '}'
                                  ? end + 1
                                  : end;
    const std::string_view object = text.substr(begin, close - begin + 1);
    SpanRecord span;
    span.name = string_field(object, "name");
    span.start_ns = base + micros_to_ns(double_field(object, "ts"));
    span.duration_ns = micros_to_ns(double_field(object, "dur"));
    span.thread = static_cast<std::uint32_t>(u64_field(object, "tid"));
    span.depth = static_cast<std::uint32_t>(u64_field(object, "depth"));
    span.cpu_ns = u64_field_or(object, "cpu_ns", 0);
    span.path = string_field_or(object, "path", "");
    spans.push_back(std::move(span));
    pos = close + 1;
  }
  return spans;
}

}  // namespace vn2::telemetry
