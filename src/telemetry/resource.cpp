#include "telemetry/resource.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <time.h>
#endif

namespace vn2::telemetry {

namespace {

#if defined(__unix__) || defined(__APPLE__)
std::uint64_t timeval_ns(const timeval& tv) {
  return static_cast<std::uint64_t>(tv.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(tv.tv_usec) * 1000ull;
}
#endif

#if defined(__linux__)
// Reads /proc/self/status and extracts the VmHWM (peak RSS) and VmRSS
// (current RSS) lines, reported by the kernel in kB. Returns false when
// the file is unavailable (non-proc filesystems, tight sandboxes).
bool read_proc_status(std::uint64_t* peak_kb, std::uint64_t* current_kb) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) {
    return false;
  }
  bool found_any = false;
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    unsigned long long value = 0;
    if (std::sscanf(line, "VmHWM: %llu kB", &value) == 1) {
      *peak_kb = value;
      found_any = true;
    } else if (std::sscanf(line, "VmRSS: %llu kB", &value) == 1) {
      *current_kb = value;
      found_any = true;
    }
  }
  std::fclose(file);
  return found_any;
}
#endif

}  // namespace

ResourceUsage sample_resources() noexcept {
  ResourceUsage usage;
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.sampled = true;
    usage.cpu_user_ns = timeval_ns(ru.ru_utime);
    usage.cpu_system_ns = timeval_ns(ru.ru_stime);
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes; everywhere else it is kilobytes.
    usage.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    usage.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024ull;
#endif
  }
#endif
#if defined(__linux__)
  // /proc/self/status refines the getrusage numbers: VmHWM matches
  // ru_maxrss but VmRSS (current) has no rusage equivalent.
  std::uint64_t peak_kb = 0;
  std::uint64_t current_kb = 0;
  if (read_proc_status(&peak_kb, &current_kb)) {
    usage.sampled = true;
    if (peak_kb != 0) {
      usage.peak_rss_bytes = peak_kb * 1024ull;
    }
    usage.current_rss_bytes = current_kb * 1024ull;
  }
#endif
  return usage;
}

std::uint64_t thread_cpu_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
  return 0;
#else
  return 0;
#endif
}

}  // namespace vn2::telemetry
