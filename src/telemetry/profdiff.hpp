// Profile diffing: aligns two call-trees (calltree.hpp) by path and
// reports inclusive/exclusive wall-time deltas — the flamegraph-style
// span diff between two profile snapshots.
//
// Verdict semantics mirror the benchstat gate (src/benchstat/gate.hpp)
// adapted to single snapshots: a path regresses only when its inclusive
// wall time moved in the bad direction by more than the relative floor
// AND by more than an absolute floor. Profile snapshots carry one
// observation per path rather than repeated samples, so the absolute
// floor (default 1 ms) stands in for the gate's IQR-disjointness test:
// sub-millisecond spans swing by whole multiples on a busy host without
// meaning anything. Paths present on only one side are reported
// informationally and never fail the diff — a self-diff is always clean.
//
// The vn2_profdiff tool (and `vn2 profile --diff`) maps ProfDiffReport
// onto the observatory's shared exit codes: 0 = clean, 1 = regression,
// 2 = usage/parse error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/calltree.hpp"

namespace vn2::telemetry {

struct ProfDiffOptions {
  /// Inclusive wall time must move by more than this fraction before a
  /// path can regress or improve (0.15 = 15%, matching the benchstat
  /// gate's default noise floor).
  double relative_floor = 0.15;
  /// ...and by more than this many nanoseconds. The absolute floor keeps
  /// micro-spans (whose relative swing is all scheduler noise) quiet.
  std::uint64_t min_delta_ns = 1000000;
};

enum class PathVerdict {
  kOk,         ///< Matched, within both floors.
  kImproved,   ///< Significantly faster in the run.
  kRegressed,  ///< Significantly slower in the run.
  kNew,        ///< Path only in the run (informational).
  kVanished,   ///< Path only in the base (informational).
};

struct PathDelta {
  std::string path;
  PathVerdict verdict = PathVerdict::kOk;
  std::uint64_t base_wall_ns = 0;
  std::uint64_t run_wall_ns = 0;
  std::uint64_t base_excl_ns = 0;
  std::uint64_t run_excl_ns = 0;
  std::uint64_t base_count = 0;
  std::uint64_t run_count = 0;
  /// Relative inclusive-wall move: +0.25 = 25% slower, negative =
  /// faster. Zero for one-sided paths.
  double wall_delta = 0.0;
  /// Relative exclusive-wall move (the "is this node itself the
  /// culprit" signal; ancestors of a regressed leaf inherit its
  /// inclusive delta but keep a flat exclusive one).
  double excl_delta = 0.0;
};

struct ProfDiffReport {
  std::vector<PathDelta> deltas;  ///< Sorted by path.
  std::size_t compared = 0;       ///< Paths present on both sides.
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t added = 0;
  std::size_t vanished = 0;

  [[nodiscard]] bool failed() const { return regressions != 0; }
};

/// Aligns two flattened call-trees by path and classifies every delta.
[[nodiscard]] ProfDiffReport diff_call_trees(
    const std::vector<PathProfile>& base, const std::vector<PathProfile>& run,
    const ProfDiffOptions& options);

/// Human-readable report: noteworthy paths first, then a summary line.
[[nodiscard]] std::string render_text(const ProfDiffReport& report);

/// GitHub-flavoured markdown table of the same report.
[[nodiscard]] std::string render_markdown(const ProfDiffReport& report);

}  // namespace vn2::telemetry
