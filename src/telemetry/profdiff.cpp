#include "telemetry/profdiff.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>

#include "core/contracts.hpp"

namespace vn2::telemetry {

namespace {

/// Relative move of run vs base, +0.25 = 25% slower. A zero base with a
/// nonzero run is treated as a move from 1 ns, which the absolute floor
/// then arbitrates.
double relative_move(std::uint64_t base, std::uint64_t run) {
  const double denom = base == 0 ? 1.0 : static_cast<double>(base);
  return static_cast<double>(run) / denom - 1.0;
}

std::string ms(std::uint64_t ns) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.2f",
                static_cast<double>(ns) / 1e6);
  return buffer;
}

std::string percent(double delta) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", delta * 100.0);
  return buffer;
}

const char* verdict_label(PathVerdict verdict) {
  switch (verdict) {
    case PathVerdict::kRegressed:
      return "REGRESSED";
    case PathVerdict::kImproved:
      return "improved";
    case PathVerdict::kNew:
      return "new";
    case PathVerdict::kVanished:
      return "vanished";
    case PathVerdict::kOk:
      break;
  }
  return "ok";
}

/// Noteworthy deltas in render order: regressions first (worst leading),
/// then improvements, then one-sided paths.
std::vector<const PathDelta*> noteworthy(const ProfDiffReport& report) {
  std::vector<const PathDelta*> out;
  for (const PathDelta& delta : report.deltas)
    if (delta.verdict != PathVerdict::kOk) out.push_back(&delta);
  std::stable_sort(out.begin(), out.end(),
                   [](const PathDelta* a, const PathDelta* b) {
                     const auto rank = [](const PathDelta* d) {
                       switch (d->verdict) {
                         case PathVerdict::kRegressed:
                           return 0;
                         case PathVerdict::kImproved:
                           return 1;
                         case PathVerdict::kNew:
                           return 2;
                         case PathVerdict::kVanished:
                           return 3;
                         case PathVerdict::kOk:
                           break;
                       }
                       return 4;
                     };
                     if (rank(a) != rank(b)) return rank(a) < rank(b);
                     return a->wall_delta > b->wall_delta;
                   });
  return out;
}

}  // namespace

ProfDiffReport diff_call_trees(const std::vector<PathProfile>& base,
                               const std::vector<PathProfile>& run,
                               const ProfDiffOptions& options) {
  VN2_CHECK(options.relative_floor >= 0.0,
            "profdiff relative floor must be non-negative");
  std::map<std::string_view, const PathProfile*> base_by;
  std::map<std::string_view, const PathProfile*> run_by;
  for (const PathProfile& p : base) base_by.emplace(p.path, &p);
  for (const PathProfile& p : run) run_by.emplace(p.path, &p);

  ProfDiffReport report;
  for (const auto& [path, b] : base_by) {
    PathDelta delta;
    delta.path = std::string(path);
    delta.base_wall_ns = b->wall_ns;
    delta.base_excl_ns = b->excl_wall_ns;
    delta.base_count = b->count;
    const auto it = run_by.find(path);
    if (it == run_by.end()) {
      delta.verdict = PathVerdict::kVanished;
      ++report.vanished;
      report.deltas.push_back(std::move(delta));
      continue;
    }
    const PathProfile* r = it->second;
    delta.run_wall_ns = r->wall_ns;
    delta.run_excl_ns = r->excl_wall_ns;
    delta.run_count = r->count;
    delta.wall_delta = relative_move(b->wall_ns, r->wall_ns);
    delta.excl_delta = relative_move(b->excl_wall_ns, r->excl_wall_ns);
    ++report.compared;
    const std::uint64_t moved = r->wall_ns > b->wall_ns
                                    ? r->wall_ns - b->wall_ns
                                    : b->wall_ns - r->wall_ns;
    if (moved > options.min_delta_ns &&
        delta.wall_delta > options.relative_floor) {
      delta.verdict = PathVerdict::kRegressed;
      ++report.regressions;
    } else if (moved > options.min_delta_ns &&
               delta.wall_delta < -options.relative_floor) {
      delta.verdict = PathVerdict::kImproved;
      ++report.improvements;
    }
    report.deltas.push_back(std::move(delta));
  }
  for (const auto& [path, r] : run_by) {
    if (base_by.count(path) != 0) continue;
    PathDelta delta;
    delta.path = std::string(path);
    delta.verdict = PathVerdict::kNew;
    delta.run_wall_ns = r->wall_ns;
    delta.run_excl_ns = r->excl_wall_ns;
    delta.run_count = r->count;
    ++report.added;
    report.deltas.push_back(std::move(delta));
  }
  std::sort(report.deltas.begin(), report.deltas.end(),
            [](const PathDelta& a, const PathDelta& b) {
              return a.path < b.path;
            });
  return report;
}

std::string render_text(const ProfDiffReport& report) {
  std::string out = "profile diff: " + std::to_string(report.compared) +
                    " paths compared, " +
                    std::to_string(report.regressions) + " regressed, " +
                    std::to_string(report.improvements) + " improved, " +
                    std::to_string(report.added) + " new, " +
                    std::to_string(report.vanished) + " vanished\n";
  for (const PathDelta* delta : noteworthy(report)) {
    char line[320];
    switch (delta->verdict) {
      case PathVerdict::kNew:
        std::snprintf(line, sizeof(line), "  %-9s  %-40s (run only: %s ms)\n",
                      verdict_label(delta->verdict), delta->path.c_str(),
                      ms(delta->run_wall_ns).c_str());
        break;
      case PathVerdict::kVanished:
        std::snprintf(line, sizeof(line),
                      "  %-9s  %-40s (base only: %s ms)\n",
                      verdict_label(delta->verdict), delta->path.c_str(),
                      ms(delta->base_wall_ns).c_str());
        break;
      default:
        std::snprintf(line, sizeof(line),
                      "  %-9s  %-40s %s -> %s ms  (%s incl, %s excl)\n",
                      verdict_label(delta->verdict), delta->path.c_str(),
                      ms(delta->base_wall_ns).c_str(),
                      ms(delta->run_wall_ns).c_str(),
                      percent(delta->wall_delta).c_str(),
                      percent(delta->excl_delta).c_str());
    }
    out += line;
  }
  out += report.failed() ? "verdict: FAIL\n" : "verdict: ok\n";
  return out;
}

std::string render_markdown(const ProfDiffReport& report) {
  std::string out =
      "| path | verdict | base ms | run ms | Δ incl | Δ excl |\n"
      "|---|---|---:|---:|---:|---:|\n";
  const auto rows = noteworthy(report);
  for (const PathDelta* delta : rows) {
    out += "| `" + delta->path + "` | " + verdict_label(delta->verdict) +
           " | " + ms(delta->base_wall_ns) + " | " + ms(delta->run_wall_ns) +
           " | ";
    if (delta->verdict == PathVerdict::kNew ||
        delta->verdict == PathVerdict::kVanished)
      out += "— | — |\n";
    else
      out += percent(delta->wall_delta) + " | " +
             percent(delta->excl_delta) + " |\n";
  }
  if (rows.empty())
    out += "| _no significant deltas_ | ok | | | | |\n";
  out += "\n";
  out += std::to_string(report.compared) + " paths compared, " +
         std::to_string(report.regressions) + " regressed, " +
         std::to_string(report.improvements) + " improved — **";
  out += report.failed() ? "FAIL" : "ok";
  out += "**\n";
  return out;
}

}  // namespace vn2::telemetry
