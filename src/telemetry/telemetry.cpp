#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace vn2::telemetry {

namespace {

std::atomic<bool> g_collecting{true};
std::atomic<std::uint32_t> g_next_thread_index{0};

}  // namespace

std::uint64_t monotonic_ns() noexcept {
  // The sanctioned clock site: vn2-lint exempts src/telemetry/ from the
  // nondeterminism-clock rule so instrumented libraries never read
  // clocks themselves.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

void set_collecting(bool on) noexcept {
  g_collecting.store(on, std::memory_order_relaxed);
}

bool collecting() noexcept {
  return g_collecting.load(std::memory_order_relaxed);
}

std::uint32_t thread_index() noexcept {
  thread_local const std::uint32_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

// ---------------------------------------------------------------------------
// Gauge / Histogram

void Gauge::add(double delta) noexcept {
  // CAS loop: std::atomic<double>::fetch_add is C++20 but not universally
  // lock-free-optimized; the loop is portable and contention here is rare.
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::record(std::uint64_t sample) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::uint64_t seen_min = min_.load(std::memory_order_relaxed);
  while (sample < seen_min &&
         !min_.compare_exchange_weak(seen_min, sample,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
  std::uint64_t seen_max = max_.load(std::memory_order_relaxed);
  while (sample > seen_max &&
         !max_.compare_exchange_weak(seen_max, sample,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
  // Bucket index = bit width of the sample: 0 -> 0, 1 -> 1, 2..3 -> 2, ...
  std::size_t bucket = 0;
  for (std::uint64_t v = sample; v != 0; v >>= 1) ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t raw = min_.load(std::memory_order_relaxed);
  return raw == ~std::uint64_t{0} ? 0 : raw;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Snapshot

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [key, value] : counters)
    if (key == name) return value;
  return 0;
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  static Registry* instance = new Registry();  // vn2-lint: allow(naked-new)
  return *instance;  // Leaked intentionally: usable during static teardown.
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

namespace {

void accumulate_span(std::map<std::string, SpanStats, std::less<>>& stats_map,
                     const std::string& key, const SpanRecord& span) {
  auto it = stats_map.find(key);
  if (it == stats_map.end()) {
    SpanStats stats;
    stats.name = key;
    stats.count = 1;
    stats.total_ns = stats.min_ns = stats.max_ns = span.duration_ns;
    stats.total_cpu_ns = span.cpu_ns;
    stats_map.emplace(key, std::move(stats));
  } else {
    SpanStats& stats = it->second;
    ++stats.count;
    stats.total_ns += span.duration_ns;
    stats.min_ns = std::min(stats.min_ns, span.duration_ns);
    stats.max_ns = std::max(stats.max_ns, span.duration_ns);
    stats.total_cpu_ns += span.cpu_ns;
  }
}

}  // namespace

void Registry::record_span(SpanRecord span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  accumulate_span(span_stats_, span.name, span);
  // Spans recorded directly (tests, external producers) may carry no
  // path; they enter the call tree as roots under their own name.
  accumulate_span(path_stats_, span.path.empty() ? span.name : span.path,
                  span);
  if (spans_.size() < span_capacity_)
    spans_.push_back(std::move(span));
  else
    ++spans_dropped_;
}

void Registry::set_span_capacity(std::size_t cap) {
  const std::lock_guard<std::mutex> lock(mutex_);
  span_capacity_ = cap;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, metric] : counters_)
    snap.counters.emplace_back(name, metric->value());
  for (const auto& [name, metric] : gauges_)
    snap.gauges.emplace_back(name, metric->value());
  for (const auto& [name, metric] : histograms_) {
    HistogramSnapshot h;
    h.count = metric->count();
    h.sum = metric->sum();
    h.min = metric->min();
    h.max = metric->max();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      if (metric->bucket(b) != 0) h.buckets.emplace_back(b, metric->bucket(b));
    snap.histograms.emplace_back(name, std::move(h));
  }
  for (const auto& [name, stats] : span_stats_)
    snap.span_stats.push_back(stats);
  for (const auto& [path, stats] : path_stats_)
    snap.path_stats.push_back(stats);
  snap.spans = spans_;
  snap.spans_dropped = spans_dropped_;
  snap.resource = sample_resources();
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : counters_) metric->reset();
  for (auto& [name, metric] : gauges_) metric->reset();
  for (auto& [name, metric] : histograms_) metric->reset();
  span_stats_.clear();
  path_stats_.clear();
  spans_.clear();
  spans_dropped_ = 0;
}

// ---------------------------------------------------------------------------
// ScopedSpan

namespace {
thread_local std::uint32_t t_span_depth = 0;
// Incremental call path of the open spans on this thread ("a/b" while
// inside b): ScopedSpan appends its name on entry and truncates back on
// exit, so maintaining the path is amortized O(name) with no per-span
// allocation in steady state (the string's capacity is reused).
thread_local std::string t_span_path;
// Ancestry inherited from another thread via SpanPathScope; empty on
// threads that own their whole path.
thread_local std::string t_span_prefix;
}  // namespace

std::string current_span_path() {
  if (t_span_prefix.empty()) return t_span_path;
  if (t_span_path.empty()) return t_span_prefix;
  return t_span_prefix + '/' + t_span_path;
}

SpanPathScope::SpanPathScope(const std::string& parent_path) {
  // Adopt the ancestry only on a thread with no span context of its own:
  // the submitting thread runs batch tasks too, and its open spans
  // already carry the full path (prefixing would double-count them).
  if (parent_path.empty() || t_span_depth != 0 || !t_span_path.empty() ||
      !t_span_prefix.empty())
    return;
  t_span_prefix = parent_path;
  active_ = true;
}

SpanPathScope::~SpanPathScope() {
  if (active_) t_span_prefix.clear();
}

ScopedSpan::ScopedSpan(const char* name) noexcept : name_(name) {
  if (!collecting()) return;
  armed_ = true;
  depth_ = t_span_depth++;
  path_len_ = t_span_path.size();
  if (!t_span_path.empty()) t_span_path += '/';
  t_span_path += name;
  cpu_start_ = thread_cpu_ns();
  start_ = monotonic_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  const std::uint64_t end = monotonic_ns();
  const std::uint64_t cpu_end = thread_cpu_ns();
  --t_span_depth;
  SpanRecord record;
  record.name = name_;
  record.path = current_span_path();
  t_span_path.resize(path_len_);
  record.start_ns = start_;
  record.duration_ns = end >= start_ ? end - start_ : 0;
  record.thread = thread_index();
  record.depth = depth_;
  record.cpu_ns = cpu_end >= cpu_start_ ? cpu_end - cpu_start_ : 0;
  Registry::global().record_span(std::move(record));
}

}  // namespace vn2::telemetry
