// Call-tree aggregation over path-keyed span statistics: turns the flat
// Snapshot::path_stats vector ("a", "a/b", "a/b/c") into a hierarchy with
// inclusive and exclusive wall/CPU time per node — the flamegraph view of
// a profile snapshot, and the input to profdiff.hpp.
//
// Semantics:
//  * Inclusive time is the span's own measured total (children run inside
//    it, so their time is already counted). Inclusive CPU sums across
//    threads, so a node fanned out by parallel_for can show cpu_ns far
//    above wall_ns — that is the parallelism, not an error.
//  * Exclusive time is inclusive minus the children's inclusive sum,
//    clamped at zero: spans attributed from pool workers overlap in wall
//    time, so a parent's children can legitimately sum past its own wall.
//  * Paths with missing ancestors ("a/b" recorded but never a bare "a",
//    e.g. when collection started mid-span) get synthesized intermediate
//    nodes with count == 0 whose inclusive time is their children's sum.
//  * Children are ordered by name, so two snapshots of the same workload
//    produce structurally identical trees (what makes diffing by path
//    deterministic).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace vn2::telemetry {

/// One aggregated node of the call tree.
struct CallTreeNode {
  std::string name;  ///< Leaf span name ("nnls.solve").
  std::string path;  ///< Full "/"-joined path from the root.
  std::uint64_t count = 0;         ///< 0 = synthesized ancestor.
  std::uint64_t wall_ns = 0;       ///< Inclusive wall time.
  std::uint64_t cpu_ns = 0;        ///< Inclusive CPU, summed over threads.
  std::uint64_t excl_wall_ns = 0;  ///< Inclusive minus children, clamped.
  std::uint64_t excl_cpu_ns = 0;
  std::vector<CallTreeNode> children;  ///< Sorted by name.
};

struct CallTree {
  std::vector<CallTreeNode> roots;  ///< Sorted by name.

  [[nodiscard]] bool empty() const noexcept { return roots.empty(); }
};

/// Flat, path-keyed row of a call tree: the serialization unit behind the
/// snapshot JSON's "call_tree" section and the alignment unit of profdiff.
struct PathProfile {
  std::string path;
  std::uint64_t count = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::uint64_t excl_wall_ns = 0;
  std::uint64_t excl_cpu_ns = 0;
};

/// Builds the tree from path-keyed span statistics (Snapshot::path_stats;
/// SpanStats::name holds the "/"-joined path). Throws std::invalid_argument
/// on an empty or "/"-bounded path entry.
[[nodiscard]] CallTree build_call_tree(
    const std::vector<SpanStats>& path_stats);

/// Flattens a tree into preorder (parent before children, siblings by
/// name) with exclusive times precomputed.
[[nodiscard]] std::vector<PathProfile> flatten(const CallTree& tree);

/// Human-readable indented rendering (two spaces per level) with
/// inclusive/exclusive/CPU milliseconds per node.
[[nodiscard]] std::string render_call_tree(const CallTree& tree);

/// Extracts the "call_tree" section from a profile snapshot produced by
/// write_json (sink.hpp). Throws std::runtime_error when the document has
/// no such section or it is malformed.
[[nodiscard]] std::vector<PathProfile> read_call_tree_json(
    std::string_view text);

}  // namespace vn2::telemetry
