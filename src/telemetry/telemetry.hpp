// vn2::telemetry — in-memory counters, gauges, latency histograms, and
// scoped-span tracing for the VN2 pipeline itself.
//
// The paper instruments every mote with 43 metrics so operators can see
// the network; this library applies the same discipline to our own hot
// paths (simulator event loop, NMF updates, NNLS solves, parallel_for).
// Design rules, mirroring the vn2-lint invariants:
//
//  * No IO. The registry only records in memory; serialization goes
//    through an injected Sink (sink.hpp) and all file handling lives in
//    the CLI/bench layer.
//  * One clock. telemetry::monotonic_ns() is the single sanctioned
//    wall-clock read site outside the simulator (vn2-lint exempts
//    src/telemetry/); instrumented libraries call macros, never clocks.
//  * Never feeds back. Telemetry observes the pipeline; results stay
//    bit-identical with telemetry on, off, or compiled out.
//
// Instrumentation sites use the VN2_COUNT / VN2_GAUGE_SET / VN2_SPAN
// macros below. Each macro caches a `static` reference to its metric on
// first execution, so the steady-state cost of a counter bump is one
// relaxed atomic add. Compile-time kill switch: configure with
// -DVN2_TELEMETRY=OFF and every macro expands to a no-op (the library
// itself still builds so tools can report "compiled out"). Runtime
// switch: set_collecting(false) pauses recording behind one relaxed
// atomic load, which is what bench_perf_nmf uses to measure overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/resource.hpp"

namespace vn2::telemetry {

#ifndef VN2_TELEMETRY_ENABLED
#define VN2_TELEMETRY_ENABLED 1
#endif

/// True when the instrumentation macros are compiled in.
constexpr bool kCompiledIn = VN2_TELEMETRY_ENABLED != 0;

/// Nanoseconds from a monotonic clock. The only sanctioned wall-clock
/// read outside the simulator's virtual time.
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

/// Global runtime switch for all macro instrumentation (default on).
void set_collecting(bool on) noexcept;
[[nodiscard]] bool collecting() noexcept;

// ---------------------------------------------------------------------------
// Metric primitives. All methods are thread-safe; writers use relaxed
// atomics (metrics are monotonic tallies, not synchronization).

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram of nonnegative integer samples (typically
/// durations in ns). Bucket b counts samples whose bit width is b, i.e.
/// sample 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t sample) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// ---------------------------------------------------------------------------
// Snapshot: a consistent, plain-data copy of the registry for sinks.

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0.
  std::uint64_t max = 0;
  /// (bucket index, count) for nonempty buckets, ascending.
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// One completed span occurrence (raw, for trace_event export).
struct SpanRecord {
  std::string name;
  /// "/"-joined ancestry ending in `name` ("train/nmf.factorize/
  /// nnls.solve"). Spans recorded on a pool worker inherit the submitting
  /// thread's path through SpanPathScope, so the path reads as one
  /// logical call tree even across threads.
  std::string path;
  std::uint64_t start_ns = 0;  ///< monotonic_ns() at entry.
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;  ///< Small sequential id, stable per thread.
  std::uint32_t depth = 0;   ///< Nesting depth within the thread, 0-based.
  /// CPU time consumed by the owning thread during the span (0 when the
  /// platform lacks per-thread CPU clocks). duration_ns >> cpu_ns means
  /// the span mostly waited; duration_ns ~= cpu_ns means it computed.
  std::uint64_t cpu_ns = 0;
};

/// Aggregated statistics for all occurrences of one span name.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t total_cpu_ns = 0;  ///< Sum of per-occurrence cpu_ns.
};

struct Snapshot {
  bool compiled_in = kCompiledIn;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<SpanStats> span_stats;
  /// Same statistics keyed by full call path instead of name (the
  /// SpanStats::name field holds the path). Unlike `spans` this is an
  /// aggregate, so it is never truncated by the span retention cap —
  /// calltree.hpp builds the call tree from it.
  std::vector<SpanStats> path_stats;
  std::vector<SpanRecord> spans;  ///< Raw spans, capped; see spans_dropped.
  std::uint64_t spans_dropped = 0;
  /// Process RSS / CPU usage sampled when the snapshot was taken (see
  /// resource.hpp; `resource.sampled` is false on unsupported platforms).
  ResourceUsage resource;
  /// Optional RSS/CPU time series captured by a ResourceSampler
  /// (sampler.hpp). The registry never fills this — the caller that owns
  /// the sampler attaches the series before serializing.
  std::vector<ResourceSample> resource_series;

  /// Value of a counter by name, or 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Registry: named metrics with stable addresses.

class Registry {
 public:
  /// The process-wide registry used by the macros.
  static Registry& global();

  /// Finds or creates a metric. The returned reference stays valid for
  /// the registry's lifetime (reset() zeroes values, never destroys),
  /// which is what lets macros cache it in a function-local static.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Records one completed span: aggregates per-name stats and retains
  /// the raw record until the retention cap (drops are counted).
  void record_span(SpanRecord span);

  /// Raw spans retained before new records are dropped (default 65536).
  void set_span_capacity(std::size_t cap);

  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every metric and clears spans. Metric objects survive, so
  /// references cached by macro call sites remain valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, SpanStats, std::less<>> span_stats_;
  std::map<std::string, SpanStats, std::less<>> path_stats_;
  std::vector<SpanRecord> spans_;
  std::size_t span_capacity_ = 65536;
  std::uint64_t spans_dropped_ = 0;
};

/// RAII span: records [construction, destruction) into the global
/// registry under `name`. Nesting is tracked per thread. `name` must be
/// a string literal (or otherwise outlive the span).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ = 0;
  std::uint64_t cpu_start_ = 0;
  std::size_t path_len_ = 0;  ///< Thread path length before this span.
  std::uint32_t depth_ = 0;
  bool armed_ = false;
};

/// Small sequential id for the calling thread (0 = first thread seen).
[[nodiscard]] std::uint32_t thread_index() noexcept;

/// The calling thread's current span path ("a/b/c"), including any
/// ancestry inherited through SpanPathScope; empty when no span is open.
/// This is what parallel_for captures before fanning out, so spans inside
/// worker tasks attach under the submitting thread's call tree.
[[nodiscard]] std::string current_span_path();

/// RAII parent attribution for work handed to another thread: while the
/// scope is alive, spans recorded on this thread record their path under
/// `parent_path`. Activates only when the thread has no span context of
/// its own — the submitting thread participates in its own parallel
/// batches, and its spans already carry the full path — so nesting a
/// scope inside existing spans (or another scope) is a no-op.
class SpanPathScope {
 public:
  explicit SpanPathScope(const std::string& parent_path);
  ~SpanPathScope();
  SpanPathScope(const SpanPathScope&) = delete;
  SpanPathScope& operator=(const SpanPathScope&) = delete;

 private:
  bool active_ = false;
};

}  // namespace vn2::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros. `name` must be a string literal; it is looked
// up once per call site and cached in a function-local static.

#define VN2_TELEM_CONCAT_INNER(a, b) a##b
#define VN2_TELEM_CONCAT(a, b) VN2_TELEM_CONCAT_INNER(a, b)

#if VN2_TELEMETRY_ENABLED

#define VN2_COUNT_N(name, n)                                          \
  do {                                                                \
    if (::vn2::telemetry::collecting()) {                             \
      static ::vn2::telemetry::Counter& vn2_telem_metric =            \
          ::vn2::telemetry::Registry::global().counter(name);         \
      vn2_telem_metric.add(static_cast<std::uint64_t>(n));            \
    }                                                                 \
  } while (false)

#define VN2_GAUGE_SET(name, v)                                        \
  do {                                                                \
    if (::vn2::telemetry::collecting()) {                             \
      static ::vn2::telemetry::Gauge& vn2_telem_metric =              \
          ::vn2::telemetry::Registry::global().gauge(name);           \
      vn2_telem_metric.set(static_cast<double>(v));                   \
    }                                                                 \
  } while (false)

#define VN2_HISTOGRAM(name, v)                                        \
  do {                                                                \
    if (::vn2::telemetry::collecting()) {                             \
      static ::vn2::telemetry::Histogram& vn2_telem_metric =          \
          ::vn2::telemetry::Registry::global().histogram(name);       \
      vn2_telem_metric.record(static_cast<std::uint64_t>(v));         \
    }                                                                 \
  } while (false)

#define VN2_SPAN(name)                                                \
  ::vn2::telemetry::ScopedSpan VN2_TELEM_CONCAT(vn2_telem_span_,      \
                                                __LINE__) { name }

/// Reads the monotonic clock when collecting, else 0. Pair with
/// VN2_HISTOGRAM to time a region without a span record.
#define VN2_CLOCK_NOW() \
  (::vn2::telemetry::collecting() ? ::vn2::telemetry::monotonic_ns() : 0)

#else  // !VN2_TELEMETRY_ENABLED

// Compiled out: arguments are swallowed unevaluated. sizeof keeps the
// expressions "used" so -Werror builds stay clean without side effects.
#define VN2_COUNT_N(name, n) \
  do {                       \
    (void)sizeof(name);      \
    (void)sizeof(n);         \
  } while (false)
#define VN2_GAUGE_SET(name, v) \
  do {                         \
    (void)sizeof(name);        \
    (void)sizeof(v);           \
  } while (false)
#define VN2_HISTOGRAM(name, v) \
  do {                         \
    (void)sizeof(name);        \
    (void)sizeof(v);           \
  } while (false)
#define VN2_SPAN(name) ((void)sizeof(name))
#define VN2_CLOCK_NOW() (std::uint64_t{0})

#endif  // VN2_TELEMETRY_ENABLED

#define VN2_COUNT(name) VN2_COUNT_N(name, 1)
