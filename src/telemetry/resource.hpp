// Process-level resource visibility: peak/current RSS and CPU time, the
// "how much memory and compute did this run actually cost" counterpart to
// the event counters in telemetry.hpp. The samplers are ordinary library
// functions (not macros), so they stay available even when the
// instrumentation macros are compiled out with -DVN2_TELEMETRY=OFF: a
// bench record or `vn2 profile --json` report always carries a resource
// snapshot.
//
// Platform notes: on Linux the RSS figures come from /proc/self/status
// (VmHWM / VmRSS); elsewhere the portable getrusage() fallback provides
// peak RSS and CPU time. On platforms with neither, sample_resources()
// returns a snapshot with `sampled == false` and all-zero fields — callers
// must treat zeros as "unknown", never as "no memory used".
#pragma once

#include <cstdint>
#include <vector>

namespace vn2::telemetry {

/// One point-in-time reading of the process's resource usage.
struct ResourceUsage {
  std::uint64_t peak_rss_bytes = 0;     ///< High-water resident set size.
  std::uint64_t current_rss_bytes = 0;  ///< Resident set size right now
                                        ///< (0 when only getrusage is
                                        ///< available — it has no current).
  std::uint64_t cpu_user_ns = 0;        ///< Process user CPU time.
  std::uint64_t cpu_system_ns = 0;      ///< Process system CPU time.
  bool sampled = false;  ///< False when the platform provided nothing.

  [[nodiscard]] std::uint64_t cpu_total_ns() const noexcept {
    return cpu_user_ns + cpu_system_ns;
  }
};

/// One tick of the time-series ResourceSampler (sampler.hpp): when it was
/// taken and what the process looked like. Unlike ResourceUsage, these are
/// meant to be read as a sequence — RSS over time is what distinguishes a
/// steady plateau from a leak that happens to end below the same peak.
struct ResourceSample {
  std::uint64_t t_ns = 0;  ///< monotonic_ns() when the sample was taken.
  std::uint64_t current_rss_bytes = 0;  ///< 0 = unknown on this platform.
  std::uint64_t cpu_total_ns = 0;       ///< Process user+system CPU time.
  /// Values of the counters the sampler was asked to track, in the order
  /// given in SamplerOptions::counters (empty when none were requested).
  std::vector<std::uint64_t> counters;
};

/// Samples the current process's RSS and CPU usage. Never throws; on
/// unsupported platforms the result has `sampled == false`.
[[nodiscard]] ResourceUsage sample_resources() noexcept;

/// CPU time consumed by the *calling thread*, in nanoseconds, from
/// CLOCK_THREAD_CPUTIME_ID. Returns 0 when the platform cannot provide
/// per-thread CPU time; pair two readings to get a span's CPU cost and
/// compare against its wall-clock duration to see blocking vs compute.
[[nodiscard]] std::uint64_t thread_cpu_ns() noexcept;

}  // namespace vn2::telemetry
