#include "telemetry/calltree.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/contracts.hpp"

namespace vn2::telemetry {

namespace {

/// Mutable tree under construction: children keyed by name, so sibling
/// ordering is deterministic by construction.
struct BuildNode {
  std::uint64_t count = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
  bool measured = false;  ///< False until a path entry lands exactly here.
  std::map<std::string, BuildNode> children;
};

CallTreeNode finish(std::string name, std::string path, BuildNode&& build) {
  CallTreeNode node;
  node.name = std::move(name);
  node.path = std::move(path);
  node.count = build.count;
  std::uint64_t child_wall = 0;
  std::uint64_t child_cpu = 0;
  for (auto& [child_name, child_build] : build.children) {
    CallTreeNode child = finish(child_name, node.path + '/' + child_name,
                                std::move(child_build));
    child_wall += child.wall_ns;
    child_cpu += child.cpu_ns;
    node.children.push_back(std::move(child));
  }
  if (build.measured) {
    node.wall_ns = build.wall_ns;
    node.cpu_ns = build.cpu_ns;
  } else {
    // Synthesized ancestor: its cost is exactly its children's.
    node.wall_ns = child_wall;
    node.cpu_ns = child_cpu;
  }
  // Clamp: children attributed from pool workers overlap in wall time,
  // so their inclusive sum can legitimately exceed the parent's wall.
  node.excl_wall_ns =
      node.wall_ns > child_wall ? node.wall_ns - child_wall : 0;
  node.excl_cpu_ns = node.cpu_ns > child_cpu ? node.cpu_ns - child_cpu : 0;
  return node;
}

void flatten_into(const CallTreeNode& node, std::vector<PathProfile>& out) {
  out.push_back({node.path, node.count, node.wall_ns, node.cpu_ns,
                 node.excl_wall_ns, node.excl_cpu_ns});
  for (const CallTreeNode& child : node.children) flatten_into(child, out);
}

void render_into(const CallTreeNode& node, std::size_t depth,
                 std::string& out) {
  std::string label(depth * 2, ' ');
  label += node.name;
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "  %-36s %8llu %12.3f %12.3f %12.3f\n", label.c_str(),
                static_cast<unsigned long long>(node.count),
                static_cast<double>(node.wall_ns) / 1e6,
                static_cast<double>(node.excl_wall_ns) / 1e6,
                static_cast<double>(node.cpu_ns) / 1e6);
  out += buffer;
  for (const CallTreeNode& child : node.children)
    render_into(child, depth + 1, out);
}

[[noreturn]] void bad_tree(const std::string& what) {
  throw std::runtime_error("telemetry: call_tree: " + what);
}

std::size_t skip_spaces(std::string_view text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0)
    ++pos;
  return pos;
}

std::uint64_t entry_u64(std::string_view entry, std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t at = entry.find(needle);
  if (at == std::string_view::npos)
    bad_tree("entry missing field '" + std::string(key) + "'");
  std::size_t begin = at + needle.size();
  while (begin < entry.size() && entry[begin] == ' ') ++begin;
  std::size_t end = begin;
  while (end < entry.size() &&
         std::isdigit(static_cast<unsigned char>(entry[end])) != 0)
    ++end;
  if (end == begin)
    bad_tree("field '" + std::string(key) + "' is not a number");
  return std::stoull(std::string(entry.substr(begin, end - begin)));
}

}  // namespace

CallTree build_call_tree(const std::vector<SpanStats>& path_stats) {
  BuildNode root;
  for (const SpanStats& stats : path_stats) {
    VN2_CHECK(!stats.name.empty(),
              "call-tree path entries must be non-empty");
    const std::string& path = stats.name;
    BuildNode* node = &root;
    std::size_t begin = 0;
    while (begin <= path.size()) {
      std::size_t end = path.find('/', begin);
      if (end == std::string::npos) end = path.size();
      VN2_CHECK(end > begin,
                "call-tree paths must not contain empty segments");
      node = &node->children[path.substr(begin, end - begin)];
      begin = end + 1;
    }
    node->measured = true;
    node->count += stats.count;
    node->wall_ns += stats.total_ns;
    node->cpu_ns += stats.total_cpu_ns;
  }
  CallTree tree;
  for (auto& [name, build] : root.children)
    tree.roots.push_back(finish(name, name, std::move(build)));
  return tree;
}

std::vector<PathProfile> flatten(const CallTree& tree) {
  std::vector<PathProfile> out;
  for (const CallTreeNode& node : tree.roots) flatten_into(node, out);
  return out;
}

std::string render_call_tree(const CallTree& tree) {
  if (tree.empty()) return "  (no spans recorded)\n";
  char header[192];
  std::snprintf(header, sizeof(header), "  %-36s %8s %12s %12s %12s\n",
                "path", "count", "incl ms", "excl ms", "cpu ms");
  std::string out = header;
  for (const CallTreeNode& node : tree.roots) render_into(node, 0, out);
  return out;
}

std::vector<PathProfile> read_call_tree_json(std::string_view text) {
  VN2_CHECK(!text.empty(), "snapshot text must be non-empty");
  const std::size_t at = text.find("\"call_tree\"");
  if (at == std::string_view::npos)
    bad_tree("no \"call_tree\" section in this snapshot");
  std::size_t pos = text.find('{', at);
  if (pos == std::string_view::npos) bad_tree("section is not an object");
  ++pos;
  std::vector<PathProfile> out;
  while (true) {
    pos = skip_spaces(text, pos);
    if (pos >= text.size()) bad_tree("unterminated section");
    if (text[pos] == '}') break;
    if (text[pos] == ',') {
      ++pos;
      continue;
    }
    if (text[pos] != '"') bad_tree("expected a path key");
    std::string path;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      path += text[pos];
      ++pos;
    }
    if (pos >= text.size()) bad_tree("unterminated path key");
    pos = skip_spaces(text, pos + 1);
    if (pos >= text.size() || text[pos] != ':') bad_tree("expected ':'");
    pos = skip_spaces(text, pos + 1);
    if (pos >= text.size() || text[pos] != '{')
      bad_tree("expected an entry object");
    const std::size_t close = text.find('}', pos);
    if (close == std::string_view::npos) bad_tree("unterminated entry");
    const std::string_view entry = text.substr(pos, close - pos + 1);
    PathProfile profile;
    profile.path = std::move(path);
    profile.count = entry_u64(entry, "count");
    profile.wall_ns = entry_u64(entry, "wall_ns");
    profile.cpu_ns = entry_u64(entry, "cpu_ns");
    profile.excl_wall_ns = entry_u64(entry, "excl_wall_ns");
    profile.excl_cpu_ns = entry_u64(entry, "excl_cpu_ns");
    out.push_back(std::move(profile));
    pos = close + 1;
  }
  return out;
}

}  // namespace vn2::telemetry
