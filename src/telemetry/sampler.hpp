// Time-series resource sampling: a background thread that captures RSS,
// CPU time, and selected counters into a bounded ring buffer at a fixed
// interval — the "43 metrics over time" discipline the paper applies to
// motes, turned on our own process. A point snapshot (resource.hpp) says
// what the process costs *now*; the series says how it got there, which
// is what separates a leak from a plateau and lets bench records carry a
// per-case RSS profile instead of one whole-process high-water mark.
//
// Design rules:
//  * Bounded: the ring holds `capacity` samples; older ones are
//    overwritten, `total_samples()` keeps counting. Memory is fixed at
//    start() time, so a sampler can run for hours.
//  * TSan-clean: ring, flags, and the condition variable share one
//    mutex; stop() joins the thread before returning. Counter reads are
//    the same relaxed atomics every other telemetry reader uses.
//  * No-op under -DVN2_TELEMETRY=OFF: start() returns without spawning a
//    thread, so instrumented builds and kill-switch builds behave
//    identically at the call site (series() just stays empty).
//  * Telemetry never feeds back: the sampler observes /proc and the
//    registry; it mutates neither.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/resource.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::telemetry {

struct SamplerOptions {
  std::uint64_t interval_ms = 25;  ///< Tick period; must be > 0.
  std::size_t capacity = 512;      ///< Ring size in samples; must be > 0.
  /// Registry counters to capture per tick (resolved once at start(), so
  /// a name that does not exist yet is created zeroed).
  std::vector<std::string> counters;
};

/// Background sampler over a bounded ring buffer. start()/stop() are
/// idempotent and may be cycled repeatedly — each window appends into the
/// same ring, which is how a bench brackets every rep of a case with one
/// sampler. Not thread-safe to drive from multiple threads at once; the
/// owning thread starts, stops, and reads.
class ResourceSampler {
 public:
  /// Validates the options (throws std::invalid_argument on a zero
  /// interval or capacity) but allocates nothing until start().
  explicit ResourceSampler(SamplerOptions options = {});
  ~ResourceSampler();
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Spawns the sampling thread (no-op when already running or when the
  /// instrumentation is compiled out). Takes one sample immediately, so
  /// even a window shorter than the interval is never empty.
  void start();

  /// Takes a final sample, stops the thread, and joins it. No-op when
  /// not running. The captured series stays readable afterwards.
  void stop();

  [[nodiscard]] bool running() const;

  /// The retained samples, oldest first (at most `capacity` of them).
  [[nodiscard]] std::vector<ResourceSample> series() const;

  /// Maximum current-RSS seen across every sample ever taken, including
  /// ones the ring has since overwritten. 0 = unknown on this platform.
  [[nodiscard]] std::uint64_t peak_rss_bytes() const;

  /// Samples taken since construction (or the last reset()), including
  /// overwritten ones; total_samples() > series().size() means the ring
  /// wrapped.
  [[nodiscard]] std::uint64_t total_samples() const;

  /// Clears the ring, the peak, and the counters; keeps the options.
  void reset();

  [[nodiscard]] const SamplerOptions& options() const noexcept {
    return options_;
  }

 private:
  void loop();
  void take_sample_locked();

  SamplerOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::vector<ResourceSample> ring_;
  std::size_t next_ = 0;  ///< Overwrite position once the ring is full.
  std::uint64_t total_ = 0;
  std::uint64_t peak_rss_ = 0;
  std::vector<Counter*> tracked_;  ///< Resolved at start(); stable refs.
};

}  // namespace vn2::telemetry
