// Serialization for telemetry snapshots. The library never opens files:
// every writer emits through the Sink interface, and the CLI/bench layer
// owns the actual file handles (vn2-lint io-in-library stays happy).
//
// Three formats:
//  * write_json        — one pretty-printed JSON document (the snapshot
//                        format behind `vn2 ... --telemetry out.json`).
//  * write_json_lines  — one self-describing JSON object per line, easy
//                        to grep/stream; read_json_lines parses it back.
//  * write_trace_events — chrome://tracing / Perfetto "trace_event"
//                        JSON with one complete ("ph":"X") event per raw
//                        span; read_trace_events parses it back.
#pragma once

#include <string>
#include <string_view>

#include "telemetry/telemetry.hpp"

namespace vn2::telemetry {

/// Byte-stream target injected into the serializers.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(std::string_view chunk) = 0;
};

/// Sink that accumulates into a string (tests, JSON embedding in bench).
class StringSink : public Sink {
 public:
  void write(std::string_view chunk) override { out_.append(chunk); }
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  std::string out_;
};

void write_json(Sink& sink, const Snapshot& snapshot);
void write_json_lines(Sink& sink, const Snapshot& snapshot);
void write_trace_events(Sink& sink, const Snapshot& snapshot);

/// Parses the output of write_json_lines back into a Snapshot (counters,
/// gauges, histogram summaries, span stats; raw spans are not part of the
/// json-lines format). Throws std::runtime_error on malformed input.
[[nodiscard]] Snapshot read_json_lines(std::string_view text);

/// Parses the output of write_trace_events back into raw span records.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<SpanRecord> read_trace_events(std::string_view text);

}  // namespace vn2::telemetry
