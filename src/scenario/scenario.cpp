#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "core/contracts.hpp"

namespace vn2::scenario {

using wsn::FaultCommand;
using wsn::Position;
using wsn::Time;

wsn::Simulator ScenarioBundle::make_simulator() const {
  wsn::Simulator sim(config);
  for (const FaultCommand& fault : faults) sim.inject(fault);
  return sim;
}

namespace {

/// Perturbed-grid layout: near-uniform coverage with organic irregularity,
/// sink at the area center (CitySee collects through one TelosB sink).
std::vector<Position> urban_layout(std::size_t count, double area_m,
                                   std::mt19937_64& rng) {
  std::vector<Position> positions;
  positions.reserve(count);
  positions.push_back({area_m / 2.0, area_m / 2.0});  // sink

  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(count))));
  const double cell = area_m / static_cast<double>(side);
  std::uniform_real_distribution<double> jitter(-0.35 * cell, 0.35 * cell);
  for (std::size_t r = 0; r < side && positions.size() < count; ++r) {
    for (std::size_t c = 0; c < side && positions.size() < count; ++c) {
      Position p{(static_cast<double>(c) + 0.5) * cell + jitter(rng),
                 (static_cast<double>(r) + 0.5) * cell + jitter(rng)};
      p.x = std::clamp(p.x, 0.0, area_m);
      p.y = std::clamp(p.y, 0.0, area_m);
      // Keep clear of the sink cell so ids and the layout stay 1:1.
      if (distance(p, positions.front()) < 1.0) p.x += 2.0;
      positions.push_back(p);
    }
  }
  return positions;
}

FaultCommand region_fault(FaultCommand::Type type, Position center,
                          double radius, Time start, Time end,
                          double magnitude) {
  FaultCommand cmd;
  cmd.type = type;
  cmd.center = center;
  cmd.radius_m = radius;
  cmd.start = start;
  cmd.end = end;
  cmd.magnitude = magnitude;
  return cmd;
}

FaultCommand node_fault(FaultCommand::Type type, wsn::NodeId node, Time start,
                        Time end = 0.0, double magnitude = 0.0) {
  FaultCommand cmd;
  cmd.type = type;
  cmd.node = node;
  cmd.start = start;
  cmd.end = end;
  cmd.magnitude = magnitude;
  return cmd;
}

/// Ambient hazards: the "wide range of failures" a deployed WSN encounters.
/// Drawn with fixed per-scenario seeds so traces are reproducible.
void sprinkle_background(ScenarioBundle& bundle, double area_m, Time duration,
                         double hazards_per_day, std::mt19937_64& rng) {
  const auto node_count =
      static_cast<wsn::NodeId>(bundle.config.positions.size());
  std::uniform_real_distribution<double> coord(0.0, area_m);
  std::uniform_int_distribution<wsn::NodeId> any_node(1, node_count - 1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  const auto total = static_cast<std::size_t>(
      hazards_per_day * duration / 86400.0);
  // Leave the first hour alone: the routing tree is still forming.
  std::uniform_real_distribution<double> when(3600.0, duration);

  for (std::size_t i = 0; i < total; ++i) {
    const Time start = when(rng);
    const double kind = unit(rng);
    if (kind < 0.25) {
      // Link fade between a node and whoever routes through it.
      const wsn::NodeId a = any_node(rng);
      wsn::NodeId b = any_node(rng);
      if (b == a) b = (b % (node_count - 1)) + 1;
      FaultCommand cmd = node_fault(FaultCommand::Type::kLinkDegradation, a,
                                    start, start + 1800.0, 12.0);
      cmd.peer = b;
      bundle.faults.push_back(cmd);
    } else if (kind < 0.45) {
      bundle.faults.push_back(region_fault(
          FaultCommand::Type::kNoiseRise, {coord(rng), coord(rng)},
          60.0, start, start + 2400.0, 8.0));
    } else if (kind < 0.60) {
      bundle.faults.push_back(node_fault(FaultCommand::Type::kNodeReboot,
                                         any_node(rng), start));
    } else if (kind < 0.72) {
      bundle.faults.push_back(node_fault(FaultCommand::Type::kForcedLoop,
                                         any_node(rng), start,
                                         start + 1200.0));
    } else if (kind < 0.82) {
      bundle.faults.push_back(region_fault(
          FaultCommand::Type::kCongestionBurst, {coord(rng), coord(rng)},
          50.0, start, start + 900.0, 0.2));
    } else if (kind < 0.92) {
      bundle.faults.push_back(region_fault(
          FaultCommand::Type::kTemperatureSpike, {coord(rng), coord(rng)},
          80.0, start, start + 3600.0, 15.0));
    } else {
      // Strong enough for a clearly visible voltage sag (z ≫ 1 against the
      // ~0 baseline voltage variation), weak enough that even a hot relay
      // survives — ambient hazards must not erode the network permanently;
      // killing a bridge node would partition a sparse deployment for the
      // rest of the run.
      bundle.faults.push_back(node_fault(FaultCommand::Type::kBatteryDrain,
                                         any_node(rng), start,
                                         start + 7200.0, 60.0));
    }
  }
}

}  // namespace

ScenarioBundle citysee_field(const CityseeParams& params) {
  if (params.node_count < 2)
    throw std::invalid_argument("citysee_field: need at least 2 nodes");

  std::mt19937_64 rng(params.seed);
  ScenarioBundle bundle;
  bundle.config.positions =
      urban_layout(params.node_count, params.area_m, rng);
  bundle.config.duration = params.days * 86400.0;
  bundle.config.report_period = params.report_period;
  bundle.config.beacon_period = params.beacon_period;
  bundle.config.seed = params.seed ^ 0xC17e5eeULL;

  if (params.background_hazards) {
    sprinkle_background(bundle, params.area_m, bundle.config.duration,
                        params.hazards_per_day, rng);
  }
  return bundle;
}

ScenarioBundle citysee_with_episode(CityseeEpisodeParams params) {
  if (params.base.days < 3.0) params.base.days = 13.0;
  ScenarioBundle bundle = citysee_field(params.base);

  Time start = params.episode_start;
  Time end = params.episode_end;
  if (start <= 0.0 || end <= start) {
    // Paper: degradation spans days 6–8 of a 13-day window (Sep 20–22 of
    // Sep 14–27).
    start = 6.0 * 86400.0;
    end = 8.0 * 86400.0;
  }

  std::mt19937_64 rng(params.base.seed ^ 0xEB150DEULL);
  const double area = params.base.area_m;
  const auto node_count =
      static_cast<wsn::NodeId>(bundle.config.positions.size());
  std::uniform_real_distribution<double> coord(0.1 * area, 0.9 * area);
  std::uniform_int_distribution<wsn::NodeId> any_node(1, node_count - 1);
  std::uniform_real_distribution<double> when(start, end);

  for (std::size_t i = 0; i < params.loops; ++i) {
    const Time t = when(rng);
    bundle.faults.push_back(node_fault(FaultCommand::Type::kForcedLoop,
                                       any_node(rng), t, t + 5400.0));
  }
  for (std::size_t i = 0; i < params.jammers; ++i) {
    const Time t = when(rng);
    bundle.faults.push_back(region_fault(FaultCommand::Type::kJammer,
                                         {coord(rng), coord(rng)}, 150.0, t,
                                         t + 21600.0, 0.75));
  }
  for (std::size_t i = 0; i < params.congestion_bursts; ++i) {
    const Time t = when(rng);
    bundle.faults.push_back(region_fault(FaultCommand::Type::kCongestionBurst,
                                         {coord(rng), coord(rng)}, 100.0, t,
                                         t + 7200.0, 1.0));
  }
  std::uniform_real_distribution<double> repair_delay(2.0 * 3600.0,
                                                      8.0 * 3600.0);
  for (std::size_t i = 0; i < params.node_failures; ++i) {
    const wsn::NodeId victim = any_node(rng);
    bundle.faults.push_back(node_fault(FaultCommand::Type::kNodeFailure,
                                       victim, when(rng)));
    // Operators repair failed nodes shortly after the episode — the paper's
    // Fig. 6(a) PRR returns to its healthy baseline after Sep 22.
    bundle.faults.push_back(node_fault(FaultCommand::Type::kNodeReboot,
                                       victim, end + repair_delay(rng)));
  }
  return bundle;
}

ScenarioBundle testbed(const TestbedParams& params) {
  std::mt19937_64 rng(params.seed);
  ScenarioBundle bundle;

  // Node 0 (sink) sits just outside the grid edge, like a gateway mote —
  // one spacing from the nearest node and √2 spacings from two more, so a
  // single unlucky shadowing draw cannot sever the whole network.
  bundle.config.positions.push_back({-params.spacing_m, 0.0});
  for (std::size_t r = 0; r < params.grid_rows; ++r)
    for (std::size_t c = 0; c < params.grid_cols; ++c)
      bundle.config.positions.push_back(
          {static_cast<double>(c) * params.spacing_m,
           static_cast<double>(r) * params.spacing_m});

  bundle.config.duration = params.duration;
  bundle.config.report_period = params.report_period;
  bundle.config.beacon_period = params.beacon_period;
  bundle.config.seed = params.seed ^ 0x7e57bedULL;

  const auto node_count =
      static_cast<wsn::NodeId>(bundle.config.positions.size());

  // Removal/re-insert schedule: every cycle remove 5–7 nodes, and put the
  // previous cycle's removals back at the start of the next cycle.
  std::uniform_int_distribution<std::size_t> removal_count(
      params.removals_min, params.removals_max);
  std::vector<wsn::NodeId> previously_removed;
  // Skip cycle 0: the routing tree is still forming.
  for (Time t = params.cycle_period; t + params.cycle_period <= params.duration;
       t += params.cycle_period) {
    // Re-insert last cycle's nodes (node reboot events).
    for (wsn::NodeId id : previously_removed)
      bundle.faults.push_back(
          node_fault(FaultCommand::Type::kNodeReboot, id, t + 5.0));
    previously_removed.clear();

    // Choose this cycle's removals.
    const std::size_t k = removal_count(rng);
    std::vector<wsn::NodeId> candidates;
    if (params.pattern == RemovalPattern::kLocal) {
      // Cluster around a random anchor: pick the k grid-nearest nodes.
      std::uniform_int_distribution<wsn::NodeId> anchor_dist(1, node_count - 1);
      const wsn::NodeId anchor = anchor_dist(rng);
      const Position center = bundle.config.positions[anchor];
      std::vector<wsn::NodeId> all;
      for (wsn::NodeId id = 1; id < node_count; ++id) all.push_back(id);
      std::sort(all.begin(), all.end(), [&](wsn::NodeId a, wsn::NodeId b) {
        return distance(bundle.config.positions[a], center) <
               distance(bundle.config.positions[b], center);
      });
      candidates.assign(all.begin(), all.begin() + static_cast<long>(k));
    } else {
      // Expansive: uniform without replacement across the whole testbed.
      std::vector<wsn::NodeId> all;
      for (wsn::NodeId id = 1; id < node_count; ++id) all.push_back(id);
      std::shuffle(all.begin(), all.end(), rng);
      candidates.assign(all.begin(), all.begin() + static_cast<long>(k));
    }

    // Removals sit mid-cycle, well apart from the re-insertions at the
    // cycle boundary, so failure and reboot manifestations do not overlap
    // in time (the Fig. 5(g) ground-truth comparison needs them separable).
    std::uniform_real_distribution<double> offset(0.45 * params.cycle_period,
                                                  0.55 * params.cycle_period);
    for (wsn::NodeId id : candidates) {
      bundle.faults.push_back(
          node_fault(FaultCommand::Type::kNodeFailure, id, t + offset(rng)));
      previously_removed.push_back(id);
    }
  }
  return bundle;
}

ScenarioBundle tiny(std::size_t count, Time duration, std::uint64_t seed,
                    double spacing_m) {
  VN2_CHECK(count > 0, "scenario::tiny: need at least one node");
  TestbedParams params;
  params.grid_rows = std::max<std::size_t>(1, count / 3);
  params.grid_cols = std::max<std::size_t>(1, (count + params.grid_rows - 1) /
                                                  params.grid_rows);
  params.spacing_m = spacing_m;
  params.duration = duration;
  params.report_period = 60.0;
  params.beacon_period = 10.0;
  params.cycle_period = duration * 2;  // No removals by default.
  params.seed = seed;
  ScenarioBundle bundle = testbed(params);
  bundle.faults.clear();
  return bundle;
}

}  // namespace vn2::scenario
