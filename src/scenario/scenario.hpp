// Reproducible experiment scenarios.
//
//  * citysee_field      — a 286-node CitySee-like urban deployment reporting
//                         every 10 minutes for N days, with ambient
//                         background hazards so the history logs contain the
//                         natural exceptions VN2 trains on (paper §III-C).
//  * citysee_with_episode — the Fig. 6 field study: a longer run with a
//                         scripted multi-fault degradation window (routing
//                         loops + contention + node failures), the paper's
//                         "Sep 20–22" PRR dip.
//  * testbed            — the Fig. 5 testbed: 45 TelosB nodes on a 9×5 grid,
//                         3-minute reports, two hours, with nodes removed
//                         and re-inserted every 10 minutes. Removal can be
//                         local (scenario 1) or expansive (scenario 2).
#pragma once

#include <cstdint>
#include <vector>

#include "wsn/faults.hpp"
#include "wsn/simulator.hpp"

namespace vn2::scenario {

/// A ready-to-run experiment: simulator config + fault schedule.
struct ScenarioBundle {
  wsn::SimConfig config;
  std::vector<wsn::FaultCommand> faults;

  /// Builds the simulator and injects every fault.
  [[nodiscard]] wsn::Simulator make_simulator() const;
};

// ---------------------------------------------------------------------------

struct CityseeParams {
  std::size_t node_count = 286;
  /// Square deployment area side. 500 m at 286 nodes makes marginal links
  /// the norm, giving the ~0.85 baseline PRR texture of the real CitySee.
  double area_m = 500.0;
  double days = 7.0;
  wsn::Time report_period = 600.0;
  wsn::Time beacon_period = 120.0;
  std::uint64_t seed = 20110801;  ///< Paper: data from Aug. 1, 2011.
  /// Sprinkle ambient hazards (link fades, noise, reboots, loops, bursts)
  /// through the run so exception states exist to learn from.
  bool background_hazards = true;
  /// Average background hazards injected per simulated day.
  double hazards_per_day = 12.0;
};

ScenarioBundle citysee_field(const CityseeParams& params = {});

struct CityseeEpisodeParams {
  CityseeParams base;            ///< base.days is the total run length.
  wsn::Time episode_start = 0.0; ///< Defaults set in the builder if zero.
  wsn::Time episode_end = 0.0;
  /// Fault mix inside the episode window (counts). Failed nodes are
  /// repaired (rebooted) a few hours after the window so PRR recovers to
  /// baseline, as in the paper's Fig. 6(a).
  std::size_t loops = 18;
  std::size_t jammers = 10;
  std::size_t node_failures = 15;
  std::size_t congestion_bursts = 6;
};

/// Fig. 6: a 13-day run whose middle window (days 6–8 unless overridden)
/// carries the scripted loop/contention/failure episode.
ScenarioBundle citysee_with_episode(CityseeEpisodeParams params = {});

// ---------------------------------------------------------------------------

enum class RemovalPattern : std::uint8_t {
  kLocal,      ///< Scenario 1: removals clustered in one area.
  kExpansive,  ///< Scenario 2: removals spread across the whole testbed.
};

struct TestbedParams {
  std::size_t grid_rows = 9;
  std::size_t grid_cols = 5;
  double spacing_m = 7.0;
  wsn::Time report_period = 180.0;  ///< Paper: every three minutes.
  wsn::Time beacon_period = 30.0;
  wsn::Time duration = 2.0 * 3600.0;
  /// Every cycle_period, remove `removals_per_cycle` nodes; re-insert some
  /// of them the following cycle (paper: 5–7 nodes every 10 minutes).
  wsn::Time cycle_period = 600.0;
  std::size_t removals_min = 5;
  std::size_t removals_max = 7;
  RemovalPattern pattern = RemovalPattern::kExpansive;
  std::uint64_t seed = 1340;  ///< Paper: experiments start at 13:40.
};

ScenarioBundle testbed(const TestbedParams& params = {});

/// Small network for unit/integration tests: `count` nodes in a grid.
/// The default 8 m spacing keeps everything within one or two hops of the
/// sink; spacing ≳ 16 m forces genuinely multi-hop routes (needed to
/// exercise loops, relay failures, and forwarding behaviour).
ScenarioBundle tiny(std::size_t count = 9, wsn::Time duration = 1800.0,
                    std::uint64_t seed = 7, double spacing_m = 8.0);

}  // namespace vn2::scenario
