// The trained VN2 model and its training pipeline.
//
// Training (paper §IV): raw network states → signed-deviation encoding →
// exception extraction (ε rule) → NMF at the chosen compression factor r →
// the representative matrix Ψ whose rows are root-cause vectors. When no
// rank is given, the Fig. 3(b) sweep picks one (dense-vs-sparse accuracy).
//
// The model keeps the training encoder (per-metric mean/std of variations)
// and the training maximum of the ε score, so fresh states can be judged
// normal/abnormal online with exactly the training-time rule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/exception_detection.hpp"
#include "linalg/matrix.hpp"
#include "nmf/nmf.hpp"
#include "nmf/rank_selection.hpp"
#include "nmf/sparsify.hpp"

namespace vn2::core {

class Vn2Model {
 public:
  Vn2Model() = default;
  Vn2Model(linalg::Matrix psi, StateEncoder encoder, double train_max_score,
           double exception_threshold);

  /// Representative matrix: r × 86, encoded space (see StateEncoder).
  [[nodiscard]] const linalg::Matrix& psi() const noexcept { return psi_; }
  [[nodiscard]] const StateEncoder& encoder() const noexcept {
    return encoder_;
  }
  [[nodiscard]] std::size_t rank() const noexcept { return psi_.rows(); }
  [[nodiscard]] bool trained() const noexcept { return psi_.rows() > 0; }

  /// Signed 43-metric profile (σ units) of root-cause vector `row` — the
  /// paper's Fig. 4 style view of Ψ.
  [[nodiscard]] linalg::Vector root_cause_profile(std::size_t row) const;

  /// ε-score of a raw state against the training distribution.
  [[nodiscard]] double exception_score(const linalg::Vector& raw_state) const;
  /// True when the training-time ε rule flags the state as an exception.
  [[nodiscard]] bool is_exception(const linalg::Vector& raw_state) const;

  [[nodiscard]] double train_max_score() const noexcept {
    return train_max_score_;
  }
  [[nodiscard]] double exception_threshold() const noexcept {
    return exception_threshold_;
  }

  /// Persistence (plain text, versioned). Throws std::runtime_error on IO
  /// or format errors.
  void save(const std::string& path) const;
  static Vn2Model load(const std::string& path);

  bool operator==(const Vn2Model&) const = default;

 private:
  linalg::Matrix psi_;  ///< r × 86, encoded space.
  StateEncoder encoder_;
  double train_max_score_ = 0.0;
  double exception_threshold_ = 0.01;
};

struct TrainingOptions {
  /// Compression factor r; 0 = auto-select via the rank sweep.
  std::size_t rank = 0;
  /// Candidate ranks for auto-selection (default 5, 10, ..., 40).
  std::vector<std::size_t> candidate_ranks;
  /// ε rule: a state is an exception when ε_u / max(ε) ≥ threshold.
  /// The paper uses 0.01 on raw (unstandardized) deviations, where the
  /// hugely different metric scales stretch the ratio axis; our ε is
  /// computed on σ-normalized clipped deviations, which compresses it.
  /// 0.30 reproduces the paper's exception density (≈2.5% of states) on
  /// CitySee-scale simulated traces.
  double exception_threshold = 0.30;
  /// Skip exception extraction and factorize all states — the paper does
  /// this for the small testbed trace where normal data cannot drown the
  /// exceptions.
  bool skip_exception_extraction = false;
  /// Outlier cap for the deviation encoding (σ units).
  double clip_sigma = 12.0;
  nmf::NmfOptions nmf;
  nmf::SparsifyOptions sparsify;
};

struct TrainingReport {
  Vn2Model model;
  nmf::NmfResult nmf;                      ///< Factorization at chosen rank.
  ExceptionDetectionResult detection;      ///< ε scores + flagged rows.
  std::vector<nmf::RankPoint> rank_sweep;  ///< Non-empty when auto-selected.
  std::size_t chosen_rank = 0;
  std::size_t training_states = 0;
  std::size_t exception_states = 0;
};

/// Trains from a raw state matrix (n × 43).
/// Throws std::invalid_argument on empty input, no detected exceptions, or
/// rank larger than the exception matrix allows.
TrainingReport train(const linalg::Matrix& raw_states,
                     const TrainingOptions& options = {});

}  // namespace vn2::core
