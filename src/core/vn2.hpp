// VN2 — public façade.
//
// Typical use:
//
//   auto bundle = scenario::citysee_field();
//   auto sim = bundle.make_simulator();
//   auto trace = trace::build_trace(sim.run());
//   auto tool = core::Vn2Tool::train_from_trace(trace);
//   for (auto& state : trace::extract_states(fresh_trace)) {
//     auto explanation = tool.explain(state.delta);
//     if (explanation.diagnosis.is_exception) std::cout << explanation.text;
//   }
//
// Lower-level pieces (exception detection, NMF, NNLS, interpretation) are
// all public too — see the sibling headers.
#pragma once

#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/exception_detection.hpp"
#include "core/inference.hpp"
#include "core/interpretation.hpp"
#include "core/model.hpp"
#include "trace/trace.hpp"

namespace vn2::core {

class Vn2Tool {
 public:
  struct Options {
    TrainingOptions training;
    DiagnoseOptions diagnose;
    InterpretOptions interpret;
  };

  /// Trains on all states extracted from a trace.
  /// Throws std::invalid_argument when the trace yields too few states.
  static Vn2Tool train_from_trace(const trace::Trace& trace,
                                  const Options& options = {});

  /// Trains on pre-extracted states.
  static Vn2Tool train_from_states(const std::vector<trace::StateVector>& states,
                                   const Options& options = {});

  /// Trains on a raw n × 43 state matrix.
  static Vn2Tool train_from_matrix(const linalg::Matrix& states,
                                   const Options& options = {});

  /// Wraps an existing (e.g. loaded) model; interpretations are recomputed.
  static Vn2Tool from_model(Vn2Model model, const Options& options = {});

  [[nodiscard]] const Vn2Model& model() const noexcept { return model_; }
  [[nodiscard]] const TrainingReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] const std::vector<RootCauseInterpretation>& interpretations()
      const noexcept {
    return interpretations_;
  }

  /// Diagnoses one raw state (43 metric diffs).
  [[nodiscard]] Diagnosis diagnose_state(const linalg::Vector& raw) const;

  /// Diagnoses a batch of raw states (n × 43) across the global worker
  /// pool; entry i equals diagnose_state(row i) at any thread count.
  [[nodiscard]] std::vector<Diagnosis> diagnose_states(
      const linalg::Matrix& raw) const;

  /// A diagnosis joined with interpretation into a readable report.
  struct Explanation {
    Diagnosis diagnosis;
    /// Active causes with their interpretations, strongest first.
    std::vector<std::pair<const RootCauseInterpretation*, double>> causes;
    std::string text;
  };
  [[nodiscard]] Explanation explain(const linalg::Vector& raw) const;

 private:
  Options options_;
  Vn2Model model_;
  TrainingReport report_;
  std::vector<RootCauseInterpretation> interpretations_;
};

}  // namespace vn2::core
