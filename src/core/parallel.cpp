#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "telemetry/telemetry.hpp"

namespace vn2::core {

namespace {

thread_local bool t_inside_worker = false;

// One parallel region in flight: tasks are claimed by atomic increment, so
// a fast worker takes more chunks than a slow one without any rebalancing
// logic; `stop` short-circuits claims after the first exception.
struct Batch {
  std::size_t tasks = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::mutex mutex;
  std::condition_variable done;
  std::size_t helpers_left = 0;
  std::exception_ptr error;

  // Timing wrapper: one busy-time sample per participant per region, so
  // the spread of parallel.worker_busy_ns is the imbalance signal.
  void work() {
    const std::uint64_t busy_start = VN2_CLOCK_NOW();
    run_tasks();
    if (busy_start != 0) {
      VN2_COUNT("parallel.participants");
      VN2_HISTOGRAM("parallel.worker_busy_ns",
                    telemetry::monotonic_ns() - busy_start);
    }
  }

  void run_tasks() {
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) return;
      const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= tasks) return;
      try {
        (*fn)(task);
      } catch (...) {
        stop.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;

  auto batch = std::make_shared<Batch>();
  batch->tasks = tasks;
  batch->fn = &fn;  // Valid: run() blocks until every helper finished.

  const std::size_t helpers = std::min(workers_.size(), tasks);
  batch->helpers_left = helpers;
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < helpers; ++i) {
        queue_.emplace_back([batch] {
          batch->work();
          {
            std::lock_guard<std::mutex> batch_lock(batch->mutex);
            --batch->helpers_left;
          }
          batch->done.notify_one();
        });
      }
    }
    work_ready_.notify_all();
  }

  batch->work();  // The caller is a full participant.

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock, [&] { return batch->helpers_left == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

bool ThreadPool::inside_worker() noexcept { return t_inside_worker; }

namespace {

std::size_t default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::mutex g_pool_mutex;
// Read on every potentially-parallel call site (e.g. each matmul), so it is
// an atomic rather than being guarded by the pool mutex. 0 = not yet
// resolved, use the hardware default.
std::atomic<std::size_t> g_num_threads{0};
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

void set_num_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  const std::size_t budget = n == 0 ? default_threads() : n;
  g_num_threads.store(budget, std::memory_order_relaxed);
  if (g_pool && g_pool->workers() != budget - 1) g_pool.reset();
}

std::size_t num_threads() noexcept {
  const std::size_t budget = g_num_threads.load(std::memory_order_relaxed);
  return budget == 0 ? default_threads() : budget;
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  const std::size_t budget = num_threads();
  if (!g_pool || g_pool->workers() != budget - 1)
    g_pool = std::make_unique<ThreadPool>(budget - 1);
  return *g_pool;
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t chunk = std::max<std::size_t>(grain, 1);
  if (n <= chunk || num_threads() <= 1 || ThreadPool::inside_worker()) {
    VN2_COUNT("parallel.regions_inline");
    VN2_COUNT_N("parallel.tasks", 1);
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = (n + chunk - 1) / chunk;
  VN2_COUNT("parallel.regions");
  VN2_COUNT_N("parallel.tasks", chunks);
  // Workers inherit the submitting thread's span path, so spans opened
  // inside fn() attribute to the enclosing call tree instead of showing
  // up as roots. The submitting thread itself still owns its path, and
  // SpanPathScope refuses the prefix there (its span depth is nonzero).
  const std::string parent_path = telemetry::current_span_path();
  global_pool().run(chunks, [&](std::size_t c) {
    telemetry::SpanPathScope scope(parent_path);
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace vn2::core
