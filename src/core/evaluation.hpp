// Scoring diagnoses against injected ground truth.
//
// The simulator records every injected fault (hazard class, time window,
// blast radius). A diagnosis pipeline turns trace states into per-state
// hazard predictions (via Ψ-row interpretation). This module matches the
// two at network level: within each fault's (slack-padded) window, did the
// pipeline report the fault's hazard class? And how much of what it reported
// corresponds to anything that was actually injected?
#pragma once

#include <map>
#include <vector>

#include "core/inference.hpp"
#include "core/interpretation.hpp"
#include "trace/trace.hpp"
#include "wsn/faults.hpp"

namespace vn2::core {

struct EvalOptions {
  /// Predictions within ±slack of a fault window still count for it.
  wsn::Time window_slack = 1200.0;
  /// Per-state: hazards of Ψ rows whose strength ≥ fraction · top strength.
  double strength_fraction = 0.3;
  /// A state only votes if the ε rule flags it.
  bool exceptions_only = true;
  /// Match predictions to faults at HazardClass granularity (a jammer and a
  /// noise rise are the same manifestation). False = exact hazard identity.
  bool match_by_class = true;
};

/// A hazard predicted at a moment in time (by some state's diagnosis).
struct HazardPrediction {
  wsn::Time time = 0.0;
  wsn::NodeId node = wsn::kInvalidNode;
  metrics::HazardEvent hazard{};
  double strength = 0.0;
};

/// Turns diagnoses into hazard predictions using the Ψ interpretations.
std::vector<HazardPrediction> predict_hazards(
    const std::vector<trace::StateVector>& states,
    const std::vector<Diagnosis>& diagnoses,
    const std::vector<RootCauseInterpretation>& interpretations,
    const EvalOptions& options = {});

struct HazardScore {
  std::size_t injected = 0;   ///< Ground-truth faults of this hazard.
  std::size_t detected = 0;   ///< ... whose window contained a matching prediction.
  std::size_t predicted = 0;  ///< Predictions of this hazard overall.
  std::size_t matched = 0;    ///< ... that fell inside a matching fault window.

  [[nodiscard]] double recall() const noexcept {
    return injected ? static_cast<double>(detected) / injected : 1.0;
  }
  [[nodiscard]] double precision() const noexcept {
    return predicted ? static_cast<double>(matched) / predicted : 1.0;
  }
};

struct EvalReport {
  std::map<metrics::HazardEvent, HazardScore> per_hazard;
  double macro_recall = 0.0;     ///< Mean recall over injected hazard classes.
  double macro_precision = 0.0;  ///< Mean precision over predicted classes.
};

/// Matches predictions against ground truth.
EvalReport evaluate(const std::vector<HazardPrediction>& predictions,
                    const std::vector<wsn::InjectedFault>& ground_truth,
                    const EvalOptions& options = {});

}  // namespace vn2::core
