// Dependency-free parallel execution layer.
//
// A reusable ThreadPool plus a deterministic parallel_for built on
// std::thread — the substrate for the analysis hot paths (row-parallel
// matmul, the rank sweep, batch diagnosis, batch simulation). Design rules:
//
//  * Determinism: parallel_for partitions [begin, end) into fixed chunks
//    and every index is visited exactly once; callers that write only to
//    index-owned slots (output row i, sweep slot k, ...) produce results
//    bit-identical to the serial loop, at any thread count.
//  * `set_num_threads(1)` (or a single-core machine) reproduces today's
//    serial behaviour exactly: parallel_for degenerates to a plain loop on
//    the calling thread and no pool is ever created.
//  * No nested parallelism: a parallel_for issued from inside a pool worker
//    runs serially inline, so e.g. the matmuls inside a parallelized rank
//    sweep do not oversubscribe the pool (and cannot deadlock it).
//  * Exception safety: the first exception thrown by any task is captured
//    and rethrown on the calling thread after all in-flight tasks drain;
//    the pool itself stays usable.
//
// This header lives in core/ but deliberately depends on nothing else in
// VN2 (it is its own little library, vn2_parallel), so the lower layers
// (linalg, nmf) can use it without a dependency cycle.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vn2::core {

/// A fixed-size pool of worker threads executing queued jobs. The calling
/// thread always participates in `run`, so a pool of W workers gives W + 1
/// threads of execution.
class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: `run` then executes everything
  /// on the calling thread).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding the caller).
  [[nodiscard]] std::size_t workers() const noexcept {
    return workers_.size();
  }

  /// Runs `fn(task)` for every task in [0, tasks), distributing tasks over
  /// the workers and the calling thread; blocks until every task finished.
  /// If any task throws, remaining unclaimed tasks are abandoned and the
  /// first exception is rethrown here once in-flight tasks drain. The pool
  /// remains usable afterwards.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is a worker of *any* ThreadPool — used to
  /// suppress nested parallelism.
  [[nodiscard]] static bool inside_worker() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Sets the global thread budget for all VN2 parallel regions. `n` counts
/// total threads of execution (1 = fully serial); 0 resets to
/// `std::thread::hardware_concurrency()`. Call from the main thread outside
/// any parallel region (the CLI does this once at startup from `--threads`).
void set_num_threads(std::size_t n);

/// Current global thread budget (≥ 1).
[[nodiscard]] std::size_t num_threads() noexcept;

/// The process-wide pool backing parallel_for, sized to `num_threads() - 1`
/// workers. Created lazily on first use; resized on the next use after
/// set_num_threads changes the budget.
ThreadPool& global_pool();

/// Calls `fn(i)` for every i in [begin, end) exactly once. Work is split
/// into chunks of `grain` consecutive indices (grain 0 is treated as 1) and
/// the chunks are executed on the global pool. Runs serially inline when
/// the budget is 1, when the range fits in a single chunk, or when already
/// inside a pool worker. Exceptions from `fn` propagate to the caller.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

}  // namespace vn2::core
