#include "core/incident.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace vn2::core {

namespace {

struct Member {
  const trace::StateVector* state;
  const Diagnosis* diagnosis;
};

Incident build_incident(
    const std::vector<Member>& members,
    const std::vector<RootCauseInterpretation>& interpretations,
    const IncidentOptions& options,
    const std::vector<wsn::Position>& positions) {
  Incident incident;
  incident.start = members.front().state->time;
  incident.end = members.back().state->time;
  incident.state_count = members.size();

  // Affected nodes.
  for (const Member& member : members)
    incident.nodes.push_back(member.state->node);
  std::sort(incident.nodes.begin(), incident.nodes.end());
  incident.nodes.erase(
      std::unique(incident.nodes.begin(), incident.nodes.end()),
      incident.nodes.end());

  // Mean strength profile.
  const std::size_t rank = members.front().diagnosis->weights.size();
  incident.strength_profile = linalg::Vector(rank);
  for (const Member& member : members)
    for (std::size_t r = 0; r < rank; ++r)
      incident.strength_profile[r] += member.diagnosis->weights[r];
  incident.strength_profile *= 1.0 / static_cast<double>(members.size());

  // Evidence mass per hazard: each member's active rows vote with their
  // strength, routed through the row's top hazard label.
  std::map<metrics::HazardEvent, double> mass;
  double total_mass = 0.0;
  for (const Member& member : members) {
    if (member.diagnosis->ranked.empty()) continue;
    const double top = member.diagnosis->ranked.front().strength;
    for (const RankedCause& cause : member.diagnosis->ranked) {
      if (cause.strength < options.strength_fraction * top) break;
      if (cause.row >= interpretations.size())
        throw std::invalid_argument(
            "aggregate_incidents: interpretation missing for a psi row");
      const RootCauseInterpretation& interp = interpretations[cause.row];
      if (!interp.has_label()) continue;
      mass[interp.top_hazard()] += cause.strength;
      total_mass += cause.strength;
    }
  }
  if (total_mass > 0.0) {
    for (const auto& [hazard, value] : mass) {
      const double share = value / total_mass;
      if (share >= options.min_cause_share)
        incident.causes.push_back({hazard, share});
    }
    std::sort(incident.causes.begin(), incident.causes.end(),
              [](const IncidentCause& a, const IncidentCause& b) {
                return a.share > b.share;
              });
  }

  // Spatial localization: evidence-weighted centroid of affected nodes
  // (each member state votes with its exception score weight 1).
  if (!positions.empty()) {
    double cx = 0.0, cy = 0.0;
    for (const Member& member : members) {
      const wsn::Position& p = positions.at(member.state->node);
      cx += p.x;
      cy += p.y;
    }
    incident.center = {cx / static_cast<double>(members.size()),
                       cy / static_cast<double>(members.size())};
    double rms = 0.0;
    for (const Member& member : members) {
      const double d =
          wsn::distance(positions.at(member.state->node), incident.center);
      rms += d * d;
    }
    incident.radius_m = std::sqrt(rms / static_cast<double>(members.size()));
    incident.localized = true;
  }

  std::ostringstream ss;
  ss << "incident [" << incident.start << "s, " << incident.end << "s] "
     << incident.nodes.size() << " nodes, " << incident.state_count
     << " exception states;";
  if (incident.localized)
    ss << " near (" << static_cast<int>(incident.center.x) << ","
       << static_cast<int>(incident.center.y) << ") r~"
       << static_cast<int>(incident.radius_m) << "m;";
  if (incident.causes.empty()) {
    ss << " no labelled cause";
  } else {
    ss << " causes:";
    for (std::size_t i = 0; i < std::min<std::size_t>(3, incident.causes.size());
         ++i) {
      ss << ' ' << metrics::hazard_name(incident.causes[i].hazard) << '('
         << static_cast<int>(100.0 * incident.causes[i].share) << "%)";
    }
  }
  incident.summary = ss.str();
  return incident;
}

}  // namespace

std::vector<Incident> aggregate_incidents(
    const std::vector<trace::StateVector>& states,
    const std::vector<Diagnosis>& diagnoses,
    const std::vector<RootCauseInterpretation>& interpretations,
    const IncidentOptions& options,
    const std::vector<wsn::Position>& positions) {
  if (states.size() != diagnoses.size())
    throw std::invalid_argument(
        "aggregate_incidents: states/diagnoses size mismatch");

  // Collect exception members, time-ordered.
  std::vector<Member> members;
  for (std::size_t i = 0; i < states.size(); ++i)
    if (diagnoses[i].is_exception) members.push_back({&states[i], &diagnoses[i]});
  std::sort(members.begin(), members.end(),
            [](const Member& a, const Member& b) {
              return a.state->time < b.state->time;
            });

  std::vector<Incident> incidents;

  if (options.spatial_gap_m > 0.0 && !positions.empty()) {
    // Spatio-temporal clustering: fixed merge_gap-long time windows →
    // spatial components per window → stitch components across consecutive
    // windows when their centroids stay within the spatial gap.
    struct OpenIncident {
      std::vector<Member> members;
      wsn::Position centroid;
      std::size_t last_window = 0;
    };
    std::vector<OpenIncident> open;

    auto centroid_of = [&](const std::vector<Member>& group) {
      wsn::Position c{0.0, 0.0};
      for (const Member& member : group) {
        const wsn::Position& p = positions.at(member.state->node);
        c.x += p.x;
        c.y += p.y;
      }
      c.x /= static_cast<double>(group.size());
      c.y /= static_cast<double>(group.size());
      return c;
    };
    auto close_incident = [&](OpenIncident& incident) {
      // min_states applies to the whole stitched incident.
      if (incident.members.size() >= options.min_states)
        incidents.push_back(build_incident(incident.members, interpretations,
                                           options, positions));
    };

    const wsn::Time window = std::max(options.merge_gap, 1.0);
    std::size_t i = 0;
    std::size_t window_index = 0;
    while (i < members.size()) {
      // Gather this window's members.
      window_index =
          static_cast<std::size_t>(members[i].state->time / window);
      const wsn::Time window_end =
          static_cast<double>(window_index + 1) * window;
      std::vector<Member> bucket;
      while (i < members.size() && members[i].state->time < window_end)
        bucket.push_back(members[i++]);

      // Spatial components within the window (union-find, single linkage).
      std::vector<std::size_t> parent(bucket.size());
      for (std::size_t k = 0; k < parent.size(); ++k) parent[k] = k;
      std::function<std::size_t(std::size_t)> find =
          [&](std::size_t x) -> std::size_t {
        while (parent[x] != x) {
          parent[x] = parent[parent[x]];
          x = parent[x];
        }
        return x;
      };
      for (std::size_t a = 0; a < bucket.size(); ++a)
        for (std::size_t b = a + 1; b < bucket.size(); ++b)
          if (wsn::distance(positions.at(bucket[a].state->node),
                            positions.at(bucket[b].state->node)) <=
              options.spatial_gap_m)
            parent[find(a)] = find(b);
      std::map<std::size_t, std::vector<Member>> components;
      for (std::size_t k = 0; k < bucket.size(); ++k)
        components[find(k)].push_back(bucket[k]);

      // Close incidents not continued in the previous window.
      for (OpenIncident& candidate : open) {
        if (candidate.last_window + 1 < window_index) {
          close_incident(candidate);
          candidate.members.clear();
        }
      }
      std::erase_if(open, [](const OpenIncident& o) {
        return o.members.empty();
      });

      // Attach each component to the nearest open incident, or open anew.
      for (auto& [root, group] : components) {
        const wsn::Position c = centroid_of(group);
        OpenIncident* best = nullptr;
        double best_distance = options.spatial_gap_m;
        for (OpenIncident& candidate : open) {
          const double d = wsn::distance(candidate.centroid, c);
          if (d <= best_distance) {
            best_distance = d;
            best = &candidate;
          }
        }
        if (best) {
          best->members.insert(best->members.end(), group.begin(),
                               group.end());
          best->centroid = centroid_of(best->members);
          best->last_window = window_index;
        } else {
          open.push_back({std::move(group), c, window_index});
        }
      }
    }
    for (OpenIncident& candidate : open) close_incident(candidate);
    // build_incident assumes time-ordered members for start/end; stitched
    // groups are window-ordered already, but sort defensively.
    std::sort(incidents.begin(), incidents.end(),
              [](const Incident& a, const Incident& b) {
                return a.start < b.start;
              });
    return incidents;
  }

  // Plain temporal clustering with the merge gap.
  std::vector<Member> cluster;
  auto flush = [&] {
    if (cluster.size() >= options.min_states)
      incidents.push_back(
          build_incident(cluster, interpretations, options, positions));
    cluster.clear();
  };
  for (const Member& member : members) {
    if (!cluster.empty() &&
        member.state->time - cluster.back().state->time > options.merge_gap)
      flush();
    cluster.push_back(member);
  }
  flush();
  return incidents;
}

}  // namespace vn2::core
