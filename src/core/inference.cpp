#include "core/inference.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/contracts.hpp"
#include "core/parallel.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::core {

using linalg::Matrix;
using linalg::Vector;

namespace {

// One diagnosis against a pre-transposed Ψᵀ, so batch callers pay for the
// transpose once instead of once per state. The workspace recycles the
// NNLS scratch across states (warm == cold bit-for-bit, see nnls.hpp).
Diagnosis diagnose_against(const Matrix& psi_t, const Vn2Model& model,
                           const Vector& raw_state,
                           const DiagnoseOptions& options,
                           linalg::NnlsWorkspace& workspace) {
  Diagnosis diagnosis;
  diagnosis.exception_score = model.exception_score(raw_state);
  diagnosis.is_exception = model.is_exception(raw_state);

  // NNLS against A = Ψᵀ (86 × r), b = encoded state.
  const Vector encoded = model.encoder().encode(raw_state);
  linalg::NnlsResult solution =
      linalg::nnls(psi_t, encoded, options.nnls, workspace);
  diagnosis.weights = std::move(solution.x);
  diagnosis.residual = solution.residual_norm;

  double top = 0.0;
  for (std::size_t r = 0; r < diagnosis.weights.size(); ++r)
    top = std::max(top, diagnosis.weights[r]);
  const double floor = top * options.strength_floor_fraction;
  for (std::size_t r = 0; r < diagnosis.weights.size(); ++r)
    if (diagnosis.weights[r] > floor && diagnosis.weights[r] > 0.0)
      diagnosis.ranked.push_back({r, diagnosis.weights[r]});
  std::sort(diagnosis.ranked.begin(), diagnosis.ranked.end(),
            [](const RankedCause& a_, const RankedCause& b_) {
              return a_.strength > b_.strength;
            });
  VN2_ASSERT(diagnosis.weights.size() == model.rank(),
             "diagnose: one correlation strength per root cause");
  VN2_ASSERT(diagnosis.ranked.size() <= diagnosis.weights.size(),
             "diagnose: ranked causes are a subset of the weights");
  return diagnosis;
}

// Cold-workspace convenience for the one-shot paths.
Diagnosis diagnose_against(const Matrix& psi_t, const Vn2Model& model,
                           const Vector& raw_state,
                           const DiagnoseOptions& options) {
  linalg::NnlsWorkspace workspace;
  return diagnose_against(psi_t, model, raw_state, options, workspace);
}

void check_batch_input(const Vn2Model& model, const Matrix& raw_states,
                       const char* who) {
  if (!model.trained())
    throw std::invalid_argument(std::string(who) + ": model is not trained");
  VN2_CHECK(raw_states.cols() == metrics::kMetricCount,
            "batch states must match the 43-metric schema");
}

}  // namespace

Diagnosis diagnose(const Vn2Model& model, const Vector& raw_state,
                   const DiagnoseOptions& options) {
  if (!model.trained())
    throw std::invalid_argument("diagnose: model is not trained");
  VN2_CHECK(raw_state.size() == metrics::kMetricCount,
            "diagnose: state vector must match the 43-metric schema");
  return diagnose_against(linalg::transpose(model.psi()), model, raw_state,
                          options);
}

std::vector<Diagnosis> diagnose_batch(const Vn2Model& model,
                                      const Matrix& raw_states,
                                      const DiagnoseOptions& options) {
  check_batch_input(model, raw_states, "diagnose_batch");
  VN2_SPAN("vn2.diagnose_batch");
  VN2_COUNT_N("vn2.states.diagnosed", raw_states.rows());
  const Matrix a = linalg::transpose(model.psi());
  // Each state's NNLS is independent; slot i is written only by task i, so
  // the batch matches the serial per-state loop at any thread count.
  std::vector<Diagnosis> diagnoses(raw_states.rows());
  parallel_for(0, raw_states.rows(), 8, [&](std::size_t i) {
    diagnoses[i] =
        diagnose_against(a, model, raw_states.row_vector(i), options);
  });
  return diagnoses;
}

StreamReport diagnose_stream(const Vn2Model& model, const Matrix& raw_states,
                             const StreamOptions& options,
                             const DiagnosisSink& sink) {
  check_batch_input(model, raw_states, "diagnose_stream");
  VN2_CHECK(options.batch_size > 0, "diagnose_stream: batch_size must be > 0");
  VN2_CHECK(options.chunk > 0, "diagnose_stream: chunk must be > 0");
  VN2_SPAN("vn2.diagnose_stream");
  const std::size_t total = raw_states.rows();
  VN2_COUNT_N("vn2.states.diagnosed", total);

  const Matrix a = linalg::transpose(model.psi());
  // The bounded queue: one batch of Diagnosis slots, recycled every
  // iteration (slot vectors keep their heap capacity), so the stream's
  // memory footprint is O(batch_size) however many states flow through.
  std::vector<Diagnosis> batch(std::min(options.batch_size, total));
  // One NNLS workspace per chunk slot. Chunk c is task c of the
  // parallel_for, so workspace c is index-owned (race-free) and — because
  // a warm workspace solves bit-identically to a cold one — reusing it
  // across chunks' states and across batches never changes a result, it
  // only amortizes the allocations away.
  const std::size_t chunk = options.chunk;
  const std::size_t slots = (batch.size() + chunk - 1) / chunk;
  std::vector<linalg::NnlsWorkspace> workspaces(slots);

  StreamReport report;
  for (std::size_t first = 0; first < total; first += batch.size()) {
    const std::size_t count = std::min(batch.size(), total - first);
    const std::size_t chunks = (count + chunk - 1) / chunk;
    VN2_SPAN("vn2.diagnose_stream.batch");
    parallel_for(0, chunks, 1, [&](std::size_t c) {
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i)
        batch[i] = diagnose_against(a, model,
                                    raw_states.row_vector(first + i),
                                    options.diagnose, workspaces[c]);
    });
    if (count < batch.size()) batch.resize(count);
    for (std::size_t i = 0; i < count; ++i)
      if (batch[i].is_exception) ++report.exceptions;
    report.states += count;
    ++report.batches;
    VN2_COUNT("vn2.stream.batches");
    if (sink) sink(first, batch);
  }
  return report;
}

Matrix correlation_strengths(const Vn2Model& model, const Matrix& raw_states,
                             const DiagnoseOptions& options) {
  check_batch_input(model, raw_states, "correlation_strengths");
  VN2_SPAN("vn2.correlation_strengths");
  const Matrix a = linalg::transpose(model.psi());
  Matrix w(raw_states.rows(), model.rank());
  parallel_for(0, raw_states.rows(), 8, [&](std::size_t i) {
    const Vector encoded =
        model.encoder().encode(raw_states.row_vector(i));
    const linalg::NnlsResult solution = linalg::nnls(a, encoded, options.nnls);
    for (std::size_t r = 0; r < model.rank(); ++r) w(i, r) = solution.x[r];
  });
  return w;
}

Vector mean_strength_profile(const Matrix& w) {
  Vector profile(w.cols());
  if (w.rows() == 0) return profile;
  for (std::size_t j = 0; j < w.cols(); ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i) acc += w(i, j);
    profile[j] = acc / static_cast<double>(w.rows());
  }
  return profile;
}

double profile_correlation(const Vector& a, const Vector& b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("profile_correlation: size mismatch");
  const double ma = linalg::mean(a);
  const double mb = linalg::mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  const double denom = std::sqrt(va * vb);
  return denom > 0.0 ? cov / denom : 0.0;
}

}  // namespace vn2::core
