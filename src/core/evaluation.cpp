#include "core/evaluation.hpp"

#include <algorithm>
#include <stdexcept>

namespace vn2::core {

using metrics::HazardEvent;

std::vector<HazardPrediction> predict_hazards(
    const std::vector<trace::StateVector>& states,
    const std::vector<Diagnosis>& diagnoses,
    const std::vector<RootCauseInterpretation>& interpretations,
    const EvalOptions& options) {
  if (states.size() != diagnoses.size())
    throw std::invalid_argument("predict_hazards: states/diagnoses mismatch");

  std::vector<HazardPrediction> predictions;
  for (std::size_t i = 0; i < states.size(); ++i) {
    const Diagnosis& diagnosis = diagnoses[i];
    if (options.exceptions_only && !diagnosis.is_exception) continue;
    if (diagnosis.ranked.empty()) continue;
    const double top = diagnosis.ranked.front().strength;
    for (const RankedCause& cause : diagnosis.ranked) {
      if (cause.strength < options.strength_fraction * top) break;
      if (cause.row >= interpretations.size())
        throw std::invalid_argument(
            "predict_hazards: interpretation missing for a psi row");
      const RootCauseInterpretation& interp = interpretations[cause.row];
      if (!interp.has_label()) continue;
      predictions.push_back({states[i].time, states[i].node,
                             interp.top_hazard(), cause.strength});
    }
  }
  return predictions;
}

namespace {

/// Window of a fault, padded with slack. Instantaneous faults (failure,
/// reboot) manifest over the following epochs, so they get extra tail room.
std::pair<wsn::Time, wsn::Time> fault_window(const wsn::InjectedFault& fault,
                                             wsn::Time slack) {
  const wsn::Time start = fault.command.start - slack;
  wsn::Time end = fault.command.end > fault.command.start
                      ? fault.command.end + slack
                      : fault.command.start + 2.0 * slack;
  return {start, end};
}

}  // namespace

EvalReport evaluate(const std::vector<HazardPrediction>& predictions,
                    const std::vector<wsn::InjectedFault>& ground_truth,
                    const EvalOptions& options) {
  EvalReport report;

  const auto hazards_match = [&](metrics::HazardEvent a,
                                 metrics::HazardEvent b) {
    if (a == b) return true;
    return options.match_by_class &&
           metrics::hazard_class(a) == metrics::hazard_class(b);
  };

  // Recall: every injected fault wants a matching prediction in-window.
  for (const wsn::InjectedFault& fault : ground_truth) {
    HazardScore& score = report.per_hazard[fault.hazard];
    score.injected++;
    const auto [start, end] = fault_window(fault, options.window_slack);
    const bool detected =
        std::any_of(predictions.begin(), predictions.end(),
                    [&](const HazardPrediction& p) {
                      return hazards_match(p.hazard, fault.hazard) &&
                             p.time >= start && p.time <= end;
                    });
    if (detected) score.detected++;
  }

  // Precision: every prediction wants an injected fault of its hazard whose
  // window contains it.
  for (const HazardPrediction& p : predictions) {
    HazardScore& score = report.per_hazard[p.hazard];
    score.predicted++;
    const bool matched = std::any_of(
        ground_truth.begin(), ground_truth.end(),
        [&](const wsn::InjectedFault& fault) {
          if (!hazards_match(p.hazard, fault.hazard)) return false;
          const auto [start, end] = fault_window(fault, options.window_slack);
          return p.time >= start && p.time <= end;
        });
    if (matched) score.matched++;
  }

  std::size_t recall_classes = 0, precision_classes = 0;
  for (const auto& [hazard, score] : report.per_hazard) {
    if (score.injected > 0) {
      report.macro_recall += score.recall();
      ++recall_classes;
    }
    if (score.predicted > 0) {
      report.macro_precision += score.precision();
      ++precision_classes;
    }
  }
  if (recall_classes) report.macro_recall /= static_cast<double>(recall_classes);
  if (precision_classes)
    report.macro_precision /= static_cast<double>(precision_classes);
  return report;
}

}  // namespace vn2::core
