#include "core/model.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/contracts.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::core {

using linalg::Matrix;
using linalg::Vector;

Vn2Model::Vn2Model(Matrix psi, StateEncoder encoder, double train_max_score,
                   double exception_threshold)
    : psi_(std::move(psi)),
      encoder_(std::move(encoder)),
      train_max_score_(train_max_score),
      exception_threshold_(exception_threshold) {
  if (psi_.cols() != kEncodedCount)
    throw std::invalid_argument("Vn2Model: psi must have 86 columns");
}

Vector Vn2Model::root_cause_profile(std::size_t row) const {
  return StateEncoder::decode_signed(psi_.row_vector(row));
}

double Vn2Model::exception_score(const Vector& raw_state) const {
  return encoder_.deviation_score(raw_state);
}

bool Vn2Model::is_exception(const Vector& raw_state) const {
  if (train_max_score_ <= 0.0) return false;
  return exception_score(raw_state) / train_max_score_ >=
         exception_threshold_;
}

namespace {

void write_matrix(std::ostream& os, const Matrix& m) {
  os << m.rows() << ' ' << m.cols() << '\n';
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j) os << ' ';
      os << m(i, j);
    }
    os << '\n';
  }
}

Matrix read_matrix(std::istream& is) {
  std::size_t rows = 0, cols = 0;
  if (!(is >> rows >> cols))
    throw std::runtime_error("model load: bad matrix header");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if (!(is >> m(i, j)))
        throw std::runtime_error("model load: truncated matrix");
  return m;
}

}  // namespace

void Vn2Model::save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("model save: cannot open " + path);
  file.precision(17);
  file << "VN2MODEL 2\n";
  file << train_max_score_ << ' ' << exception_threshold_ << '\n';
  write_matrix(file, psi_);
  write_matrix(file, encoder_.to_matrix());
  if (!file) throw std::runtime_error("model save: write failed " + path);
}

Vn2Model Vn2Model::load(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("model load: cannot open " + path);
  std::string magic;
  int version = 0;
  if (!(file >> magic >> version) || magic != "VN2MODEL" || version != 2)
    throw std::runtime_error("model load: bad header in " + path);
  Vn2Model model;
  if (!(file >> model.train_max_score_ >> model.exception_threshold_))
    throw std::runtime_error("model load: bad stats line");
  model.psi_ = read_matrix(file);
  model.encoder_ = StateEncoder::from_matrix(read_matrix(file));
  if (model.psi_.cols() != kEncodedCount)
    throw std::runtime_error("model load: psi must have 86 columns");
  return model;
}

TrainingReport train(const Matrix& raw_states, const TrainingOptions& options) {
  VN2_CHECK(raw_states.rows() > 0 &&
                raw_states.cols() == metrics::kMetricCount,
            "train: need a non-empty n x 43 state matrix");

  VN2_SPAN("vn2.train");
  TrainingReport report;
  report.training_states = raw_states.rows();

  const StateEncoder encoder =
      StateEncoder::fit(raw_states, options.clip_sigma);
  const Matrix encoded = encoder.encode(raw_states);

  // ε rule: unclipped standardized deviation from the training mean (see
  // StateEncoder::deviation_score).
  report.detection.scores = Vector(encoded.rows());
  for (std::size_t i = 0; i < raw_states.rows(); ++i) {
    report.detection.scores[i] =
        encoder.deviation_score(raw_states.row_vector(i));
    report.detection.max_score =
        std::max(report.detection.max_score, report.detection.scores[i]);
  }
  if (report.detection.max_score > 0.0) {
    for (std::size_t i = 0; i < encoded.rows(); ++i)
      if (report.detection.scores[i] / report.detection.max_score >=
          options.exception_threshold)
        report.detection.exception_rows.push_back(i);
  }

  Matrix train_input;
  if (options.skip_exception_extraction) {
    train_input = encoded;
    report.exception_states = encoded.rows();
  } else {
    for (std::size_t row : report.detection.exception_rows)
      train_input.append_row(encoded.row(row));
    report.exception_states = train_input.rows();
    if (train_input.rows() == 0)
      throw std::invalid_argument(
          "train: exception extraction found no exception states");
  }

  // Rank: given or swept (Fig. 3(b) procedure).
  std::size_t rank = options.rank;
  if (rank == 0) {
    std::vector<std::size_t> candidates = options.candidate_ranks;
    if (candidates.empty())
      for (std::size_t r = 5; r <= 40; r += 5) candidates.push_back(r);
    nmf::RankSweepOptions sweep_options;
    sweep_options.nmf = options.nmf;
    sweep_options.sparsify = options.sparsify;
    report.rank_sweep = nmf::rank_sweep(train_input, candidates, sweep_options);
    if (report.rank_sweep.empty())
      throw std::invalid_argument("train: no feasible candidate rank");
    rank = nmf::choose_rank(report.rank_sweep).rank;
  }
  if (rank > std::min(train_input.rows(), train_input.cols()))
    throw std::invalid_argument(
        "train: rank exceeds exception-state matrix dimensions");
  report.chosen_rank = rank;

  report.nmf = nmf::factorize(train_input, rank, options.nmf);
  report.model = Vn2Model(report.nmf.psi, encoder,
                          report.detection.max_score,
                          options.exception_threshold);
  return report;
}

}  // namespace vn2::core
