// Silence detection — the complementary signal to state-based diagnosis.
//
// VN2 explains the states it *receives*; a node that dies outright simply
// stops producing them (the paper locates such failures by combining Ψ
// signatures on the neighbors with the PRR record). This module supplies the
// direct flow-based check: given a trace and each node's observed reporting
// cadence, flag nodes whose silence exceeds what packet loss alone can
// plausibly explain — Sympathy's "insufficient data" insight, grafted onto
// the VN2 pipeline as corroborating evidence for node-failure diagnoses.
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace vn2::core {

struct SilenceOptions {
  /// A node is silent when (now − last snapshot) exceeds `factor` × its own
  /// median inter-snapshot interval.
  double factor = 4.0;
  /// Nodes with fewer observed snapshots than this are not judged (their
  /// cadence estimate would be meaningless).
  std::size_t min_snapshots = 5;
};

struct SilentNode {
  wsn::NodeId node = wsn::kInvalidNode;
  wsn::Time last_seen = 0.0;
  wsn::Time silent_for = 0.0;          ///< now − last_seen.
  wsn::Time expected_interval = 0.0;   ///< Median inter-snapshot gap.
};

/// Scans a trace for nodes that have gone silent as of time `now`.
/// Nodes are reported in descending silent_for order.
std::vector<SilentNode> detect_silent_nodes(const trace::Trace& trace,
                                            wsn::Time now,
                                            const SilenceOptions& options = {});

}  // namespace vn2::core
