// Online (sliding-window) retraining.
//
// A deployed VN2 model ages: the network's "normal" drifts with seasons,
// battery curves, and topology changes, so the encoder statistics and Ψ
// must follow. OnlineTrainer keeps a bounded window of recent states,
// retrains on a configurable cadence, and hands out the freshest model —
// the component a long-running sink-side monitor wraps around Vn2Tool.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "core/vn2.hpp"
#include "trace/trace.hpp"

namespace vn2::core {

struct OnlineTrainerOptions {
  /// Maximum states kept in the training window (oldest evicted first).
  std::size_t window_capacity = 5000;
  /// Retrain after this many new states since the last (re)train.
  std::size_t retrain_every = 1000;
  /// Minimum states required before the first training.
  std::size_t min_states = 200;
  Vn2Tool::Options tool;
};

class OnlineTrainer {
 public:
  explicit OnlineTrainer(OnlineTrainerOptions options = {});

  /// Feeds one state. Returns true if this call triggered a (re)train.
  bool push(const trace::StateVector& state);

  /// Feeds a batch; returns the number of retrains triggered.
  std::size_t push(const std::vector<trace::StateVector>& states);

  /// True once a model exists.
  [[nodiscard]] bool ready() const noexcept { return tool_.has_value(); }
  /// Current tool; throws std::logic_error before the first training.
  [[nodiscard]] const Vn2Tool& tool() const;

  [[nodiscard]] std::size_t window_size() const noexcept {
    return window_.size();
  }
  [[nodiscard]] std::size_t retrain_count() const noexcept {
    return retrains_;
  }

  /// Forces a retrain now (if min_states is met). Returns true on success.
  bool retrain();

 private:
  OnlineTrainerOptions options_;
  std::deque<trace::StateVector> window_;
  std::optional<Vn2Tool> tool_;
  std::size_t since_last_train_ = 0;
  std::size_t retrains_ = 0;
};

}  // namespace vn2::core
