// Contract assertions for VN2's numeric pipeline.
//
// Three macros guard the analysis hot paths:
//
//   VN2_CHECK(cond, what)    — precondition that must hold in EVERY build
//                              mode (shape agreement at a public API
//                              boundary). Always throws on violation; this
//                              is the one mechanism behind the library's
//                              "throws std::invalid_argument on bad input"
//                              promise, replacing the old pattern of a
//                              VN2_REQUIRE duplicated by a hand-rolled
//                              throw of the same predicate.
//   VN2_REQUIRE(cond, what)  — precondition at an API boundary that is
//                              compiled out of Release (rank bounds,
//                              schema length: conditions a correct caller
//                              makes structurally impossible).
//   VN2_ASSERT(cond, what)   — internal invariant / postcondition (NMF
//                              factors stay non-negative, NNLS output is
//                              feasible, Cholesky pivots are positive).
//
// VN2_REQUIRE and VN2_ASSERT are active in Debug builds (NDEBUG undefined)
// and in any build configured with -DVN2_CHECKED=ON; in plain Release
// builds they compile to nothing, so the hot paths carry zero overhead
// (verified against the BENCH_parallel*.json baselines). All three throw
// ContractViolation, which derives from std::invalid_argument so call
// sites that already promise std::invalid_argument on bad input keep that
// promise in every build mode.
//
// This header lives in core/ but depends on nothing else in VN2 (like
// core/parallel.hpp, it ships in the base vn2_parallel library), so the
// lower layers (linalg, nmf) can assert contracts without a cycle.
#pragma once

#include <stdexcept>
#include <string>

namespace vn2::core {

/// Thrown when an active contract is violated. Derives from
/// std::invalid_argument: a violated VN2_REQUIRE is an invalid call.
class ContractViolation : public std::invalid_argument {
 public:
  ContractViolation(const char* kind, const char* expr, const char* what,
                    const char* file, long line)
      : std::invalid_argument(std::string(kind) + " violated: " + what +
                              " [" + expr + "] at " + file + ":" +
                              std::to_string(line)) {}
};

/// True when this build was compiled with contracts active (Debug or
/// VN2_CHECKED). Compiled into the library so tests can ask the library —
/// not their own translation unit — whether assertions will fire.
[[nodiscard]] bool contracts_active() noexcept;

namespace detail {

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* what, const char* file,
                                         long line) {
  throw ContractViolation(kind, expr, what, file, line);
}

}  // namespace detail
}  // namespace vn2::core

#if !defined(NDEBUG) || defined(VN2_CHECKED)
#define VN2_CONTRACTS_ACTIVE 1
#else
#define VN2_CONTRACTS_ACTIVE 0
#endif

// Always-on precondition: one check, one error path, in every build mode.
#define VN2_CHECK(cond, what)                                            \
  do {                                                                   \
    if (!(cond))                                                         \
      ::vn2::core::detail::contract_failed("precondition", #cond, what,  \
                                           __FILE__, __LINE__);          \
  } while (false)

#if VN2_CONTRACTS_ACTIVE
#define VN2_REQUIRE(cond, what)                                          \
  do {                                                                   \
    if (!(cond))                                                         \
      ::vn2::core::detail::contract_failed("precondition", #cond, what,  \
                                           __FILE__, __LINE__);          \
  } while (false)
#define VN2_ASSERT(cond, what)                                           \
  do {                                                                   \
    if (!(cond))                                                         \
      ::vn2::core::detail::contract_failed("invariant", #cond, what,     \
                                           __FILE__, __LINE__);          \
  } while (false)
#else
#define VN2_REQUIRE(cond, what) \
  do {                          \
  } while (false)
#define VN2_ASSERT(cond, what) \
  do {                         \
  } while (false)
#endif
