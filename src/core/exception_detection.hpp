// Exception extraction from history logs (paper §IV-B).
//
// Normal operation dominates the logs; feeding everything to NMF would let
// normal states conceal the representation of exceptions. The paper's rule:
// compute each metric's mean, measure each state's deviation ε_u from the
// mean, and flag state u as an exception when ε_u / max(ε) ≥ 0.01.
//
// Raw metrics live on wildly different scales (lux in the hundreds, ETX near
// one), so deviations are standardized per metric (divided by the column's
// standard deviation) before the ε_u norm is taken — otherwise one
// large-valued metric would own the threshold.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace vn2::core {

struct ExceptionDetectionOptions {
  /// Flag state u when ε_u / max(ε) ≥ threshold (paper: 0.01).
  double threshold = 0.01;
  /// Standardize deviations by each column's std before the norm.
  bool standardize = true;
};

struct ExceptionDetectionResult {
  std::vector<std::size_t> exception_rows;  ///< Indices into the input.
  linalg::Vector scores;                    ///< ε_u per state (size n).
  double max_score = 0.0;

  [[nodiscard]] bool is_exception(std::size_t row) const;
};

/// Scores every state (row) of `states` and flags exceptions.
/// Throws std::invalid_argument on an empty matrix.
ExceptionDetectionResult detect_exceptions(
    const linalg::Matrix& states, const ExceptionDetectionOptions& options = {});

/// Convenience: the submatrix of flagged rows (order preserved).
linalg::Matrix exception_matrix(const linalg::Matrix& states,
                                const ExceptionDetectionResult& detection);

}  // namespace vn2::core
