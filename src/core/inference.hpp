// Online inference (paper, Problem 3): given a fresh node state S_v and the
// representative matrix Ψ, solve
//
//     argmin_w ‖S_v − w·Ψ‖²   s.t.  w ≥ 0
//
// (non-negative least squares) to obtain the correlation strength of every
// root-cause vector; non-zero entries identify the root causes active at
// this moment and their magnitudes quantize each cause's influence.
#pragma once

#include <cstddef>
#include <vector>

#include "core/model.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"

namespace vn2::core {

struct DiagnoseOptions {
  /// Weights below this fraction of the top weight are reported as inactive.
  double strength_floor_fraction = 0.05;
  linalg::NnlsOptions nnls;
};

struct RankedCause {
  std::size_t row = 0;      ///< Row of Ψ (root-cause vector index).
  double strength = 0.0;    ///< Correlation strength w_row.
};

struct Diagnosis {
  linalg::Vector weights;   ///< Full w (size r), non-negative.
  double residual = 0.0;    ///< ‖s − wΨ‖₂ in encoded space.
  double exception_score = 0.0;  ///< ε of the raw state vs training stats.
  bool is_exception = false;     ///< ε rule verdict.
  std::vector<RankedCause> ranked;  ///< Active causes, strongest first.
};

/// Diagnoses one raw state vector (43 metric diffs).
Diagnosis diagnose(const Vn2Model& model, const linalg::Vector& raw_state,
                   const DiagnoseOptions& options = {});

/// Diagnoses a batch of raw states (n × 43), solving the independent
/// per-state NNLS problems across the global worker pool (see
/// core/parallel.hpp). Result i equals diagnose(model, row i, options)
/// bit-for-bit at any thread count; Ψᵀ is formed once for the whole batch.
std::vector<Diagnosis> diagnose_batch(const Vn2Model& model,
                                      const linalg::Matrix& raw_states,
                                      const DiagnoseOptions& options = {});

/// Computes the full correlation-strength matrix W (n × r) for a batch of
/// raw states — the data behind the paper's Fig. 3(c), 5(b), 6(b) scatters.
linalg::Matrix correlation_strengths(const Vn2Model& model,
                                     const linalg::Matrix& raw_states,
                                     const DiagnoseOptions& options = {});

/// Column means of a strength matrix — the per-root-cause profile the paper
/// plots in Fig. 5(g)–(i) and 6(b).
linalg::Vector mean_strength_profile(const linalg::Matrix& w);

/// Pearson correlation between two strength profiles (used to compare
/// training vs testing distributions in Fig. 5(h)/(i)).
double profile_correlation(const linalg::Vector& a, const linalg::Vector& b);

}  // namespace vn2::core
