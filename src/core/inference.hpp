// Online inference (paper, Problem 3): given a fresh node state S_v and the
// representative matrix Ψ, solve
//
//     argmin_w ‖S_v − w·Ψ‖²   s.t.  w ≥ 0
//
// (non-negative least squares) to obtain the correlation strength of every
// root-cause vector; non-zero entries identify the root causes active at
// this moment and their magnitudes quantize each cause's influence.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/model.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"

namespace vn2::core {

struct DiagnoseOptions {
  /// Weights below this fraction of the top weight are reported as inactive.
  double strength_floor_fraction = 0.05;
  linalg::NnlsOptions nnls;
};

struct RankedCause {
  std::size_t row = 0;      ///< Row of Ψ (root-cause vector index).
  double strength = 0.0;    ///< Correlation strength w_row.
};

struct Diagnosis {
  linalg::Vector weights;   ///< Full w (size r), non-negative.
  double residual = 0.0;    ///< ‖s − wΨ‖₂ in encoded space.
  double exception_score = 0.0;  ///< ε of the raw state vs training stats.
  bool is_exception = false;     ///< ε rule verdict.
  std::vector<RankedCause> ranked;  ///< Active causes, strongest first.
};

/// Diagnoses one raw state vector (43 metric diffs).
Diagnosis diagnose(const Vn2Model& model, const linalg::Vector& raw_state,
                   const DiagnoseOptions& options = {});

/// Diagnoses a batch of raw states (n × 43), solving the independent
/// per-state NNLS problems across the global worker pool (see
/// core/parallel.hpp). Result i equals diagnose(model, row i, options)
/// bit-for-bit at any thread count; Ψᵀ is formed once for the whole batch.
std::vector<Diagnosis> diagnose_batch(const Vn2Model& model,
                                      const linalg::Matrix& raw_states,
                                      const DiagnoseOptions& options = {});

/// Tuning for diagnose_stream's bounded-queue batch loop.
struct StreamOptions {
  /// States resident in the queue at once — the memory bound. The stream
  /// path never materializes more than this many Diagnosis objects.
  std::size_t batch_size = 1024;
  /// States per parallel_for task: cache-sized chunks instead of one task
  /// per state, and one NnlsWorkspace per chunk slot (reused across
  /// batches) so workspace setup amortizes over the whole stream.
  std::size_t chunk = 64;
  DiagnoseOptions diagnose;
};

/// What a completed stream processed.
struct StreamReport {
  std::size_t states = 0;     ///< Rows diagnosed.
  std::size_t batches = 0;    ///< Sink invocations.
  std::size_t exceptions = 0; ///< States flagged by the ε rule.
};

/// Receives each completed batch, serially and in state order: `first` is
/// the global row index of `batch.front()`. The batch buffer is reused for
/// the next batch — copy anything that must outlive the call.
using DiagnosisSink =
    std::function<void(std::size_t first, const std::vector<Diagnosis>& batch)>;

/// Streaming sink-side inference for millions-of-states workloads: pulls
/// raw_states through a bounded queue of batch_size states, diagnoses each
/// batch across the worker pool in cache-sized chunks, and hands finished
/// batches to the sink in order. Per state the result equals
/// diagnose(model, row, options.diagnose) bit-for-bit at any thread count,
/// batch size, or chunk size: chunk slot c owns workspace c (index-owned,
/// race-free) and a warm NnlsWorkspace is result-identical to a cold one.
/// Ψᵀ is formed once for the whole stream.
StreamReport diagnose_stream(const Vn2Model& model,
                             const linalg::Matrix& raw_states,
                             const StreamOptions& options,
                             const DiagnosisSink& sink);

/// Computes the full correlation-strength matrix W (n × r) for a batch of
/// raw states — the data behind the paper's Fig. 3(c), 5(b), 6(b) scatters.
linalg::Matrix correlation_strengths(const Vn2Model& model,
                                     const linalg::Matrix& raw_states,
                                     const DiagnoseOptions& options = {});

/// Column means of a strength matrix — the per-root-cause profile the paper
/// plots in Fig. 5(g)–(i) and 6(b).
linalg::Vector mean_strength_profile(const linalg::Matrix& w);

/// Pearson correlation between two strength profiles (used to compare
/// training vs testing distributions in Fig. 5(h)/(i)).
double profile_correlation(const linalg::Vector& a, const linalg::Vector& b);

}  // namespace vn2::core
