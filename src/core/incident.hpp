// Combination diagnosis (the paper's §VI future work): aggregating
// per-state diagnoses into network *incidents*.
//
// A real fault episode produces a burst of exception states across several
// nodes and epochs. Operators do not want 400 per-state alarms; they want
// "one incident: days 6.2–6.4, 17 nodes, dominant causes routing-loop +
// contention". This module clusters exception diagnoses in time, merges
// their evidence, and emits ranked per-incident cause summaries.
#pragma once

#include <string>
#include <vector>

#include "core/inference.hpp"
#include "core/interpretation.hpp"
#include "trace/trace.hpp"

namespace vn2::core {

struct IncidentOptions {
  /// Two exception states separated by more than this gap belong to
  /// different incidents.
  wsn::Time merge_gap = 1800.0;
  /// Per state, Ψ rows with strength ≥ fraction · top strength contribute
  /// evidence to the incident.
  double strength_fraction = 0.3;
  /// Clusters with fewer exception states than this are dropped as noise.
  std::size_t min_states = 3;
  /// Causes below this share of the incident's total evidence are omitted
  /// from the ranked list.
  double min_cause_share = 0.05;
  /// When > 0 and node positions are provided, clustering is
  /// spatio-temporal: exception states are binned into merge_gap-long time
  /// windows, linked into spatial components within each window (single
  /// linkage, hop length spatial_gap_m), and components in consecutive
  /// windows whose centroids lie within spatial_gap_m are stitched into one
  /// incident. Ambient network-wide noise falls into sub-min_states
  /// fragments instead of welding spatially distinct events together.
  double spatial_gap_m = 0.0;
};

struct IncidentCause {
  metrics::HazardEvent hazard{};
  double share = 0.0;  ///< Fraction of the incident's evidence mass.
};

struct Incident {
  wsn::Time start = 0.0;
  wsn::Time end = 0.0;
  std::vector<wsn::NodeId> nodes;      ///< Affected nodes, sorted, unique.
  std::size_t state_count = 0;         ///< Exception states merged in.
  linalg::Vector strength_profile;     ///< Mean w over member states (size r).
  std::vector<IncidentCause> causes;   ///< Ranked, best first.
  std::string summary;                 ///< One-line operator text.

  /// Spatial localization — filled only when node positions were provided.
  bool localized = false;
  wsn::Position center;   ///< Evidence-weighted centroid of affected nodes.
  double radius_m = 0.0;  ///< RMS distance of affected nodes to the center.

  [[nodiscard]] wsn::Time duration() const noexcept { return end - start; }
};

/// Clusters the exception states among `states` (using their diagnoses)
/// into incidents. `states` and `diagnoses` must be index-aligned;
/// interpretations must cover every Ψ row referenced by the diagnoses.
/// When `positions` is non-empty it must be indexable by every NodeId that
/// appears; incidents are then spatially localized (center + radius).
/// Throws std::invalid_argument on size mismatch.
std::vector<Incident> aggregate_incidents(
    const std::vector<trace::StateVector>& states,
    const std::vector<Diagnosis>& diagnoses,
    const std::vector<RootCauseInterpretation>& interpretations,
    const IncidentOptions& options = {},
    const std::vector<wsn::Position>& positions = {});

}  // namespace vn2::core
