// Signed-deviation state encoding — the bridge between raw state vectors
// and NMF's non-negativity requirement.
//
// A raw network state is the signed difference of two successive metric
// reports. NMF needs non-negative input, and the paper's semantics require
// that a well-behaved node have x ≈ 0 against the representative matrix.
// Min–max scaling cannot deliver that (it maps "no change" to mid-range, so
// even normal states need large weights). Instead each metric is
// standardized against the training distribution of its variations and the
// sign is split into two non-negative channels:
//
//     z_m  = clip((raw_m − mean_m) / std_m)        (signed, σ units)
//     enc  = [max(z, 0) ; max(−z, 0)]              (2·43 = 86 columns)
//
// Properties: a normal state encodes to ≈ 0 (so its NNLS weights vanish —
// exactly the paper's "x_j ≈ 0 in most cases"); ‖enc‖₂ is the ε deviation
// score of the exception-detection rule; and a Ψ row decodes back to a
// signed 43-metric profile in σ units — the [-1,1]-style root-cause plots
// of the paper's Fig. 4–6 (up-spikes = metric grew abnormally, down-spikes
// = shrank, zero = uninvolved).
#pragma once

#include <array>

#include "linalg/matrix.hpp"
#include "metrics/schema.hpp"

namespace vn2::core {

inline constexpr std::size_t kEncodedCount = 2 * metrics::kMetricCount;

class StateEncoder {
 public:
  /// Fits per-metric mean/std of variations on training states (n × 43).
  /// Throws std::invalid_argument on an empty matrix or wrong column count.
  /// `clip_sigma` caps |z| so one catastrophic outlier (e.g. a counter
  /// reset of −10⁵) cannot own the factorization.
  static StateEncoder fit(const linalg::Matrix& states,
                          double clip_sigma = 12.0);

  /// Encodes one raw 43-state into the non-negative 86-vector.
  [[nodiscard]] linalg::Vector encode(const linalg::Vector& raw) const;
  /// Encodes a batch (n × 43 → n × 86).
  [[nodiscard]] linalg::Matrix encode(const linalg::Matrix& raw) const;

  /// Folds an encoded (or Ψ-row) 86-vector back to a signed 43-profile in
  /// σ units: profile = positive channel − negative channel.
  [[nodiscard]] static linalg::Vector decode_signed(const linalg::Vector& encoded);

  /// ε deviation score of a raw state: ‖encode(raw)‖₂. Clipping applies
  /// here too, deliberately: a single catastrophic metric (say a −10⁵
  /// counter reset, z ≈ 1000) must not monopolize max(ε) in the ratio rule
  /// and push every other genuine exception under the threshold.
  [[nodiscard]] double deviation_score(const linalg::Vector& raw) const;

  [[nodiscard]] double metric_mean(std::size_t m) const { return mean_.at(m); }
  [[nodiscard]] double metric_std(std::size_t m) const { return std_.at(m); }
  [[nodiscard]] double clip_sigma() const noexcept { return clip_; }

  /// Serialization: 3 × 43 (mean; std; clip in row 2 col 0).
  [[nodiscard]] linalg::Matrix to_matrix() const;
  static StateEncoder from_matrix(const linalg::Matrix& m);

  bool operator==(const StateEncoder&) const = default;

 private:
  std::array<double, metrics::kMetricCount> mean_{};
  std::array<double, metrics::kMetricCount> std_{};
  double clip_ = 12.0;

  [[nodiscard]] double z_of(std::size_t m, double raw) const;
};

}  // namespace vn2::core
