#include "core/silence.hpp"

#include <algorithm>

#include "core/contracts.hpp"

namespace vn2::core {

std::vector<SilentNode> detect_silent_nodes(const trace::Trace& trace,
                                            wsn::Time now,
                                            const SilenceOptions& options) {
  VN2_CHECK(options.factor > 0.0,
            "detect_silent_nodes: silence factor must be positive");
  std::vector<SilentNode> silent;
  for (const trace::NodeSeries& series : trace.nodes) {
    if (series.snapshots.size() < options.min_snapshots) continue;

    // Median inter-snapshot interval — robust to a few long loss gaps.
    std::vector<double> gaps;
    gaps.reserve(series.snapshots.size() - 1);
    for (std::size_t i = 1; i < series.snapshots.size(); ++i)
      gaps.push_back(series.snapshots[i].time - series.snapshots[i - 1].time);
    const auto mid = gaps.begin() + static_cast<long>(gaps.size() / 2);
    std::nth_element(gaps.begin(), mid, gaps.end());
    const double median_gap = *mid;
    if (median_gap <= 0.0) continue;

    const wsn::Time last_seen = series.snapshots.back().time;
    const wsn::Time quiet = now - last_seen;
    if (quiet > options.factor * median_gap) {
      SilentNode entry;
      entry.node = series.node;
      entry.last_seen = last_seen;
      entry.silent_for = quiet;
      entry.expected_interval = median_gap;
      silent.push_back(entry);
    }
  }
  std::sort(silent.begin(), silent.end(),
            [](const SilentNode& a, const SilentNode& b) {
              return a.silent_for > b.silent_for;
            });
  return silent;
}

}  // namespace vn2::core
