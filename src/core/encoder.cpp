#include "core/encoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

namespace vn2::core {

using linalg::Matrix;
using linalg::Vector;

StateEncoder StateEncoder::fit(const Matrix& states, double clip_sigma) {
  if (states.rows() == 0 || states.cols() != metrics::kMetricCount)
    throw std::invalid_argument("StateEncoder::fit: need non-empty n x 43");
  if (clip_sigma <= 0.0)
    throw std::invalid_argument("StateEncoder::fit: clip_sigma must be > 0");
  StateEncoder encoder;
  encoder.clip_ = clip_sigma;
  const auto n = static_cast<double>(states.rows());
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
    double acc = 0.0;
    for (std::size_t i = 0; i < states.rows(); ++i) acc += states(i, m);
    encoder.mean_[m] = acc / n;
  }
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
    double acc = 0.0;
    for (std::size_t i = 0; i < states.rows(); ++i) {
      const double d = states(i, m) - encoder.mean_[m];
      acc += d * d;
    }
    encoder.std_[m] = std::sqrt(acc / n);
  }
  return encoder;
}

double StateEncoder::z_of(std::size_t m, double raw) const {
  VN2_REQUIRE(m < metrics::kMetricCount,
              "StateEncoder::z_of: metric index out of range");
  if (std_[m] <= 0.0) return 0.0;  // Constant metric: carries no signal.
  const double z = (raw - mean_[m]) / std_[m];
  return std::clamp(z, -clip_, clip_);
}

Vector StateEncoder::encode(const Vector& raw) const {
  if (raw.size() != metrics::kMetricCount)
    throw std::invalid_argument("StateEncoder::encode: wrong vector size");
  Vector out(kEncodedCount);
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
    const double z = z_of(m, raw[m]);
    out[m] = std::max(z, 0.0);
    out[metrics::kMetricCount + m] = std::max(-z, 0.0);
  }
  return out;
}

Matrix StateEncoder::encode(const Matrix& raw) const {
  if (raw.cols() != metrics::kMetricCount)
    throw std::invalid_argument("StateEncoder::encode: wrong column count");
  Matrix out(raw.rows(), kEncodedCount);
  for (std::size_t i = 0; i < raw.rows(); ++i) {
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
      const double z = z_of(m, raw(i, m));
      out(i, m) = std::max(z, 0.0);
      out(i, metrics::kMetricCount + m) = std::max(-z, 0.0);
    }
  }
  return out;
}

Vector StateEncoder::decode_signed(const Vector& encoded) {
  if (encoded.size() != kEncodedCount)
    throw std::invalid_argument("decode_signed: wrong vector size");
  Vector out(metrics::kMetricCount);
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
    out[m] = encoded[m] - encoded[metrics::kMetricCount + m];
  return out;
}

double StateEncoder::deviation_score(const Vector& raw) const {
  return linalg::norm2(encode(raw));
}

Matrix StateEncoder::to_matrix() const {
  Matrix m(3, metrics::kMetricCount);
  for (std::size_t c = 0; c < metrics::kMetricCount; ++c) {
    m(0, c) = mean_[c];
    m(1, c) = std_[c];
  }
  m(2, 0) = clip_;
  return m;
}

StateEncoder StateEncoder::from_matrix(const Matrix& m) {
  if (m.rows() != 3 || m.cols() != metrics::kMetricCount)
    throw std::invalid_argument("StateEncoder::from_matrix: need 3 x 43");
  StateEncoder encoder;
  for (std::size_t c = 0; c < metrics::kMetricCount; ++c) {
    encoder.mean_[c] = m(0, c);
    encoder.std_[c] = m(1, c);
  }
  encoder.clip_ = m(2, 0);
  if (encoder.clip_ <= 0.0)
    throw std::invalid_argument("StateEncoder::from_matrix: bad clip");
  return encoder;
}

}  // namespace vn2::core
