#include "core/exception_detection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::core {

using linalg::Matrix;
using linalg::Vector;

bool ExceptionDetectionResult::is_exception(std::size_t row) const {
  return std::binary_search(exception_rows.begin(), exception_rows.end(), row);
}

ExceptionDetectionResult detect_exceptions(
    const Matrix& states, const ExceptionDetectionOptions& options) {
  if (states.rows() == 0 || states.cols() == 0)
    throw std::invalid_argument("detect_exceptions: empty state matrix");
  const std::size_t n = states.rows();
  const std::size_t m = states.cols();
  VN2_SPAN("vn2.detect_exceptions");
  VN2_COUNT_N("vn2.exceptions.scanned", n);

  // Column means and (population) standard deviations.
  Vector mean(m), stddev(m);
  for (std::size_t j = 0; j < m; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += states(i, j);
    mean[j] = acc / static_cast<double>(n);
  }
  for (std::size_t j = 0; j < m; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = states(i, j) - mean[j];
      acc += d * d;
    }
    stddev[j] = std::sqrt(acc / static_cast<double>(n));
  }

  ExceptionDetectionResult result;
  result.scores = Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      double d = states(i, j) - mean[j];
      if (options.standardize) {
        if (stddev[j] > 0.0)
          d /= stddev[j];
        else
          d = 0.0;  // Constant column: never deviates.
      }
      acc += d * d;
    }
    result.scores[i] = std::sqrt(acc);
    result.max_score = std::max(result.max_score, result.scores[i]);
  }

  if (result.max_score > 0.0) {
    for (std::size_t i = 0; i < n; ++i)
      if (result.scores[i] / result.max_score >= options.threshold)
        result.exception_rows.push_back(i);
  }
  // is_exception() binary-searches exception_rows, so sortedness and row
  // range are load-bearing invariants, not just tidiness.
  VN2_ASSERT(result.scores.size() == n,
             "detect_exceptions: one epsilon score per state row");
  VN2_ASSERT(std::is_sorted(result.exception_rows.begin(),
                            result.exception_rows.end()),
             "detect_exceptions: exception rows must be sorted");
  VN2_ASSERT(result.exception_rows.empty() ||
                 result.exception_rows.back() < n,
             "detect_exceptions: exception rows must index into states");
  VN2_COUNT_N("vn2.exceptions.flagged", result.exception_rows.size());
  return result;
}

Matrix exception_matrix(const Matrix& states,
                        const ExceptionDetectionResult& detection) {
  Matrix out;
  for (std::size_t row : detection.exception_rows)
    out.append_row(states.row(row));
  return out;
}

}  // namespace vn2::core
