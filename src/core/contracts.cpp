#include "core/contracts.hpp"

namespace vn2::core {

bool contracts_active() noexcept { return VN2_CONTRACTS_ACTIVE != 0; }

}  // namespace vn2::core
