#include "core/vn2.hpp"

#include <sstream>
#include <stdexcept>

namespace vn2::core {

Vn2Tool Vn2Tool::train_from_trace(const trace::Trace& trace,
                                  const Options& options) {
  return train_from_states(trace::extract_states(trace), options);
}

Vn2Tool Vn2Tool::train_from_states(
    const std::vector<trace::StateVector>& states, const Options& options) {
  return train_from_matrix(trace::states_matrix(states), options);
}

Vn2Tool Vn2Tool::train_from_matrix(const linalg::Matrix& states,
                                   const Options& options) {
  Vn2Tool tool;
  tool.options_ = options;
  tool.report_ = train(states, options.training);
  tool.model_ = tool.report_.model;
  tool.interpretations_ = interpret(tool.model_.psi(), options.interpret);
  return tool;
}

Vn2Tool Vn2Tool::from_model(Vn2Model model, const Options& options) {
  if (!model.trained())
    throw std::invalid_argument("Vn2Tool::from_model: untrained model");
  Vn2Tool tool;
  tool.options_ = options;
  tool.model_ = std::move(model);
  tool.interpretations_ = interpret(tool.model_.psi(), options.interpret);
  return tool;
}

Diagnosis Vn2Tool::diagnose_state(const linalg::Vector& raw) const {
  return diagnose(model_, raw, options_.diagnose);
}

std::vector<Diagnosis> Vn2Tool::diagnose_states(
    const linalg::Matrix& raw) const {
  return diagnose_batch(model_, raw, options_.diagnose);
}

Vn2Tool::Explanation Vn2Tool::explain(const linalg::Vector& raw) const {
  Explanation out;
  out.diagnosis = diagnose_state(raw);

  std::ostringstream text;
  text << (out.diagnosis.is_exception ? "EXCEPTION" : "normal")
       << " (score=" << out.diagnosis.exception_score
       << ", residual=" << out.diagnosis.residual << ")";
  for (const RankedCause& cause : out.diagnosis.ranked) {
    const RootCauseInterpretation& interp = interpretations_.at(cause.row);
    out.causes.emplace_back(&interp, cause.strength);
    text << "\n  psi[" << cause.row << "] strength=" << cause.strength << ": "
         << interp.summary;
  }
  out.text = text.str();
  return out;
}

}  // namespace vn2::core
