#include "core/online.hpp"

#include <stdexcept>

namespace vn2::core {

OnlineTrainer::OnlineTrainer(OnlineTrainerOptions options)
    : options_(std::move(options)) {
  if (options_.window_capacity == 0)
    throw std::invalid_argument("OnlineTrainer: window_capacity must be > 0");
  if (options_.min_states == 0) options_.min_states = 1;
}

const Vn2Tool& OnlineTrainer::tool() const {
  if (!tool_)
    throw std::logic_error("OnlineTrainer::tool: no model trained yet");
  return *tool_;
}

bool OnlineTrainer::retrain() {
  if (window_.size() < options_.min_states) return false;
  std::vector<trace::StateVector> states(window_.begin(), window_.end());
  tool_ = Vn2Tool::train_from_states(states, options_.tool);
  since_last_train_ = 0;
  ++retrains_;
  return true;
}

bool OnlineTrainer::push(const trace::StateVector& state) {
  window_.push_back(state);
  if (window_.size() > options_.window_capacity) window_.pop_front();
  ++since_last_train_;

  const bool due =
      (!tool_ && window_.size() >= options_.min_states) ||
      (tool_ && since_last_train_ >= options_.retrain_every);
  if (due) return retrain();
  return false;
}

std::size_t OnlineTrainer::push(const std::vector<trace::StateVector>& states) {
  std::size_t retrains = 0;
  for (const trace::StateVector& state : states)
    if (push(state)) ++retrains;
  return retrains;
}

}  // namespace vn2::core
