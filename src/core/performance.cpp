#include "core/performance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"
#include "core/inference.hpp"
#include "linalg/solve.hpp"

namespace vn2::core {

using linalg::Matrix;
using linalg::Vector;

PrrEstimator PrrEstimator::fit(const Matrix& profiles, const Vector& prr,
                               double ridge) {
  if (profiles.rows() != prr.size())
    throw std::invalid_argument("PrrEstimator::fit: row/target mismatch");
  if (profiles.rows() < 2)
    throw std::invalid_argument("PrrEstimator::fit: need at least 2 windows");
  if (ridge < 0.0)
    throw std::invalid_argument("PrrEstimator::fit: ridge must be >= 0");

  const std::size_t k = profiles.rows();
  const std::size_t r = profiles.cols();

  // Center features and target; regularize only the slopes.
  Vector x_mean(r);
  for (std::size_t j = 0; j < r; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += profiles(i, j);
    x_mean[j] = acc / static_cast<double>(k);
  }
  const double y_mean = linalg::mean(prr);

  Matrix gram(r, r, 0.0);
  Vector rhs(r);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t a = 0; a < r; ++a) {
      const double xa = profiles(i, a) - x_mean[a];
      rhs[a] += xa * (prr[i] - y_mean);
      for (std::size_t b = a; b < r; ++b)
        gram(a, b) += xa * (profiles(i, b) - x_mean[b]);
    }
  }
  for (std::size_t a = 0; a < r; ++a)
    for (std::size_t b = 0; b < a; ++b) gram(a, b) = gram(b, a);
  double diag_max = 0.0;
  for (std::size_t a = 0; a < r; ++a) diag_max = std::max(diag_max, gram(a, a));
  const double lambda = ridge * std::max(diag_max, 1.0);
  for (std::size_t a = 0; a < r; ++a) gram(a, a) += lambda + 1e-12;

  PrrEstimator estimator;
  estimator.beta_ = linalg::cholesky_solve(gram, rhs);
  estimator.intercept_ = y_mean - linalg::dot(estimator.beta_, x_mean);
  return estimator;
}

double PrrEstimator::predict(const Vector& profile) const {
  if (!fitted())
    throw std::logic_error("PrrEstimator::predict: model not fitted");
  if (profile.size() != beta_.size())
    throw std::invalid_argument("PrrEstimator::predict: size mismatch");
  return std::clamp(intercept_ + linalg::dot(beta_, profile), 0.0, 1.0);
}

double PrrEstimator::r_squared(const Matrix& profiles,
                               const Vector& prr) const {
  if (profiles.rows() != prr.size() || profiles.rows() == 0)
    throw std::invalid_argument("r_squared: shape mismatch");
  const double mean = linalg::mean(prr);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < profiles.rows(); ++i) {
    const double prediction = predict(profiles.row_vector(i));
    ss_res += (prr[i] - prediction) * (prr[i] - prediction);
    ss_tot += (prr[i] - mean) * (prr[i] - mean);
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

PerformanceDataset build_performance_dataset(
    const wsn::SimulationResult& result,
    const std::vector<trace::StateVector>& states, const Vn2Model& model,
    wsn::Time window) {
  VN2_CHECK(model.trained(), "build_performance_dataset: untrained model");
  VN2_CHECK(window > 0.0, "build_performance_dataset: bad window");

  const auto series = trace::prr_series(result, window);
  const Matrix w = correlation_strengths(model, trace::states_matrix(states));

  PerformanceDataset dataset;
  std::vector<double> targets;
  for (const trace::PrrPoint& point : series) {
    if (point.originated == 0) continue;
    Vector profile(model.rank());
    std::size_t count = 0;
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i].time < point.window_start ||
          states[i].time >= point.window_end)
        continue;
      for (std::size_t r = 0; r < model.rank(); ++r) profile[r] += w(i, r);
      ++count;
    }
    if (count == 0) continue;
    profile *= 1.0 / static_cast<double>(count);
    dataset.profiles.append_row(profile.span());
    targets.push_back(point.prr());
    dataset.window_starts.push_back(point.window_start);
  }
  dataset.prr = Vector(std::move(targets));
  return dataset;
}

}  // namespace vn2::core
