#include "core/scaler.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/contracts.hpp"

namespace vn2::core {

using linalg::Matrix;
using linalg::Vector;

StateScaler StateScaler::fit(const Matrix& states) {
  if (states.rows() == 0 || states.cols() != metrics::kMetricCount)
    throw std::invalid_argument(
        "StateScaler::fit: need a non-empty n x 43 matrix");
  StateScaler scaler;
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
    double lo = states(0, m), hi = states(0, m);
    for (std::size_t i = 1; i < states.rows(); ++i) {
      lo = std::min(lo, states(i, m));
      hi = std::max(hi, states(i, m));
    }
    scaler.min_[m] = lo;
    scaler.max_[m] = hi;
  }
  return scaler;
}

double StateScaler::scale_one(std::size_t m, double v) const {
  VN2_REQUIRE(m < metrics::kMetricCount,
              "StateScaler::scale_one: metric index out of range");
  const double range = max_[m] - min_[m];
  if (range <= 0.0) return 0.5;  // Constant column: no variation signal.
  return std::clamp((v - min_[m]) / range, 0.0, 1.0);
}

double StateScaler::unscale_one(std::size_t m, double v) const {
  VN2_REQUIRE(m < metrics::kMetricCount,
              "StateScaler::unscale_one: metric index out of range");
  const double range = max_[m] - min_[m];
  if (range <= 0.0) return min_[m];
  return min_[m] + v * range;
}

Vector StateScaler::transform(const Vector& raw) const {
  if (raw.size() != metrics::kMetricCount)
    throw std::invalid_argument("StateScaler::transform: wrong vector size");
  Vector out(metrics::kMetricCount);
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
    out[m] = scale_one(m, raw[m]);
  return out;
}

Matrix StateScaler::transform(const Matrix& raw) const {
  if (raw.cols() != metrics::kMetricCount)
    throw std::invalid_argument("StateScaler::transform: wrong column count");
  Matrix out(raw.rows(), raw.cols());
  for (std::size_t i = 0; i < raw.rows(); ++i)
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
      out(i, m) = scale_one(m, raw(i, m));
  return out;
}

Vector StateScaler::inverse(const Vector& scaled) const {
  if (scaled.size() != metrics::kMetricCount)
    throw std::invalid_argument("StateScaler::inverse: wrong vector size");
  Vector out(metrics::kMetricCount);
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
    out[m] = unscale_one(m, scaled[m]);
  return out;
}

Vector StateScaler::center_on_zero(const Vector& scaled) const {
  if (scaled.size() != metrics::kMetricCount)
    throw std::invalid_argument("StateScaler::center_on_zero: wrong size");
  Vector out(metrics::kMetricCount);
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
    const double zero_point = scale_one(m, 0.0);
    // Normalize so the output lives in [-1, 1] regardless of where the
    // zero point sits inside [0, 1].
    const double denom = std::max(zero_point, 1.0 - zero_point);
    out[m] = denom > 0.0 ? (scaled[m] - zero_point) / denom : 0.0;
  }
  return out;
}

Matrix StateScaler::to_matrix() const {
  Matrix m(2, metrics::kMetricCount);
  for (std::size_t c = 0; c < metrics::kMetricCount; ++c) {
    m(0, c) = min_[c];
    m(1, c) = max_[c];
  }
  return m;
}

StateScaler StateScaler::from_matrix(const Matrix& m) {
  if (m.rows() != 2 || m.cols() != metrics::kMetricCount)
    throw std::invalid_argument("StateScaler::from_matrix: need 2 x 43");
  StateScaler scaler;
  for (std::size_t c = 0; c < metrics::kMetricCount; ++c) {
    scaler.min_[c] = m(0, c);
    scaler.max_[c] = m(1, c);
  }
  return scaler;
}

}  // namespace vn2::core
