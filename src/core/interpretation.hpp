// Root-cause vector interpretation (paper §IV-C, Problem 2).
//
// Each row of the representative matrix Ψ is a pattern of metric variation.
// The paper labels rows by expert reading: "the two counters with great
// variations are NOACK_retransmit_counter and MacI_backoff_counter → severe
// contention". This module encodes that reading: a row is folded back to a
// signed 43-metric profile (σ units), its dominant metrics are matched
// against the Table I hazard signatures, and ranked hazard labels plus a
// human-readable summary come out.
#pragma once

#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "linalg/matrix.hpp"
#include "metrics/hazards.hpp"

namespace vn2::core {

struct InterpretOptions {
  /// A metric is "dominant" when |profile value| ≥ fraction · max |value|.
  double dominance_fraction = 0.45;
  /// Cap on reported dominant metrics.
  std::size_t max_dominant = 8;
  /// Hazards scoring below this share are not reported.
  double min_label_score = 0.15;
};

struct HazardLabel {
  metrics::HazardEvent hazard;
  double score = 0.0;  ///< In [0, 1]; higher = better signature match.
};

struct RootCauseInterpretation {
  std::size_t row = 0;  ///< Index into Ψ.
  /// Dominant metrics with their signed profile value (σ units).
  std::vector<std::pair<metrics::MetricId, double>> dominant_metrics;
  metrics::MetricFamily dominant_family = metrics::MetricFamily::kEnvironment;
  std::vector<HazardLabel> labels;  ///< Ranked, best first. May be empty.
  std::string summary;              ///< One-line human explanation.

  [[nodiscard]] bool has_label() const noexcept { return !labels.empty(); }
  /// Best hazard label; throws std::logic_error if there is none.
  [[nodiscard]] metrics::HazardEvent top_hazard() const;
};

/// Interprets one Ψ row (86-dim encoded space).
RootCauseInterpretation interpret_row(const linalg::Vector& psi_row,
                                      std::size_t row_index,
                                      const InterpretOptions& options = {});

/// Interprets every row of Ψ (r × 86).
std::vector<RootCauseInterpretation> interpret(
    const linalg::Matrix& psi, const InterpretOptions& options = {});

}  // namespace vn2::core
