// Protocol performance estimation (the paper's §VI future work).
//
// The correlation-strength profile of a time window summarizes *what is
// wrong* with the network; this module learns how much each root cause
// *costs* in delivery performance: a ridge-regularized linear model from
// the window's mean strength profile to its packet reception ratio. Beyond
// prediction, the fitted coefficients rank root causes by PRR impact —
// "which of the things VN2 sees actually hurt us".
#pragma once

#include <cstddef>
#include <vector>

#include "core/model.hpp"
#include "linalg/matrix.hpp"
#include "trace/trace.hpp"

namespace vn2::core {

class PrrEstimator {
 public:
  PrrEstimator() = default;

  /// Fits PRR ≈ intercept + profiles·β by centered ridge regression.
  /// `profiles` is k × r (one window per row), `prr` has k entries.
  /// Throws std::invalid_argument on shape mismatch or k < 2.
  static PrrEstimator fit(const linalg::Matrix& profiles,
                          const linalg::Vector& prr, double ridge = 1e-3);

  /// Predicted PRR for one strength profile, clamped to [0, 1].
  [[nodiscard]] double predict(const linalg::Vector& profile) const;

  [[nodiscard]] const linalg::Vector& coefficients() const noexcept {
    return beta_;
  }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }
  [[nodiscard]] bool fitted() const noexcept { return !beta_.empty(); }

  /// Coefficient of determination on a dataset (1 = perfect, ≤ 0 = no
  /// better than predicting the mean).
  [[nodiscard]] double r_squared(const linalg::Matrix& profiles,
                                 const linalg::Vector& prr) const;

 private:
  linalg::Vector beta_;
  double intercept_ = 0.0;
};

/// One row per time window: the mean correlation-strength profile of the
/// window's states and the window's PRR.
struct PerformanceDataset {
  linalg::Matrix profiles;  ///< k × r.
  linalg::Vector prr;       ///< k.
  std::vector<wsn::Time> window_starts;
};

/// Builds the dataset from a simulation run: windows of length `window`,
/// strength profiles via NNLS against the model's Ψ. Windows with no states
/// or no originated packets are skipped.
PerformanceDataset build_performance_dataset(
    const wsn::SimulationResult& result,
    const std::vector<trace::StateVector>& states, const Vn2Model& model,
    wsn::Time window);

}  // namespace vn2::core
