#include "core/interpretation.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vn2::core {

using linalg::Matrix;
using linalg::Vector;
using metrics::HazardEvent;
using metrics::MetricFamily;
using metrics::MetricId;

metrics::HazardEvent RootCauseInterpretation::top_hazard() const {
  if (labels.empty())
    throw std::logic_error("top_hazard: interpretation has no labels");
  return labels.front().hazard;
}

RootCauseInterpretation interpret_row(const Vector& psi_row,
                                      std::size_t row_index,
                                      const InterpretOptions& options) {
  if (psi_row.size() != kEncodedCount)
    throw std::invalid_argument("interpret_row: expected 86-dim psi row");

  RootCauseInterpretation out;
  out.row = row_index;

  const Vector profile = StateEncoder::decode_signed(psi_row);
  double max_mag = 0.0;
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
    max_mag = std::max(max_mag, std::abs(profile[m]));
  if (max_mag <= 0.0) {
    out.summary = "no metric variation (inactive root-cause vector)";
    return out;
  }

  // Dominant metrics.
  std::vector<std::pair<MetricId, double>> ranked;
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
    if (std::abs(profile[m]) >= options.dominance_fraction * max_mag)
      ranked.emplace_back(metrics::metric_at(m), profile[m]);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return std::abs(a.second) > std::abs(b.second);
  });
  if (ranked.size() > options.max_dominant) ranked.resize(options.max_dominant);
  out.dominant_metrics = ranked;

  // Dominant family: total |variation| mass per family.
  std::array<double, 8> family_mass{};
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
    const auto family =
        static_cast<std::size_t>(metrics::family(metrics::metric_at(m)));
    family_mass[family] += std::abs(profile[m]);
  }
  std::size_t best_family = 0;
  for (std::size_t f = 1; f < family_mass.size(); ++f)
    if (family_mass[f] > family_mass[best_family]) best_family = f;
  out.dominant_family = static_cast<MetricFamily>(best_family);

  // Hazard matching: a hazard scores by how much of the row's variation mass
  // its signature metrics capture, weighted by how much of the signature is
  // actually active (so one shared metric does not light up every hazard).
  double total_mass = 0.0;
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
    total_mass += std::abs(profile[m]);

  for (const metrics::HazardInfo& hazard : metrics::hazard_table()) {
    double signature_mass = 0.0;
    std::size_t active_signature = 0;
    for (MetricId id : hazard.signature_metrics) {
      const double v = std::abs(profile[metrics::index_of(id)]);
      signature_mass += v;
      if (v >= options.dominance_fraction * max_mag) ++active_signature;
    }
    if (hazard.signature_metrics.empty() || total_mass <= 0.0) continue;
    // A label needs at least one of its signature metrics to be dominant —
    // diffuse sub-threshold mass across a wide signature is not evidence.
    if (active_signature == 0) continue;
    const double capture = signature_mass / total_mass;
    const double coverage = static_cast<double>(active_signature) /
                            static_cast<double>(hazard.signature_metrics.size());
    const double score = std::sqrt(capture * coverage);
    if (score >= options.min_label_score)
      out.labels.push_back({hazard.event, score});
  }
  std::sort(out.labels.begin(), out.labels.end(),
            [](const HazardLabel& a, const HazardLabel& b) {
              return a.score > b.score;
            });

  std::ostringstream ss;
  ss << "family=" << metrics::family_name(out.dominant_family)
     << "; top metrics:";
  for (std::size_t i = 0; i < std::min<std::size_t>(3, ranked.size()); ++i) {
    ss << ' ' << metrics::short_name(ranked[i].first)
       << (ranked[i].second >= 0 ? "(+)" : "(-)");
  }
  if (!out.labels.empty())
    ss << "; likely: " << metrics::hazard_name(out.labels.front().hazard);
  out.summary = ss.str();
  return out;
}

std::vector<RootCauseInterpretation> interpret(const Matrix& psi,
                                               const InterpretOptions& options) {
  std::vector<RootCauseInterpretation> out;
  out.reserve(psi.rows());
  for (std::size_t r = 0; r < psi.rows(); ++r)
    out.push_back(interpret_row(psi.row_vector(r), r, options));
  return out;
}

}  // namespace vn2::core
