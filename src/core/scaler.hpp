// Per-metric affine scaling of state vectors into [0, 1].
//
// NMF requires a non-negative input, but raw state vectors (successive
// metric differences) are signed: counters only grow, yet sensor readings,
// RSSI, and ETX move both ways, and a node reboot resets counters (sharply
// negative diffs). The paper plots Ψ rows in [-1, 1] without spelling out
// its normalization; we make the step explicit and invertible:
//
//   scaled = (raw − min) / (max − min)   per metric column,
//
// fit on the training states. A constant column maps to 0.5 so it carries no
// variation signal. The inverse transform recovers physical units for
// interpretation and display.
#pragma once

#include <array>

#include "linalg/matrix.hpp"
#include "metrics/schema.hpp"

namespace vn2::core {

class StateScaler {
 public:
  /// Fits column-wise [min, max] on training states (n × 43).
  /// Throws std::invalid_argument on an empty matrix or wrong column count.
  static StateScaler fit(const linalg::Matrix& states);

  /// Maps a raw state into [0, 1]^43. Values outside the training range are
  /// clamped (inference states may exceed what training saw).
  [[nodiscard]] linalg::Vector transform(const linalg::Vector& raw) const;
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& raw) const;

  /// Recovers raw units from a scaled vector (clamping is not undone).
  [[nodiscard]] linalg::Vector inverse(const linalg::Vector& scaled) const;

  /// Centers a scaled vector around the scaled value of "no change" (raw 0),
  /// i.e. positive = the metric grew faster than baseline. This is the
  /// [-1, 1]-style view the paper plots root-cause vectors in.
  [[nodiscard]] linalg::Vector center_on_zero(const linalg::Vector& scaled) const;

  [[nodiscard]] double column_min(std::size_t m) const { return min_.at(m); }
  [[nodiscard]] double column_max(std::size_t m) const { return max_.at(m); }

  /// Serialization for model persistence.
  [[nodiscard]] linalg::Matrix to_matrix() const;     ///< 2 × 43 (min; max).
  static StateScaler from_matrix(const linalg::Matrix& m);

  bool operator==(const StateScaler&) const = default;

 private:
  std::array<double, metrics::kMetricCount> min_{};
  std::array<double, metrics::kMetricCount> max_{};

  [[nodiscard]] double scale_one(std::size_t m, double v) const;
  [[nodiscard]] double unscale_one(std::size_t m, double v) const;
};

}  // namespace vn2::core
