#include "baselines/agnostic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vn2::baselines {

using linalg::Matrix;

Matrix correlation_matrix(const Matrix& states, std::size_t start,
                          std::size_t count) {
  if (start + count > states.rows() || count < 2)
    throw std::invalid_argument("correlation_matrix: bad window");
  const std::size_t m = states.cols();

  std::vector<double> mean(m, 0.0), std_dev(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < count; ++i) mean[j] += states(start + i, j);
    mean[j] /= static_cast<double>(count);
  }
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < count; ++i) {
      const double d = states(start + i, j) - mean[j];
      std_dev[j] += d * d;
    }
    std_dev[j] = std::sqrt(std_dev[j] / static_cast<double>(count));
  }

  Matrix corr(m, m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    corr(a, a) = 1.0;
    for (std::size_t b = a + 1; b < m; ++b) {
      if (std_dev[a] <= 0.0 || std_dev[b] <= 0.0) continue;
      double cov = 0.0;
      for (std::size_t i = 0; i < count; ++i)
        cov += (states(start + i, a) - mean[a]) *
               (states(start + i, b) - mean[b]);
      cov /= static_cast<double>(count);
      const double r = cov / (std_dev[a] * std_dev[b]);
      corr(a, b) = r;
      corr(b, a) = r;
    }
  }
  return corr;
}

double AgnosticDetector::window_deviation(const Matrix& states,
                                          std::size_t start) const {
  const Matrix corr = correlation_matrix(states, start, options_.window);
  const std::size_t m = corr.rows();
  double acc = 0.0;
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      if (!edge_mask_[a * m + b]) continue;
      const double d = corr(a, b) - reference_(a, b);
      acc += d * d;
    }
  }
  return std::sqrt(acc);
}

AgnosticDetector AgnosticDetector::fit(const Matrix& training_states,
                                       const AgnosticOptions& options) {
  if (training_states.rows() < 2 * options.window)
    throw std::invalid_argument(
        "AgnosticDetector::fit: need at least two windows of training data");

  AgnosticDetector detector;
  detector.options_ = options;
  detector.reference_ =
      correlation_matrix(training_states, 0, training_states.rows());

  const std::size_t m = training_states.cols();
  detector.edge_mask_.assign(m * m, false);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      if (std::abs(detector.reference_(a, b)) >= options.edge_threshold) {
        detector.edge_mask_[a * m + b] = true;
        detector.edges_++;
      }
    }
  }

  // Calibrate the abnormality threshold on training windows.
  std::vector<double> deviations;
  for (std::size_t start = 0; start + options.window <= training_states.rows();
       start += options.window)
    deviations.push_back(detector.window_deviation(training_states, start));
  double mean = 0.0;
  for (double d : deviations) mean += d;
  mean /= static_cast<double>(deviations.size());
  double var = 0.0;
  for (double d : deviations) var += (d - mean) * (d - mean);
  var /= static_cast<double>(deviations.size());
  detector.threshold_ = mean + options.z_threshold * std::sqrt(var);
  return detector;
}

std::vector<AgnosticVerdict> AgnosticDetector::detect(
    const Matrix& states) const {
  std::vector<AgnosticVerdict> verdicts;
  for (std::size_t start = 0; start + options_.window <= states.rows();
       start += options_.window) {
    AgnosticVerdict verdict;
    verdict.window_start = start;
    verdict.deviation = window_deviation(states, start);
    verdict.abnormal = verdict.deviation > threshold_;
    verdicts.push_back(verdict);
  }
  return verdicts;
}

}  // namespace vn2::baselines
