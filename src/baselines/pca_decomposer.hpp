// PCA decomposition baseline: the obvious alternative to NMF for
// compressing exception states. It reconstructs at least as accurately at
// equal rank (PCA is the optimal linear compressor), but its components are
// dense and sign-indefinite, so they cannot be read as additive root causes
// — the interpretability contrast the paper's NMF choice rests on. The
// ablation bench quantifies both sides.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "linalg/pca.hpp"

namespace vn2::baselines {

struct PcaDecomposition {
  linalg::PcaResult model;
  double approximation_accuracy = 0.0;  ///< ‖E − reconstruction‖_F.
  /// Mean fraction of a component's mass concentrated in its top 5 metrics —
  /// a sparsity/interpretability proxy (1.0 = perfectly concentrated).
  double component_concentration = 0.0;
  /// Fraction of component entries that are negative (NMF: always 0).
  double negative_fraction = 0.0;
};

/// Decomposes an exception matrix at rank k and computes the comparison
/// statistics used by the NMF-vs-PCA ablation.
PcaDecomposition pca_decompose(const linalg::Matrix& exceptions,
                               std::size_t rank);

/// Same statistics for an NMF representative matrix, for side-by-side
/// reporting.
struct FactorStats {
  double component_concentration = 0.0;
  double negative_fraction = 0.0;
};
FactorStats factor_stats(const linalg::Matrix& components);

}  // namespace vn2::baselines
