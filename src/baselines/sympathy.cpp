#include "baselines/sympathy.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/contracts.hpp"

namespace vn2::baselines {

using metrics::HazardEvent;
using metrics::MetricId;

SympathyDiagnoser::SympathyDiagnoser(SympathyThresholds thresholds)
    : thresholds_(thresholds) {}

namespace {

double quantile_of(const linalg::Matrix& states, MetricId id, double q) {
  std::vector<double> column;
  column.reserve(states.rows());
  const std::size_t j = metrics::index_of(id);
  for (std::size_t i = 0; i < states.rows(); ++i)
    column.push_back(states(i, j));
  std::sort(column.begin(), column.end());
  const double pos = q * static_cast<double>(column.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, column.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return column[lo] * (1.0 - frac) + column[hi] * frac;
}

}  // namespace

SympathyDiagnoser SympathyDiagnoser::fit(const linalg::Matrix& training_states,
                                         double quantile) {
  if (training_states.rows() == 0 ||
      training_states.cols() != metrics::kMetricCount)
    throw std::invalid_argument("SympathyDiagnoser::fit: need n x 43 states");
  VN2_CHECK(quantile > 0.0 && quantile < 1.0,
            "SympathyDiagnoser::fit: quantile must be in (0, 1)");
  SympathyThresholds t;
  t.voltage_drop =
      quantile_of(training_states, MetricId::kVoltage, 1.0 - quantile);
  t.no_parent =
      quantile_of(training_states, MetricId::kNoParentCounter, quantile);
  t.loop = quantile_of(training_states, MetricId::kLoopCounter, quantile);
  t.overflow =
      quantile_of(training_states, MetricId::kOverflowDropCounter, quantile);
  t.mac_backoff =
      quantile_of(training_states, MetricId::kMacBackoffCounter, quantile);
  t.noack =
      quantile_of(training_states, MetricId::kNoackRetransmitCounter, quantile);
  t.parent_change =
      quantile_of(training_states, MetricId::kParentChangeCounter, quantile);
  t.neighbor_gain =
      quantile_of(training_states, MetricId::kNeighborNum, quantile);
  t.duplicate =
      quantile_of(training_states, MetricId::kDuplicateCounter, quantile);
  return SympathyDiagnoser(t);
}

std::optional<HazardEvent> SympathyDiagnoser::diagnose(
    const linalg::Vector& raw_state) const {
  if (raw_state.size() != metrics::kMetricCount)
    throw std::invalid_argument("SympathyDiagnoser: state must have 43 entries");
  auto value = [&](MetricId id) { return raw_state[metrics::index_of(id)]; };

  // Fixed expert ordering; first hit wins — by design, exactly one verdict.
  if (value(MetricId::kVoltage) < thresholds_.voltage_drop)
    return HazardEvent::kNodeLowVoltage;
  if (value(MetricId::kNoParentCounter) > thresholds_.no_parent)
    return HazardEvent::kNodeFailure;
  if (value(MetricId::kLoopCounter) > thresholds_.loop)
    return HazardEvent::kRoutingLoop;
  if (value(MetricId::kOverflowDropCounter) > thresholds_.overflow)
    return HazardEvent::kQueueOverflow;
  if (value(MetricId::kMacBackoffCounter) > thresholds_.mac_backoff)
    return HazardEvent::kContention;
  if (value(MetricId::kNoackRetransmitCounter) > thresholds_.noack)
    return HazardEvent::kLinkDegradation;
  if (value(MetricId::kParentChangeCounter) > thresholds_.parent_change)
    return HazardEvent::kFrequentParentChange;
  if (value(MetricId::kNeighborNum) > thresholds_.neighbor_gain)
    return HazardEvent::kNodeReboot;
  if (value(MetricId::kDuplicateCounter) > thresholds_.duplicate)
    return HazardEvent::kDuplicateStorm;
  return std::nullopt;
}

}  // namespace vn2::baselines
