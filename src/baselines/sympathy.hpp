// Sympathy-style baseline diagnoser (Ramanathan et al., SenSys 2005).
//
// The paper's "drawback 1" strawman: an evidence-driven decision tree that
// walks a fixed, expert-ordered list of threshold rules and stops at the
// FIRST rule that fires — so every abnormal state is attributed to exactly
// one root cause, even when several act simultaneously. Thresholds can be
// fit from training data (percentile rule) to give the baseline its best
// shot.
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "metrics/hazards.hpp"

namespace vn2::baselines {

struct SympathyThresholds {
  double voltage_drop = -0.05;       ///< ΔVoltage below this → power issue.
  double no_parent = 0.5;            ///< ΔNo_parent_counter above this.
  double loop = 0.5;                 ///< ΔLoop_counter.
  double overflow = 0.5;             ///< ΔOverflow_drop_counter.
  double mac_backoff = 5.0;          ///< ΔMacI_backoff_counter.
  double noack = 5.0;                ///< ΔNOACK_retransmit_counter.
  double parent_change = 1.5;        ///< ΔParent_change_counter.
  double neighbor_gain = 0.5;        ///< ΔNeighbor_num above this → join.
  double duplicate = 3.0;            ///< ΔDuplicate_counter.
};

class SympathyDiagnoser {
 public:
  explicit SympathyDiagnoser(SympathyThresholds thresholds = {});

  /// Fits thresholds at the given upper quantile of each rule metric's
  /// training distribution (voltage uses the lower quantile).
  static SympathyDiagnoser fit(const linalg::Matrix& training_states,
                               double quantile = 0.98);

  /// Walks the decision tree. Returns the single root cause of the first
  /// rule that fires, or nullopt (state judged normal).
  [[nodiscard]] std::optional<metrics::HazardEvent> diagnose(
      const linalg::Vector& raw_state) const;

  [[nodiscard]] const SympathyThresholds& thresholds() const noexcept {
    return thresholds_;
  }

 private:
  SympathyThresholds thresholds_;
};

}  // namespace vn2::baselines
