#include "baselines/pca_decomposer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace vn2::baselines {

using linalg::Matrix;

FactorStats factor_stats(const Matrix& components) {
  FactorStats stats;
  if (components.rows() == 0) return stats;
  std::size_t negatives = 0, total = 0;
  double concentration_sum = 0.0;
  for (std::size_t r = 0; r < components.rows(); ++r) {
    std::vector<double> magnitudes;
    magnitudes.reserve(components.cols());
    double mass = 0.0;
    for (std::size_t c = 0; c < components.cols(); ++c) {
      const double v = components(r, c);
      if (v < 0.0) ++negatives;
      ++total;
      magnitudes.push_back(std::abs(v));
      mass += std::abs(v);
    }
    std::sort(magnitudes.rbegin(), magnitudes.rend());
    double top = 0.0;
    for (std::size_t i = 0; i < std::min<std::size_t>(5, magnitudes.size());
         ++i)
      top += magnitudes[i];
    concentration_sum += mass > 0.0 ? top / mass : 0.0;
  }
  stats.component_concentration =
      concentration_sum / static_cast<double>(components.rows());
  stats.negative_fraction =
      total ? static_cast<double>(negatives) / static_cast<double>(total) : 0.0;
  return stats;
}

PcaDecomposition pca_decompose(const Matrix& exceptions, std::size_t rank) {
  PcaDecomposition out;
  out.model = linalg::pca(exceptions, rank);
  out.approximation_accuracy =
      linalg::frobenius_distance(exceptions, linalg::pca_reconstruct(out.model));
  const FactorStats stats = factor_stats(out.model.components);
  out.component_concentration = stats.component_concentration;
  out.negative_fraction = stats.negative_fraction;
  return out;
}

}  // namespace vn2::baselines
