// Agnostic-Diagnosis-style baseline (Miao et al., INFOCOM 2011).
//
// Exploits correlations among a node's metrics: a correlation graph is
// learnt over a training window; at detection time the correlation structure
// of a sliding window of recent states is compared against it. A large
// structural deviation flags the window as abnormal. By construction the
// verdict is COARSE — good/bad only, no root-cause explanation — which is
// the limitation the paper positions VN2 against.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace vn2::baselines {

struct AgnosticOptions {
  std::size_t window = 16;        ///< States per correlation window.
  /// Windows with deviation above mean + z·std of training deviations are
  /// flagged.
  double z_threshold = 3.0;
  /// Only metric pairs with |training correlation| above this enter the
  /// graph (weak edges are noise).
  double edge_threshold = 0.5;
};

struct AgnosticVerdict {
  std::size_t window_start = 0;  ///< First state index of the window.
  double deviation = 0.0;        ///< ‖C_train − C_window‖ over graph edges.
  bool abnormal = false;
};

class AgnosticDetector {
 public:
  /// Learns the reference correlation graph from training states (n × m).
  /// Throws std::invalid_argument if fewer than 2·window rows.
  static AgnosticDetector fit(const linalg::Matrix& training_states,
                              const AgnosticOptions& options = {});

  /// Scores every full window of the given state sequence.
  [[nodiscard]] std::vector<AgnosticVerdict> detect(
      const linalg::Matrix& states) const;

  [[nodiscard]] const linalg::Matrix& reference_correlation() const noexcept {
    return reference_;
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  AgnosticOptions options_;
  linalg::Matrix reference_;     ///< m × m training correlations.
  std::vector<bool> edge_mask_;  ///< Row-major m × m, pairs in the graph.
  std::size_t edges_ = 0;
  double threshold_ = 0.0;

  [[nodiscard]] double window_deviation(const linalg::Matrix& states,
                                        std::size_t start) const;
};

/// Pearson correlation matrix of the rows [start, start+count) of `states`.
linalg::Matrix correlation_matrix(const linalg::Matrix& states,
                                  std::size_t start, std::size_t count);

}  // namespace vn2::baselines
