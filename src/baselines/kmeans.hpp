// k-means clustering baseline for root-cause extraction.
//
// The obvious non-factorization alternative to NMF: cluster the exception
// states and call the centroids "root causes". Its structural limitation is
// exactly the paper's drawback 1 in another guise — hard assignment gives
// every state ONE cause, so states produced by two simultaneous faults land
// between centroids and reconstruct poorly. The ablation bench quantifies
// this against NMF's additive multi-cause decomposition.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace vn2::baselines {

struct KmeansOptions {
  std::size_t max_iterations = 100;
  /// Stop when no assignment changes (always checked) or centroid movement
  /// falls below this L2 threshold.
  double tolerance = 1e-8;
  std::uint64_t seed = 0x4B3A25ULL;  ///< k-means++ seeding.
};

struct KmeansResult {
  linalg::Matrix centroids;            ///< k × m.
  std::vector<std::size_t> assignment; ///< Per data row, its cluster.
  double inertia = 0.0;                ///< Σ squared distance to centroid.
  std::size_t iterations = 0;
  bool converged = false;
};

/// Lloyd's algorithm with k-means++ initialization.
/// Throws std::invalid_argument if k == 0, k > rows, or data is empty.
KmeansResult kmeans(const linalg::Matrix& data, std::size_t k,
                    const KmeansOptions& options = {});

/// Reconstruction of each row by its assigned centroid — the clustering
/// analogue of W·Ψ, for apples-to-apples accuracy comparison.
linalg::Matrix kmeans_reconstruct(const KmeansResult& result,
                                  std::size_t rows);

}  // namespace vn2::baselines
