#include "baselines/kmeans.hpp"

#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace vn2::baselines {

using linalg::Matrix;

namespace {

double squared_distance(const Matrix& data, std::size_t row,
                        const Matrix& centroids, std::size_t c) {
  double acc = 0.0;
  for (std::size_t j = 0; j < data.cols(); ++j) {
    const double d = data(row, j) - centroids(c, j);
    acc += d * d;
  }
  return acc;
}

}  // namespace

KmeansResult kmeans(const Matrix& data, std::size_t k,
                    const KmeansOptions& options) {
  if (data.rows() == 0 || data.cols() == 0)
    throw std::invalid_argument("kmeans: empty data");
  if (k == 0 || k > data.rows())
    throw std::invalid_argument("kmeans: k must be in [1, rows]");

  const std::size_t n = data.rows();
  const std::size_t m = data.cols();
  std::mt19937_64 rng(options.seed);

  // k-means++ seeding: first centroid uniform, then proportional to the
  // squared distance to the nearest chosen centroid.
  KmeansResult result;
  result.centroids = Matrix(k, m);
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  {
    std::uniform_int_distribution<std::size_t> first(0, n - 1);
    const std::size_t pick = first(rng);
    for (std::size_t j = 0; j < m; ++j)
      result.centroids(0, j) = data(pick, j);
  }
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i],
                            squared_distance(data, i, result.centroids, c - 1));
      total += nearest[i];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      std::uniform_real_distribution<double> dist(0.0, total);
      double target = dist(rng);
      for (std::size_t i = 0; i < n; ++i) {
        target -= nearest[i];
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      std::uniform_int_distribution<std::size_t> any(0, n - 1);
      pick = any(rng);
    }
    for (std::size_t j = 0; j < m; ++j)
      result.centroids(c, j) = data(pick, j);
  }

  // Lloyd iterations.
  result.assignment.assign(n, 0);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;

    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_distance = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(data, i, result.centroids, c);
        if (d < best_distance) {
          best_distance = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }

    Matrix next(k, m, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      counts[result.assignment[i]]++;
      for (std::size_t j = 0; j < m; ++j)
        next(result.assignment[i], j) += data(i, j);
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Empty cluster keeps its centroid.
      for (std::size_t j = 0; j < m; ++j) {
        const double updated = next(c, j) / static_cast<double>(counts[c]);
        const double delta = updated - result.centroids(c, j);
        movement += delta * delta;
        result.centroids(c, j) = updated;
      }
    }

    if (!changed || std::sqrt(movement) < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    result.inertia +=
        squared_distance(data, i, result.centroids, result.assignment[i]);
  return result;
}

Matrix kmeans_reconstruct(const KmeansResult& result, std::size_t rows) {
  if (result.assignment.size() != rows)
    throw std::invalid_argument("kmeans_reconstruct: row count mismatch");
  Matrix out(rows, result.centroids.cols());
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < result.centroids.cols(); ++j)
      out(i, j) = result.centroids(result.assignment[i], j);
  return out;
}

}  // namespace vn2::baselines
