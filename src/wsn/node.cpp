#include "wsn/node.hpp"

#include <algorithm>
#include <stdexcept>

namespace vn2::wsn {

using metrics::MetricId;

Node::Node(NodeId id, Position position, NodeParams params)
    : id_(id), position_(position), params_(params),
      voltage_(params.initial_voltage) {}

void Node::fail() {
  alive_ = false;
  sending = false;
  queue_.clear();
}

void Node::reboot(Time now) {
  alive_ = true;
  boot_time_ = now;
  // Volatile state is lost on reboot: counters restart at zero (their diffs
  // at the sink go sharply negative — part of the reboot signature), the
  // routing state and caches are rebuilt from scratch.
  metrics_.fill(0.0);
  table_.clear();
  parent_ = kInvalidNode;
  path_etx_ = 0.0;
  route_pinned_ = false;
  beacon_seq_ = 0;
  data_seq_ = 0;
  queue_.clear();
  duplicate_fifo_.clear();
  duplicate_set_.clear();
  retransmit_count = 0;
  sending = false;
  channel_activity = 0.0;
  report_epoch = 0;
  beacon_interval = 0.0;
}

void Node::drain(double volts) noexcept {
  voltage_ = std::max(0.0, voltage_ - volts * drain_multiplier_);
}

bool Node::brown_out() const noexcept {
  return voltage_ < params_.shutdown_voltage;
}

double Node::clock_scale(double temperature_c) const noexcept {
  const double dt = temperature_c - 25.0;
  // Crystal frequency error grows quadratically away from the calibration
  // temperature; a fast oscillator shortens intervals (scale < 1).
  const double drift = params_.clock_drift_coeff * dt * dt;
  return std::clamp(1.0 - drift, 0.5, 1.5);
}

void Node::refresh_neighbor_metrics() {
  const auto& slots = table_.slots();
  for (std::size_t i = 0; i < NeighborTable::kSlots; ++i) {
    const NeighborEntry& entry = slots[i];
    if (entry.occupied()) {
      // Report RSSI as a non-negative magnitude above a -100 dBm reference
      // so the metric, like the paper's, lives on a positive scale.
      set_metric(metrics::neighbor_rssi(i),
                 std::max(0.0, entry.rssi_dbm + 100.0));
      set_metric(metrics::neighbor_etx(i), entry.link_etx());
    } else {
      set_metric(metrics::neighbor_rssi(i), 0.0);
      set_metric(metrics::neighbor_etx(i), 0.0);
    }
  }
  set_metric(MetricId::kNeighborNum,
             static_cast<double>(table_.occupancy()));
}

void Node::set_route(NodeId parent, double path_etx) noexcept {
  parent_ = parent;
  path_etx_ = path_etx;
}

void Node::clear_route() noexcept {
  parent_ = kInvalidNode;
  path_etx_ = NeighborTable::kEtxCap;
}

bool Node::enqueue(DataPacket packet) {
  if (queue_.size() >= params_.queue_capacity) {
    bump(MetricId::kOverflowDropCounter);
    return false;
  }
  queue_.push_back(std::move(packet));
  return true;
}

DataPacket& Node::queue_front() {
  if (queue_.empty()) throw std::logic_error("queue_front: empty queue");
  return queue_.front();
}

void Node::pop_front() {
  if (queue_.empty()) throw std::logic_error("pop_front: empty queue");
  queue_.pop_front();
  retransmit_count = 0;
}

bool Node::check_duplicate(NodeId origin, std::uint32_t seq) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(origin) << 32) | seq;
  if (duplicate_set_.contains(key)) {
    bump(MetricId::kDuplicateCounter);
    return true;
  }
  duplicate_set_.insert(key);
  duplicate_fifo_.push_back(key);
  if (duplicate_fifo_.size() > params_.duplicate_cache_size) {
    duplicate_set_.erase(duplicate_fifo_.front());
    duplicate_fifo_.pop_front();
  }
  return false;
}

}  // namespace vn2::wsn
