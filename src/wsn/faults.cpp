#include "wsn/faults.hpp"

namespace vn2::wsn {

metrics::HazardEvent hazard_of(FaultCommand::Type type) noexcept {
  using metrics::HazardEvent;
  switch (type) {
    case FaultCommand::Type::kNodeFailure: return HazardEvent::kNodeFailure;
    case FaultCommand::Type::kNodeReboot: return HazardEvent::kNodeReboot;
    case FaultCommand::Type::kLinkDegradation:
      return HazardEvent::kLinkDegradation;
    case FaultCommand::Type::kJammer: return HazardEvent::kContention;
    case FaultCommand::Type::kForcedLoop: return HazardEvent::kRoutingLoop;
    case FaultCommand::Type::kBatteryDrain:
      return HazardEvent::kNodeLowVoltage;
    case FaultCommand::Type::kCongestionBurst:
      return HazardEvent::kQueueOverflow;
    case FaultCommand::Type::kNoiseRise: return HazardEvent::kRisingNoise;
    case FaultCommand::Type::kTemperatureSpike:
      return HazardEvent::kUnstableClock;
  }
  return HazardEvent::kLinkDegradation;
}

}  // namespace vn2::wsn
