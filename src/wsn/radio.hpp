// Radio propagation model: log-distance path loss with per-link lognormal
// shadowing, an SNR→PRR sigmoid calibrated to CC2420-class radios, and
// link-level degradation hooks for fault injection.
//
// Shadowing is a deterministic function of the (unordered) link endpoints so
// the same pair always sees the same fade — this is what makes links
// persistently "good" or "bad" the way real deployments behave.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "wsn/environment.hpp"
#include "wsn/types.hpp"

namespace vn2::wsn {

struct RadioParams {
  double tx_power_dbm = -7.0;        ///< CC2420 power level 2 ≈ -7 dBm.
  double path_loss_at_1m_db = 40.0;  ///< 2.4 GHz reference loss.
  double path_loss_exponent = 3.0;   ///< Urban outdoor.
  double shadowing_stddev_db = 4.0;
  /// SNR (dB) at which PRR = 50%.
  double prr_midpoint_snr_db = 5.0;
  /// Sigmoid steepness: PRR = 1 / (1 + exp(-k · (snr − midpoint))).
  double prr_steepness = 0.9;
  /// RSSI below which a node is not considered a neighbor candidate.
  double sensitivity_dbm = -94.0;
};

class RadioModel {
 public:
  RadioModel(RadioParams params, const Environment* environment,
             std::uint64_t seed);

  /// Received signal strength from `from` at `to` in dBm (excluding noise).
  [[nodiscard]] double rssi_dbm(NodeId from, const Position& from_pos,
                                NodeId to, const Position& to_pos) const;

  /// Packet reception ratio for a single transmission attempt at time t.
  /// Includes the noise floor at the receiver and any link degradation.
  [[nodiscard]] double prr(NodeId from, const Position& from_pos, NodeId to,
                           const Position& to_pos, Time t) const;

  /// True if the link is usable at all (RSSI above sensitivity).
  [[nodiscard]] bool in_range(NodeId from, const Position& from_pos, NodeId to,
                              const Position& to_pos) const;

  /// Adds `loss_db` of extra attenuation on the (unordered) link for
  /// [start, end] — the fault injector's link-degradation hook.
  void degrade_link(NodeId a, NodeId b, double loss_db, Time start, Time end);
  void clear_degradations();

  [[nodiscard]] const RadioParams& params() const noexcept { return params_; }

 private:
  struct Degradation {
    double loss_db;
    Time start;
    Time end;
  };

  RadioParams params_;
  const Environment* environment_;
  std::uint64_t seed_;
  std::unordered_map<std::uint64_t, std::vector<Degradation>> degradations_;

  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b) noexcept;
  [[nodiscard]] double shadowing_db(NodeId a, NodeId b) const;
  [[nodiscard]] double degradation_db(NodeId a, NodeId b, Time t) const;
};

}  // namespace vn2::wsn
