// Fault injection: the hazard classes of the paper's Table I and evaluation,
// expressed as a time-ordered schedule the simulator executes. Every applied
// fault is also recorded as ground truth so the evaluation benches can score
// diagnoses against what was actually injected.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/hazards.hpp"
#include "wsn/types.hpp"

namespace vn2::wsn {

struct FaultCommand {
  enum class Type : std::uint8_t {
    kNodeFailure,      ///< Node goes dark at `start` (until a later reboot).
    kNodeReboot,       ///< Node restarts at `start` (counters reset).
    kLinkDegradation,  ///< Extra loss on link (node, peer) over [start, end].
    kJammer,           ///< Contention source at `center`/`radius` over [start, end].
    kForcedLoop,       ///< Pins node's parent to a child over [start, end].
    kBatteryDrain,     ///< Drain-rate multiplier on node over [start, end].
    kCongestionBurst,  ///< Nodes within radius emit extra traffic over [start, end].
    kNoiseRise,        ///< Regional noise-floor rise over [start, end].
    kTemperatureSpike, ///< Regional heat wave (clock drift) over [start, end].
  };

  Type type = Type::kNodeFailure;
  Time start = 0.0;
  Time end = 0.0;          ///< Ignored for instantaneous faults.
  NodeId node = kInvalidNode;
  NodeId peer = kInvalidNode;  ///< Second endpoint for link faults.
  Position center;         ///< For regional faults.
  double radius_m = 0.0;
  double magnitude = 0.0;  ///< dB, multiplier, or pkts/s depending on type.
};

/// Ground-truth record of an applied fault, used to score diagnoses.
struct InjectedFault {
  FaultCommand command;
  metrics::HazardEvent hazard;          ///< The hazard class it realizes.
  std::vector<NodeId> affected_nodes;   ///< Nodes inside the blast radius.
};

/// Maps a fault type to the hazard-event class it manifests as.
[[nodiscard]] metrics::HazardEvent hazard_of(FaultCommand::Type type) noexcept;

}  // namespace vn2::wsn
