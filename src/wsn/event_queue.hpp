// Discrete-event engine: a time-ordered queue of callbacks.
//
// Events scheduled at the same timestamp fire in scheduling order (a strictly
// increasing sequence number breaks ties), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "wsn/types.hpp"

namespace vn2::wsn {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Events in the past (before the
  /// current time) are clamped to "now" rather than reordering history.
  void schedule(Time at, Callback fn);

  /// Schedules `fn` `delay` seconds from the current time.
  void schedule_in(Time delay, Callback fn);

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Runs events until the queue empties or the next event is after
  /// `until`. Returns the number of events executed.
  std::size_t run_until(Time until);

  /// Runs everything. Returns the number of events executed.
  std::size_t run_all();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace vn2::wsn
