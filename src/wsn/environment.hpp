// Physical environment model: diurnal sensor fields (temperature, humidity,
// light), a spatial noise floor, and scriptable regional disturbances.
//
// The CitySee motes sample their environment each reporting epoch; hazards
// like rising noise or temperature-driven clock drift enter the simulation
// through this model.
#pragma once

#include <cstdint>
#include <vector>

#include "wsn/types.hpp"

namespace vn2::wsn {

struct EnvironmentParams {
  double mean_temperature_c = 26.0;   ///< August in an urban deployment.
  double diurnal_temperature_amplitude_c = 6.0;
  double mean_humidity_pct = 60.0;
  double diurnal_humidity_amplitude_pct = 15.0;
  double max_light_lux = 900.0;
  double base_noise_dbm = -98.0;      ///< CC2420-like noise floor.
  double sensor_noise_stddev = 0.03;  ///< Relative measurement jitter.
  /// Seconds after midnight at which the simulation starts.
  double start_of_day_s = 8.0 * 3600.0;
};

/// A time-bounded regional disturbance of one environmental quantity.
struct Disturbance {
  enum class Kind : std::uint8_t {
    kNoiseRise,        ///< Raises the noise floor (dB added).
    kTemperatureSpike, ///< Adds degrees C.
    kHumiditySpike,    ///< Adds percentage points.
  };
  Kind kind = Kind::kNoiseRise;
  Position center;
  double radius_m = 50.0;
  Time start = 0.0;
  Time end = 0.0;
  double magnitude = 0.0;
};

/// Deterministic (seeded) environment. All queries are pure functions of
/// (position, time) plus the registered disturbances, so nodes can sample
/// independently without shared mutable state.
class Environment {
 public:
  explicit Environment(EnvironmentParams params = {},
                       std::uint64_t seed = 0xE27B0ULL);

  void add_disturbance(const Disturbance& d);
  [[nodiscard]] const std::vector<Disturbance>& disturbances() const noexcept {
    return disturbances_;
  }

  /// Ambient temperature in °C at a position and time.
  [[nodiscard]] double temperature_c(const Position& p, Time t) const;
  /// Relative humidity in percent.
  [[nodiscard]] double humidity_pct(const Position& p, Time t) const;
  /// Illuminance in lux (0 at night, peaking midday).
  [[nodiscard]] double light_lux(const Position& p, Time t) const;
  /// Noise floor in dBm, including active noise disturbances.
  [[nodiscard]] double noise_floor_dbm(const Position& p, Time t) const;

  /// Multiplicative sensor jitter in [1-3σ, 1+3σ], deterministic per
  /// (node, metric, epoch) so that repeated queries agree.
  [[nodiscard]] double sensor_jitter(NodeId node, std::uint32_t metric,
                                     std::uint64_t epoch) const;

  [[nodiscard]] const EnvironmentParams& params() const noexcept {
    return params_;
  }

 private:
  EnvironmentParams params_;
  std::uint64_t seed_;
  std::vector<Disturbance> disturbances_;

  [[nodiscard]] double disturbance_sum(Disturbance::Kind kind,
                                       const Position& p, Time t) const;
};

}  // namespace vn2::wsn
