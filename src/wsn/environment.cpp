#include "wsn/environment.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/contracts.hpp"

namespace vn2::wsn {

namespace {

constexpr double kSecondsPerDay = 86400.0;

/// SplitMix64 — cheap stateless hash used for per-sample deterministic noise.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash value.
double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

Environment::Environment(EnvironmentParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void Environment::add_disturbance(const Disturbance& d) {
  disturbances_.push_back(d);
}

double Environment::disturbance_sum(Disturbance::Kind kind, const Position& p,
                                    Time t) const {
  double total = 0.0;
  for (const Disturbance& d : disturbances_) {
    if (d.kind != kind || t < d.start || t > d.end) continue;
    const double dist = distance(p, d.center);
    if (dist > d.radius_m) continue;
    // Linear falloff from the epicenter.
    total += d.magnitude * (1.0 - dist / std::max(d.radius_m, 1e-9));
  }
  return total;
}

double Environment::temperature_c(const Position& p, Time t) const {
  VN2_REQUIRE(t >= 0.0, "temperature_c: simulation time must be nonnegative");
  const double day_phase =
      2.0 * std::numbers::pi *
      std::fmod(t + params_.start_of_day_s, kSecondsPerDay) / kSecondsPerDay;
  // Peak mid-afternoon (phase shift), trough pre-dawn.
  const double diurnal = params_.diurnal_temperature_amplitude_c *
                         std::sin(day_phase - std::numbers::pi / 2.0);
  // Mild spatial gradient so nodes are not identical.
  const double spatial = 0.002 * (p.x + p.y);
  return params_.mean_temperature_c + diurnal + spatial +
         disturbance_sum(Disturbance::Kind::kTemperatureSpike, p, t);
}

double Environment::humidity_pct(const Position& p, Time t) const {
  VN2_REQUIRE(t >= 0.0, "humidity_pct: simulation time must be nonnegative");
  const double day_phase =
      2.0 * std::numbers::pi *
      std::fmod(t + params_.start_of_day_s, kSecondsPerDay) / kSecondsPerDay;
  // Humidity runs opposite to temperature.
  const double diurnal = params_.diurnal_humidity_amplitude_pct *
                         std::sin(day_phase + std::numbers::pi / 2.0);
  const double h = params_.mean_humidity_pct + diurnal +
                   disturbance_sum(Disturbance::Kind::kHumiditySpike, p, t);
  return std::clamp(h, 0.0, 100.0);
}

double Environment::light_lux(const Position& p, Time t) const {
  VN2_REQUIRE(t >= 0.0, "light_lux: simulation time must be nonnegative");
  (void)p;
  const double seconds_into_day =
      std::fmod(t + params_.start_of_day_s, kSecondsPerDay);
  // Daylight window 06:00–18:00 with a sinusoidal arc.
  const double sunrise = 6.0 * 3600.0;
  const double sunset = 18.0 * 3600.0;
  if (seconds_into_day < sunrise || seconds_into_day > sunset) return 0.0;
  const double arc = std::numbers::pi * (seconds_into_day - sunrise) /
                     (sunset - sunrise);
  return params_.max_light_lux * std::sin(arc);
}

double Environment::noise_floor_dbm(const Position& p, Time t) const {
  return params_.base_noise_dbm +
         disturbance_sum(Disturbance::Kind::kNoiseRise, p, t);
}

double Environment::sensor_jitter(NodeId node, std::uint32_t metric,
                                  std::uint64_t epoch) const {
  const std::uint64_t h =
      mix(seed_ ^ mix(static_cast<std::uint64_t>(node) << 40 ^
                      static_cast<std::uint64_t>(metric) << 20 ^ epoch));
  // Approximate Gaussian by summing three uniforms (Irwin–Hall), centered.
  const double u = to_unit(h) + to_unit(mix(h)) + to_unit(mix(mix(h)));
  const double gauss = (u - 1.5) * 2.0;  // roughly N(0, 1) on [-3, 3]
  return 1.0 + params_.sensor_noise_stddev * gauss;
}

}  // namespace vn2::wsn
