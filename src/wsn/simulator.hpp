// The discrete-event WSN simulator: a CTP-style collection network of
// TelosB-like nodes with a CSMA MAC, instrumented with the 43 VN2 metrics
// and driven by a fault-injection schedule.
//
// Model notes (where we approximate full-fidelity radio simulation):
//  * CSMA is modeled statistically: each node keeps an exponentially-decaying
//    "channel activity" variable bumped by nearby transmissions; the busy
//    probability of a send attempt grows with it (plus active jammers). This
//    reproduces the *metric signature* of contention (MacI_backoff_counter,
//    NOACK retransmits) without bit-level channel arbitration.
//  * Links are independent Bernoulli channels with PRR from the radio model;
//    there is no capture/SINR interaction between concurrent packets.
//  * Duplicate suppression keys on (origin, seq, hops) as CTP does on
//    (origin, seq, THL), so a routing loop re-forwards packets every
//    revolution until the hop cap — producing the paper's loop signature
//    (transmit/self-transmit/duplicate/overflow counters all surge).
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "wsn/environment.hpp"
#include "wsn/event_queue.hpp"
#include "wsn/faults.hpp"
#include "wsn/node.hpp"
#include "wsn/packet.hpp"
#include "wsn/radio.hpp"
#include "wsn/types.hpp"

namespace vn2::wsn {

struct SimConfig {
  /// Node positions; index = NodeId, node 0 is the sink.
  std::vector<Position> positions;
  Time duration = 3600.0;
  Time report_period = 600.0;  ///< CitySee: 10 minutes.
  Time beacon_period = 60.0;
  /// Trickle-style adaptive beaconing (CTP): the interval starts at
  /// beacon_period and doubles while the node's route is stable, up to
  /// beacon_interval_max; a parent change, route loss, loop detection, or
  /// reboot resets it. Off by default (fixed-period beacons).
  bool adaptive_beaconing = false;
  Time beacon_interval_max = 0.0;  ///< 0 → 8 × beacon_period.
  /// BoX-MAC-style low-power listening: receivers sleep and probe the
  /// channel every lpl_interval for lpl_probe seconds; a unicast sender
  /// pays an extended preamble (up to one full interval) until the
  /// receiver's wake moment, and broadcasts (beacons) pay the full
  /// interval. Cuts idle radio-on time by ~interval/probe at the price of
  /// more expensive transmissions. Off by default (always-on radio).
  bool low_power_listening = false;
  Time lpl_interval = 0.512;
  Time lpl_probe = 0.011;
  Time retry_delay = 0.5;      ///< Between retransmissions of one packet.
  Time backoff_delay = 0.05;   ///< CSMA backoff wait.
  Time inter_packet_gap = 0.05;  ///< Between queue services.
  Time route_hold_down = 10.0; ///< Retry cadence while no parent exists.
  Time neighbor_timeout = 360.0;
  double tx_duration_s = 0.004;
  double ack_duration_s = 0.001;
  /// Radio listening duty cycle (fraction of wall time the radio is on when
  /// idle) — contributes the Radio_on_time baseline.
  double idle_duty_cycle = 0.05;
  double csma_base_busy = 0.02;
  double csma_activity_weight = 0.06;
  std::size_t csma_max_backoffs = 5;
  double parent_hysteresis_etx = 1.5;
  /// Consecutive NOACK failures after which the parent is evicted.
  std::size_t parent_eviction_failures = 8;
  std::uint8_t max_hops = 32;  ///< TTL: drop beyond this (loop guard).
  NodeParams node;
  RadioParams radio;
  EnvironmentParams environment;
  std::uint64_t seed = 0x5137D0ULL;
};

/// A data packet as received by the sink.
struct SinkPacketRecord {
  Time recv_time = 0.0;
  NodeId origin = kInvalidNode;
  std::uint64_t epoch = 0;
  metrics::PacketType type = metrics::PacketType::kC1;
  std::vector<double> values;  ///< Block values in schema order.
  std::uint8_t hops = 0;
};

/// Log of every self-generated report packet (for PRR accounting).
struct Origination {
  Time time = 0.0;
  NodeId origin = kInvalidNode;
  std::uint64_t epoch = 0;
  metrics::PacketType type = metrics::PacketType::kC1;
};

struct SimStats {
  std::uint64_t beacons_sent = 0;
  std::uint64_t data_transmissions = 0;
  std::uint64_t data_delivered_hop = 0;  ///< Successful single-hop deliveries.
  std::uint64_t packets_at_sink = 0;
  std::uint64_t noack_retransmits = 0;
  std::uint64_t queue_overflows = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t loops_detected = 0;
  std::uint64_t drops_after_retry_limit = 0;
  std::uint64_t ttl_drops = 0;
  std::uint64_t mac_backoffs = 0;
};

struct SimulationResult {
  std::vector<SinkPacketRecord> sink_log;
  std::vector<Origination> originations;
  std::vector<InjectedFault> ground_truth;
  SimStats stats;
  Time duration = 0.0;
  std::size_t node_count = 0;
  Time report_period = 0.0;
};

class Simulator {
 public:
  explicit Simulator(SimConfig config);

  /// Registers a fault; must be called before run()/run_until() passes the
  /// fault's start time. Recorded as ground truth with its blast radius.
  void inject(const FaultCommand& command);

  /// Runs the full configured duration and returns the collected result.
  SimulationResult run();

  /// Steps the simulation to absolute time `t` (idempotent if t <= now).
  void run_until(Time t);
  [[nodiscard]] Time now() const noexcept { return queue_.now(); }

  /// Collects results accumulated so far (does not stop the simulation).
  [[nodiscard]] SimulationResult snapshot_result() const;

  // --- introspection (tests, examples) --------------------------------------
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_.at(id); }
  [[nodiscard]] Node& mutable_node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const Environment& environment() const noexcept {
    return environment_;
  }
  [[nodiscard]] const RadioModel& radio() const noexcept { return radio_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<NodeId>& neighbors_in_range(NodeId id) const {
    return in_range_.at(id);
  }

 private:
  SimConfig config_;
  EventQueue queue_;
  Environment environment_;
  RadioModel radio_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Static in-range candidate lists + cached directed RSSI.
  std::vector<std::vector<NodeId>> in_range_;
  std::vector<std::vector<double>> rssi_cache_;  ///< Parallel to in_range_.
  std::mt19937_64 rng_;
  std::vector<std::uint32_t> generation_;  ///< Invalidates stale timers.
  bool started_ = false;

  std::vector<SinkPacketRecord> sink_log_;
  std::vector<Origination> originations_;
  std::vector<InjectedFault> ground_truth_;
  SimStats stats_;

  /// Active regional fault state.
  struct ActiveJammer {
    Position center;
    double radius_m;
    Time start, end;
    double intensity;  ///< Added busy probability at the epicenter.
  };
  std::vector<ActiveJammer> jammers_;

  void start();
  void schedule_node_timers(NodeId id);
  void beacon_tick(NodeId id, std::uint32_t generation);
  void report_tick(NodeId id, std::uint32_t generation);
  void try_send(NodeId id);
  void attempt_transmission(NodeId id, std::uint32_t generation,
                            std::size_t backoffs);
  void deliver_to(NodeId receiver_id, DataPacket packet, bool& ack);
  void update_route(NodeId id);
  void reset_beacon_interval(Node& node);
  void sample_sensors(Node& node);
  void apply_fault(const FaultCommand& command);
  void bump_activity_around(NodeId sender);
  [[nodiscard]] double busy_probability(Node& node) const;
  [[nodiscard]] double activity_of(Node& node) const;
  [[nodiscard]] double link_prr(NodeId from, NodeId to, Time t) const;
  [[nodiscard]] bool chance(double p);
  [[nodiscard]] std::vector<NodeId> nodes_in_region(const Position& center,
                                                    double radius) const;
  [[nodiscard]] double uniform(double lo, double hi);
};

}  // namespace vn2::wsn
