// Per-node state: TelosB-like hardware model (battery, temperature-dependent
// clock drift, radio duty cycle), the 43 injected metrics, routing state,
// transmit queue, and duplicate cache.
//
// Protocol *logic* (who transmits what when) lives in Simulator; Node is the
// state it acts on, with small self-contained behaviors (counter updates,
// battery integration, queue admission) implemented here so they can be unit
// tested without a full simulation.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_set>

#include "metrics/schema.hpp"
#include "wsn/neighbor_table.hpp"
#include "wsn/packet.hpp"
#include "wsn/types.hpp"

namespace vn2::wsn {

struct NodeParams {
  /// Fresh 2×AA pack. The ~0.4 V headroom above shutdown means no node
  /// browns out from ordinary duty inside a two-week experiment — only
  /// battery faults (or months of runtime) get a mote to 2.8 V.
  double initial_voltage = 3.2;
  double shutdown_voltage = 2.8;   ///< Paper: node stops working below 2.8 V.
  /// Volts consumed per second of radio-on time. Tuned so an idle mote
  /// lasts months, and a busy relay (tens of thousands of transmissions a
  /// day) sags visibly but survives a two-week experiment — the TelosB
  /// 2×AA envelope.
  double drain_per_radio_second = 2.5e-6;
  /// Volts consumed per transmission (tx cost beyond listening).
  double drain_per_transmission = 4.0e-8;
  /// Quadratic clock-drift coefficient: drift = coeff · (T − 25 °C)².
  double clock_drift_coeff = 2.0e-5;
  std::size_t queue_capacity = 12;
  std::size_t max_retransmissions = 30;  ///< Paper: drop after 30 tries.
  std::size_t duplicate_cache_size = 64;
};

class Node {
 public:
  Node(NodeId id, Position position, NodeParams params);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const Position& position() const noexcept { return position_; }

  // --- liveness ------------------------------------------------------------
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  void fail();                ///< Node disappears (hardware death / removal).
  void reboot(Time now);      ///< Restart: counters and volatile state reset.
  [[nodiscard]] Time boot_time() const noexcept { return boot_time_; }

  // --- battery / clock -----------------------------------------------------
  [[nodiscard]] double voltage() const noexcept { return voltage_; }
  void drain(double volts) noexcept;
  void set_battery_drain_multiplier(double m) noexcept { drain_multiplier_ = m; }
  [[nodiscard]] double battery_drain_multiplier() const noexcept {
    return drain_multiplier_;
  }
  /// True once voltage fell below the shutdown threshold.
  [[nodiscard]] bool brown_out() const noexcept;
  /// Multiplies nominal timer intervals; >1 = slow clock, <1 = fast clock.
  [[nodiscard]] double clock_scale(double temperature_c) const noexcept;

  // --- metrics ---------------------------------------------------------------
  [[nodiscard]] double metric(metrics::MetricId id) const noexcept {
    return metrics_[metrics::index_of(id)];
  }
  void set_metric(metrics::MetricId id, double v) noexcept {
    metrics_[metrics::index_of(id)] = v;
  }
  void bump(metrics::MetricId id, double delta = 1.0) noexcept {
    metrics_[metrics::index_of(id)] += delta;
  }
  [[nodiscard]] const std::array<double, metrics::kMetricCount>& metrics()
      const noexcept {
    return metrics_;
  }
  /// Copies the C2 block (neighbor RSSI / ETX) out of the routing table.
  void refresh_neighbor_metrics();

  // --- routing ---------------------------------------------------------------
  NeighborTable& table() noexcept { return table_; }
  [[nodiscard]] const NeighborTable& table() const noexcept { return table_; }

  [[nodiscard]] NodeId parent() const noexcept { return parent_; }
  [[nodiscard]] bool has_parent() const noexcept {
    return parent_ != kInvalidNode;
  }
  [[nodiscard]] double path_etx() const noexcept { return path_etx_; }
  void set_route(NodeId parent, double path_etx) noexcept;
  void clear_route() noexcept;
  /// True while a fault pins the parent pointer (forced-loop injection).
  [[nodiscard]] bool route_pinned() const noexcept { return route_pinned_; }
  void pin_route(bool pinned) noexcept { route_pinned_ = pinned; }

  [[nodiscard]] std::uint32_t next_beacon_seq() noexcept {
    return beacon_seq_++;
  }
  [[nodiscard]] std::uint32_t next_data_seq() noexcept { return data_seq_++; }

  // --- transmit queue ----------------------------------------------------------
  /// Admits a packet. On overflow returns false and bumps
  /// Overflow_drop_counter (the caller must not ACK in that case).
  bool enqueue(DataPacket packet);
  [[nodiscard]] bool queue_empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t queue_size() const noexcept { return queue_.size(); }
  [[nodiscard]] DataPacket& queue_front();
  void pop_front();

  // --- duplicate suppression -----------------------------------------------
  /// Returns true (and bumps Duplicate_counter) if (origin, seq) was already
  /// seen; otherwise remembers it.
  bool check_duplicate(NodeId origin, std::uint32_t seq);

  // --- in-flight bookkeeping (owned by Simulator, stored here) --------------
  std::size_t retransmit_count = 0;   ///< Attempts for the head-of-line packet.
  bool sending = false;               ///< A send attempt is scheduled.
  double channel_activity = 0.0;      ///< EWMA of nearby transmissions.
  Time activity_updated = 0.0;
  std::uint64_t report_epoch = 0;     ///< Next reporting epoch number.
  Time beacon_interval = 0.0;         ///< Trickle state (0 = not initialized).

  [[nodiscard]] const NodeParams& params() const noexcept { return params_; }

 private:
  NodeId id_;
  Position position_;
  NodeParams params_;

  bool alive_ = true;
  Time boot_time_ = 0.0;
  double voltage_;
  double drain_multiplier_ = 1.0;

  std::array<double, metrics::kMetricCount> metrics_{};
  NeighborTable table_;
  NodeId parent_ = kInvalidNode;
  double path_etx_ = 0.0;
  bool route_pinned_ = false;
  std::uint32_t beacon_seq_ = 0;
  std::uint32_t data_seq_ = 0;

  std::deque<DataPacket> queue_;
  std::deque<std::uint64_t> duplicate_fifo_;
  std::unordered_set<std::uint64_t> duplicate_set_;
};

}  // namespace vn2::wsn
