// Data-plane packet model. A report packet carries one metric block
// (C1 sensor/routing, C2 neighbor table, or C3 counters) from its origin
// toward the sink over the collection tree.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/schema.hpp"
#include "wsn/types.hpp"

namespace vn2::wsn {

struct DataPacket {
  NodeId origin = kInvalidNode;
  std::uint32_t origin_seq = 0;      ///< Per-origin sequence number.
  std::uint64_t epoch = 0;           ///< Reporting epoch at the origin.
  metrics::PacketType type = metrics::PacketType::kC1;
  /// Values of the block's metrics, in schema column order for that block.
  std::vector<double> values;
  /// Path ETX of the current holder when it last transmitted the packet —
  /// carried in the header for datapath loop detection (CTP-style).
  double sender_path_etx = 0.0;
  std::uint8_t hops = 0;
  Time created = 0.0;
};

/// Column range [first, last) of a block within the 43-metric schema.
struct BlockRange {
  std::size_t first = 0;
  std::size_t count = 0;
};

[[nodiscard]] constexpr BlockRange block_range(metrics::PacketType type) noexcept {
  switch (type) {
    case metrics::PacketType::kC1: return {0, 6};
    case metrics::PacketType::kC2: return {6, 20};
    case metrics::PacketType::kC3: return {26, 17};
  }
  return {0, 0};
}

}  // namespace vn2::wsn
