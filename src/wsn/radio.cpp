#include "wsn/radio.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace vn2::wsn {

namespace {

std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

RadioModel::RadioModel(RadioParams params, const Environment* environment,
                       std::uint64_t seed)
    : params_(params), environment_(environment), seed_(seed) {}

std::uint64_t RadioModel::link_key(NodeId a, NodeId b) noexcept {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 16) | hi;
}

double RadioModel::shadowing_db(NodeId a, NodeId b) const {
  const std::uint64_t h = mix(seed_ ^ link_key(a, b));
  // Irwin–Hall approximation of a standard Gaussian.
  const double u = to_unit(h) + to_unit(mix(h)) + to_unit(mix(mix(h)));
  return params_.shadowing_stddev_db * (u - 1.5) * 2.0;
}

double RadioModel::degradation_db(NodeId a, NodeId b, Time t) const {
  const auto it = degradations_.find(link_key(a, b));
  if (it == degradations_.end()) return 0.0;
  double total = 0.0;
  for (const Degradation& d : it->second)
    if (t >= d.start && t <= d.end) total += d.loss_db;
  return total;
}

double RadioModel::rssi_dbm(NodeId from, const Position& from_pos, NodeId to,
                            const Position& to_pos) const {
  const double d = std::max(distance(from_pos, to_pos), 1.0);
  const double path_loss = params_.path_loss_at_1m_db +
                           10.0 * params_.path_loss_exponent * std::log10(d);
  return params_.tx_power_dbm - path_loss + shadowing_db(from, to);
}

bool RadioModel::in_range(NodeId from, const Position& from_pos, NodeId to,
                          const Position& to_pos) const {
  return rssi_dbm(from, from_pos, to, to_pos) >= params_.sensitivity_dbm;
}

double RadioModel::prr(NodeId from, const Position& from_pos, NodeId to,
                       const Position& to_pos, Time t) const {
  const double rssi = rssi_dbm(from, from_pos, to, to_pos) -
                      degradation_db(from, to, t);
  const double noise = environment_->noise_floor_dbm(to_pos, t);
  const double snr = rssi - noise;
  const double x = params_.prr_steepness * (snr - params_.prr_midpoint_snr_db);
  return std::clamp(1.0 / (1.0 + std::exp(-x)), 0.0, 1.0);
}

void RadioModel::degrade_link(NodeId a, NodeId b, double loss_db, Time start,
                              Time end) {
  VN2_CHECK(start <= end, "degrade_link: degradation window must be ordered");
  degradations_[link_key(a, b)].push_back({loss_db, start, end});
}

void RadioModel::clear_degradations() { degradations_.clear(); }

}  // namespace vn2::wsn
