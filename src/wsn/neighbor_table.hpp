// CTP-style neighbor (routing) table with kMaxNeighbors slot-stable entries.
//
// Slots are stable: once a neighbor occupies slot i it stays there until
// evicted, so the C2 metrics Neighbor_RSSI_i / Neighbor_ETX_i track the same
// physical neighbor across reports — which is what makes their *variation*
// meaningful to the analysis.
//
// Inbound link quality is estimated from beacon sequence-number gaps (a gap
// of g means g missed beacons), outbound quality from the data-plane ACK
// ratio; link ETX combines both, defaulting to the symmetric assumption
// until data has flowed.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "metrics/schema.hpp"
#include "wsn/types.hpp"

namespace vn2::wsn {

struct NeighborEntry {
  NodeId id = kInvalidNode;
  double rssi_dbm = 0.0;          ///< EWMA of beacon RSSI samples.
  double prr_in = 0.5;            ///< EWMA inbound beacon delivery ratio.
  double prr_out = 0.5;           ///< EWMA outbound ACK success ratio.
  bool prr_out_known = false;     ///< False until any unicast was attempted.
  double advertised_path_etx = 0.0;  ///< Neighbor's route cost to the sink.
  std::uint32_t last_beacon_seq = 0;
  Time last_heard = 0.0;
  Time last_unicast = 0.0;        ///< Last outbound data-plane sample.

  [[nodiscard]] bool occupied() const noexcept { return id != kInvalidNode; }

  /// Bidirectional link ETX = 1 / (prr_in · prr_out), clamped to [1, cap].
  [[nodiscard]] double link_etx() const noexcept;

  /// Advertised path ETX plus our link to the neighbor.
  [[nodiscard]] double route_etx() const noexcept;
};

class NeighborTable {
 public:
  static constexpr std::size_t kSlots = metrics::kMaxNeighbors;
  static constexpr double kEtxCap = 30.0;

  /// Processes a beacon from `from`. Inserts the neighbor if a slot is free
  /// or a worse entry can make room; updates RSSI, inbound PRR (via beacon
  /// seq-gap), and the advertised path ETX. Returns true if the beacon was
  /// tabled (false if the table is full of better entries).
  ///
  /// When the table is full, admission is decided on ROUTE quality
  /// (advertised path ETX + estimated link ETX), not RSSI: a strong-signal
  /// neighbor with no route must never crowd out the path to the sink. The
  /// current parent (`current_parent`) is never evicted by admission.
  bool on_beacon(NodeId from, double rssi_dbm, std::uint32_t beacon_seq,
                 double advertised_path_etx, Time now,
                 NodeId current_parent = kInvalidNode);

  /// Records a unicast attempt to `to` (ack == delivery confirmed).
  void on_unicast_result(NodeId to, bool ack, Time now = 0.0);

  /// Removes a neighbor (e.g. declared dead after repeated NOACKs).
  void evict(NodeId id);
  void clear();

  /// Best next hop: the entry minimizing route_etx(). `exclude` lets the
  /// caller skip a just-failed parent.
  [[nodiscard]] std::optional<NodeId> best_parent(
      NodeId exclude = kInvalidNode) const;

  [[nodiscard]] const NeighborEntry* find(NodeId id) const;
  [[nodiscard]] NeighborEntry* find(NodeId id);
  [[nodiscard]] const std::array<NeighborEntry, kSlots>& slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::size_t occupancy() const noexcept;

  /// Drops entries not heard from within `timeout` of `now`. Returns the
  /// number of entries evicted.
  std::size_t expire(Time now, Time timeout);

 private:
  std::array<NeighborEntry, kSlots> slots_{};

  static constexpr double kRssiAlpha = 0.3;  ///< EWMA weights.
  static constexpr double kPrrAlpha = 0.2;
  /// Outbound estimates older than this are stale: each beacon blends them
  /// back toward the (fresh, beacon-fed) inbound estimate. Without aging, a
  /// congestion episode can pin prr_out near zero forever — the node stops
  /// routing through the neighbor, so no new data-plane samples ever arrive
  /// to correct the estimate, and the link is lost permanently.
  static constexpr Time kPrrOutStaleAfter = 600.0;
  static constexpr double kStaleBlendAlpha = 0.2;
};

}  // namespace vn2::wsn
