#include "wsn/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace vn2::wsn {

void EventQueue::schedule(Time at, Callback fn) {
  heap_.push(Entry{std::max(at, now_), next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(Time delay, Callback fn) {
  schedule(now_ + std::max(delay, 0.0), std::move(fn));
}

std::size_t EventQueue::run_until(Time until) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    // Copy out before pop: the callback may schedule new events.
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.at;
    entry.fn();
    ++executed;
  }
  now_ = std::max(now_, until);
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.at;
    entry.fn();
    ++executed;
  }
  return executed;
}

}  // namespace vn2::wsn
