#include "wsn/neighbor_table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/contracts.hpp"

namespace vn2::wsn {

double NeighborEntry::link_etx() const noexcept {
  const double out = prr_out_known ? prr_out : prr_in;  // symmetric default
  const double product = std::max(prr_in * out, 1e-3);
  return std::clamp(1.0 / product, 1.0, NeighborTable::kEtxCap);
}

double NeighborEntry::route_etx() const noexcept {
  return advertised_path_etx + link_etx();
}

bool NeighborTable::on_beacon(NodeId from, double rssi_dbm,
                              std::uint32_t beacon_seq,
                              double advertised_path_etx, Time now,
                              NodeId current_parent) {
  VN2_REQUIRE(std::isfinite(rssi_dbm), "on_beacon: rssi_dbm must be finite");
  if (NeighborEntry* entry = find(from)) {
    entry->rssi_dbm += kRssiAlpha * (rssi_dbm - entry->rssi_dbm);
    // Age a stale outbound estimate toward the beacon-fed inbound one, so a
    // link written off during a congestion episode can be rediscovered.
    if (entry->prr_out_known &&
        now - entry->last_unicast > kPrrOutStaleAfter) {
      entry->prr_out += kStaleBlendAlpha * (entry->prr_in - entry->prr_out);
    }
    // Sequence gap tells us how many beacons we missed since last reception.
    const std::uint32_t gap =
        beacon_seq > entry->last_beacon_seq
            ? beacon_seq - entry->last_beacon_seq - 1
            : 0;  // Reboot / wrap: treat as contiguous.
    for (std::uint32_t i = 0; i < std::min(gap, 10u); ++i)
      entry->prr_in += kPrrAlpha * (0.0 - entry->prr_in);
    entry->prr_in += kPrrAlpha * (1.0 - entry->prr_in);
    entry->last_beacon_seq = beacon_seq;
    entry->advertised_path_etx = advertised_path_etx;
    entry->last_heard = now;
    return true;
  }

  // New neighbor: free slot first.
  for (NeighborEntry& slot : slots_) {
    if (!slot.occupied()) {
      slot = NeighborEntry{};
      slot.id = from;
      slot.rssi_dbm = rssi_dbm;
      slot.prr_in = 0.5;  // Optimistic prior, refined by later beacons.
      slot.last_beacon_seq = beacon_seq;
      slot.advertised_path_etx = advertised_path_etx;
      slot.last_heard = now;
      return true;
    }
  }

  // Table full: admission by route quality. Estimate the newcomer's route
  // cost with the fresh-entry link prior and evict the worst-route entry
  // (never the current parent) if the newcomer improves on it by a margin.
  NeighborEntry candidate;
  candidate.id = from;
  candidate.rssi_dbm = rssi_dbm;
  candidate.prr_in = 0.5;
  candidate.last_beacon_seq = beacon_seq;
  candidate.advertised_path_etx = advertised_path_etx;
  candidate.last_heard = now;

  NeighborEntry* worst = nullptr;
  for (NeighborEntry& slot : slots_) {
    if (slot.id == current_parent) continue;
    if (!worst || slot.route_etx() > worst->route_etx()) worst = &slot;
  }
  if (worst && candidate.route_etx() + 1.0 < worst->route_etx()) {
    *worst = candidate;
    return true;
  }
  return false;
}

void NeighborTable::on_unicast_result(NodeId to, bool ack, Time now) {
  if (NeighborEntry* entry = find(to)) {
    entry->prr_out_known = true;
    entry->prr_out += kPrrAlpha * ((ack ? 1.0 : 0.0) - entry->prr_out);
    entry->last_unicast = now;
  }
}

void NeighborTable::evict(NodeId id) {
  if (NeighborEntry* entry = find(id)) *entry = NeighborEntry{};
}

void NeighborTable::clear() {
  for (NeighborEntry& slot : slots_) slot = NeighborEntry{};
}

std::optional<NodeId> NeighborTable::best_parent(NodeId exclude) const {
  const NeighborEntry* best = nullptr;
  for (const NeighborEntry& slot : slots_) {
    if (!slot.occupied() || slot.id == exclude) continue;
    if (!best || slot.route_etx() < best->route_etx()) best = &slot;
  }
  if (!best || best->route_etx() >= kEtxCap) return std::nullopt;
  return best->id;
}

const NeighborEntry* NeighborTable::find(NodeId id) const {
  for (const NeighborEntry& slot : slots_)
    if (slot.id == id) return &slot;
  return nullptr;
}

NeighborEntry* NeighborTable::find(NodeId id) {
  for (NeighborEntry& slot : slots_)
    if (slot.id == id) return &slot;
  return nullptr;
}

std::size_t NeighborTable::occupancy() const noexcept {
  std::size_t count = 0;
  for (const NeighborEntry& slot : slots_)
    if (slot.occupied()) ++count;
  return count;
}

std::size_t NeighborTable::expire(Time now, Time timeout) {
  VN2_REQUIRE(timeout > 0.0, "expire: timeout must be positive");
  std::size_t evicted = 0;
  for (NeighborEntry& slot : slots_) {
    if (slot.occupied() && now - slot.last_heard > timeout) {
      slot = NeighborEntry{};
      ++evicted;
    }
  }
  return evicted;
}

}  // namespace vn2::wsn
