// Fundamental identifiers and geometry for the WSN simulator.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace vn2::wsn {

/// Node identifier. The sink is always node 0.
using NodeId = std::uint16_t;
inline constexpr NodeId kSinkId = 0;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Simulation time in seconds.
using Time = double;

/// 2-D position in meters.
struct Position {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Position&, const Position&) = default;
};

inline double distance(const Position& a, const Position& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace vn2::wsn
